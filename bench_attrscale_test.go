package tdp_test

// Attribute-space scaling benchmarks for the sharded/asynchronous
// engine and the LASS global read cache. ManyContexts compares the
// current engine against an in-file replica of the pre-sharding seed
// engine (one global mutex, synchronous drop-oldest fan-out), so the
// speedup the refactor bought stays measurable after the old code is
// gone. GlobalGetCached compares a CASS round trip over a slow link
// against a cached read answered by the local LASS.

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdp/internal/attr"
	"tdp/internal/attrspace"
	"tdp/internal/proxy"
)

// --- seed-engine replica -------------------------------------------------
//
// A faithful miniature of the seed internal/attr engine: one mutex for
// the whole space, subscriber set copied to a slice under that lock on
// every put, and synchronous delivery into each subscriber's channel
// with the drop-oldest juggle. Only the put path is replicated — that
// is the path ManyContexts drives on both sides.

type seedSpace struct {
	mu       sync.Mutex
	contexts map[string]*seedCtx
}

type seedCtx struct {
	name  string
	seq   uint64
	attrs map[string]string
	subs  map[*seedSub]struct{}
}

type seedSub struct {
	mu     sync.Mutex
	ch     chan attr.Update
	closed bool
}

func (s *seedSub) deliver(u attr.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for {
		select {
		case s.ch <- u:
			return
		default:
			select { // full: drop the oldest and retry
			case <-s.ch:
			default:
			}
		}
	}
}

func (s *seedSpace) put(ctxName, attribute, value string) {
	s.mu.Lock()
	c := s.contexts[ctxName]
	c.seq++
	c.attrs[attribute] = value
	u := attr.Update{Context: c.name, Attr: attribute, Value: value, Op: attr.OpPut, Seq: c.seq}
	subs := make([]*seedSub, 0, len(c.subs))
	for sub := range c.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.deliver(u)
	}
}

// BenchmarkAttrSpaceManyContexts drives parallel putters round-robin
// across 64 live contexts, each context watched by 16 subscribers that
// are not draining — the RM-multiplexing-many-tools shape from §3.2
// with slow consumers. Both engines are warmed into that steady state
// first. The seed engine serializes every putter on one space-wide
// mutex and pays the subscriber fan-out synchronously (two channel
// operations per full subscriber) on every put; the sharded engine
// spreads putters across shard locks and coalesces fan-out into
// per-subscription rings. GOMAXPROCS is pinned so the contention shape
// is the same on every host the baseline is recorded on.
func BenchmarkAttrSpaceManyContexts(b *testing.B) {
	const contexts = 64
	const subsPer = 16
	const procs = 16
	names := make([]string, contexts)
	for i := range names {
		names[i] = fmt.Sprintf("job-%d", i)
	}
	parallelWork := func(b *testing.B, put func(ctx int)) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		var workers atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			// Start each worker in a different region of the context
			// space so concurrent operations target distinct contexts.
			i := int(workers.Add(1)) * (contexts / procs)
			for pb.Next() {
				put(i % contexts)
				i++
			}
		})
	}

	b.Run("baseline-mutex", func(b *testing.B) {
		s := &seedSpace{contexts: make(map[string]*seedCtx)}
		for _, name := range names {
			c := &seedCtx{name: name, attrs: map[string]string{"hot": "v"}, subs: make(map[*seedSub]struct{})}
			for i := 0; i < subsPer; i++ {
				c.subs[&seedSub{ch: make(chan attr.Update, 64)}] = struct{}{}
			}
			s.contexts[name] = c
		}
		// Reach slow-consumer steady state (every channel full, each
		// further put paying the drop-oldest juggle) before timing.
		for i := 0; i < 2*64*contexts; i++ {
			s.put(names[i%contexts], "hot", "v")
		}
		b.ResetTimer()
		parallelWork(b, func(ctx int) { s.put(names[ctx], "hot", "v") })
	})

	b.Run("sharded", func(b *testing.B) {
		s := attr.NewSpace()
		refs := make([]*attr.Ref, contexts)
		for i, name := range names {
			ref := s.Join(name)
			defer ref.Leave()
			refs[i] = ref
			if err := ref.Put("hot", "v"); err != nil {
				b.Fatal(err)
			}
			for j := 0; j < subsPer; j++ {
				if _, err := ref.Subscribe(64); err != nil {
					b.Fatal(err)
				}
			}
		}
		// Reach slow-consumer steady state (every delivery channel
		// full, each delivery goroutine parked, every further put a
		// pure ring coalesce) before timing.
		for i := 0; i < 2*64*contexts; i++ {
			if err := refs[i%contexts].Put("hot", "v"); err != nil {
				b.Fatal(err)
			}
		}
		time.Sleep(50 * time.Millisecond)
		b.ResetTimer()
		parallelWork(b, func(ctx int) {
			if err := refs[ctx].Put("hot", "v"); err != nil {
				b.Fatal(err)
			}
		})
	})
}

// slowConn models a WAN hop to the tool front-end's host: every write
// stalls before hitting the wire. 200µs each way approximates an
// intra-site round trip; the point is only that it dwarfs a local one.
type slowConn struct {
	net.Conn
	delay time.Duration
}

func (c slowConn) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(p)
}

func slowDial(delay time.Duration) attrspace.DialFunc {
	return func(addr string) (net.Conn, error) {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return slowConn{Conn: raw, delay: delay}, nil
	}
}

// BenchmarkGlobalGetCached prices a steady-state global get both ways:
// every read a CASS round trip over the slow link, versus reads
// answered from the LASS cache the CASS subscription keeps coherent.
func BenchmarkGlobalGetCached(b *testing.B) {
	const delay = 200 * time.Microsecond
	startCASS := func(b *testing.B) (*attrspace.Server, string) {
		cass := attrspace.NewServer()
		addr, err := cass.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		seed, err := attrspace.Dial(nil, addr, "job-0")
		if err != nil {
			b.Fatal(err)
		}
		if err := seed.Put("endpoint", "front-end:7777"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { seed.Close(); cass.Close() })
		return cass, addr
	}

	b.Run("cass-roundtrip", func(b *testing.B) {
		_, cassAddr := startCASS(b)
		c, err := attrspace.Dial(slowDial(delay), cassAddr, "job-0")
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.TryGet("endpoint"); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("lass-cached", func(b *testing.B) {
		_, cassAddr := startCASS(b)
		lass := attrspace.NewServer()
		lass.EnableGlobalCache(cassAddr, attrspace.CacheConfig{Dial: slowDial(delay)})
		lassAddr, err := lass.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer lass.Close()
		c, err := attrspace.Dial(nil, lassAddr, "job-0")
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()
		// Prime: the first read misses and fills the cache upstream.
		if _, err := c.TryGetGlobal(ctx, "endpoint"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.TryGetGlobal(ctx, "endpoint"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProxyRelayThroughput pushes bulk payload through a forwarder
// tunnel and back (the §2.4 RM proxy path), exercising the pooled
// splice buffers. Reported bytes cover both directions.
func BenchmarkProxyRelayThroughput(b *testing.B) {
	const chunk = 32 * 1024
	// Echo endpoint: everything relayed in is relayed back out.
	echoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer echoLn.Close()
	go func() {
		for {
			c, err := echoLn.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()

	fwd := proxy.NewForwarder(func(addr string) (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, echoLn.Addr().String())
	fwdLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go fwd.Serve(fwdLn)
	defer fwd.Close()

	conn, err := net.Dial("tcp", fwdLn.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	out := make([]byte, chunk)
	in := make([]byte, chunk)
	b.SetBytes(2 * chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(out); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, in); err != nil {
			b.Fatal(err)
		}
	}
}
