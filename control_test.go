package tdp

import (
	"context"
	"errors"
	"testing"
	"time"

	"tdp/internal/procsim"
)

// TestStopRequestStopWaitStopped exercises the process-control surface
// a debugger-style tool uses.
func TestStopRequestStopWaitStopped(t *testing.T) {
	addr := newLASS(t)
	k := procsim.NewKernel()
	h := initT(t, Config{Context: "c", LASSAddr: addr, Kernel: k, Identity: "tool"})

	phases := []procsim.PhaseSpec{{Name: "work", Units: 2}}
	ap, err := h.CreateProcess(ProcessSpec{
		Executable: "app",
		Program:    procsim.NewPhasedProgram(100000, phases),
		Symbols:    procsim.PhasedSymbols(phases),
	}, StartPaused)
	if err != nil {
		t.Fatalf("CreateProcess: %v", err)
	}
	tp, err := h.Attach(ap.PID())
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := tp.Continue(); err != nil {
		t.Fatalf("Continue: %v", err)
	}
	if err := tp.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if tp.State() != procsim.StateStopped {
		t.Fatalf("state = %v", tp.State())
	}
	if err := tp.Continue(); err != nil {
		t.Fatalf("Continue: %v", err)
	}
	if err := tp.RequestStop(); err != nil {
		t.Fatalf("RequestStop: %v", err)
	}
	tp.WaitStopped()
	if tp.State() != procsim.StateStopped {
		t.Fatalf("state after RequestStop+WaitStopped = %v", tp.State())
	}
	// Probe add/remove while paused.
	id, err := tp.InsertProbe("work", nil, nil)
	if err != nil {
		t.Fatalf("InsertProbe: %v", err)
	}
	if err := tp.RemoveProbe(id); err != nil {
		t.Fatalf("RemoveProbe: %v", err)
	}
	tp.Kill("")
	tp.Wait()
}

func TestProbeOpsRequireAttachment(t *testing.T) {
	addr := newLASS(t)
	k := procsim.NewKernel()
	h := initT(t, Config{Context: "c", LASSAddr: addr, Kernel: k, Identity: "rm"})
	ap, _ := h.CreateProcess(ProcessSpec{
		Executable: "app", Program: procsim.NewExitingProgram(0), Symbols: procsim.StdSymbols,
	}, StartPaused)
	defer ap.Kill("")
	// ap was created, not attached: probe operations must refuse.
	if _, err := ap.InsertProbe("work", nil, nil); !errors.Is(err, procsim.ErrNotAttached) {
		t.Errorf("InsertProbe unattached: %v", err)
	}
	if err := ap.RemoveProbe(1); !errors.Is(err, procsim.ErrNotAttached) {
		t.Errorf("RemoveProbe unattached: %v", err)
	}
	if err := ap.Detach(); !errors.Is(err, procsim.ErrNotAttached) {
		t.Errorf("Detach unattached: %v", err)
	}
}

func TestExitDetachesAttachments(t *testing.T) {
	// A tool handle that exits (or dies — kill unwinds through the
	// deferred Exit) releases its attachments so a replacement can
	// attach.
	addr := newLASS(t)
	k := procsim.NewKernel()
	rm := initT(t, Config{Context: "c", LASSAddr: addr, Kernel: k, Identity: "rm"})
	ap, _ := rm.CreateProcess(ProcessSpec{
		Executable: "srv", Program: procsim.NewSpinnerProgram(), Symbols: procsim.StdSymbols,
	}, StartRun)
	defer ap.Kill("")

	tool1, err := Init(Config{Context: "c", LASSAddr: addr, Kernel: k, Identity: "tool1"})
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	tp, err := tool1.Attach(ap.PID())
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	tp.Continue()
	tool1.Exit() // must release the attachment

	tool2 := initT(t, Config{Context: "c", LASSAddr: addr, Kernel: k, Identity: "tool2"})
	tp2, err := tool2.Attach(ap.PID())
	if err != nil {
		t.Fatalf("second Attach after Exit: %v", err)
	}
	tp2.Continue()
}

func TestDetachTwice(t *testing.T) {
	addr := newLASS(t)
	k := procsim.NewKernel()
	h := initT(t, Config{Context: "c", LASSAddr: addr, Kernel: k, Identity: "tool"})
	ap, _ := h.CreateProcess(ProcessSpec{
		Executable: "app", Program: procsim.NewSpinnerProgram(), Symbols: procsim.StdSymbols,
	}, StartRun)
	defer ap.Kill("")
	tp, err := h.Attach(ap.PID())
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := tp.Detach(); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	if err := tp.Detach(); !errors.Is(err, procsim.ErrNotAttached) {
		t.Errorf("second Detach: %v", err)
	}
}

func TestWaitStatusFastPathAndSubscribeRace(t *testing.T) {
	addr := newLASS(t)
	h := initT(t, Config{Context: "c", LASSAddr: addr, Identity: "rt"})
	// Fast path: status already present.
	h.Put(AttrStatus, "exited:exit(0)")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	v, err := h.WaitStatus(ctx, "exited:")
	if err != nil || v != "exited:exit(0)" {
		t.Fatalf("WaitStatus fast path = %q, %v", v, err)
	}
	// Prefix matching: waiting for "running" while exited should block
	// until cancel.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := h.WaitStatus(ctx2, "running"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("WaitStatus wrong prefix: %v", err)
	}
}

func TestWaitStatusSeesTransition(t *testing.T) {
	addr := newLASS(t)
	rm := initT(t, Config{Context: "c", LASSAddr: addr, Identity: "rm"})
	rt := initT(t, Config{Context: "c", LASSAddr: addr, Identity: "rt"})
	got := make(chan string, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		v, err := rt.WaitStatus(ctx, "stopped")
		if err != nil {
			t.Errorf("WaitStatus: %v", err)
		}
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	rm.Put(AttrStatus, "running")
	rm.Put(AttrStatus, "stopped")
	select {
	case v := <-got:
		if v != "stopped" {
			t.Errorf("got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("transition never observed")
	}
}

func TestFormatPID(t *testing.T) {
	if FormatPID(procsim.PID(1234)) != "1234" {
		t.Errorf("FormatPID = %q", FormatPID(procsim.PID(1234)))
	}
}
