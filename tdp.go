// Package tdp is a Go implementation of the Tool Dæmon Protocol (TDP)
// from Miller, Cortés, Senar and Livny, "The Tool Dæmon Protocol
// (TDP)", SC 2003.
//
// TDP standardizes the interactions between a resource manager (RM —
// a batch scheduler such as Condor), a run-time tool (RT — a debugger,
// profiler or tracer such as Paradyn), and the application process
// (AP) they cooperate on. Porting m tools to n schedulers normally
// costs m × n efforts; with both sides coded against TDP it costs
// m + n.
//
// The library provides the paper's three service groups:
//
//   - Process management (§3.1): CreateProcess with a run or paused
//     start mode, Attach, and Continue. A paused create leaves the
//     process stopped "just after the exec call" so a tool can attach
//     and instrument it before main runs.
//
//   - Inter-daemon communication (§3.2): a per-context attribute
//     space served by a Local Attribute Space Server (LASS) on each
//     execution host and an optional Central Attribute Space Server
//     (CASS) beside the tool front-end. Put and Get are blocking;
//     both attributes and values are free-form strings.
//
//   - Event notification (§3.3): AsyncGet and AsyncPut complete
//     through a queue drained by ServiceEvents, so callbacks run at a
//     point the daemon chooses — the paper's poll-loop model, adopted
//     because neither signals nor threads are portable across tools.
//
// A Handle corresponds to the paper's tdp handle: the result of
// tdp_init, used in every subsequent call, released by tdp_exit.
//
// The process substrate is the simulated kernel in internal/procsim;
// see DESIGN.md for why a simulator faithfully stands in for
// fork/exec + ptrace in this reproduction.
package tdp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/events"
	"tdp/internal/procsim"
	"tdp/internal/telemetry"
	"tdp/internal/trace"
)

// Standard attribute names (§3.2: "there is a standard list of
// attribute names for the set of data commonly exchanged between the
// different daemons"). RMs and RTs may extend the set freely.
const (
	// AttrPID carries the application process id from RM to RT.
	AttrPID = "pid"
	// AttrExecutable carries the application executable name.
	AttrExecutable = "executable_name"
	// AttrArgs carries the application argument string (parsed by the
	// consumer, per §3.2's "-p1500 -P2000" discussion).
	AttrArgs = "args"
	// AttrFrontendAddr carries the host:port the RT daemon should dial
	// to reach its front-end — either the real address or the RM's
	// proxy (§2.4).
	AttrFrontendAddr = "frontend_addr"
	// AttrStdioAddr carries the host:port for application stdin/stdout
	// forwarding (§2.4).
	AttrStdioAddr = "stdio_addr"
	// AttrStatus carries application process status published by the
	// RM (§2.3); values are procsim state strings or "exited:<status>".
	AttrStatus = "process_status"
	// AttrToolReady is set by the RT once its initialization is done,
	// telling the RM it may proceed.
	AttrToolReady = "tool_ready"
	// AttrStartRequest is set by the RT to ask the RM to start the
	// paused application (§2.3: control operations are centralized in
	// the RM; the RT requests them through the space).
	AttrStartRequest = "start_request"
)

// Errors returned by the public API.
var (
	// ErrNotFound reports an absent attribute from TryGet.
	ErrNotFound = attrspace.ErrNotFound
	// ErrClosed reports use of a Handle after Exit.
	ErrClosed = errors.New("tdp: handle closed")
	// ErrNoKernel reports a process-management call on a Handle whose
	// Config carried no process substrate.
	ErrNoKernel = errors.New("tdp: no process kernel configured")
	// ErrNoCASS reports a global-space call without a configured CASS.
	ErrNoCASS = errors.New("tdp: no central attribute space configured")
)

// Config parameterizes Init.
type Config struct {
	// Context names the attribute space shared by this daemon and its
	// peers. An RM managing several tools uses a different context per
	// tool (§3.2); all participants in one job use the same value.
	Context string

	// LASSAddr is the address of the local attribute space server.
	// Required.
	LASSAddr string

	// CASSAddr optionally points at the central attribute space server
	// on the front-end host. Empty disables the global space.
	CASSAddr string

	// GlobalViaLASS routes the *Global operations through the LASS
	// instead of a direct CASS connection: the LASS must have been
	// started with an upstream CASS (a caching LASS — see
	// attrspace.Server.EnableGlobalCache or tdp.ServeCachingLASS).
	// Steady-state global reads are then answered from the LASS's
	// subscription-invalidated cache in one local hop, and global
	// writes keep read-your-writes through the same LASS. Mutually
	// exclusive with CASSAddr.
	GlobalViaLASS bool

	// Dial opens connections to the attribute servers. Nil uses real
	// TCP; experiments on the simulated network pass the host's Dial.
	Dial attrspace.DialFunc

	// Resilient wraps each attribute space connection in an
	// attrspace.Session: a LASS/CASS restart or network blip is
	// absorbed by reconnecting with backoff, retrying the interrupted
	// operation, replaying the subscription, and resynchronizing the
	// event stream — instead of failing every call until the daemon
	// re-runs tdp_init. See DESIGN.md §10.
	Resilient bool

	// Backoff tunes the Resilient reconnect schedule; the zero value
	// uses attrspace.DefaultBackoff (which honors the
	// TDP_RETRY_INITIAL / TDP_RETRY_MAX env knobs).
	Backoff attrspace.Backoff

	// Kernel is the process substrate for CreateProcess/Attach. A
	// daemon that only exchanges attributes (e.g. a tool front-end)
	// may leave it nil.
	Kernel *procsim.Kernel

	// Identity names this daemon for attach bookkeeping and traces
	// (e.g. "condor_starter", "paradynd-3").
	Identity string

	// Trace, when non-nil, records every TDP call for the figure
	// reproduction experiments.
	Trace *trace.Recorder

	// Telemetry, when non-nil, receives op counters and latency
	// histograms for every tdp_* call ("tdp.*") plus the attribute
	// space client and wire metrics ("client.*", "wire.*").
	Telemetry *telemetry.Registry

	// Tracer, when non-nil, gives every attribute space operation a
	// span; spans started by the caller and carried in a context
	// propagate to the servers as the reserved _tid/_sid wire fields.
	Tracer *telemetry.Tracer
}

// Handle is the tdp handle returned by Init and used in every
// subsequent TDP action. It is safe for concurrent use.
type Handle struct {
	cfg   Config
	lass  attrspace.API
	cass  attrspace.API
	queue *events.Queue

	mu       sync.Mutex
	attached []*Process
}

// Init establishes the TDP framework for one daemon: it connects to
// the LASS (and CASS when configured) and joins the context. This is
// tdp_init; the returned Handle is the tdp handle.
func Init(cfg Config) (*Handle, error) {
	if cfg.Context == "" {
		return nil, errors.New("tdp: Config.Context is required")
	}
	if cfg.LASSAddr == "" {
		return nil, errors.New("tdp: Config.LASSAddr is required")
	}
	if cfg.Identity == "" {
		cfg.Identity = "daemon"
	}
	if cfg.GlobalViaLASS && cfg.CASSAddr != "" {
		return nil, errors.New("tdp: GlobalViaLASS and CASSAddr are mutually exclusive")
	}
	lass, err := dialSpace(cfg, cfg.LASSAddr)
	if err != nil {
		return nil, fmt.Errorf("tdp: init: LASS: %w", err)
	}
	lass.SetTelemetry(cfg.Telemetry, cfg.Tracer)
	var cass attrspace.API
	if cfg.CASSAddr != "" {
		cass, err = dialSpace(cfg, cfg.CASSAddr)
		if err != nil {
			lass.Close()
			return nil, fmt.Errorf("tdp: init: CASS: %w", err)
		}
		cass.SetTelemetry(cfg.Telemetry, cfg.Tracer)
	}
	h := &Handle{cfg: cfg, lass: lass, cass: cass, queue: events.NewQueue()}
	h.traceStep("tdp_init", "context="+cfg.Context)
	return h, nil
}

// dialSpace opens one attribute space connection per the Config: a
// plain Client normally, a reconnecting Session when Resilient. The
// Session connects in the background, so Init still waits for (and
// reports) the first connection — a missing daemon fails tdp_init
// either way; Resilient changes what happens when a daemon dies later.
func dialSpace(cfg Config, addr string) (attrspace.API, error) {
	if !cfg.Resilient {
		return attrspace.Dial(cfg.Dial, addr, cfg.Context)
	}
	s := attrspace.NewSession(attrspace.SessionConfig{
		Dial:     cfg.Dial,
		Addr:     addr,
		Context:  cfg.Context,
		Backoff:  cfg.Backoff,
		Registry: cfg.Telemetry,
		Tracer:   cfg.Tracer,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Exit disengages from the TDP library and the attribute space. When
// the last participant of a context exits, the context is destroyed
// (§3.2). Any processes this handle is still attached to are detached
// — the library-level analog of the OS releasing a dead tracer's
// ptrace attachments, which lets a replacement tool re-attach after a
// tool fault. Exit is idempotent.
func (h *Handle) Exit() error {
	h.traceStep("tdp_exit", "")
	h.mu.Lock()
	attached := h.attached
	h.attached = nil
	h.mu.Unlock()
	for _, p := range attached {
		p.Detach() // best effort; the process may have exited
	}
	if h.cass != nil {
		h.cass.Close()
	}
	return h.lass.Close()
}

func (h *Handle) trackAttached(p *Process) {
	h.mu.Lock()
	h.attached = append(h.attached, p)
	h.mu.Unlock()
}

func (h *Handle) untrackAttached(p *Process) {
	h.mu.Lock()
	for i, q := range h.attached {
		if q == p {
			h.attached = append(h.attached[:i], h.attached[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
}

// Identity returns the daemon identity from the Config.
func (h *Handle) Identity() string { return h.cfg.Identity }

// Context returns the attribute space context name.
func (h *Handle) Context() string { return h.cfg.Context }

func (h *Handle) traceStep(action, detail string) {
	if h.cfg.Trace != nil {
		h.cfg.Trace.Record(h.cfg.Identity, action, detail)
	}
}

// kernel returns the configured process substrate or ErrNoKernel.
func (h *Handle) kernel() (*procsim.Kernel, error) {
	if h.cfg.Kernel == nil {
		return nil, ErrNoKernel
	}
	return h.cfg.Kernel, nil
}
