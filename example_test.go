package tdp_test

import (
	"context"
	"fmt"
	"log"

	"tdp"
	"tdp/internal/procsim"
)

// Example shows the complete create-mode handshake of the paper's
// Figure 3A: the resource manager creates the application paused and
// publishes its pid; the tool fetches the pid, attaches, instruments,
// and continues.
func Example() {
	lass, lassAddr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lass.Close()
	kernel := procsim.NewKernel()

	// Resource manager side.
	rm, err := tdp.Init(tdp.Config{Context: "job", LASSAddr: lassAddr, Kernel: kernel, Identity: "RM"})
	if err != nil {
		log.Fatal(err)
	}
	defer rm.Exit()
	phases := []procsim.PhaseSpec{{Name: "work", Units: 1}}
	app, err := rm.CreateProcess(tdp.ProcessSpec{
		Executable: "app",
		Program:    procsim.NewPhasedProgram(3, phases),
		Symbols:    procsim.PhasedSymbols(phases),
	}, tdp.StartPaused)
	if err != nil {
		log.Fatal(err)
	}
	rm.PublishPID(app)

	// Run-time tool side.
	rt, err := tdp.Init(tdp.Config{Context: "job", LASSAddr: lassAddr, Kernel: kernel, Identity: "RT"})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Exit()
	pid, _ := rt.GetPID(context.Background())
	target, _ := rt.Attach(pid)
	calls := 0
	target.InsertProbe("work", func(*procsim.ProcContext) { calls++ }, nil)
	target.Continue()
	status, _ := target.Wait()

	fmt.Printf("status=%s probe-calls=%d\n", status, calls)
	// Output: status=exit(0) probe-calls=3
}

// ExampleHandle_AsyncGet shows the §3.3 event-notification model: two
// asynchronous gets whose callbacks run only inside ServiceEvents, at
// a safe point of the daemon's own loop.
func ExampleHandle_AsyncGet() {
	lass, lassAddr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lass.Close()

	h, err := tdp.Init(tdp.Config{Context: "job", LASSAddr: lassAddr, Identity: "tool"})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Exit()

	done := make(chan struct{})
	h.AsyncGet(tdp.AttrPID, func(r tdp.Result, arg any) {
		fmt.Printf("%s=%s (%v)\n", r.Attr, r.Value, arg)
		close(done)
	}, "my-arg")

	h.Put(tdp.AttrPID, "1234") // normally the RM's side

	// The daemon's poll loop: wait for descriptor activity, then
	// service callbacks at a known-safe point.
	for {
		select {
		case <-h.Activity():
			h.ServiceEvents()
		case <-done:
			return
		}
	}
	// Output: pid=1234 (my-arg)
}

// ExampleHandle_WaitStatus shows the §2.3 monitoring division: the RM
// publishes status transitions; the tool observes them through the
// attribute space instead of racing the OS for the exit code.
func ExampleHandle_WaitStatus() {
	lass, lassAddr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lass.Close()
	kernel := procsim.NewKernel()

	rm, err := tdp.Init(tdp.Config{Context: "job", LASSAddr: lassAddr, Kernel: kernel, Identity: "RM"})
	if err != nil {
		log.Fatal(err)
	}
	defer rm.Exit()
	app, _ := rm.CreateProcess(tdp.ProcessSpec{
		Executable: "app", Program: procsim.NewExitingProgram(7), Symbols: procsim.StdSymbols,
	}, tdp.StartPaused)
	stop, _ := rm.MonitorProcess(app)
	defer stop()

	rt, err := tdp.Init(tdp.Config{Context: "job", LASSAddr: lassAddr, Identity: "RT"})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Exit()

	app.Continue()
	status, _ := rt.WaitStatus(context.Background(), "exited:")
	fmt.Println(status)
	// Output: exited:exit(7)
}
