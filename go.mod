module tdp

go 1.22
