package tdp

import (
	"context"
	"errors"
	"testing"
	"time"

	"tdp/internal/procsim"
	"tdp/internal/trace"
)

// newLASS starts a LASS for a test and returns its address.
func newLASS(t *testing.T) string {
	t.Helper()
	srv, addr, err := ServeLASS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeLASS: %v", err)
	}
	t.Cleanup(srv.Close)
	return addr
}

func initT(t *testing.T, cfg Config) *Handle {
	t.Helper()
	h, err := Init(cfg)
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	t.Cleanup(func() { h.Exit() })
	return h
}

func TestInitValidation(t *testing.T) {
	if _, err := Init(Config{LASSAddr: "x"}); err == nil {
		t.Error("Init without context succeeded")
	}
	if _, err := Init(Config{Context: "c"}); err == nil {
		t.Error("Init without LASS succeeded")
	}
	if _, err := Init(Config{Context: "c", LASSAddr: "127.0.0.1:1"}); err == nil {
		t.Error("Init with dead LASS succeeded")
	}
}

func TestInitCASSFailureClosesLASS(t *testing.T) {
	addr := newLASS(t)
	if _, err := Init(Config{Context: "c", LASSAddr: addr, CASSAddr: "127.0.0.1:1"}); err == nil {
		t.Error("Init with dead CASS succeeded")
	}
}

func TestPutGetBetweenDaemons(t *testing.T) {
	addr := newLASS(t)
	rm := initT(t, Config{Context: "job1", LASSAddr: addr, Identity: "RM"})
	rt := initT(t, Config{Context: "job1", LASSAddr: addr, Identity: "RT"})

	got := make(chan string, 1)
	go func() {
		v, err := rt.Get(context.Background(), AttrPID)
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	if err := rm.Put(AttrPID, "1000"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	select {
	case v := <-got:
		if v != "1000" {
			t.Errorf("Get = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking Get never completed")
	}
}

func TestTryGetDeleteSnapshot(t *testing.T) {
	addr := newLASS(t)
	h := initT(t, Config{Context: "c", LASSAddr: addr})
	if _, err := h.TryGet("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("TryGet absent: %v", err)
	}
	h.Put("a", "1")
	h.Put(AttrArgs, "-p1500 -P2000")
	snap, err := h.Snapshot()
	if err != nil || len(snap) != 2 || snap[AttrArgs] != "-p1500 -P2000" {
		t.Errorf("Snapshot = %v, %v", snap, err)
	}
	if err := h.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := h.TryGet("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("after Delete: %v", err)
	}
}

func TestContextDestroyedAtLastExit(t *testing.T) {
	srv, addr, err := ServeLASS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeLASS: %v", err)
	}
	defer srv.Close()
	a, _ := Init(Config{Context: "job", LASSAddr: addr})
	b, _ := Init(Config{Context: "job", LASSAddr: addr})
	a.Put("k", "v")
	a.Exit()
	// Context survives with one participant.
	deadline := time.Now().Add(time.Second)
	for srv.Space().Refs("job") != 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if v, err := b.TryGet("k"); err != nil || v != "v" {
		t.Fatalf("attribute lost early: %q, %v", v, err)
	}
	b.Exit()
	for srv.Space().Refs("job") != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Space().Refs("job") != 0 {
		t.Error("context not destroyed after last tdp_exit")
	}
}

func TestCreateProcessRequiresKernel(t *testing.T) {
	addr := newLASS(t)
	h := initT(t, Config{Context: "c", LASSAddr: addr})
	if _, err := h.CreateProcess(ProcessSpec{}, StartRun); !errors.Is(err, ErrNoKernel) {
		t.Errorf("err = %v, want ErrNoKernel", err)
	}
	if _, err := h.Attach(1); !errors.Is(err, ErrNoKernel) {
		t.Errorf("Attach err = %v, want ErrNoKernel", err)
	}
}

func TestCreateProcessRunAndWait(t *testing.T) {
	addr := newLASS(t)
	k := procsim.NewKernel()
	h := initT(t, Config{Context: "c", LASSAddr: addr, Kernel: k, Identity: "RM"})
	p, err := h.CreateProcess(ProcessSpec{
		Executable: "app",
		Program:    procsim.NewExitingProgram(3),
		Symbols:    procsim.StdSymbols,
	}, StartRun)
	if err != nil {
		t.Fatalf("CreateProcess: %v", err)
	}
	st, err := p.Wait()
	if err != nil || st.Code != 3 {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	if _, ok := p.ExitStatus(); !ok {
		t.Error("ExitStatus not recorded")
	}
}

func TestCreatePausedThenAttachInstrumentContinue(t *testing.T) {
	// The full §2.2-case-2 flow on the public API.
	addr := newLASS(t)
	k := procsim.NewKernel()
	rm := initT(t, Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RM"})
	rt := initT(t, Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RT"})

	phases := []procsim.PhaseSpec{{Name: "work", Units: 1}}
	ap, err := rm.CreateProcess(ProcessSpec{
		Executable: "foo",
		Program:    procsim.NewPhasedProgram(3, phases),
		Symbols:    procsim.PhasedSymbols(phases),
	}, StartPaused)
	if err != nil {
		t.Fatalf("CreateProcess: %v", err)
	}
	if ap.State() != procsim.StateCreated {
		t.Fatalf("state = %v, want created", ap.State())
	}
	if err := rm.PublishPID(ap); err != nil {
		t.Fatalf("PublishPID: %v", err)
	}

	pid, err := rt.GetPID(context.Background())
	if err != nil {
		t.Fatalf("GetPID: %v", err)
	}
	tp, err := rt.Attach(pid)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	calls := 0
	if _, err := tp.InsertProbe("work", func(*procsim.ProcContext) { calls++ }, nil); err != nil {
		t.Fatalf("InsertProbe: %v", err)
	}
	if err := tp.Continue(); err != nil {
		t.Fatalf("Continue: %v", err)
	}
	st, err := tp.Wait()
	if errors.Is(err, procsim.ErrStatusStolen) {
		t.Fatalf("tracer wait: %v", err)
	}
	_ = st
	if calls != 3 {
		t.Errorf("probe fired %d times, want 3 — instrumentation missed the start of main", calls)
	}
}

func TestGetPIDRejectsGarbage(t *testing.T) {
	addr := newLASS(t)
	h := initT(t, Config{Context: "c", LASSAddr: addr})
	h.Put(AttrPID, "not-a-number")
	if _, err := h.GetPID(context.Background()); err == nil {
		t.Error("GetPID accepted garbage")
	}
}

func TestFindProcess(t *testing.T) {
	addr := newLASS(t)
	k := procsim.NewKernel()
	h := initT(t, Config{Context: "c", LASSAddr: addr, Kernel: k})
	p, _ := h.CreateProcess(ProcessSpec{Executable: "x", Program: procsim.NewExitingProgram(0)}, StartPaused)
	found, err := h.FindProcess(p.PID())
	if err != nil || found.PID() != p.PID() {
		t.Fatalf("FindProcess: %v", err)
	}
	if _, err := h.FindProcess(procsim.PID(1)); err == nil {
		t.Error("FindProcess of missing pid succeeded")
	}
	p.Kill("")
}

func TestAsyncGetServiceEvents(t *testing.T) {
	addr := newLASS(t)
	h := initT(t, Config{Context: "c", LASSAddr: addr})

	type done struct {
		r   Result
		arg any
	}
	var completions []done
	cb := func(r Result, arg any) { completions = append(completions, done{r, arg}) }

	// The paper's §3.3 pseudo-code: two async gets, then the poll loop.
	if err := h.AsyncGet(AttrPID, cb, "arg1"); err != nil {
		t.Fatalf("AsyncGet: %v", err)
	}
	if err := h.AsyncGet(AttrExecutable, cb, "arg2"); err != nil {
		t.Fatalf("AsyncGet: %v", err)
	}
	h.Put(AttrPID, "7")
	h.Put(AttrExecutable, "foo")

	deadline := time.After(2 * time.Second)
	for len(completions) < 2 {
		select {
		case <-h.Activity():
			h.ServiceEvents()
		case <-deadline:
			t.Fatalf("completions = %d, want 2", len(completions))
		}
	}
	byArg := map[any]Result{}
	for _, d := range completions {
		byArg[d.arg] = d.r
	}
	if r := byArg["arg1"]; r.Err != nil || r.Value != "7" || r.Attr != AttrPID {
		t.Errorf("arg1 completion = %+v", r)
	}
	if r := byArg["arg2"]; r.Err != nil || r.Value != "foo" {
		t.Errorf("arg2 completion = %+v", r)
	}
}

func TestCallbacksDoNotRunBeforeServiceEvents(t *testing.T) {
	addr := newLASS(t)
	h := initT(t, Config{Context: "c", LASSAddr: addr})
	ran := false
	h.Put("k", "v")
	h.AsyncGet("k", func(Result, any) { ran = true }, nil)
	// Wait until the completion is queued.
	deadline := time.Now().Add(2 * time.Second)
	for h.PendingEvents() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ran {
		t.Fatal("callback ran outside ServiceEvents")
	}
	if n := h.ServiceEvents(); n != 1 {
		t.Fatalf("ServiceEvents = %d", n)
	}
	if !ran {
		t.Fatal("callback did not run")
	}
}

func TestAsyncPut(t *testing.T) {
	addr := newLASS(t)
	h := initT(t, Config{Context: "c", LASSAddr: addr})
	var got Result
	h.AsyncPut("k", "v", func(r Result, _ any) { got = r }, nil)
	deadline := time.Now().Add(2 * time.Second)
	for h.PendingEvents() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h.ServiceEvents()
	if got.Err != nil || got.Attr != "k" || got.Value != "v" {
		t.Errorf("async put result = %+v", got)
	}
	if v, _ := h.TryGet("k"); v != "v" {
		t.Error("async put did not store value")
	}
}

func TestWatchUpdates(t *testing.T) {
	addr := newLASS(t)
	rm := initT(t, Config{Context: "c", LASSAddr: addr, Identity: "RM"})
	rt := initT(t, Config{Context: "c", LASSAddr: addr, Identity: "RT"})
	var seen []string
	if err := rt.WatchUpdates(func(attr, value, op string) {
		seen = append(seen, op+":"+attr+"="+value)
	}); err != nil {
		t.Fatalf("WatchUpdates: %v", err)
	}
	rm.Put(AttrStatus, "running")
	rm.Put(AttrStatus, "stopped")
	deadline := time.After(2 * time.Second)
	for len(seen) < 2 {
		select {
		case <-rt.Activity():
			rt.ServiceEvents()
		case <-deadline:
			t.Fatalf("seen = %v", seen)
		}
	}
	if seen[0] != "put:process_status=running" || seen[1] != "put:process_status=stopped" {
		t.Errorf("seen = %v", seen)
	}
}

func TestGlobalSpace(t *testing.T) {
	lass := newLASS(t)
	cassSrv, cassAddr, err := ServeLASS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeLASS: %v", err)
	}
	defer cassSrv.Close()

	h := initT(t, Config{Context: "c", LASSAddr: lass, CASSAddr: cassAddr})
	if !h.HasGlobal() {
		t.Fatal("HasGlobal = false")
	}
	if err := h.PutGlobal(AttrFrontendAddr, "fe:2090"); err != nil {
		t.Fatalf("PutGlobal: %v", err)
	}
	v, err := h.GetGlobal(context.Background(), AttrFrontendAddr)
	if err != nil || v != "fe:2090" {
		t.Fatalf("GetGlobal = %q, %v", v, err)
	}
	if v, err := h.TryGetGlobal(AttrFrontendAddr); err != nil || v != "fe:2090" {
		t.Fatalf("TryGetGlobal = %q, %v", v, err)
	}
	// Global attribute is not in the local space.
	if _, err := h.TryGet(AttrFrontendAddr); !errors.Is(err, ErrNotFound) {
		t.Errorf("global leaked into local space: %v", err)
	}
}

func TestNoCASSErrors(t *testing.T) {
	addr := newLASS(t)
	h := initT(t, Config{Context: "c", LASSAddr: addr})
	if h.HasGlobal() {
		t.Error("HasGlobal = true without CASS")
	}
	if err := h.PutGlobal("a", "b"); !errors.Is(err, ErrNoCASS) {
		t.Errorf("PutGlobal: %v", err)
	}
	if _, err := h.GetGlobal(context.Background(), "a"); !errors.Is(err, ErrNoCASS) {
		t.Errorf("GetGlobal: %v", err)
	}
	if _, err := h.TryGetGlobal("a"); !errors.Is(err, ErrNoCASS) {
		t.Errorf("TryGetGlobal: %v", err)
	}
}

func TestMonitorProcessPublishesStatus(t *testing.T) {
	addr := newLASS(t)
	k := procsim.NewKernel()
	// Use the adversarial routing: tracer steals the wait status. The
	// attribute space must still carry the truth — §2.3's argument.
	k.SetStatusRouting(procsim.RouteTracer)
	rm := initT(t, Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RM"})
	rt := initT(t, Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RT"})

	ap, err := rm.CreateProcess(ProcessSpec{
		Executable: "app",
		Program:    procsim.NewExitingProgram(5),
		Symbols:    procsim.StdSymbols,
	}, StartPaused)
	if err != nil {
		t.Fatalf("CreateProcess: %v", err)
	}
	stop, err := rm.MonitorProcess(ap)
	if err != nil {
		t.Fatalf("MonitorProcess: %v", err)
	}
	defer stop()
	rm.PublishPID(ap)

	pid, _ := rt.GetPID(context.Background())
	tp, err := rt.Attach(pid)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	tp.Continue()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	status, err := rt.WaitStatus(ctx, "exited:")
	if err != nil {
		t.Fatalf("WaitStatus: %v", err)
	}
	if status != "exited:exit(5)" {
		t.Errorf("status = %q, want exited:exit(5)", status)
	}
	// The parent's wait was starved by routing, but TDP still knew.
	if _, err := ap.Wait(); !errors.Is(err, procsim.ErrStatusStolen) {
		t.Errorf("parent wait err = %v, want ErrStatusStolen (the quirk)", err)
	}
}

func TestRequestStartServeStartRequests(t *testing.T) {
	addr := newLASS(t)
	k := procsim.NewKernel()
	rm := initT(t, Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RM"})
	rt := initT(t, Config{Context: "job", LASSAddr: addr, Identity: "RT"})

	ap, _ := rm.CreateProcess(ProcessSpec{
		Executable: "app", Program: procsim.NewExitingProgram(0), Symbols: procsim.StdSymbols,
	}, StartPaused)
	served := make(chan error, 1)
	go func() { served <- rm.ServeStartRequests(context.Background(), ap) }()

	time.Sleep(10 * time.Millisecond)
	if ap.State() != procsim.StateCreated {
		t.Fatal("AP started before request")
	}
	if err := rt.RequestStart(); err != nil {
		t.Fatalf("RequestStart: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("ServeStartRequests: %v", err)
	}
	if st, err := ap.Wait(); err != nil || st.Code != 0 {
		t.Fatalf("Wait = %v, %v", st, err)
	}
}

func TestServeStartRequestsCancel(t *testing.T) {
	addr := newLASS(t)
	k := procsim.NewKernel()
	rm := initT(t, Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RM"})
	ap, _ := rm.CreateProcess(ProcessSpec{
		Executable: "app", Program: procsim.NewExitingProgram(0), Symbols: procsim.StdSymbols,
	}, StartPaused)
	defer ap.Kill("")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := rm.ServeStartRequests(ctx, ap); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
}

func TestStartModeString(t *testing.T) {
	if StartRun.String() != "run" || StartPaused.String() != "paused" {
		t.Error("StartMode strings wrong")
	}
}

func TestHandleAccessors(t *testing.T) {
	addr := newLASS(t)
	h := initT(t, Config{Context: "ctx7", LASSAddr: addr, Identity: "me"})
	if h.Identity() != "me" || h.Context() != "ctx7" {
		t.Errorf("accessors = %q, %q", h.Identity(), h.Context())
	}
}

// TestFigure3ACreateSequence reproduces Figure 3A: the RM creates the
// application paused, creates the RT running; the RT inits, attaches,
// and continues the application. The recorded TDP calls must appear in
// the paper's order.
func TestFigure3ACreateSequence(t *testing.T) {
	rec := trace.New()
	addr := newLASS(t)
	k := procsim.NewKernel()

	rm := initT(t, Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RM", Trace: rec})

	// RM: tdp_create_process(AP, paused)
	ap, err := rm.CreateProcess(ProcessSpec{
		Executable: "foo", Program: procsim.NewExitingProgram(0), Symbols: procsim.StdSymbols,
	}, StartPaused)
	if err != nil {
		t.Fatalf("create AP: %v", err)
	}
	rm.PublishPID(ap)

	// RM: tdp_create_process(RT, run). The RT here is a real simulated
	// process whose program performs the tool-side TDP calls.
	rtDone := make(chan error, 1)
	rtProg := procsim.ProgramFunc(func(pc *procsim.ProcContext) int {
		rt, err := Init(Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RT", Trace: rec})
		if err != nil {
			rtDone <- err
			return 1
		}
		defer rt.Exit()
		pid, err := rt.GetPID(context.Background())
		if err != nil {
			rtDone <- err
			return 1
		}
		tp, err := rt.Attach(pid)
		if err != nil {
			rtDone <- err
			return 1
		}
		if err := tp.Continue(); err != nil {
			rtDone <- err
			return 1
		}
		rtDone <- nil
		return 0
	})
	rtProc, err := rm.CreateProcess(ProcessSpec{Executable: "rt-daemon", Program: rtProg}, StartRun)
	if err != nil {
		t.Fatalf("create RT: %v", err)
	}
	if err := <-rtDone; err != nil {
		t.Fatalf("RT flow: %v", err)
	}
	if st, err := ap.Wait(); err != nil || st.Code != 0 {
		t.Fatalf("AP wait = %v, %v", st, err)
	}
	rtProc.Wait()

	// Assert the Figure 3A order.
	if err := rec.CheckOrder(
		"RM:tdp_init",
		"RM:tdp_create_process", // AP, paused
		"RM:tdp_create_process", // RT, run
		"RT:tdp_init",
		"RT:tdp_attach",
		"RT:tdp_continue_process",
	); err != nil {
		t.Error(err)
	}
	// The AP create must be paused, the RT create run.
	var creates []trace.Entry
	for _, e := range rec.ByActor("RM") {
		if e.Action == "tdp_create_process" {
			creates = append(creates, e)
		}
	}
	if len(creates) != 2 || creates[0].Detail != "foo,paused" || creates[1].Detail != "rt-daemon,run" {
		t.Errorf("creates = %v", creates)
	}
}

// TestFigure3BAttachSequence reproduces Figure 3B: the application is
// already running under the RM; the RT is created later, attaches, and
// continues it.
func TestFigure3BAttachSequence(t *testing.T) {
	rec := trace.New()
	addr := newLASS(t)
	k := procsim.NewKernel()

	rm := initT(t, Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RM", Trace: rec})

	// RM: tdp_create_process(AP, run) — the app runs for a while.
	ap, err := rm.CreateProcess(ProcessSpec{
		Executable: "server", Program: procsim.NewSpinnerProgram(), Symbols: procsim.StdSymbols,
	}, StartRun)
	if err != nil {
		t.Fatalf("create AP: %v", err)
	}
	rm.PublishPID(ap)

	// Later: RM creates the RT, which attaches to the running process.
	rt := initT(t, Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RT", Trace: rec})
	pid, err := rt.GetPID(context.Background())
	if err != nil {
		t.Fatalf("GetPID: %v", err)
	}
	tp, err := rt.Attach(pid)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	// Attach paused the running app (case 3: "pause the application").
	if ap.State() != procsim.StateStopped {
		t.Errorf("state after attach = %v, want stopped", ap.State())
	}
	if err := tp.Continue(); err != nil {
		t.Fatalf("Continue: %v", err)
	}
	if ap.State() != procsim.StateRunning {
		t.Errorf("state after continue = %v, want running", ap.State())
	}
	tp.Kill("")

	if err := rec.CheckOrder(
		"RM:tdp_init",
		"RM:tdp_create_process", // AP, run
		"RT:tdp_init",
		"RT:tdp_attach",
		"RT:tdp_continue_process",
	); err != nil {
		t.Error(err)
	}
}
