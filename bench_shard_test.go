package tdp_test

// Shard-scaling benchmarks for the partitioned CASS (DESIGN §13,
// experiment E20). The point being priced is the router's ability to
// overlap per-shard round trips: on this single-CPU reference box the
// shards cannot add compute, so all scaling must come from keeping
// several cross-host writes in flight at once. The injected 2ms write
// stall models that cross-host hop (same device as the GlobalGetCached
// slow link, just slower); with it in place, a single shard's
// throughput is capped at ShardBatch ops per link delay, while n
// shards run n group-commit cycles concurrently. The drivers call the
// GlobalCache router directly — the client↔LASS leg is priced
// separately by BenchmarkSameHostPut and would only dilute the
// fan-out signal here.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdp/internal/attrspace"
)

// shardLinkDelay is the modeled LASS→CASS one-way hop. It must dwarf
// the per-op CPU cost (~10-20µs on the reference box) for the
// overlap, not the compute, to set the curve.
const shardLinkDelay = 2 * time.Millisecond

// benchShardPool starts n shard daemons plus a routing GlobalCache
// whose upstream links all carry shardLinkDelay, and returns the
// router and `contexts` context names spread evenly over the shards
// (contexts must be a multiple of n).
func benchShardPool(b *testing.B, n, contexts int) (*attrspace.GlobalCache, []string) {
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := attrspace.NewServer()
		if err := srv.SetShard(i, n); err != nil {
			b.Fatal(err)
		}
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Close)
		addrs[i] = addr
	}
	lass := attrspace.NewServer()
	gc := lass.EnableGlobalCache(strings.Join(addrs, ","), attrspace.CacheConfig{
		Dial:       slowDial(shardLinkDelay),
		ShardBatch: 4,
	})
	b.Cleanup(lass.Close)
	// One context per worker, dealt round-robin so every shard owns an
	// equal share: ctxs[w] belongs to shard w%n.
	perShard := contexts / n
	counts := make([]int, n)
	ctxs := make([]string, contexts)
	for i, found := 0, 0; found < contexts; i++ {
		name := fmt.Sprintf("job-%d", i)
		idx := attrspace.ShardIndex(name, n)
		if counts[idx] == perShard {
			continue
		}
		ctxs[idx+n*counts[idx]] = name
		counts[idx]++
		found++
	}
	return gc, ctxs
}

// BenchmarkCASSSharded drives 64 concurrent writers through the
// routing layer at 1, 2, and 4 shards. Near-linear scaling is the
// acceptance bar: shards=4 must clear 3× the shards=1 throughput.
func BenchmarkCASSSharded(b *testing.B) {
	const workers = 32
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			gc, ctxs := benchShardPool(b, n, workers)
			bg := context.Background()
			// Prime every context so per-context cache state and the
			// pooled shard connections exist before the clock starts.
			for _, name := range ctxs {
				if _, err := gc.Put(bg, name, "warm", "1"); err != nil {
					b.Fatal(err)
				}
			}
			var next int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					name := ctxs[w]
					key := fmt.Sprintf("k%d", w)
					for {
						if atomic.AddInt64(&next, 1) > int64(b.N) {
							return
						}
						if _, err := gc.Put(bg, name, key, "v"); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkCASSShardedSnapshotMany prices one mixed-context GSNAPM: 16
// contexts spread over 4 shards, snapshotted in a single scatter-gather
// call. The gather overlaps the four per-shard round trips, so one call
// costs roughly one link delay, not four.
func BenchmarkCASSShardedSnapshotMany(b *testing.B) {
	const n = 4
	gc, names := benchShardPool(b, n, 16)
	bg := context.Background()
	for _, name := range names {
		for a := 0; a < 8; a++ {
			if _, err := gc.Put(bg, name, fmt.Sprintf("a%d", a), "v"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snaps, err := gc.SnapshotMany(bg, names)
		if err != nil {
			b.Fatal(err)
		}
		if len(snaps) != 16 {
			b.Fatalf("SnapshotMany = %d contexts, want 16", len(snaps))
		}
	}
}
