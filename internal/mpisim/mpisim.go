// Package mpisim provides a miniature MPI runtime for the simulated
// process substrate, sufficient to reproduce the paper's MPI-universe
// experiment (§4.3): a job of N ranks where rank 0 (the "master
// process" in MPICH ch_p4 terms) starts first, each rank gets its own
// paradynd attached before execution, and ranks synchronize with
// barriers and point-to-point sends.
//
// A World is the per-job communicator. Worlds are registered in a
// package table under a unique id so rank programs — created
// independently on each simulated machine — can find their
// communicator from an argv flag, the way real MPICH ch_p4 processes
// find each other from the procgroup file.
package mpisim

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"tdp/internal/procsim"
)

// ErrNoWorld is returned when a rank references an unregistered world.
var ErrNoWorld = errors.New("mpisim: no such world")

// World is one MPI job's communicator.
type World struct {
	id   string
	size int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int // barrier bookkeeping
	epoch   int
	boxes   []chan message // one mailbox per rank
	started []bool
}

type message struct {
	from    int
	tag     int
	payload string
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(id string, size int) *World {
	w := &World{id: id, size: size, boxes: make([]chan message, size), started: make([]bool, size)}
	w.cond = sync.NewCond(&w.mu)
	for i := range w.boxes {
		w.boxes[i] = make(chan message, 64)
	}
	return w
}

// ID returns the world's registry id.
func (w *World) ID() string { return w.id }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// markStarted records that a rank entered the world.
func (w *World) markStarted(rank int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if rank >= 0 && rank < w.size {
		w.started[rank] = true
	}
}

// StartedRanks returns how many ranks have entered.
func (w *World) StartedRanks() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, s := range w.started {
		if s {
			n++
		}
	}
	return n
}

// Barrier blocks until all ranks have called it (per epoch).
func (w *World) Barrier() {
	w.mu.Lock()
	epoch := w.epoch
	w.arrived++
	if w.arrived == w.size {
		w.arrived = 0
		w.epoch++
		w.cond.Broadcast()
		w.mu.Unlock()
		return
	}
	for epoch == w.epoch {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// Send delivers a message to a rank's mailbox (buffered, asynchronous).
func (w *World) Send(from, to, tag int, payload string) error {
	if to < 0 || to >= w.size {
		return fmt.Errorf("mpisim: send to invalid rank %d", to)
	}
	w.boxes[to] <- message{from: from, tag: tag, payload: payload}
	return nil
}

// Recv blocks for the next message addressed to rank and returns its
// source, tag and payload.
func (w *World) Recv(rank int) (from, tag int, payload string, err error) {
	if rank < 0 || rank >= w.size {
		return 0, 0, "", fmt.Errorf("mpisim: recv on invalid rank %d", rank)
	}
	m := <-w.boxes[rank]
	return m.from, m.tag, m.payload, nil
}

// registry of live worlds.
var (
	regMu  sync.Mutex
	worlds = make(map[string]*World)
	nextID int
)

// Register creates and registers a world with a fresh id.
func Register(size int) *World {
	regMu.Lock()
	defer regMu.Unlock()
	nextID++
	id := "world-" + strconv.Itoa(nextID)
	w := NewWorld(id, size)
	worlds[id] = w
	return w
}

// Lookup finds a registered world.
func Lookup(id string) (*World, error) {
	regMu.Lock()
	defer regMu.Unlock()
	w, ok := worlds[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoWorld, id)
	}
	return w, nil
}

// Unregister removes a world when its job completes.
func Unregister(id string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(worlds, id)
}

// RankArgs appends the MPI bootstrap flags a starter passes to a rank
// program's argv.
func RankArgs(args []string, worldID string) []string {
	return append(append([]string(nil), args...), "--mpi-world="+worldID)
}

// ParseRankArgs extracts --mpi-rank, --mpi-size and --mpi-world from
// argv (the flags added by the MPI shadow and starter).
func ParseRankArgs(args []string) (rank, size int, worldID string) {
	size = 1
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "--mpi-rank="):
			rank, _ = strconv.Atoi(a[len("--mpi-rank="):])
		case strings.HasPrefix(a, "--mpi-size="):
			size, _ = strconv.Atoi(a[len("--mpi-size="):])
		case strings.HasPrefix(a, "--mpi-world="):
			worldID = a[len("--mpi-world="):]
		}
	}
	return rank, size, worldID
}

// NewRingProgram returns the canonical MPI test program: each rank
// joins its world, all ranks barrier, then a token travels the ring
// 0 → 1 → … → N-1 → 0, then a final barrier. Rank 0 exits with the
// number of hops the token made; other ranks exit 0. Each rank
// performs instrumentable work in "compute" between steps.
func NewRingProgram() procsim.Program {
	return procsim.ProgramFunc(func(ctx *procsim.ProcContext) int {
		rank, size, worldID := ParseRankArgs(ctx.Args())
		w, err := Lookup(worldID)
		if err != nil {
			fmt.Fprintf(ctx.Stderr(), "rank %d: %v\n", rank, err)
			return 1
		}
		w.markStarted(rank)
		ret := 0
		ctx.Call("main", func() {
			ctx.Call("compute", func() { ctx.Compute(5) })
			w.Barrier()
			if size == 1 {
				return
			}
			if rank == 0 {
				w.Send(0, 1, 1, "token:0")
				_, _, payload, _ := w.Recv(0)
				hops, _ := strconv.Atoi(strings.TrimPrefix(payload, "token:"))
				ret = hops
			} else {
				_, _, payload, _ := w.Recv(rank)
				hops, _ := strconv.Atoi(strings.TrimPrefix(payload, "token:"))
				next := (rank + 1) % size
				w.Send(rank, next, 1, "token:"+strconv.Itoa(hops+1))
			}
			ctx.Call("compute", func() { ctx.Compute(5) })
			w.Barrier()
		})
		return ret
	})
}

// RingSymbols is the symbol table for NewRingProgram.
var RingSymbols = []string{"main", "compute"}
