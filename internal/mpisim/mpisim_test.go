package mpisim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tdp/internal/procsim"
)

func TestBarrierReleasesAllRanks(t *testing.T) {
	w := NewWorld("w", 4)
	var wg sync.WaitGroup
	var after sync.WaitGroup
	released := make(chan int, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		after.Add(1)
		go func(r int) {
			defer after.Done()
			wg.Done()
			w.Barrier()
			released <- r
		}(r)
	}
	wg.Wait()
	after.Wait()
	if len(released) != 4 {
		t.Fatalf("released = %d", len(released))
	}
}

func TestBarrierBlocksUntilLast(t *testing.T) {
	w := NewWorld("w", 2)
	done := make(chan struct{})
	go func() {
		w.Barrier()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("barrier released with one of two ranks")
	case <-time.After(30 * time.Millisecond):
	}
	w.Barrier()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("barrier never released")
	}
}

func TestBarrierMultipleEpochs(t *testing.T) {
	w := NewWorld("w", 3)
	const rounds = 5
	var wg sync.WaitGroup
	counts := make([]int, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				w.Barrier()
				counts[r]++
			}
		}(r)
	}
	wg.Wait()
	for r, c := range counts {
		if c != rounds {
			t.Errorf("rank %d completed %d rounds", r, c)
		}
	}
}

func TestSendRecv(t *testing.T) {
	w := NewWorld("w", 2)
	if err := w.Send(0, 1, 7, "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	from, tag, payload, err := w.Recv(1)
	if err != nil || from != 0 || tag != 7 || payload != "hello" {
		t.Errorf("Recv = %d %d %q %v", from, tag, payload, err)
	}
}

func TestSendRecvInvalidRank(t *testing.T) {
	w := NewWorld("w", 2)
	if err := w.Send(0, 5, 0, "x"); err == nil {
		t.Error("Send to rank 5 succeeded")
	}
	if err := w.Send(0, -1, 0, "x"); err == nil {
		t.Error("Send to rank -1 succeeded")
	}
	if _, _, _, err := w.Recv(9); err == nil {
		t.Error("Recv on rank 9 succeeded")
	}
}

func TestMessageOrderPerSender(t *testing.T) {
	w := NewWorld("w", 2)
	for i := 0; i < 50; i++ {
		w.Send(0, 1, i, fmt.Sprintf("m%d", i))
	}
	for i := 0; i < 50; i++ {
		_, tag, _, err := w.Recv(1)
		if err != nil || tag != i {
			t.Fatalf("message %d: tag %d, %v", i, tag, err)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	w1 := Register(2)
	w2 := Register(3)
	if w1.ID() == w2.ID() {
		t.Error("duplicate world ids")
	}
	got, err := Lookup(w1.ID())
	if err != nil || got != w1 {
		t.Fatalf("Lookup: %v", err)
	}
	Unregister(w1.ID())
	if _, err := Lookup(w1.ID()); err == nil {
		t.Error("Lookup after Unregister succeeded")
	}
	Unregister(w2.ID())
	Unregister(w2.ID()) // idempotent
}

func TestRingProgramStandalone(t *testing.T) {
	// Run the ring program directly on a kernel, one process per rank.
	const n = 4
	w := Register(n)
	defer Unregister(w.ID())
	k := procsim.NewKernel()
	procs := make([]*procsim.Process, n)
	for r := 0; r < n; r++ {
		args := RankArgs(nil, w.ID())
		args = append(args, fmt.Sprintf("--mpi-rank=%d", r), fmt.Sprintf("--mpi-size=%d", n))
		p, err := k.Spawn(procsim.Spec{
			Executable: "ring", Args: args, Program: NewRingProgram(), Symbols: RingSymbols,
		}, false)
		if err != nil {
			t.Fatalf("spawn rank %d: %v", r, err)
		}
		procs[r] = p
	}
	for r, p := range procs {
		st, err := p.WaitParent()
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		want := 0
		if r == 0 {
			want = n - 1 // hops
		}
		if st.Code != want {
			t.Errorf("rank %d exit = %v, want %d", r, st, want)
		}
	}
	if w.StartedRanks() != n {
		t.Errorf("StartedRanks = %d", w.StartedRanks())
	}
}

func TestRingProgramBadWorld(t *testing.T) {
	k := procsim.NewKernel()
	var errBuf strings.Builder
	p, err := k.Spawn(procsim.Spec{
		Executable: "ring", Args: []string{"--mpi-world=ghost"},
		Program: NewRingProgram(), Symbols: RingSymbols, Stderr: &errBuf,
	}, false)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	st, _ := p.WaitParent()
	if st.Code != 1 {
		t.Errorf("exit = %v, want 1", st)
	}
	if !strings.Contains(errBuf.String(), "no such world") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestSingleRankRing(t *testing.T) {
	w := Register(1)
	defer Unregister(w.ID())
	k := procsim.NewKernel()
	args := append(RankArgs(nil, w.ID()), "--mpi-rank=0", "--mpi-size=1")
	p, _ := k.Spawn(procsim.Spec{Executable: "ring", Args: args, Program: NewRingProgram(), Symbols: RingSymbols}, false)
	st, err := p.WaitParent()
	if err != nil || st.Code != 0 {
		t.Errorf("single-rank ring = %v, %v", st, err)
	}
}

// Property: a token ring of any size 2..8 makes exactly size-1 hops.
func TestQuickRingHops(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%7) + 2
		w := Register(n)
		defer Unregister(w.ID())
		k := procsim.NewKernel()
		procs := make([]*procsim.Process, n)
		for r := 0; r < n; r++ {
			args := append(RankArgs(nil, w.ID()),
				fmt.Sprintf("--mpi-rank=%d", r), fmt.Sprintf("--mpi-size=%d", n))
			p, err := k.Spawn(procsim.Spec{Executable: "ring", Args: args, Program: NewRingProgram(), Symbols: RingSymbols}, false)
			if err != nil {
				return false
			}
			procs[r] = p
		}
		st, err := procs[0].WaitParent()
		if err != nil || st.Code != n-1 {
			return false
		}
		for _, p := range procs[1:] {
			if st, err := p.WaitParent(); err != nil || st.Code != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
