package tools

import (
	"strings"
	"testing"
	"time"

	"tdp"
	"tdp/internal/procsim"
	"tdp/internal/rmkit"
	"tdp/internal/toolapi"
)

func workApp(iters int) ([]procsim.PhaseSpec, procsim.Program) {
	phases := []procsim.PhaseSpec{{Name: "work", Units: 3}}
	return phases, procsim.NewPhasedProgram(iters, phases)
}

func TestTracerRecordsEvents(t *testing.T) {
	rm, err := rmkit.NewForkRM(nil)
	if err != nil {
		t.Fatalf("NewForkRM: %v", err)
	}
	defer rm.Close()

	phases, prog := workApp(4)
	var toolOut strings.Builder
	st, err := rm.Run(rmkit.JobSpec{
		Name: "app", Program: prog, Symbols: procsim.PhasedSymbols(phases),
		Tool: Tracer(), ToolOut: &toolOut,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Code != 0 {
		t.Errorf("exit = %v", st)
	}
	out := toolOut.String()
	if got := strings.Count(out, "TRACE enter work"); got != 4 {
		t.Errorf("enter events = %d, want 4\n%s", got, out)
	}
	if got := strings.Count(out, "TRACE leave work"); got != 4 {
		t.Errorf("leave events = %d, want 4", got)
	}
	if !strings.Contains(out, "TRACE-END exit(0)") {
		t.Errorf("missing trace end: %s", out)
	}
	// The tracer saw the start of main — event count includes main.
	if !strings.Contains(out, "TRACE enter main") {
		t.Errorf("tracer missed main entry — attach happened too late:\n%s", out)
	}
}

func TestTracerRefusesRunningProcess(t *testing.T) {
	// Vampir-style tools cannot attach late (§2.2). A tracer handed an
	// already-running application must fail loudly.
	host, err := rmkit.NewHost("h")
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer host.Close()

	phases, prog := workApp(100000)
	ap, err := host.Kernel.Spawn(procsim.Spec{
		Executable: "app", Program: prog, Symbols: procsim.PhasedSymbols(phases),
	}, false) // running
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	defer ap.Kill("")

	// RM side: publish the running pid.
	h, err := tdp.Init(tdp.Config{Context: "neg", LASSAddr: host.LASSAddr, Kernel: host.Kernel, Identity: "rm"})
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	defer h.Exit()
	h.Put(tdp.AttrPID, tdp.FormatPID(ap.PID()))

	var errBuf strings.Builder
	env := toolapi.Env{Machine: "h", Kernel: host.Kernel, LASSAddr: host.LASSAddr, Context: "neg"}
	tp, err := host.Kernel.Spawn(procsim.Spec{
		Executable: "tracer", Program: Tracer()(env, nil), Stderr: &errBuf,
	}, false)
	if err != nil {
		t.Fatalf("spawn tracer: %v", err)
	}
	st, err := tp.WaitParent()
	if err != nil {
		t.Fatalf("wait tracer: %v", err)
	}
	if st.Code == 0 {
		t.Error("tracer accepted a running process")
	}
	if !strings.Contains(errBuf.String(), "requires create-paused") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestDebuggerBreakpoints(t *testing.T) {
	rm, err := rmkit.NewForkRM(nil)
	if err != nil {
		t.Fatalf("NewForkRM: %v", err)
	}
	defer rm.Close()

	phases, prog := workApp(10)
	var toolOut strings.Builder
	st, err := rm.Run(rmkit.JobSpec{
		Name: "app", Program: prog, Symbols: procsim.PhasedSymbols(phases),
		Tool: Debugger(), ToolArgs: []string{"-bwork", "-n3"}, ToolOut: &toolOut,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Code != 0 {
		t.Errorf("exit = %v", st)
	}
	out := toolOut.String()
	if got := strings.Count(out, "DEBUG stop"); got != 3 {
		t.Errorf("stops = %d, want 3\n%s", got, out)
	}
	if !strings.Contains(out, "DEBUG-END breakpoint=work hits=3 status=exit(0)") {
		t.Errorf("missing session summary: %s", out)
	}
}

func TestDebuggerUnknownBreakpoint(t *testing.T) {
	host, err := rmkit.NewHost("h")
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer host.Close()

	phases, prog := workApp(2)
	ap, err := host.Kernel.Spawn(procsim.Spec{
		Executable: "app", Program: prog, Symbols: procsim.PhasedSymbols(phases),
	}, true) // paused, as under a real RM
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	defer ap.Kill("")

	h, err := tdp.Init(tdp.Config{Context: "dbg-neg", LASSAddr: host.LASSAddr, Kernel: host.Kernel, Identity: "rm"})
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	defer h.Exit()
	h.Put(tdp.AttrPID, tdp.FormatPID(ap.PID()))

	var errBuf strings.Builder
	env := toolapi.Env{Machine: "h", Kernel: host.Kernel, LASSAddr: host.LASSAddr, Context: "dbg-neg"}
	tp, err := host.Kernel.Spawn(procsim.Spec{
		Executable: "debugger", Program: Debugger()(env, []string{"-bnosuchfn"}), Stderr: &errBuf,
	}, false)
	if err != nil {
		t.Fatalf("spawn debugger: %v", err)
	}
	st, err := tp.WaitParent()
	if err != nil {
		t.Fatalf("wait debugger: %v", err)
	}
	if st.Code == 0 {
		t.Error("debugger accepted an unknown breakpoint symbol")
	}
	if !strings.Contains(errBuf.String(), `no symbol "nosuchfn"`) {
		t.Errorf("stderr = %q", errBuf.String())
	}
}
