package tools

import (
	"context"
	"fmt"
	"strings"
	"time"

	"tdp"
	"tdp/internal/procsim"
	"tdp/internal/toolapi"
)

// DebuggerReport summarizes a debugging session; the daemon prints it
// as its last stdout line in the form
// "DEBUG-END breakpoint=<fn> hits=<n> status=<exit>".
type DebuggerReport struct {
	Breakpoint string
	Hits       int
	Status     string
}

// Debugger returns a gdb-style tool factory. Args: the first argument
// of the form "-b<function>" names the breakpoint target (default
// "work"); "-n<count>" limits how many hits are taken before the
// breakpoint is removed (default 3).
//
// On every hit the daemon pauses the application (through TDP — the
// controlling-entity discipline of §2.3), publishes
// "debug_state=stopped@<fn>" in the attribute space so the RM can tell
// a debugger stop from a fault, inspects the paused process (reads its
// symbol list, standing in for reading variables), publishes
// "debug_state=running", and resumes.
func Debugger() toolapi.Factory {
	return func(env toolapi.Env, args []string) procsim.Program {
		bp := "work"
		maxHits := 3
		for _, a := range args {
			if strings.HasPrefix(a, "-b") && len(a) > 2 {
				bp = a[2:]
			}
			if strings.HasPrefix(a, "-n") && len(a) > 2 {
				fmt.Sscanf(a[2:], "%d", &maxHits)
			}
		}
		return procsim.ProgramFunc(func(pc *procsim.ProcContext) int {
			return runDebugger(env, pc, bp, maxHits)
		})
	}
}

func runDebugger(env toolapi.Env, pc *procsim.ProcContext, bp string, maxHits int) int {
	fail := func(stage string, err error) int {
		fmt.Fprintf(pc.Stderr(), "debugger: %s: %v\n", stage, err)
		return 1
	}
	h, err := tdp.Init(tdp.Config{
		Context:  env.Context,
		LASSAddr: env.LASSAddr,
		Dial:     env.Dial,
		Kernel:   env.Kernel,
		Identity: "debugger",
		Trace:    env.Trace,
	})
	if err != nil {
		return fail("tdp_init", err)
	}
	defer h.Exit()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	pid, err := h.GetPID(ctx)
	if err != nil {
		return fail("tdp_get pid", err)
	}
	proc, err := h.Attach(pid)
	if err != nil {
		return fail("tdp_attach", err)
	}

	// Verify the breakpoint target exists in the symbol table.
	found := false
	for _, s := range proc.Symbols() {
		if s == bp {
			found = true
			break
		}
	}
	if !found {
		return fail("breakpoint", fmt.Errorf("no symbol %q in %s", bp, proc.Executable()))
	}

	// The breakpoint: the probe, running on the application's own
	// goroutine at the instrumentation point, requests a stop — the
	// process parks before executing past the breakpoint — and signals
	// this daemon, which inspects and resumes.
	hitCh := make(chan struct{}, 64)
	armed := maxHits
	probeID, err := proc.InsertProbe(bp, func(*procsim.ProcContext) {
		if armed <= 0 {
			return
		}
		armed--
		proc.RequestStop()
		select {
		case hitCh <- struct{}{}:
		default:
		}
	}, nil)
	if err != nil {
		return fail("insert breakpoint", err)
	}

	if err := h.Put(tdp.AttrToolReady, "1"); err != nil {
		return fail("tool_ready", err)
	}
	if err := proc.Continue(); err != nil {
		return fail("tdp_continue", err)
	}

	hits := 0
	for hits < maxHits {
		select {
		case <-hitCh:
		case <-time.After(10 * time.Second):
			goto sessionEnd // no more hits coming; avoid hanging
		}
		if _, done := proc.ExitStatus(); done {
			goto sessionEnd
		}
		hits++
		proc.WaitStopped() // the app parks right after the probe
		h.Put("debug_state", "stopped@"+bp)
		fmt.Fprintf(pc.Stdout(), "DEBUG stop %d at %s\n", hits, bp)
		// "Inspect" the paused process.
		_ = proc.Symbols()
		h.Put("debug_state", "running")
		if err := proc.Continue(); err != nil {
			goto sessionEnd
		}
	}
sessionEnd:
	// Remove the breakpoint (requires a paused process) and let the
	// application run to completion.
	if _, done := proc.ExitStatus(); !done {
		if err := proc.Stop(); err == nil {
			proc.RemoveProbe(probeID)
			proc.Continue()
		}
	}
	st, _ := waitExit(proc, pc)
	fmt.Fprintf(pc.Stdout(), "DEBUG-END breakpoint=%s hits=%d status=%s\n", bp, hits, st)
	return 0
}

func waitExit(proc *tdp.Process, pc *procsim.ProcContext) (procsim.ExitStatus, bool) {
	for i := 0; i < 10000; i++ {
		if st, done := proc.ExitStatus(); done {
			return st, true
		}
		pc.Sleep(2 * time.Millisecond)
	}
	return procsim.ExitStatus{}, false
}
