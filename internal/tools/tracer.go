// Package tools provides two additional run-time tools built purely on
// the TDP library, used to demonstrate the paper's m + n claim: with
// TDP, any tool runs under any resource manager without per-pair
// porting.
//
//   - Tracer: a Vampir/PCL-style event tracer. It represents the
//     paper's case-1/case-2 tools that must be in place before the
//     application starts executing ("the Vampir trace tool requires
//     the tracing to be started before the application starts
//     execution", §2.2) — it refuses to attach to an already-running
//     process.
//
//   - Debugger: a gdb/TotalView-style controller. It sets a
//     breakpoint on a function, and on each hit pauses the
//     application, "inspects" it, publishes the stop in the attribute
//     space (the §2 process-control bullet: pause/resume must be
//     coordinated with the RM), and resumes.
package tools

import (
	"context"
	"fmt"
	"time"

	"tdp"
	"tdp/internal/procsim"
	"tdp/internal/toolapi"
)

// Tracer returns the event-tracing tool factory. The resulting daemon
// writes one line per traced event to its stdout (which an RM routes
// to the tool output file): "TRACE <enter|leave> <fn> <us-since-start>".
func Tracer() toolapi.Factory {
	return func(env toolapi.Env, args []string) procsim.Program {
		return procsim.ProgramFunc(func(pc *procsim.ProcContext) int {
			return runTracer(env, pc)
		})
	}
}

func runTracer(env toolapi.Env, pc *procsim.ProcContext) int {
	fail := func(stage string, err error) int {
		fmt.Fprintf(pc.Stderr(), "tracer: %s: %v\n", stage, err)
		return 1
	}
	h, err := tdp.Init(tdp.Config{
		Context:  env.Context,
		LASSAddr: env.LASSAddr,
		Dial:     env.Dial,
		Kernel:   env.Kernel,
		Identity: "tracer",
		Trace:    env.Trace,
	})
	if err != nil {
		return fail("tdp_init", err)
	}
	defer h.Exit()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	pid, err := h.GetPID(ctx)
	if err != nil {
		return fail("tdp_get pid", err)
	}
	// Tracing must start before the application does: insist on the
	// created (exec-paused) state before attaching.
	kproc, err := env.Kernel.Process(pid)
	if err != nil {
		return fail("lookup", err)
	}
	if kproc.State() != procsim.StateCreated {
		return fail("precondition", fmt.Errorf(
			"application already %s; the tracer requires create-paused mode (+SuspendJobAtExec)", kproc.State()))
	}
	proc, err := h.Attach(pid)
	if err != nil {
		return fail("tdp_attach", err)
	}

	type event struct {
		kind string
		fn   string
		at   time.Duration
	}
	events := make(chan event, 4096)
	start := time.Now()
	for _, sym := range proc.Symbols() {
		sym := sym
		if _, err := proc.InsertProbe(sym,
			func(*procsim.ProcContext) {
				select {
				case events <- event{"enter", sym, time.Since(start)}:
				default: // ring overflow: drop rather than stall the app
				}
			},
			func(*procsim.ProcContext) {
				select {
				case events <- event{"leave", sym, time.Since(start)}:
				default:
				}
			}); err != nil {
			return fail("instrument "+sym, err)
		}
	}

	if err := h.Put(tdp.AttrToolReady, "1"); err != nil {
		return fail("tool_ready", err)
	}
	if err := proc.Continue(); err != nil {
		return fail("tdp_continue", err)
	}

	// Drain events until the application exits, then flush.
	count := 0
	flush := func() {
		for {
			select {
			case e := <-events:
				fmt.Fprintf(pc.Stdout(), "TRACE %s %s %d\n", e.kind, e.fn, e.at.Microseconds())
				count++
			default:
				return
			}
		}
	}
	for {
		if _, done := proc.ExitStatus(); done {
			break
		}
		flush()
		pc.Sleep(2 * time.Millisecond)
	}
	flush()
	st, _ := proc.ExitStatus()
	fmt.Fprintf(pc.Stdout(), "TRACE-END %s events=%d\n", st, count)
	return 0
}
