// Package debughttp serves a daemon's operational introspection
// surface over HTTP: Go pprof profiles plus the telemetry registry in
// both JSON and Prometheus exposition form. Daemons (lassd, cassd)
// enable it with -debug-addr; it is strictly read-only and separate
// from the attribute-space wire port, so a scrape or profile can never
// interfere with protocol traffic.
//
// Endpoints:
//
//	/               index listing the endpoints
//	/metrics        telemetry snapshot, Prometheus exposition format
//	/stats.json     telemetry snapshot as JSON (what STATSV carries)
//	/debug/pprof/*  the standard Go profiles
package debughttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"tdp/internal/telemetry"
)

// Handler returns the debug mux for a daemon whose current telemetry
// is produced by snap. Pass the tree-scope snapshot function to expose
// a rolled-up subtree instead of one daemon.
func Handler(snap func() telemetry.Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "tdp debug endpoint\n\n/metrics\n/stats.json\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, snap().Text())
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr (host:0 picks a port) and serves the debug
// surface until stop is called. It returns the bound address.
func Serve(addr string, snap func() telemetry.Snapshot) (bound string, stop func(), err error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("debughttp: %w", err)
	}
	srv := &http.Server{Handler: Handler(snap)}
	go srv.Serve(l)
	return l.Addr().String(), func() { srv.Close() }, nil
}
