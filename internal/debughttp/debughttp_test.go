package debughttp

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"tdp/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("attrspace.ops.put").Add(7)
	reg.Histogram("attrspace.latency.put", nil).Observe(3)

	bound, stop, err := Serve("127.0.0.1:0", reg.Snapshot)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer stop()
	base := "http://" + bound

	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "attrspace.ops.put 7") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get(t, base+"/stats.json"); code != 200 || !strings.Contains(body, `"attrspace.ops.put":7`) {
		t.Errorf("/stats.json = %d: %s", code, body)
	}
	// The snapshot function is consulted per request — live values.
	reg.Counter("attrspace.ops.put").Add(1)
	if _, body := get(t, base+"/metrics"); !strings.Contains(body, "attrspace.ops.put 8") {
		t.Errorf("/metrics not live:\n%s", body)
	}
	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/debug/pprof/") {
		t.Errorf("index = %d: %s", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/goroutine?debug=1"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof goroutine = %d: %.120s", code, body)
	}
	if code, _ := get(t, base+"/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}
