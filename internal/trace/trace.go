// Package trace records protocol event sequences so the figure
// reproduction experiments (Figures 3A, 3B, and 6 of the paper) can
// assert that daemons perform the TDP steps in the published order.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Entry is one recorded protocol step.
type Entry struct {
	Seq    int       // global order, starting at 0
	At     time.Time // wall-clock, for latency reporting
	Actor  string    // who performed the step (e.g. "RM", "RT", "starter")
	Action string    // what (e.g. "tdp_init", "tdp_create_process")
	Detail string    // free-form context (e.g. "paused", "pid=1000")
}

// String renders "actor:action(detail)".
func (e Entry) String() string {
	if e.Detail == "" {
		return e.Actor + ":" + e.Action
	}
	return fmt.Sprintf("%s:%s(%s)", e.Actor, e.Action, e.Detail)
}

// Recorder accumulates entries from any number of goroutines.
type Recorder struct {
	mu      sync.Mutex
	entries []Entry
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{}
}

// Record appends a step and returns its sequence number.
func (r *Recorder) Record(actor, action, detail string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	seq := len(r.entries)
	r.entries = append(r.entries, Entry{
		Seq: seq, At: time.Now(), Actor: actor, Action: action, Detail: detail,
	})
	return seq
}

// Recordf is Record with a formatted detail.
func (r *Recorder) Recordf(actor, action, format string, args ...any) int {
	return r.Record(actor, action, fmt.Sprintf(format, args...))
}

// Entries returns a copy of all recorded steps in order.
func (r *Recorder) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// Len reports the number of recorded steps.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Strings returns each entry's String form, in order.
func (r *Recorder) Strings() []string {
	entries := r.Entries()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.String()
	}
	return out
}

// Actions returns "actor:action" (no detail) for each entry, in order.
// Figure assertions compare against these.
func (r *Recorder) Actions() []string {
	entries := r.Entries()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Actor + ":" + e.Action
	}
	return out
}

// ByActor returns the entries performed by one actor, in order.
func (r *Recorder) ByActor(actor string) []Entry {
	var out []Entry
	for _, e := range r.Entries() {
		if e.Actor == actor {
			out = append(out, e)
		}
	}
	return out
}

// First returns the sequence number of the first entry matching
// actor:action, or -1 when absent.
func (r *Recorder) First(actor, action string) int {
	for _, e := range r.Entries() {
		if e.Actor == actor && e.Action == action {
			return e.Seq
		}
	}
	return -1
}

// Happened reports whether actor:action was ever recorded.
func (r *Recorder) Happened(actor, action string) bool {
	return r.First(actor, action) >= 0
}

// Before reports whether the first occurrence of a1:x1 precedes the
// first occurrence of a2:x2. Both must have occurred.
func (r *Recorder) Before(a1, x1, a2, x2 string) bool {
	i, j := r.First(a1, x1), r.First(a2, x2)
	return i >= 0 && j >= 0 && i < j
}

// CheckOrder verifies that the given "actor:action" steps appear in
// the trace in the given relative order (other steps may interleave).
// It returns a descriptive error naming the first violated step.
func (r *Recorder) CheckOrder(steps ...string) error {
	actions := r.Actions()
	pos := 0
	for _, want := range steps {
		found := false
		for ; pos < len(actions); pos++ {
			if actions[pos] == want {
				found = true
				pos++
				break
			}
		}
		if !found {
			return fmt.Errorf("trace: step %q missing or out of order; trace:\n  %s",
				want, strings.Join(actions, "\n  "))
		}
	}
	return nil
}
