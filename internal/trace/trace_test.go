package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndEntries(t *testing.T) {
	r := New()
	if seq := r.Record("RM", "tdp_init", ""); seq != 0 {
		t.Errorf("first seq = %d", seq)
	}
	if seq := r.Recordf("RM", "tdp_create_process", "pid=%d", 1000); seq != 1 {
		t.Errorf("second seq = %d", seq)
	}
	es := r.Entries()
	if len(es) != 2 || r.Len() != 2 {
		t.Fatalf("entries = %v", es)
	}
	if es[1].Detail != "pid=1000" {
		t.Errorf("detail = %q", es[1].Detail)
	}
	if es[0].String() != "RM:tdp_init" {
		t.Errorf("String = %q", es[0].String())
	}
	if es[1].String() != "RM:tdp_create_process(pid=1000)" {
		t.Errorf("String = %q", es[1].String())
	}
}

func TestActionsAndStrings(t *testing.T) {
	r := New()
	r.Record("RM", "a", "")
	r.Record("RT", "b", "x")
	if got := r.Actions(); got[0] != "RM:a" || got[1] != "RT:b" {
		t.Errorf("Actions = %v", got)
	}
	if got := r.Strings(); got[1] != "RT:b(x)" {
		t.Errorf("Strings = %v", got)
	}
}

func TestByActor(t *testing.T) {
	r := New()
	r.Record("RM", "a", "")
	r.Record("RT", "b", "")
	r.Record("RM", "c", "")
	rm := r.ByActor("RM")
	if len(rm) != 2 || rm[0].Action != "a" || rm[1].Action != "c" {
		t.Errorf("ByActor = %v", rm)
	}
	if got := r.ByActor("ghost"); got != nil {
		t.Errorf("ByActor(ghost) = %v", got)
	}
}

func TestFirstHappenedBefore(t *testing.T) {
	r := New()
	r.Record("RM", "create", "")
	r.Record("RT", "attach", "")
	r.Record("RT", "attach", "") // duplicate; First returns earliest
	if r.First("RT", "attach") != 1 {
		t.Errorf("First = %d", r.First("RT", "attach"))
	}
	if r.First("RT", "nope") != -1 {
		t.Error("First of absent != -1")
	}
	if !r.Happened("RM", "create") || r.Happened("RM", "nope") {
		t.Error("Happened wrong")
	}
	if !r.Before("RM", "create", "RT", "attach") {
		t.Error("Before(create, attach) = false")
	}
	if r.Before("RT", "attach", "RM", "create") {
		t.Error("Before(attach, create) = true")
	}
	if r.Before("RM", "create", "RM", "missing") {
		t.Error("Before with missing step = true")
	}
}

func TestCheckOrder(t *testing.T) {
	r := New()
	for _, s := range []string{"RM:tdp_init", "RM:create_AP", "noise:x", "RM:create_RT", "RT:tdp_init", "RT:attach", "RT:continue"} {
		parts := strings.SplitN(s, ":", 2)
		r.Record(parts[0], parts[1], "")
	}
	if err := r.CheckOrder("RM:tdp_init", "RM:create_AP", "RM:create_RT", "RT:attach", "RT:continue"); err != nil {
		t.Errorf("CheckOrder valid sequence: %v", err)
	}
	if err := r.CheckOrder("RT:attach", "RM:create_AP"); err == nil {
		t.Error("CheckOrder accepted out-of-order steps")
	}
	if err := r.CheckOrder("RM:ghost"); err == nil {
		t.Error("CheckOrder accepted missing step")
	}
	if err := r.CheckOrder("RT:attach", "RT:attach"); err == nil {
		t.Error("CheckOrder accepted duplicate expectation of single event")
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record("A", "step", "")
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d", r.Len())
	}
	// Sequence numbers must be dense and unique.
	seen := make(map[int]bool)
	for _, e := range r.Entries() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
