package events

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCallbacksRunOnlyInService(t *testing.T) {
	q := NewQueue()
	var ran atomic.Int32
	q.Post(func() { ran.Add(1) })
	time.Sleep(10 * time.Millisecond)
	if ran.Load() != 0 {
		t.Fatal("callback ran before Service — violates the §3.3 safe-point contract")
	}
	if n := q.Service(); n != 1 {
		t.Fatalf("Service = %d, want 1", n)
	}
	if ran.Load() != 1 {
		t.Fatal("callback did not run in Service")
	}
}

func TestServiceOrderFIFO(t *testing.T) {
	q := NewQueue()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Post(func() { order = append(order, i) })
	}
	q.Service()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestActivityChannelFires(t *testing.T) {
	q := NewQueue()
	select {
	case <-q.Activity():
		t.Fatal("activity before any Post")
	default:
	}
	q.Post(func() {})
	select {
	case <-q.Activity():
	case <-time.After(time.Second):
		t.Fatal("activity channel never fired")
	}
	// After servicing, quiescent again.
	q.Service()
	select {
	case <-q.Activity():
		t.Fatal("activity after Service with empty queue")
	default:
	}
}

func TestActivityCoalesces(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 100; i++ {
		q.Post(func() {})
	}
	// One mark regardless of how many posts.
	<-q.Activity()
	select {
	case <-q.Activity():
		t.Fatal("activity channel held more than one mark")
	default:
	}
	if n := q.Service(); n != 100 {
		t.Fatalf("Service = %d", n)
	}
}

func TestServiceOne(t *testing.T) {
	q := NewQueue()
	var ran []int
	q.Post(func() { ran = append(ran, 1) })
	q.Post(func() { ran = append(ran, 2) })
	if !q.ServiceOne() {
		t.Fatal("ServiceOne = false with pending work")
	}
	if len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("ran = %v", ran)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	// Activity stays armed while work remains.
	select {
	case <-q.Activity():
	case <-time.After(time.Second):
		t.Fatal("activity lost with one callback remaining")
	}
	if !q.ServiceOne() {
		t.Fatal("second ServiceOne = false")
	}
	if q.ServiceOne() {
		t.Fatal("ServiceOne on empty queue = true")
	}
}

func TestPostNilIgnored(t *testing.T) {
	q := NewQueue()
	q.Post(nil)
	if q.Len() != 0 {
		t.Fatal("nil callback queued")
	}
	if n := q.Service(); n != 0 {
		t.Fatalf("Service = %d", n)
	}
}

func TestPostDuringService(t *testing.T) {
	q := NewQueue()
	var second atomic.Bool
	q.Post(func() {
		q.Post(func() { second.Store(true) })
	})
	q.Service()
	if second.Load() {
		t.Fatal("callback posted during Service ran in the same batch")
	}
	// The re-post re-armed activity.
	select {
	case <-q.Activity():
	case <-time.After(time.Second):
		t.Fatal("activity not re-armed by Post during Service")
	}
	q.Service()
	if !second.Load() {
		t.Fatal("re-posted callback never ran")
	}
}

func TestConcurrentPosters(t *testing.T) {
	q := NewQueue()
	var wg sync.WaitGroup
	var count atomic.Int64
	const posters, per = 8, 100
	for i := 0; i < posters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				q.Post(func() { count.Add(1) })
			}
		}()
	}
	wg.Wait()
	total := 0
	for total < posters*per {
		total += q.Service()
	}
	if count.Load() != posters*per {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestPollLoopPattern(t *testing.T) {
	// The paper's pseudo-code: a daemon selects on descriptors, then
	// calls tdp_service_events.
	q := NewQueue()
	done := make(chan struct{})
	var got atomic.Int32
	go func() {
		defer close(done)
		for got.Load() < 3 {
			select {
			case <-q.Activity():
				q.Service()
			case <-time.After(2 * time.Second):
				t.Error("poll loop starved")
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		q.Post(func() { got.Add(1) })
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("poll loop never finished")
	}
}
