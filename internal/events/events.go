// Package events implements the TDP event-notification model (§3.3).
//
// The paper rejects delivering asynchronous completions via signals
// (they collide with the tool's own signal use) or threads (no thread
// package is portable across tools) in favor of a poll-loop model: an
// asynchronous get or put completion makes a descriptor active; the
// daemon returns from poll/select, and calls tdp_service_event at a
// known-safe point, which runs the registered callbacks.
//
// Queue reproduces that contract: completions are posted by transport
// goroutines but the user-supplied callbacks run only inside Service,
// on the caller's goroutine. Activity() is the descriptor analog — a
// channel that becomes readable when callbacks are pending, suitable
// for use in a select loop.
package events

import "sync"

// Queue holds pending completion callbacks until serviced.
type Queue struct {
	mu      sync.Mutex
	pending []func()
	notify  chan struct{}
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	return &Queue{notify: make(chan struct{}, 1)}
}

// Post enqueues a callback and marks the queue active. It never runs
// the callback itself; that happens in Service. Post is safe to call
// from any goroutine.
func (q *Queue) Post(cb func()) {
	if cb == nil {
		return
	}
	q.mu.Lock()
	q.pending = append(q.pending, cb)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default: // already marked active
	}
}

// Activity returns the descriptor-activity channel: it yields a value
// when at least one callback is pending. Use it in a select loop the
// way the paper's daemons use poll(); after it fires, call Service.
func (q *Queue) Activity() <-chan struct{} { return q.notify }

// Len reports the number of pending callbacks.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Service runs every pending callback, in posting order, on the
// calling goroutine, and returns how many ran. This is
// tdp_service_event: the tool calls it at a safe point in its own
// loop, so callbacks never preempt tool code.
func (q *Queue) Service() int {
	q.mu.Lock()
	batch := q.pending
	q.pending = nil
	q.mu.Unlock()
	// Drain the activity mark; callbacks posted while we run will
	// re-arm it.
	select {
	case <-q.notify:
	default:
	}
	for _, cb := range batch {
		cb()
	}
	return len(batch)
}

// ServiceOne runs at most one pending callback and reports whether one
// ran. It lets a daemon interleave event handling with other work at a
// finer grain than Service.
func (q *Queue) ServiceOne() bool {
	q.mu.Lock()
	if len(q.pending) == 0 {
		q.mu.Unlock()
		return false
	}
	cb := q.pending[0]
	q.pending = q.pending[1:]
	rearm := len(q.pending) > 0
	q.mu.Unlock()
	if !rearm {
		select {
		case <-q.notify:
		default:
		}
	}
	cb()
	return true
}
