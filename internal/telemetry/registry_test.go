package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("ops")
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("ops").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	// Same name returns the same gauge.
	if reg.Gauge("depth") != g {
		t.Error("Gauge lookup returned a different instance")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	// A value equal to a bound lands in that bound's bucket (le
	// semantics); above the last bound lands in +Inf.
	for _, v := range []float64{0.5, 1} { // bucket le=1
		h.Observe(v)
	}
	h.Observe(1.5) // bucket le=10
	h.Observe(10)  // bucket le=10
	h.Observe(99)  // bucket le=100
	h.Observe(101) // +Inf
	s := h.Snapshot()
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-(0.5+1+1.5+10+99+101)) > 1e-9 {
		t.Errorf("sum = %g", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// 100 observations uniform over (0, 40]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	s := h.Snapshot()
	cases := []struct{ q, want, tol float64 }{
		{0.5, 20, 2},  // median at the 10–20/20–30 boundary
		{0.25, 10, 2}, // first quartile near 10
		{0.99, 40, 2}, // tail near the top bound
		{0, 0, 0.5},   // floor of the first bucket
		{1, 40, 1e-9}, // exactly the last bound
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("q%.2f = %g, want %g ± %g", c.q, got, c.want, c.tol)
		}
	}
}

func TestHistogramQuantileEmptyAndInf(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	h.Observe(100) // lands in +Inf
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("+Inf quantile = %g, want clamp to last bound 2", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.ObserveDuration(50 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("count = %d, want 4000", h.Count())
	}
	if math.Abs(h.Sum()-4000*50e-6) > 1e-6 {
		t.Errorf("sum = %g, want %g", h.Sum(), 4000*50e-6)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops.put").Add(3)
	reg.Gauge("conns").Set(2)
	reg.Histogram("latency.put", nil).Observe(0.001)
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s, err := ParseSnapshot(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s.Counters["ops.put"] != 3 || s.Gauges["conns"] != 2 {
		t.Errorf("round trip lost scalars: %+v", s)
	}
	hs, ok := s.Histograms["latency.put"]
	if !ok || hs.Count != 1 {
		t.Errorf("round trip lost histogram: %+v", s.Histograms)
	}
}

func TestSnapshotText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops.put").Add(42)
	reg.Gauge("conns").Set(1)
	reg.Histogram("lat", []float64{0.001, 0.01}).Observe(0.002)
	text := reg.Snapshot().Text()
	for _, want := range []string{
		"# TYPE ops.put counter\nops.put 42",
		"# TYPE conns gauge\nconns 1",
		"# TYPE lat histogram",
		"lat_count 1",
		`lat_bucket{le="0.01"} 1`,
		`lat_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text exposition missing %q:\n%s", want, text)
		}
	}
}

func TestRegistryHistogramFirstRegistrationWins(t *testing.T) {
	reg := NewRegistry()
	h1 := reg.Histogram("h", []float64{1, 2})
	h2 := reg.Histogram("h", []float64{5})
	if h1 != h2 {
		t.Error("same name returned different histograms")
	}
	if len(h1.Bounds()) != 2 {
		t.Errorf("bounds = %v, want the first registration's", h1.Bounds())
	}
}
