package telemetry

import (
	"math"
	"sort"
)

// This file implements snapshot merging — the arithmetic behind the
// pool observability plane. An mrnet reduction node (and any daemon
// answering `STATS scope=tree`) folds its children's registry
// snapshots into one picture of the whole subtree; the filters are the
// classic reduction-network set:
//
//   - counters sum: each child's count is a disjoint share of the
//     pool total (per-daemon registries, not the shared process one);
//   - gauges take the maximum: a gauge is a level, and the pool-wide
//     high-water mark (deepest queue, tallest backlog) is the value a
//     monitor acts on — summing levels with per-host meaning would
//     manufacture a number no host ever saw;
//   - histograms merge bucket-wise, so pool-wide quantiles come from
//     real per-host observations rather than averaged averages.

// EqualBounds reports whether two bucket layouts are identical.
func EqualBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds a snapshot's observations into the live histogram.
// Aligned bucket bounds add element-wise; a snapshot with different
// bounds is re-bucketed conservatively — each foreign bucket's count
// lands in the first bucket of h whose upper bound is >= the foreign
// upper bound (values can only move to a coarser bucket, never a
// finer one, so quantile estimates err high rather than inventing
// precision). Count and Sum always add exactly.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	aligned := EqualBounds(h.bounds, s.Bounds)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		idx := i
		if !aligned {
			if i < len(s.Bounds) {
				idx = sort.SearchFloat64s(h.bounds, s.Bounds[i])
			} else {
				idx = len(h.bounds)
			}
		}
		if idx >= len(h.counts) {
			idx = len(h.counts) - 1
		}
		h.counts[idx].Add(c)
	}
	h.count.Add(s.Count)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + s.Sum)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Merge combines two histogram snapshots into a new one; neither
// input is mutated. An empty side (no bounds, no counts) yields a
// copy of the other, so the zero HistogramSnapshot is a valid merge
// identity. Aligned bounds add element-wise; otherwise o is
// re-bucketed into s's layout the same conservative way
// Histogram.Merge does.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if len(s.Bounds) == 0 && s.Count == 0 {
		return o.clone()
	}
	if len(o.Bounds) == 0 && o.Count == 0 {
		return s.clone()
	}
	out := s.clone()
	if EqualBounds(out.Bounds, o.Bounds) {
		for i, c := range o.Counts {
			if i < len(out.Counts) {
				out.Counts[i] += c
			}
		}
	} else {
		for i, c := range o.Counts {
			if c == 0 {
				continue
			}
			idx := len(out.Bounds) // +Inf by default
			if i < len(o.Bounds) {
				idx = sort.SearchFloat64s(out.Bounds, o.Bounds[i])
			}
			if idx >= len(out.Counts) {
				idx = len(out.Counts) - 1
			}
			out.Counts[idx] += c
		}
	}
	out.Count += o.Count
	out.Sum += o.Sum
	return out
}

func (s HistogramSnapshot) clone() HistogramSnapshot {
	out := s
	out.Counts = make([]int64, len(s.Counts))
	copy(out.Counts, s.Counts)
	// Bounds are immutable by convention (Histogram shares them too).
	return out
}

// MergeSnapshots folds any number of registry snapshots into one:
// counters sum, gauges take the maximum, histograms merge bucket-wise
// (see the file comment for why). It is the aggregation function of
// the `STATS scope=tree` rollup; parts must come from disjoint
// registries (one per daemon) or counters will double-count.
func MergeSnapshots(parts ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, p := range parts {
		for k, v := range p.Counters {
			out.Counters[k] += v
		}
		for k, v := range p.Gauges {
			if cur, ok := out.Gauges[k]; !ok || v > cur {
				out.Gauges[k] = v
			}
		}
		for k, h := range p.Histograms {
			out.Histograms[k] = out.Histograms[k].Merge(h)
		}
	}
	return out
}

// Merge combines s with o under the MergeSnapshots rules, returning a
// new snapshot.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	return MergeSnapshots(s, o)
}

// Merge folds a snapshot into the live registry: counters add the
// snapshot's value, gauges keep the maximum of the current level and
// the snapshot's, histograms merge observations (creating metrics on
// first sight, histogram bounds adopted from the snapshot). It lets a
// daemon adopt a child's registry wholesale instead of hand-rolling
// per-metric aggregation.
func (r *Registry) Merge(s Snapshot) {
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		g := r.Gauge(name)
		if g.Value() < v {
			g.Set(v)
		}
	}
	for name, h := range s.Histograms {
		r.Histogram(name, h.Bounds).Merge(h)
	}
}

// SnapshotDiff returns the metrics of cur whose values differ from
// prev (all of cur when prev is the zero Snapshot). Publishers use it
// to ship only changed streams each interval: counters and gauges
// compare by value, histograms by observation count and sum.
func SnapshotDiff(prev, cur Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for k, v := range cur.Counters {
		if pv, ok := prev.Counters[k]; !ok || pv != v {
			out.Counters[k] = v
		}
	}
	for k, v := range cur.Gauges {
		if pv, ok := prev.Gauges[k]; !ok || pv != v {
			out.Gauges[k] = v
		}
	}
	for k, h := range cur.Histograms {
		if ph, ok := prev.Histograms[k]; !ok || ph.Count != h.Count || ph.Sum != h.Sum {
			out.Histograms[k] = h
		}
	}
	return out
}
