package telemetry

import (
	"math"
	"testing"
)

func TestHistogramSnapshotMergeAligned(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 4})
	b := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 10} {
		a.Observe(v)
	}
	for _, v := range []float64{0.25, 5} {
		b.Observe(v)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 6 {
		t.Errorf("Count = %d, want 6", m.Count)
	}
	if want := 0.5 + 1.5 + 3 + 10 + 0.25 + 5; math.Abs(m.Sum-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", m.Sum, want)
	}
	// Buckets: <=1: 0.5, 0.25 -> 2; <=2: 1.5 -> 1; <=4: 3 -> 1; +Inf: 10, 5 -> 2.
	want := []int64{2, 1, 1, 2}
	for i, c := range want {
		if m.Counts[i] != c {
			t.Errorf("Counts[%d] = %d, want %d (%v)", i, m.Counts[i], c, m.Counts)
		}
	}
	// Inputs unmutated.
	if a.Count() != 4 || b.Count() != 2 {
		t.Errorf("inputs mutated: %d, %d", a.Count(), b.Count())
	}
}

func TestHistogramSnapshotMergeMisalignedRebuckets(t *testing.T) {
	a := NewHistogram([]float64{1, 10})
	b := NewHistogram([]float64{0.5, 2, 10})
	b.Observe(0.4) // b bucket le=0.5 -> a bucket le=1
	b.Observe(1.5) // b bucket le=2   -> a bucket le=10 (coarser, conservative)
	b.Observe(7)   // b bucket le=10  -> a bucket le=10
	b.Observe(99)  // b +Inf          -> a +Inf
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 4 {
		t.Errorf("Count = %d, want 4", m.Count)
	}
	if got := []int64{m.Counts[0], m.Counts[1], m.Counts[2]}; got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("Counts = %v, want [1 2 1]", got)
	}
	if !EqualBounds(m.Bounds, a.Bounds()) {
		t.Errorf("merge changed bounds: %v", m.Bounds)
	}
}

func TestHistogramSnapshotMergeZeroIdentity(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	var zero HistogramSnapshot
	left := zero.Merge(h.Snapshot())
	right := h.Snapshot().Merge(zero)
	for _, m := range []HistogramSnapshot{left, right} {
		if m.Count != 1 || len(m.Counts) != 2 || m.Counts[0] != 1 {
			t.Errorf("identity merge = %+v", m)
		}
	}
}

func TestLiveHistogramMerge(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	src := NewHistogram([]float64{1, 10})
	src.Observe(5)
	src.Observe(100)
	h.Merge(src.Snapshot())
	s := h.Snapshot()
	if s.Count != 3 {
		t.Errorf("Count = %d, want 3", s.Count)
	}
	if math.Abs(s.Sum-105.5) > 1e-9 {
		t.Errorf("Sum = %v, want 105.5", s.Sum)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Errorf("Counts = %v", s.Counts)
	}

	// Misaligned source re-buckets conservatively.
	odd := NewHistogram([]float64{0.2, 3})
	odd.Observe(2) // le=3 -> h's le=10
	h.Merge(odd.Snapshot())
	if s := h.Snapshot(); s.Counts[1] != 2 || s.Count != 4 {
		t.Errorf("after misaligned merge: %+v", s)
	}
}

func TestMergeSnapshots(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("ops").Add(10)
	r2.Counter("ops").Add(32)
	r2.Counter("only2").Add(5)
	r1.Gauge("depth").Set(3)
	r2.Gauge("depth").Set(9)
	r1.Histogram("lat", []float64{1}).Observe(0.5)
	r2.Histogram("lat", []float64{1}).Observe(2)

	m := MergeSnapshots(r1.Snapshot(), r2.Snapshot())
	if m.Counters["ops"] != 42 {
		t.Errorf("ops = %d, want 42 (sum)", m.Counters["ops"])
	}
	if m.Counters["only2"] != 5 {
		t.Errorf("only2 = %d", m.Counters["only2"])
	}
	if m.Gauges["depth"] != 9 {
		t.Errorf("depth = %d, want 9 (max)", m.Gauges["depth"])
	}
	if h := m.Histograms["lat"]; h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("lat = %+v", m.Histograms["lat"])
	}

	// Method form composes identically.
	if got := r1.Snapshot().Merge(r2.Snapshot()); got.Counters["ops"] != 42 {
		t.Errorf("Snapshot.Merge ops = %d", got.Counters["ops"])
	}
}

func TestRegistryMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(1)
	r.Gauge("depth").Set(7)

	child := NewRegistry()
	child.Counter("ops").Add(41)
	child.Gauge("depth").Set(3)
	child.Histogram("lat", []float64{1}).Observe(0.5)

	r.Merge(child.Snapshot())
	if got := r.Counter("ops").Value(); got != 42 {
		t.Errorf("ops = %d, want 42", got)
	}
	if got := r.Gauge("depth").Value(); got != 7 {
		t.Errorf("depth = %d, want 7 (max keeps current)", got)
	}
	if got := r.Histogram("lat", nil).Count(); got != 1 {
		t.Errorf("lat count = %d, want 1 (created from snapshot)", got)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Counter("b").Add(1)
	r.Gauge("g").Set(5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	prev := r.Snapshot()

	if d := SnapshotDiff(prev, prev); len(d.Counters)+len(d.Gauges)+len(d.Histograms) != 0 {
		t.Errorf("self-diff not empty: %+v", d)
	}

	r.Counter("a").Add(1)
	r.Histogram("h", nil).Observe(2)
	cur := r.Snapshot()
	d := SnapshotDiff(prev, cur)
	if _, ok := d.Counters["a"]; !ok {
		t.Error("changed counter a missing from diff")
	}
	if _, ok := d.Counters["b"]; ok {
		t.Error("unchanged counter b present in diff")
	}
	if _, ok := d.Gauges["g"]; ok {
		t.Error("unchanged gauge g present in diff")
	}
	if h, ok := d.Histograms["h"]; !ok || h.Count != 2 {
		t.Errorf("changed histogram missing/wrong: %+v", d.Histograms)
	}

	// Against the zero snapshot, everything is a change.
	full := SnapshotDiff(Snapshot{}, cur)
	if len(full.Counters) != 2 || len(full.Gauges) != 1 || len(full.Histograms) != 1 {
		t.Errorf("zero-diff = %+v", full)
	}
}
