package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// This file implements the cross-daemon span tracer. A trace is one
// logical operation (a Put issued by a tool front-end, say); a span is
// one daemon's share of it. Trace and span IDs travel between daemons
// as the reserved _tid/_sid fields on wire.Message (see
// wire.FieldTraceID), so the receiving daemon records its span under
// the same trace ID and the operation can be followed front-end →
// CASS → proxy → LASS from the daemons' span logs alone. The proxy
// needs no changes to participate: it splices bytes, so the reserved
// fields pass through untouched.

// SpanRecord is one finished span in a daemon's span log.
type SpanRecord struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Actor    string            `json:"actor"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration"`
	Fields   map[string]string `json:"fields,omitempty"`
}

// String renders "actor:name tid=.. sid=.. parent=.. dur=.." for logs.
func (r SpanRecord) String() string {
	s := fmt.Sprintf("%s:%s tid=%s sid=%s", r.Actor, r.Name, r.TraceID, r.SpanID)
	if r.ParentID != "" {
		s += " parent=" + r.ParentID
	}
	return fmt.Sprintf("%s dur=%s", s, r.Duration)
}

// maxSpans bounds each tracer's span log; the log is a diagnosis aid,
// not an archive, so old spans are dropped ring-buffer style.
const maxSpans = 4096

// Tracer accumulates finished spans for one daemon. All methods are
// safe for concurrent use.
type Tracer struct {
	actor string

	mu    sync.Mutex
	spans []SpanRecord
	head  int  // next write position once the ring is full
	full  bool // the ring has wrapped
	log   *Logger
}

// NewTracer returns an empty tracer whose spans carry the given actor
// name (e.g. "cassd", "paradynd").
func NewTracer(actor string) *Tracer {
	return &Tracer{actor: actor}
}

// Actor returns the daemon name spans are recorded under.
func (t *Tracer) Actor() string { return t.actor }

// SetLogger makes the tracer echo every finished span to log at debug
// level (the daemon's span log on disk/stderr, in addition to the
// in-memory ring).
func (t *Tracer) SetLogger(log *Logger) {
	t.mu.Lock()
	t.log = log
	t.mu.Unlock()
}

// Span is an in-flight operation segment. Create with StartSpan or
// StartChild, annotate with Set, finish with End (which records it in
// the tracer). A nil *Span is valid and inert, so call sites need no
// nil checks when tracing is disabled.
type Span struct {
	tracer   *Tracer
	traceID  string
	spanID   string
	parentID string
	name     string
	start    time.Time

	mu     sync.Mutex
	fields map[string]string
	ended  bool
}

// StartSpan begins a new root span — a fresh trace ID with this span
// at its root.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer:  t,
		traceID: newID(),
		spanID:  newID(),
		name:    name,
		start:   time.Now(),
	}
}

// StartChild begins a span within an existing trace, as received from
// a peer daemon (traceID/parentID off the wire). An empty traceID
// starts a fresh root trace instead.
func (t *Tracer) StartChild(name, traceID, parentID string) *Span {
	if t == nil {
		return nil
	}
	if traceID == "" {
		return t.StartSpan(name)
	}
	return &Span{
		tracer:   t,
		traceID:  traceID,
		spanID:   newID(),
		parentID: parentID,
		name:     name,
		start:    time.Now(),
	}
}

// StartChild begins a child span of sp in the same tracer.
func (sp *Span) StartChild(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.tracer.StartChild(name, sp.traceID, sp.spanID)
}

// TraceID returns the trace this span belongs to ("" on nil).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.traceID
}

// SpanID returns this span's own ID ("" on nil).
func (sp *Span) SpanID() string {
	if sp == nil {
		return ""
	}
	return sp.spanID
}

// Set annotates the span with a key/value pair.
func (sp *Span) Set(key, value string) *Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	if sp.fields == nil {
		sp.fields = make(map[string]string)
	}
	sp.fields[key] = value
	sp.mu.Unlock()
	return sp
}

// End finishes the span and records it in the tracer's span log. End
// is idempotent; only the first call records.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	fields := sp.fields
	sp.mu.Unlock()
	rec := SpanRecord{
		TraceID:  sp.traceID,
		SpanID:   sp.spanID,
		ParentID: sp.parentID,
		Actor:    sp.tracer.actor,
		Name:     sp.name,
		Start:    sp.start,
		Duration: time.Since(sp.start),
		Fields:   fields,
	}
	sp.tracer.record(rec)
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if t.full {
		t.spans[t.head] = rec
		t.head = (t.head + 1) % maxSpans
	} else {
		t.spans = append(t.spans, rec)
		if len(t.spans) == maxSpans {
			t.full = true
		}
	}
	log := t.log
	t.mu.Unlock()
	if log != nil {
		log.Debugf("span %s", rec)
	}
}

// Spans returns a copy of the span log, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.spans))
	if t.full {
		out = append(out, t.spans[t.head:]...)
		out = append(out, t.spans[:t.head]...)
	} else {
		out = append(out, t.spans...)
	}
	return out
}

// SpansForTrace returns the recorded spans of one trace, oldest first.
func (t *Tracer) SpansForTrace(traceID string) []SpanRecord {
	var out []SpanRecord
	for _, rec := range t.Spans() {
		if rec.TraceID == traceID {
			out = append(out, rec)
		}
	}
	return out
}

// Len reports the number of spans currently held.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// newID returns a 16-hex-char random identifier.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID
		// beats a panic in a diagnostics path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ctxKey is the context key for span propagation inside one process.
type ctxKey struct{}

// NewContext returns ctx carrying sp; client layers extract it and
// inject the IDs into outgoing wire messages.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
