package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bucket upper bounds, in seconds:
// roughly exponential from 10µs to 5s, sized for localhost wire
// round-trips (tens of microseconds) through blocking gets that wait
// on another daemon (milliseconds to seconds).
var DefBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (latencies in seconds by convention). Observations are lock-free;
// Snapshot is approximately consistent under concurrent writes, which
// is the standard trade for a hot-path histogram.
type Histogram struct {
	bounds []float64      // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram returns a histogram with the given sorted upper bounds
// (nil means DefBuckets). Bounds are defensively copied and sorted.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the final slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Since records the latency from start to now; use with defer:
//
//	defer hist.Since(time.Now())
func (h *Histogram) Since(start time.Time) {
	h.ObserveDuration(time.Since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.Sum(),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the live
// histogram; see HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// HistogramSnapshot is the JSON-able copy of a Histogram. Counts has
// one more element than Bounds: the final slot holds observations
// above the last bound (the +Inf bucket).
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Quantile estimates the q-th quantile by linear interpolation within
// the bucket that contains it (the same estimator Prometheus uses).
// It returns 0 for an empty histogram, and the last finite bound for
// quantiles that land in the +Inf bucket.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		if float64(cum+c) >= rank && c > 0 {
			if i == len(s.Bounds) {
				// +Inf bucket: clamp to the last finite bound.
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			within := (rank - float64(cum)) / float64(c)
			return lower + within*(upper-lower)
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
