package telemetry

import (
	"fmt"
	"io"
	"log"
	"sync"
)

// Level grades log records. Daemons default to silent in tests and
// LevelInfo in the cmd/ binaries.
type Level int

const (
	// LevelDebug includes span echoes and per-connection chatter.
	LevelDebug Level = iota
	// LevelInfo covers lifecycle events (listening, shutdown).
	LevelInfo
	// LevelError covers failures worth surfacing.
	LevelError
	// LevelSilent discards everything.
	LevelSilent
)

// String names the level as it appears in output.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelError:
		return "ERROR"
	default:
		return "SILENT"
	}
}

// ParseLevel maps a flag value ("debug", "info", "error", "silent")
// to a Level; unknown strings mean LevelInfo.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "error":
		return LevelError
	case "silent", "off", "none":
		return LevelSilent
	default:
		return LevelInfo
	}
}

// DefaultMaxRecordLen bounds a formatted log record. Attribute values
// are free-form strings with no protocol-level size limit, and several
// records include them verbatim (send failures quote the whole
// message); without a bound one pathological value turns the log into
// a memory and I/O problem. Truncated records end in "…(+N bytes)".
const DefaultMaxRecordLen = 2048

// Logger is the one injectable, leveled logger shared by the daemons.
// A nil *Logger is valid and silent, so call sites need no nil checks.
type Logger struct {
	mu     sync.Mutex
	min    Level
	maxLen int // 0 means DefaultMaxRecordLen; <0 disables truncation
	sink   func(level Level, msg string)
}

// SetMaxRecordLen bounds formatted records to n bytes (plus a short
// truncation marker). n <= 0 disables the bound.
func (l *Logger) SetMaxRecordLen(n int) {
	if l == nil {
		return
	}
	if n <= 0 {
		n = -1
	}
	l.mu.Lock()
	l.maxLen = n
	l.mu.Unlock()
}

// truncate enforces max on msg, appending an ellipsis marker with the
// elided byte count. It cuts on a rune boundary so the marker never
// splits a multi-byte character.
func truncate(msg string, max int) string {
	if max <= 0 || len(msg) <= max {
		return msg
	}
	cut := max
	for cut > 0 && msg[cut]&0xC0 == 0x80 { // don't split a UTF-8 rune
		cut--
	}
	return fmt.Sprintf("%s…(+%d bytes)", msg[:cut], len(msg)-cut)
}

// NewLogger writes records at or above min to out, prefixed with the
// daemon name, in the standard library's log line format.
func NewLogger(out io.Writer, min Level, prefix string) *Logger {
	if prefix != "" {
		prefix += ": "
	}
	std := log.New(out, prefix, log.LstdFlags|log.Lmicroseconds)
	return &Logger{
		min:  min,
		sink: func(level Level, msg string) { std.Printf("%s %s", level, msg) },
	}
}

// FuncLogger adapts a printf-style function (e.g. log.Printf, or a
// test's t.Logf) into a Logger that forwards every non-silent record.
func FuncLogger(f func(format string, args ...any)) *Logger {
	if f == nil {
		return nil
	}
	return &Logger{
		min:  LevelDebug,
		sink: func(level Level, msg string) { f("%s %s", level, msg) },
	}
}

// Silent returns a logger that discards everything — the default for
// daemons constructed in tests.
func Silent() *Logger { return nil }

// SetLevel changes the minimum level.
func (l *Logger) SetLevel(min Level) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.min = min
	l.mu.Unlock()
}

func (l *Logger) logf(level Level, format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	min, sink, maxLen := l.min, l.sink, l.maxLen
	l.mu.Unlock()
	if level < min || sink == nil {
		return
	}
	if maxLen == 0 {
		maxLen = DefaultMaxRecordLen
	}
	sink(level, truncate(fmt.Sprintf(format, args...), maxLen))
}

// Debugf logs at LevelDebug.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at LevelInfo.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Errorf logs at LevelError.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }
