// Package telemetry is the unified observability layer shared by every
// daemon in the TDP reproduction: a dependency-free metrics registry
// (atomic counters, gauges, and fixed-bucket latency histograms with a
// text exposition format and a JSON snapshot), a lightweight span
// tracer whose trace/span IDs propagate across daemons as reserved
// fields on wire messages, and a small leveled logger.
//
// The paper's thesis is that RM/RT/AP interactions stay invisible and
// ad hoc until a protocol standardizes them; this package applies the
// same discipline one level down, to the daemons themselves. Every
// daemon owns a Registry, answers the attrspace STATS verb from it,
// and may self-publish its metrics as tdp.monitor.* attributes so
// tools observe daemons with the same Get they use for everything
// else.
package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MonitorPrefix is the attribute-name prefix under which daemons
// self-publish registry metrics into the attribute space
// (e.g. "tdp.monitor.lass.ops.put").
const MonitorPrefix = "tdp.monitor."

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 level, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use,
// and metric handles are cheap to look up on hot paths (a read lock
// and a map probe) but cheaper still to cache in a struct field.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Daemons that are not
// handed an explicit registry (the Condor and Paradyn simulations,
// for instance) count here, so one snapshot observes the whole
// process.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil means DefBuckets). Later
// lookups ignore the bounds argument — the first registration wins.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry, suitable for JSON
// encoding (the STATS verb payload) and text exposition.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// MarshalJSON uses the standard struct encoding; defined explicitly so
// the wire payload shape is a documented, stable part of the STATS
// protocol rather than an accident of struct tags.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal(alias(s))
}

// ParseSnapshot decodes a Snapshot from its JSON form (the STATS verb
// reply payload).
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: parse snapshot: %w", err)
	}
	return s, nil
}

// Text renders the snapshot in a Prometheus-style exposition format:
//
//	# TYPE attrspace.ops.put counter
//	attrspace.ops.put 42
//	# TYPE attrspace.latency.put histogram
//	attrspace.latency.put_count 42
//	attrspace.latency.put_sum 0.001234
//	attrspace.latency.put_bucket{le="0.000250"} 40
//	attrspace.latency.put_bucket{le="+Inf"} 42
//
// Metric names are sorted so output is deterministic.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", name, formatFloat(h.Sum))
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
