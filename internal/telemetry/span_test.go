package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestSpanRootAndChild(t *testing.T) {
	tr := NewTracer("cass")
	root := tr.StartSpan("put")
	root.Set("attr", "pid")
	child := root.StartChild("server.put")
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].TraceID != spans[1].TraceID {
		t.Error("child did not inherit the trace ID")
	}
	if spans[0].ParentID != root.SpanID() {
		t.Errorf("child parent = %q, want %q", spans[0].ParentID, root.SpanID())
	}
	if spans[1].Fields["attr"] != "pid" {
		t.Errorf("root fields = %v", spans[1].Fields)
	}
	if got := tr.SpansForTrace(root.TraceID()); len(got) != 2 {
		t.Errorf("SpansForTrace = %d spans, want 2", len(got))
	}
}

func TestStartChildFromWireIDs(t *testing.T) {
	// The receiving daemon reconstructs the caller's trace from the
	// _tid/_sid fields; an empty trace ID means "start fresh".
	tr := NewTracer("lass")
	sp := tr.StartChild("server.put", "aaaa", "bbbb")
	sp.End()
	rec := tr.Spans()[0]
	if rec.TraceID != "aaaa" || rec.ParentID != "bbbb" {
		t.Errorf("wire child = %+v", rec)
	}
	fresh := tr.StartChild("server.put", "", "")
	if fresh.TraceID() == "" {
		t.Error("empty wire trace ID should start a fresh trace")
	}
}

func TestNilSpanAndTracerAreInert(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x")
	sp.Set("k", "v")
	sp.End() // must not panic
	if sp.TraceID() != "" || sp.SpanID() != "" {
		t.Error("nil span has IDs")
	}
	if got := FromContext(NewContext(context.Background(), sp)); got != nil {
		t.Error("nil span stored in context")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer("fe")
	sp := tr.StartSpan("op")
	ctx := NewContext(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Error("FromContext did not return the stored span")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Error("FromContext on empty ctx returned a span")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer("d")
	sp := tr.StartSpan("op")
	sp.End()
	sp.End()
	if tr.Len() != 1 {
		t.Errorf("spans = %d, want 1 (End must be idempotent)", tr.Len())
	}
}

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer("d")
	for i := 0; i < maxSpans+10; i++ {
		tr.StartSpan("op").End()
	}
	if tr.Len() != maxSpans {
		t.Errorf("ring len = %d, want %d", tr.Len(), maxSpans)
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Errorf("Spans() = %d, want %d", got, maxSpans)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer("d")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := tr.StartSpan("op")
				sp.Set("i", "x")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 1600 {
		t.Errorf("spans = %d, want 1600", tr.Len())
	}
}

func TestLoggerLevels(t *testing.T) {
	var b strings.Builder
	log := NewLogger(&b, LevelInfo, "lassd")
	log.Debugf("hidden %d", 1)
	log.Infof("visible")
	log.Errorf("boom")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug record leaked through LevelInfo")
	}
	if !strings.Contains(out, "INFO visible") || !strings.Contains(out, "ERROR boom") {
		t.Errorf("missing records:\n%s", out)
	}
	if !strings.Contains(out, "lassd: ") {
		t.Errorf("missing prefix:\n%s", out)
	}
}

func TestNilLoggerIsSilent(t *testing.T) {
	var log *Logger
	log.Infof("x") // must not panic
	log.SetLevel(LevelDebug)
	if Silent() != nil {
		t.Error("Silent() should be the nil logger")
	}
}

func TestFuncLogger(t *testing.T) {
	var got []string
	log := FuncLogger(func(format string, args ...any) {
		got = append(got, format)
	})
	log.Debugf("a")
	if len(got) != 1 {
		t.Errorf("FuncLogger forwarded %d records, want 1", len(got))
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "error": LevelError,
		"silent": LevelSilent, "bogus": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLoggerTruncatesLongRecords(t *testing.T) {
	var b strings.Builder
	log := NewLogger(&b, LevelDebug, "")
	log.SetMaxRecordLen(32)
	long := strings.Repeat("x", 500)
	log.Infof("value=%s", long)
	out := b.String()
	if strings.Contains(out, long) {
		t.Fatal("record not truncated")
	}
	if !strings.Contains(out, "…(+") {
		t.Errorf("missing truncation marker:\n%s", out)
	}
	// Default bound applies without SetMaxRecordLen.
	b.Reset()
	log2 := NewLogger(&b, LevelDebug, "")
	log2.Infof("%s", strings.Repeat("y", DefaultMaxRecordLen+100))
	if got := b.Len(); got > DefaultMaxRecordLen+64 {
		t.Errorf("default-bounded record is %d bytes", got)
	}
	// Disabling the bound passes records through.
	b.Reset()
	log2.SetMaxRecordLen(-1)
	log2.Infof("%s", long)
	if !strings.Contains(b.String(), long) {
		t.Error("unbounded logger truncated anyway")
	}
	// Truncation never splits a UTF-8 rune.
	if got := truncate(strings.Repeat("é", 20), 5); !strings.HasPrefix(got, "éé…") {
		t.Errorf("rune-split truncation: %q", got)
	}
}
