package faults

import (
	"net"
	"sync"
	"testing"
	"time"
)

// hungListener accepts connections and never replies — the shape of a
// deadlocked daemon: alive at the TCP layer, dead at the protocol
// layer. Accepted connections are held open (not closed) so the client
// sees neither a reset nor an answer.
func hungListener(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var mu sync.Mutex
	var held []net.Conn
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c)
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		l.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	})
	return l.Addr().String()
}

// TestDetectHungAttributeServer: a daemon that accepts but never
// replies must surface as an AS fault via the ping timeout — without
// the bound the HELLO round trip would block the supervisor's poller
// forever and the hang would be undetectable.
func TestDetectHungAttributeServer(t *testing.T) {
	addr := hungListener(t)
	_, s := newSupervisorT(t)
	s.WatchService("lass", 10*time.Millisecond,
		PingAttrSpaceTimeout(nil, addr, 150*time.Millisecond))
	f := waitFault(t, s)
	if f.Role != RoleAux || f.Name != "lass" {
		t.Errorf("fault = %+v, want AS lass", f)
	}
	if f.Err == nil {
		t.Error("hang fault carries no error")
	}
}

// TestPingTimeoutZeroDefaults: a non-positive timeout falls back to
// DefaultPingTimeout rather than producing an unbounded probe.
func TestPingTimeoutZeroDefaults(t *testing.T) {
	addr := hungListener(t)
	start := time.Now()
	err := PingAttrSpaceTimeout(nil, addr, -1)()
	if err == nil {
		t.Fatal("ping against a hung server returned nil")
	}
	if d := time.Since(start); d > DefaultPingTimeout+2*time.Second {
		t.Errorf("ping took %v, want ~DefaultPingTimeout (%v)", d, DefaultPingTimeout)
	}
}
