package faults

import (
	"strings"
	"testing"
	"time"

	"tdp/internal/procsim"
)

func TestLivenessDetectsHang(t *testing.T) {
	k, s := newSupervisorT(t)
	entered := make(chan struct{})
	p, err := k.Spawn(procsim.Spec{
		Executable: "hang", Program: procsim.NewHangingProgram(entered),
	}, false)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	<-entered // the program is now wedged
	if err := s.WatchLiveness(p.PID(), "hang", 5*time.Millisecond, 30*time.Millisecond); err != nil {
		t.Fatalf("WatchLiveness: %v", err)
	}
	f := waitFault(t, s)
	if f.Role != RoleApplication || f.PID != p.PID() {
		t.Errorf("fault = %+v", f)
	}
	if f.Err == nil || !strings.Contains(f.Err.Error(), "hung") {
		t.Errorf("fault err = %v", f.Err)
	}
	if !strings.Contains(f.String(), "hung") {
		t.Errorf("String = %q", f.String())
	}
}

func TestLivenessHealthyProcessNoFault(t *testing.T) {
	k, s := newSupervisorT(t)
	p, err := k.Spawn(procsim.Spec{
		Executable: "spin", Program: procsim.NewSpinnerProgram(), Symbols: procsim.StdSymbols,
	}, false)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	defer p.Kill("")
	if err := s.WatchLiveness(p.PID(), "spin", 5*time.Millisecond, 30*time.Millisecond); err != nil {
		t.Fatalf("WatchLiveness: %v", err)
	}
	select {
	case f := <-s.Faults():
		t.Errorf("healthy process flagged: %v", f)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestLivenessStoppedProcessIsNotAHang(t *testing.T) {
	k, s := newSupervisorT(t)
	p, err := k.Spawn(procsim.Spec{
		Executable: "spin", Program: procsim.NewSpinnerProgram(), Symbols: procsim.StdSymbols,
	}, false)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	defer p.Kill("")
	p.Stop("")
	if err := s.WatchLiveness(p.PID(), "spin", 5*time.Millisecond, 30*time.Millisecond); err != nil {
		t.Fatalf("WatchLiveness: %v", err)
	}
	select {
	case f := <-s.Faults():
		t.Errorf("deliberately stopped process flagged: %v", f)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestLivenessExitedProcessStopsWatch(t *testing.T) {
	k, s := newSupervisorT(t)
	p, _ := k.Spawn(procsim.Spec{Executable: "x", Program: procsim.NewExitingProgram(0)}, false)
	p.WaitParent()
	if err := s.WatchLiveness(p.PID(), "x", 5*time.Millisecond, 20*time.Millisecond); err != nil {
		t.Fatalf("WatchLiveness: %v", err)
	}
	select {
	case f := <-s.Faults():
		t.Errorf("exited process flagged as hung: %v", f)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestLivenessUnknownPID(t *testing.T) {
	_, s := newSupervisorT(t)
	if err := s.WatchLiveness(procsim.PID(1), "ghost", time.Millisecond, time.Millisecond); err == nil {
		t.Error("WatchLiveness of unknown pid succeeded")
	}
}
