// Package faults implements fault detection for the three entity
// kinds a resource manager launches under TDP — the application
// process (AP), the run-time tool (RT), and auxiliary services (AS)
// such as attribute space servers or multicast networks. The paper
// lists this as a required interface ("the RM must be able to detect
// these failures, respond to them, and perhaps communicate their
// occurrence to the other entities") while deferring the full fault
// model to future work; this package supplies a working version of
// that future work for the reproduction's experiments.
//
// A Supervisor watches processes through kernel events and services
// through periodic pings. Unexpected terminations and failed pings
// become Fault records, delivered on a channel and optionally
// published into the attribute space so surviving entities learn of
// the failure through the normal TDP notification path.
package faults

import (
	"context"
	"fmt"
	"sync"
	"time"

	"tdp"
	"tdp/internal/attrspace"
	"tdp/internal/procsim"
)

// Role classifies the failed entity, following the paper's AP/RT/AS
// taxonomy.
type Role int

const (
	// RoleApplication is the job process itself.
	RoleApplication Role = iota
	// RoleTool is a run-time tool daemon.
	RoleTool
	// RoleAux is an auxiliary service (attribute server, multicast net).
	RoleAux
)

// String names the role as in the paper.
func (r Role) String() string {
	switch r {
	case RoleApplication:
		return "AP"
	case RoleTool:
		return "RT"
	case RoleAux:
		return "AS"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Fault describes one detected failure.
type Fault struct {
	Role   Role
	PID    procsim.PID // zero for services
	Name   string      // service name or executable
	Status procsim.ExitStatus
	Err    error // ping error for services
	When   time.Time
}

// String renders "AP pid=1000 killed(SIGKILL)" style records.
func (f Fault) String() string {
	if f.Role == RoleAux {
		return fmt.Sprintf("%s %s: %v", f.Role, f.Name, f.Err)
	}
	if f.Err != nil {
		return fmt.Sprintf("%s %s pid=%d: %v", f.Role, f.Name, f.PID, f.Err)
	}
	return fmt.Sprintf("%s %s pid=%d %s", f.Role, f.Name, f.PID, f.Status)
}

// ExpectCleanExit is the default fault predicate: anything but a
// signal-free zero exit is a fault.
func ExpectCleanExit(st procsim.ExitStatus) bool {
	return !st.Signaled() && st.Code == 0
}

// Supervisor detects faults in watched processes and services.
type Supervisor struct {
	kernel *procsim.Kernel
	sub    *procsim.EventSub
	faults chan Fault

	mu      sync.Mutex
	watched map[procsim.PID]watchEntry
	closed  bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
	history []Fault
}

type watchEntry struct {
	role     Role
	name     string
	expected func(procsim.ExitStatus) bool
}

// NewSupervisor starts fault detection on the kernel.
func NewSupervisor(k *procsim.Kernel) *Supervisor {
	s := &Supervisor{
		kernel:  k,
		sub:     k.Subscribe(),
		faults:  make(chan Fault, 64),
		watched: make(map[procsim.PID]watchEntry),
		stopCh:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *Supervisor) loop() {
	defer s.wg.Done()
	for e := range s.sub.Events() {
		if e.Kind != procsim.EventExited {
			continue
		}
		s.mu.Lock()
		w, ok := s.watched[e.PID]
		if ok {
			delete(s.watched, e.PID)
		}
		s.mu.Unlock()
		if !ok {
			continue
		}
		if w.expected(e.Status) {
			continue
		}
		s.report(Fault{Role: w.role, PID: e.PID, Name: w.name, Status: e.Status, When: time.Now()})
	}
}

func (s *Supervisor) report(f Fault) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.history = append(s.history, f)
	s.mu.Unlock()
	select {
	case s.faults <- f:
	default:
		// Bounded channel: the history still records the fault.
	}
}

// Watch registers a process for fault detection. expected classifies
// exit statuses as normal (true) or faulty (false); nil means
// ExpectCleanExit.
func (s *Supervisor) Watch(role Role, pid procsim.PID, name string, expected func(procsim.ExitStatus) bool) {
	if expected == nil {
		expected = ExpectCleanExit
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watched[pid] = watchEntry{role: role, name: name, expected: expected}
}

// Unwatch removes a process (e.g. when the RM reaps it deliberately).
func (s *Supervisor) Unwatch(pid procsim.PID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.watched, pid)
}

// WatchService polls an auxiliary service with ping every interval; a
// ping error reports a fault and stops the poller (re-watch after
// recovery).
func (s *Supervisor) WatchService(name string, interval time.Duration, ping func() error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stopCh:
				return
			case <-ticker.C:
				if err := ping(); err != nil {
					s.report(Fault{Role: RoleAux, Name: name, Err: err, When: time.Now()})
					return
				}
			}
		}
	}()
}

// WatchLiveness detects hangs: a process that is nominally running but
// whose safe-point progress counter has not advanced for staleAfter is
// reported as a fault (it can be neither stopped nor exited — those
// are legitimate quiescent states). Detection stops after the first
// report or when the process exits.
func (s *Supervisor) WatchLiveness(pid procsim.PID, name string, interval, staleAfter time.Duration) error {
	p, err := s.kernel.Process(pid)
	if err != nil {
		return err
	}
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		last := p.Progress()
		lastChange := time.Now()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stopCh:
				return
			case <-ticker.C:
				switch p.State() {
				case procsim.StateExited:
					return
				case procsim.StateStopped, procsim.StateCreated:
					lastChange = time.Now() // paused on purpose; not a hang
					continue
				}
				cur := p.Progress()
				if cur != last {
					last = cur
					lastChange = time.Now()
					continue
				}
				if time.Since(lastChange) >= staleAfter {
					s.report(Fault{
						Role: RoleApplication, PID: pid, Name: name,
						Err:  fmt.Errorf("faults: no progress for %v (hung)", staleAfter),
						When: time.Now(),
					})
					return
				}
			}
		}
	}()
	return nil
}

// Faults returns the fault delivery channel.
func (s *Supervisor) Faults() <-chan Fault { return s.faults }

// History returns all faults detected so far.
func (s *Supervisor) History() []Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Fault, len(s.history))
	copy(out, s.history)
	return out
}

// PublishTo mirrors every subsequent fault into the attribute space as
// attribute "fault" = "<role> <name> ..." so other TDP entities learn
// of it through the ordinary notification path. Call once; runs until
// Close.
func (s *Supervisor) PublishTo(h *tdp.Handle) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-s.stopCh:
				return
			case f, ok := <-s.faults:
				if !ok {
					return
				}
				h.Put("fault", f.String())
			}
		}
	}()
}

// Close stops detection.
func (s *Supervisor) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	s.kernel.Cancel(s.sub)
	s.wg.Wait()
}

// DefaultPingTimeout bounds one attribute-server ping (dial + HELLO +
// PUT). Hung daemons — accepting connections but never replying — are
// indistinguishable from healthy ones without it.
const DefaultPingTimeout = 2 * time.Second

// PingAttrSpace returns a ping function for an attribute space server:
// it dials, joins a probe context, performs one put, and disconnects,
// all bounded by DefaultPingTimeout.
func PingAttrSpace(dial attrspace.DialFunc, addr string) func() error {
	return PingAttrSpaceTimeout(dial, addr, DefaultPingTimeout)
}

// PingAttrSpaceTimeout is PingAttrSpace with an explicit bound on the
// whole probe. The timeout is what turns a hung server (accepts, never
// replies — a deadlocked daemon, not a dead one) into a detectable
// fault rather than a stuck supervisor goroutine.
func PingAttrSpaceTimeout(dial attrspace.DialFunc, addr string, timeout time.Duration) func() error {
	if timeout <= 0 {
		timeout = DefaultPingTimeout
	}
	return func() error {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		c, err := attrspace.DialCtx(ctx, dial, addr, "fault-probe")
		if err != nil {
			return err
		}
		defer c.Close()
		return c.PutCtx(ctx, "ping", "1")
	}
}
