package faults

import (
	"context"
	"strings"
	"testing"
	"time"

	"tdp"
	"tdp/internal/procsim"
)

func newSupervisorT(t *testing.T) (*procsim.Kernel, *Supervisor) {
	t.Helper()
	k := procsim.NewKernel()
	s := NewSupervisor(k)
	t.Cleanup(s.Close)
	return k, s
}

func waitFault(t *testing.T, s *Supervisor) Fault {
	t.Helper()
	select {
	case f := <-s.Faults():
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("no fault detected")
		return Fault{}
	}
}

func TestDetectKilledApplication(t *testing.T) {
	k, s := newSupervisorT(t)
	p, err := k.Spawn(procsim.Spec{Executable: "app", Program: procsim.NewSpinnerProgram(), Symbols: procsim.StdSymbols}, false)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	s.Watch(RoleApplication, p.PID(), "app", nil)
	p.Kill("SIGKILL")
	f := waitFault(t, s)
	if f.Role != RoleApplication || f.PID != p.PID() || f.Status.Signal != "SIGKILL" {
		t.Errorf("fault = %+v", f)
	}
	if !strings.Contains(f.String(), "AP app") {
		t.Errorf("String = %q", f.String())
	}
}

func TestDetectToolNonzeroExit(t *testing.T) {
	k, s := newSupervisorT(t)
	p, _ := k.Spawn(procsim.Spec{Executable: "paradynd", Program: procsim.NewExitingProgram(3)}, false)
	s.Watch(RoleTool, p.PID(), "paradynd", nil)
	f := waitFault(t, s)
	if f.Role != RoleTool || f.Status.Code != 3 {
		t.Errorf("fault = %+v", f)
	}
}

func TestCleanExitIsNotAFault(t *testing.T) {
	k, s := newSupervisorT(t)
	p, _ := k.Spawn(procsim.Spec{Executable: "ok", Program: procsim.NewExitingProgram(0)}, false)
	s.Watch(RoleApplication, p.PID(), "ok", nil)
	p.WaitParent()
	select {
	case f := <-s.Faults():
		t.Errorf("unexpected fault %v", f)
	case <-time.After(50 * time.Millisecond):
	}
	if len(s.History()) != 0 {
		t.Errorf("history = %v", s.History())
	}
}

func TestCustomExpectedPredicate(t *testing.T) {
	k, s := newSupervisorT(t)
	// A tool whose protocol says exit(9) means "detached cleanly".
	p, _ := k.Spawn(procsim.Spec{Executable: "t", Program: procsim.NewExitingProgram(9)}, false)
	s.Watch(RoleTool, p.PID(), "t", func(st procsim.ExitStatus) bool { return st.Code == 9 })
	p.WaitParent()
	select {
	case f := <-s.Faults():
		t.Errorf("unexpected fault %v", f)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUnwatch(t *testing.T) {
	k, s := newSupervisorT(t)
	p, _ := k.Spawn(procsim.Spec{Executable: "app", Program: procsim.NewSpinnerProgram(), Symbols: procsim.StdSymbols}, false)
	s.Watch(RoleApplication, p.PID(), "app", nil)
	s.Unwatch(p.PID())
	p.Kill("")
	select {
	case f := <-s.Faults():
		t.Errorf("fault after Unwatch: %v", f)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestDetectDeadAttributeServer(t *testing.T) {
	_, s := newSupervisorT(t)
	srv, addr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeLASS: %v", err)
	}
	ping := PingAttrSpace(nil, addr)
	if err := ping(); err != nil {
		t.Fatalf("initial ping: %v", err)
	}
	s.WatchService("lass@node1", 10*time.Millisecond, ping)
	// Healthy for a few cycles.
	select {
	case f := <-s.Faults():
		t.Fatalf("fault while healthy: %v", f)
	case <-time.After(50 * time.Millisecond):
	}
	srv.Close() // the AS dies
	f := waitFault(t, s)
	if f.Role != RoleAux || f.Name != "lass@node1" || f.Err == nil {
		t.Errorf("fault = %+v", f)
	}
	if !strings.Contains(f.String(), "AS lass@node1") {
		t.Errorf("String = %q", f.String())
	}
}

func TestPublishFaultsIntoAttributeSpace(t *testing.T) {
	// The RM detects the tool's death and the surviving entities learn
	// of it through the attribute space — the paper's "communicate
	// their occurrence to the other entities".
	k, s := newSupervisorT(t)
	srv, addr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeLASS: %v", err)
	}
	defer srv.Close()
	rm, err := tdp.Init(tdp.Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RM"})
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	defer rm.Exit()
	other, err := tdp.Init(tdp.Config{Context: "job", LASSAddr: addr, Identity: "observer"})
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	defer other.Exit()

	s.PublishTo(rm)
	p, _ := k.Spawn(procsim.Spec{Executable: "paradynd", Program: procsim.NewSpinnerProgram(), Symbols: procsim.StdSymbols}, false)
	s.Watch(RoleTool, p.PID(), "paradynd", nil)
	p.Kill("SIGSEGV")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err := other.Get(ctx, "fault")
	if err != nil {
		t.Fatalf("Get fault: %v", err)
	}
	if !strings.Contains(v, "RT paradynd") || !strings.Contains(v, "SIGSEGV") {
		t.Errorf("fault attribute = %q", v)
	}
}

func TestHistoryAccumulates(t *testing.T) {
	k, s := newSupervisorT(t)
	for i := 0; i < 3; i++ {
		p, _ := k.Spawn(procsim.Spec{Executable: "x", Program: procsim.NewExitingProgram(1)}, false)
		s.Watch(RoleApplication, p.PID(), "x", nil)
		p.WaitParent()
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(s.History()) < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(s.History()); got != 3 {
		t.Errorf("history = %d faults, want 3", got)
	}
}

func TestRoleStrings(t *testing.T) {
	if RoleApplication.String() != "AP" || RoleTool.String() != "RT" || RoleAux.String() != "AS" {
		t.Error("role strings wrong")
	}
	if Role(7).String() != "role(7)" {
		t.Error("unknown role string")
	}
}

func TestSupervisorCloseIdempotent(t *testing.T) {
	_, s := newSupervisorT(t)
	s.Close()
	s.Close()
}

func TestToolRestartOnFault(t *testing.T) {
	// An RM policy built on the supervisor: when the tool dies, launch
	// a replacement that re-attaches — the paper's "respond to them".
	k, s := newSupervisorT(t)
	srv, addr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeLASS: %v", err)
	}
	defer srv.Close()
	rm, err := tdp.Init(tdp.Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "RM"})
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	defer rm.Exit()

	ap, err := rm.CreateProcess(tdp.ProcessSpec{
		Executable: "app", Program: procsim.NewSleeperProgram(time.Hour), Symbols: procsim.StdSymbols,
	}, tdp.StartRun)
	if err != nil {
		t.Fatalf("create app: %v", err)
	}
	defer ap.Kill("")
	rm.PublishPID(ap)

	mkTool := func() *tdp.Process {
		tool, err := rm.CreateProcess(tdp.ProcessSpec{
			Executable: "tool",
			Program: procsim.ProgramFunc(func(pc *procsim.ProcContext) int {
				h, err := tdp.Init(tdp.Config{Context: "job", LASSAddr: addr, Kernel: k, Identity: "tool"})
				if err != nil {
					return 1
				}
				defer h.Exit()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				pid, err := h.GetPID(ctx)
				if err != nil {
					return 1
				}
				p, err := h.Attach(pid)
				if err != nil {
					return 1
				}
				h.Put("tool_generation", "attached")
				p.Continue()
				pc.Sleep(time.Hour) // monitor forever (until killed)
				return 0
			}),
		}, tdp.StartRun)
		if err != nil {
			t.Fatalf("create tool: %v", err)
		}
		return tool
	}

	tool1 := mkTool()
	s.Watch(RoleTool, tool1.PID(), "tool", nil)
	// Wait for the first generation to attach.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := rm.Get(ctx, "tool_generation"); err != nil {
		t.Fatalf("first tool never attached: %v", err)
	}
	tool1.Kill("SIGKILL")
	f := waitFault(t, s)
	if f.Role != RoleTool {
		t.Fatalf("fault = %v", f)
	}
	// Policy: restart. The replacement must be able to attach again —
	// requires the kernel to have released the dead tracer.
	rm.Delete("tool_generation")
	tool2 := mkTool()
	defer tool2.Kill("")
	s.Watch(RoleTool, tool2.PID(), "tool", nil)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := rm.Get(ctx2, "tool_generation"); err != nil {
		t.Fatalf("replacement tool never attached: %v", err)
	}
}
