// Package netsim provides an in-memory network of named hosts with
// listeners, dialing, firewall rules, and optional link latency. It
// exists so the paper's §2.4 scenario — an application running on a
// private network behind a firewall/NAT, reachable only through the
// resource manager's proxy — can be constructed and tested
// deterministically inside one process.
//
// Connections are net.Pipe pairs, so everything built on net.Conn
// (the wire package, the attribute space servers, the Paradyn
// front-end protocol) runs unmodified over the simulated fabric.
package netsim

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"
)

// ErrHostUnknown is returned when dialing or adding routes for a host
// that was never added to the network.
var ErrHostUnknown = errors.New("netsim: unknown host")

// ErrConnRefused is returned when no listener is bound to the target port.
var ErrConnRefused = errors.New("netsim: connection refused")

// ErrBlocked is returned when a firewall rule rejects the connection.
var ErrBlocked = errors.New("netsim: blocked by firewall")

// ErrClosed is returned for operations on a closed listener or network.
var ErrClosed = errors.New("netsim: closed")

// Rule decides whether a connection attempt from one host to another
// host/port is allowed. Rules compose with AND: every rule must allow
// the attempt.
type Rule func(fromHost, toHost string, toPort int) bool

// Addr is the net.Addr implementation for simulated endpoints.
type Addr struct {
	Host string
	Port int
}

// Network returns the addr network name, "sim".
func (a Addr) Network() string { return "sim" }

// String returns "host:port".
func (a Addr) String() string { return net.JoinHostPort(a.Host, strconv.Itoa(a.Port)) }

// SplitAddr parses "host:port" into its components.
func SplitAddr(addr string) (host string, port int, err error) {
	h, p, err := net.SplitHostPort(addr)
	if err != nil {
		return "", 0, fmt.Errorf("netsim: bad address %q: %w", addr, err)
	}
	n, err := strconv.Atoi(p)
	if err != nil {
		return "", 0, fmt.Errorf("netsim: bad port in %q: %w", addr, err)
	}
	return h, n, nil
}

// Network is the simulated fabric: a set of hosts plus firewall rules.
type Network struct {
	mu       sync.Mutex
	hosts    map[string]*Host
	rules    []Rule
	latency  time.Duration
	samehost bool // same-host dials advertise SameHost() (shm eligibility)
	dials    int  // statistics: total successful dials
	blocked  int  // statistics: dials rejected by rules
}

// New returns an empty network.
func New() *Network {
	return &Network{hosts: make(map[string]*Host)}
}

// SetLatency configures a one-way per-connection setup delay applied on
// every successful dial, simulating WAN round-trip cost for the proxy
// overhead experiments.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// EnableSameHost turns on same-host modelling: a dial whose source and
// destination are the same named host yields connections that report
// SameHost() == true, which makes them eligible for the shared-memory
// transport (the attrspace servers probe exactly that method). Off by
// default on purpose — a pool-scale scenario with thousands of
// simulated hosts must not create a real mmap segment per co-located
// connection unless the test asks for it.
func (n *Network) EnableSameHost(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.samehost = on
}

// AddRule appends a firewall rule. All rules must pass for a dial to
// proceed.
func (n *Network) AddRule(r Rule) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rules = append(n.rules, r)
}

// BlockInbound returns a rule that rejects any connection into the
// given host unless it originates from one of the allowed hosts. It
// models a private network whose firewall admits only the resource
// manager's own machinery.
func BlockInbound(protectedHost string, allowedFrom ...string) Rule {
	allowed := make(map[string]bool, len(allowedFrom))
	for _, h := range allowedFrom {
		allowed[h] = true
	}
	return func(from, to string, _ int) bool {
		if to != protectedHost {
			return true
		}
		return from == protectedHost || allowed[from]
	}
}

// BlockOutbound returns a rule that rejects connections leaving the
// given host except to the allowed destinations (e.g. only the proxy).
func BlockOutbound(confinedHost string, allowedTo ...string) Rule {
	allowed := make(map[string]bool, len(allowedTo))
	for _, h := range allowedTo {
		allowed[h] = true
	}
	return func(from, to string, _ int) bool {
		if from != confinedHost {
			return true
		}
		return to == confinedHost || allowed[to]
	}
}

// AddHost creates (or returns the existing) named host.
func (n *Network) AddHost(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[name]; ok {
		return h
	}
	h := &Host{net: n, name: name, listeners: make(map[int]*Listener), nextPort: 10000}
	n.hosts[name] = h
	return h
}

// Host returns the named host, or nil when absent.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[name]
}

// Stats reports the number of successful and firewall-blocked dials.
func (n *Network) Stats() (dials, blocked int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dials, n.blocked
}

// Host is one named machine on the simulated network.
type Host struct {
	net       *Network
	name      string
	listeners map[int]*Listener
	nextPort  int
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Listen binds a listener on the given port; port 0 picks a free one.
func (h *Host) Listen(port int) (*Listener, error) {
	n := h.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if port == 0 {
		for h.listeners[h.nextPort] != nil {
			h.nextPort++
		}
		port = h.nextPort
		h.nextPort++
	}
	if h.listeners[port] != nil {
		return nil, fmt.Errorf("netsim: %s port %d in use", h.name, port)
	}
	l := &Listener{
		host:   h,
		addr:   Addr{Host: h.name, Port: port},
		accept: make(chan net.Conn, 16),
		done:   make(chan struct{}),
	}
	h.listeners[port] = l
	return l, nil
}

// Dial connects from this host to "host:port" elsewhere on the network,
// subject to firewall rules.
func (h *Host) Dial(addr string) (net.Conn, error) {
	toHost, toPort, err := SplitAddr(addr)
	if err != nil {
		return nil, err
	}
	n := h.net
	n.mu.Lock()
	target := n.hosts[toHost]
	if target == nil {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrHostUnknown, toHost)
	}
	for _, r := range n.rules {
		if !r(h.name, toHost, toPort) {
			n.blocked++
			n.mu.Unlock()
			return nil, fmt.Errorf("%w: %s -> %s", ErrBlocked, h.name, addr)
		}
	}
	l := target.listeners[toPort]
	if l == nil {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	latency := n.latency
	samehost := n.samehost && h.name == toHost
	n.dials++
	n.mu.Unlock()

	if latency > 0 {
		time.Sleep(latency)
	}
	client, server := net.Pipe()
	cc := &conn{Conn: client, local: Addr{Host: h.name, Port: -1}, remote: l.addr, samehost: samehost}
	sc := &conn{Conn: server, local: l.addr, remote: Addr{Host: h.name, Port: -1}, samehost: samehost}
	select {
	case l.accept <- sc:
		return cc, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
}

// Listener is a bound simulated port implementing net.Listener.
type Listener struct {
	host   *Host
	addr   Addr
	accept chan net.Conn
	once   sync.Once
	done   chan struct{}
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close unbinds the port and unblocks Accept.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		n := l.host.net
		n.mu.Lock()
		delete(l.host.listeners, l.addr.Port)
		n.mu.Unlock()
	})
	return nil
}

// Addr returns the bound simulated address.
func (l *Listener) Addr() net.Addr { return l.addr }

// conn decorates a pipe end with simulated addresses.
type conn struct {
	net.Conn
	local, remote Addr
	samehost      bool
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

// SameHost reports whether both ends of this connection live on the
// same simulated host AND the network has same-host modelling enabled
// — the opt-in that lets the shared-memory transport engage over the
// simulated fabric (chaos tests interpose on its doorbell socket).
func (c *conn) SameHost() bool { return c.samehost }
