// Chaos: deterministic fault injection layered over any net.Conn
// dialer. The attrspace chaos suite drives a reconnecting Session
// through mid-frame cuts, latency spikes, partitions, and
// refuse-then-accept daemons — all seeded, so a failing run replays
// byte-for-byte.
package netsim

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrChaosCut is returned by a write that the fault injector cut
// mid-frame; the connection is closed underneath it.
var ErrChaosCut = fmt.Errorf("netsim: chaos cut connection")

// ErrChaosRefused is returned by a dial while the injector is
// partitioned or consuming a RefuseNext budget.
var ErrChaosRefused = fmt.Errorf("netsim: chaos refused dial")

// ChaosConfig tunes the fault injector. The zero value injects
// nothing; faults switch on per knob.
type ChaosConfig struct {
	// Seed fixes the RNG so every run injects the same faults at the
	// same byte offsets. 0 seeds from the clock (non-deterministic).
	Seed int64
	// CutAfterBytes, when > 0, gives each connection a write budget
	// drawn from [CutAfterBytes/2, CutAfterBytes*3/2]; the write that
	// exhausts it is truncated mid-frame and the connection closed —
	// the classic torn-frame kill.
	CutAfterBytes int
	// LatencyEvery, when > 0, makes every Nth write on a connection
	// stall for Latency first — a transient slow-drip rather than a
	// failure.
	LatencyEvery int
	Latency      time.Duration
}

// ChaosStats counts what the injector actually did.
type ChaosStats struct {
	Dials   int // dials passed through (faulty conn handed out)
	Refused int // dials rejected (partition or RefuseNext budget)
	Cuts    int // connections killed mid-frame by the byte budget or CutAll
	Spikes  int // writes delayed by a latency spike
}

// Chaos wraps a DialFunc with seeded fault injection. One Chaos is
// shared by every connection it dials, so Partition/Heal/CutAll act on
// the whole client at once — the shape of a daemon crash as seen from
// its clients.
type Chaos struct {
	cfg ChaosConfig

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned bool
	refuse      int
	conns       map[*chaosConn]struct{}
	stats       ChaosStats
}

// NewChaos returns an injector with the given configuration.
func NewChaos(cfg ChaosConfig) *Chaos {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Chaos{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[*chaosConn]struct{}),
	}
}

// Dial wraps inner with this injector: refused while partitioned (or a
// RefuseNext budget remains), otherwise the dialed connection carries
// the injector's byte budget and latency schedule.
func (c *Chaos) Dial(inner func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c.mu.Lock()
		if c.partitioned || c.refuse > 0 {
			if c.refuse > 0 {
				c.refuse--
			}
			c.stats.Refused++
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrChaosRefused, addr)
		}
		budget := -1
		if c.cfg.CutAfterBytes > 0 {
			budget = c.cfg.CutAfterBytes/2 + c.rng.Intn(c.cfg.CutAfterBytes+1)
		}
		c.stats.Dials++
		c.mu.Unlock()
		raw, err := inner(addr)
		if err != nil {
			return nil, err
		}
		cc := &chaosConn{Conn: raw, ch: c, budget: budget}
		c.mu.Lock()
		c.conns[cc] = struct{}{}
		c.mu.Unlock()
		return cc, nil
	}
}

// Partition severs the client from the network: every live connection
// is cut and every dial refused until Heal.
func (c *Chaos) Partition() {
	c.mu.Lock()
	c.partitioned = true
	c.mu.Unlock()
	c.CutAll()
}

// Heal ends a partition; subsequent dials pass through again.
func (c *Chaos) Heal() {
	c.mu.Lock()
	c.partitioned = false
	c.mu.Unlock()
}

// RefuseNext makes the next n dials fail — the window between a daemon
// dying and its replacement binding the port.
func (c *Chaos) RefuseNext(n int) {
	c.mu.Lock()
	c.refuse += n
	c.mu.Unlock()
}

// CutAll closes every live connection this injector handed out — a
// daemon kill as the clients experience it.
func (c *Chaos) CutAll() {
	c.mu.Lock()
	conns := make([]*chaosConn, 0, len(c.conns))
	for cc := range c.conns {
		conns = append(conns, cc)
	}
	c.conns = make(map[*chaosConn]struct{})
	c.stats.Cuts += len(conns)
	c.mu.Unlock()
	for _, cc := range conns {
		cc.Conn.Close()
	}
}

// Stats returns a snapshot of the injector's activity so far.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// drop unregisters a connection the injector (or its user) closed.
func (c *Chaos) drop(cc *chaosConn) {
	c.mu.Lock()
	delete(c.conns, cc)
	c.mu.Unlock()
}

// chaosConn is one faulty connection: writes burn the byte budget and
// the one that exhausts it leaves the wire truncated mid-frame.
type chaosConn struct {
	net.Conn
	ch *Chaos

	mu     sync.Mutex
	budget int // bytes until the cut; -1 = never
	writes int
	dead   bool
}

func (cc *chaosConn) Write(p []byte) (int, error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return 0, ErrChaosCut
	}
	cc.writes++
	spike := cc.ch.cfg.LatencyEvery > 0 && cc.writes%cc.ch.cfg.LatencyEvery == 0
	cut := cc.budget >= 0 && len(p) >= cc.budget
	var keep int
	if cut {
		keep = cc.budget
		cc.dead = true
	} else if cc.budget >= 0 {
		cc.budget -= len(p)
	}
	cc.mu.Unlock()

	if spike {
		cc.ch.mu.Lock()
		cc.ch.stats.Spikes++
		cc.ch.mu.Unlock()
		time.Sleep(cc.ch.cfg.Latency)
	}
	if !cut {
		return cc.Conn.Write(p)
	}
	// Torn frame: emit a strict prefix of the caller's buffer, then
	// kill the transport. The peer decodes a truncated length-prefixed
	// frame followed by EOF — exactly a daemon dying mid-reply.
	n := 0
	if keep > 0 {
		n, _ = cc.Conn.Write(p[:keep])
	}
	cc.Conn.Close()
	cc.ch.drop(cc)
	cc.ch.mu.Lock()
	cc.ch.stats.Cuts++
	cc.ch.mu.Unlock()
	return n, ErrChaosCut
}

func (cc *chaosConn) Close() error {
	cc.ch.drop(cc)
	return cc.Conn.Close()
}

// SameHost delegates to the wrapped connection so the shared-memory
// transport can still engage (and then be chaos-killed) through the
// injector. Struct embedding does not promote methods through the
// net.Conn interface, so the probe is explicit.
func (cc *chaosConn) SameHost() bool {
	if sh, ok := cc.Conn.(interface{ SameHost() bool }); ok {
		return sh.SameHost()
	}
	return false
}

// RefuseListener wraps l so the first n accepted connections are
// closed immediately — a daemon that is up but resetting clients
// (mid-restart, backlogged, or crashing on accept) before it settles.
func RefuseListener(l net.Listener, n int) net.Listener {
	return &refuseListener{Listener: l, left: n}
}

type refuseListener struct {
	net.Listener
	mu   sync.Mutex
	left int
}

func (rl *refuseListener) Accept() (net.Conn, error) {
	for {
		c, err := rl.Listener.Accept()
		if err != nil {
			return nil, err
		}
		rl.mu.Lock()
		refuse := rl.left > 0
		if refuse {
			rl.left--
		}
		rl.mu.Unlock()
		if !refuse {
			return c, nil
		}
		c.Close()
	}
}
