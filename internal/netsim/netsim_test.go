package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"tdp/internal/wire"
)

func TestDialAndEcho(t *testing.T) {
	n := New()
	a := n.AddHost("alpha")
	b := n.AddHost("beta")

	l, err := b.Listen(7000)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		io.Copy(c, c) // echo
		c.Close()
	}()

	c, err := a.Dial("beta:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	msg := []byte("hello over simnet")
	go c.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != string(msg) {
		t.Errorf("echo = %q", buf)
	}
	c.Close()
}

func TestDialUnknownHost(t *testing.T) {
	n := New()
	a := n.AddHost("a")
	if _, err := a.Dial("ghost:1"); !errors.Is(err, ErrHostUnknown) {
		t.Errorf("err = %v, want ErrHostUnknown", err)
	}
}

func TestDialRefusedWhenNoListener(t *testing.T) {
	n := New()
	a := n.AddHost("a")
	n.AddHost("b")
	if _, err := a.Dial("b:9999"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("err = %v, want ErrConnRefused", err)
	}
}

func TestBadAddress(t *testing.T) {
	n := New()
	a := n.AddHost("a")
	for _, addr := range []string{"nocolon", "host:notaport", ""} {
		if _, err := a.Dial(addr); err == nil {
			t.Errorf("Dial(%q) succeeded", addr)
		}
	}
}

func TestAutoPortAssignment(t *testing.T) {
	n := New()
	h := n.AddHost("h")
	l1, err := h.Listen(0)
	if err != nil {
		t.Fatalf("Listen(0): %v", err)
	}
	defer l1.Close()
	l2, err := h.Listen(0)
	if err != nil {
		t.Fatalf("Listen(0) #2: %v", err)
	}
	defer l2.Close()
	a1 := l1.Addr().(Addr)
	a2 := l2.Addr().(Addr)
	if a1.Port == a2.Port {
		t.Errorf("auto ports collided: %d", a1.Port)
	}
}

func TestPortInUse(t *testing.T) {
	n := New()
	h := n.AddHost("h")
	l, err := h.Listen(500)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	if _, err := h.Listen(500); err == nil {
		t.Error("second Listen on same port succeeded")
	}
}

func TestClosedListenerRefusesAndUnbinds(t *testing.T) {
	n := New()
	a := n.AddHost("a")
	b := n.AddHost("b")
	l, _ := b.Listen(80)
	l.Close()
	if _, err := a.Dial("b:80"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("dial to closed listener: %v", err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("Accept after close: %v", err)
	}
	// Port is free again.
	l2, err := b.Listen(80)
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	l2.Close()
}

func TestFirewallBlockInbound(t *testing.T) {
	n := New()
	outside := n.AddHost("desktop")
	proxyHost := n.AddHost("gateway")
	private := n.AddHost("node1")
	n.AddRule(BlockInbound("node1", "gateway"))

	l, _ := private.Listen(9000)
	defer l.Close()

	if _, err := outside.Dial("node1:9000"); !errors.Is(err, ErrBlocked) {
		t.Errorf("outside dial: err = %v, want ErrBlocked", err)
	}
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	if _, err := proxyHost.Dial("node1:9000"); err != nil {
		t.Errorf("gateway dial blocked: %v", err)
	}
	_, blocked := n.Stats()
	if blocked != 1 {
		t.Errorf("blocked stat = %d, want 1", blocked)
	}
}

func TestFirewallBlockOutbound(t *testing.T) {
	n := New()
	private := n.AddHost("node1")
	n.AddHost("desktop")
	gw := n.AddHost("gateway")
	n.AddRule(BlockOutbound("node1", "gateway"))

	// node1 cannot reach the desktop directly...
	if _, err := private.Dial("desktop:1"); !errors.Is(err, ErrBlocked) {
		t.Errorf("outbound to desktop: %v, want ErrBlocked", err)
	}
	// ...but can reach the gateway.
	l, _ := gw.Listen(4000)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	if _, err := private.Dial("gateway:4000"); err != nil {
		t.Errorf("outbound to gateway: %v", err)
	}
}

func TestLoopbackAlwaysAllowed(t *testing.T) {
	n := New()
	h := n.AddHost("node1")
	n.AddRule(BlockInbound("node1"))
	n.AddRule(BlockOutbound("node1"))
	l, _ := h.Listen(1)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	if _, err := h.Dial("node1:1"); err != nil {
		t.Errorf("loopback blocked: %v", err)
	}
}

func TestAddrs(t *testing.T) {
	n := New()
	a := n.AddHost("a")
	b := n.AddHost("b")
	l, _ := b.Listen(77)
	defer l.Close()
	connCh := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		connCh <- c
	}()
	c, err := a.Dial("b:77")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if got := c.RemoteAddr().String(); got != "b:77" {
		t.Errorf("client RemoteAddr = %q", got)
	}
	sc := <-connCh
	defer sc.Close()
	if got := sc.LocalAddr().String(); got != "b:77" {
		t.Errorf("server LocalAddr = %q", got)
	}
	if Addr(Addr{Host: "x", Port: 1}).Network() != "sim" {
		t.Error("Network() != sim")
	}
}

func TestLatencyApplied(t *testing.T) {
	n := New()
	a := n.AddHost("a")
	b := n.AddHost("b")
	l, _ := b.Listen(1)
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	n.SetLatency(20 * time.Millisecond)
	start := time.Now()
	c, err := a.Dial("b:1")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	c.Close()
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("dial took %v, want >= 20ms latency", d)
	}
}

func TestAddHostIdempotent(t *testing.T) {
	n := New()
	h1 := n.AddHost("x")
	h2 := n.AddHost("x")
	if h1 != h2 {
		t.Error("AddHost created duplicate host")
	}
	if n.Host("x") != h1 {
		t.Error("Host lookup mismatch")
	}
	if n.Host("missing") != nil {
		t.Error("Host(missing) != nil")
	}
	if h1.Name() != "x" {
		t.Errorf("Name = %q", h1.Name())
	}
}

func TestWireOverSimnet(t *testing.T) {
	// The framed protocol must run unmodified over simulated conns.
	n := New()
	a := n.AddHost("fe")
	b := n.AddHost("node")
	l, _ := b.Listen(2000)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		wc := wire.NewConn(c)
		m, err := wc.Recv()
		if err != nil {
			t.Errorf("server Recv: %v", err)
			return
		}
		wc.Send(wire.NewMessage("ACK").Set("echo", m.Get("attr")))
	}()
	c, err := a.Dial("node:2000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	wc := wire.NewConn(c)
	if err := wc.Send(wire.NewMessage("PUT").Set("attr", "pid")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	reply, err := wc.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if reply.Verb != "ACK" || reply.Get("echo") != "pid" {
		t.Errorf("reply = %v", reply)
	}
}

func TestConcurrentDials(t *testing.T) {
	n := New()
	server := n.AddHost("s")
	l, _ := server.Listen(1)
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c)
				c.Close()
			}(c)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		client := n.AddHost("c" + string(rune('a'+i)))
		wg.Add(1)
		go func(h *Host) {
			defer wg.Done()
			c, err := h.Dial("s:1")
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer c.Close()
			go c.Write([]byte("ping"))
			buf := make([]byte, 4)
			if _, err := io.ReadFull(c, buf); err != nil {
				t.Errorf("read: %v", err)
			}
		}(client)
	}
	wg.Wait()
	dials, _ := n.Stats()
	if dials != 16 {
		t.Errorf("dials = %d, want 16", dials)
	}
}

func TestSplitAddr(t *testing.T) {
	h, p, err := SplitAddr("node7:8080")
	if err != nil || h != "node7" || p != 8080 {
		t.Errorf("SplitAddr = %q, %d, %v", h, p, err)
	}
	if _, _, err := SplitAddr("bad"); err == nil {
		t.Error("SplitAddr(bad) succeeded")
	}
}

func TestSameHostModelling(t *testing.T) {
	type sameHoster interface{ SameHost() bool }
	probe := func(n *Network, from, addr string) bool {
		c, err := n.Host(from).Dial(addr)
		if err != nil {
			t.Fatalf("dial %s -> %s: %v", from, addr, err)
		}
		defer c.Close()
		return c.(sameHoster).SameHost()
	}

	n := New()
	a, b := n.AddHost("a"), n.AddHost("b")
	la, err := a.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer la.Close()
	lb, err := b.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	go func() {
		for {
			c, err := la.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := lb.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	// Off by default: even a loopback dial must not claim same-host.
	if probe(n, "a", la.Addr().String()) {
		t.Error("SameHost true with modelling disabled")
	}
	n.EnableSameHost(true)
	if !probe(n, "a", la.Addr().String()) {
		t.Error("SameHost false for a loopback dial with modelling enabled")
	}
	if probe(n, "a", lb.Addr().String()) {
		t.Error("SameHost true across distinct hosts")
	}
}
