package procsim

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func spawnT(t *testing.T, k *Kernel, spec Spec, paused bool) *Process {
	t.Helper()
	p, err := k.Spawn(spec, paused)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	return p
}

func exitSpec(code int) Spec {
	return Spec{Executable: "exiter", Program: NewExitingProgram(code), Symbols: StdSymbols}
}

func TestSpawnRunExit(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(7), false)
	st, err := p.WaitParent()
	if err != nil {
		t.Fatalf("WaitParent: %v", err)
	}
	if st.Code != 7 || st.Signaled() {
		t.Errorf("status = %v, want exit(7)", st)
	}
	if p.State() != StateExited {
		t.Errorf("state = %v", p.State())
	}
}

func TestSpawnPausedStaysCreated(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), true)
	time.Sleep(20 * time.Millisecond)
	if got := p.State(); got != StateCreated {
		t.Fatalf("state = %v, want created (program must not enter main)", got)
	}
	// Continue lets it finish.
	if err := p.Continue(""); err != nil {
		t.Fatalf("Continue: %v", err)
	}
	if st, err := p.WaitParent(); err != nil || st.Code != 0 {
		t.Fatalf("WaitParent = %v, %v", st, err)
	}
}

func TestPausedProcessRunsNothingBeforeContinue(t *testing.T) {
	k := NewKernel()
	var ran atomic.Bool
	prog := ProgramFunc(func(ctx *ProcContext) int {
		ran.Store(true)
		return 0
	})
	p := spawnT(t, k, Spec{Executable: "x", Program: prog}, true)
	time.Sleep(20 * time.Millisecond)
	if ran.Load() {
		t.Fatal("program entered main while in created state")
	}
	p.Continue("")
	p.WaitParent()
	if !ran.Load() {
		t.Fatal("program never ran after Continue")
	}
}

func TestStopAndContinue(t *testing.T) {
	k := NewKernel()
	spec := Spec{Executable: "spin", Program: NewSpinnerProgram(), Symbols: StdSymbols}
	p := spawnT(t, k, spec, false)
	defer p.Kill("")
	if err := p.Stop(""); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if p.State() != StateStopped {
		t.Fatalf("state = %v, want stopped", p.State())
	}
	// Stop is idempotent.
	if err := p.Stop(""); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	if err := p.Continue(""); err != nil {
		t.Fatalf("Continue: %v", err)
	}
	if p.State() != StateRunning {
		t.Fatalf("state = %v, want running", p.State())
	}
}

func TestKillRunning(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, Spec{Executable: "spin", Program: NewSpinnerProgram(), Symbols: StdSymbols}, false)
	if err := p.Kill("SIGTERM"); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	st, err := p.WaitParent()
	if err != nil {
		t.Fatalf("WaitParent: %v", err)
	}
	if !st.Signaled() || st.Signal != "SIGTERM" {
		t.Errorf("status = %v, want killed(SIGTERM)", st)
	}
}

func TestKillCreated(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), true)
	p.Kill("")
	st, err := p.WaitParent()
	if err != nil {
		t.Fatalf("WaitParent: %v", err)
	}
	if st.Signal != "SIGKILL" {
		t.Errorf("status = %v", st)
	}
}

func TestKillStopped(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, Spec{Executable: "spin", Program: NewSpinnerProgram(), Symbols: StdSymbols}, false)
	p.Stop("")
	p.Kill("SIGINT")
	st, err := p.WaitParent()
	if err != nil || st.Signal != "SIGINT" {
		t.Fatalf("status = %v, %v", st, err)
	}
}

func TestKillExitedIsNoop(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), false)
	p.WaitParent()
	if err := p.Kill(""); err != nil {
		t.Errorf("Kill after exit: %v", err)
	}
}

func TestAttachPausesRunningProcess(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, Spec{Executable: "spin", Program: NewSpinnerProgram(), Symbols: StdSymbols}, false)
	defer p.Kill("")
	if err := p.Attach("paradynd-1"); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if p.State() != StateStopped {
		t.Errorf("state after attach = %v, want stopped", p.State())
	}
	if p.Tracer() != "paradynd-1" {
		t.Errorf("tracer = %q", p.Tracer())
	}
}

func TestAttachToCreatedKeepsState(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), true)
	if err := p.Attach("tool"); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if p.State() != StateCreated {
		t.Errorf("state = %v, want created", p.State())
	}
	p.Continue("tool")
	p.WaitParent()
}

func TestSecondAttachRejected(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), true)
	p.Attach("t1")
	if err := p.Attach("t2"); !errors.Is(err, ErrAlreadyTraced) {
		t.Errorf("err = %v, want ErrAlreadyTraced", err)
	}
	p.Kill("")
}

func TestTracedProcessControlRequiresTracer(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), true)
	p.Attach("tool")
	if err := p.Continue(""); !errors.Is(err, ErrNotTracer) {
		t.Errorf("Continue by non-tracer: %v, want ErrNotTracer", err)
	}
	if err := p.Continue("other"); !errors.Is(err, ErrNotTracer) {
		t.Errorf("Continue by wrong tracer: %v", err)
	}
	if err := p.Continue("tool"); err != nil {
		t.Fatalf("Continue by tracer: %v", err)
	}
	p.WaitParent()
}

func TestDetach(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), true)
	if err := p.Detach("tool"); !errors.Is(err, ErrNotAttached) {
		t.Errorf("Detach unattached: %v", err)
	}
	p.Attach("tool")
	if err := p.Detach("other"); !errors.Is(err, ErrNotTracer) {
		t.Errorf("Detach wrong tracer: %v", err)
	}
	if err := p.Detach("tool"); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	if p.Tracer() != "" {
		t.Errorf("tracer = %q after detach", p.Tracer())
	}
	// Owner can control again.
	if err := p.Continue(""); err != nil {
		t.Fatalf("Continue after detach: %v", err)
	}
	p.WaitParent()
}

func TestAttachExitedFails(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), false)
	p.WaitParent()
	if err := p.Attach("tool"); !errors.Is(err, ErrBadState) {
		t.Errorf("Attach to exited: %v", err)
	}
	if err := p.Continue(""); !errors.Is(err, ErrBadState) {
		t.Errorf("Continue exited: %v", err)
	}
	if err := p.Stop(""); !errors.Is(err, ErrBadState) {
		t.Errorf("Stop exited: %v", err)
	}
}

func TestProbesFireAndCount(t *testing.T) {
	k := NewKernel()
	phases := []PhaseSpec{{Name: "fA", Units: 1}, {Name: "fB", Units: 1}}
	spec := Spec{
		Executable: "app",
		Program:    NewPhasedProgram(5, phases),
		Symbols:    PhasedSymbols(phases),
	}
	p := spawnT(t, k, spec, true)
	if err := p.Attach("tool"); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	var entries, exits atomic.Int64
	if _, err := p.InsertProbe("tool", "fA",
		func(*ProcContext) { entries.Add(1) },
		func(*ProcContext) { exits.Add(1) }); err != nil {
		t.Fatalf("InsertProbe: %v", err)
	}
	p.Continue("tool")
	p.WaitParent()
	if entries.Load() != 5 || exits.Load() != 5 {
		t.Errorf("probe fired %d/%d times, want 5/5", entries.Load(), exits.Load())
	}
}

func TestInsertProbeDiscipline(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, Spec{Executable: "spin", Program: NewSpinnerProgram(), Symbols: StdSymbols}, false)
	defer p.Kill("")
	// No tracer attached.
	if _, err := p.InsertProbe("tool", "work", nil, nil); !errors.Is(err, ErrNotAttached) {
		t.Errorf("probe without attach: %v", err)
	}
	p.Attach("tool")
	p.Continue("tool")
	// Running: must be paused to instrument.
	if _, err := p.InsertProbe("tool", "work", nil, nil); !errors.Is(err, ErrBadState) {
		t.Errorf("probe while running: %v", err)
	}
	p.Stop("tool")
	// Wrong owner.
	if _, err := p.InsertProbe("other", "work", nil, nil); !errors.Is(err, ErrNotTracer) {
		t.Errorf("probe by non-tracer: %v", err)
	}
	// Unknown symbol.
	if _, err := p.InsertProbe("tool", "nosuchfn", nil, nil); !errors.Is(err, ErrNoSymbol) {
		t.Errorf("probe on unknown symbol: %v", err)
	}
	id, err := p.InsertProbe("tool", "work", nil, nil)
	if err != nil {
		t.Fatalf("InsertProbe: %v", err)
	}
	if p.ProbeCount() != 1 {
		t.Errorf("ProbeCount = %d", p.ProbeCount())
	}
	if err := p.RemoveProbe("tool", id); err != nil {
		t.Fatalf("RemoveProbe: %v", err)
	}
	if p.ProbeCount() != 0 {
		t.Errorf("ProbeCount after remove = %d", p.ProbeCount())
	}
	if err := p.RemoveProbe("tool", id); err == nil {
		t.Error("RemoveProbe of missing id succeeded")
	}
}

func TestSymbolTable(t *testing.T) {
	k := NewKernel()
	phases, prog := DefaultScienceApp(1)
	p := spawnT(t, k, Spec{Executable: "sci", Program: prog, Symbols: PhasedSymbols(phases)}, true)
	defer p.Kill("")
	syms := p.Symbols()
	want := []string{"compute_forces", "main", "read_input", "update_positions", "write_output"}
	if len(syms) != len(want) {
		t.Fatalf("Symbols = %v", syms)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Errorf("Symbols[%d] = %q, want %q", i, syms[i], want[i])
		}
	}
}

func TestStdioPlumbing(t *testing.T) {
	k := NewKernel()
	var out bytes.Buffer
	spec := Spec{
		Executable: "echo",
		Program:    NewEchoProgram("> "),
		Symbols:    StdSymbols,
		Stdin:      strings.NewReader("hello\nworld\n"),
		Stdout:     &out,
	}
	p := spawnT(t, k, spec, false)
	st, err := p.WaitParent()
	if err != nil {
		t.Fatalf("WaitParent: %v", err)
	}
	if st.Code != 2 {
		t.Errorf("exit code = %d, want 2 lines", st.Code)
	}
	if got := out.String(); got != "> hello\n> world\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestKernelEvents(t *testing.T) {
	k := NewKernel()
	sub := k.Subscribe()
	defer k.Cancel(sub)
	p := spawnT(t, k, exitSpec(3), true)
	p.Attach("tool")
	p.Continue("tool")
	p.WaitParent()

	want := []EventKind{EventCreated, EventAttached, EventContinued, EventExited}
	for i, wk := range want {
		select {
		case e := <-sub.Events():
			if e.Kind != wk || e.PID != p.PID() {
				t.Errorf("event %d = %v pid %d, want %v pid %d", i, e.Kind, e.PID, wk, p.PID())
			}
			if wk == EventExited && e.Status.Code != 3 {
				t.Errorf("exit event status = %v", e.Status)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("event %d (%v) never arrived", i, wk)
		}
	}
}

func TestStatusRoutingParent(t *testing.T) {
	k := NewKernel() // default RouteParent
	p := spawnT(t, k, exitSpec(1), true)
	p.Attach("tool")
	p.Continue("tool")
	st, err := p.WaitParent()
	if err != nil || st.Code != 1 {
		t.Fatalf("parent wait = %v, %v", st, err)
	}
	if _, ok := p.WaitTracer(); ok {
		t.Error("tracer received status under RouteParent")
	}
}

func TestStatusRoutingTracerStealsFromParent(t *testing.T) {
	// The §2.3 Linux quirk: with a tracer attached, the parent does not
	// receive the termination code.
	k := NewKernel()
	k.SetStatusRouting(RouteTracer)
	p := spawnT(t, k, exitSpec(9), true)
	p.Attach("tool")
	p.Continue("tool")
	st, ok := p.WaitTracer()
	if !ok || st.Code != 9 {
		t.Fatalf("tracer wait = %v, %v", st, ok)
	}
	if _, err := p.WaitParent(); !errors.Is(err, ErrStatusStolen) {
		t.Errorf("parent wait err = %v, want ErrStatusStolen", err)
	}
	// The kernel's bookkeeping (what the RM uses under TDP) still has it.
	if snap, ok := p.ExitStatusSnapshot(); !ok || snap.Code != 9 {
		t.Errorf("snapshot = %v, %v", snap, ok)
	}
}

func TestStatusRoutingTracerUntracedFallsBack(t *testing.T) {
	k := NewKernel()
	k.SetStatusRouting(RouteTracer)
	p := spawnT(t, k, exitSpec(2), false) // no tracer
	st, err := p.WaitParent()
	if err != nil || st.Code != 2 {
		t.Fatalf("untraced parent wait = %v, %v", st, err)
	}
}

func TestStatusRoutingBoth(t *testing.T) {
	k := NewKernel()
	k.SetStatusRouting(RouteBoth)
	p := spawnT(t, k, exitSpec(5), true)
	p.Attach("tool")
	p.Continue("tool")
	if st, err := p.WaitParent(); err != nil || st.Code != 5 {
		t.Fatalf("parent = %v, %v", st, err)
	}
	if st, ok := p.WaitTracer(); !ok || st.Code != 5 {
		t.Fatalf("tracer = %v, %v", st, ok)
	}
}

func TestWaitParentTwice(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(4), false)
	if st, err := p.WaitParent(); err != nil || st.Code != 4 {
		t.Fatalf("first wait = %v, %v", st, err)
	}
	if st, err := p.WaitParent(); err != nil || st.Code != 4 {
		t.Fatalf("second wait = %v, %v", st, err)
	}
}

func TestExitStatusSnapshotBeforeExit(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), true)
	if _, ok := p.ExitStatusSnapshot(); ok {
		t.Error("snapshot available before exit")
	}
	p.Kill("")
	p.WaitParent()
}

func TestProcessLookup(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), true)
	defer p.Kill("")
	got, err := k.Process(p.PID())
	if err != nil || got != p {
		t.Errorf("Process(%d) = %v, %v", p.PID(), got, err)
	}
	if _, err := k.Process(1); !errors.Is(err, ErrNoProcess) {
		t.Errorf("Process(1) err = %v", err)
	}
	if n := len(k.Processes()); n != 1 {
		t.Errorf("Processes len = %d", n)
	}
}

func TestSpawnWithoutProgram(t *testing.T) {
	k := NewKernel()
	if _, err := k.Spawn(Spec{Executable: "x"}, false); err == nil {
		t.Error("Spawn without program succeeded")
	}
}

func TestArgsCopied(t *testing.T) {
	k := NewKernel()
	spec := exitSpec(0)
	spec.Args = []string{"1", "2", "3"}
	p := spawnT(t, k, spec, true)
	defer p.Kill("")
	args := p.Args()
	args[0] = "mutated"
	if p.Args()[0] != "1" {
		t.Error("Args aliases internal state")
	}
}

func TestStateAndEventStrings(t *testing.T) {
	if StateCreated.String() != "created" || StateRunning.String() != "running" ||
		StateStopped.String() != "stopped" || StateExited.String() != "exited" {
		t.Error("State strings wrong")
	}
	if State(42).String() != "state(42)" {
		t.Error("unknown state string")
	}
	if EventCreated.String() != "created" || EventExited.String() != "exited" ||
		EventAttached.String() != "attached" || EventDetached.String() != "detached" ||
		EventStopped.String() != "stopped" || EventContinued.String() != "continued" {
		t.Error("Event strings wrong")
	}
	if EventKind(42).String() != "event(42)" {
		t.Error("unknown event string")
	}
	if (ExitStatus{Code: 3}).String() != "exit(3)" {
		t.Error("ExitStatus exit string")
	}
	if (ExitStatus{Signal: "SIGKILL"}).String() != "killed(SIGKILL)" {
		t.Error("ExitStatus signal string")
	}
}

func TestStopUnblocksWhenProcessExits(t *testing.T) {
	// Stop must not hang when the program exits instead of parking.
	k := NewKernel()
	prog := ProgramFunc(func(ctx *ProcContext) int {
		return 0 // exits immediately, no checkpoints
	})
	p := spawnT(t, k, Spec{Executable: "fast", Program: prog}, false)
	// Race Stop against exit; either outcome is fine, but no deadlock.
	done := make(chan struct{})
	go func() {
		p.Stop("")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop deadlocked against exiting process")
	}
	p.WaitParent()
}

func TestManyProcesses(t *testing.T) {
	k := NewKernel()
	const n = 50
	procs := make([]*Process, n)
	for i := 0; i < n; i++ {
		procs[i] = spawnT(t, k, exitSpec(i), false)
	}
	for i, p := range procs {
		st, err := p.WaitParent()
		if err != nil || st.Code != i {
			t.Errorf("proc %d status = %v, %v", i, st, err)
		}
	}
	// PIDs are unique.
	seen := make(map[PID]bool)
	for _, p := range procs {
		if seen[p.PID()] {
			t.Errorf("duplicate pid %d", p.PID())
		}
		seen[p.PID()] = true
	}
}
