package procsim

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Process is one simulated process. All exported methods are safe for
// concurrent use.
type Process struct {
	kernel *Kernel
	pid    PID
	spec   Spec

	mu     sync.Mutex
	cond   *sync.Cond
	state  State
	parked bool // program goroutine is blocked at a safe point
	killed bool
	sig    string
	tracer string // attached tool identity, "" when untraced

	status     ExitStatus
	parentWait chan ExitStatus // closed-without-value when status stolen
	tracerWait chan ExitStatus
	parentErr  error

	checkpoint    string // latest program-saved checkpoint
	hasCheckpoint bool
	progress      uint64 // safe-point counter, for liveness detection

	probes  map[string][]*probeEntry
	probeID int

	symbols map[string]bool
}

type probeEntry struct {
	id      int
	owner   string
	point   string
	onEntry func(*ProcContext)
	onExit  func(*ProcContext)
}

func newProcess(k *Kernel, pid PID, spec Spec) *Process {
	p := &Process{
		kernel:     k,
		pid:        pid,
		spec:       spec,
		state:      StateCreated,
		parked:     true, // pre-main park
		parentWait: make(chan ExitStatus, 1),
		tracerWait: make(chan ExitStatus, 1),
		probes:     make(map[string][]*probeEntry),
		symbols:    make(map[string]bool, len(spec.Symbols)),
	}
	for _, s := range spec.Symbols {
		p.symbols[s] = true
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// PID returns the process identifier.
func (p *Process) PID() PID { return p.pid }

// Executable returns the program name from the spec.
func (p *Process) Executable() string { return p.spec.Executable }

// Args returns a copy of the argv.
func (p *Process) Args() []string {
	out := make([]string, len(p.spec.Args))
	copy(out, p.spec.Args)
	return out
}

// State returns the current run state.
func (p *Process) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Tracer returns the attached tracer identity, or "".
func (p *Process) Tracer() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tracer
}

// Symbols returns the function names visible to tools, sorted. This is
// the simulator's stand-in for parsing the executable's symbol table.
func (p *Process) Symbols() []string {
	out := make([]string, 0, len(p.symbols))
	for s := range p.symbols {
		out = append(out, s)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// run is the program goroutine.
func (p *Process) run() {
	ctx := &ProcContext{proc: p}
	// Pre-main park: wait in StateCreated until continued or killed.
	p.mu.Lock()
	for p.state == StateCreated && !p.killed {
		p.cond.Wait()
	}
	if p.killed {
		sig := p.sig
		p.mu.Unlock()
		p.exit(ExitStatus{Signal: sig})
		return
	}
	p.parked = false
	p.mu.Unlock()

	code := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); ok {
					code = -1
					return
				}
				panic(r) // real bug in a program: surface it
			}
		}()
		code = p.spec.Program.Run(ctx)
	}()

	p.mu.Lock()
	killed, sig := p.killed, p.sig
	p.mu.Unlock()
	if killed {
		p.exit(ExitStatus{Signal: sig})
	} else {
		p.exit(ExitStatus{Code: code})
	}
}

// exit records termination and routes the status per the kernel's
// StatusRouting (§2.3).
func (p *Process) exit(status ExitStatus) {
	k := p.kernel
	k.mu.Lock()
	routing := k.routing
	k.mu.Unlock()

	p.mu.Lock()
	if p.state == StateExited {
		p.mu.Unlock()
		return
	}
	p.state = StateExited
	p.parked = true
	p.status = status
	traced := p.tracer != ""
	toParent := routing == RouteParent || routing == RouteBoth || !traced
	toTracer := traced && (routing == RouteTracer || routing == RouteBoth)
	if toParent {
		p.parentWait <- status
	} else {
		p.parentErr = ErrStatusStolen
	}
	close(p.parentWait)
	if toTracer {
		p.tracerWait <- status
	}
	close(p.tracerWait)
	p.cond.Broadcast()
	p.mu.Unlock()

	k.publish(Event{Kind: EventExited, PID: p.pid, Status: status})
}

// Continue moves a created or stopped process to running. The tracer
// argument must match the attached tracer when one is attached (only
// the controlling entity may resume a traced process); pass "" from
// the process owner when untraced. This is tdp_continue_process.
func (p *Process) Continue(tracer string) error {
	p.mu.Lock()
	if p.state == StateExited {
		p.mu.Unlock()
		return fmt.Errorf("%w: process exited", ErrBadState)
	}
	if p.state == StateRunning {
		p.mu.Unlock()
		return nil
	}
	if p.tracer != "" && tracer != p.tracer {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q attached", ErrNotTracer, p.tracer)
	}
	p.state = StateRunning
	p.cond.Broadcast()
	p.mu.Unlock()
	p.kernel.publish(Event{Kind: EventContinued, PID: p.pid})
	return nil
}

// Stop pauses a running process at its next safe point and returns
// once it has actually parked (the park itself publishes the
// EventStopped notification). Stopping a created or stopped process
// is a no-op.
func (p *Process) Stop(tracer string) error {
	p.mu.Lock()
	switch p.state {
	case StateExited:
		p.mu.Unlock()
		return fmt.Errorf("%w: process exited", ErrBadState)
	case StateCreated, StateStopped:
		p.mu.Unlock()
		return nil
	}
	if p.tracer != "" && tracer != p.tracer {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q attached", ErrNotTracer, p.tracer)
	}
	p.state = StateStopped
	for !p.parked && p.state == StateStopped {
		p.cond.Wait()
	}
	p.mu.Unlock()
	return nil
}

// RequestStop asks the process to pause at its next safe point without
// waiting for the park. Unlike Stop, it is safe to call from a probe
// running on the process's own goroutine — the mechanism behind
// debugger breakpoints: the breakpoint probe requests the stop, and
// the process parks before executing past the instrumentation point.
func (p *Process) RequestStop(tracer string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.state {
	case StateExited:
		return fmt.Errorf("%w: process exited", ErrBadState)
	case StateCreated, StateStopped:
		return nil
	}
	if p.tracer != "" && tracer != p.tracer {
		return fmt.Errorf("%w: %q attached", ErrNotTracer, p.tracer)
	}
	p.state = StateStopped
	return nil
}

// WaitStopped blocks until the process is parked in a quiescent state
// (stopped, created, or exited). Unlike a bare park check, it does not
// return while the program is merely between safe points in the
// running state.
func (p *Process) WaitStopped() {
	p.mu.Lock()
	for !(p.parked && p.state != StateRunning) {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Attach makes tracer the controlling tool of this process, pausing it
// if running — the paper's attach sequence: obtain control, pause
// (§2.2 case 3). Attaching to a created (exec-paused) process simply
// takes control without changing state (case 2).
func (p *Process) Attach(tracer string) error {
	if tracer == "" {
		return fmt.Errorf("procsim: empty tracer identity")
	}
	p.mu.Lock()
	if p.state == StateExited {
		p.mu.Unlock()
		return fmt.Errorf("%w: process exited", ErrBadState)
	}
	if p.tracer != "" {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrAlreadyTraced, p.tracer)
	}
	p.tracer = tracer
	if p.state == StateRunning {
		p.state = StateStopped
		for !p.parked && p.state == StateStopped {
			p.cond.Wait()
		}
	}
	p.mu.Unlock()
	p.kernel.publish(Event{Kind: EventAttached, PID: p.pid, Tracer: tracer})
	return nil
}

// Detach releases the tracer. The process stays in its current state;
// detach with the process running or stopped as desired first.
func (p *Process) Detach(tracer string) error {
	p.mu.Lock()
	if p.tracer == "" {
		p.mu.Unlock()
		return ErrNotAttached
	}
	if p.tracer != tracer {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q attached", ErrNotTracer, p.tracer)
	}
	p.tracer = ""
	p.mu.Unlock()
	p.kernel.publish(Event{Kind: EventDetached, PID: p.pid, Tracer: tracer})
	return nil
}

// Kill terminates the process with the given signal name. A parked
// process dies immediately; a running one dies at its next safe point.
func (p *Process) Kill(signal string) error {
	if signal == "" {
		signal = "SIGKILL"
	}
	p.mu.Lock()
	if p.state == StateExited {
		p.mu.Unlock()
		return nil
	}
	p.killed = true
	p.sig = signal
	// Wake the program goroutine wherever it is parked.
	p.state = StateRunning
	p.cond.Broadcast()
	p.mu.Unlock()
	return nil
}

// WaitParent blocks until the process exits and returns its status as
// the parent would see it. Under RouteTracer with a tracer attached,
// it returns ErrStatusStolen — the OS quirk §2.3 describes.
func (p *Process) WaitParent() (ExitStatus, error) {
	st, ok := <-p.parentWait
	if ok {
		return st, nil
	}
	p.mu.Lock()
	err := p.parentErr
	status := p.status
	p.mu.Unlock()
	if err != nil {
		return ExitStatus{}, err
	}
	// The channel was already drained by an earlier WaitParent; like
	// wait(2), only one reap consumes the status — later callers get
	// the bookkeeping snapshot.
	return status, nil
}

// WaitTracer blocks until exit and returns the status as the tracer
// sees it. It returns ok=false when routing did not deliver a status
// to the tracer.
func (p *Process) WaitTracer() (ExitStatus, bool) {
	st, ok := <-p.tracerWait
	return st, ok
}

// CheckpointData returns the latest checkpoint the program saved and
// whether one exists. Valid while running and after exit — the RM
// reads it when reclaiming (vacating) a machine.
func (p *Process) CheckpointData() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.checkpoint, p.hasCheckpoint
}

// Progress returns the safe-point counter: it advances every time the
// program passes a checkpoint-able point. A stuck counter on a
// supposedly-running process indicates a hang (liveness detection).
func (p *Process) Progress() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.progress
}

// ExitStatusSnapshot returns the recorded status after exit. The
// boolean is false while the process is still alive. Unlike the Wait
// calls this is not subject to routing — it models the RM's
// authoritative bookkeeping.
func (p *Process) ExitStatusSnapshot() (ExitStatus, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state != StateExited {
		return ExitStatus{}, false
	}
	return p.status, true
}

// InsertProbe adds instrumentation at a named function. The caller
// must be the attached tracer and the process must be created or
// stopped — the Dyninst-style discipline that motivates the paper's
// create-paused handshake (instrument before main runs). It returns a
// probe id for RemoveProbe.
func (p *Process) InsertProbe(tracer, point string, onEntry, onExit func(*ProcContext)) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tracer == "" {
		return 0, ErrNotAttached
	}
	if p.tracer != tracer {
		return 0, fmt.Errorf("%w: %q attached", ErrNotTracer, p.tracer)
	}
	if p.state != StateCreated && p.state != StateStopped {
		return 0, fmt.Errorf("%w: process must be paused to instrument", ErrBadState)
	}
	if !p.symbols[point] {
		return 0, fmt.Errorf("%w: %q", ErrNoSymbol, point)
	}
	p.probeID++
	e := &probeEntry{id: p.probeID, owner: tracer, point: point, onEntry: onEntry, onExit: onExit}
	p.probes[point] = append(p.probes[point], e)
	return e.id, nil
}

// RemoveProbe deletes a probe by id under the same discipline as
// InsertProbe.
func (p *Process) RemoveProbe(tracer string, id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tracer == "" {
		return ErrNotAttached
	}
	if p.tracer != tracer {
		return fmt.Errorf("%w: %q attached", ErrNotTracer, p.tracer)
	}
	if p.state != StateCreated && p.state != StateStopped {
		return fmt.Errorf("%w: process must be paused to instrument", ErrBadState)
	}
	for point, list := range p.probes {
		for i, e := range list {
			if e.id == id {
				p.probes[point] = append(list[:i], list[i+1:]...)
				return nil
			}
		}
	}
	return fmt.Errorf("procsim: no probe %d", id)
}

// ProbeCount returns the number of installed probes (all points).
func (p *Process) ProbeCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, l := range p.probes {
		n += len(l)
	}
	return n
}

// probesFor snapshots the probe list for a point.
func (p *Process) probesFor(point string) []*probeEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.probes[point]
	out := make([]*probeEntry, len(list))
	copy(out, list)
	return out
}

// ProcContext is a program's window onto its process and the kernel.
// Its methods are the safe points at which stop and kill requests take
// effect.
type ProcContext struct {
	proc *Process
}

// PID returns the process id.
func (c *ProcContext) PID() PID { return c.proc.pid }

// Args returns the process argv.
func (c *ProcContext) Args() []string { return c.proc.Args() }

// Checkpoint parks while the process is stopped and panics with the
// kill sentinel when the process has been killed. Programs running
// long loops should call it periodically; Call and Compute do so
// implicitly.
func (c *ProcContext) Checkpoint() {
	p := c.proc
	p.mu.Lock()
	if p.state == StateStopped && !p.parked {
		// First park after a stop request: announce it (this is the
		// single place EventStopped is published, so synchronous Stop,
		// async RequestStop, and Attach all produce exactly one event).
		p.parked = true
		p.cond.Broadcast() // wake Stop/Attach waiting for the park
		p.mu.Unlock()
		p.kernel.publish(Event{Kind: EventStopped, PID: p.pid})
		p.mu.Lock()
	}
	for p.state == StateStopped {
		p.parked = true
		p.cond.Broadcast()
		p.cond.Wait()
	}
	p.parked = false
	p.progress++
	killed, sig := p.killed, p.sig
	p.mu.Unlock()
	if killed {
		panic(killSentinel{sig: sig})
	}
}

// SaveCheckpoint records the program's logical progress so a resource
// manager can migrate or restart the job from this point — the
// simulator's stand-in for Condor's process checkpointing (the real
// thing snapshots the address space; here the program names its own
// resumption point, which exercises the same RM-side machinery).
func (c *ProcContext) SaveCheckpoint(data string) {
	p := c.proc
	p.mu.Lock()
	p.checkpoint = data
	p.hasCheckpoint = true
	p.mu.Unlock()
}

// RestartData returns the checkpoint this process was restarted from,
// or "" for a fresh start.
func (c *ProcContext) RestartData() string { return c.proc.spec.RestartData }

// Call executes body as the named function: entry probes fire, then
// body, then exit probes, with a checkpoint first. The name should be
// one of the spec's Symbols for tools to find it.
func (c *ProcContext) Call(name string, body func()) {
	c.Checkpoint()
	for _, e := range c.proc.probesFor(name) {
		if e.onEntry != nil {
			e.onEntry(c)
		}
	}
	if body != nil {
		body()
	}
	for _, e := range c.proc.probesFor(name) {
		if e.onExit != nil {
			e.onExit(c)
		}
	}
}

// Compute burns CPU for roughly units microseconds of simulated work,
// checkpointing between slices so stops remain responsive.
func (c *ProcContext) Compute(units int) {
	for i := 0; i < units; i++ {
		c.Checkpoint()
		spin(time.Microsecond)
	}
}

// spin waits out d by the wall clock while yielding to the scheduler,
// so simulated compute measures real elapsed time without starving
// other goroutines (tool daemons, servers) on single-CPU machines the
// way a hard busy-wait would.
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		runtime.Gosched()
	}
}

// Sleep blocks for d in small slices, checkpointing between them.
func (c *ProcContext) Sleep(d time.Duration) {
	const slice = time.Millisecond
	for d > 0 {
		c.Checkpoint()
		s := slice
		if d < s {
			s = d
		}
		time.Sleep(s)
		d -= s
	}
	c.Checkpoint()
}

// Stdout returns the process's standard output stream.
func (c *ProcContext) Stdout() io.Writer {
	if c.proc.spec.Stdout == nil {
		return io.Discard
	}
	return c.proc.spec.Stdout
}

// Stderr returns the process's standard error stream.
func (c *ProcContext) Stderr() io.Writer {
	if c.proc.spec.Stderr == nil {
		return io.Discard
	}
	return c.proc.spec.Stderr
}

// Stdin returns the process's standard input stream.
func (c *ProcContext) Stdin() io.Reader {
	if c.proc.spec.Stdin == nil {
		return emptyReader{}
	}
	return c.proc.spec.Stdin
}

type emptyReader struct{}

func (emptyReader) Read([]byte) (int, error) { return 0, io.EOF }
