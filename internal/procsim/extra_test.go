package procsim

import (
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRequestStopParksAtNextSafePoint(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, Spec{Executable: "spin", Program: NewSpinnerProgram(), Symbols: StdSymbols}, false)
	defer p.Kill("")
	if err := p.RequestStop(""); err != nil {
		t.Fatalf("RequestStop: %v", err)
	}
	p.WaitStopped()
	if p.State() != StateStopped {
		t.Fatalf("state = %v", p.State())
	}
	// Idempotent on an already-stopped process.
	if err := p.RequestStop(""); err != nil {
		t.Errorf("second RequestStop: %v", err)
	}
	if err := p.Continue(""); err != nil {
		t.Fatalf("Continue: %v", err)
	}
}

func TestRequestStopFromProbe(t *testing.T) {
	// The breakpoint mechanism at the kernel level: a probe on the
	// process's own goroutine requests the stop; the process parks
	// before running past the instrumentation point.
	k := NewKernel()
	phases := []PhaseSpec{{Name: "work", Units: 1}}
	p := spawnT(t, k, Spec{
		Executable: "app", Program: NewPhasedProgram(100, phases), Symbols: PhasedSymbols(phases),
	}, true)
	if err := p.Attach("dbg"); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	var hits atomic.Int32
	if _, err := p.InsertProbe("dbg", "work", func(*ProcContext) {
		if hits.Add(1) == 1 {
			p.RequestStop("dbg")
		}
	}, nil); err != nil {
		t.Fatalf("InsertProbe: %v", err)
	}
	p.Continue("dbg")
	p.WaitStopped()
	if p.State() != StateStopped {
		t.Fatalf("state = %v", p.State())
	}
	// The process stopped promptly: only the first call ran.
	if got := hits.Load(); got != 1 {
		t.Errorf("hits at stop = %d, want 1", got)
	}
	p.Continue("dbg")
	st, _ := p.WaitTracer()
	_ = st
	if got := hits.Load(); got != 100 {
		t.Errorf("total hits = %d, want 100", got)
	}
}

func TestRequestStopErrors(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), false)
	p.WaitParent()
	if err := p.RequestStop(""); err == nil {
		t.Error("RequestStop on exited process succeeded")
	}
	p2 := spawnT(t, k, Spec{Executable: "spin", Program: NewSpinnerProgram(), Symbols: StdSymbols}, false)
	defer p2.Kill("")
	p2.Attach("owner")
	p2.Continue("owner") // running again; now control is contested
	if err := p2.RequestStop("other"); err == nil {
		t.Error("RequestStop by non-tracer succeeded")
	}
}

func TestCheckpointAPI(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, Spec{
		Executable: "ckpt", Program: NewCheckpointableProgram(5, 1, nil), Symbols: StdSymbols,
	}, false)
	st, err := p.WaitParent()
	if err != nil || st.Code != 0 {
		t.Fatalf("wait = %v, %v", st, err)
	}
	if ck, ok := p.CheckpointData(); !ok || ck != "5" {
		t.Errorf("checkpoint = %q, %v", ck, ok)
	}
	// No checkpoint on programs that never save one.
	p2 := spawnT(t, k, exitSpec(0), false)
	p2.WaitParent()
	if _, ok := p2.CheckpointData(); ok {
		t.Error("phantom checkpoint")
	}
}

func TestProcContextAccessors(t *testing.T) {
	k := NewKernel()
	got := make(chan struct {
		pid  PID
		args []string
		rd   string
	}, 1)
	prog := ProgramFunc(func(ctx *ProcContext) int {
		got <- struct {
			pid  PID
			args []string
			rd   string
		}{ctx.PID(), ctx.Args(), ctx.RestartData()}
		// Exercise the stdio fallbacks (nil writers/readers).
		io.WriteString(ctx.Stdout(), "discarded")
		io.WriteString(ctx.Stderr(), "discarded")
		buf := make([]byte, 4)
		if n, err := ctx.Stdin().Read(buf); n != 0 || err != io.EOF {
			t.Errorf("empty stdin read = %d, %v", n, err)
		}
		return 0
	})
	p := spawnT(t, k, Spec{Executable: "acc", Args: []string{"-x", "1"}, Program: prog, RestartData: "42"}, false)
	p.WaitParent()
	v := <-got
	if v.pid != p.PID() {
		t.Errorf("ctx.PID = %d", v.pid)
	}
	if len(v.args) != 2 || v.args[0] != "-x" {
		t.Errorf("ctx.Args = %v", v.args)
	}
	if v.rd != "42" {
		t.Errorf("ctx.RestartData = %q", v.rd)
	}
	if p.Executable() != "acc" {
		t.Errorf("Executable = %q", p.Executable())
	}
}

func TestSleeperProgram(t *testing.T) {
	k := NewKernel()
	start := time.Now()
	p := spawnT(t, k, Spec{Executable: "sleep", Program: NewSleeperProgram(20 * time.Millisecond), Symbols: StdSymbols}, false)
	st, err := p.WaitParent()
	if err != nil || st.Code != 0 {
		t.Fatalf("wait = %v, %v", st, err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("sleeper finished in %v", d)
	}
}

func TestSleeperIsStoppable(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, Spec{Executable: "sleep", Program: NewSleeperProgram(time.Hour), Symbols: StdSymbols}, false)
	done := make(chan struct{})
	go func() {
		p.Stop("")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on a sleeping process")
	}
	p.Kill("")
	if st, err := p.WaitParent(); err != nil || st.Signal != "SIGKILL" {
		t.Fatalf("kill during sleep: %v, %v", st, err)
	}
}

func TestCrashingProgram(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, Spec{Executable: "crash", Program: NewCrashingProgram(3, 42), Symbols: StdSymbols}, false)
	st, err := p.WaitParent()
	if err != nil || st.Code != 42 {
		t.Fatalf("wait = %v, %v", st, err)
	}
}

func TestScienceAppRuns(t *testing.T) {
	k := NewKernel()
	phases, prog := DefaultScienceApp(2)
	p := spawnT(t, k, Spec{Executable: "sci", Program: prog, Symbols: PhasedSymbols(phases)}, false)
	if st, err := p.WaitParent(); err != nil || st.Code != 0 {
		t.Fatalf("wait = %v, %v", st, err)
	}
}

func TestEchoProgramStderrPath(t *testing.T) {
	k := NewKernel()
	var errOut strings.Builder
	prog := ProgramFunc(func(ctx *ProcContext) int {
		io.WriteString(ctx.Stderr(), "warning: test\n")
		return 0
	})
	p := spawnT(t, k, Spec{Executable: "w", Program: prog, Stderr: &errOut}, false)
	p.WaitParent()
	if errOut.String() != "warning: test\n" {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestEventSubDropOldestUnderBackpressure(t *testing.T) {
	// A subscriber that never drains must not wedge the kernel; the
	// oldest events are dropped once the buffer fills.
	k := NewKernel()
	_ = k.Subscribe() // never drained
	for i := 0; i < 300; i++ {
		p := spawnT(t, k, exitSpec(0), false)
		if _, err := p.WaitParent(); err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
	}
	// Reaching here without deadlock is the assertion.
}

func TestWaitStoppedOnCreated(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), true)
	// A created process is parked by definition.
	done := make(chan struct{})
	go func() {
		p.WaitStopped()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitStopped hung on created process")
	}
	p.Kill("")
	p.WaitParent()
}

func TestReap(t *testing.T) {
	k := NewKernel()
	p := spawnT(t, k, exitSpec(0), false)
	if err := k.Reap(p.PID()); err == nil {
		// The program may legitimately still be running here.
		t.Log("reaped immediately (process already exited)")
	}
	p.WaitParent()
	if err := k.Reap(p.PID()); err != nil {
		// First attempt may have succeeded above.
		if _, lookupErr := k.Process(p.PID()); lookupErr == nil {
			t.Fatalf("Reap failed with process still present: %v", err)
		}
	}
	if _, err := k.Process(p.PID()); err == nil {
		t.Error("process still visible after reap")
	}
	if err := k.Reap(p.PID()); err == nil {
		t.Error("double reap succeeded")
	}
	// Live processes cannot be reaped.
	live := spawnT(t, k, Spec{Executable: "spin", Program: NewSpinnerProgram(), Symbols: StdSymbols}, false)
	defer live.Kill("")
	if err := k.Reap(live.PID()); err == nil {
		t.Error("reaped a live process")
	}
}
