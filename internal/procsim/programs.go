package procsim

import (
	"bufio"
	"fmt"
	"time"
)

// This file provides the standard synthetic workloads used throughout
// the reproduction: the applications that Condor schedules and Paradyn
// profiles. Each exposes named functions (symbols) so tools can
// instrument them, and each has a deliberate performance profile so
// the bottleneck search has something to find.

// PhaseSpec is one named function in a phased workload and its
// relative cost.
type PhaseSpec struct {
	Name  string
	Units int // compute units per iteration (1 unit ≈ 1µs)
}

// NewPhasedProgram returns a program that loops `iters` times, calling
// each phase in order every iteration. It is the canonical profiling
// target: a tool that instruments the phases will observe their cost
// ratio. Symbols() for the spec should include every phase name plus
// "main".
func NewPhasedProgram(iters int, phases []PhaseSpec) Program {
	return ProgramFunc(func(ctx *ProcContext) int {
		var ret int
		ctx.Call("main", func() {
			for i := 0; i < iters; i++ {
				for _, ph := range phases {
					ph := ph
					ctx.Call(ph.Name, func() { ctx.Compute(ph.Units) })
				}
			}
		})
		return ret
	})
}

// PhasedSymbols returns the symbol table for NewPhasedProgram.
func PhasedSymbols(phases []PhaseSpec) []string {
	out := []string{"main"}
	for _, ph := range phases {
		out = append(out, ph.Name)
	}
	return out
}

// DefaultScienceApp returns a spec for a small "scientific" program
// with an intentional bottleneck in compute_forces: roughly 70% of the
// time goes there, so a working bottleneck search must name it.
func DefaultScienceApp(iters int) ([]PhaseSpec, Program) {
	phases := []PhaseSpec{
		{Name: "read_input", Units: 5},
		{Name: "compute_forces", Units: 70},
		{Name: "update_positions", Units: 20},
		{Name: "write_output", Units: 5},
	}
	return phases, NewPhasedProgram(iters, phases)
}

// NewExitingProgram returns a program that immediately exits with the
// given code, for lifecycle tests.
func NewExitingProgram(code int) Program {
	return ProgramFunc(func(ctx *ProcContext) int {
		ctx.Call("main", nil)
		return code
	})
}

// NewSleeperProgram returns a program that sleeps for d and exits 0.
// It is the "long-running server" in attach-mode experiments.
func NewSleeperProgram(d time.Duration) Program {
	return ProgramFunc(func(ctx *ProcContext) int {
		ctx.Call("main", func() { ctx.Sleep(d) })
		return 0
	})
}

// NewSpinnerProgram returns a program that loops forever (until
// killed), checkpointing every iteration. It is the attach-mode target
// that never exits on its own.
func NewSpinnerProgram() Program {
	return ProgramFunc(func(ctx *ProcContext) int {
		ctx.Call("main", func() {
			for {
				ctx.Call("work", func() { ctx.Compute(1) })
			}
		})
		return 0
	})
}

// NewEchoProgram returns a program that copies stdin to stdout line by
// line, prefixing each line, then exits with the number of lines
// echoed. It exercises the paper's standard-I/O management interface.
func NewEchoProgram(prefix string) Program {
	return ProgramFunc(func(ctx *ProcContext) int {
		lines := 0
		ctx.Call("main", func() {
			sc := bufio.NewScanner(ctx.Stdin())
			for sc.Scan() {
				ctx.Checkpoint()
				fmt.Fprintf(ctx.Stdout(), "%s%s\n", prefix, sc.Text())
				lines++
			}
		})
		return lines
	})
}

// NewCrashingProgram returns a program that runs `iters` work units
// and then exits with a nonzero code, for fault-handling tests.
func NewCrashingProgram(iters, code int) Program {
	return ProgramFunc(func(ctx *ProcContext) int {
		ctx.Call("main", func() { ctx.Compute(iters) })
		return code
	})
}

// StdSymbols is the symbol list for the simple single-function programs.
var StdSymbols = []string{"main", "work"}

// NewHangingProgram returns a program that enters main, signals
// `entered` (if non-nil), and then blocks forever without ever
// reaching a safe point — a simulated hang (tight loop or deadlock).
// It cannot be killed (kill delivery needs a safe point), so its
// goroutine leaks for the life of the test process; it exists for the
// liveness-detection experiments.
func NewHangingProgram(entered chan<- struct{}) Program {
	return ProgramFunc(func(ctx *ProcContext) int {
		ctx.Checkpoint()
		if entered != nil {
			close(entered)
		}
		select {} // no safe points ever again
	})
}

// NewCheckpointableProgram returns a program that performs `iters`
// units of work, saving a checkpoint after each, and resumes from its
// RestartData when restarted. Its exit code is the iteration it
// started from (0 for a fresh run), so tests can verify that a
// migrated incarnation really resumed rather than restarted. onIter,
// when non-nil, observes each iteration actually executed.
func NewCheckpointableProgram(iters, unitsPerIter int, onIter func(i int)) Program {
	return ProgramFunc(func(ctx *ProcContext) int {
		start := 0
		if d := ctx.RestartData(); d != "" {
			fmt.Sscanf(d, "%d", &start)
		}
		ctx.Call("main", func() {
			for i := start; i < iters; i++ {
				ctx.Call("work", func() { ctx.Compute(unitsPerIter) })
				if onIter != nil {
					onIter(i)
				}
				ctx.SaveCheckpoint(fmt.Sprintf("%d", i+1))
			}
		})
		return start
	})
}
