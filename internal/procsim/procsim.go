// Package procsim is the process substrate for the TDP reproduction:
// a small simulated operating system kernel with processes, a
// create-but-don't-start (exec-paused) state, attach/detach tracing,
// cooperative stop/continue, dynamic instrumentation points, stdio
// plumbing, and configurable exit-status routing.
//
// The paper's process-management interface (§2.2, §3.1) needs exactly
// five capabilities from the OS: create a process stopped "just after
// the exec call", attach to a running process and pause it, perform
// tool initialization while stopped, continue it, and observe status
// changes. Real systems provide these via fork/exec + ptrace//proc
// with semantics that differ across operating systems — the paper's
// motivation for centralizing process control in the RM (§2.3). This
// simulator implements that exact state machine deterministically,
// including the Linux wait-status quirk the paper cites, so every TDP
// code path can be exercised and tested on a laptop.
//
// A "program" is Go code that runs inside a simulated process and
// cooperates with the kernel through its ProcContext: instrumentation
// points (Call), compute kernels (Compute), and stdio. Stop requests
// take effect at the next such interaction, which models a debugger
// interrupting a traced process at a safe point.
package procsim

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// PID identifies a simulated process.
type PID int

// State is a process's run state.
type State int

const (
	// StateCreated is the paper's "created but not started" state: the
	// fork and exec have completed but the process is stopped before
	// the first instruction of main (§2.2 case 2, §4.3 step 1).
	StateCreated State = iota
	// StateRunning means the program is executing.
	StateRunning
	// StateStopped means the process has been paused by a tracer or
	// the kernel at a safe point.
	StateStopped
	// StateExited means the program returned or was killed.
	StateExited
)

// String returns the conventional name of the state.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// StatusRouting selects who receives a process's exit status, modeling
// the OS variation described in §2.3 ("under Linux, the parent process
// may or may not be the recipient of the child process' termination
// code ... in one unusual case, the return code might go to both").
type StatusRouting int

const (
	// RouteParent delivers exit status to the parent only (classic Unix).
	RouteParent StatusRouting = iota
	// RouteTracer delivers exit status to the tracer when one is
	// attached at exit, starving the parent (the Linux quirk).
	RouteTracer
	// RouteBoth delivers the status to both parent and tracer (the
	// paper's "unusual case").
	RouteBoth
)

// Errors returned by kernel and process operations.
var (
	ErrNoProcess     = errors.New("procsim: no such process")
	ErrBadState      = errors.New("procsim: operation invalid in current state")
	ErrAlreadyTraced = errors.New("procsim: process already has a tracer")
	ErrNotTracer     = errors.New("procsim: caller is not the attached tracer")
	ErrNotAttached   = errors.New("procsim: no tracer attached")
	ErrStatusStolen  = errors.New("procsim: exit status delivered to tracer, not parent")
	ErrKilled        = errors.New("procsim: process killed")
	ErrNoSymbol      = errors.New("procsim: no such symbol")
)

// EventKind enumerates kernel notifications.
type EventKind int

const (
	// EventCreated fires when a process is spawned (running or paused).
	EventCreated EventKind = iota
	// EventContinued fires when a process leaves created/stopped.
	EventContinued
	// EventStopped fires when a process parks at a safe point.
	EventStopped
	// EventExited fires when a process terminates.
	EventExited
	// EventAttached fires when a tracer attaches.
	EventAttached
	// EventDetached fires when a tracer detaches.
	EventDetached
)

// String returns the mnemonic used in traces.
func (k EventKind) String() string {
	switch k {
	case EventCreated:
		return "created"
	case EventContinued:
		return "continued"
	case EventStopped:
		return "stopped"
	case EventExited:
		return "exited"
	case EventAttached:
		return "attached"
	case EventDetached:
		return "detached"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is a kernel process-state notification. The resource manager
// subscribes to these; under TDP it is the single entity responsible
// for status monitoring (§2.3).
type Event struct {
	Kind   EventKind
	PID    PID
	Status ExitStatus // valid for EventExited
	Tracer string     // valid for EventAttached/EventDetached
}

// ExitStatus is a process's termination record.
type ExitStatus struct {
	Code   int    // program return value; meaningless when Signaled
	Signal string // non-empty when killed by signal
}

// Signaled reports whether the process died from a signal.
func (e ExitStatus) Signaled() bool { return e.Signal != "" }

// String renders "exit(N)" or "killed(SIG)".
func (e ExitStatus) String() string {
	if e.Signaled() {
		return "killed(" + e.Signal + ")"
	}
	return fmt.Sprintf("exit(%d)", e.Code)
}

// Program is the code a simulated process executes. Run receives the
// process's context and returns the exit code. Implementations must
// call ctx methods (Call, Compute, Checkpoint, stdio) so stop and kill
// requests can take effect.
type Program interface {
	Run(ctx *ProcContext) int
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(*ProcContext) int

// Run implements Program.
func (f ProgramFunc) Run(ctx *ProcContext) int { return f(ctx) }

// Spec describes a process to spawn.
type Spec struct {
	Executable string    // name, for symbol tables and attribute values
	Args       []string  // argv (excluding executable)
	Program    Program   // the code to run
	Symbols    []string  // function names discoverable by tools ("parse the executable")
	Stdin      io.Reader // nil for empty stdin
	Stdout     io.Writer // nil discards
	Stderr     io.Writer // nil discards
	Parent     string    // creator identity, for bookkeeping
	// RestartData carries the checkpoint a restarted process resumes
	// from (see ProcContext.SaveCheckpoint); "" means a fresh start.
	RestartData string
}

// Kernel is the simulated operating system: a process table plus the
// event stream.
type Kernel struct {
	mu      sync.Mutex
	nextPID PID
	procs   map[PID]*Process
	routing StatusRouting
	subs    map[*EventSub]struct{}
}

// NewKernel returns an empty kernel with RouteParent status routing.
func NewKernel() *Kernel {
	return &Kernel{
		nextPID: 1000,
		procs:   make(map[PID]*Process),
		subs:    make(map[*EventSub]struct{}),
	}
}

// SetStatusRouting selects the exit-status delivery model. It applies
// to processes that exit after the call.
func (k *Kernel) SetStatusRouting(r StatusRouting) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.routing = r
}

// EventSub is a subscription to kernel process events. Delivery is
// buffered; when a subscriber falls behind beyond its buffer, the
// oldest undelivered event is dropped rather than blocking the kernel.
type EventSub struct {
	mu     sync.Mutex
	ch     chan Event
	closed bool
}

// Events returns the delivery channel. It closes on Cancel.
func (s *EventSub) Events() <-chan Event { return s.ch }

func (s *EventSub) deliver(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for {
		select {
		case s.ch <- e:
			return
		default:
			// Buffer full: drop the oldest event to stay live.
			select {
			case <-s.ch:
			default:
			}
		}
	}
}

func (s *EventSub) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.ch)
}

// Subscribe registers for all subsequent process events.
func (k *Kernel) Subscribe() *EventSub {
	s := &EventSub{ch: make(chan Event, 128)}
	k.mu.Lock()
	k.subs[s] = struct{}{}
	k.mu.Unlock()
	return s
}

// Cancel removes the subscription and closes its channel.
func (k *Kernel) Cancel(s *EventSub) {
	k.mu.Lock()
	delete(k.subs, s)
	k.mu.Unlock()
	s.close()
}

func (k *Kernel) publish(e Event) {
	k.mu.Lock()
	subs := make([]*EventSub, 0, len(k.subs))
	for s := range k.subs {
		subs = append(subs, s)
	}
	k.mu.Unlock()
	for _, s := range subs {
		s.deliver(e)
	}
}

// Process returns the process with the given pid, or ErrNoProcess.
func (k *Kernel) Process(pid PID) (*Process, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := k.procs[pid]
	if p == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoProcess, pid)
	}
	return p, nil
}

// Reap removes an exited process from the process table, releasing its
// pid for bookkeeping purposes (pids are never reused). Reaping a live
// process is an error.
func (k *Kernel) Reap(pid PID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := k.procs[pid]
	if p == nil {
		return fmt.Errorf("%w: %d", ErrNoProcess, pid)
	}
	if p.State() != StateExited {
		return fmt.Errorf("%w: cannot reap a live process", ErrBadState)
	}
	delete(k.procs, pid)
	return nil
}

// Processes returns all live (non-reaped) processes sorted by pid.
func (k *Kernel) Processes() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}

// Spawn creates a process. With paused=true the process is left in
// StateCreated — fork and exec have completed, the program has not
// entered main — which is the state tdp_create_process(paused)
// requires (§3.1). With paused=false the program starts immediately.
func (k *Kernel) Spawn(spec Spec, paused bool) (*Process, error) {
	if spec.Program == nil {
		return nil, errors.New("procsim: spec has no program")
	}
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	p := newProcess(k, pid, spec)
	k.procs[pid] = p
	k.mu.Unlock()

	k.publish(Event{Kind: EventCreated, PID: pid})
	go p.run()
	if !paused {
		if err := p.Continue(""); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// killSentinel unwinds a program goroutine when its process is killed
// mid-checkpoint; the runner recovers it.
type killSentinel struct{ sig string }
