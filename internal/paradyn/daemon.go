package paradyn

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"tdp"
	"tdp/internal/attrspace"
	"tdp/internal/condor"
	"tdp/internal/procsim"
	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// DaemonOptions are parsed from paradynd's argument vector, which uses
// the paper's Figure 5B style: "-zunix -l3 -mpinguino.cs.wisc.edu
// -p2090 -P2091 -a%pid".
type DaemonOptions struct {
	FEHost  string // -m<host>
	FEPort  int    // -p<port>: the daemon-protocol port
	FEPort2 int    // -P<port>: the front-end's second port (Figure 5B's -P2091)
	PID     int    // -a<pid>; 0 when the marker was unresolved (%pid) or absent
	TDP     bool   // true when no concrete pid was given: fetch it from the LASS
	Level   int    // -l<n>, instrumentation level (kept for fidelity)
	Flavor  string // -z<flavor>, e.g. "unix" (kept for fidelity)
}

// ParseDaemonArgs parses the paradynd argument style of §4.3. An
// argument "-a%pid" (unsubstituted marker) or a missing/empty -a means
// the daemon is running under the TDP framework and must get the pid
// from the attribute space — exactly how the prototype's paradynd
// detected TDP mode ("when paradynd parses its arguments ... it does
// not find any application process reference; paradynd assumes then
// that it is working under a TDP framework").
func ParseDaemonArgs(args []string) DaemonOptions {
	opts := DaemonOptions{TDP: true}
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-m"):
			opts.FEHost = a[2:]
		case strings.HasPrefix(a, "-p"):
			opts.FEPort, _ = strconv.Atoi(a[2:])
		case strings.HasPrefix(a, "-P"):
			opts.FEPort2, _ = strconv.Atoi(a[2:])
		case strings.HasPrefix(a, "-z"):
			opts.Flavor = a[2:]
		case strings.HasPrefix(a, "-l"):
			opts.Level, _ = strconv.Atoi(a[2:])
		case strings.HasPrefix(a, "-a"):
			v := a[2:]
			if v == "" || strings.Contains(v, "%pid") {
				opts.TDP = true
				continue
			}
			if pid, err := strconv.Atoi(v); err == nil && pid > 0 {
				opts.PID = pid
				opts.TDP = false
			}
		}
	}
	return opts
}

// FEAddr returns the front-end address from the arguments, or "".
func (o DaemonOptions) FEAddr() string {
	if o.FEHost == "" || o.FEPort == 0 {
		return ""
	}
	return net.JoinHostPort(o.FEHost, strconv.Itoa(o.FEPort))
}

// SampleInterval is how often a daemon streams metric samples to its
// front-end while the application runs.
const SampleInterval = 5 * time.Millisecond

// Tool is paradynd packaged as a condor run-time tool: register it
// under the name used by +ToolDaemonCmd ("paradynd"). The returned
// program performs the full §4.3 daemon role.
func Tool() condor.Tool {
	return func(env condor.ToolEnv, args []string) procsim.Program {
		return procsim.ProgramFunc(func(pc *procsim.ProcContext) int {
			return runDaemon(env, args, pc)
		})
	}
}

// runDaemon is paradynd's main line.
func runDaemon(env condor.ToolEnv, args []string, pc *procsim.ProcContext) int {
	opts := ParseDaemonArgs(args)
	fail := func(stage string, err error) int {
		fmt.Fprintf(pc.Stderr(), "paradynd: %s: %v\n", stage, err)
		return 1
	}

	// TDP framework setup (Figure 6 step 3).
	h, err := tdp.Init(tdp.Config{
		Context:  env.Context,
		LASSAddr: env.LASSAddr,
		Dial:     env.Dial,
		Kernel:   env.Kernel,
		Identity: "paradynd",
		Trace:    env.Trace,
	})
	if err != nil {
		return fail("tdp_init", err)
	}
	defer h.Exit()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Find the application: explicit pid (attach mode) or blocking get
	// from the attribute space (create mode under TDP).
	var pid procsim.PID
	if opts.TDP {
		pid, err = h.GetPID(ctx)
		if err != nil {
			return fail("tdp_get pid", err)
		}
	} else {
		pid = procsim.PID(opts.PID)
	}

	// Attach (pausing the process if it was running) and "parse the
	// executable to discover symbols and find potential
	// instrumentation points" (§4.2).
	proc, err := h.Attach(pid)
	if err != nil {
		return fail("tdp_attach", err)
	}
	metrics := NewMetrics()
	for _, sym := range proc.Symbols() {
		sym := sym
		if _, err := proc.InsertProbe(sym,
			func(*procsim.ProcContext) { metrics.OnEntry(sym) },
			func(*procsim.ProcContext) { metrics.OnExit(sym) }); err != nil {
			return fail("instrument "+sym, err)
		}
	}

	// Connect to the front-end: the address comes from the argument
	// vector (the prototype's manual mechanism) or from the attribute
	// space (the "complete TDP framework" of §4.3, where the RM
	// publishes the front-end address — possibly a proxy, §2.4).
	feAddr := opts.FEAddr()
	if feAddr == "" {
		if v, err := h.TryGet(tdp.AttrFrontendAddr); err == nil {
			feAddr = v
		}
	}
	var fe *wire.Conn
	if feAddr != "" {
		dial := env.Dial
		if dial == nil {
			dial = attrspace.TCPDial
		}
		raw, err := dial(feAddr)
		if err != nil {
			return fail("connect front-end "+feAddr, err)
		}
		defer raw.Close()
		fe = wire.NewConn(raw)
		reg := wire.NewMessage("REGISTER").
			Set("daemon", fmt.Sprintf("paradynd.%s.rank%d", env.Machine, env.Rank)).
			Set("host", env.Machine).
			SetInt("pid", int(pid)).
			Set("executable", proc.Executable()).
			SetInt("rank", env.Rank)
		if err := fe.Send(reg); err != nil {
			return fail("register", err)
		}
		// Wait for the user's run command from the front-end.
		if m, err := fe.Recv(); err != nil || m.Verb != "RUN" {
			if err != nil {
				return fail("await RUN", err)
			}
			return fail("await RUN", fmt.Errorf("unexpected %s", m.Verb))
		}
	}

	// Tell the RM we are in control, then start the application.
	if err := h.Put(tdp.AttrToolReady, "1"); err != nil {
		return fail("tool_ready", err)
	}
	if err := proc.Continue(); err != nil {
		return fail("tdp_continue", err)
	}

	// Stream samples until the application exits. Sample counts land
	// in a daemon-LOCAL registry — many simulated daemons share one
	// process, and the pool rollup sums counters across publishers, so
	// publishing the shared process registry from every daemon would
	// multiply-count it. The process-wide counter still ticks so a
	// plain STATS snapshot shows the instrumentation data volume next
	// to the protocol traffic.
	local := telemetry.NewRegistry()
	samplesLocal := local.Counter("paradyn.samples.sent")
	sampleLat := local.Histogram("paradyn.sample.batch_us", nil)
	samplesSent := telemetry.Default().Counter("paradyn.samples.sent")
	var lastPub telemetry.Snapshot
	sendSamples := func() {
		if fe == nil {
			return
		}
		start := time.Now()
		fe.Cork()
		for fn, s := range metrics.Snapshot() {
			fe.Send(wire.NewMessage("SAMPLE").
				Set("fn", fn).
				Set("calls", strconv.FormatInt(s.Calls, 10)).
				Set("time_us", strconv.FormatInt(s.TimeMicros, 10)))
			samplesSent.Inc()
			samplesLocal.Inc()
		}
		sampleLat.Observe(float64(time.Since(start).Microseconds()))
		// Publish the daemon's own registry as telemetry streams:
		// only the metrics that changed since the last flush, as
		// cumulative latest values (reconnect-safe).
		cur := local.Snapshot()
		for _, ts := range wire.AppendSnapshotSamples(nil, telemetry.SnapshotDiff(lastPub, cur)) {
			if msg, err := ts.Message(); err == nil {
				fe.Send(msg)
			}
		}
		lastPub = cur
		fe.Uncork()
	}
	var exit procsim.ExitStatus
	for {
		if st, done := proc.ExitStatus(); done {
			exit = st
			break
		}
		sendSamples()
		pc.Sleep(SampleInterval)
	}
	sendSamples()
	if fe != nil {
		fe.Send(wire.NewMessage("DONE").Set("status", exit.String()))
	}

	// Leave a human-readable profile on stdout (lands in the
	// ToolDaemonOutput file and is transferred back, §2's data-file
	// bullet).
	fmt.Fprintf(pc.Stdout(), "paradynd %s rank %d: %s\n", env.Machine, env.Rank, exit)
	fmt.Fprint(pc.Stdout(), FormatTable(metrics.Snapshot()))
	if fn, share, ok := Bottleneck(metrics.Snapshot(), "main"); ok {
		fmt.Fprintf(pc.Stdout(), "bottleneck: %s (%.0f%%)\n", fn, share*100)
	}
	return 0
}
