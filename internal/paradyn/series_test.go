package paradyn

import (
	"testing"
	"time"

	"tdp/internal/wire"
)

func TestSeriesAccumulates(t *testing.T) {
	fe := newFE(t, true)
	wc := fakeDaemon(t, fe.Addr(), "d1")
	if m, err := wc.Recv(); err != nil || m.Verb != "RUN" {
		t.Fatalf("RUN: %v %v", m, err)
	}
	for i := 1; i <= 5; i++ {
		wc.Send(wire.NewMessage("SAMPLE").Set("fn", "work").
			SetInt("calls", i*10).SetInt("time_us", i*100))
	}
	wc.Send(wire.NewMessage("DONE").Set("status", "exit(0)"))
	if err := fe.WaitDone(1, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	series := fe.Series("d1", "work")
	if len(series) != 5 {
		t.Fatalf("series length = %d, want 5", len(series))
	}
	for i, s := range series {
		want := int64((i + 1) * 10)
		if s.Stats.Calls != want {
			t.Errorf("series[%d].Calls = %d, want %d", i, s.Stats.Calls, want)
		}
		if i > 0 && s.At.Before(series[i-1].At) {
			t.Errorf("series timestamps not monotone at %d", i)
		}
	}
	// Latest value is what Stats reports.
	if fe.Stats("d1")["work"].Calls != 50 {
		t.Errorf("Stats = %v", fe.Stats("d1"))
	}
	// Unknown daemon or function.
	if fe.Series("ghost", "work") != nil {
		t.Error("Series(ghost) non-nil")
	}
	if got := fe.Series("d1", "nosuch"); len(got) != 0 {
		t.Errorf("Series(nosuch) = %v", got)
	}
}

func TestSeriesBounded(t *testing.T) {
	fe := newFE(t, true)
	wc := fakeDaemon(t, fe.Addr(), "d1")
	if m, err := wc.Recv(); err != nil || m.Verb != "RUN" {
		t.Fatalf("RUN: %v %v", m, err)
	}
	const extra = 50
	for i := 0; i < historyCap+extra; i++ {
		if err := wc.Send(wire.NewMessage("SAMPLE").Set("fn", "f").
			SetInt("calls", i).SetInt("time_us", i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	wc.Send(wire.NewMessage("DONE").Set("status", "exit(0)"))
	if err := fe.WaitDone(1, 10*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	series := fe.Series("d1", "f")
	if len(series) != historyCap {
		t.Fatalf("series length = %d, want cap %d", len(series), historyCap)
	}
	// The retained window is the most recent samples.
	if got := series[len(series)-1].Stats.Calls; got != historyCap+extra-1 {
		t.Errorf("last sample = %d, want %d", got, historyCap+extra-1)
	}
	if got := series[0].Stats.Calls; got != extra {
		t.Errorf("first retained sample = %d, want %d (oldest dropped)", got, extra)
	}
}
