package paradyn

import (
	"testing"
	"time"

	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

func sendTS(t *testing.T, wc *wire.Conn, ts wire.TelemetrySample) {
	t.Helper()
	m, err := ts.Message()
	if err != nil {
		t.Fatalf("encode tsample: %v", err)
	}
	if err := wc.Send(m); err != nil {
		t.Fatalf("send tsample: %v", err)
	}
}

func waitSnapshot(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFrontEndTSampleIngest(t *testing.T) {
	fe := newFE(t, false)
	d1 := fakeDaemon(t, fe.Addr(), "d1")
	d2 := fakeDaemon(t, fe.Addr(), "d2")
	fe.WaitDaemons(2, time.Second)

	h1 := telemetry.NewHistogram([]float64{1, 10})
	h1.Observe(0.5)
	h2 := telemetry.NewHistogram([]float64{1, 10})
	h2.Observe(5)
	sendTS(t, d1, wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 30})
	sendTS(t, d1, wire.TelemetrySample{Kind: wire.KindGaugeMax, Name: "depth", Value: 3})
	sendTS(t, d1, wire.TelemetrySample{Kind: wire.KindHist, Name: "lat", Hist: h1.Snapshot()})
	sendTS(t, d2, wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 12})
	sendTS(t, d2, wire.TelemetrySample{Kind: wire.KindGaugeMax, Name: "depth", Value: 9})
	sendTS(t, d2, wire.TelemetrySample{Kind: wire.KindHist, Name: "lat", Hist: h2.Snapshot()})
	// A malformed TSAMPLE is skipped, not fatal to the connection.
	d1.Send(wire.NewMessage("TSAMPLE").Set("kind", "counter").Set("name", "bad").Set("value", "x"))
	// Latest-value semantics: re-sending replaces, never adds.
	sendTS(t, d1, wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 31})

	waitSnapshot(t, "pool counter ops=43", func() bool {
		return fe.PoolSnapshot().Counters["ops"] == 43
	})
	pool := fe.PoolSnapshot()
	if pool.Gauges["depth"] != 9 {
		t.Errorf("pool gauge depth = %d, want 9 (max across daemons)", pool.Gauges["depth"])
	}
	if h := pool.Histograms["lat"]; h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("pool hist lat = %+v, want merged counts", h)
	}
	if _, ok := pool.Counters["bad"]; ok {
		t.Error("malformed tsample was absorbed")
	}

	one := fe.DaemonSnapshot("d1")
	if one.Counters["ops"] != 31 || one.Gauges["depth"] != 3 {
		t.Errorf("DaemonSnapshot(d1) = %+v", one)
	}
	if got := fe.DaemonSnapshot("ghost"); len(got.Counters) != 0 {
		t.Errorf("DaemonSnapshot(ghost) = %+v", got)
	}
}

func TestFrontEndResumeKeepsTelemetry(t *testing.T) {
	fe := newFE(t, true)
	d1 := fakeDaemon(t, fe.Addr(), "d1")
	fe.WaitDaemons(1, time.Second)
	if m, err := d1.Recv(); err != nil || m.Verb != "RUN" {
		t.Fatalf("await RUN: %v, %v", m, err)
	}
	sendTS(t, d1, wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 10})
	d1.Send(wire.NewMessage("SAMPLE").Set("fn", "work").Set("calls", "5").Set("time_us", "123"))
	waitSnapshot(t, "ops=10", func() bool {
		return fe.PoolSnapshot().Counters["ops"] == 10
	})

	// The daemon reconnects (resume): same name, new connection. The
	// accumulated state survives, the old connection is dropped, and a
	// cumulative re-publication does not double-count.
	d1b := fakeDaemon(t, fe.Addr(), "d1")
	if m, err := d1b.Recv(); err != nil || m.Verb != "RUN" {
		t.Fatalf("await RUN after resume: %v, %v", m, err)
	}
	if got := fe.Daemons(); len(got) != 1 {
		t.Fatalf("Daemons after resume = %v, want just d1", got)
	}
	if fe.Stats("d1")["work"].Calls != 5 {
		t.Errorf("stats lost across resume: %v", fe.Stats("d1"))
	}
	if got := fe.PoolSnapshot().Counters["ops"]; got != 10 {
		t.Errorf("ops after resume = %d, want 10 (state inherited)", got)
	}
	sendTS(t, d1b, wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 12})
	waitSnapshot(t, "ops=12 after resume", func() bool {
		return fe.PoolSnapshot().Counters["ops"] == 12
	})

	// The old connection is closed; the new one still works.
	waitSnapshot(t, "old conn closed", func() bool {
		_, err := d1.Recv()
		return err != nil
	})
	d1b.Send(wire.NewMessage("DONE").Set("status", "exit(0)"))
	if err := fe.WaitDone(1, 2*time.Second); err != nil {
		t.Fatalf("WaitDone after resume: %v", err)
	}
}
