package paradyn

import (
	"net"
	"strings"
	"testing"
	"time"

	"tdp"
	"tdp/internal/condor"
	"tdp/internal/procsim"
	"tdp/internal/trace"
	"tdp/internal/wire"
)

func TestParseDaemonArgsPaperStyle(t *testing.T) {
	// The exact argument vector from Figure 5B.
	args := []string{"-zunix", "-l3", "-mpinguino.cs.wisc.edu", "-p2090", "-P2091", "-a%pid"}
	opts := ParseDaemonArgs(args)
	if opts.FEHost != "pinguino.cs.wisc.edu" || opts.FEPort != 2090 {
		t.Errorf("FE = %q:%d", opts.FEHost, opts.FEPort)
	}
	if opts.Level != 3 {
		t.Errorf("Level = %d", opts.Level)
	}
	if opts.FEPort2 != 2091 {
		t.Errorf("FEPort2 = %d, want 2091", opts.FEPort2)
	}
	if opts.Flavor != "unix" {
		t.Errorf("Flavor = %q, want unix", opts.Flavor)
	}
	if !opts.TDP {
		t.Error("unresolved pid marker must signal TDP mode")
	}
	if opts.FEAddr() != "pinguino.cs.wisc.edu:2090" {
		t.Errorf("FEAddr = %q", opts.FEAddr())
	}
}

func TestParseDaemonArgsAttachMode(t *testing.T) {
	opts := ParseDaemonArgs([]string{"-a1234"})
	if opts.TDP || opts.PID != 1234 {
		t.Errorf("opts = %+v", opts)
	}
	// No -a at all: TDP mode.
	opts = ParseDaemonArgs(nil)
	if !opts.TDP {
		t.Error("missing -a must signal TDP mode")
	}
	if opts.FEAddr() != "" {
		t.Errorf("FEAddr = %q", opts.FEAddr())
	}
}

func TestMetricsAccumulate(t *testing.T) {
	m := NewMetrics()
	m.OnEntry("f")
	time.Sleep(2 * time.Millisecond)
	m.OnExit("f")
	m.OnEntry("f")
	m.OnExit("f")
	s := m.Snapshot()["f"]
	if s.Calls != 2 {
		t.Errorf("Calls = %d", s.Calls)
	}
	if s.TimeMicros < 1000 {
		t.Errorf("TimeMicros = %d, want >= 1000", s.TimeMicros)
	}
	// Exit without entry is harmless.
	m.OnExit("ghost")
	if _, ok := m.Snapshot()["ghost"]; ok {
		t.Error("exit-without-entry created stats")
	}
}

func TestBottleneckFlatSearch(t *testing.T) {
	stats := map[string]FuncStats{
		"main":           {Calls: 1, TimeMicros: 1000},
		"compute_forces": {Calls: 10, TimeMicros: 700},
		"io":             {Calls: 10, TimeMicros: 200},
		"misc":           {Calls: 10, TimeMicros: 100},
	}
	fn, share, ok := Bottleneck(stats, "main")
	if !ok || fn != "compute_forces" {
		t.Fatalf("Bottleneck = %q, %v", fn, ok)
	}
	if share < 0.69 || share > 0.71 {
		t.Errorf("share = %v, want ~0.7", share)
	}
	if _, _, ok := Bottleneck(map[string]FuncStats{}); ok {
		t.Error("Bottleneck on empty stats reported ok")
	}
	if _, _, ok := Bottleneck(stats, "main", "compute_forces", "io", "misc"); ok {
		t.Error("Bottleneck with everything excluded reported ok")
	}
}

func TestFormatTableAndMerge(t *testing.T) {
	a := map[string]FuncStats{"f": {Calls: 1, TimeMicros: 10}}
	b := map[string]FuncStats{"f": {Calls: 2, TimeMicros: 30}, "g": {Calls: 1, TimeMicros: 5}}
	merged := Merge(a, b)
	if merged["f"].Calls != 3 || merged["f"].TimeMicros != 40 || merged["g"].Calls != 1 {
		t.Errorf("Merge = %v", merged)
	}
	table := FormatTable(merged)
	if !strings.Contains(table, "FUNCTION") || !strings.Contains(table, "f") {
		t.Errorf("table = %q", table)
	}
	// Sorted by time: f (40us) before g (5us).
	if strings.Index(table, "\nf") > strings.Index(table, "\ng") {
		t.Errorf("table not sorted by time:\n%s", table)
	}
}

// fakeDaemon connects to a front-end and exercises the protocol.
func fakeDaemon(t *testing.T, addr, name string) *wire.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial FE: %v", err)
	}
	t.Cleanup(func() { raw.Close() })
	wc := wire.NewConn(raw)
	reg := wire.NewMessage("REGISTER").Set("daemon", name).Set("host", "h").
		SetInt("pid", 42).Set("executable", "foo").SetInt("rank", 0)
	if err := wc.Send(reg); err != nil {
		t.Fatalf("register: %v", err)
	}
	return wc
}

func newFE(t *testing.T, autoRun bool) *FrontEnd {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fe, err := NewFrontEnd(FrontEndConfig{Listener: l, AutoRun: autoRun})
	if err != nil {
		t.Fatalf("NewFrontEnd: %v", err)
	}
	t.Cleanup(fe.Close)
	return fe
}

func TestFrontEndProtocol(t *testing.T) {
	fe := newFE(t, true)
	wc := fakeDaemon(t, fe.Addr(), "d1")

	// AutoRun: RUN arrives after registration.
	m, err := wc.Recv()
	if err != nil || m.Verb != "RUN" {
		t.Fatalf("expected RUN, got %v, %v", m, err)
	}
	if err := fe.WaitDaemons(1, time.Second); err != nil {
		t.Fatalf("WaitDaemons: %v", err)
	}
	wc.Send(wire.NewMessage("SAMPLE").Set("fn", "work").Set("calls", "5").Set("time_us", "123"))
	wc.Send(wire.NewMessage("DONE").Set("status", "exit(0)"))
	if err := fe.WaitDone(1, 2*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	stats := fe.Stats("d1")
	if stats["work"].Calls != 5 || stats["work"].TimeMicros != 123 {
		t.Errorf("stats = %v", stats)
	}
	if st, ok := fe.ExitStatus("d1"); !ok || st != "exit(0)" {
		t.Errorf("ExitStatus = %q, %v", st, ok)
	}
	if got := fe.Daemons(); len(got) != 1 || got[0] != "d1" {
		t.Errorf("Daemons = %v", got)
	}
}

func TestFrontEndManualRun(t *testing.T) {
	fe := newFE(t, false)
	wc := fakeDaemon(t, fe.Addr(), "d1")
	fe.WaitDaemons(1, time.Second)

	// No RUN yet.
	got := make(chan string, 1)
	go func() {
		m, err := wc.Recv()
		if err != nil {
			got <- "err"
			return
		}
		got <- m.Verb
	}()
	select {
	case v := <-got:
		t.Fatalf("daemon received %q before RunAll", v)
	case <-time.After(30 * time.Millisecond):
	}
	fe.RunAll()
	select {
	case v := <-got:
		if v != "RUN" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RUN never arrived")
	}
	// Run on an unknown daemon errors; repeated run is idempotent.
	if err := fe.Run("ghost"); err == nil {
		t.Error("Run(ghost) succeeded")
	}
	if err := fe.Run("d1"); err != nil {
		t.Errorf("second Run: %v", err)
	}
}

func TestFrontEndWaitTimeouts(t *testing.T) {
	fe := newFE(t, true)
	if err := fe.WaitDaemons(1, 30*time.Millisecond); err == nil {
		t.Error("WaitDaemons succeeded with no daemons")
	}
	if err := fe.WaitDone(1, 30*time.Millisecond); err == nil {
		t.Error("WaitDone succeeded with no daemons")
	}
	if fe.Stats("nope") != nil {
		t.Error("Stats of unknown daemon non-nil")
	}
	if _, ok := fe.ExitStatus("nope"); ok {
		t.Error("ExitStatus of unknown daemon ok")
	}
}

// newParadorPool builds a pool with paradyn registered — the Parador
// configuration of §4.3.
func newParadorPool(t *testing.T, machines int, rec *trace.Recorder) *condor.Pool {
	t.Helper()
	pool := condor.NewPool(condor.PoolOptions{Trace: rec, NegotiationTimeout: 2 * time.Second})
	t.Cleanup(pool.Close)
	for i := 0; i < machines; i++ {
		name := "node" + string(rune('1'+i))
		if _, err := pool.AddMachine(condor.MachineConfig{
			Name: name, Arch: "INTEL", OpSys: "LINUX", Memory: 128,
		}); err != nil {
			t.Fatalf("AddMachine: %v", err)
		}
	}
	pool.Registry().RegisterTool("paradynd", Tool())
	pool.Registry().RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(20)
		return prog, procsim.PhasedSymbols(phases)
	})
	return pool
}

func TestParadorVanillaEndToEnd(t *testing.T) {
	// The full Parador experiment: Paradyn front-end starts first and
	// publishes its ports; Condor runs the job with paradynd attached
	// via TDP; the front-end collects a profile and finds the planted
	// bottleneck.
	rec := trace.New()
	pool := newParadorPool(t, 1, rec)
	fe := newFE(t, true)

	host, port, _ := net.SplitHostPort(fe.Addr())
	submit := `universe = Vanilla
executable = science
output = outfile
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -l3 -m` + host + ` -p` + port + ` -a%pid"
+ToolDaemonOutput = "daemon.out"
queue
`
	jobs, err := pool.Submit(submit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := jobs[0].WaitExit(30 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if st.Code != 0 {
		t.Errorf("exit = %v", st)
	}
	if err := fe.WaitDone(1, 10*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}

	// The Performance Consultant must find the planted bottleneck.
	fn, share, ok := fe.Bottleneck()
	if !ok {
		t.Fatal("no bottleneck found")
	}
	if fn != "compute_forces" {
		t.Errorf("bottleneck = %q, want compute_forces\n%s", fn, fe.Report())
	}
	if share < 0.5 {
		t.Errorf("bottleneck share = %.2f, want > 0.5", share)
	}

	// Every phase was observed with the right call count (20 iters).
	stats := fe.AllStats()
	for _, phase := range []string{"read_input", "compute_forces", "update_positions", "write_output"} {
		if stats[phase].Calls != 20 {
			t.Errorf("%s calls = %d, want 20", phase, stats[phase].Calls)
		}
	}

	// The daemon published its local registry as telemetry streams.
	pool2 := fe.PoolSnapshot()
	if pool2.Counters["paradyn.samples.sent"] <= 0 {
		t.Errorf("PoolSnapshot counters = %v, want paradyn.samples.sent > 0", pool2.Counters)
	}
	if pool2.Histograms["paradyn.sample.batch_us"].Count <= 0 {
		t.Error("PoolSnapshot missing paradyn.sample.batch_us histogram")
	}

	// The daemon's profile file came back to the submit machine.
	data, ok2 := pool.SubmitFiles().Read("daemon.out")
	if !ok2 || !strings.Contains(string(data), "bottleneck: compute_forces") {
		t.Errorf("daemon.out = %q", data)
	}

	// Figure 6 ordering on the real paradynd.
	if err := rec.CheckOrder(
		"starter:tdp_init",
		"starter:tdp_create_process",
		"starter:tdp_create_process",
		"starter:tdp_put",
		"paradynd:tdp_init",
		"paradynd:tdp_get",
		"paradynd:tdp_attach",
		"paradynd:tdp_continue_process",
		"starter:job_exit",
	); err != nil {
		t.Error(err)
	}
}

func TestParadorAttachMode(t *testing.T) {
	// Attach mode (§4.2): the application is already running; a
	// paradynd is launched later with an explicit pid and attaches.
	srv, lass, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeLASS: %v", err)
	}
	defer srv.Close()
	kernel := procsim.NewKernel()
	fe := newFE(t, true)

	rm, err := tdp.Init(tdp.Config{Context: "attach-job", LASSAddr: lass, Kernel: kernel, Identity: "RM"})
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	defer rm.Exit()

	// Long enough that the daemon attaches mid-run (~100µs per iteration).
	phases, prog := procsim.DefaultScienceApp(2000)
	ap, err := rm.CreateProcess(tdp.ProcessSpec{
		Executable: "science", Program: prog, Symbols: procsim.PhasedSymbols(phases),
	}, tdp.StartRun)
	if err != nil {
		t.Fatalf("CreateProcess: %v", err)
	}

	host, port, _ := net.SplitHostPort(fe.Addr())
	env := condor.ToolEnv{
		Machine: "localhost", Kernel: kernel, LASSAddr: lass, Context: "attach-job",
	}
	args := []string{"-m" + host, "-p" + port, "-a" + tdp.FormatPID(ap.PID())}
	daemon := Tool()(env, args)
	var daemonErr strings.Builder
	rtProc, err := rm.CreateProcess(tdp.ProcessSpec{Executable: "paradynd", Program: daemon, Stderr: &daemonErr}, tdp.StartRun)
	if err != nil {
		t.Fatalf("create daemon: %v", err)
	}
	if st, err := ap.Wait(); err != nil || st.Code != 0 {
		t.Fatalf("app wait = %v, %v", st, err)
	}
	if st, err := rtProc.Wait(); err != nil || st.Code != 0 {
		t.Fatalf("daemon wait = %v, %v; stderr: %s", st, err, daemonErr.String())
	}
	if err := fe.WaitDone(1, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	// Attach happened mid-run, so the daemon saw only part of the
	// execution — but it must have seen compute_forces activity.
	stats := fe.AllStats()
	if stats["compute_forces"].Calls == 0 {
		t.Errorf("attach-mode daemon saw no compute_forces calls: %v", stats)
	}
}

func TestParadorMPIAllRanksProfiled(t *testing.T) {
	pool := newParadorPool(t, 3, nil)
	pool.Registry().RegisterProgram("ring", func(args []string) (procsim.Program, []string) {
		return nil, nil // replaced below; keep registry simple
	})
	// Use the science app as the MPI payload: each rank computes.
	fe := newFE(t, true)
	host, port, _ := net.SplitHostPort(fe.Addr())
	submit := `universe = MPI
executable = science
machine_count = 3
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-m` + host + ` -p` + port + ` -a%pid"
queue
`
	jobs, err := pool.Submit(submit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := jobs[0].WaitExit(40 * time.Second); err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if err := fe.WaitDone(3, 10*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	if got := len(fe.Daemons()); got != 3 {
		t.Fatalf("daemons = %d, want 3 (one per rank)", got)
	}
	// Merged across ranks: 3 ranks × 20 iterations.
	stats := fe.AllStats()
	if stats["compute_forces"].Calls != 60 {
		t.Errorf("merged compute_forces calls = %d, want 60", stats["compute_forces"].Calls)
	}
}
