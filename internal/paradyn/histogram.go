package paradyn

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file renders the front-end's metric time series as text
// histograms — the reproduction's stand-in for Paradyn's run-time
// visualizations ("display performance data visualizations", §4.2).

// HistogramOptions tune RenderHistogram.
type HistogramOptions struct {
	// Buckets is the number of time buckets (default 20).
	Buckets int
	// Width is the bar width in characters (default 40).
	Width int
}

// RenderHistogram folds one function's sample series into time buckets
// and renders the per-bucket *rate* of inclusive time (µs of function
// time per bucket) as bars. Samples carry cumulative values, so the
// per-bucket delta is the activity in that interval.
func RenderHistogram(series []TimedSample, fn string, opts HistogramOptions) string {
	if opts.Buckets <= 0 {
		opts.Buckets = 20
	}
	if opts.Width <= 0 {
		opts.Width = 40
	}
	if len(series) == 0 {
		return fmt.Sprintf("%s: no samples\n", fn)
	}
	start := series[0].At
	end := series[len(series)-1].At
	span := end.Sub(start)
	if span <= 0 {
		span = time.Millisecond
	}
	bucketDur := span / time.Duration(opts.Buckets)
	if bucketDur <= 0 {
		bucketDur = time.Millisecond
	}

	// Last cumulative value seen in each bucket.
	lastInBucket := make([]int64, opts.Buckets)
	seen := make([]bool, opts.Buckets)
	for _, s := range series {
		b := int(s.At.Sub(start) / bucketDur)
		if b >= opts.Buckets {
			b = opts.Buckets - 1
		}
		lastInBucket[b] = s.Stats.TimeMicros
		seen[b] = true
	}
	// Deltas between buckets; carry forward unseen buckets.
	deltas := make([]int64, opts.Buckets)
	prev := int64(0)
	var maxDelta int64
	for i := 0; i < opts.Buckets; i++ {
		cur := prev
		if seen[i] {
			cur = lastInBucket[i]
		}
		d := cur - prev
		if d < 0 {
			d = 0
		}
		deltas[i] = d
		if d > maxDelta {
			maxDelta = d
		}
		prev = cur
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s over %v (%d buckets of %v):\n", fn, span.Round(time.Millisecond), opts.Buckets, bucketDur.Round(time.Microsecond))
	for i, d := range deltas {
		bar := 0
		if maxDelta > 0 {
			bar = int(float64(d) / float64(maxDelta) * float64(opts.Width))
		}
		fmt.Fprintf(&sb, "%3d |%-*s| %dus\n", i, opts.Width, strings.Repeat("#", bar), d)
	}
	return sb.String()
}

// Visualization renders histograms for the top-N functions of a daemon
// by total time — the "open a visi for the hottest metrics" gesture.
func (fe *FrontEnd) Visualization(daemon string, topN int, opts HistogramOptions) string {
	stats := fe.Stats(daemon)
	if len(stats) == 0 {
		return "no data for daemon " + daemon + "\n"
	}
	type kv struct {
		fn string
		us int64
	}
	ranked := make([]kv, 0, len(stats))
	for fn, s := range stats {
		if fn == "main" {
			// main's inclusive time materializes only at exit; its
			// histogram is a single spike with no information.
			continue
		}
		ranked = append(ranked, kv{fn, s.TimeMicros})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].us != ranked[j].us {
			return ranked[i].us > ranked[j].us
		}
		return ranked[i].fn < ranked[j].fn
	})
	if topN <= 0 || topN > len(ranked) {
		topN = len(ranked)
	}
	var sb strings.Builder
	for _, r := range ranked[:topN] {
		sb.WriteString(RenderHistogram(fe.Series(daemon, r.fn), r.fn, opts))
		sb.WriteByte('\n')
	}
	return sb.String()
}
