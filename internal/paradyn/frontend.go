package paradyn

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"tdp/internal/telemetry"
	"tdp/internal/trace"
	"tdp/internal/wire"
)

// FrontEnd is the paradyn process: the user interface that "allows the
// user to display performance data visualizations, use the Performance
// Consultant to automatically find bottlenecks, start or stop the
// application, and monitor the status of the application" (§4.2).
//
// Daemons connect over the network (possibly through the RM's proxy)
// and speak a framed protocol:
//
//	daemon → FE:  REGISTER daemon= host= pid= executable= rank=
//	              SAMPLE   fn= calls= time_us=     (repeated)
//	              TSAMPLE  kind= name= value=|json= (telemetry streams)
//	              DONE     status=
//	FE → daemon:  RUN                               (the user's run command)
//
// TSAMPLE carries cumulative latest values (never deltas), so the
// front-end keeps one snapshot per daemon and PoolSnapshot merges them
// — the same latest-value discipline the mrnet reduction uses, which
// makes re-registration after a reconnect (resume=1) lossless.
type FrontEnd struct {
	cfg FrontEndConfig

	mu      sync.Mutex
	ln      net.Listener
	daemons map[string]*daemonState
	closed  bool
	regCh   chan string // registration notifications
}

// FrontEndConfig parameterizes NewFrontEnd.
type FrontEndConfig struct {
	// Listener accepts daemon connections. Required (create with
	// net.Listen or a netsim host's Listen).
	Listener net.Listener
	// AutoRun, when true, sends RUN to each daemon immediately after
	// registration — the scripted equivalent of the user pressing RUN
	// in the UI. When false, call Run or RunAll explicitly.
	AutoRun bool
	// Trace records protocol steps (optional).
	Trace *trace.Recorder
}

type daemonState struct {
	name       string
	host       string
	pid        int
	executable string
	rank       int
	conn       *wire.Conn
	stats      map[string]FuncStats
	history    map[string][]TimedSample // per-function sample series
	tel        telemetry.Snapshot       // latest TSAMPLE value per stream
	done       bool
	exitStatus string
	ran        bool
}

// TimedSample is one point of a metric time series — the raw material
// of Paradyn's histogram visualizations.
type TimedSample struct {
	At    time.Time
	Stats FuncStats
}

// historyCap bounds the per-function series so long runs stay bounded;
// old points are dropped from the front (Paradyn folds its histograms
// similarly).
const historyCap = 1024

// NewFrontEnd starts the front-end on the given listener.
func NewFrontEnd(cfg FrontEndConfig) (*FrontEnd, error) {
	if cfg.Listener == nil {
		return nil, errors.New("paradyn: FrontEndConfig.Listener is required")
	}
	fe := &FrontEnd{
		cfg:     cfg,
		daemons: make(map[string]*daemonState),
		ln:      cfg.Listener,
		regCh:   make(chan string, 64),
	}
	go fe.serve()
	return fe, nil
}

func (fe *FrontEnd) record(action, detail string) {
	if fe.cfg.Trace != nil {
		fe.cfg.Trace.Record("paradyn-fe", action, detail)
	}
}

// Addr returns the address daemons should dial (directly or via proxy).
func (fe *FrontEnd) Addr() string { return fe.ln.Addr().String() }

func (fe *FrontEnd) serve() {
	for {
		c, err := fe.ln.Accept()
		if err != nil {
			return
		}
		go fe.handle(c)
	}
}

func (fe *FrontEnd) handle(c net.Conn) {
	wc := wire.NewConn(c)
	reg, err := wc.Recv()
	if err != nil || reg.Verb != "REGISTER" {
		c.Close()
		return
	}
	name := reg.Get("daemon")
	ds := &daemonState{
		name:       name,
		host:       reg.Get("host"),
		pid:        reg.Int("pid", 0),
		executable: reg.Get("executable"),
		rank:       reg.Int("rank", 0),
		conn:       wc,
		stats:      make(map[string]FuncStats),
		history:    make(map[string][]TimedSample),
	}
	fe.mu.Lock()
	if fe.closed {
		fe.mu.Unlock()
		c.Close()
		return
	}
	if old := fe.daemons[name]; old != nil {
		// Re-registration (a daemon or mrnet node reconnecting with
		// resume=1, or a replacement after a crash): the new connection
		// inherits the accumulated state so cumulative metrics never
		// dip, and the old connection is dropped so its handler exits.
		ds.stats = old.stats
		ds.history = old.history
		ds.tel = old.tel
		ds.done = old.done
		ds.exitStatus = old.exitStatus
		// ran stays false: a reconnected peer that waits for RUN gets
		// one; peers that resumed past that point ignore the extra.
		if old.conn != wc {
			old.conn.Close()
		}
	}
	fe.daemons[name] = ds
	autoRun := fe.cfg.AutoRun
	fe.mu.Unlock()
	fe.record("register", name+" pid="+reg.Get("pid"))
	telemetry.Default().Counter("paradyn.daemons.registered").Inc()
	select {
	case fe.regCh <- name:
	default:
	}
	if autoRun {
		fe.runDaemon(ds)
	}
	for {
		m, err := wc.Recv()
		if err != nil {
			c.Close()
			return
		}
		switch m.Verb {
		case "SAMPLE":
			telemetry.Default().Counter("paradyn.samples.received").Inc()
			fn := m.Get("fn")
			calls, _ := strconv.ParseInt(m.Get("calls"), 10, 64)
			us, _ := strconv.ParseInt(m.Get("time_us"), 10, 64)
			s := FuncStats{Calls: calls, TimeMicros: us}
			fe.mu.Lock()
			ds.stats[fn] = s
			series := append(ds.history[fn], TimedSample{At: time.Now(), Stats: s})
			if len(series) > historyCap {
				series = series[len(series)-historyCap:]
			}
			ds.history[fn] = series
			fe.mu.Unlock()
		case "TSAMPLE":
			ts, err := wire.ParseTSample(m)
			if err != nil {
				continue
			}
			telemetry.Default().Counter("paradyn.tsamples.received").Inc()
			fe.mu.Lock()
			ds.tel = absorbTSample(ds.tel, ts)
			fe.mu.Unlock()
		case "DONE":
			fe.mu.Lock()
			ds.done = true
			ds.exitStatus = m.Get("status")
			fe.mu.Unlock()
			fe.record("daemon_done", name+" "+m.Get("status"))
		}
	}
}

func (fe *FrontEnd) runDaemon(ds *daemonState) {
	fe.mu.Lock()
	already := ds.ran
	ds.ran = true
	fe.mu.Unlock()
	if already {
		return
	}
	fe.record("run", ds.name)
	ds.conn.Send(wire.NewMessage("RUN"))
}

// Run sends the user's run command to one daemon.
func (fe *FrontEnd) Run(daemon string) error {
	fe.mu.Lock()
	ds := fe.daemons[daemon]
	fe.mu.Unlock()
	if ds == nil {
		return fmt.Errorf("paradyn: no daemon %q", daemon)
	}
	fe.runDaemon(ds)
	return nil
}

// RunAll sends the run command to every registered daemon.
func (fe *FrontEnd) RunAll() {
	fe.mu.Lock()
	list := make([]*daemonState, 0, len(fe.daemons))
	for _, ds := range fe.daemons {
		list = append(list, ds)
	}
	fe.mu.Unlock()
	for _, ds := range list {
		fe.runDaemon(ds)
	}
}

// Daemons returns the registered daemon names, sorted.
func (fe *FrontEnd) Daemons() []string {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	out := make([]string, 0, len(fe.daemons))
	for n := range fe.daemons {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WaitDaemons blocks until at least n daemons have registered.
func (fe *FrontEnd) WaitDaemons(n int, timeout time.Duration) error {
	deadline := time.After(timeout)
	for {
		fe.mu.Lock()
		got := len(fe.daemons)
		fe.mu.Unlock()
		if got >= n {
			return nil
		}
		select {
		case <-fe.regCh:
		case <-deadline:
			return fmt.Errorf("paradyn: %d of %d daemons registered before timeout", got, n)
		}
	}
}

// WaitDone blocks until at least n daemons have reported DONE.
func (fe *FrontEnd) WaitDone(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		fe.mu.Lock()
		got := 0
		for _, ds := range fe.daemons {
			if ds.done {
				got++
			}
		}
		fe.mu.Unlock()
		if got >= n {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("paradyn: daemons not done before timeout")
}

// Stats returns one daemon's latest function statistics.
func (fe *FrontEnd) Stats(daemon string) map[string]FuncStats {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	ds := fe.daemons[daemon]
	if ds == nil {
		return nil
	}
	out := make(map[string]FuncStats, len(ds.stats))
	for k, v := range ds.stats {
		out[k] = v
	}
	return out
}

// Series returns one daemon's sample time series for a function — the
// data behind Paradyn's histogram displays. Nil when unknown.
func (fe *FrontEnd) Series(daemon, fn string) []TimedSample {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	ds := fe.daemons[daemon]
	if ds == nil {
		return nil
	}
	out := make([]TimedSample, len(ds.history[fn]))
	copy(out, ds.history[fn])
	return out
}

// AllStats merges statistics across all daemons (e.g. MPI ranks).
func (fe *FrontEnd) AllStats() map[string]FuncStats {
	fe.mu.Lock()
	parts := make([]map[string]FuncStats, 0, len(fe.daemons))
	for _, ds := range fe.daemons {
		m := make(map[string]FuncStats, len(ds.stats))
		for k, v := range ds.stats {
			m[k] = v
		}
		parts = append(parts, m)
	}
	fe.mu.Unlock()
	return Merge(parts...)
}

// absorbTSample folds one telemetry sample into a daemon's snapshot,
// overwriting the stream's previous value (TSAMPLE values are
// cumulative, so latest wins).
func absorbTSample(snap telemetry.Snapshot, ts wire.TelemetrySample) telemetry.Snapshot {
	switch ts.Kind {
	case wire.KindCounter:
		if snap.Counters == nil {
			snap.Counters = make(map[string]int64)
		}
		snap.Counters[ts.Name] = ts.Value
	case wire.KindGauge, wire.KindGaugeMax:
		if snap.Gauges == nil {
			snap.Gauges = make(map[string]int64)
		}
		snap.Gauges[ts.Name] = ts.Value
	case wire.KindHist:
		if snap.Histograms == nil {
			snap.Histograms = make(map[string]telemetry.HistogramSnapshot)
		}
		snap.Histograms[ts.Name] = ts.Hist
	}
	return snap
}

// DaemonSnapshot returns the latest telemetry snapshot one daemon (or
// mrnet subtree, when the registrant is a reduction node) streamed via
// TSAMPLE. Zero when the daemon is unknown or never published.
func (fe *FrontEnd) DaemonSnapshot(daemon string) telemetry.Snapshot {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	ds := fe.daemons[daemon]
	if ds == nil {
		return telemetry.Snapshot{}
	}
	return ds.tel.Merge(telemetry.Snapshot{})
}

// PoolSnapshot merges every registrant's telemetry streams into one
// pool-wide view: counters sum, gauges take the maximum, histograms
// merge bucket-wise. With daemons connected through a reduction tree
// there is a single registrant (the tree root) and this is simply its
// rolled-up subtree snapshot.
func (fe *FrontEnd) PoolSnapshot() telemetry.Snapshot {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	parts := make([]telemetry.Snapshot, 0, len(fe.daemons))
	for _, ds := range fe.daemons {
		parts = append(parts, ds.tel)
	}
	// Merge under the lock: the parts alias the live per-daemon maps
	// that handle() mutates, and MergeSnapshots deep-copies them.
	return telemetry.MergeSnapshots(parts...)
}

// ExitStatus returns the status a daemon reported with DONE.
func (fe *FrontEnd) ExitStatus(daemon string) (string, bool) {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	ds := fe.daemons[daemon]
	if ds == nil || !ds.done {
		return "", false
	}
	return ds.exitStatus, true
}

// Bottleneck runs the simplified Performance Consultant over the
// merged statistics.
func (fe *FrontEnd) Bottleneck() (fn string, share float64, ok bool) {
	return Bottleneck(fe.AllStats(), "main")
}

// Report renders the merged statistics table.
func (fe *FrontEnd) Report() string { return FormatTable(fe.AllStats()) }

// Close shuts the front-end down.
func (fe *FrontEnd) Close() {
	fe.mu.Lock()
	if fe.closed {
		fe.mu.Unlock()
		return
	}
	fe.closed = true
	daemons := make([]*daemonState, 0, len(fe.daemons))
	for _, ds := range fe.daemons {
		daemons = append(daemons, ds)
	}
	fe.mu.Unlock()
	fe.ln.Close()
	for _, ds := range daemons {
		ds.conn.Close()
	}
}
