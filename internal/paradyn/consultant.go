package paradyn

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements a fuller version of the Performance Consultant
// (§4.2: "the ability to automatically search for performance
// bottlenecks"). Like the real PC, it runs a hierarchical hypothesis
// search: a root hypothesis ("the application has a bottleneck") is
// refined along the *why* axis (which kind of resource dominates) and
// the *where* axis (which function, then which host/rank), testing
// each refinement against a threshold and descending only into
// hypotheses that hold.

// Hypothesis is one node of the search: a claim about where time goes,
// with the evidence that supported or refuted it.
type Hypothesis struct {
	// Name identifies the hypothesis, e.g. "TopLevel",
	// "CPUBound(compute_forces)", "ExclusiveHost(node1)".
	Name string
	// Share is the fraction of the parent's time this hypothesis
	// explains.
	Share float64
	// Confirmed reports whether Share met the threshold.
	Confirmed bool
	// Children are the refinements tested beneath a confirmed
	// hypothesis.
	Children []*Hypothesis
}

// SearchConfig tunes the consultant.
type SearchConfig struct {
	// Threshold is the minimum share for a hypothesis to be confirmed
	// (the real PC uses ~0.2 by default for most hypotheses).
	Threshold float64
	// MaxDepth bounds refinement depth.
	MaxDepth int
}

// DefaultSearchConfig mirrors the classic PC defaults.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{Threshold: 0.2, MaxDepth: 3}
}

// PerDaemonStats maps a daemon (host/rank) to its function statistics.
type PerDaemonStats map[string]map[string]FuncStats

// Search runs the hypothesis search over per-daemon statistics and
// returns the root of the search tree plus the list of confirmed leaf
// hypotheses ordered by share (the "bottleneck report").
func Search(data PerDaemonStats, cfg SearchConfig) (*Hypothesis, []*Hypothesis) {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.2
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 3
	}
	merged := mergePerDaemon(data)
	total := totalTime(merged, "main")
	root := &Hypothesis{Name: "TopLevel", Share: 1, Confirmed: total > 0}
	if !root.Confirmed {
		return root, nil
	}

	// Why axis: which functions dominate?
	names := sortedFuncs(merged)
	for _, fn := range names {
		if fn == "main" {
			continue
		}
		share := float64(merged[fn].TimeMicros) / float64(total)
		h := &Hypothesis{
			Name:      fmt.Sprintf("CPUBound(%s)", fn),
			Share:     share,
			Confirmed: share >= cfg.Threshold,
		}
		root.Children = append(root.Children, h)
		if !h.Confirmed || cfg.MaxDepth < 2 {
			continue
		}
		// Where axis: which daemon (host/rank) contributes most to
		// this function?
		fnTotal := merged[fn].TimeMicros
		if fnTotal == 0 {
			continue
		}
		for _, daemon := range sortedDaemons(data) {
			s, ok := data[daemon][fn]
			if !ok {
				continue
			}
			dshare := float64(s.TimeMicros) / float64(fnTotal)
			child := &Hypothesis{
				Name:      fmt.Sprintf("ExclusiveHost(%s,%s)", fn, daemon),
				Share:     dshare,
				Confirmed: dshare >= cfg.Threshold,
			}
			h.Children = append(h.Children, child)
		}
	}

	var confirmed []*Hypothesis
	var collect func(h *Hypothesis)
	collect = func(h *Hypothesis) {
		leaf := true
		for _, c := range h.Children {
			if c.Confirmed {
				leaf = false
				collect(c)
			}
		}
		if leaf && h.Confirmed && h != root {
			confirmed = append(confirmed, h)
		}
	}
	collect(root)
	sort.Slice(confirmed, func(i, j int) bool {
		if confirmed[i].Share != confirmed[j].Share {
			return confirmed[i].Share > confirmed[j].Share
		}
		return confirmed[i].Name < confirmed[j].Name
	})
	return root, confirmed
}

// FormatSearch renders the search tree the way the PC window shows it:
// confirmed hypotheses flagged, shares as percentages.
func FormatSearch(root *Hypothesis) string {
	var sb strings.Builder
	var walk func(h *Hypothesis, depth int)
	walk = func(h *Hypothesis, depth int) {
		mark := " "
		if h.Confirmed {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s%s %s (%.0f%%)\n", strings.Repeat("  ", depth), mark, h.Name, h.Share*100)
		for _, c := range h.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return sb.String()
}

func mergePerDaemon(data PerDaemonStats) map[string]FuncStats {
	parts := make([]map[string]FuncStats, 0, len(data))
	for _, m := range data {
		parts = append(parts, m)
	}
	return Merge(parts...)
}

func totalTime(merged map[string]FuncStats, exclude string) int64 {
	var total int64
	for fn, s := range merged {
		if fn == exclude {
			continue
		}
		total += s.TimeMicros
	}
	return total
}

func sortedFuncs(m map[string]FuncStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedDaemons(data PerDaemonStats) []string {
	out := make([]string, 0, len(data))
	for k := range data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PerDaemon snapshots the front-end's data in the consultant's input
// shape.
func (fe *FrontEnd) PerDaemon() PerDaemonStats {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	out := make(PerDaemonStats, len(fe.daemons))
	for name, ds := range fe.daemons {
		m := make(map[string]FuncStats, len(ds.stats))
		for k, v := range ds.stats {
			m[k] = v
		}
		out[name] = m
	}
	return out
}

// Consult runs the hypothesis search on the front-end's current data.
func (fe *FrontEnd) Consult(cfg SearchConfig) (*Hypothesis, []*Hypothesis) {
	return Search(fe.PerDaemon(), cfg)
}
