package paradyn

import (
	"strings"
	"testing"
	"time"

	"tdp/internal/wire"
)

func mkSample(fn string, calls, us int) *wire.Message {
	return wire.NewMessage("SAMPLE").Set("fn", fn).SetInt("calls", calls).SetInt("time_us", us)
}

func mkDone(status string) *wire.Message {
	return wire.NewMessage("DONE").Set("status", status)
}

func pcData() PerDaemonStats {
	return PerDaemonStats{
		"paradynd.node1.rank0": {
			"main":           {Calls: 1, TimeMicros: 1000},
			"compute_forces": {Calls: 10, TimeMicros: 600},
			"io":             {Calls: 10, TimeMicros: 50},
		},
		"paradynd.node2.rank1": {
			"main":           {Calls: 1, TimeMicros: 1000},
			"compute_forces": {Calls: 10, TimeMicros: 100},
			"io":             {Calls: 10, TimeMicros: 50},
		},
	}
}

func TestSearchFindsWhyAndWhere(t *testing.T) {
	root, confirmed := Search(pcData(), DefaultSearchConfig())
	if !root.Confirmed {
		t.Fatal("root hypothesis not confirmed with nonzero data")
	}
	if len(confirmed) == 0 {
		t.Fatal("no confirmed hypotheses")
	}
	// compute_forces dominates (700/800 of non-main time); within it,
	// node1's daemon holds 600/700 — the leaf should be the host-level
	// refinement.
	top := confirmed[0]
	if !strings.Contains(top.Name, "compute_forces") || !strings.Contains(top.Name, "node1") {
		t.Errorf("top confirmed = %q, want ExclusiveHost(compute_forces, node1 daemon)", top.Name)
	}
	if top.Share < 0.8 {
		t.Errorf("top share = %.2f, want ~0.86", top.Share)
	}
	// io (100/800 = 12.5%) must not be confirmed at the default 20%.
	for _, h := range confirmed {
		if strings.Contains(h.Name, "CPUBound(io)") {
			t.Errorf("io confirmed despite being under threshold: %v", h)
		}
	}
}

func TestSearchThresholdAndDepth(t *testing.T) {
	// With a tiny threshold, io confirms too.
	_, confirmed := Search(pcData(), SearchConfig{Threshold: 0.01, MaxDepth: 3})
	foundIO := false
	for _, h := range confirmed {
		if strings.Contains(h.Name, "io") {
			foundIO = true
		}
	}
	if !foundIO {
		t.Error("io not confirmed at 1% threshold")
	}
	// Depth 1: no host-level refinement.
	_, confirmed = Search(pcData(), SearchConfig{Threshold: 0.2, MaxDepth: 1})
	for _, h := range confirmed {
		if strings.Contains(h.Name, "ExclusiveHost") {
			t.Errorf("host refinement at depth 1: %v", h)
		}
	}
	if len(confirmed) == 0 || !strings.Contains(confirmed[0].Name, "CPUBound(compute_forces)") {
		t.Errorf("depth-1 confirmed = %v", confirmed)
	}
}

func TestSearchEmptyData(t *testing.T) {
	root, confirmed := Search(PerDaemonStats{}, DefaultSearchConfig())
	if root.Confirmed || len(confirmed) != 0 {
		t.Errorf("empty data: root=%v confirmed=%v", root.Confirmed, confirmed)
	}
}

func TestFormatSearch(t *testing.T) {
	root, _ := Search(pcData(), DefaultSearchConfig())
	out := FormatSearch(root)
	if !strings.Contains(out, "* TopLevel (100%)") {
		t.Errorf("missing confirmed root:\n%s", out)
	}
	if !strings.Contains(out, "* CPUBound(compute_forces)") {
		t.Errorf("missing confirmed why-hypothesis:\n%s", out)
	}
	if !strings.Contains(out, "  CPUBound(io)") || strings.Contains(out, "* CPUBound(io)") {
		t.Errorf("io should appear unconfirmed:\n%s", out)
	}
}

func TestConsultOnFrontEnd(t *testing.T) {
	fe := newFE(t, true)
	wc := fakeDaemon(t, fe.Addr(), "d1")
	if m, err := wc.Recv(); err != nil || m.Verb != "RUN" {
		t.Fatalf("RUN: %v %v", m, err)
	}
	for fn, us := range map[string]int{"hot": 900, "cold": 100} {
		wc.Send(mkSample(fn, 10, us))
	}
	wc.Send(mkDone("exit(0)"))
	if err := fe.WaitDone(1, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	root, confirmed := fe.Consult(DefaultSearchConfig())
	if !root.Confirmed || len(confirmed) == 0 {
		t.Fatalf("Consult found nothing: %s", FormatSearch(root))
	}
	if !strings.Contains(confirmed[0].Name, "hot") {
		t.Errorf("top = %q", confirmed[0].Name)
	}
}

func TestRenderHistogram(t *testing.T) {
	start := time.Now()
	var series []TimedSample
	// Cumulative time grows fast early, then flattens.
	for i := 0; i < 10; i++ {
		us := int64(i * 100)
		if i > 5 {
			us = 500 // flat
		}
		series = append(series, TimedSample{
			At:    start.Add(time.Duration(i) * 10 * time.Millisecond),
			Stats: FuncStats{Calls: int64(i), TimeMicros: us},
		})
	}
	out := RenderHistogram(series, "work", HistogramOptions{Buckets: 5, Width: 10})
	if !strings.Contains(out, "work over") {
		t.Errorf("header missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 6 { // header + 5 buckets
		t.Errorf("bucket lines wrong:\n%s", out)
	}
	// Early buckets have bars; the last (flat) bucket has none.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if strings.Contains(last, "#") {
		t.Errorf("flat tail bucket has a bar: %q", last)
	}
	// Empty series.
	if got := RenderHistogram(nil, "x", HistogramOptions{}); !strings.Contains(got, "no samples") {
		t.Errorf("empty series = %q", got)
	}
}

func TestVisualization(t *testing.T) {
	fe := newFE(t, true)
	wc := fakeDaemon(t, fe.Addr(), "d1")
	if m, err := wc.Recv(); err != nil || m.Verb != "RUN" {
		t.Fatalf("RUN: %v %v", m, err)
	}
	for i := 1; i <= 4; i++ {
		wc.Send(mkSample("hot", i, i*100))
		wc.Send(mkSample("cold", i, i*10))
	}
	wc.Send(mkDone("exit(0)"))
	if err := fe.WaitDone(1, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	out := fe.Visualization("d1", 1, HistogramOptions{Buckets: 4, Width: 8})
	if !strings.Contains(out, "hot over") || strings.Contains(out, "cold over") {
		t.Errorf("top-1 visualization wrong:\n%s", out)
	}
	if got := fe.Visualization("ghost", 1, HistogramOptions{}); !strings.Contains(got, "no data") {
		t.Errorf("unknown daemon viz = %q", got)
	}
}
