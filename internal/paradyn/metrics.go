// Package paradyn implements a miniature of the Paradyn Parallel
// Performance Tool (paper §4.2): a front-end process that users
// interact with, and per-host daemons (paradynd) that attach to
// application processes, insert dynamic instrumentation (counters and
// timers at function entry/exit — the Dyninst role), stream metric
// samples to the front-end, and support a simplified Performance
// Consultant that searches for the dominant bottleneck.
//
// The daemon is written against the TDP library only: it learns the
// application pid from the attribute space, attaches with tdp_attach,
// instruments while the process is still paused, reports readiness,
// and continues the process — exactly the §4.3 create-mode flow. The
// same daemon works in attach mode (already-running application)
// because tdp_attach pauses a running process first.
package paradyn

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// FuncStats is the instrumentation record for one function.
type FuncStats struct {
	Calls      int64
	TimeMicros int64 // cumulative inclusive time
}

// Metrics accumulates per-function statistics inside a daemon. Probe
// callbacks run on the application's goroutine; the daemon samples
// from its own, so access is locked.
type Metrics struct {
	mu      sync.Mutex
	stats   map[string]*FuncStats
	entries map[string]time.Time // entry timestamps for inclusive timing
}

// NewMetrics returns an empty metric store.
func NewMetrics() *Metrics {
	return &Metrics{
		stats:   make(map[string]*FuncStats),
		entries: make(map[string]time.Time),
	}
}

// OnEntry records a function entry.
func (m *Metrics) OnEntry(fn string) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats[fn]
	if s == nil {
		s = &FuncStats{}
		m.stats[fn] = s
	}
	s.Calls++
	m.entries[fn] = now
}

// OnExit records a function exit, accumulating inclusive time.
func (m *Metrics) OnExit(fn string) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if t0, ok := m.entries[fn]; ok {
		delete(m.entries, fn)
		if s := m.stats[fn]; s != nil {
			s.TimeMicros += now.Sub(t0).Microseconds()
		}
	}
}

// Snapshot copies the current statistics.
func (m *Metrics) Snapshot() map[string]FuncStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]FuncStats, len(m.stats))
	for k, v := range m.stats {
		out[k] = *v
	}
	return out
}

// Bottleneck finds the function with the largest share of inclusive
// time, excluding the given roots (normally "main", whose inclusive
// time covers everything). It returns the function, its share of the
// non-root total, and false when no data exists. This is the flat core
// of the Performance Consultant's search.
func Bottleneck(stats map[string]FuncStats, exclude ...string) (fn string, share float64, ok bool) {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	var total, best int64
	var bestFn string
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic tie-break
	for _, name := range names {
		if skip[name] {
			continue
		}
		t := stats[name].TimeMicros
		total += t
		if t > best {
			best, bestFn = t, name
		}
	}
	if total == 0 || bestFn == "" {
		return "", 0, false
	}
	return bestFn, float64(best) / float64(total), true
}

// FormatTable renders the statistics as the front-end's "histogram"
// display, sorted by time descending.
func FormatTable(stats map[string]FuncStats) string {
	type row struct {
		name string
		s    FuncStats
	}
	rows := make([]row, 0, len(stats))
	var total int64
	for name, s := range stats {
		rows = append(rows, row{name, s})
		total += s.TimeMicros
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].s.TimeMicros != rows[j].s.TimeMicros {
			return rows[i].s.TimeMicros > rows[j].s.TimeMicros
		}
		return rows[i].name < rows[j].name
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %10s %12s %7s\n", "FUNCTION", "CALLS", "TIME(us)", "SHARE")
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = float64(r.s.TimeMicros) / float64(total)
		}
		fmt.Fprintf(&sb, "%-24s %10d %12d %6.1f%%\n", r.name, r.s.Calls, r.s.TimeMicros, share*100)
	}
	return sb.String()
}

// Merge combines per-daemon statistics (e.g. across MPI ranks).
func Merge(all ...map[string]FuncStats) map[string]FuncStats {
	out := make(map[string]FuncStats)
	for _, m := range all {
		for k, v := range m {
			s := out[k]
			s.Calls += v.Calls
			s.TimeMicros += v.TimeMicros
			out[k] = s
		}
	}
	return out
}
