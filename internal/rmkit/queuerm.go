package rmkit

import (
	"fmt"
	"sync"
	"time"

	"tdp/internal/procsim"
	"tdp/internal/trace"
)

// QueueRM is a PBS/NQE-style batch queue: jobs enter a FIFO queue and
// a fixed set of worker hosts drains it, one job at a time per worker.
// It is the second extra resource manager in the m + n matrix.
type QueueRM struct {
	rec   *trace.Recorder
	hosts []*Host
	queue chan *QueuedJob

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
	nextID int
}

// QueuedJob is a job's handle in the queue.
type QueuedJob struct {
	ID   int
	Spec JobSpec

	done chan struct{}
	exit procsim.ExitStatus
	err  error
	host string
}

// Done returns a channel closed when the job finishes (or fails).
func (q *QueuedJob) Done() <-chan struct{} { return q.done }

// Result returns the exit status and error after Done.
func (q *QueuedJob) Result() (procsim.ExitStatus, error) { return q.exit, q.err }

// Host returns the worker host that ran the job.
func (q *QueuedJob) Host() string { return q.host }

// Wait blocks for completion with a timeout.
func (q *QueuedJob) Wait(timeout time.Duration) (procsim.ExitStatus, error) {
	select {
	case <-q.done:
		return q.exit, q.err
	case <-time.After(timeout):
		return procsim.ExitStatus{}, fmt.Errorf("rmkit: job %d still queued/running after %v", q.ID, timeout)
	}
}

// NewQueueRM boots a queue RM with the given number of worker hosts.
func NewQueueRM(workers int, rec *trace.Recorder) (*QueueRM, error) {
	if workers < 1 {
		workers = 1
	}
	rm := &QueueRM{rec: rec, queue: make(chan *QueuedJob, 1024)}
	for i := 0; i < workers; i++ {
		host, err := NewHost(fmt.Sprintf("queuerm-w%d", i))
		if err != nil {
			rm.Close()
			return nil, err
		}
		rm.hosts = append(rm.hosts, host)
		rm.wg.Add(1)
		go rm.worker(host)
	}
	return rm, nil
}

func (rm *QueueRM) worker(host *Host) {
	defer rm.wg.Done()
	for qj := range rm.queue {
		if rm.rec != nil {
			rm.rec.Record("queuerm", "dispatch", fmt.Sprintf("job=%d host=%s", qj.ID, host.Name))
		}
		qj.host = host.Name
		qj.exit, qj.err = Launch(host, fmt.Sprintf("qjob-%d", qj.ID), qj.Spec, rm.rec, "queuerm")
		close(qj.done)
	}
}

// Enqueue adds a job to the FIFO queue and returns its handle.
func (rm *QueueRM) Enqueue(spec JobSpec) (*QueuedJob, error) {
	rm.mu.Lock()
	if rm.closed {
		rm.mu.Unlock()
		return nil, fmt.Errorf("rmkit: queue RM closed")
	}
	rm.nextID++
	qj := &QueuedJob{ID: rm.nextID, Spec: spec, done: make(chan struct{})}
	rm.mu.Unlock()
	if rm.rec != nil {
		rm.rec.Record("queuerm", "enqueue", fmt.Sprintf("job=%d cmd=%s", qj.ID, spec.Name))
	}
	rm.queue <- qj
	return qj, nil
}

// Workers reports the number of worker hosts.
func (rm *QueueRM) Workers() int { return len(rm.hosts) }

// Close drains the queue (letting running jobs finish) and releases
// the worker hosts.
func (rm *QueueRM) Close() {
	rm.mu.Lock()
	if rm.closed {
		rm.mu.Unlock()
		return
	}
	rm.closed = true
	rm.mu.Unlock()
	close(rm.queue)
	rm.wg.Wait()
	for _, h := range rm.hosts {
		h.Close()
	}
}
