package rmkit

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tdp/internal/procsim"
	"tdp/internal/trace"
)

// ForkRM is the simplest possible resource manager: it runs each job
// immediately on its single host, the way an rsh/ssh launcher or a
// developer's shell would — no queueing, no matchmaking. It exists to
// show that even a trivial RM hosts every TDP tool once it calls
// Launch.
type ForkRM struct {
	host *Host
	rec  *trace.Recorder
	jobs atomic.Int64

	mu     sync.Mutex
	closed bool
}

// NewForkRM boots a fork RM with its own host.
func NewForkRM(rec *trace.Recorder) (*ForkRM, error) {
	host, err := NewHost("forkrm-host")
	if err != nil {
		return nil, err
	}
	return &ForkRM{host: host, rec: rec}, nil
}

// Host returns the RM's execution host.
func (rm *ForkRM) Host() *Host { return rm.host }

// Run executes the job synchronously and returns its exit status.
func (rm *ForkRM) Run(spec JobSpec) (procsim.ExitStatus, error) {
	rm.mu.Lock()
	if rm.closed {
		rm.mu.Unlock()
		return procsim.ExitStatus{}, fmt.Errorf("rmkit: fork RM closed")
	}
	rm.mu.Unlock()
	id := rm.jobs.Add(1)
	if rm.rec != nil {
		rm.rec.Record("forkrm", "run", spec.Name)
	}
	return Launch(rm.host, fmt.Sprintf("forkjob-%d", id), spec, rm.rec, "forkrm")
}

// Jobs reports how many jobs have been started.
func (rm *ForkRM) Jobs() int64 { return rm.jobs.Load() }

// Close releases the host.
func (rm *ForkRM) Close() {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if !rm.closed {
		rm.closed = true
		rm.host.Close()
	}
}
