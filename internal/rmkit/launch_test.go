package rmkit

import (
	"context"
	"strings"
	"testing"
	"time"

	"tdp"
	"tdp/internal/procsim"
	"tdp/internal/toolapi"
)

// minimalTool is a TDP tool that attaches, marks ready, continues, and
// waits for exit — the smallest real tool-side adapter.
func minimalTool() toolapi.Factory {
	return func(env toolapi.Env, args []string) procsim.Program {
		return procsim.ProgramFunc(func(pc *procsim.ProcContext) int {
			h, err := tdp.Init(tdp.Config{
				Context: env.Context, LASSAddr: env.LASSAddr, Dial: env.Dial,
				Kernel: env.Kernel, Identity: "mini",
			})
			if err != nil {
				return 1
			}
			defer h.Exit()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			pid, err := h.GetPID(ctx)
			if err != nil {
				return 1
			}
			p, err := h.Attach(pid)
			if err != nil {
				return 1
			}
			h.Put(tdp.AttrToolReady, "1")
			if err := p.Continue(); err != nil {
				return 1
			}
			if _, err := p.Wait(); err != nil {
				return 1
			}
			pc.Stdout().Write([]byte("mini done\n"))
			return 0
		})
	}
}

func TestLaunchWithTool(t *testing.T) {
	host, err := NewHost("h")
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer host.Close()
	var toolOut strings.Builder
	st, err := Launch(host, "ctx1", JobSpec{
		Name: "app", Program: procsim.NewExitingProgram(3), Symbols: procsim.StdSymbols,
		Tool: minimalTool(), ToolOut: &toolOut,
		Timeout: 30 * time.Second,
	}, nil, "rm")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if st.Code != 3 {
		t.Errorf("exit = %v", st)
	}
	if !strings.Contains(toolOut.String(), "mini done") {
		t.Errorf("tool output = %q", toolOut.String())
	}
}

func TestLaunchPausedWithoutToolTimesOut(t *testing.T) {
	// A paused job with no tool to continue it hits the timeout and is
	// killed — Launch must not hang.
	host, err := NewHost("h")
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer host.Close()
	_, err = Launch(host, "ctx2", JobSpec{
		Name: "app", Program: procsim.NewExitingProgram(0), Symbols: procsim.StdSymbols,
		Paused:  true,
		Timeout: 50 * time.Millisecond,
	}, nil, "rm")
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("err = %v, want exceeded-timeout error", err)
	}
}

func TestLaunchToolThatNeverExitsIsReaped(t *testing.T) {
	// A tool that lingers after the app exits gets killed by reapTool.
	host, err := NewHost("h")
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer host.Close()
	lingering := func(env toolapi.Env, args []string) procsim.Program {
		return procsim.ProgramFunc(func(pc *procsim.ProcContext) int {
			h, err := tdp.Init(tdp.Config{
				Context: env.Context, LASSAddr: env.LASSAddr,
				Kernel: env.Kernel, Identity: "linger",
			})
			if err != nil {
				return 1
			}
			defer h.Exit()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			pid, err := h.GetPID(ctx)
			if err != nil {
				return 1
			}
			p, err := h.Attach(pid)
			if err != nil {
				return 1
			}
			p.Continue()
			pc.Sleep(time.Hour) // never exits on its own
			return 0
		})
	}
	start := time.Now()
	st, err := Launch(host, "ctx3", JobSpec{
		Name: "app", Program: procsim.NewExitingProgram(0), Symbols: procsim.StdSymbols,
		Tool:    lingering,
		Timeout: 30 * time.Second,
	}, nil, "rm")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if st.Code != 0 {
		t.Errorf("exit = %v", st)
	}
	// reapTool's grace period is 5s; the launch must complete around it.
	if d := time.Since(start); d > 20*time.Second {
		t.Errorf("Launch took %v — tool reaping failed", d)
	}
}

func TestLaunchBadLASS(t *testing.T) {
	host, err := NewHost("h")
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	host.Close() // kill the LASS before launching
	_, err = Launch(host, "ctx4", JobSpec{
		Name: "app", Program: procsim.NewExitingProgram(0),
	}, nil, "rm")
	if err == nil {
		t.Error("Launch with dead LASS succeeded")
	}
}

func TestForkRMHostAccessor(t *testing.T) {
	rm, err := NewForkRM(nil)
	if err != nil {
		t.Fatalf("NewForkRM: %v", err)
	}
	defer rm.Close()
	if rm.Host() == nil || rm.Host().Kernel == nil {
		t.Error("Host accessor broken")
	}
}

func TestQueuedJobAccessors(t *testing.T) {
	rm, err := NewQueueRM(1, nil)
	if err != nil {
		t.Fatalf("NewQueueRM: %v", err)
	}
	defer rm.Close()
	qj, err := rm.Enqueue(JobSpec{Name: "x", Program: procsim.NewExitingProgram(2), Symbols: procsim.StdSymbols})
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	select {
	case <-qj.Done():
	case <-time.After(20 * time.Second):
		t.Fatal("job never finished")
	}
	st, err := qj.Result()
	if err != nil || st.Code != 2 {
		t.Errorf("Result = %v, %v", st, err)
	}
	if qj.Host() == "" {
		t.Error("Host empty after run")
	}
}
