package rmkit

import (
	"strings"
	"testing"
	"time"

	"tdp/internal/procsim"
	"tdp/internal/trace"
)

func TestForkRMPlainJob(t *testing.T) {
	rm, err := NewForkRM(nil)
	if err != nil {
		t.Fatalf("NewForkRM: %v", err)
	}
	defer rm.Close()
	st, err := rm.Run(JobSpec{
		Name: "exiter", Program: procsim.NewExitingProgram(4), Symbols: procsim.StdSymbols,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Code != 4 {
		t.Errorf("exit = %v", st)
	}
	if rm.Jobs() != 1 {
		t.Errorf("Jobs = %d", rm.Jobs())
	}
}

func TestForkRMStdio(t *testing.T) {
	rm, err := NewForkRM(nil)
	if err != nil {
		t.Fatalf("NewForkRM: %v", err)
	}
	defer rm.Close()
	var out strings.Builder
	st, err := rm.Run(JobSpec{
		Name: "echo", Program: procsim.NewEchoProgram("* "), Symbols: procsim.StdSymbols,
		Stdin: strings.NewReader("one\ntwo\n"), Stdout: &out,
	})
	if err != nil || st.Code != 2 {
		t.Fatalf("Run = %v, %v", st, err)
	}
	if out.String() != "* one\n* two\n" {
		t.Errorf("stdout = %q", out.String())
	}
}

func TestForkRMClosed(t *testing.T) {
	rm, err := NewForkRM(nil)
	if err != nil {
		t.Fatalf("NewForkRM: %v", err)
	}
	rm.Close()
	rm.Close() // idempotent
	if _, err := rm.Run(JobSpec{Name: "x", Program: procsim.NewExitingProgram(0)}); err == nil {
		t.Error("Run after Close succeeded")
	}
}

func TestForkRMJobTimeout(t *testing.T) {
	rm, err := NewForkRM(nil)
	if err != nil {
		t.Fatalf("NewForkRM: %v", err)
	}
	defer rm.Close()
	start := time.Now()
	st, err := rm.Run(JobSpec{
		Name: "spin", Program: procsim.NewSpinnerProgram(), Symbols: procsim.StdSymbols,
		Timeout: 50 * time.Millisecond,
	})
	if err == nil {
		t.Fatalf("timeout not reported, exit = %v", st)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout took far too long")
	}
}

func TestQueueRMFIFOAcrossWorkers(t *testing.T) {
	rm, err := NewQueueRM(2, nil)
	if err != nil {
		t.Fatalf("NewQueueRM: %v", err)
	}
	defer rm.Close()
	if rm.Workers() != 2 {
		t.Fatalf("Workers = %d", rm.Workers())
	}
	var jobs []*QueuedJob
	for i := 0; i < 6; i++ {
		qj, err := rm.Enqueue(JobSpec{
			Name: "exiter", Program: procsim.NewExitingProgram(i), Symbols: procsim.StdSymbols,
		})
		if err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
		jobs = append(jobs, qj)
	}
	hosts := make(map[string]int)
	for i, qj := range jobs {
		st, err := qj.Wait(20 * time.Second)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if st.Code != i {
			t.Errorf("job %d exit = %v", i, st)
		}
		hosts[qj.Host()]++
	}
	if len(hosts) != 2 {
		t.Errorf("expected both workers used, got %v", hosts)
	}
}

func TestQueueRMSerializesPerWorker(t *testing.T) {
	// One worker: jobs must run strictly one at a time, in order.
	rm, err := NewQueueRM(1, nil)
	if err != nil {
		t.Fatalf("NewQueueRM: %v", err)
	}
	defer rm.Close()
	var order []int
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	mk := func(i int) procsim.Program {
		return procsim.ProgramFunc(func(ctx *procsim.ProcContext) int {
			<-mu
			order = append(order, i)
			mu <- struct{}{}
			return 0
		})
	}
	var jobs []*QueuedJob
	for i := 0; i < 4; i++ {
		qj, _ := rm.Enqueue(JobSpec{Name: "seq", Program: mk(i)})
		jobs = append(jobs, qj)
	}
	for _, qj := range jobs {
		if _, err := qj.Wait(20 * time.Second); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestQueueRMClose(t *testing.T) {
	rm, err := NewQueueRM(1, nil)
	if err != nil {
		t.Fatalf("NewQueueRM: %v", err)
	}
	rm.Close()
	rm.Close() // idempotent
	if _, err := rm.Enqueue(JobSpec{Name: "x", Program: procsim.NewExitingProgram(0)}); err == nil {
		t.Error("Enqueue after Close succeeded")
	}
}

func TestLaunchRecordsTDPSequence(t *testing.T) {
	rec := trace.New()
	rm, err := NewForkRM(rec)
	if err != nil {
		t.Fatalf("NewForkRM: %v", err)
	}
	defer rm.Close()
	st, err := rm.Run(JobSpec{
		Name: "exiter", Program: procsim.NewExitingProgram(0), Symbols: procsim.StdSymbols,
	})
	if err != nil || st.Code != 0 {
		t.Fatalf("Run = %v, %v", st, err)
	}
	if err := rec.CheckOrder(
		"forkrm:run",
		"forkrm:tdp_init",
		"forkrm:tdp_create_process",
		"forkrm:tdp_exit",
	); err != nil {
		t.Error(err)
	}
}

func TestQueuedJobWaitTimeout(t *testing.T) {
	rm, err := NewQueueRM(1, nil)
	if err != nil {
		t.Fatalf("NewQueueRM: %v", err)
	}
	defer rm.Close()
	// A long job blocks the single worker.
	rm.Enqueue(JobSpec{Name: "sleep", Program: procsim.NewSleeperProgram(300 * time.Millisecond), Symbols: procsim.StdSymbols})
	qj, _ := rm.Enqueue(JobSpec{Name: "fast", Program: procsim.NewExitingProgram(0)})
	if _, err := qj.Wait(10 * time.Millisecond); err == nil {
		t.Error("Wait returned before worker reached the job")
	}
	if _, err := qj.Wait(20 * time.Second); err != nil {
		t.Errorf("final Wait: %v", err)
	}
}
