// Package rmkit provides two additional resource managers — a plain
// fork-style runner and a PBS-like FIFO queue — built on the same TDP
// library as the Condor miniature. Together with the three run-time
// tools (paradynd, tracer, debugger) they demonstrate the paper's
// central claim: porting m tools and n resource managers to TDP costs
// m + n adapters, after which all m × n pairings work. The whole
// RM-side adapter is the Launch function below.
package rmkit

import (
	"fmt"
	"io"
	"time"

	"tdp"
	"tdp/internal/attrspace"
	"tdp/internal/procsim"
	"tdp/internal/toolapi"
	"tdp/internal/trace"
)

// JobSpec describes one job for the rmkit resource managers.
type JobSpec struct {
	Name     string
	Program  procsim.Program
	Symbols  []string
	Args     []string
	Stdin    io.Reader
	Stdout   io.Writer
	Stderr   io.Writer
	Paused   bool // create the process suspended at exec (for tools)
	Tool     toolapi.Factory
	ToolArgs []string
	ToolOut  io.Writer
	ToolErr  io.Writer
	Timeout  time.Duration // 0 means 60s
}

// Host is the execution environment an rmkit RM runs jobs on: a
// process kernel plus a LASS. It is the rmkit equivalent of a condor
// Machine.
type Host struct {
	Name     string
	Kernel   *procsim.Kernel
	LASS     *attrspace.Server
	LASSAddr string
	Dial     attrspace.DialFunc
}

// NewHost boots an execution host with a loopback-TCP LASS.
func NewHost(name string) (*Host, error) {
	srv, addr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("rmkit: host %s: %w", name, err)
	}
	return &Host{Name: name, Kernel: procsim.NewKernel(), LASS: srv, LASSAddr: addr}, nil
}

// Close shuts down the host's LASS.
func (h *Host) Close() { h.LASS.Close() }

// Launch is the complete RM-side TDP integration: create the
// application (paused when a tool is present), launch the tool daemon,
// publish the pid, monitor status, wait for completion. Every rmkit RM
// — and in spirit, any RM — is this function plus scheduling policy.
func Launch(host *Host, jobCtx string, spec JobSpec, rec *trace.Recorder, rmIdentity string) (procsim.ExitStatus, error) {
	if spec.Timeout <= 0 {
		spec.Timeout = 60 * time.Second
	}
	h, err := tdp.Init(tdp.Config{
		Context:  jobCtx,
		LASSAddr: host.LASSAddr,
		Dial:     host.Dial,
		Kernel:   host.Kernel,
		Identity: rmIdentity,
		Trace:    rec,
	})
	if err != nil {
		return procsim.ExitStatus{}, err
	}
	defer h.Exit()

	mode := tdp.StartRun
	if spec.Paused || spec.Tool != nil {
		mode = tdp.StartPaused
	}
	ap, err := h.CreateProcess(tdp.ProcessSpec{
		Executable: spec.Name,
		Args:       spec.Args,
		Program:    spec.Program,
		Symbols:    spec.Symbols,
		Stdin:      spec.Stdin,
		Stdout:     spec.Stdout,
		Stderr:     spec.Stderr,
	}, mode)
	if err != nil {
		return procsim.ExitStatus{}, err
	}
	stopMon, err := h.MonitorProcess(ap)
	if err != nil {
		return procsim.ExitStatus{}, err
	}
	defer stopMon()

	var rt *tdp.Process
	if spec.Tool != nil {
		env := toolapi.Env{
			Machine:  host.Name,
			Kernel:   host.Kernel,
			LASSAddr: host.LASSAddr,
			Dial:     host.Dial,
			Context:  jobCtx,
			Trace:    rec,
		}
		rt, err = h.CreateProcess(tdp.ProcessSpec{
			Executable: "tool",
			Args:       spec.ToolArgs,
			Program:    spec.Tool(env, spec.ToolArgs),
			Stdout:     spec.ToolOut,
			Stderr:     spec.ToolErr,
		}, tdp.StartRun)
		if err != nil {
			ap.Kill("")
			return procsim.ExitStatus{}, fmt.Errorf("rmkit: launch tool: %w", err)
		}
		if err := h.PublishPID(ap); err != nil {
			ap.Kill("")
			rt.Kill("")
			return procsim.ExitStatus{}, err
		}
	}

	exit, err := waitWithTimeout(ap, spec.Timeout)
	if rt != nil {
		reapTool(rt)
	}
	return exit, err
}

func waitWithTimeout(p *tdp.Process, d time.Duration) (procsim.ExitStatus, error) {
	type result struct {
		exit procsim.ExitStatus
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		e, err := p.Wait()
		ch <- result{e, err}
	}()
	select {
	case r := <-ch:
		return r.exit, r.err
	case <-time.After(d):
		p.Kill("SIGKILL")
		r := <-ch
		if r.err != nil {
			return procsim.ExitStatus{}, fmt.Errorf("rmkit: job timed out: %w", r.err)
		}
		return r.exit, fmt.Errorf("rmkit: job exceeded %v and was killed", d)
	}
}

func reapTool(rt *tdp.Process) {
	done := make(chan struct{})
	go func() {
		rt.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		rt.Kill("SIGKILL")
		<-done
	}
}
