package proxy

import (
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tdp/internal/netsim"
	"tdp/internal/wire"
)

// privateNet builds the paper's Figure-1 topology: a desktop outside,
// a gateway, and a private node whose firewall admits only the gateway.
func privateNet() (nw *netsim.Network, desktop, gateway, node *netsim.Host) {
	nw = netsim.New()
	desktop = nw.AddHost("desktop")
	gateway = nw.AddHost("gateway")
	node = nw.AddHost("node1")
	nw.AddRule(netsim.BlockInbound("node1", "gateway"))
	nw.AddRule(netsim.BlockOutbound("node1", "gateway"))
	nw.AddRule(netsim.BlockInbound("desktop", "gateway"))
	return
}

// startEcho runs an echo server on host:port.
func startEcho(t *testing.T, h *netsim.Host, port int) {
	t.Helper()
	l, err := h.Listen(port)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c)
				c.Close()
			}(c)
		}
	}()
}

func TestDirectDialBlockedByFirewall(t *testing.T) {
	_, desktop, _, node := privateNet()
	startEcho(t, desktop, 2090)
	// The tool daemon on the private node cannot reach the desktop
	// front-end directly — the §2.4 premise.
	if _, err := node.Dial("desktop:2090"); !errors.Is(err, netsim.ErrBlocked) {
		t.Fatalf("direct dial err = %v, want ErrBlocked", err)
	}
}

func TestForwarderTunnelsThroughFirewall(t *testing.T) {
	_, desktop, gateway, node := privateNet()
	startEcho(t, desktop, 2090)

	// RM establishes a forwarder on the gateway aimed at the front-end.
	fw := NewForwarder(gateway.Dial, "desktop:2090")
	l, err := gateway.Listen(7000)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go fw.Serve(l)
	defer fw.Close()

	// The daemon dials the proxy address TDP handed out.
	c, err := node.Dial("gateway:7000")
	if err != nil {
		t.Fatalf("dial forwarder: %v", err)
	}
	defer c.Close()
	msg := []byte("paradynd metrics sample")
	go c.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != string(msg) {
		t.Errorf("echo = %q", buf)
	}
	tunnels, _ := fw.Stats()
	if tunnels != 1 {
		t.Errorf("tunnels = %d", tunnels)
	}
	// The byte counter is live-while-open: countWriter adds after the
	// relayed Write returns, so the echo can race back here before the
	// Add lands. Converge instead of asserting an instantaneous value.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, bytes := fw.Stats(); bytes >= int64(len(msg)) {
			break
		}
		if time.Now().After(deadline) {
			_, bytes := fw.Stats()
			t.Errorf("bytes = %d, want >= %d", bytes, len(msg))
			break
		}
		time.Sleep(time.Millisecond)
	}
}

func TestForwarderUpstreamFailure(t *testing.T) {
	_, _, gateway, node := privateNet()
	fw := NewForwarder(gateway.Dial, "desktop:9") // nothing listening
	l, _ := gateway.Listen(7001)
	go fw.Serve(l)
	defer fw.Close()
	c, err := node.Dial("gateway:7001")
	if err != nil {
		t.Fatalf("dial forwarder: %v", err)
	}
	defer c.Close()
	// The tunnel must close promptly when upstream dial fails.
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Error("read succeeded on dead tunnel")
	}
}

func TestForwarderClose(t *testing.T) {
	_, _, gateway, node := privateNet()
	fw := NewForwarder(gateway.Dial, "desktop:2090")
	l, _ := gateway.Listen(7002)
	done := make(chan error, 1)
	go func() { done <- fw.Serve(l) }()
	fw.Close()
	if err := <-done; err != nil {
		t.Errorf("Serve returned %v after Close", err)
	}
	if _, err := node.Dial("gateway:7002"); err == nil {
		t.Error("dial succeeded after Close")
	}
	if fw.Target() != "desktop:2090" {
		t.Errorf("Target = %q", fw.Target())
	}
}

func TestConnectProxy(t *testing.T) {
	_, desktop, gateway, node := privateNet()
	startEcho(t, desktop, 2090)

	srv := NewServer(gateway.Dial, nil)
	l, _ := gateway.Listen(8000)
	go srv.Serve(l)
	defer srv.Close()

	c, err := DialVia(node.Dial, "gateway:8000", "desktop:2090")
	if err != nil {
		t.Fatalf("DialVia: %v", err)
	}
	defer c.Close()
	msg := []byte("dynamic tunnel payload")
	go c.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != string(msg) {
		t.Errorf("echo = %q", buf)
	}
	tunnels, _ := srv.Stats()
	if tunnels != 1 {
		t.Errorf("tunnels = %d", tunnels)
	}
}

func TestConnectProxyAllowList(t *testing.T) {
	_, desktop, gateway, node := privateNet()
	startEcho(t, desktop, 2090)
	srv := NewServer(gateway.Dial, func(target string) bool {
		return target == "desktop:2090"
	})
	l, _ := gateway.Listen(8001)
	go srv.Serve(l)
	defer srv.Close()

	if _, err := DialVia(node.Dial, "gateway:8001", "desktop:666"); !errors.Is(err, ErrRejected) {
		t.Errorf("disallowed target err = %v, want ErrRejected", err)
	}
	c, err := DialVia(node.Dial, "gateway:8001", "desktop:2090")
	if err != nil {
		t.Fatalf("allowed target: %v", err)
	}
	c.Close()
}

func TestConnectProxyUpstreamFailure(t *testing.T) {
	_, _, gateway, node := privateNet()
	srv := NewServer(gateway.Dial, nil)
	l, _ := gateway.Listen(8002)
	go srv.Serve(l)
	defer srv.Close()
	if _, err := DialVia(node.Dial, "gateway:8002", "desktop:9"); !errors.Is(err, ErrRejected) {
		t.Errorf("err = %v, want ErrRejected with upstream error", err)
	}
}

func TestConnectProxyPipelinedBytes(t *testing.T) {
	// Bytes sent immediately behind the CONNECT frame must not be lost
	// in the handshake buffer.
	_, desktop, gateway, node := privateNet()
	startEcho(t, desktop, 2090)
	srv := NewServer(gateway.Dial, nil)
	l, _ := gateway.Listen(8003)
	go srv.Serve(l)
	defer srv.Close()

	raw, err := node.Dial("gateway:8003")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	wc := wire.NewConn(raw)
	// Send CONNECT and payload back-to-back before reading OK.
	if err := wc.Send(wire.NewMessage("CONNECT").Set("target", "desktop:2090")); err != nil {
		t.Fatalf("send: %v", err)
	}
	payload := []byte("early bytes")
	go raw.Write(payload)
	if reply, err := wc.Recv(); err != nil || reply.Verb != "OK" {
		t.Fatalf("handshake: %v %v", reply, err)
	}
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(wc.Detach(), buf); err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if string(buf) != string(payload) {
		t.Errorf("echo = %q", buf)
	}
	raw.Close()
}

func TestConcurrentTunnels(t *testing.T) {
	_, desktop, gateway, node := privateNet()
	startEcho(t, desktop, 2090)
	fw := NewForwarder(gateway.Dial, "desktop:2090")
	l, _ := gateway.Listen(7010)
	go fw.Serve(l)
	defer fw.Close()

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := node.Dial("gateway:7010")
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			defer c.Close()
			msg := []byte(fmt.Sprintf("tunnel-%d", i))
			go c.Write(msg)
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(c, buf); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if string(buf) != string(msg) {
				t.Errorf("tunnel %d echo = %q", i, buf)
			}
		}(i)
	}
	wg.Wait()
	tunnels, _ := fw.Stats()
	if tunnels != 10 {
		t.Errorf("tunnels = %d", tunnels)
	}
}

func TestForwarderOverRealTCP(t *testing.T) {
	// The same forwarder must work over the real loopback network.
	echoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer echoLn.Close()
	go func() {
		for {
			c, err := echoLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c)
				c.Close()
			}(c)
		}
	}()

	dial := func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	fw := NewForwarder(dial, echoLn.Addr().String())
	fwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go fw.Serve(fwLn)
	defer fw.Close()

	c, err := net.Dial("tcp", fwLn.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	msg := []byte("tcp forward")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != string(msg) {
		t.Errorf("echo = %q", buf)
	}
}

func TestConnectProxyToUnixTarget(t *testing.T) {
	// A CONNECT proxy wired with NetDial reaches a daemon on its
	// same-host fast-path socket: the tunnel client names the target as
	// "unix:/path" and the proxy bridges TCP to the unix listener.
	sock := filepath.Join(t.TempDir(), "echo.sock")
	echoLn, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen unix: %v", err)
	}
	defer echoLn.Close()
	go func() {
		for {
			c, err := echoLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c)
				c.Close()
			}(c)
		}
	}()

	srv := NewServer(NetDial, nil)
	pxLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(pxLn)
	defer srv.Close()

	c, err := DialVia(NetDial, pxLn.Addr().String(), "unix:"+sock)
	if err != nil {
		t.Fatalf("DialVia: %v", err)
	}
	defer c.Close()
	msg := []byte("through to the socket")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != string(msg) {
		t.Errorf("echo = %q", buf)
	}
}
