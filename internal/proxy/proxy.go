// Package proxy implements the resource manager's connection
// forwarding from §2.4 of the paper. When the application runs on a
// private network, the run-time tool daemon cannot dial its front-end
// directly; instead TDP hands the daemon "a host/port number pair"
// that is "that of the RM's proxy, which will be responsible for
// establishing the connection and forwarding inbound and outbound
// messages". TDP does not invent a new proxy — it standardizes the
// interface to one the RM already has.
//
// Two mechanisms are provided:
//
//   - Forwarder: a static port-forward. The RM binds a port on the
//     gateway and splices every accepted connection to one fixed
//     target (the tool front-end, or the stdio endpoint). The address
//     the RM publishes under tdp.AttrFrontendAddr is the forwarder's.
//
//   - Server: a CONNECT-style proxy for dynamic targets. The client
//     sends one framed CONNECT message naming "host:port"; the proxy
//     dials it and splices. Condor's actual mechanism (GCB) is
//     dynamic like this.
package proxy

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// DialFunc opens an onward connection from the proxy host.
type DialFunc func(addr string) (net.Conn, error)

// NetDial is the DialFunc for real networks: a "unix:/path" target
// dials that unix-domain socket, anything else TCP. Wiring it into a
// Forwarder or Server lets tunnel clients reach a daemon listening on
// the same-host fast-path socket through the proxy.
func NetDial(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Dial("unix", path)
	}
	return net.Dial("tcp", addr)
}

// ErrRejected is returned by DialVia when the proxy refuses the target.
var ErrRejected = errors.New("proxy: connect rejected")

// Forwarder forwards every connection accepted on a listener to one
// fixed target address.
type Forwarder struct {
	target string
	dial   DialFunc

	mu      sync.Mutex
	ln      net.Listener
	closed  bool
	tunnels int64
	bytes   atomic.Int64
	metrics proxyMetrics
}

// proxyMetrics mirrors a proxy's tunnel/byte accounting into a
// telemetry registry so STATS and monitor publication see relay
// traffic alongside everything else. Zero value is inert.
type proxyMetrics struct {
	tunnels *telemetry.Counter
	bytes   *telemetry.Counter
}

func (p *proxyMetrics) install(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	p.tunnels = reg.Counter("proxy.tunnels")
	p.bytes = reg.Counter("proxy.bytes")
}

func (p proxyMetrics) tunnelOpened() {
	if p.tunnels != nil {
		p.tunnels.Inc()
	}
}

// NewForwarder returns a forwarder to target using dial for onward
// connections.
func NewForwarder(dial DialFunc, target string) *Forwarder {
	return &Forwarder{target: target, dial: dial}
}

// Target returns the fixed destination.
func (f *Forwarder) Target() string { return f.target }

// Instrument mirrors tunnel and relayed-byte counts into reg
// ("proxy.tunnels", "proxy.bytes"). Call before Serve.
func (f *Forwarder) Instrument(reg *telemetry.Registry) {
	f.mu.Lock()
	f.metrics.install(reg)
	f.mu.Unlock()
}

// Serve accepts on l until Close; each connection is spliced to the
// target. It blocks; run in a goroutine.
func (f *Forwarder) Serve(l net.Listener) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		l.Close()
		return nil
	}
	f.ln = l
	f.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			f.mu.Lock()
			closed := f.closed
			f.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		f.mu.Lock()
		f.tunnels++
		m := f.metrics
		f.mu.Unlock()
		m.tunnelOpened()
		go f.tunnel(c, m)
	}
}

func (f *Forwarder) tunnel(client net.Conn, m proxyMetrics) {
	defer client.Close()
	upstream, err := f.dial(f.target)
	if err != nil {
		return
	}
	defer upstream.Close()
	splice(client, upstream, &f.bytes, m.bytes)
}

// Close stops the listener.
func (f *Forwarder) Close() {
	f.mu.Lock()
	f.closed = true
	ln := f.ln
	f.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Stats reports tunnels opened and payload bytes relayed (both
// directions).
func (f *Forwarder) Stats() (tunnels int64, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tunnels, f.bytes.Load()
}

// relayBufs pools the copy buffers splice uses. io.Copy against a
// plain writer allocates a fresh 32 KiB buffer per call — two per
// tunnel, for the whole life of short-lived tunnels a busy proxy
// churns through. The pool recycles them across tunnels.
var relayBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 32*1024)
		return &b
	},
}

// splice copies bidirectionally until either side closes, counting
// bytes into total and, when non-nil, into the mirrored registry
// counter.
func splice(a, b net.Conn, total *atomic.Int64, mirror *telemetry.Counter) {
	done := make(chan struct{}, 2)
	cp := func(dst, src net.Conn) {
		buf := relayBufs.Get().(*[]byte)
		io.CopyBuffer(countWriter{w: dst, total: total, mirror: mirror}, src, *buf)
		relayBufs.Put(buf)
		// Half-close where supported so the peer's reads terminate.
		type closeWriter interface{ CloseWrite() error }
		if cw, ok := dst.(closeWriter); ok {
			cw.CloseWrite()
		} else {
			dst.Close()
		}
		done <- struct{}{}
	}
	go cp(a, b)
	go cp(b, a)
	<-done
	<-done
}

// countWriter counts payload bytes as they are relayed so Stats is
// live while tunnels remain open.
type countWriter struct {
	w      io.Writer
	total  *atomic.Int64
	mirror *telemetry.Counter
}

func (c countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.total.Add(int64(n))
	if c.mirror != nil {
		c.mirror.Add(int64(n))
	}
	return n, err
}

// Server is the dynamic CONNECT proxy.
type Server struct {
	dial  DialFunc
	allow func(target string) bool

	mu      sync.Mutex
	ln      net.Listener
	closed  bool
	tunnels int64
	bytes   atomic.Int64
	metrics proxyMetrics
}

// NewServer returns a CONNECT proxy. allow filters target addresses;
// nil allows everything.
func NewServer(dial DialFunc, allow func(target string) bool) *Server {
	if allow == nil {
		allow = func(string) bool { return true }
	}
	return &Server{dial: dial, allow: allow}
}

// Instrument mirrors tunnel and relayed-byte counts into reg
// ("proxy.tunnels", "proxy.bytes"). Call before Serve.
func (s *Server) Instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	s.metrics.install(reg)
	s.mu.Unlock()
}

// Serve accepts proxy clients on l until Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.ln = l
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.handle(c)
	}
}

func (s *Server) handle(client net.Conn) {
	wc := wire.NewConn(client)
	m, err := wc.Recv()
	if err != nil || m.Verb != "CONNECT" {
		client.Close()
		return
	}
	target := m.Get("target")
	if !s.allow(target) {
		wc.Send(wire.NewMessage("REFUSED").Set("target", target))
		client.Close()
		return
	}
	upstream, err := s.dial(target)
	if err != nil {
		wc.Send(wire.NewMessage("REFUSED").Set("target", target).Set("error", err.Error()))
		client.Close()
		return
	}
	if err := wc.Send(wire.NewMessage("OK")); err != nil {
		client.Close()
		upstream.Close()
		return
	}
	s.mu.Lock()
	s.tunnels++
	pm := s.metrics
	s.mu.Unlock()
	pm.tunnelOpened()
	defer client.Close()
	defer upstream.Close()
	// Bytes the client sent right behind CONNECT may already sit in
	// the framed connection's buffer; read through it.
	splice(bufferedConn{Conn: client, r: wc.Detach()}, upstream, &s.bytes, pm.bytes)
}

// bufferedConn reads through a buffered reader (draining handshake
// leftovers) while other net.Conn methods pass through.
type bufferedConn struct {
	net.Conn
	r io.Reader
}

func (b bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }

// Close stops the listener.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Stats reports tunnels opened and payload bytes relayed.
func (s *Server) Stats() (tunnels int64, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tunnels, s.bytes.Load()
}

// DialVia opens a connection to target through the CONNECT proxy at
// proxyAddr, using dial for the proxy hop. On success the returned
// conn carries the end-to-end stream.
func DialVia(dial DialFunc, proxyAddr, target string) (net.Conn, error) {
	c, err := dial(proxyAddr)
	if err != nil {
		return nil, fmt.Errorf("proxy: dial proxy %s: %w", proxyAddr, err)
	}
	wc := wire.NewConn(c)
	if err := wc.Send(wire.NewMessage("CONNECT").Set("target", target)); err != nil {
		c.Close()
		return nil, err
	}
	reply, err := wc.Recv()
	if err != nil {
		c.Close()
		return nil, err
	}
	if reply.Verb != "OK" {
		c.Close()
		if msg := reply.Get("error"); msg != "" {
			return nil, fmt.Errorf("%w: %s: %s", ErrRejected, target, msg)
		}
		return nil, fmt.Errorf("%w: %s", ErrRejected, target)
	}
	return bufferedConn{Conn: c, r: wc.Detach()}, nil
}
