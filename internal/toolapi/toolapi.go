// Package toolapi defines the plug-in contract between resource
// managers and run-time tools in this reproduction. Any RM (the
// Condor miniature, the fork RM, the PBS-like queue RM) launches any
// tool (paradynd, the tracer, the debugger) through this one
// interface; the tools speak only TDP inside. This is the m + n
// structure the paper argues for: each RM implements "launch a tool
// factory with an Env", each tool implements "operate via TDP given an
// Env", and every pairing works without per-pair code.
package toolapi

import (
	"net"

	"tdp/internal/attrspace"
	"tdp/internal/procsim"
	"tdp/internal/trace"
)

// Env is everything a tool daemon needs to operate on its execution
// host: the machine's kernel (its "operating system"), the address of
// the machine's LASS, the dialer reaching it, and the TDP context for
// the job it monitors.
type Env struct {
	Machine  string
	Kernel   *procsim.Kernel
	LASSAddr string
	Dial     attrspace.DialFunc
	Context  string
	// Rank is the MPI rank this daemon monitors (0 for sequential jobs).
	Rank int
	// Trace receives the tool's TDP protocol steps (may be nil).
	Trace *trace.Recorder
	// NetListen binds a listener on the execution host (for tools or
	// auxiliary services that accept connections). Nil means loopback
	// TCP; machines on a simulated network set it to their host's
	// Listen.
	NetListen func() (net.Listener, error)
}

// Factory builds the tool daemon program from its environment and the
// tool arguments from the job description (e.g. ToolDaemonArgs).
type Factory func(env Env, args []string) procsim.Program

// AuxFactory launches an auxiliary service (the paper's third entity
// kind next to AP and RT — e.g. a multicast/reduction network node)
// on the execution host. parentAddr is the upstream endpoint the
// service forwards to (typically the tool front-end). It returns the
// address tools should connect to instead, and a shutdown function.
type AuxFactory func(env Env, args []string, parentAddr string) (addr string, shutdown func(), err error)
