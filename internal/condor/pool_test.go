package condor

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"tdp"
	"tdp/internal/procsim"
	"tdp/internal/trace"
)

// newTestPool builds a pool with n standard execute machines and the
// default program set registered.
func newTestPool(t *testing.T, n int, rec *trace.Recorder) *Pool {
	t.Helper()
	pool := NewPool(PoolOptions{Trace: rec, NegotiationTimeout: 2 * time.Second, JobTimeout: 30 * time.Second})
	t.Cleanup(pool.Close)
	for i := 0; i < n; i++ {
		_, err := pool.AddMachine(MachineConfig{
			Name:   fmt.Sprintf("node%d", i+1),
			Arch:   "INTEL",
			OpSys:  "LINUX",
			Memory: 128,
		})
		if err != nil {
			t.Fatalf("AddMachine: %v", err)
		}
	}
	registerTestPrograms(pool.Registry())
	return pool
}

func registerTestPrograms(reg *Registry) {
	reg.RegisterProgram("foo", func(args []string) (procsim.Program, []string) {
		phases := []procsim.PhaseSpec{{Name: "work", Units: 2}}
		return procsim.NewPhasedProgram(3, phases), procsim.PhasedSymbols(phases)
	})
	reg.RegisterProgram("exit7", func(args []string) (procsim.Program, []string) {
		return procsim.NewExitingProgram(7), procsim.StdSymbols
	})
	reg.RegisterProgram("echo", func(args []string) (procsim.Program, []string) {
		return procsim.NewEchoProgram("> "), procsim.StdSymbols
	})
}

// registerTestTool installs a minimal TDP run-time tool: it inits TDP,
// fetches the pid, attaches, instruments "work" when present, marks
// itself ready, continues the application, waits for the exit status
// through the attribute space, and reports probe counts on stdout.
func registerTestTool(reg *Registry, name string) {
	reg.RegisterTool(name, func(env ToolEnv, args []string) procsim.Program {
		return procsim.ProgramFunc(func(pc *procsim.ProcContext) int {
			h, err := tdp.Init(tdp.Config{
				Context:  env.Context,
				LASSAddr: env.LASSAddr,
				Dial:     env.Dial,
				Kernel:   env.Kernel,
				Identity: name,
				Trace:    env.Trace,
			})
			if err != nil {
				fmt.Fprintf(pc.Stderr(), "tool init: %v\n", err)
				return 1
			}
			defer h.Exit()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			pid, err := h.GetPID(ctx)
			if err != nil {
				fmt.Fprintf(pc.Stderr(), "tool getpid: %v\n", err)
				return 1
			}
			p, err := h.Attach(pid)
			if err != nil {
				fmt.Fprintf(pc.Stderr(), "tool attach: %v\n", err)
				return 1
			}
			calls := 0
			for _, sym := range p.Symbols() {
				if sym == "work" || sym == "compute" {
					p.InsertProbe(sym, func(*procsim.ProcContext) { calls++ }, nil)
				}
			}
			h.Put(tdp.AttrToolReady, "1")
			if err := p.Continue(); err != nil {
				fmt.Fprintf(pc.Stderr(), "tool continue: %v\n", err)
				return 1
			}
			status, err := h.WaitStatus(ctx, "exited:")
			if err != nil {
				fmt.Fprintf(pc.Stderr(), "tool waitstatus: %v\n", err)
				return 1
			}
			fmt.Fprintf(pc.Stdout(), "tool %s observed %s with %d probe hits\n", name, status, calls)
			return 0
		})
	})
}

func TestVanillaJobRuns(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	jobs, err := pool.Submit("universe = Vanilla\nexecutable = exit7\nqueue\n")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	st, err := jobs[0].WaitExit(10 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if st.Code != 7 {
		t.Errorf("exit = %v", st)
	}
	if jobs[0].Status() != StatusCompleted {
		t.Errorf("status = %v", jobs[0].Status())
	}
	if jobs[0].Machine() != "node1" {
		t.Errorf("machine = %q", jobs[0].Machine())
	}
}

func TestJobStdioThroughShadow(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	pool.SubmitFiles().Write("infile", []byte("hello\ncondor\n"))
	jobs, err := pool.Submit("executable = echo\ninput = infile\noutput = outfile\nqueue\n")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := jobs[0].WaitExit(10 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if st.Code != 2 { // echo exits with line count
		t.Errorf("exit = %v", st)
	}
	if got := jobs[0].Output(); got != "> hello\n> condor\n" {
		t.Errorf("output = %q", got)
	}
	// Output file transferred back to the submit machine.
	data, ok := pool.SubmitFiles().Read("outfile")
	if !ok || string(data) != "> hello\n> condor\n" {
		t.Errorf("outfile = %q, %v", data, ok)
	}
}

func TestUnknownExecutableHoldsJob(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	jobs, _ := pool.Submit("executable = nosuch\nqueue\n")
	<-jobs[0].Done()
	if jobs[0].Status() != StatusHeld {
		t.Fatalf("status = %v", jobs[0].Status())
	}
	if !strings.Contains(jobs[0].HoldReason(), "no such executable") {
		t.Errorf("hold reason = %q", jobs[0].HoldReason())
	}
}

func TestMissingTransferInputHoldsJob(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	jobs, _ := pool.Submit("executable = exit7\ntransfer_input_files = missing.cfg\nqueue\n")
	<-jobs[0].Done()
	if jobs[0].Status() != StatusHeld {
		t.Fatalf("status = %v", jobs[0].Status())
	}
}

func TestTransferInputStaged(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	pool.SubmitFiles().Write("tool.cfg", []byte("cfg"))
	jobs, _ := pool.Submit("executable = exit7\ntransfer_input_files = tool.cfg\nqueue\n")
	if _, err := jobs[0].WaitExit(10 * time.Second); err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if !pool.Machine("node1").Files().Exists("tool.cfg") {
		t.Error("input file not staged to execute machine")
	}
}

func TestNoMatchingMachineHolds(t *testing.T) {
	pool := NewPool(PoolOptions{NegotiationTimeout: 100 * time.Millisecond})
	t.Cleanup(pool.Close)
	pool.AddMachine(MachineConfig{Name: "small", Arch: "INTEL", OpSys: "LINUX", Memory: 1})
	registerTestPrograms(pool.Registry())
	jobs, _ := pool.Submit("executable = exit7\nimage_size = 999999999\nqueue\n")
	<-jobs[0].Done()
	if jobs[0].Status() != StatusHeld {
		t.Fatalf("status = %v, want Held", jobs[0].Status())
	}
}

func TestRequirementsSelectMachine(t *testing.T) {
	pool := NewPool(PoolOptions{NegotiationTimeout: 2 * time.Second})
	t.Cleanup(pool.Close)
	pool.AddMachine(MachineConfig{Name: "linuxbox", Arch: "INTEL", OpSys: "LINUX", Memory: 128})
	pool.AddMachine(MachineConfig{Name: "sunbox", Arch: "SPARC", OpSys: "SOLARIS", Memory: 512})
	registerTestPrograms(pool.Registry())
	jobs, err := pool.Submit(`executable = exit7
requirements = Arch == "SPARC"
queue
`)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := jobs[0].WaitExit(10 * time.Second); err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if jobs[0].Machine() != "sunbox" {
		t.Errorf("machine = %q, want sunbox", jobs[0].Machine())
	}
}

func TestRankPrefersBiggerMachine(t *testing.T) {
	pool := NewPool(PoolOptions{NegotiationTimeout: 2 * time.Second})
	t.Cleanup(pool.Close)
	pool.AddMachine(MachineConfig{Name: "small", Arch: "INTEL", OpSys: "LINUX", Memory: 64})
	pool.AddMachine(MachineConfig{Name: "big", Arch: "INTEL", OpSys: "LINUX", Memory: 1024})
	registerTestPrograms(pool.Registry())
	jobs, _ := pool.Submit("executable = exit7\nrank = Memory\nqueue\n")
	if _, err := jobs[0].WaitExit(10 * time.Second); err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if jobs[0].Machine() != "big" {
		t.Errorf("machine = %q, want big", jobs[0].Machine())
	}
}

func TestQueueManyJobsAcrossMachines(t *testing.T) {
	pool := newTestPool(t, 3, nil)
	jobs, err := pool.Submit("executable = exit7\nqueue 6\n")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	machines := make(map[string]int)
	for _, j := range jobs {
		if _, err := j.WaitExit(20 * time.Second); err != nil {
			t.Fatalf("job %d: %v", j.ID, err)
		}
		machines[j.Machine()]++
	}
	if len(machines) == 0 {
		t.Fatal("no machines used")
	}
	total := 0
	for _, n := range machines {
		total += n
	}
	if total != 6 {
		t.Errorf("jobs placed = %d", total)
	}
}

func TestClaimingProtocolRefusal(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	sd := pool.Startd("node1")
	if err := sd.RequestClaim("other-schedd"); err != nil {
		t.Fatalf("claim: %v", err)
	}
	if err := sd.RequestClaim("schedd"); err == nil {
		t.Error("second claim by different schedd accepted")
	}
	// Same claimant may re-claim.
	if err := sd.RequestClaim("other-schedd"); err != nil {
		t.Errorf("re-claim by holder: %v", err)
	}
	if sd.ClaimedBy() != "other-schedd" {
		t.Errorf("ClaimedBy = %q", sd.ClaimedBy())
	}
	sd.ReleaseClaim("other-schedd")
	if sd.ClaimedBy() != "" {
		t.Error("claim not released")
	}
	// Releasing by a non-holder is a no-op.
	sd.RequestClaim("a")
	sd.ReleaseClaim("b")
	if sd.ClaimedBy() != "a" {
		t.Error("release by non-holder cleared claim")
	}
	sd.ReleaseClaim("a")
}

func TestActivateWithoutClaimFails(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	sd := pool.Startd("node1")
	_, err := sd.Activate(&ActivationRequest{Schedd: "schedd", Submit: &SubmitFile{Executable: "exit7"}})
	if err == nil {
		t.Error("activation without claim succeeded")
	}
}

// TestFigure4CondorFlow asserts the daemon interaction sequence of the
// paper's Figure 4: submit → matchmaker negotiation → claim → shadow →
// starter → job → status return.
func TestFigure4CondorFlow(t *testing.T) {
	rec := trace.New()
	pool := newTestPool(t, 1, rec)
	jobs, err := pool.Submit("executable = exit7\nqueue\n")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := jobs[0].WaitExit(10 * time.Second); err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if err := rec.CheckOrder(
		"schedd:submit",
		"schedd:spawn_shadow",
		"matchmaker:negotiate",
		"startd:claim_accepted",
		"shadow:activate",
		"startd:spawn_starter",
		"starter:spawn_job",
		"starter:job_exit",
		"shadow:final_status",
	); err != nil {
		t.Error(err)
	}
	// The machine is advertised before any job arrives.
	if !rec.Before("matchmaker", "advertise_machine", "schedd", "submit") {
		t.Error("machine advertisement did not precede submission")
	}
}

// TestFigure6LaunchSteps runs the paper's Figure 5B job (adapted to
// the test registry) and asserts the starter/tool TDP call sequence of
// Figure 6: tdp_init → create(AP, paused) → create(tool) → put(pid) →
// tool init/get/attach/continue.
func TestFigure6LaunchSteps(t *testing.T) {
	rec := trace.New()
	pool := newTestPool(t, 1, rec)
	registerTestTool(pool.Registry(), "testtool")
	pool.SubmitFiles().Write("infile", []byte(""))
	pool.SubmitFiles().Write("testtool", []byte("binary"))

	submit := strings.ReplaceAll(figure5B, `"paradynd"`, `"testtool"`)
	submit = strings.ReplaceAll(submit, "tranfer_input_files = paradynd", "tranfer_input_files = testtool")
	jobs, err := pool.Submit(submit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := jobs[0].WaitExit(20 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if st.Code != 0 {
		t.Errorf("exit = %v", st)
	}

	if err := rec.CheckOrder(
		"starter:tdp_init",
		"starter:tdp_create_process", // AP, paused
		"starter:spawn_job",
		"starter:tdp_create_process", // tool, run
		"starter:spawn_tool",
		"starter:tdp_put", // pid
		"testtool:tdp_init",
		"testtool:tdp_get",
		"testtool:tdp_attach",
		"testtool:tdp_continue_process",
		"starter:job_exit",
	); err != nil {
		t.Error(err)
	}

	// The AP must have been created paused (SuspendJobAtExec).
	found := false
	for _, e := range rec.ByActor("starter") {
		if e.Action == "tdp_create_process" && e.Detail == "foo,paused" {
			found = true
		}
	}
	if !found {
		t.Error("application was not created paused")
	}

	// Tool output file came back to the submit machine.
	data, ok := pool.SubmitFiles().Read("daemon.out")
	if !ok {
		t.Fatal("daemon.out not transferred back")
	}
	if !strings.Contains(string(data), "probe hits") {
		t.Errorf("daemon.out = %q", data)
	}
	if !strings.Contains(jobs[0].ToolOutput(), "exited:exit(0)") {
		t.Errorf("tool output = %q", jobs[0].ToolOutput())
	}
}

func TestToolObservesEveryWorkCall(t *testing.T) {
	// The create-paused handshake means the tool's probes see the very
	// first call — the whole point of §2.2 case 2.
	pool := newTestPool(t, 1, nil)
	registerTestTool(pool.Registry(), "tool")
	jobs, err := pool.Submit(`executable = foo
+SuspendJobAtExec = True
+ToolDaemonCmd = "tool"
+ToolDaemonOutput = "t.out"
queue
`)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := jobs[0].WaitExit(20 * time.Second); err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if !strings.Contains(jobs[0].ToolOutput(), "3 probe hits") {
		t.Errorf("tool output = %q, want 3 probe hits (one per work call)", jobs[0].ToolOutput())
	}
}

func TestPidMarkerPassedThroughToTool(t *testing.T) {
	// The paper's -a%pid marker is NOT substituted by the starter: it
	// tells the starter to put the pid into the LASS and the tool to
	// get it from there (§4.3).
	pool := newTestPool(t, 1, nil)
	argsCh := make(chan []string, 1)
	pool.Registry().RegisterTool("argtool", func(env ToolEnv, args []string) procsim.Program {
		return procsim.ProgramFunc(func(pc *procsim.ProcContext) int {
			argsCh <- args
			// Continue the paused app so the job finishes.
			h, err := tdp.Init(tdp.Config{
				Context: env.Context, LASSAddr: env.LASSAddr, Dial: env.Dial,
				Kernel: env.Kernel, Identity: "argtool",
			})
			if err != nil {
				return 1
			}
			defer h.Exit()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			pid, err := h.GetPID(ctx)
			if err != nil {
				return 1
			}
			p, err := h.Attach(pid)
			if err != nil {
				return 1
			}
			p.Continue()
			return 0
		})
	})
	jobs, err := pool.Submit(`executable = exit7
+SuspendJobAtExec = True
+ToolDaemonCmd = "argtool"
+ToolDaemonArgs = "-a%pid -x"
queue
`)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := jobs[0].WaitExit(20 * time.Second); err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	args := <-argsCh
	if len(args) != 2 || args[1] != "-x" {
		t.Fatalf("args = %v", args)
	}
	if args[0] != "-a%pid" {
		t.Errorf("pid arg = %q, want the -a%%pid marker passed through", args[0])
	}
	// The starter put the pid into the LASS; the tool fetched it there
	// (the job completed, which required GetPID to succeed).
}

func TestMPIUniverseRing(t *testing.T) {
	pool := newTestPool(t, 4, nil)
	registerRing(pool.Registry())
	jobs, err := pool.Submit("universe = MPI\nexecutable = ring\nmachine_count = 4\nqueue\n")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := jobs[0].WaitExit(30 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	// Rank 0 exits with the number of hops = N-1 (token visited every
	// other rank once before returning).
	if st.Code != 3 {
		t.Errorf("ring hops = %d, want 3", st.Code)
	}
	if got := jobs[0].RanksDone(); got != 4 {
		t.Errorf("ranks done = %d", got)
	}
	if got := len(jobs[0].Machines()); got != 4 {
		t.Errorf("machines = %v", jobs[0].Machines())
	}
}

func TestMPIInsufficientMachinesHolds(t *testing.T) {
	pool := NewPool(PoolOptions{NegotiationTimeout: 100 * time.Millisecond})
	t.Cleanup(pool.Close)
	pool.AddMachine(MachineConfig{Name: "only", Arch: "INTEL", OpSys: "LINUX", Memory: 128})
	registerRing(pool.Registry())
	jobs, _ := pool.Submit("universe = MPI\nexecutable = ring\nmachine_count = 3\nqueue\n")
	<-jobs[0].Done()
	if jobs[0].Status() != StatusHeld {
		t.Fatalf("status = %v", jobs[0].Status())
	}
	// Failed negotiation must not leak claims.
	mm := pool.Matchmaker()
	if mm.Claimed("only") {
		t.Error("machine left claimed after failed MPI negotiation")
	}
}

func TestPoolDuplicateMachine(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	if _, err := pool.AddMachine(MachineConfig{Name: "node1", Arch: "X", OpSys: "Y", Memory: 1}); err == nil {
		t.Error("duplicate machine accepted")
	}
}

func TestMatchmakerStats(t *testing.T) {
	rec := trace.New()
	pool := newTestPool(t, 1, rec)
	jobs, _ := pool.Submit("executable = exit7\nqueue\n")
	jobs[0].WaitExit(10 * time.Second)
	matches, _ := pool.Matchmaker().Stats()
	if matches < 1 {
		t.Errorf("matches = %d", matches)
	}
	if got := pool.Matchmaker().Machines(); len(got) != 1 || got[0] != "node1" {
		t.Errorf("Machines = %v", got)
	}
}

func TestQueueSummary(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	jobs, _ := pool.Submit("executable = exit7\nqueue 2\n")
	for _, j := range jobs {
		j.WaitExit(15 * time.Second)
	}
	out := pool.QueueSummary()
	if !strings.Contains(out, "exit7") || !strings.Contains(out, "Completed") {
		t.Errorf("summary:\n%s", out)
	}
	if !strings.Contains(out, "2 jobs") || !strings.Contains(out, "2 completed") {
		t.Errorf("counts wrong:\n%s", out)
	}
}
