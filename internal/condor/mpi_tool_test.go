package condor

import (
	"strings"
	"testing"
	"time"

	"tdp/internal/mpisim"
	"tdp/internal/procsim"
	"tdp/internal/trace"
)

func registerRing(reg *Registry) {
	reg.RegisterProgram("ring", func(args []string) (procsim.Program, []string) {
		return mpisim.NewRingProgram(), mpisim.RingSymbols
	})
}

// TestMPIUniverseWithToolDaemon reproduces the paper's §4.3 MPI
// experiment: an MPI job where every rank is created paused, gets its
// own tool daemon attached, and only then runs; rank 0 starts first
// and the remaining ranks are held until rank 0's tool is in control.
func TestMPIUniverseWithToolDaemon(t *testing.T) {
	rec := trace.New()
	pool := newTestPool(t, 3, rec)
	registerRing(pool.Registry())
	registerTestTool(pool.Registry(), "testtool")

	jobs, err := pool.Submit(`universe = MPI
executable = ring
machine_count = 3
+SuspendJobAtExec = True
+ToolDaemonCmd = "testtool"
+ToolDaemonOutput = "mpi-tool.out"
queue
`)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := jobs[0].WaitExit(40 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if st.Code != 2 { // 3-rank ring: 2 hops
		t.Errorf("exit = %v, want exit(2)", st)
	}
	if jobs[0].RanksDone() != 3 {
		t.Errorf("ranks done = %d", jobs[0].RanksDone())
	}

	// Rank 0 was activated before the tool-ready gate; ranks 1, 2 after.
	if err := rec.CheckOrder(
		"shadow:activate",         // rank 0
		"shadow:rank0_tool_ready", // gate
		"shadow:activate",         // rank 1
		"shadow:activate",         // rank 2
		"shadow:final_status",
	); err != nil {
		t.Error(err)
	}

	// Each rank's tool attached and observed the exit: three tool
	// reports in the combined output.
	if got := strings.Count(jobs[0].ToolOutput(), "probe hits"); got != 3 {
		t.Errorf("tool reports = %d, want 3:\n%s", got, jobs[0].ToolOutput())
	}
}

func TestMPIWorldRegistry(t *testing.T) {
	w := mpisim.Register(4)
	if w.Size() != 4 {
		t.Errorf("Size = %d", w.Size())
	}
	got, err := mpisim.Lookup(w.ID())
	if err != nil || got != w {
		t.Fatalf("Lookup: %v", err)
	}
	mpisim.Unregister(w.ID())
	if _, err := mpisim.Lookup(w.ID()); err == nil {
		t.Error("Lookup after Unregister succeeded")
	}
}

func TestMPIRankArgParsing(t *testing.T) {
	args := mpisim.RankArgs([]string{"a"}, "world-9")
	args = append(args, "--mpi-rank=2", "--mpi-size=5")
	rank, size, world := mpisim.ParseRankArgs(args)
	if rank != 2 || size != 5 || world != "world-9" {
		t.Errorf("parsed = %d %d %q", rank, size, world)
	}
	// Defaults when flags are absent.
	rank, size, world = mpisim.ParseRankArgs([]string{"plain"})
	if rank != 0 || size != 1 || world != "" {
		t.Errorf("defaults = %d %d %q", rank, size, world)
	}
}
