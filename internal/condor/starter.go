package condor

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"tdp"
	"tdp/internal/procsim"
	"tdp/internal/telemetry"
)

// ActivationRequest is everything the shadow sends to the execute
// machine to run one job instance (one rank, for MPI).
type ActivationRequest struct {
	Schedd  string // claiming schedd name
	JobID   int
	Submit  *SubmitFile
	Context string // TDP attribute space context for this instance
	Rank    int    // MPI rank; 0 for sequential jobs
	Ranks   int    // MPI world size; 1 for sequential jobs

	// Stdio endpoints on the submit side (the shadow performs the
	// job's I/O at the submit machine, §4.1).
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer

	// SubmitFiles is the submit machine's file store, the source for
	// transfer_input_files staging and the destination for tool output
	// files transferred back.
	SubmitFiles *FileStore

	// ToolReady, when non-nil, receives one signal when the tool
	// daemon reports initialization complete (tdp.AttrToolReady) —
	// used by the MPI shadow to hold back ranks 1..N-1 until rank 0's
	// tool is in control.
	ToolReady chan<- struct{}

	// Report receives the job's final status exactly once.
	Report func(StarterReport)

	// Timeout bounds the whole execution; 0 means no bound.
	Timeout time.Duration

	// RestartData resumes a standard-universe job from a checkpoint
	// captured on a previous (vacated) execution.
	RestartData string
}

// StarterReport is the starter's completion message to the shadow.
type StarterReport struct {
	JobID   int
	Machine string
	Rank    int
	Exit    procsim.ExitStatus
	Err     error // non-nil when the job could not be run
	ToolOut []byte
	ToolErr []byte
	// Checkpoint carries the job's last saved checkpoint (standard
	// universe); the shadow uses it to resume after a vacate.
	Checkpoint    string
	HasCheckpoint bool
}

// Starter is the entity that spawns and supervises the job on the
// execute machine (§4.1), extended with the paper's §4.3 TDP sequence
// when the submit file carries ToolDaemon entries.
type Starter struct {
	sd  *Startd
	req *ActivationRequest

	mu sync.Mutex
	ap *tdp.Process // the running application, for Vacate
}

// Vacate reclaims the machine: the application is killed with
// SIGVACATE after its checkpoint (if any) is safe, and the shadow
// restarts standard-universe jobs elsewhere.
func (st *Starter) Vacate() error {
	st.mu.Lock()
	ap := st.ap
	st.mu.Unlock()
	if ap == nil {
		return fmt.Errorf("condor: job %d not running here", st.req.JobID)
	}
	st.record("vacate", fmt.Sprintf("job=%d", st.req.JobID))
	return ap.Kill("SIGVACATE")
}

func (st *Starter) setAP(ap *tdp.Process) {
	st.mu.Lock()
	st.ap = ap
	st.mu.Unlock()
}

// Suspend pauses the job at its next safe point (condor_hold style).
// A job controlled by an attached tool cannot be suspended by the RM —
// process control belongs to exactly one entity at a time (§2.3); the
// RM coordinates with the tool through the attribute space instead.
func (st *Starter) Suspend() error {
	st.mu.Lock()
	ap := st.ap
	st.mu.Unlock()
	if ap == nil {
		return fmt.Errorf("condor: job %d not running here", st.req.JobID)
	}
	st.record("suspend", fmt.Sprintf("job=%d", st.req.JobID))
	return ap.Stop()
}

// Resume continues a suspended job.
func (st *Starter) Resume() error {
	st.mu.Lock()
	ap := st.ap
	st.mu.Unlock()
	if ap == nil {
		return fmt.Errorf("condor: job %d not running here", st.req.JobID)
	}
	st.record("resume", fmt.Sprintf("job=%d", st.req.JobID))
	return ap.Continue()
}

func newStarter(sd *Startd, req *ActivationRequest) *Starter {
	return &Starter{sd: sd, req: req}
}

func (st *Starter) record(action, detail string) {
	if st.sd.rec != nil {
		st.sd.rec.Record("starter", action, detail)
	}
}

// run executes the job and reports. It is the starter's main line.
func (st *Starter) run() {
	defer st.sd.starterDone(st)
	report := st.execute()
	report.JobID = st.req.JobID
	report.Machine = st.sd.machine.Name()
	report.Rank = st.req.Rank
	if st.req.Report != nil {
		st.req.Report(report)
	}
}

func (st *Starter) execute() StarterReport {
	req := st.req
	machine := st.sd.machine

	// Stage input files from the submit machine (transfer_input_files).
	for _, f := range req.Submit.TransferInput {
		if !req.SubmitFiles.CopyTo(machine.Files(), f) {
			return StarterReport{Err: fmt.Errorf("condor: transfer_input_files: %q not found on submit machine", f)}
		}
		st.record("transfer_input", f)
	}

	// Resolve the executable on this machine.
	exe, err := st.sd.registry.Program(req.Submit.Executable)
	if err != nil {
		return StarterReport{Err: err}
	}
	args := append([]string(nil), req.Submit.Arguments...)
	if req.Submit.Universe == UniverseMPI {
		args = append(args, fmt.Sprintf("--mpi-rank=%d", req.Rank), fmt.Sprintf("--mpi-size=%d", req.Ranks))
	}
	program, symbols := exe(args)

	// Input: a named input file is staged content; otherwise the
	// shadow-provided stream.
	stdin := req.Stdin
	if req.Submit.Input != "" {
		data, ok := machine.Files().Read(req.Submit.Input)
		if !ok {
			// Fall back to the submit store (models shadow remote I/O).
			data, ok = req.SubmitFiles.Read(req.Submit.Input)
		}
		if !ok {
			return StarterReport{Err: fmt.Errorf("condor: input file %q not found", req.Submit.Input)}
		}
		stdin = bytes.NewReader(data)
	}

	spec := tdp.ProcessSpec{
		Executable:  req.Submit.Executable,
		Args:        args,
		Program:     program,
		Symbols:     symbols,
		Stdin:       stdin,
		Stdout:      req.Stdout,
		Stderr:      req.Stderr,
		RestartData: req.RestartData,
	}

	if req.Submit.ToolDaemon == nil {
		return st.runPlain(spec)
	}
	return st.runWithTool(spec)
}

// runPlain is the classic starter path: spawn the job, wait, report.
func (st *Starter) runPlain(spec tdp.ProcessSpec) StarterReport {
	machine := st.sd.machine
	h, err := tdp.Init(tdp.Config{
		Context:  st.req.Context,
		LASSAddr: machine.LASSAddr(),
		Dial:     machine.Dial(),
		Kernel:   machine.Kernel(),
		Identity: "starter",
		Trace:    st.sd.rec,
	})
	if err != nil {
		return StarterReport{Err: err}
	}
	defer h.Exit()

	mode := tdp.StartRun
	if st.req.Submit.SuspendJobAtExec {
		// Suspended-at-exec without a tool makes no sense; honor it
		// anyway — something else may continue the job via the kernel.
		mode = tdp.StartPaused
	}
	ap, err := h.CreateProcess(spec, mode)
	if err != nil {
		return StarterReport{Err: err}
	}
	st.setAP(ap)
	st.record("spawn_job", spec.Executable)
	telemetry.Default().Counter("condor.jobs.started").Inc()
	exit, err := st.waitProcess(ap)
	if err != nil {
		return StarterReport{Err: err}
	}
	st.record("job_exit", exit.String())
	ck, hasCk := ap.CheckpointData()
	return StarterReport{Exit: exit, Checkpoint: ck, HasCheckpoint: hasCk}
}

// runWithTool is the §4.3 Figure-6 sequence:
//
//	Step 1: starter tdp_init, then tdp_create_process(AP, paused);
//	Step 2: starter tdp_create_process(paradynd, run);
//	Step 3: paradynd tdp_init, blocking tdp_get("pid"); starter
//	        tdp_put("pid"); paradynd tdp_attach + tdp_continue;
//	Step 4: the tool controls the application as usual.
func (st *Starter) runWithTool(spec tdp.ProcessSpec) StarterReport {
	req := st.req
	machine := st.sd.machine
	td := req.Submit.ToolDaemon

	// The tool daemon executable may itself have been staged.
	tool, err := st.sd.registry.Tool(td.Cmd)
	if err != nil {
		return StarterReport{Err: err}
	}

	// Step 1: initialize the TDP framework (creates/joins the LASS
	// context through which starter and tool communicate).
	h, err := tdp.Init(tdp.Config{
		Context:  req.Context,
		LASSAddr: machine.LASSAddr(),
		Dial:     machine.Dial(),
		Kernel:   machine.Kernel(),
		Identity: "starter",
		Trace:    st.sd.rec,
	})
	if err != nil {
		return StarterReport{Err: err}
	}
	defer h.Exit()

	mode := tdp.StartRun
	if req.Submit.SuspendJobAtExec {
		mode = tdp.StartPaused
	}
	ap, err := h.CreateProcess(spec, mode)
	if err != nil {
		return StarterReport{Err: err}
	}
	st.setAP(ap)
	st.record("spawn_job", spec.Executable+","+mode.String())
	telemetry.Default().Counter("condor.jobs.started").Inc()

	// The RM owns status monitoring (§2.3): publish process state
	// transitions into the attribute space for the tool to observe.
	stopMon, err := h.MonitorProcess(ap)
	if err != nil {
		return StarterReport{Err: err}
	}
	defer stopMon()

	// The "complete TDP framework" of §4.3: instead of hard-coding the
	// front-end ports in the tool arguments, the submit file (or the
	// CASS, via the submitter) carries the front-end address and the
	// starter disseminates it as an attribute value; a tool with no -m/-p
	// arguments reads it from the LASS. The address may be the RM's
	// proxy when a firewall separates the networks (§2.4).
	frontendAddr := req.Submit.ExtraAttrs["FrontendAddr"]

	// Auxiliary service (§2's AS bullet): when the submit file asks for
	// one, the starter launches it pointed at the front-end and hands
	// the tool the SERVICE's address instead — transparent interposition
	// (a reduction-network node, a trace collector, ...). The RM, not
	// the tool, owns this launch.
	if as := req.Submit.AuxService; as != nil {
		auxFactory, err := st.sd.registry.Aux(as.Cmd)
		if err != nil {
			ap.Kill("")
			return StarterReport{Err: err}
		}
		env := ToolEnv{
			Machine: machine.Name(), Kernel: machine.Kernel(),
			LASSAddr: machine.LASSAddr(), Dial: machine.Dial(),
			Context: req.Context, Rank: req.Rank, Trace: st.sd.rec,
			NetListen: machine.Listen,
		}
		auxAddr, shutdown, err := auxFactory(env, as.Args, frontendAddr)
		if err != nil {
			ap.Kill("")
			return StarterReport{Err: fmt.Errorf("condor: launch aux service: %w", err)}
		}
		defer shutdown()
		st.record("spawn_aux", as.Cmd+"@"+auxAddr)
		frontendAddr = auxAddr
	}

	if frontendAddr != "" {
		if err := h.Put(tdp.AttrFrontendAddr, frontendAddr); err != nil {
			return StarterReport{Err: err}
		}
	}

	// Watch for the tool's ready mark to release MPI rank holds.
	if req.ToolReady != nil {
		ready := req.ToolReady
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := h.Get(ctx, tdp.AttrToolReady); err == nil {
				ready <- struct{}{}
			}
		}()
	}

	// Step 2: launch the tool daemon as a regular (running) process.
	var toolOut, toolErr bytes.Buffer
	env := ToolEnv{
		Machine:  machine.Name(),
		Kernel:   machine.Kernel(),
		LASSAddr: machine.LASSAddr(),
		Dial:     machine.Dial(),
		Context:  req.Context,
		Rank:     req.Rank,
		Trace:    st.sd.rec,
	}
	// The tool's arguments pass through verbatim, including the paper's
	// "-a%pid" marker: it shows "which information the starter should
	// put into LASS and which information should paradynd get from
	// there" (§4.3) — the starter puts AttrPID below and the tool,
	// finding no concrete process reference in its argv, fetches it.
	toolArgs := append([]string(nil), td.Args...)
	rt, err := h.CreateProcess(tdp.ProcessSpec{
		Executable: td.Cmd,
		Args:       toolArgs,
		Program:    tool(env, toolArgs),
		Stdout:     &toolOut,
		Stderr:     &toolErr,
	}, tdp.StartRun)
	if err != nil {
		ap.Kill("")
		return StarterReport{Err: fmt.Errorf("condor: launch tool daemon: %w", err)}
	}
	st.record("spawn_tool", td.Cmd)
	telemetry.Default().Counter("condor.tools.launched").Inc()

	// Step 3 (starter half): publish the application pid. The tool is
	// blocked in tdp_get("pid") until this put lands.
	if err := h.PublishPID(ap); err != nil {
		ap.Kill("")
		rt.Kill("")
		return StarterReport{Err: err}
	}

	// Step 4: the tool attaches, instruments, continues, and controls
	// the application; the starter waits for the application to finish.
	exit, err := st.waitProcess(ap)
	if err != nil {
		rt.Kill("")
		return StarterReport{Err: err}
	}
	st.record("job_exit", exit.String())

	// Give the tool a grace period to wind down, then reap it.
	st.reapTool(rt)

	// Transfer the tool's output files back to the submit machine
	// (+ToolDaemonOutput / +ToolDaemonError).
	if td.Output != "" {
		req.SubmitFiles.Write(td.Output, toolOut.Bytes())
		st.record("transfer_tool_output", td.Output)
	}
	if td.Error != "" {
		req.SubmitFiles.Write(td.Error, toolErr.Bytes())
	}
	ck, hasCk := ap.CheckpointData()
	return StarterReport{
		Exit: exit, ToolOut: toolOut.Bytes(), ToolErr: toolErr.Bytes(),
		Checkpoint: ck, HasCheckpoint: hasCk,
	}
}

// waitProcess waits for exit, honoring the request timeout.
func (st *Starter) waitProcess(p *tdp.Process) (procsim.ExitStatus, error) {
	if st.req.Timeout <= 0 {
		return p.Wait()
	}
	type result struct {
		exit procsim.ExitStatus
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		e, err := p.Wait()
		ch <- result{e, err}
	}()
	select {
	case r := <-ch:
		return r.exit, r.err
	case <-time.After(st.req.Timeout):
		p.Kill("SIGKILL")
		r := <-ch
		if r.err != nil {
			return procsim.ExitStatus{}, fmt.Errorf("condor: job timed out: %w", r.err)
		}
		return r.exit, fmt.Errorf("condor: job exceeded %v and was killed", st.req.Timeout)
	}
}

// reapTool waits briefly for the tool daemon to exit on its own (it
// normally does, once the application it monitors is gone) and kills
// it otherwise.
func (st *Starter) reapTool(rt *tdp.Process) {
	done := make(chan struct{})
	go func() {
		rt.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		rt.Kill("SIGKILL")
		<-done
	}
}
