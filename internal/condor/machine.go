package condor

import (
	"fmt"
	"net"
	"sync"

	"tdp/internal/attrspace"
	"tdp/internal/classad"
	"tdp/internal/netsim"
	"tdp/internal/procsim"
)

// MachineConfig describes an execute machine for the pool.
type MachineConfig struct {
	Name   string
	Arch   string // e.g. "INTEL"
	OpSys  string // e.g. "LINUX"
	Memory int64  // MB
	Cpus   int
	// NetHost places the machine on a simulated network; nil uses real
	// loopback TCP for its LASS.
	NetHost *netsim.Host
}

// Machine is one execute node: its own procsim kernel ("the OS"), its
// own LASS (paper: "each host on which an application process runs
// has a local instance of the attribute space server"), a file store
// for staged input/output, and a machine ClassAd for matchmaking.
type Machine struct {
	cfg    MachineConfig
	kernel *procsim.Kernel
	dial   attrspace.DialFunc
	files  *FileStore
	ad     *classad.Ad

	mu       sync.Mutex
	lass     *attrspace.Server
	lassAddr string
}

// NewMachine boots an execute machine: starts its LASS and builds its
// classad. Close the machine to release the server.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if cfg.Cpus == 0 {
		cfg.Cpus = 1
	}
	m := &Machine{
		cfg:    cfg,
		kernel: procsim.NewKernel(),
		files:  NewFileStore(),
	}
	m.lass = attrspace.NewServer()
	if cfg.NetHost != nil {
		l, err := cfg.NetHost.Listen(0)
		if err != nil {
			return nil, fmt.Errorf("condor: machine %s: %w", cfg.Name, err)
		}
		go m.lass.Serve(l)
		m.lassAddr = l.Addr().String()
		m.dial = func(addr string) (net.Conn, error) { return cfg.NetHost.Dial(addr) }
	} else {
		addr, err := m.lass.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("condor: machine %s: %w", cfg.Name, err)
		}
		m.lassAddr = addr
		m.dial = nil // default TCP dial
	}

	ad := classad.NewAd()
	ad.SetString("Name", cfg.Name)
	ad.SetString("Arch", cfg.Arch)
	ad.SetString("OpSys", cfg.OpSys)
	ad.SetInt("Memory", cfg.Memory)
	ad.SetInt("Cpus", int64(cfg.Cpus))
	ad.SetString("State", "Unclaimed")
	// Machines accept jobs whose image fits in memory; jobs without an
	// ImageSize are admitted (undefined handled via isUndefined).
	ad.SetExpr("Requirements", "isUndefined(TARGET.ImageSize) || TARGET.ImageSize <= (MY.Memory * 1024)")
	m.ad = ad
	return m, nil
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.cfg.Name }

// Kernel returns the machine's process kernel.
func (m *Machine) Kernel() *procsim.Kernel { return m.kernel }

// LASSAddr returns the address of the machine's local attribute space
// server. The address is stable across LASS restarts.
func (m *Machine) LASSAddr() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lassAddr
}

// LASS returns the machine's attribute space server (for inspection in
// tests and experiments).
func (m *Machine) LASS() *attrspace.Server {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lass
}

// RestartLASS replaces a dead (or live) attribute space server with a
// fresh one bound to the same address — what condor_master does when a
// daemon it supervises dies. In-memory attribute state is lost, as
// with any daemon restart; clients reconnect and repopulate.
func (m *Machine) RestartLASS() error {
	m.mu.Lock()
	old := m.lass
	addr := m.lassAddr
	m.mu.Unlock()
	old.Close()

	srv := attrspace.NewServer()
	if m.cfg.NetHost != nil {
		_, port, err := netsim.SplitAddr(addr)
		if err != nil {
			return fmt.Errorf("condor: restart LASS: %w", err)
		}
		l, err := m.cfg.NetHost.Listen(port)
		if err != nil {
			return fmt.Errorf("condor: restart LASS: %w", err)
		}
		go srv.Serve(l)
	} else {
		if _, err := srv.ListenAndServe(addr); err != nil {
			return fmt.Errorf("condor: restart LASS: %w", err)
		}
	}
	m.mu.Lock()
	m.lass = srv
	m.mu.Unlock()
	return nil
}

// Dial returns the dialer that reaches this machine's services (nil
// means real TCP).
func (m *Machine) Dial() attrspace.DialFunc { return m.dial }

// Listen binds a new listener on this machine: on its simulated
// network host when it has one, otherwise loopback TCP.
func (m *Machine) Listen() (net.Listener, error) {
	if m.cfg.NetHost != nil {
		return m.cfg.NetHost.Listen(0)
	}
	return net.Listen("tcp", "127.0.0.1:0")
}

// Files returns the machine's staged file store.
func (m *Machine) Files() *FileStore { return m.files }

// Ad returns a snapshot of the machine's ClassAd.
func (m *Machine) Ad() *classad.Ad { return m.ad.Clone() }

// Close shuts down the machine's LASS.
func (m *Machine) Close() { m.LASS().Close() }

// FileStore is a tiny in-memory filesystem used to model file staging:
// transfer_input_files moves bytes from the submit node's store to the
// machine's store before the job starts, and tool output files move
// back after it completes (§2's "tool daemon configuration and data
// files").
type FileStore struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewFileStore returns an empty store.
func NewFileStore() *FileStore {
	return &FileStore{files: make(map[string][]byte)}
}

// Write stores a file (replacing any previous content).
func (fs *FileStore) Write(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	fs.files[name] = cp
}

// Read returns a copy of a file's content.
func (fs *FileStore) Read(name string) ([]byte, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[name]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true
}

// Exists reports whether the file is present.
func (fs *FileStore) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// Names returns the stored file names (unordered).
func (fs *FileStore) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	return out
}

// CopyTo transfers a file into another store; it reports whether the
// source existed.
func (fs *FileStore) CopyTo(dst *FileStore, name string) bool {
	data, ok := fs.Read(name)
	if !ok {
		return false
	}
	dst.Write(name, data)
	return true
}
