// Package condor implements a functional miniature of the Condor
// high-throughput batch system (paper §4.1): submit machine daemons
// (schedd, shadow), execute machine daemons (startd, starter), the
// matchmaker, ClassAd-based matchmaking, the claiming protocol, and
// the Vanilla and MPI universes — extended with the paper's TDP
// integration (§4.3): the +SuspendJobAtExec and ToolDaemon* submit
// directives, the starter's tdp_create_process(paused) launch path,
// and pid publication through the per-machine LASS.
//
// Processes execute on the procsim kernel of each simulated machine;
// attribute spaces are real LASS servers; the pool's control plane is
// in-process message passing whose protocol steps are recorded in a
// trace so Figure 4's daemon interactions can be asserted.
package condor

import (
	"fmt"
	"strconv"
	"strings"
)

// Universe is a Condor execution environment.
type Universe int

const (
	// UniverseVanilla runs unmodified sequential jobs.
	UniverseVanilla Universe = iota
	// UniverseMPI runs MPICH jobs across machine_count machines.
	UniverseMPI
	// UniverseStandard runs checkpointable jobs that survive vacate:
	// when the machine is reclaimed, the job's checkpoint migrates and
	// execution resumes elsewhere (§4.1 mentions checkpointing among
	// Condor's mechanisms; programs opt in via SaveCheckpoint).
	UniverseStandard
)

// String names the universe as in submit files.
func (u Universe) String() string {
	switch u {
	case UniverseVanilla:
		return "Vanilla"
	case UniverseMPI:
		return "MPI"
	case UniverseStandard:
		return "Standard"
	default:
		return fmt.Sprintf("universe(%d)", int(u))
	}
}

// ToolDaemonSpec carries the paper's ToolDaemon* submit entries: the
// description of the run-time tool the starter must launch next to the
// job (Figure 5B).
type ToolDaemonSpec struct {
	Cmd    string   // +ToolDaemonCmd: tool executable name
	Args   []string // +ToolDaemonArgs
	Output string   // +ToolDaemonOutput: file receiving tool stdout
	Error  string   // +ToolDaemonError: file receiving tool stderr
	Input  string   // +ToolDaemonInput
}

// AuxServiceSpec describes an auxiliary service the starter launches
// next to the job and tool — the paper's third entity kind (e.g. a
// multicast/reduction network node that interposes between the tool
// daemon and its front-end).
type AuxServiceSpec struct {
	Cmd  string   // +AuxServiceCmd: service name in the registry
	Args []string // +AuxServiceArgs
}

// SubmitFile is a parsed job submit description.
type SubmitFile struct {
	Universe          Universe
	Executable        string
	Arguments         []string
	Input             string
	Output            string
	Error             string
	TransferFiles     string   // "always", "never", ...
	TransferInput     []string // transfer_input_files
	MachineCount      int      // MPI universe node count
	Requirements      string   // ClassAd expression source
	Rank              string   // ClassAd expression source
	SuspendJobAtExec  bool     // +SuspendJobAtExec: create job paused
	ToolDaemon        *ToolDaemonSpec
	AuxService        *AuxServiceSpec
	Queue             int               // number of job instances
	ExtraAttrs        map[string]string // other +Attr entries
	ImageSizeKB       int64             // image_size
	UnrecognizedLines []string
}

// ParseSubmit parses a Condor submit description. It accepts the
// dialect of Figure 5B, including the paper's own typo
// ("tranfer_input_files") alongside the correct spelling.
func ParseSubmit(src string) (*SubmitFile, error) {
	sf := &SubmitFile{
		Universe:   UniverseVanilla,
		ExtraAttrs: make(map[string]string),
	}
	var td ToolDaemonSpec
	tdUsed := false
	var aux AuxServiceSpec
	auxUsed := false
	sawQueue := false

	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lower := strings.ToLower(line)
		if lower == "queue" {
			sf.Queue++
			sawQueue = true
			continue
		}
		if strings.HasPrefix(lower, "queue ") {
			n, err := strconv.Atoi(strings.TrimSpace(line[6:]))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("condor: line %d: bad queue count %q", lineNo+1, line)
			}
			sf.Queue += n
			sawQueue = true
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			sf.UnrecognizedLines = append(sf.UnrecognizedLines, line)
			continue
		}
		key := strings.TrimSpace(line[:eq])
		value := strings.TrimSpace(line[eq+1:])
		value = unquote(value)

		switch strings.ToLower(key) {
		case "universe":
			switch strings.ToLower(value) {
			case "vanilla":
				sf.Universe = UniverseVanilla
			case "mpi":
				sf.Universe = UniverseMPI
			case "standard":
				sf.Universe = UniverseStandard
			default:
				return nil, fmt.Errorf("condor: line %d: unsupported universe %q", lineNo+1, value)
			}
		case "executable":
			sf.Executable = value
		case "arguments":
			sf.Arguments = SplitArgs(value)
		case "input":
			sf.Input = value
		case "output":
			sf.Output = value
		case "error":
			sf.Error = value
		case "transfer_files":
			sf.TransferFiles = strings.ToLower(value)
		case "transfer_input_files", "tranfer_input_files": // paper's Figure 5B typo
			for _, f := range strings.Split(value, ",") {
				f = strings.TrimSpace(f)
				if f != "" {
					sf.TransferInput = append(sf.TransferInput, f)
				}
			}
		case "machine_count":
			n, err := strconv.Atoi(value)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("condor: line %d: bad machine_count %q", lineNo+1, value)
			}
			sf.MachineCount = n
		case "requirements":
			sf.Requirements = value
		case "rank":
			sf.Rank = value
		case "image_size":
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("condor: line %d: bad image_size %q", lineNo+1, value)
			}
			sf.ImageSizeKB = n
		case "+suspendjobatexec":
			sf.SuspendJobAtExec = parseBool(value)
		case "+tooldaemoncmd":
			td.Cmd = value
			tdUsed = true
		case "+tooldaemonargs", "+tooldaemonarguments":
			td.Args = SplitArgs(value)
			tdUsed = true
		case "+tooldaemonoutput":
			td.Output = value
			tdUsed = true
		case "+tooldaemonerror":
			td.Error = value
			tdUsed = true
		case "+tooldaemoninput":
			td.Input = value
			tdUsed = true
		case "+auxservicecmd":
			aux.Cmd = value
			auxUsed = true
		case "+auxserviceargs", "+auxservicearguments":
			aux.Args = SplitArgs(value)
			auxUsed = true
		default:
			if strings.HasPrefix(key, "+") {
				sf.ExtraAttrs[key[1:]] = value
			} else {
				sf.UnrecognizedLines = append(sf.UnrecognizedLines, line)
			}
		}
	}
	if tdUsed {
		sf.ToolDaemon = &td
	}
	if auxUsed {
		sf.AuxService = &aux
	}
	if !sawQueue {
		return nil, fmt.Errorf("condor: submit file has no queue statement")
	}
	if sf.Executable == "" {
		return nil, fmt.Errorf("condor: submit file has no executable")
	}
	if sf.Universe == UniverseMPI && sf.MachineCount == 0 {
		sf.MachineCount = 1
	}
	if sf.ToolDaemon != nil && sf.ToolDaemon.Cmd == "" {
		return nil, fmt.Errorf("condor: ToolDaemon entries present but no +ToolDaemonCmd")
	}
	if sf.AuxService != nil && sf.AuxService.Cmd == "" {
		return nil, fmt.Errorf("condor: AuxService entries present but no +AuxServiceCmd")
	}
	return sf, nil
}

func parseBool(v string) bool {
	switch strings.ToLower(v) {
	case "true", "yes", "1":
		return true
	default:
		return false
	}
}

func unquote(v string) string {
	if len(v) >= 2 && v[0] == '"' && v[len(v)-1] == '"' {
		return v[1 : len(v)-1]
	}
	return v
}

// SplitArgs splits an argument string on whitespace, honoring double
// quotes: `a "b c" d` → [a, b c, d].
func SplitArgs(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}
