package condor

import (
	"sync"
	"sync/atomic"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/trace"
)

// Master supervises a machine's daemons the way condor_master does
// ("its job is to keep track of the other Condor daemons", §4.1): it
// pings the machine's LASS and restarts it on the same address when it
// dies. Together with the faults package (which detects the failure
// and notifies other entities) this closes the fault-handling loop for
// the AS entity class.
type Master struct {
	machine  *Machine
	interval time.Duration
	rec      *trace.Recorder

	restarts atomic.Int64
	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewMaster starts supervision of the machine's LASS; interval <= 0
// defaults to 20ms.
func NewMaster(machine *Machine, interval time.Duration, rec *trace.Recorder) *Master {
	if interval <= 0 {
		interval = 20 * time.Millisecond
	}
	m := &Master{machine: machine, interval: interval, rec: rec, stopCh: make(chan struct{})}
	m.wg.Add(1)
	go m.loop()
	return m
}

func (m *Master) record(action, detail string) {
	if m.rec != nil {
		m.rec.Record("master", action, detail)
	}
}

func (m *Master) loop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-ticker.C:
			if m.ping() == nil {
				continue
			}
			// Confirm once before restarting — a single failed dial
			// can be transient.
			if m.ping() == nil {
				continue
			}
			m.record("daemon_died", "lass@"+m.machine.Name())
			if err := m.machine.RestartLASS(); err != nil {
				m.record("restart_failed", err.Error())
				continue
			}
			m.restarts.Add(1)
			m.record("daemon_restarted", "lass@"+m.machine.Name())
		}
	}
}

// ping performs one health probe of the LASS.
func (m *Master) ping() error {
	c, err := attrspace.Dial(m.machine.Dial(), m.machine.LASSAddr(), "master-probe")
	if err != nil {
		return err
	}
	defer c.Close()
	return c.Put("ping", "1")
}

// Restarts reports how many times the master restarted the LASS.
func (m *Master) Restarts() int64 { return m.restarts.Load() }

// Close stops supervision.
func (m *Master) Close() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	m.wg.Wait()
}
