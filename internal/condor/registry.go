package condor

import (
	"fmt"
	"sync"

	"tdp/internal/procsim"
	"tdp/internal/toolapi"
)

// Executable is a program available on the execute machines: the
// simulator's stand-in for a binary on a shared filesystem or staged
// with transfer_input_files. The factory receives the job arguments
// and returns the program plus its symbol table.
type Executable func(args []string) (procsim.Program, []string)

// ToolEnv is the environment handed to a tool daemon factory; see
// package toolapi, which defines the RM-neutral contract.
type ToolEnv = toolapi.Env

// Tool builds the tool daemon program from its environment and the
// ToolDaemonArgs from the submit file. This is where paradynd (and the
// other run-time tools) plug into the starter.
type Tool = toolapi.Factory

// Aux launches an auxiliary service next to the job (the §2 bullet:
// "the RM must be aware of and willing to launch this second kind of
// non-application entity").
type Aux = toolapi.AuxFactory

// Registry resolves executable and tool names on the execute machines.
// One registry is shared by a pool — the analog of identical software
// installations across the cluster.
type Registry struct {
	mu    sync.Mutex
	progs map[string]Executable
	tools map[string]Tool
	auxes map[string]Aux
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		progs: make(map[string]Executable),
		tools: make(map[string]Tool),
		auxes: make(map[string]Aux),
	}
}

// RegisterProgram installs an application executable by name.
func (r *Registry) RegisterProgram(name string, e Executable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.progs[name] = e
}

// RegisterTool installs a run-time tool by name (ToolDaemonCmd value).
func (r *Registry) RegisterTool(name string, t Tool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tools[name] = t
}

// Program resolves an executable name.
func (r *Registry) Program(name string) (Executable, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.progs[name]
	if !ok {
		return nil, fmt.Errorf("condor: no such executable %q", name)
	}
	return e, nil
}

// Tool resolves a tool daemon name.
func (r *Registry) Tool(name string) (Tool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tools[name]
	if !ok {
		return nil, fmt.Errorf("condor: no such tool daemon %q", name)
	}
	return t, nil
}

// RegisterAux installs an auxiliary service by name (AuxServiceCmd).
func (r *Registry) RegisterAux(name string, a Aux) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.auxes[name] = a
}

// Aux resolves an auxiliary service name.
func (r *Registry) Aux(name string) (Aux, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.auxes[name]
	if !ok {
		return nil, fmt.Errorf("condor: no such auxiliary service %q", name)
	}
	return a, nil
}
