package condor

import (
	"testing"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/netsim"
	"tdp/internal/trace"
)

func waitRestart(t *testing.T, m *Master, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.Restarts() < want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if m.Restarts() < want {
		t.Fatalf("restarts = %d, want >= %d", m.Restarts(), want)
	}
}

func TestMasterRestartsDeadLASS(t *testing.T) {
	rec := trace.New()
	machine, err := NewMachine(MachineConfig{Name: "m", Arch: "INTEL", OpSys: "LINUX", Memory: 64})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	defer machine.Close()
	master := NewMaster(machine, 5*time.Millisecond, rec)
	defer master.Close()
	addr := machine.LASSAddr()

	// Healthy: no restarts.
	time.Sleep(30 * time.Millisecond)
	if master.Restarts() != 0 {
		t.Fatalf("spurious restarts: %d", master.Restarts())
	}

	// Kill the daemon.
	machine.LASS().Close()
	waitRestart(t, master, 1)

	// Same address, working again.
	if machine.LASSAddr() != addr {
		t.Errorf("address changed across restart: %q -> %q", addr, machine.LASSAddr())
	}
	c, err := attrspace.Dial(nil, addr, "after")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	defer c.Close()
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("put after restart: %v", err)
	}
	if err := rec.CheckOrder("master:daemon_died", "master:daemon_restarted"); err != nil {
		t.Error(err)
	}
}

func TestMasterOnSimulatedNetwork(t *testing.T) {
	nw := netsim.New()
	host := nw.AddHost("node1")
	machine, err := NewMachine(MachineConfig{Name: "node1", Arch: "INTEL", OpSys: "LINUX", Memory: 64, NetHost: host})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	defer machine.Close()
	master := NewMaster(machine, 5*time.Millisecond, nil)
	defer master.Close()

	machine.LASS().Close()
	waitRestart(t, master, 1)
	c, err := attrspace.Dial(machine.Dial(), machine.LASSAddr(), "after")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	defer c.Close()
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("put after restart: %v", err)
	}
}

func TestMasterCloseIdempotent(t *testing.T) {
	machine, err := NewMachine(MachineConfig{Name: "m", Arch: "X", OpSys: "Y", Memory: 1})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	defer machine.Close()
	master := NewMaster(machine, time.Millisecond, nil)
	master.Close()
	master.Close()
}

func TestJobSurvivesAcrossLASSRestart(t *testing.T) {
	// A job that starts after the restart works normally: the restart
	// is transparent to future jobs because the address is stable.
	machine, err := NewMachine(MachineConfig{Name: "m1", Arch: "INTEL", OpSys: "LINUX", Memory: 128})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	pool := NewPool(PoolOptions{NegotiationTimeout: 2 * time.Second})
	t.Cleanup(pool.Close)
	// Adopt the machine into the pool manually.
	sd := NewStartd(machine, pool.Registry(), nil)
	pool.mu.Lock()
	pool.machines["m1"] = machine
	pool.startds["m1"] = sd
	pool.mu.Unlock()
	pool.mm.AdvertiseMachine("m1", machine.Ad())
	registerTestPrograms(pool.Registry())

	master := NewMaster(machine, 5*time.Millisecond, nil)
	defer master.Close()
	machine.LASS().Close()
	waitRestart(t, master, 1)

	jobs, err := pool.Submit("executable = exit7\nqueue\n")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := jobs[0].WaitExit(15 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit after restart: %v", err)
	}
	if st.Code != 7 {
		t.Errorf("exit = %v", st)
	}
}
