package condor

import (
	"fmt"
	"io"
	"sync"
	"time"

	"tdp/internal/mpisim"
	"tdp/internal/procsim"
)

// Schedd is the submit-machine queue daemon (§4.1: "condor_schedd
// takes care of the job until a suitable and available resource is
// found ... then spawns a condor_shadow to serve that particular
// request").
type Schedd struct {
	name string
	pool *Pool

	mu     sync.Mutex
	jobs   []*Job
	nextID int
}

func newSchedd(name string, pool *Pool) *Schedd {
	return &Schedd{name: name, pool: pool, nextID: 1}
}

// Name returns the schedd's identity in the claiming protocol.
func (s *Schedd) Name() string { return s.name }

func (s *Schedd) record(action, detail string) {
	if s.pool.rec != nil {
		s.pool.rec.Record("schedd", action, detail)
	}
}

// Submit queues the jobs described by the submit file (one per queue
// statement) and starts working on each. It returns the queued jobs.
func (s *Schedd) Submit(sf *SubmitFile) ([]*Job, error) {
	if sf.Queue < 1 {
		return nil, fmt.Errorf("condor: submit file queues no jobs")
	}
	if sf.Requirements != "" {
		// Surface requirement syntax errors at submit time.
		probe := newJob(0, sf)
		if !probe.Ad.Has("Requirements") {
			return nil, fmt.Errorf("condor: bad Requirements expression")
		}
	}
	var out []*Job
	s.mu.Lock()
	for i := 0; i < sf.Queue; i++ {
		j := newJob(s.nextID, sf)
		s.nextID++
		s.jobs = append(s.jobs, j)
		out = append(out, j)
	}
	s.mu.Unlock()
	for _, j := range out {
		s.record("submit", fmt.Sprintf("job=%d cmd=%s universe=%s", j.ID, sf.Executable, sf.Universe))
		go s.runJob(j)
	}
	return out, nil
}

// Jobs returns a snapshot of the queue.
func (s *Schedd) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.jobs))
	copy(out, s.jobs)
	return out
}

// runJob is the shadow-spawning path for one job.
func (s *Schedd) runJob(j *Job) {
	sh := &shadow{schedd: s, job: j}
	s.record("spawn_shadow", fmt.Sprintf("job=%d", j.ID))
	if s.pool.rec != nil {
		s.pool.rec.Record("shadow", "start", fmt.Sprintf("job=%d", j.ID))
	}
	if j.Submit.Universe == UniverseMPI {
		sh.runMPI()
	} else {
		sh.runVanilla()
	}
}

// shadow is the submit-side representative of one running job (§4.1:
// "acts as the resource manager for the request").
type shadow struct {
	schedd *Schedd
	job    *Job
}

func (sh *shadow) record(action, detail string) {
	if sh.schedd.pool.rec != nil {
		sh.schedd.pool.rec.Record("shadow", action, detail)
	}
}

// negotiateAndClaim obtains a claimed machine for the job, retrying
// while the pool is busy, until the pool's negotiation deadline.
func (sh *shadow) negotiateAndClaim() (*Startd, error) {
	pool := sh.schedd.pool
	deadline := time.Now().Add(pool.negotiationTimeout)
	for {
		name, err := pool.mm.Negotiate(sh.job.Ad)
		if err == nil {
			sd := pool.startd(name)
			if sd == nil {
				pool.mm.Release(name)
				return nil, fmt.Errorf("condor: matched unknown machine %q", name)
			}
			if claimErr := sd.RequestClaim(sh.schedd.name); claimErr == nil {
				return sd, nil
			}
			// The claiming protocol allows refusal; release the
			// negotiator's reservation and look again.
			pool.mm.Release(name)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("condor: no match for job %d before deadline", sh.job.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (sh *shadow) runVanilla() {
	j := sh.job
	pool := sh.schedd.pool
	restartData := ""
	for {
		sd, err := sh.negotiateAndClaim()
		if err != nil {
			j.hold(err.Error())
			return
		}
		machine := sd.Machine().Name()
		j.mu.Lock()
		j.machine = machine
		j.machines = append(j.machines, machine)
		j.mu.Unlock()
		j.setStatus(StatusMatched)

		reports := make(chan StarterReport, 1)
		req := &ActivationRequest{
			Schedd:      sh.schedd.name,
			JobID:       j.ID,
			Submit:      j.Submit,
			Context:     fmt.Sprintf("job-%d", j.ID),
			Rank:        0,
			Ranks:       1,
			Stdout:      j.writer(&j.outBuf),
			Stderr:      j.writer(&j.errBuf),
			SubmitFiles: pool.submitFiles,
			Report:      func(r StarterReport) { reports <- r },
			Timeout:     pool.jobTimeout,
			RestartData: restartData,
		}
		sh.record("activate", fmt.Sprintf("job=%d machine=%s", j.ID, machine))
		if _, err := sd.Activate(req); err != nil {
			sd.ReleaseClaim(sh.schedd.name)
			pool.mm.Release(machine)
			j.hold(err.Error())
			return
		}
		j.setStatus(StatusRunning)
		r := <-reports
		sd.ReleaseClaim(sh.schedd.name)
		pool.mm.Release(machine)

		// Standard universe: a vacated job migrates — resume from its
		// checkpoint on the next available machine.
		if r.Err == nil && r.Exit.Signal == "SIGVACATE" && j.Submit.Universe == UniverseStandard {
			if r.HasCheckpoint {
				restartData = r.Checkpoint
			}
			j.mu.Lock()
			j.restarts++
			j.mu.Unlock()
			sh.record("migrate", fmt.Sprintf("job=%d from=%s checkpoint=%q", j.ID, machine, restartData))
			j.setStatus(StatusIdle)
			continue
		}
		sh.finishVanilla(r)
		return
	}
}

func (sh *shadow) finishVanilla(r StarterReport) {
	j := sh.job
	pool := sh.schedd.pool
	if r.Err != nil {
		sh.record("final_status", fmt.Sprintf("job=%d err=%v", j.ID, r.Err))
		j.hold(r.Err.Error())
		return
	}
	j.mu.Lock()
	j.exit = r.Exit
	j.toolOut.Write(r.ToolOut)
	j.toolErr.Write(r.ToolErr)
	j.mu.Unlock()
	// Write the output file back on the submit machine.
	if out := j.Submit.Output; out != "" {
		pool.submitFiles.Write(out, []byte(j.Output()))
	}
	sh.record("final_status", fmt.Sprintf("job=%d %s", j.ID, r.Exit))
	j.setStatus(StatusCompleted)
}

// runMPI implements the paper's MPI-universe flow: allocate
// machine_count machines, start the rank-0 "master process" first
// (paused, with its paradynd), wait until its tool is in control, then
// start the remaining ranks the same way (§4.3: "a first process is
// started ... a paradynd is created afterwards ... once the user
// issues the run command, the rest of processes are created with a
// paradynd attached to each one of them").
func (sh *shadow) runMPI() {
	j := sh.job
	pool := sh.schedd.pool
	n := j.Submit.MachineCount

	names, err := pool.mm.NegotiateN(j.Ad, n)
	if err != nil {
		j.hold(err.Error())
		return
	}
	var startds []*Startd
	release := func() {
		for _, sd := range startds {
			sd.ReleaseClaim(sh.schedd.name)
		}
		for _, name := range names {
			pool.mm.Release(name)
		}
	}
	for _, name := range names {
		sd := pool.startd(name)
		if sd == nil {
			release()
			j.hold(fmt.Sprintf("condor: matched unknown machine %q", name))
			return
		}
		if err := sd.RequestClaim(sh.schedd.name); err != nil {
			release()
			j.hold(err.Error())
			return
		}
		startds = append(startds, sd)
	}
	j.mu.Lock()
	j.machine = names[0]
	j.machines = append([]string(nil), names...)
	j.mu.Unlock()
	j.setStatus(StatusMatched)

	world := mpisim.Register(n)
	defer mpisim.Unregister(world.ID())

	reports := make(chan StarterReport, n)
	makeReq := func(rank int, toolReady chan<- struct{}) *ActivationRequest {
		sub := *j.Submit
		sub.Arguments = mpisim.RankArgs(j.Submit.Arguments, world.ID())
		return &ActivationRequest{
			Schedd:      sh.schedd.name,
			JobID:       j.ID,
			Submit:      &sub,
			Context:     fmt.Sprintf("job-%d.rank%d", j.ID, rank),
			Rank:        rank,
			Ranks:       n,
			Stdout:      j.writer(&j.outBuf),
			Stderr:      j.writer(&j.errBuf),
			SubmitFiles: pool.submitFiles,
			ToolReady:   toolReady,
			Report:      func(r StarterReport) { reports <- r },
			Timeout:     pool.jobTimeout,
		}
	}

	// Rank 0 first.
	var ready chan struct{}
	if j.Submit.ToolDaemon != nil {
		ready = make(chan struct{}, 1)
	}
	sh.record("activate", fmt.Sprintf("job=%d rank=0 machine=%s", j.ID, names[0]))
	if _, err := startds[0].Activate(makeReq(0, ready)); err != nil {
		release()
		j.hold(err.Error())
		return
	}
	j.setStatus(StatusRunning)

	if ready != nil {
		// Hold ranks 1..N-1 until rank 0's tool reports control.
		select {
		case <-ready:
			sh.record("rank0_tool_ready", fmt.Sprintf("job=%d", j.ID))
		case <-time.After(30 * time.Second):
			release()
			j.hold("condor: rank 0 tool never became ready")
			return
		}
	}
	for rank := 1; rank < n; rank++ {
		sh.record("activate", fmt.Sprintf("job=%d rank=%d machine=%s", j.ID, rank, names[rank]))
		if _, err := startds[rank].Activate(makeReq(rank, nil)); err != nil {
			release()
			j.hold(err.Error())
			return
		}
	}

	// Collect all rank reports; rank 0's status is the job's.
	var rank0 StarterReport
	var firstErr error
	for i := 0; i < n; i++ {
		r := <-reports
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
		if r.Rank == 0 {
			rank0 = r
		}
		j.mu.Lock()
		j.ranksDone++
		j.toolOut.Write(r.ToolOut)
		j.toolErr.Write(r.ToolErr)
		j.mu.Unlock()
	}
	release()
	if firstErr != nil {
		j.hold(firstErr.Error())
		return
	}
	j.mu.Lock()
	j.exit = rank0.Exit
	j.mu.Unlock()
	if out := j.Submit.Output; out != "" {
		pool.submitFiles.Write(out, []byte(j.Output()))
	}
	sh.record("final_status", fmt.Sprintf("job=%d ranks=%d %s", j.ID, n, rank0.Exit))
	j.setStatus(StatusCompleted)
}

// writer returns a mutex-guarded writer into one of the job's capture
// buffers; starters on different machines may write concurrently.
func (j *Job) writer(buf io.Writer) io.Writer {
	return &jobWriter{j: j, w: buf}
}

type jobWriter struct {
	j *Job
	w io.Writer
}

func (w *jobWriter) Write(p []byte) (int, error) {
	w.j.mu.Lock()
	defer w.j.mu.Unlock()
	return w.w.Write(p)
}

// RanksDone reports how many MPI ranks have completed.
func (j *Job) RanksDone() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ranksDone
}

// WaitExit blocks until the job is terminal and returns its exit
// status; held jobs return their hold reason as an error.
func (j *Job) WaitExit(timeout time.Duration) (procsim.ExitStatus, error) {
	if timeout <= 0 {
		timeout = time.Minute
	}
	select {
	case <-j.Done():
	case <-time.After(timeout):
		return procsim.ExitStatus{}, fmt.Errorf("condor: job %d did not finish within %v (status %s)", j.ID, timeout, j.Status())
	}
	if j.Status() == StatusHeld {
		return procsim.ExitStatus{}, fmt.Errorf("condor: job %d held: %s", j.ID, j.HoldReason())
	}
	return j.ExitStatus(), nil
}
