package condor

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tdp/internal/trace"
)

// PoolOptions configure NewPool.
type PoolOptions struct {
	// Trace receives the pool's protocol steps (Figure 4 assertions);
	// nil disables recording.
	Trace *trace.Recorder
	// NegotiationTimeout bounds how long a shadow waits for a machine.
	// Zero means 10 seconds.
	NegotiationTimeout time.Duration
	// JobTimeout bounds one job instance's execution. Zero means 60
	// seconds (a safety net for wedged TDP handshakes in tests).
	JobTimeout time.Duration
}

// Pool assembles a working Condor pool in one process: a matchmaker, a
// submit machine (schedd + per-job shadows + file store), and any
// number of execute machines (startd + starter each, with per-machine
// procsim kernel and LASS). Attach a Master to a machine for
// condor_master-style daemon supervision; the faults package injects
// and detects failures underneath it.
type Pool struct {
	rec                *trace.Recorder
	mm                 *Matchmaker
	registry           *Registry
	schedd             *Schedd
	submitFiles        *FileStore
	negotiationTimeout time.Duration
	jobTimeout         time.Duration

	mu       sync.Mutex
	machines map[string]*Machine
	startds  map[string]*Startd
	closed   bool
}

// NewPool creates an empty pool; add machines, register programs, then
// submit.
func NewPool(opts PoolOptions) *Pool {
	if opts.NegotiationTimeout <= 0 {
		opts.NegotiationTimeout = 10 * time.Second
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 60 * time.Second
	}
	p := &Pool{
		rec:                opts.Trace,
		mm:                 NewMatchmaker(opts.Trace),
		registry:           NewRegistry(),
		submitFiles:        NewFileStore(),
		negotiationTimeout: opts.NegotiationTimeout,
		jobTimeout:         opts.JobTimeout,
		machines:           make(map[string]*Machine),
		startds:            make(map[string]*Startd),
	}
	p.schedd = newSchedd("schedd", p)
	return p
}

// Registry returns the pool's executable/tool registry.
func (p *Pool) Registry() *Registry { return p.registry }

// Matchmaker returns the pool's matchmaker.
func (p *Pool) Matchmaker() *Matchmaker { return p.mm }

// Schedd returns the submit machine's schedd.
func (p *Pool) Schedd() *Schedd { return p.schedd }

// SubmitFiles returns the submit machine's file store (where input
// files live and output files land).
func (p *Pool) SubmitFiles() *FileStore { return p.submitFiles }

// Trace returns the pool's protocol recorder (may be nil).
func (p *Pool) Trace() *trace.Recorder { return p.rec }

// AddMachine boots an execute machine, creates its startd, and
// advertises it to the matchmaker.
func (p *Pool) AddMachine(cfg MachineConfig) (*Machine, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	sd := NewStartd(m, p.registry, p.rec)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		m.Close()
		return nil, fmt.Errorf("condor: pool closed")
	}
	if _, dup := p.machines[cfg.Name]; dup {
		p.mu.Unlock()
		m.Close()
		return nil, fmt.Errorf("condor: duplicate machine %q", cfg.Name)
	}
	p.machines[cfg.Name] = m
	p.startds[cfg.Name] = sd
	p.mu.Unlock()
	p.mm.AdvertiseMachine(cfg.Name, m.Ad())
	return m, nil
}

// Machine returns a machine by name, or nil.
func (p *Pool) Machine(name string) *Machine {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.machines[name]
}

func (p *Pool) startd(name string) *Startd {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.startds[name]
}

// Startd returns a machine's startd, or nil.
func (p *Pool) Startd(name string) *Startd { return p.startd(name) }

// Vacate reclaims the machine a job is running on, killing the job
// with SIGVACATE. Standard-universe jobs resume from their checkpoint
// on another machine; other universes see it as a fatal signal.
func (p *Pool) Vacate(j *Job) error {
	sd, err := p.startdFor(j)
	if err != nil {
		return err
	}
	return sd.VacateJob(j.ID)
}

// Suspend pauses a running job at its next safe point (like
// condor_hold, but leaving the claim in place). Tool-controlled jobs
// cannot be suspended by the RM; see Starter.Suspend.
func (p *Pool) Suspend(j *Job) error {
	sd, err := p.startdFor(j)
	if err != nil {
		return err
	}
	return sd.SuspendJob(j.ID)
}

// Resume continues a suspended job.
func (p *Pool) Resume(j *Job) error {
	sd, err := p.startdFor(j)
	if err != nil {
		return err
	}
	return sd.ResumeJob(j.ID)
}

func (p *Pool) startdFor(j *Job) (*Startd, error) {
	machine := j.Machine()
	if machine == "" {
		return nil, fmt.Errorf("condor: job %d is not running anywhere", j.ID)
	}
	sd := p.startd(machine)
	if sd == nil {
		return nil, fmt.Errorf("condor: no startd for machine %q", machine)
	}
	return sd, nil
}

// Submit parses a submit description and queues its jobs.
func (p *Pool) Submit(src string) ([]*Job, error) {
	sf, err := ParseSubmit(src)
	if err != nil {
		return nil, err
	}
	return p.schedd.Submit(sf)
}

// SubmitParsed queues jobs from an already-parsed submit file.
func (p *Pool) SubmitParsed(sf *SubmitFile) ([]*Job, error) {
	return p.schedd.Submit(sf)
}

// QueueSummary renders a condor_q-style view of the schedd's queue.
func (p *Pool) QueueSummary() string {
	jobs := p.schedd.Jobs()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-12s %-10s %-10s %s\n", "ID", "CMD", "UNIVERSE", "STATUS", "MACHINE")
	counts := make(map[JobStatus]int)
	for _, j := range jobs {
		st := j.Status()
		counts[st]++
		fmt.Fprintf(&sb, "%-4d %-12s %-10s %-10s %s\n",
			j.ID, j.Submit.Executable, j.Submit.Universe, st, j.Machine())
	}
	fmt.Fprintf(&sb, "%d jobs; %d idle, %d running, %d completed, %d held\n",
		len(jobs), counts[StatusIdle]+counts[StatusMatched], counts[StatusRunning],
		counts[StatusCompleted]+counts[StatusRemoved], counts[StatusHeld])
	return sb.String()
}

// Close shuts down every machine's LASS.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	machines := make([]*Machine, 0, len(p.machines))
	for _, m := range p.machines {
		machines = append(machines, m)
	}
	p.mu.Unlock()
	for _, m := range machines {
		m.Close()
	}
}
