package condor

import (
	"sync/atomic"
	"testing"
	"time"

	"tdp/internal/procsim"
	"tdp/internal/trace"
)

// registerCheckpointable installs a standard-universe-capable program
// that runs `iters` checkpointed iterations, counting executions.
func registerCheckpointable(reg *Registry, iters int, executed *atomic.Int64) {
	reg.RegisterProgram("ckpt", func(args []string) (procsim.Program, []string) {
		return procsim.NewCheckpointableProgram(iters, 200, func(int) {
			executed.Add(1)
		}), procsim.StdSymbols
	})
}

func TestStandardUniverseVacateAndMigrate(t *testing.T) {
	rec := trace.New()
	pool := NewPool(PoolOptions{Trace: rec, NegotiationTimeout: 5 * time.Second, JobTimeout: 60 * time.Second})
	t.Cleanup(pool.Close)
	for _, name := range []string{"m1", "m2"} {
		if _, err := pool.AddMachine(MachineConfig{Name: name, Arch: "INTEL", OpSys: "LINUX", Memory: 128}); err != nil {
			t.Fatalf("AddMachine: %v", err)
		}
	}
	const iters = 300
	var executed atomic.Int64
	registerCheckpointable(pool.Registry(), iters, &executed)

	jobs, err := pool.Submit("universe = Standard\nexecutable = ckpt\nqueue\n")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j := jobs[0]

	// Let the job make some progress, then reclaim its machine.
	deadline := time.Now().Add(10 * time.Second)
	for executed.Load() < 30 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if executed.Load() < 30 {
		t.Fatalf("job made no progress (executed=%d, status=%v)", executed.Load(), j.Status())
	}
	atVacate := executed.Load()
	if err := pool.Vacate(j); err != nil {
		t.Fatalf("Vacate: %v", err)
	}

	st, err := j.WaitExit(30 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	// Exit code is the iteration the final incarnation started from:
	// nonzero proves it resumed from the checkpoint instead of
	// starting over.
	if st.Code == 0 {
		t.Errorf("exit = %v — job restarted from scratch instead of resuming", st)
	}
	if got := j.Restarts(); got != 1 {
		t.Errorf("Restarts = %d, want 1", got)
	}
	if got := len(j.Machines()); got != 2 {
		t.Errorf("machine history = %v, want 2 entries", j.Machines())
	}
	// Total work: all iterations once, plus at most a small replay of
	// the interrupted iteration.
	total := executed.Load()
	if total < iters {
		t.Errorf("executed %d iterations, want >= %d", total, iters)
	}
	if total > iters+5 {
		t.Errorf("executed %d iterations — migration redid %d (checkpoint ignored?)", total, total-int64(iters))
	}
	t.Logf("vacated at iteration %d; resumed at %d; total executed %d/%d", atVacate, st.Code, total, iters)

	if err := rec.CheckOrder(
		"starter:spawn_job",
		"starter:vacate",
		"shadow:migrate",
		"starter:spawn_job",
		"shadow:final_status",
	); err != nil {
		t.Error(err)
	}
}

func TestVacateVanillaJobIsFatal(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	var executed atomic.Int64
	registerCheckpointable(pool.Registry(), 100000, &executed)
	jobs, err := pool.Submit("executable = ckpt\nqueue\n") // vanilla
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j := jobs[0]
	deadline := time.Now().Add(10 * time.Second)
	for executed.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := pool.Vacate(j); err != nil {
		t.Fatalf("Vacate: %v", err)
	}
	st, err := j.WaitExit(30 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if st.Signal != "SIGVACATE" {
		t.Errorf("vanilla vacate status = %v, want killed(SIGVACATE)", st)
	}
	if j.Restarts() != 0 {
		t.Errorf("vanilla job restarted %d times", j.Restarts())
	}
}

func TestVacateErrors(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	j := newJob(99, &SubmitFile{Executable: "x"})
	if err := pool.Vacate(j); err == nil {
		t.Error("Vacate of unmatched job succeeded")
	}
	j.mu.Lock()
	j.machine = "ghost"
	j.mu.Unlock()
	if err := pool.Vacate(j); err == nil {
		t.Error("Vacate on unknown machine succeeded")
	}
	sd := pool.Startd("node1")
	if err := sd.VacateJob(42); err == nil {
		t.Error("VacateJob of non-running job succeeded")
	}
}

func TestCheckpointableProgramResumesFromData(t *testing.T) {
	// Unit-level: the program honors RestartData directly.
	k := procsim.NewKernel()
	var count atomic.Int64
	p, err := k.Spawn(procsim.Spec{
		Executable:  "ckpt",
		Program:     procsim.NewCheckpointableProgram(10, 1, func(int) { count.Add(1) }),
		Symbols:     procsim.StdSymbols,
		RestartData: "7",
	}, false)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	st, err := p.WaitParent()
	if err != nil {
		t.Fatalf("WaitParent: %v", err)
	}
	if st.Code != 7 {
		t.Errorf("exit = %v, want start iteration 7", st)
	}
	if count.Load() != 3 {
		t.Errorf("executed %d iterations, want 3 (7..9)", count.Load())
	}
	if ck, ok := p.CheckpointData(); !ok || ck != "10" {
		t.Errorf("final checkpoint = %q, %v", ck, ok)
	}
}

func TestProgressCounterAdvances(t *testing.T) {
	k := procsim.NewKernel()
	p, err := k.Spawn(procsim.Spec{
		Executable: "spin", Program: procsim.NewSpinnerProgram(), Symbols: procsim.StdSymbols,
	}, false)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	defer p.Kill("")
	first := p.Progress()
	deadline := time.Now().Add(5 * time.Second)
	for p.Progress() == first && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Progress() == first {
		t.Error("progress counter never advanced on a running process")
	}
}
