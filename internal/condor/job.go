package condor

import (
	"bytes"
	"fmt"
	"sync"

	"tdp/internal/classad"
	"tdp/internal/procsim"
)

// JobStatus is a job's lifecycle state in the queue.
type JobStatus int

const (
	// StatusIdle means queued, waiting for a match.
	StatusIdle JobStatus = iota
	// StatusMatched means the negotiator found a machine; claiming in
	// progress.
	StatusMatched
	// StatusRunning means a starter is executing the job.
	StatusRunning
	// StatusCompleted means the job finished and status was retrieved.
	StatusCompleted
	// StatusRemoved means the job was removed before completion.
	StatusRemoved
	// StatusHeld means the job hit an error and is parked.
	StatusHeld
)

// String names the status as condor_q would.
func (s JobStatus) String() string {
	switch s {
	case StatusIdle:
		return "Idle"
	case StatusMatched:
		return "Matched"
	case StatusRunning:
		return "Running"
	case StatusCompleted:
		return "Completed"
	case StatusRemoved:
		return "Removed"
	case StatusHeld:
		return "Held"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Job is one queued job instance.
type Job struct {
	ID     int
	Submit *SubmitFile
	Ad     *classad.Ad

	mu        sync.Mutex
	status    JobStatus
	machine   string // matched machine name (rank 0 for MPI)
	machines  []string
	exit      procsim.ExitStatus
	holdMsg   string
	done      chan struct{}
	outBuf    bytes.Buffer // job stdout captured on the submit side
	errBuf    bytes.Buffer // job stderr
	toolOut   bytes.Buffer // tool daemon stdout (ToolDaemonOutput)
	toolErr   bytes.Buffer
	ranksDone int
	restarts  int
	doneOnce  bool
}

func newJob(id int, sf *SubmitFile) *Job {
	ad := classad.NewAd()
	ad.SetString("JobId", fmt.Sprintf("%d", id))
	ad.SetString("Cmd", sf.Executable)
	ad.SetInt("ImageSize", sf.ImageSizeKB)
	if sf.Requirements != "" {
		// An unparseable requirement holds the job at submit time, so
		// errors surface early; Submit checks this.
		ad.SetExpr("Requirements", sf.Requirements)
	}
	if sf.Rank != "" {
		ad.SetExpr("Rank", sf.Rank)
	}
	for k, v := range sf.ExtraAttrs {
		ad.SetString(k, v)
	}
	return &Job{ID: id, Submit: sf, Ad: ad, done: make(chan struct{})}
}

// Status returns the current queue status.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Machine returns the execute machine (rank 0's machine for MPI jobs),
// or "" before matching.
func (j *Job) Machine() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.machine
}

// Restarts reports how many times the job was vacated and resumed
// (standard universe).
func (j *Job) Restarts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restarts
}

// Machines returns every machine this job has run on: all ranks for
// MPI jobs, the migration history for standard-universe jobs.
func (j *Job) Machines() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, len(j.machines))
	copy(out, j.machines)
	return out
}

// Done returns a channel closed when the job reaches a terminal state
// (Completed, Removed, or Held).
func (j *Job) Done() <-chan struct{} { return j.done }

// ExitStatus returns the job's exit status; valid once Completed.
func (j *Job) ExitStatus() procsim.ExitStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.exit
}

// HoldReason returns the message attached when the job was held.
func (j *Job) HoldReason() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.holdMsg
}

// Output returns the job's captured standard output (submit side).
func (j *Job) Output() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outBuf.String()
}

// ErrorOutput returns the job's captured standard error.
func (j *Job) ErrorOutput() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errBuf.String()
}

// ToolOutput returns the tool daemon's captured stdout — the content
// of the ToolDaemonOutput file transferred back after completion.
func (j *Job) ToolOutput() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.toolOut.String()
}

// ToolErrorOutput returns the tool daemon's captured stderr.
func (j *Job) ToolErrorOutput() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.toolErr.String()
}

func (j *Job) setStatus(s JobStatus) {
	j.mu.Lock()
	j.status = s
	fire := false
	if s == StatusCompleted || s == StatusRemoved || s == StatusHeld {
		if !j.doneOnce {
			j.doneOnce = true
			fire = true
		}
	}
	j.mu.Unlock()
	if fire {
		close(j.done)
	}
}

func (j *Job) hold(msg string) {
	j.mu.Lock()
	j.holdMsg = msg
	j.mu.Unlock()
	j.setStatus(StatusHeld)
}
