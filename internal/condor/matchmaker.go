package condor

import (
	"fmt"
	"sort"
	"sync"

	"tdp/internal/classad"
	"tdp/internal/trace"
)

// Matchmaker is the pool's collector + negotiator: machines advertise
// resource offers, schedds bring resource requests, and Negotiate
// pairs them using symmetric ClassAd matching (§4.1: "the matchmaking
// algorithm is responsible for locating compatible resource requests
// with offers. When a compatible match is found, the matchmaker
// notifies the corresponding job and machine").
type Matchmaker struct {
	mu      sync.Mutex
	offers  map[string]*classad.Ad // machine name -> ad
	claimed map[string]bool        // machine name -> claimed
	rec     *trace.Recorder
	matches int
	fails   int
}

// NewMatchmaker returns an empty matchmaker; rec (optional) receives
// protocol trace entries.
func NewMatchmaker(rec *trace.Recorder) *Matchmaker {
	return &Matchmaker{
		offers:  make(map[string]*classad.Ad),
		claimed: make(map[string]bool),
		rec:     rec,
	}
}

func (mm *Matchmaker) record(action, detail string) {
	if mm.rec != nil {
		mm.rec.Record("matchmaker", action, detail)
	}
}

// AdvertiseMachine registers (or refreshes) a machine's offer ad —
// what the startd periodically sends to the collector.
func (mm *Matchmaker) AdvertiseMachine(name string, ad *classad.Ad) {
	mm.mu.Lock()
	mm.offers[name] = ad.Clone()
	mm.mu.Unlock()
	mm.record("advertise_machine", name)
}

// RemoveMachine withdraws a machine from the pool.
func (mm *Matchmaker) RemoveMachine(name string) {
	mm.mu.Lock()
	delete(mm.offers, name)
	delete(mm.claimed, name)
	mm.mu.Unlock()
}

// Machines returns the advertised machine names, sorted.
func (mm *Matchmaker) Machines() []string {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	out := make([]string, 0, len(mm.offers))
	for n := range mm.offers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Negotiate finds the best unclaimed machine mutually matching the job
// ad and marks it claimed. It returns the machine name, or an error
// when no compatible machine is available.
func (mm *Matchmaker) Negotiate(jobAd *classad.Ad) (string, error) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	names := make([]string, 0, len(mm.offers))
	for n := range mm.offers {
		if !mm.claimed[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names) // deterministic tie-break
	ads := make([]*classad.Ad, len(names))
	for i, n := range names {
		ads[i] = mm.offers[n]
	}
	best := classad.MatchBest(jobAd, ads)
	if best < 0 {
		mm.fails++
		mm.record("negotiate", "no-match")
		return "", fmt.Errorf("condor: no machine matches job %s", jobAd.EvalString("JobId", nil))
	}
	name := names[best]
	mm.claimed[name] = true
	mm.matches++
	mm.record("negotiate", "match="+name)
	return name, nil
}

// NegotiateN claims n distinct machines for an MPI job, all matching
// the job ad. On failure nothing stays claimed.
func (mm *Matchmaker) NegotiateN(jobAd *classad.Ad, n int) ([]string, error) {
	var got []string
	for i := 0; i < n; i++ {
		name, err := mm.Negotiate(jobAd)
		if err != nil {
			for _, g := range got {
				mm.Release(g)
			}
			return nil, fmt.Errorf("condor: needed %d machines, found %d: %w", n, len(got), err)
		}
		got = append(got, name)
	}
	return got, nil
}

// Release returns a machine to the unclaimed pool.
func (mm *Matchmaker) Release(name string) {
	mm.mu.Lock()
	delete(mm.claimed, name)
	mm.mu.Unlock()
	mm.record("release", name)
}

// Claimed reports whether the machine is currently claimed.
func (mm *Matchmaker) Claimed(name string) bool {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.claimed[name]
}

// Stats reports successful matches and failed negotiations.
func (mm *Matchmaker) Stats() (matches, fails int) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.matches, mm.fails
}

// FreeMachines reports how many advertised machines are currently
// unclaimed — the capacity signal a Grid broker uses to place jobs.
func (mm *Matchmaker) FreeMachines() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	n := 0
	for name := range mm.offers {
		if !mm.claimed[name] {
			n++
		}
	}
	return n
}
