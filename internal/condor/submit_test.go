package condor

import (
	"reflect"
	"strings"
	"testing"
)

// figure5B is the paper's example submit file, verbatim (including the
// "tranfer_input_files" typo present in the paper).
const figure5B = `universe = Vanilla
executable = foo
input = infile
output = outfile
arguments = 1 2 3
transfer_files = always
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -l3 -mpinguino.cs.wisc.edu -p2090 -P2091 -a%pid"
+ToolDaemonOutput = "daemon.out"
+ToolDaemonError = "daemon.err"
tranfer_input_files = paradynd
queue
`

func TestParseFigure5B(t *testing.T) {
	sf, err := ParseSubmit(figure5B)
	if err != nil {
		t.Fatalf("ParseSubmit: %v", err)
	}
	if sf.Universe != UniverseVanilla {
		t.Errorf("universe = %v", sf.Universe)
	}
	if sf.Executable != "foo" || sf.Input != "infile" || sf.Output != "outfile" {
		t.Errorf("exe/in/out = %q %q %q", sf.Executable, sf.Input, sf.Output)
	}
	if !reflect.DeepEqual(sf.Arguments, []string{"1", "2", "3"}) {
		t.Errorf("arguments = %v", sf.Arguments)
	}
	if sf.TransferFiles != "always" {
		t.Errorf("transfer_files = %q", sf.TransferFiles)
	}
	if !sf.SuspendJobAtExec {
		t.Error("SuspendJobAtExec not parsed")
	}
	td := sf.ToolDaemon
	if td == nil {
		t.Fatal("ToolDaemon entries not parsed")
	}
	if td.Cmd != "paradynd" {
		t.Errorf("ToolDaemonCmd = %q", td.Cmd)
	}
	wantArgs := []string{"-zunix", "-l3", "-mpinguino.cs.wisc.edu", "-p2090", "-P2091", "-a%pid"}
	if !reflect.DeepEqual(td.Args, wantArgs) {
		t.Errorf("ToolDaemonArgs = %v, want %v", td.Args, wantArgs)
	}
	if td.Output != "daemon.out" || td.Error != "daemon.err" {
		t.Errorf("tool out/err = %q %q", td.Output, td.Error)
	}
	if !reflect.DeepEqual(sf.TransferInput, []string{"paradynd"}) {
		t.Errorf("TransferInput = %v", sf.TransferInput)
	}
	if sf.Queue != 1 {
		t.Errorf("Queue = %d", sf.Queue)
	}
}

func TestParseSubmitErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no queue", "executable = foo\n"},
		{"no executable", "queue\n"},
		{"bad universe", "universe = globus\nexecutable = foo\nqueue\n"},
		{"bad queue count", "executable = foo\nqueue zero\n"},
		{"bad machine_count", "universe = MPI\nexecutable=x\nmachine_count = -3\nqueue\n"},
		{"tool args without cmd", "executable=foo\n+ToolDaemonArgs = \"-x\"\nqueue\n"},
		{"bad image_size", "executable=foo\nimage_size = big\nqueue\n"},
	}
	for _, c := range cases {
		if _, err := ParseSubmit(c.src); err == nil {
			t.Errorf("%s: ParseSubmit succeeded", c.name)
		}
	}
}

func TestParseQueueVariants(t *testing.T) {
	sf, err := ParseSubmit("executable = foo\nqueue 5\n")
	if err != nil {
		t.Fatalf("ParseSubmit: %v", err)
	}
	if sf.Queue != 5 {
		t.Errorf("Queue = %d", sf.Queue)
	}
	sf, err = ParseSubmit("executable = foo\nqueue\nqueue 2\n")
	if err != nil {
		t.Fatalf("ParseSubmit: %v", err)
	}
	if sf.Queue != 3 {
		t.Errorf("cumulative Queue = %d", sf.Queue)
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := `
# this is a job
executable = foo

# with comments
queue
`
	sf, err := ParseSubmit(src)
	if err != nil {
		t.Fatalf("ParseSubmit: %v", err)
	}
	if sf.Executable != "foo" {
		t.Errorf("executable = %q", sf.Executable)
	}
}

func TestParseExtraPlusAttrs(t *testing.T) {
	sf, err := ParseSubmit("executable=foo\n+Project = \"tdp\"\nqueue\n")
	if err != nil {
		t.Fatalf("ParseSubmit: %v", err)
	}
	if sf.ExtraAttrs["Project"] != "tdp" {
		t.Errorf("ExtraAttrs = %v", sf.ExtraAttrs)
	}
}

func TestParseMPIUniverse(t *testing.T) {
	sf, err := ParseSubmit("universe = MPI\nexecutable = ring\nmachine_count = 4\nqueue\n")
	if err != nil {
		t.Fatalf("ParseSubmit: %v", err)
	}
	if sf.Universe != UniverseMPI || sf.MachineCount != 4 {
		t.Errorf("universe/count = %v/%d", sf.Universe, sf.MachineCount)
	}
	// MPI without machine_count defaults to 1.
	sf, _ = ParseSubmit("universe = MPI\nexecutable = ring\nqueue\n")
	if sf.MachineCount != 1 {
		t.Errorf("default machine_count = %d", sf.MachineCount)
	}
}

func TestParseRequirementsAndRank(t *testing.T) {
	sf, err := ParseSubmit(`executable=foo
requirements = Memory >= 64 && Arch == "INTEL"
rank = Memory
image_size = 2048
queue
`)
	if err != nil {
		t.Fatalf("ParseSubmit: %v", err)
	}
	if !strings.Contains(sf.Requirements, "Memory >= 64") {
		t.Errorf("Requirements = %q", sf.Requirements)
	}
	if sf.Rank != "Memory" || sf.ImageSizeKB != 2048 {
		t.Errorf("rank/image = %q/%d", sf.Rank, sf.ImageSizeKB)
	}
}

func TestSplitArgs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a b c", []string{"a", "b", "c"}},
		{`a "b c" d`, []string{"a", "b c", "d"}},
		{"", nil},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{`-zunix -l3 -a%pid`, []string{"-zunix", "-l3", "-a%pid"}},
		{`quoted" mid"dle`, []string{"quoted middle"}},
	}
	for _, c := range cases {
		if got := SplitArgs(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitArgs(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestUniverseString(t *testing.T) {
	if UniverseVanilla.String() != "Vanilla" || UniverseMPI.String() != "MPI" {
		t.Error("universe strings wrong")
	}
	if Universe(9).String() != "universe(9)" {
		t.Error("unknown universe string")
	}
}

func TestJobStatusString(t *testing.T) {
	want := map[JobStatus]string{
		StatusIdle: "Idle", StatusMatched: "Matched", StatusRunning: "Running",
		StatusCompleted: "Completed", StatusRemoved: "Removed", StatusHeld: "Held",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
	if JobStatus(42).String() != "status(42)" {
		t.Error("unknown status string")
	}
}

func TestFileStore(t *testing.T) {
	fs := NewFileStore()
	if fs.Exists("x") {
		t.Error("Exists on empty store")
	}
	fs.Write("x", []byte("data"))
	got, ok := fs.Read("x")
	if !ok || string(got) != "data" {
		t.Errorf("Read = %q, %v", got, ok)
	}
	// Mutating the returned slice must not alias the store.
	got[0] = 'X'
	again, _ := fs.Read("x")
	if string(again) != "data" {
		t.Error("Read aliases store")
	}
	other := NewFileStore()
	if !fs.CopyTo(other, "x") {
		t.Error("CopyTo failed")
	}
	if !other.Exists("x") {
		t.Error("CopyTo did not copy")
	}
	if fs.CopyTo(other, "ghost") {
		t.Error("CopyTo of missing file succeeded")
	}
	if n := len(fs.Names()); n != 1 {
		t.Errorf("Names = %d entries", n)
	}
}
