package condor

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tdp/internal/procsim"
)

func TestSuspendResumeJob(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	var executed atomic.Int64
	registerCheckpointable(pool.Registry(), 100000, &executed)
	jobs, err := pool.Submit("executable = ckpt\nqueue\n")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j := jobs[0]
	deadline := time.Now().Add(10 * time.Second)
	for executed.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := pool.Suspend(j); err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	// No progress while suspended.
	frozen := executed.Load()
	time.Sleep(30 * time.Millisecond)
	if got := executed.Load(); got != frozen {
		t.Errorf("job progressed while suspended: %d -> %d", frozen, got)
	}
	if j.Status() != StatusRunning {
		t.Errorf("queue status while suspended = %v (stays Running, like condor suspend)", j.Status())
	}
	if err := pool.Resume(j); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for executed.Load() == frozen && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if executed.Load() == frozen {
		t.Fatal("job never resumed")
	}
	// Clean up: vacate (vanilla => fatal) and wait.
	pool.Vacate(j)
	j.WaitExit(30 * time.Second)
}

func TestSuspendTracedJobRefused(t *testing.T) {
	// The RM cannot suspend a job whose tool holds control (§2.3's
	// single-point-of-control); it must coordinate via attributes.
	pool := newTestPool(t, 1, nil)
	pool.Registry().RegisterProgram("long", func(args []string) (procsim.Program, []string) {
		phases := []procsim.PhaseSpec{{Name: "work", Units: 50}}
		return procsim.NewPhasedProgram(10000, phases), procsim.PhasedSymbols(phases)
	})
	registerTestTool(pool.Registry(), "tool")
	jobs, err := pool.Submit(`executable = long
+SuspendJobAtExec = True
+ToolDaemonCmd = "tool"
queue
`)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j := jobs[0]
	// Wait until the job is running under the tool.
	deadline := time.Now().Add(10 * time.Second)
	for j.Status() != StatusRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Wait until the tool has attached AND continued the app — only a
	// running traced process exercises the contested-control path (a
	// stopped one makes Suspend a trivial no-op).
	var ap *procsim.Process
	for time.Now().Before(deadline) {
		for _, p := range pool.Machine("node1").Kernel().Processes() {
			if p.Executable() == "long" && p.Tracer() != "" && p.State() == procsim.StateRunning {
				ap = p
			}
		}
		if ap != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if ap == nil {
		t.Fatal("tool never attached and continued the app")
	}
	err = pool.Suspend(j)
	if err == nil {
		t.Fatal("Suspend of a traced job succeeded")
	}
	if !strings.Contains(err.Error(), "attached") {
		t.Errorf("err = %v", err)
	}
	// Clean up.
	ap.Kill("")
	j.WaitExit(30 * time.Second)
}

func TestSuspendErrorsWhenNotRunning(t *testing.T) {
	pool := newTestPool(t, 1, nil)
	j := newJob(5, &SubmitFile{Executable: "x"})
	if err := pool.Suspend(j); err == nil {
		t.Error("Suspend of unmatched job succeeded")
	}
	if err := pool.Resume(j); err == nil {
		t.Error("Resume of unmatched job succeeded")
	}
}
