package condor

import (
	"fmt"
	"sync"

	"tdp/internal/trace"
)

// Startd represents one machine's availability in the pool (§4.1:
// "this daemon represents a given resource ... when the condor_startd
// is ready to execute a Condor job, it spawns the condor_starter").
// It implements the execute-machine half of the claiming protocol.
type Startd struct {
	machine  *Machine
	registry *Registry
	rec      *trace.Recorder

	mu        sync.Mutex
	claimedBy string
	active    int // running starters under the current claim
	starters  map[int][]*Starter
}

// NewStartd returns a startd for the machine.
func NewStartd(machine *Machine, registry *Registry, rec *trace.Recorder) *Startd {
	return &Startd{machine: machine, registry: registry, rec: rec, starters: make(map[int][]*Starter)}
}

func (sd *Startd) record(action, detail string) {
	if sd.rec != nil {
		sd.rec.Record("startd", action, detail)
	}
}

// Machine returns the startd's machine.
func (sd *Startd) Machine() *Machine { return sd.machine }

// RequestClaim is the claiming protocol: a schedd that received this
// machine from the negotiator asks the startd directly for the claim,
// and "either party may decide not to complete the allocation" — the
// startd refuses when it is already claimed by someone else.
func (sd *Startd) RequestClaim(scheddName string) error {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	if sd.claimedBy != "" && sd.claimedBy != scheddName {
		sd.record("claim_refused", sd.machine.Name()+" held by "+sd.claimedBy)
		return fmt.Errorf("condor: machine %s already claimed by %s", sd.machine.Name(), sd.claimedBy)
	}
	sd.claimedBy = scheddName
	sd.record("claim_accepted", sd.machine.Name()+" by "+scheddName)
	return nil
}

// ReleaseClaim gives the machine back.
func (sd *Startd) ReleaseClaim(scheddName string) {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	if sd.claimedBy == scheddName {
		sd.claimedBy = ""
		sd.record("claim_released", sd.machine.Name())
	}
}

// ClaimedBy returns the current claimant, or "".
func (sd *Startd) ClaimedBy() string {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.claimedBy
}

// Activate spawns a starter for the request under an existing claim —
// the claim-activation step. The starter runs asynchronously; its
// completion is delivered through the request's Report callback.
func (sd *Startd) Activate(req *ActivationRequest) (*Starter, error) {
	sd.mu.Lock()
	if sd.claimedBy == "" || sd.claimedBy != req.Schedd {
		sd.mu.Unlock()
		return nil, fmt.Errorf("condor: activation without claim on %s", sd.machine.Name())
	}
	sd.active++
	st := newStarter(sd, req)
	sd.starters[req.JobID] = append(sd.starters[req.JobID], st)
	sd.mu.Unlock()
	sd.record("spawn_starter", fmt.Sprintf("job=%d machine=%s", req.JobID, sd.machine.Name()))
	go st.run()
	return st, nil
}

func (sd *Startd) starterDone(st *Starter) {
	sd.mu.Lock()
	sd.active--
	list := sd.starters[st.req.JobID]
	for i, s := range list {
		if s == st {
			sd.starters[st.req.JobID] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(sd.starters[st.req.JobID]) == 0 {
		delete(sd.starters, st.req.JobID)
	}
	sd.mu.Unlock()
}

// jobStarters snapshots the starters running a job here.
func (sd *Startd) jobStarters(jobID int) []*Starter {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return append([]*Starter(nil), sd.starters[jobID]...)
}

// SuspendJob pauses every instance of the job on this machine.
func (sd *Startd) SuspendJob(jobID int) error {
	list := sd.jobStarters(jobID)
	if len(list) == 0 {
		return fmt.Errorf("condor: job %d not running on %s", jobID, sd.machine.Name())
	}
	for _, st := range list {
		if err := st.Suspend(); err != nil {
			return err
		}
	}
	return nil
}

// ResumeJob continues a suspended job.
func (sd *Startd) ResumeJob(jobID int) error {
	list := sd.jobStarters(jobID)
	if len(list) == 0 {
		return fmt.Errorf("condor: job %d not running on %s", jobID, sd.machine.Name())
	}
	for _, st := range list {
		if err := st.Resume(); err != nil {
			return err
		}
	}
	return nil
}

// VacateJob reclaims the machine from a running job: its starter kills
// the application with SIGVACATE (the checkpoint survives). It returns
// an error when the job is not running here.
func (sd *Startd) VacateJob(jobID int) error {
	sd.mu.Lock()
	list := append([]*Starter(nil), sd.starters[jobID]...)
	sd.mu.Unlock()
	if len(list) == 0 {
		return fmt.Errorf("condor: job %d not running on %s", jobID, sd.machine.Name())
	}
	var firstErr error
	for _, st := range list {
		if err := st.Vacate(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ActiveStarters reports the number of running starters.
func (sd *Startd) ActiveStarters() int {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.active
}
