package grid

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"tdp/internal/condor"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
)

// newSitePool builds a pool with n machines and the science app +
// paradynd registered.
func newSitePool(t *testing.T, n int) *condor.Pool {
	t.Helper()
	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 3 * time.Second})
	t.Cleanup(pool.Close)
	for i := 0; i < n; i++ {
		if _, err := pool.AddMachine(condor.MachineConfig{
			Name: fmt.Sprintf("m%d", i), Arch: "INTEL", OpSys: "LINUX", Memory: 128,
		}); err != nil {
			t.Fatalf("AddMachine: %v", err)
		}
	}
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	pool.Registry().RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(20)
		return prog, procsim.PhasedSymbols(phases)
	})
	pool.Registry().RegisterProgram("echo", func(args []string) (procsim.Program, []string) {
		return procsim.NewEchoProgram("> "), procsim.StdSymbols
	})
	return pool
}

func TestAuthenticationRequired(t *testing.T) {
	g := NewGateway()
	g.AddSite("siteA", newSitePool(t, 1), "alice")
	g.GrantCredential("alice", "s3cret")

	if _, err := g.Submit("alice", "wrong", JobRequest{Submit: "executable = science\nqueue\n"}); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong secret: %v", err)
	}
	if _, err := g.Submit("mallory", "s3cret", JobRequest{Submit: "executable = science\nqueue\n"}); !errors.Is(err, ErrAuth) {
		t.Errorf("unknown user: %v", err)
	}
	g.RevokeCredential("alice")
	if _, err := g.Submit("alice", "s3cret", JobRequest{Submit: "executable = science\nqueue\n"}); !errors.Is(err, ErrAuth) {
		t.Errorf("revoked credential: %v", err)
	}
}

func TestGridmapAuthorization(t *testing.T) {
	g := NewGateway()
	g.AddSite("siteA", newSitePool(t, 1), "alice") // bob not authorized
	g.GrantCredential("bob", "pw")
	_, err := g.Submit("bob", "pw", JobRequest{Submit: "executable = science\nqueue\n"})
	if !errors.Is(err, ErrNoQuota) {
		t.Errorf("err = %v, want ErrNoQuota", err)
	}
}

func TestBrokerPicksSiteWithCapacity(t *testing.T) {
	g := NewGateway()
	g.AddSite("small", newSitePool(t, 1), "alice")
	g.AddSite("big", newSitePool(t, 4), "alice")
	g.GrantCredential("alice", "pw")

	job, err := g.Submit("alice", "pw", JobRequest{Submit: "executable = science\nqueue\n"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.Site != "big" {
		t.Errorf("brokered to %q, want big", job.Site)
	}
	if st, err := job.Wait(30 * time.Second); err != nil || st.Code != 0 {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	if job.Status() != condor.StatusCompleted {
		t.Errorf("status = %v", job.Status())
	}
}

func TestBrokerRespectsMPISize(t *testing.T) {
	g := NewGateway()
	g.AddSite("tiny", newSitePool(t, 1), "alice")
	g.GrantCredential("alice", "pw")
	_, err := g.Submit("alice", "pw", JobRequest{
		Submit: "universe = MPI\nexecutable = science\nmachine_count = 3\nqueue\n",
	})
	if !errors.Is(err, ErrNoSite) {
		t.Errorf("err = %v, want ErrNoSite", err)
	}
}

func TestDataStagingBothWays(t *testing.T) {
	g := NewGateway()
	g.AddSite("siteA", newSitePool(t, 1), "alice")
	g.GrantCredential("alice", "pw")

	job, err := g.Submit("alice", "pw", JobRequest{
		Submit:      "executable = echo\ninput = infile\noutput = outfile\nqueue\n",
		InputFiles:  map[string][]byte{"infile": []byte("grid\nstaging\n")},
		OutputFiles: []string{"outfile"},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st, err := job.Wait(30 * time.Second); err != nil || st.Code != 2 {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	out, ok := job.Output("outfile")
	if !ok || string(out) != "> grid\n> staging\n" {
		t.Errorf("outfile = %q, %v", out, ok)
	}
	if _, ok := job.Output("missing"); ok {
		t.Error("phantom output file")
	}
}

func TestBadSubmitRejected(t *testing.T) {
	g := NewGateway()
	g.AddSite("siteA", newSitePool(t, 1), "alice")
	g.GrantCredential("alice", "pw")
	if _, err := g.Submit("alice", "pw", JobRequest{Submit: "queue\n"}); err == nil {
		t.Error("bad submit accepted")
	}
}

// TestTDPUnderTheGridLayer is the experiment this package exists for
// (E19): a tool-monitored job submitted through authentication,
// brokering and staging still runs the unmodified TDP handshake — the
// extra middleware layers the paper worries about do not require any
// new tool porting.
func TestTDPUnderTheGridLayer(t *testing.T) {
	g := NewGateway()
	g.AddSite("siteA", newSitePool(t, 2), "alice")
	g.AddSite("siteB", newSitePool(t, 1), "alice")
	g.GrantCredential("alice", "pw")

	job, err := g.Submit("alice", "pw", JobRequest{
		Submit: `executable = science
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-a%pid"
+ToolDaemonOutput = "daemon.out"
queue
`,
		OutputFiles: []string{"daemon.out"},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := job.Wait(30 * time.Second)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.Code != 0 {
		t.Errorf("exit = %v", st)
	}
	// The tool's profile came back through the Grid staging path.
	data, ok := job.Output("daemon.out")
	if !ok {
		t.Fatal("daemon.out not staged back")
	}
	if !strings.Contains(string(data), "bottleneck: compute_forces") {
		t.Errorf("daemon.out = %q", data)
	}
	if got := g.Sites(); len(got) != 2 || got[0] != "siteA" {
		t.Errorf("Sites = %v", got)
	}
}
