// Package grid adds the Grid-computing layer the paper situates TDP
// under (§1: systems "such as Globus or Legion ... provide additional
// services for authentication, data staging, monitoring, and
// scheduling. While these interfaces are crucial ... they offer
// additional layers of interfaces and abstractions that must be
// negotiated when trying to deploy a run-time tool in that
// environment").
//
// A Gateway federates several sites (each an administrative domain
// with its own Condor pool and access secret). Submitting through the
// gateway exercises all four Grid services:
//
//   - authentication: the caller presents a credential previously
//     granted for their identity (the proxy-certificate gesture);
//   - scheduling (brokering): the gateway picks the authorized site
//     with the most free machines that can run the job;
//   - data staging: the request's input files are copied to the chosen
//     site's submit machine before submission;
//   - monitoring: the returned GridJob tracks status and brings output
//     files (including tool daemon output) back to the caller.
//
// The point of the experiment built on this package: the TDP machinery
// — create-paused, pid through the LASS, paradynd attach — runs
// UNCHANGED beneath the extra layer. The tool does not know the job
// arrived through a Grid.
package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tdp/internal/condor"
	"tdp/internal/procsim"
)

// Errors returned by the gateway.
var (
	ErrAuth    = errors.New("grid: authentication failed")
	ErrNoSite  = errors.New("grid: no authorized site can run the job")
	ErrNoQuota = errors.New("grid: user has no allocation at any site")
)

// Site is one administrative domain in the federation.
type Site struct {
	Name string
	Pool *condor.Pool
	// users authorized at this site (the gridmap file).
	users map[string]bool
}

// Gateway is the Grid access point.
type Gateway struct {
	mu    sync.Mutex
	sites map[string]*Site
	creds map[string]string // user -> credential hash
	seq   int
}

// NewGateway returns an empty federation.
func NewGateway() *Gateway {
	return &Gateway{
		sites: make(map[string]*Site),
		creds: make(map[string]string),
	}
}

// AddSite registers a site and the users its gridmap authorizes.
func (g *Gateway) AddSite(name string, pool *condor.Pool, authorizedUsers ...string) *Site {
	s := &Site{Name: name, Pool: pool, users: make(map[string]bool)}
	for _, u := range authorizedUsers {
		s.users[u] = true
	}
	g.mu.Lock()
	g.sites[name] = s
	g.mu.Unlock()
	return s
}

// hashCred derives the stored form of a credential.
func hashCred(secret string) string {
	sum := sha256.Sum256([]byte(secret))
	return hex.EncodeToString(sum[:])
}

// GrantCredential issues a credential for a user (the proxy
// certificate from `grid-proxy-init`). The secret itself never leaves
// the caller; the gateway stores a hash.
func (g *Gateway) GrantCredential(user, secret string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.creds[user] = hashCred(secret)
}

// RevokeCredential removes a user's credential.
func (g *Gateway) RevokeCredential(user string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.creds, user)
}

func (g *Gateway) authenticate(user, secret string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	stored, ok := g.creds[user]
	if !ok || stored != hashCred(secret) {
		return fmt.Errorf("%w: user %q", ErrAuth, user)
	}
	return nil
}

// JobRequest is a Grid job submission.
type JobRequest struct {
	// Submit is the Condor submit description (the same Figure-5B
	// dialect, TDP directives included).
	Submit string
	// InputFiles are staged to the chosen site's submit machine before
	// the job is queued.
	InputFiles map[string][]byte
	// OutputFiles are fetched back from the site after completion
	// (the job's output file and any ToolDaemonOutput files).
	OutputFiles []string
}

// GridJob tracks one brokered job.
type GridJob struct {
	ID   int
	User string
	Site string
	Job  *condor.Job

	gateway *Gateway
	request JobRequest

	mu      sync.Mutex
	outputs map[string][]byte
}

// Submit authenticates, brokers, stages, and queues a job. It returns
// a GridJob for monitoring.
func (g *Gateway) Submit(user, secret string, req JobRequest) (*GridJob, error) {
	if err := g.authenticate(user, secret); err != nil {
		return nil, err
	}
	sf, err := condor.ParseSubmit(req.Submit)
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}

	site, err := g.broker(user, sf)
	if err != nil {
		return nil, err
	}

	// Data staging: input files to the site's submit machine.
	for name, data := range req.InputFiles {
		site.Pool.SubmitFiles().Write(name, data)
	}

	jobs, err := site.Pool.SubmitParsed(sf)
	if err != nil {
		return nil, fmt.Errorf("grid: site %s: %w", site.Name, err)
	}
	g.mu.Lock()
	g.seq++
	id := g.seq
	g.mu.Unlock()
	return &GridJob{
		ID: id, User: user, Site: site.Name, Job: jobs[0],
		gateway: g, request: req,
	}, nil
}

// broker picks the authorized site with the most free machines. Sites
// where the user is not in the gridmap are skipped; ties break by
// name for determinism.
func (g *Gateway) broker(user string, sf *condor.SubmitFile) (*Site, error) {
	g.mu.Lock()
	sites := make([]*Site, 0, len(g.sites))
	for _, s := range g.sites {
		sites = append(sites, s)
	}
	g.mu.Unlock()
	sort.Slice(sites, func(i, j int) bool { return sites[i].Name < sites[j].Name })

	authorized := 0
	var best *Site
	bestFree := -1
	need := 1
	if sf.Universe == condor.UniverseMPI {
		need = sf.MachineCount
	}
	for _, s := range sites {
		if !s.users[user] {
			continue
		}
		authorized++
		free := s.Pool.Matchmaker().FreeMachines()
		if free >= need && free > bestFree {
			best, bestFree = s, free
		}
	}
	if authorized == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoQuota, user)
	}
	if best == nil {
		return nil, fmt.Errorf("%w: need %d machine(s)", ErrNoSite, need)
	}
	return best, nil
}

// Wait blocks for the job and fetches the requested output files back
// from the site — the staging-out half of data management.
func (j *GridJob) Wait(timeout time.Duration) (procsim.ExitStatus, error) {
	st, err := j.Job.WaitExit(timeout)
	if err != nil {
		return st, err
	}
	site := j.gateway.site(j.Site)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.outputs = make(map[string][]byte)
	if site != nil {
		for _, name := range j.request.OutputFiles {
			if data, ok := site.Pool.SubmitFiles().Read(name); ok {
				j.outputs[name] = data
			}
		}
	}
	return st, nil
}

// Output returns a staged-back output file after Wait.
func (j *GridJob) Output(name string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, ok := j.outputs[name]
	return data, ok
}

// Status reports the underlying queue status — the Grid monitoring
// service's view.
func (j *GridJob) Status() condor.JobStatus { return j.Job.Status() }

func (g *Gateway) site(name string) *Site {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sites[name]
}

// Sites lists federation members, sorted.
func (g *Gateway) Sites() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.sites))
	for n := range g.sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
