// Package attr implements the TDP attribute space: a set of named
// contexts, each holding (attribute, value) string pairs, with
// blocking get, asynchronous change notification, and reference-counted
// context lifetime.
//
// The paper (§2.1, §3.2) specifies that information in the shared
// space is kept as (attribute, value) pairs where both sides are
// NUL-free strings, that tdp_get blocks until the attribute appears,
// that a resource manager may hold a separate space (a "context") per
// tool, and that a context shared between a resource manager and
// several tools is destroyed when the last participant calls tdp_exit.
// This package is the in-memory engine behind both the LASS and CASS
// servers (package attrspace) and the in-process fast path used by the
// public tdp package.
//
// # Concurrency model
//
// The store is sharded: contexts are spread over a fixed array of
// shards by a hash of the context name, and each shard carries its own
// sync.RWMutex. Operations in different contexts therefore contend
// only when the contexts hash to the same shard (1/64 by default);
// read-only operations (TryGet, Snapshot, Len) take the shard lock
// shared. Per-context ordering is preserved: every mutation of a
// context holds its shard lock exclusively, so the context's Seq
// counter still totally orders its updates.
//
// Subscriber delivery is asynchronous. A Put appends the Update to
// each subscription's bounded ring buffer while it holds the shard
// lock (an O(1) slice write), and a per-subscription delivery
// goroutine drains the ring onto the subscriber's channel. Publishers
// therefore never block on slow subscribers and never perform channel
// operations inside the store's critical section. When a ring
// overflows, updates for the same attribute coalesce to the latest
// value; if nothing coalesces, the oldest update is dropped and
// counted (Subscription.Lost) — OpDestroy is never dropped. Blocked
// Gets are woken outside the lock through buffered channels, exactly
// one value each.
package attr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNoContext is returned when an operation references a context that
// does not exist (never joined, or already destroyed).
var ErrNoContext = errors.New("attr: no such context")

// ErrClosed is returned when operating on a reference after Leave.
var ErrClosed = errors.New("attr: reference already released")

// ErrNotFound is returned by non-blocking lookups for absent attributes.
var ErrNotFound = errors.New("attr: attribute not found")

// Op describes what happened to an attribute in an Update.
type Op int

const (
	// OpPut records an insert or overwrite of an attribute.
	OpPut Op = iota
	// OpDelete records removal of an attribute.
	OpDelete
	// OpDestroy records destruction of the whole context (last leave).
	OpDestroy
)

// String returns the mnemonic used in traces and logs.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpDestroy:
		return "destroy"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Update is delivered to subscribers when a context changes.
type Update struct {
	Context string // context name
	Attr    string // attribute name; empty for OpDestroy
	Value   string // new value for OpPut; previous value for OpDelete
	Op      Op
	Seq     uint64 // per-context modification sequence number
}

// entry is one stored attribute: its value and the context sequence
// number of the write that produced it. The per-entry version is what
// lets a downstream cache (the LASS read-through cache for CASS
// attributes) order fills against invalidation events.
type entry struct {
	value string
	seq   uint64
}

// spaceContext is one named attribute space.
type spaceContext struct {
	name    string
	sh      *shard // owning shard; its mutex guards every field below
	refs    int
	attrs   map[string]entry
	seq     uint64
	log     []changeEntry            // bounded mutation log, oldest first
	waiters map[string][]chan Update // blocked Gets per attribute
	subs    map[*Subscription]struct{}
}

// changeEntry is one logged mutation. The log backs delta-snapshot
// resync (the SNAPD wire verb): a reconnecting mirror that knows it is
// `since` can fetch just the mutations with seq > since instead of the
// whole context.
type changeEntry struct {
	attr  string
	value string // value written; "" for a delete
	seq   uint64
	del   bool
}

// changeLogCap bounds the retained change log per context. The log
// grows lazily (contexts that never resync pay only an occasional
// append) and is compacted amortized: once it reaches twice the cap the
// oldest half is discarded, so a warm context retains between
// changeLogCap and 2*changeLogCap recent mutations.
const changeLogCap = 1024

// appendLog records one mutation. Callers hold the shard lock.
func (c *spaceContext) appendLog(e changeEntry) {
	if len(c.log) >= 2*changeLogCap {
		n := copy(c.log, c.log[len(c.log)-changeLogCap:])
		c.log = c.log[:n]
	}
	c.log = append(c.log, e)
}

// shard is one lock domain of the sharded context map.
type shard struct {
	mu       sync.RWMutex
	contexts map[string]*spaceContext
}

// DefaultShards is the shard count NewSpace uses. 64 shards keep the
// per-shard collision probability low for realistic pool sizes
// (hundreds of live job contexts) at a fixed, small footprint.
const DefaultShards = 64

// Space holds every context. A single Space instance backs one
// attribute space server (one LASS or the CASS).
type Space struct {
	shards []shard
	mask   uint32
}

// NewSpace returns an empty attribute space with DefaultShards shards.
func NewSpace() *Space {
	return NewSpaceShards(DefaultShards)
}

// NewSpaceShards returns an empty attribute space with n shards
// (rounded up to a power of two, minimum 1). n = 1 degenerates to a
// single global lock — useful only as a benchmark baseline.
func NewSpaceShards(n int) *Space {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Space{shards: make([]shard, size), mask: uint32(size - 1)}
	for i := range s.shards {
		s.shards[i].contexts = make(map[string]*spaceContext)
	}
	return s
}

// shardFor picks the shard owning a context name (FNV-1a).
func (s *Space) shardFor(name string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return &s.shards[h&s.mask]
}

// Join enters the named context, creating it if needed, and returns a
// reference. Each successful Join must be balanced by Leave; the
// context and all its attributes are destroyed when the last reference
// leaves, mirroring tdp_exit semantics.
func (s *Space) Join(name string) *Ref {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c := sh.contexts[name]
	if c == nil {
		c = &spaceContext{
			name:    name,
			sh:      sh,
			attrs:   make(map[string]entry),
			waiters: make(map[string][]chan Update),
			subs:    make(map[*Subscription]struct{}),
		}
		sh.contexts[name] = c
	}
	c.refs++
	return &Ref{space: s, ctx: c}
}

// Contexts returns the names of live contexts, sorted.
func (s *Space) Contexts() []string {
	var names []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for n := range sh.contexts {
			names = append(names, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// Refs reports the current reference count of a context, or 0 when the
// context does not exist.
func (s *Space) Refs(name string) int {
	sh := s.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if c := sh.contexts[name]; c != nil {
		return c.refs
	}
	return 0
}

// Ref is one participant's handle on a context. It is safe for
// concurrent use by multiple goroutines.
type Ref struct {
	space *Space
	mu    sync.Mutex
	ctx   *spaceContext // nil after Leave
}

// Context returns the context name, or "" after Leave.
func (r *Ref) Context() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctx == nil {
		return ""
	}
	return r.ctx.name
}

func (r *Ref) live() (*spaceContext, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctx == nil {
		return nil, ErrClosed
	}
	return r.ctx, nil
}

// Put stores attribute = value, waking any blocked Gets and notifying
// subscribers. Matching the paper's blocking tdp_put, Put returns only
// once the value is visible in the space.
func (r *Ref) Put(attribute, value string) error {
	_, err := r.PutSeq(attribute, value)
	return err
}

// PutSeq is Put returning the context sequence number assigned to the
// write. The LASS→CASS cache uses it to version cache fills.
func (r *Ref) PutSeq(attribute, value string) (uint64, error) {
	c, err := r.live()
	if err != nil {
		return 0, err
	}
	sh := c.sh
	sh.mu.Lock()
	c.seq++
	c.attrs[attribute] = entry{value: value, seq: c.seq}
	c.appendLog(changeEntry{attr: attribute, value: value, seq: c.seq})
	u := Update{Context: c.name, Attr: attribute, Value: value, Op: OpPut, Seq: c.seq}
	waiters := c.waiters[attribute]
	delete(c.waiters, attribute)
	for sub := range c.subs {
		sub.enqueue(u) // O(1) ring append; never blocks
	}
	sh.mu.Unlock()

	for _, w := range waiters {
		w <- u // buffered, never blocks
	}
	return u.Seq, nil
}

// KV is one attribute/value pair in a batched put.
type KV struct {
	Key   string
	Value string
}

// PutBatch stores every pair in order under a single lock acquisition,
// waking blocked Gets and notifying subscribers exactly as the
// equivalent sequence of Puts would (one Update per pair, consecutive
// sequence numbers). It is the engine behind the MPUT wire verb: a
// daemon publishing its startup attributes pays one lock round and one
// wakeup sweep instead of N.
func (r *Ref) PutBatch(pairs []KV) error {
	_, err := r.PutBatchSeq(pairs)
	return err
}

// PutBatchSeq is PutBatch returning the sequence number of the last
// pair's write (pair i received seq last-len+i+1). Zero pairs return
// seq 0.
func (r *Ref) PutBatchSeq(pairs []KV) (uint64, error) {
	if len(pairs) == 0 {
		return 0, nil
	}
	c, err := r.live()
	if err != nil {
		return 0, err
	}
	sh := c.sh
	type wake struct {
		chans []chan Update
		u     Update
	}
	var wakes []wake
	sh.mu.Lock()
	for _, p := range pairs {
		c.seq++
		c.attrs[p.Key] = entry{value: p.Value, seq: c.seq}
		c.appendLog(changeEntry{attr: p.Key, value: p.Value, seq: c.seq})
		u := Update{Context: c.name, Attr: p.Key, Value: p.Value, Op: OpPut, Seq: c.seq}
		if ws := c.waiters[p.Key]; len(ws) > 0 {
			wakes = append(wakes, wake{chans: ws, u: u})
			delete(c.waiters, p.Key)
		}
		for sub := range c.subs {
			sub.enqueue(u)
		}
	}
	last := c.seq
	sh.mu.Unlock()

	for _, w := range wakes {
		for _, ch := range w.chans {
			ch <- w.u // buffered, never blocks
		}
	}
	return last, nil
}

// TryGet returns the current value without blocking. It returns
// ErrNotFound when the attribute is absent.
func (r *Ref) TryGet(attribute string) (string, error) {
	v, _, err := r.TryGetSeq(attribute)
	return v, err
}

// TryGetSeq is TryGet additionally returning the sequence number of
// the write that produced the value.
func (r *Ref) TryGetSeq(attribute string) (string, uint64, error) {
	c, err := r.live()
	if err != nil {
		return "", 0, err
	}
	sh := c.sh
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := c.attrs[attribute]
	if !ok {
		return "", 0, ErrNotFound
	}
	return e.value, e.seq, nil
}

// Get blocks until the attribute is present (or ctx is done) and
// returns its value. This is the paper's blocking tdp_get: paradynd
// blocks on "pid" until the starter puts it.
func (r *Ref) Get(ctx context.Context, attribute string) (string, error) {
	v, _, err := r.GetSeq(ctx, attribute)
	return v, err
}

// GetSeq is Get additionally returning the sequence number of the
// write that produced the value.
func (r *Ref) GetSeq(ctx context.Context, attribute string) (string, uint64, error) {
	c, err := r.live()
	if err != nil {
		return "", 0, err
	}
	sh := c.sh
	// Fast path: present already — shared lock only.
	sh.mu.RLock()
	if e, ok := c.attrs[attribute]; ok {
		sh.mu.RUnlock()
		return e.value, e.seq, nil
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	// Re-check: a Put may have landed between the two locks.
	if e, ok := c.attrs[attribute]; ok {
		sh.mu.Unlock()
		return e.value, e.seq, nil
	}
	wait := make(chan Update, 1)
	c.waiters[attribute] = append(c.waiters[attribute], wait)
	sh.mu.Unlock()

	select {
	case u := <-wait:
		return u.Value, u.Seq, nil
	case <-ctx.Done():
		sh.mu.Lock()
		// Remove our waiter unless Put already consumed it.
		ws := c.waiters[attribute]
		for i, w := range ws {
			if w == wait {
				c.waiters[attribute] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		if len(c.waiters[attribute]) == 0 {
			delete(c.waiters, attribute)
		}
		sh.mu.Unlock()
		// A Put may have raced with cancellation; prefer the value.
		select {
		case u := <-wait:
			return u.Value, u.Seq, nil
		default:
		}
		return "", 0, ctx.Err()
	}
}

// Delete removes an attribute. Deleting an absent attribute is a no-op.
func (r *Ref) Delete(attribute string) error {
	_, err := r.DeleteSeq(attribute)
	return err
}

// DeleteSeq is Delete returning the sequence number assigned to the
// deletion; a no-op delete of an absent attribute returns 0.
func (r *Ref) DeleteSeq(attribute string) (uint64, error) {
	c, err := r.live()
	if err != nil {
		return 0, err
	}
	sh := c.sh
	sh.mu.Lock()
	prev, ok := c.attrs[attribute]
	if !ok {
		sh.mu.Unlock()
		return 0, nil
	}
	c.seq++
	delete(c.attrs, attribute)
	c.appendLog(changeEntry{attr: attribute, seq: c.seq, del: true})
	u := Update{Context: c.name, Attr: attribute, Value: prev.value, Op: OpDelete, Seq: c.seq}
	for sub := range c.subs {
		sub.enqueue(u)
	}
	sh.mu.Unlock()
	return u.Seq, nil
}

// Snapshot returns a copy of every attribute in the context.
func (r *Ref) Snapshot() (map[string]string, error) {
	c, err := r.live()
	if err != nil {
		return nil, err
	}
	sh := c.sh
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make(map[string]string, len(c.attrs))
	for k, e := range c.attrs {
		out[k] = e.value
	}
	return out, nil
}

// Versioned is a value paired with the seq of the write that produced
// it, as returned by SnapshotSeq.
type Versioned struct {
	Value string
	Seq   uint64
}

// SnapshotSeq returns a copy of every attribute together with the seq
// of the write that produced it, plus the context's current sequence
// number. A reconnecting mirror (attrspace.Session) diffs this against
// its last-known per-attribute seqs to resynchronize after a gap:
// entries with a newer seq are replayed, known attributes missing from
// the snapshot were deleted while it was away, and the context seq
// versions those synthetic deletions.
func (r *Ref) SnapshotSeq() (map[string]Versioned, uint64, error) {
	c, err := r.live()
	if err != nil {
		return nil, 0, err
	}
	sh := c.sh
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make(map[string]Versioned, len(c.attrs))
	for k, e := range c.attrs {
		out[k] = Versioned{Value: e.value, Seq: e.seq}
	}
	return out, c.seq, nil
}

// Change is one replayable mutation returned by ChangesSince.
type Change struct {
	Attr   string
	Value  string // value written; "" for a delete
	Seq    uint64
	Delete bool
}

// ChangesSince returns the mutations applied to the context after
// sequence number `since`, oldest first, together with the context's
// current sequence number. ok reports whether the bounded change log
// still covers the requested gap; when it is false the caller must fall
// back to a full versioned snapshot (SnapshotSeq). This is the engine
// behind the SNAPD delta-resync verb: reconnect traffic proportional to
// the gap, not to the context size.
func (r *Ref) ChangesSince(since uint64) (changes []Change, seq uint64, ok bool, err error) {
	c, lerr := r.live()
	if lerr != nil {
		return nil, 0, false, lerr
	}
	sh := c.sh
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if since >= c.seq {
		// Nothing missed (or the caller is ahead of us — an epoch
		// restart the session layer detects from the returned seq).
		return nil, c.seq, true, nil
	}
	// The log holds consecutive seqs ending at c.seq; it covers the gap
	// iff its oldest entry is no newer than since+1.
	if len(c.log) == 0 || c.log[0].seq > since+1 {
		return nil, c.seq, false, nil
	}
	i := sort.Search(len(c.log), func(i int) bool { return c.log[i].seq > since })
	out := make([]Change, 0, len(c.log)-i)
	for _, e := range c.log[i:] {
		out = append(out, Change{Attr: e.attr, Value: e.value, Seq: e.seq, Delete: e.del})
	}
	return out, c.seq, true, nil
}

// Len reports the number of attributes in the context.
func (r *Ref) Len() (int, error) {
	c, err := r.live()
	if err != nil {
		return 0, err
	}
	sh := c.sh
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(c.attrs), nil
}

// Leave releases the reference. When the last participant leaves, the
// context is destroyed: attributes are dropped, blocked Gets fail
// closed (their channels are abandoned but their contexts will cancel
// them), and subscribers receive a final OpDestroy update and are
// closed. Leave is idempotent per reference.
func (r *Ref) Leave() error {
	r.mu.Lock()
	c := r.ctx
	r.ctx = nil
	r.mu.Unlock()
	if c == nil {
		return ErrClosed
	}
	sh := c.sh
	sh.mu.Lock()
	c.refs--
	if c.refs > 0 {
		sh.mu.Unlock()
		return nil
	}
	delete(sh.contexts, c.name)
	c.seq++
	u := Update{Context: c.name, Op: OpDestroy, Seq: c.seq}
	for sub := range c.subs {
		sub.enqueue(u)
		sub.finish()
	}
	c.subs = make(map[*Subscription]struct{})
	c.waiters = make(map[string][]chan Update)
	sh.mu.Unlock()
	return nil
}

// Subscription delivers Updates for a context through a bounded ring
// buffer drained by a dedicated delivery goroutine, so publishers
// never block on (or even perform channel operations for) a slow
// subscriber.
//
// Overflow policy, in order:
//  1. An update whose attribute already has a queued update replaces
//     it in place (coalesce-to-latest — the subscriber still observes
//     the final value of every attribute, though intermediate values
//     and cross-attribute interleaving may be elided; Coalesced
//     counts these).
//  2. Otherwise the oldest queued update is dropped (Lost counts
//     these). A consumer that needs to detect elision — a cache that
//     must invalidate what it missed — watches Lost.
//  3. OpDestroy is never coalesced away or dropped.
//
// The consumer must drain Updates until the channel closes, or call
// Unsubscribe; an abandoned, undrained subscription pins its delivery
// goroutine.
type Subscription struct {
	ch   chan Update
	wake chan struct{} // cap 1: "queue non-empty or done changed"
	stop chan struct{} // closed by Unsubscribe: abort delivery

	mu       sync.Mutex
	queue    []Update
	idx      map[string]int // attr -> absolute index of newest queued update
	base     int            // absolute index of queue[0]
	limit    int
	done     bool // no further enqueues; delivery closes ch once drained
	lost     uint64
	coal     uint64
	stopOnce sync.Once
}

// Updates returns the channel on which updates arrive. The channel is
// closed when the subscription is cancelled or the context destroyed.
func (s *Subscription) Updates() <-chan Update { return s.ch }

// Depth reports the number of updates currently queued (excluding any
// buffered in the delivery channel).
func (s *Subscription) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Lost reports the cumulative count of updates dropped on ring
// overflow (coalesced updates are not lost; see Coalesced).
func (s *Subscription) Lost() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}

// Coalesced reports the cumulative count of updates that replaced an
// older queued update for the same attribute on ring overflow.
func (s *Subscription) Coalesced() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coal
}

// enqueue adds an update to the ring. Called with the owning shard's
// lock held, so it must stay O(1) and non-blocking.
func (s *Subscription) enqueue(u Update) {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	if len(s.queue) >= s.limit && u.Op != OpDestroy {
		// Coalesce to latest for the same attribute.
		if abs, ok := s.idx[u.Attr]; ok && abs >= s.base {
			if q := &s.queue[abs-s.base]; q.Op != OpDestroy {
				*q = u
				s.coal++
				s.mu.Unlock()
				s.signal()
				return
			}
		}
		// Nothing to coalesce: drop the oldest non-destroy update.
		for i := range s.queue {
			if s.queue[i].Op != OpDestroy {
				if s.idx[s.queue[i].Attr] == s.base+i {
					delete(s.idx, s.queue[i].Attr)
				}
				copy(s.queue[i:], s.queue[i+1:])
				s.queue = s.queue[:len(s.queue)-1]
				s.lost++
				break
			}
		}
		// Indexes after the removed slot shifted down by one; rather
		// than rewrite the map (O(n)), rebase: entries are validated
		// against the queue on use, so a slightly stale index only
		// costs a missed coalesce, never a wrong one — except that a
		// stale index could now point at a different attr's slot.
		// Rebuild to stay exact; the ring is small and overflow is the
		// rare path.
		for i := range s.queue {
			s.idx[s.queue[i].Attr] = s.base + i
		}
	}
	s.queue = append(s.queue, u)
	if u.Op != OpDestroy {
		s.idx[u.Attr] = s.base + len(s.queue) - 1
	}
	s.mu.Unlock()
	s.signal()
}

func (s *Subscription) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// finish marks the subscription complete: no more enqueues; the
// delivery goroutine closes the channel once the ring drains.
func (s *Subscription) finish() {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	s.signal()
}

// run is the delivery goroutine: it drains the ring in batches onto
// the subscriber channel and closes the channel on completion.
func (s *Subscription) run() {
	var batch []Update
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			done := s.done
			s.mu.Unlock()
			if done {
				close(s.ch)
				return
			}
			select {
			case <-s.wake:
				continue
			case <-s.stop:
				close(s.ch)
				return
			}
		}
		// Swap the queue out; publishers keep appending to a fresh one.
		batch, s.queue = s.queue, batch[:0]
		s.base += len(batch)
		clear(s.idx)
		s.mu.Unlock()
		for i := range batch {
			select {
			case s.ch <- batch[i]:
			case <-s.stop:
				close(s.ch)
				return
			}
		}
	}
}

// Subscribe registers for all subsequent updates in the context. The
// buffer argument sizes both the ring buffer and the delivery channel
// (minimum 1); size it for the expected burst — on overflow the ring
// coalesces per attribute and then drops oldest (see Subscription).
func (r *Ref) Subscribe(buffer int) (*Subscription, error) {
	c, err := r.live()
	if err != nil {
		return nil, err
	}
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscription{
		ch:    make(chan Update, buffer),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		idx:   make(map[string]int),
		limit: buffer,
	}
	sh := c.sh
	sh.mu.Lock()
	if r.isClosed() || c.refs == 0 {
		sh.mu.Unlock()
		return nil, ErrClosed
	}
	c.subs[sub] = struct{}{}
	sh.mu.Unlock()
	go sub.run()
	return sub, nil
}

func (r *Ref) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctx == nil
}

// Unsubscribe cancels a subscription and closes its channel. Updates
// still queued at cancellation are discarded.
func (r *Ref) Unsubscribe(sub *Subscription) {
	r.mu.Lock()
	c := r.ctx
	r.mu.Unlock()
	if c != nil {
		sh := c.sh
		sh.mu.Lock()
		delete(c.subs, sub)
		sh.mu.Unlock()
	}
	sub.mu.Lock()
	sub.done = true
	sub.mu.Unlock()
	sub.stopOnce.Do(func() { close(sub.stop) })
}
