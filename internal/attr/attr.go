// Package attr implements the TDP attribute space: a set of named
// contexts, each holding (attribute, value) string pairs, with
// blocking get, asynchronous change notification, and reference-counted
// context lifetime.
//
// The paper (§2.1, §3.2) specifies that information in the shared
// space is kept as (attribute, value) pairs where both sides are
// NUL-free strings, that tdp_get blocks until the attribute appears,
// that a resource manager may hold a separate space (a "context") per
// tool, and that a context shared between a resource manager and
// several tools is destroyed when the last participant calls tdp_exit.
// This package is the in-memory engine behind both the LASS and CASS
// servers (package attrspace) and the in-process fast path used by the
// public tdp package.
package attr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNoContext is returned when an operation references a context that
// does not exist (never joined, or already destroyed).
var ErrNoContext = errors.New("attr: no such context")

// ErrClosed is returned when operating on a reference after Leave.
var ErrClosed = errors.New("attr: reference already released")

// ErrNotFound is returned by non-blocking lookups for absent attributes.
var ErrNotFound = errors.New("attr: attribute not found")

// Op describes what happened to an attribute in an Update.
type Op int

const (
	// OpPut records an insert or overwrite of an attribute.
	OpPut Op = iota
	// OpDelete records removal of an attribute.
	OpDelete
	// OpDestroy records destruction of the whole context (last leave).
	OpDestroy
)

// String returns the mnemonic used in traces and logs.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpDestroy:
		return "destroy"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Update is delivered to subscribers when a context changes.
type Update struct {
	Context string // context name
	Attr    string // attribute name; empty for OpDestroy
	Value   string // new value for OpPut; previous value for OpDelete
	Op      Op
	Seq     uint64 // per-context modification sequence number
}

// spaceContext is one named attribute space.
type spaceContext struct {
	name    string
	refs    int
	attrs   map[string]string
	seq     uint64
	waiters map[string][]chan string // blocked Gets per attribute
	subs    map[*Subscription]struct{}
}

// Space holds every context. A single Space instance backs one
// attribute space server (one LASS or the CASS).
type Space struct {
	mu       sync.Mutex
	contexts map[string]*spaceContext
}

// NewSpace returns an empty attribute space.
func NewSpace() *Space {
	return &Space{contexts: make(map[string]*spaceContext)}
}

// Join enters the named context, creating it if needed, and returns a
// reference. Each successful Join must be balanced by Leave; the
// context and all its attributes are destroyed when the last reference
// leaves, mirroring tdp_exit semantics.
func (s *Space) Join(name string) *Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.contexts[name]
	if c == nil {
		c = &spaceContext{
			name:    name,
			attrs:   make(map[string]string),
			waiters: make(map[string][]chan string),
			subs:    make(map[*Subscription]struct{}),
		}
		s.contexts[name] = c
	}
	c.refs++
	return &Ref{space: s, ctx: c}
}

// Contexts returns the names of live contexts, sorted.
func (s *Space) Contexts() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.contexts))
	for n := range s.contexts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Refs reports the current reference count of a context, or 0 when the
// context does not exist.
func (s *Space) Refs(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.contexts[name]; c != nil {
		return c.refs
	}
	return 0
}

// Ref is one participant's handle on a context. It is safe for
// concurrent use by multiple goroutines.
type Ref struct {
	space *Space
	mu    sync.Mutex
	ctx   *spaceContext // nil after Leave
}

// Context returns the context name, or "" after Leave.
func (r *Ref) Context() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctx == nil {
		return ""
	}
	return r.ctx.name
}

func (r *Ref) live() (*spaceContext, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctx == nil {
		return nil, ErrClosed
	}
	return r.ctx, nil
}

// Put stores attribute = value, waking any blocked Gets and notifying
// subscribers. Matching the paper's blocking tdp_put, Put returns only
// once the value is visible in the space.
func (r *Ref) Put(attribute, value string) error {
	c, err := r.live()
	if err != nil {
		return err
	}
	s := r.space
	s.mu.Lock()
	c.seq++
	c.attrs[attribute] = value
	u := Update{Context: c.name, Attr: attribute, Value: value, Op: OpPut, Seq: c.seq}
	waiters := c.waiters[attribute]
	delete(c.waiters, attribute)
	subs := subscribers(c)
	s.mu.Unlock()

	for _, w := range waiters {
		w <- value // buffered, never blocks
	}
	for _, sub := range subs {
		sub.deliver(u)
	}
	return nil
}

// KV is one attribute/value pair in a batched put.
type KV struct {
	Key   string
	Value string
}

// PutBatch stores every pair in order under a single lock acquisition,
// waking blocked Gets and notifying subscribers exactly as the
// equivalent sequence of Puts would (one Update per pair, consecutive
// sequence numbers). It is the engine behind the MPUT wire verb: a
// daemon publishing its startup attributes pays one lock round and one
// wakeup sweep instead of N.
func (r *Ref) PutBatch(pairs []KV) error {
	if len(pairs) == 0 {
		return nil
	}
	c, err := r.live()
	if err != nil {
		return err
	}
	s := r.space
	type wake struct {
		chans []chan string
		value string
	}
	var wakes []wake
	updates := make([]Update, 0, len(pairs))
	s.mu.Lock()
	for _, p := range pairs {
		c.seq++
		c.attrs[p.Key] = p.Value
		updates = append(updates, Update{Context: c.name, Attr: p.Key, Value: p.Value, Op: OpPut, Seq: c.seq})
		if ws := c.waiters[p.Key]; len(ws) > 0 {
			wakes = append(wakes, wake{chans: ws, value: p.Value})
			delete(c.waiters, p.Key)
		}
	}
	subs := subscribers(c)
	s.mu.Unlock()

	for _, w := range wakes {
		for _, ch := range w.chans {
			ch <- w.value // buffered, never blocks
		}
	}
	for _, u := range updates {
		for _, sub := range subs {
			sub.deliver(u)
		}
	}
	return nil
}

// TryGet returns the current value without blocking. It returns
// ErrNotFound when the attribute is absent.
func (r *Ref) TryGet(attribute string) (string, error) {
	c, err := r.live()
	if err != nil {
		return "", err
	}
	r.space.mu.Lock()
	defer r.space.mu.Unlock()
	v, ok := c.attrs[attribute]
	if !ok {
		return "", ErrNotFound
	}
	return v, nil
}

// Get blocks until the attribute is present (or ctx is done) and
// returns its value. This is the paper's blocking tdp_get: paradynd
// blocks on "pid" until the starter puts it.
func (r *Ref) Get(ctx context.Context, attribute string) (string, error) {
	c, err := r.live()
	if err != nil {
		return "", err
	}
	s := r.space
	s.mu.Lock()
	if v, ok := c.attrs[attribute]; ok {
		s.mu.Unlock()
		return v, nil
	}
	wait := make(chan string, 1)
	c.waiters[attribute] = append(c.waiters[attribute], wait)
	s.mu.Unlock()

	select {
	case v := <-wait:
		return v, nil
	case <-ctx.Done():
		s.mu.Lock()
		// Remove our waiter unless Put already consumed it.
		ws := c.waiters[attribute]
		for i, w := range ws {
			if w == wait {
				c.waiters[attribute] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		if len(c.waiters[attribute]) == 0 {
			delete(c.waiters, attribute)
		}
		s.mu.Unlock()
		// A Put may have raced with cancellation; prefer the value.
		select {
		case v := <-wait:
			return v, nil
		default:
		}
		return "", ctx.Err()
	}
}

// Delete removes an attribute. Deleting an absent attribute is a no-op.
func (r *Ref) Delete(attribute string) error {
	c, err := r.live()
	if err != nil {
		return err
	}
	s := r.space
	s.mu.Lock()
	prev, ok := c.attrs[attribute]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	c.seq++
	delete(c.attrs, attribute)
	u := Update{Context: c.name, Attr: attribute, Value: prev, Op: OpDelete, Seq: c.seq}
	subs := subscribers(c)
	s.mu.Unlock()
	for _, sub := range subs {
		sub.deliver(u)
	}
	return nil
}

// Snapshot returns a copy of every attribute in the context.
func (r *Ref) Snapshot() (map[string]string, error) {
	c, err := r.live()
	if err != nil {
		return nil, err
	}
	r.space.mu.Lock()
	defer r.space.mu.Unlock()
	out := make(map[string]string, len(c.attrs))
	for k, v := range c.attrs {
		out[k] = v
	}
	return out, nil
}

// Len reports the number of attributes in the context.
func (r *Ref) Len() (int, error) {
	c, err := r.live()
	if err != nil {
		return 0, err
	}
	r.space.mu.Lock()
	defer r.space.mu.Unlock()
	return len(c.attrs), nil
}

// Leave releases the reference. When the last participant leaves, the
// context is destroyed: attributes are dropped, blocked Gets fail
// closed (their channels are abandoned but their contexts will cancel
// them), and subscribers receive a final OpDestroy update and are
// closed. Leave is idempotent per reference.
func (r *Ref) Leave() error {
	r.mu.Lock()
	c := r.ctx
	r.ctx = nil
	r.mu.Unlock()
	if c == nil {
		return ErrClosed
	}
	s := r.space
	s.mu.Lock()
	c.refs--
	if c.refs > 0 {
		s.mu.Unlock()
		return nil
	}
	delete(s.contexts, c.name)
	c.seq++
	u := Update{Context: c.name, Op: OpDestroy, Seq: c.seq}
	subs := subscribers(c)
	c.subs = make(map[*Subscription]struct{})
	c.waiters = make(map[string][]chan string)
	s.mu.Unlock()
	for _, sub := range subs {
		sub.deliver(u)
		sub.close()
	}
	return nil
}

// Subscription delivers Updates for a context. Updates are buffered;
// a subscriber that falls behind beyond its buffer loses the oldest
// undelivered update rather than blocking publishers (size the buffer
// for the expected burst — attribute traffic in TDP is low-rate
// configuration exchange).
type Subscription struct {
	mu     sync.Mutex
	ch     chan Update
	closed bool
}

// Updates returns the channel on which updates arrive. The channel is
// closed when the subscription is cancelled or the context destroyed.
func (s *Subscription) Updates() <-chan Update { return s.ch }

func (s *Subscription) deliver(u Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for {
		select {
		case s.ch <- u:
			return
		default:
			// Buffer full: drop the oldest update to stay live.
			select {
			case <-s.ch:
			default:
			}
		}
	}
}

func (s *Subscription) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.ch)
}

// Subscribe registers for all subsequent updates in the context. The
// buffer argument sizes the delivery channel (minimum 1).
func (r *Ref) Subscribe(buffer int) (*Subscription, error) {
	c, err := r.live()
	if err != nil {
		return nil, err
	}
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscription{ch: make(chan Update, buffer)}
	r.space.mu.Lock()
	c.subs[sub] = struct{}{}
	r.space.mu.Unlock()
	return sub, nil
}

// Unsubscribe cancels a subscription and closes its channel.
func (r *Ref) Unsubscribe(sub *Subscription) {
	r.mu.Lock()
	c := r.ctx
	r.mu.Unlock()
	if c != nil {
		r.space.mu.Lock()
		delete(c.subs, sub)
		r.space.mu.Unlock()
	}
	sub.close()
}

func subscribers(c *spaceContext) []*Subscription {
	out := make([]*Subscription, 0, len(c.subs))
	for s := range c.subs {
		out = append(out, s)
	}
	return out
}
