package attr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestShardCounts verifies construction rounds to a power of two and
// that a single-shard space still behaves correctly.
func TestShardCounts(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128},
	} {
		s := NewSpaceShards(tc.in)
		if len(s.shards) != tc.want {
			t.Errorf("NewSpaceShards(%d): %d shards, want %d", tc.in, len(s.shards), tc.want)
		}
	}
	s := NewSpaceShards(1)
	r := s.Join("only")
	defer r.Leave()
	if err := r.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.TryGet("k"); v != "v" {
		t.Fatalf("TryGet = %q", v)
	}
}

// TestShardIsolation checks that contexts land on stable shards and
// that operations across many contexts don't interfere.
func TestShardIsolation(t *testing.T) {
	s := NewSpace()
	const n = 256 // several contexts per shard
	refs := make([]*Ref, n)
	for i := range refs {
		refs[i] = s.Join(fmt.Sprintf("ctx%d", i))
		refs[i].Put("id", fmt.Sprintf("%d", i))
	}
	for i, r := range refs {
		if v, err := r.TryGet("id"); err != nil || v != fmt.Sprintf("%d", i) {
			t.Fatalf("ctx%d: TryGet = %q, %v", i, v, err)
		}
	}
	if got := len(s.Contexts()); got != n {
		t.Fatalf("Contexts = %d, want %d", got, n)
	}
	for _, r := range refs {
		r.Leave()
	}
	if got := len(s.Contexts()); got != 0 {
		t.Fatalf("Contexts after leave = %d, want 0", got)
	}
}

// TestSeqOrderPerContextAcrossShards verifies the per-context Seq
// total order survives concurrent traffic in many other contexts.
func TestSeqOrderPerContextAcrossShards(t *testing.T) {
	s := NewSpace()
	r := s.Join("watched")
	defer r.Leave()
	sub, err := r.Subscribe(4096)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Noise: other contexts churning concurrently.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rr := s.Join(fmt.Sprintf("noise%d-%d", g, i%7))
				rr.Put("a", "b")
				rr.Leave()
			}
		}(g)
	}
	const puts = 500
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < puts; i++ {
			r.Put("k", fmt.Sprintf("%d", i))
		}
	}()
	var last uint64
	for i := 0; i < puts; i++ {
		select {
		case u := <-sub.Updates():
			if u.Seq <= last {
				t.Errorf("seq %d after %d", u.Seq, last)
			}
			last = u.Seq
		case <-time.After(5 * time.Second):
			t.Fatalf("update %d never arrived", i)
		}
	}
	wg.Wait()
}

// TestConcurrentLifecycleRace races context create/destroy against
// Subscribe and blocked Get over a small randomized set of context
// names. Run under -race this exercises the shard lock discipline,
// subscription teardown, and waiter cleanup.
func TestConcurrentLifecycleRace(t *testing.T) {
	s := NewSpace()
	names := []string{"a", "b", "c", "dd", "ee", "ff", "long-context-name"}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churners: join, put a little, leave (often destroying).
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := s.Join(names[rng.Intn(len(names))])
				for i := 0; i < rng.Intn(4); i++ {
					r.Put(fmt.Sprintf("k%d", rng.Intn(8)), "v")
				}
				if rng.Intn(3) == 0 {
					r.Delete(fmt.Sprintf("k%d", rng.Intn(8)))
				}
				r.Leave()
			}
		}(int64(g))
	}

	// Subscribers: subscribe, consume briefly, unsubscribe or leave.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed * 77))
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := s.Join(names[rng.Intn(len(names))])
				sub, err := r.Subscribe(4)
				if err != nil {
					r.Leave()
					continue
				}
				deadline := time.After(time.Millisecond)
			drain:
				for {
					select {
					case _, ok := <-sub.Updates():
						if !ok {
							break drain
						}
					case <-deadline:
						break drain
					}
				}
				r.Unsubscribe(sub)
				r.Leave()
			}
		}(int64(g))
	}

	// Blocked getters: wait on attributes that may never arrive.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed * 131))
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := s.Join(names[rng.Intn(len(names))])
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(2000))*time.Microsecond)
				_, err := r.Get(ctx, fmt.Sprintf("k%d", rng.Intn(8)))
				cancel()
				if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					t.Errorf("Get: %v", err)
				}
				r.Leave()
			}
		}(int64(g))
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Everything left should tear down cleanly to zero contexts.
	if left := s.Contexts(); len(left) != 0 {
		t.Errorf("contexts leaked: %v", left)
	}
}

// TestOverflowCoalescesToLatest fills a tiny ring with repeated writes
// to the same attribute while delivery is stalled; the subscriber must
// observe the final value, with the elided ones counted as coalesced.
func TestOverflowCoalescesToLatest(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	sub, err := r.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		r.Put("hot", fmt.Sprintf("%d", i))
	}
	// Drain until we see the final value; it must arrive.
	deadline := time.After(5 * time.Second)
	var lastSeen string
	for lastSeen != fmt.Sprintf("%d", n-1) {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				t.Fatalf("channel closed before final value; last seen %q", lastSeen)
			}
			if u.Attr == "hot" {
				lastSeen = u.Value
			}
		case <-deadline:
			t.Fatalf("final value never delivered; last seen %q", lastSeen)
		}
	}
	if sub.Coalesced() == 0 && sub.Lost() == 0 {
		t.Error("expected overflow accounting (coalesced or lost > 0)")
	}
}

// TestOverflowNeverDropsDestroy stalls delivery, overflows the ring
// with distinct attributes, then destroys the context: OpDestroy must
// still arrive, and the channel must close after it.
func TestOverflowNeverDropsDestroy(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	sub, err := r.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.Put(fmt.Sprintf("k%d", i), "v") // distinct attrs: no coalescing
	}
	r.Leave() // destroys: OpDestroy enqueued even though ring is full
	sawDestroy := false
	deadline := time.After(5 * time.Second)
	for !sawDestroy {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				t.Fatal("channel closed before OpDestroy")
			}
			if u.Op == OpDestroy {
				sawDestroy = true
			}
		case <-deadline:
			t.Fatal("OpDestroy never delivered")
		}
	}
	select {
	case _, ok := <-sub.Updates():
		if ok {
			t.Error("update after OpDestroy")
		}
	case <-time.After(time.Second):
		t.Fatal("channel not closed after OpDestroy")
	}
	if sub.Lost() == 0 {
		t.Error("expected Lost > 0 after overflow with distinct attrs")
	}
}

// TestPutSeqVersions checks the seq-returning APIs agree with each
// other and with delivered updates.
func TestPutSeqVersions(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	s1, err := r.PutSeq("a", "1")
	if err != nil || s1 != 1 {
		t.Fatalf("PutSeq = %d, %v", s1, err)
	}
	last, err := r.PutBatchSeq([]KV{{"b", "2"}, {"c", "3"}})
	if err != nil || last != 3 {
		t.Fatalf("PutBatchSeq = %d, %v", last, err)
	}
	v, seq, err := r.TryGetSeq("b")
	if err != nil || v != "2" || seq != 2 {
		t.Fatalf("TryGetSeq(b) = %q, %d, %v", v, seq, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	v, seq, err = r.GetSeq(ctx, "c")
	if err != nil || v != "3" || seq != 3 {
		t.Fatalf("GetSeq(c) = %q, %d, %v", v, seq, err)
	}
	// A blocked GetSeq reports the seq of the write that woke it.
	got := make(chan uint64, 1)
	go func() {
		_, seq, err := r.GetSeq(context.Background(), "later")
		if err != nil {
			t.Errorf("GetSeq: %v", err)
		}
		got <- seq
	}()
	time.Sleep(10 * time.Millisecond)
	want, _ := r.PutSeq("later", "x")
	if seq := <-got; seq != want {
		t.Errorf("woken GetSeq seq = %d, want %d", seq, want)
	}
}
