package attr

import (
	"fmt"
	"testing"
)

func TestChangesSinceReplaysGap(t *testing.T) {
	s := NewSpace()
	r := s.Join("job")
	defer r.Leave()

	r.Put("a", "1")
	mark, _ := r.PutSeq("b", "2")
	r.Put("a", "3")
	r.Delete("b")

	changes, seq, ok, err := r.ChangesSince(mark)
	if err != nil || !ok {
		t.Fatalf("ChangesSince: ok=%v err=%v", ok, err)
	}
	if seq != mark+2 {
		t.Fatalf("seq = %d, want %d", seq, mark+2)
	}
	if len(changes) != 2 {
		t.Fatalf("got %d changes, want 2: %v", len(changes), changes)
	}
	if changes[0].Attr != "a" || changes[0].Value != "3" || changes[0].Delete {
		t.Fatalf("change 0 = %+v", changes[0])
	}
	if changes[1].Attr != "b" || !changes[1].Delete {
		t.Fatalf("change 1 = %+v", changes[1])
	}
	if changes[0].Seq >= changes[1].Seq {
		t.Fatalf("changes out of order: %+v", changes)
	}
}

func TestChangesSinceUpToDate(t *testing.T) {
	s := NewSpace()
	r := s.Join("job")
	defer r.Leave()
	seq, _ := r.PutSeq("a", "1")
	changes, cur, ok, err := r.ChangesSince(seq)
	if err != nil || !ok || len(changes) != 0 || cur != seq {
		t.Fatalf("up-to-date: changes=%v cur=%d ok=%v err=%v", changes, cur, ok, err)
	}
	// A caller ahead of the context (epoch restart) still gets ok=true
	// with the real seq so it can detect the restart itself.
	_, cur, ok, _ = r.ChangesSince(seq + 100)
	if !ok || cur != seq {
		t.Fatalf("ahead-of-context: cur=%d ok=%v", cur, ok)
	}
}

func TestChangesSinceCompacted(t *testing.T) {
	s := NewSpace()
	r := s.Join("job")
	defer r.Leave()
	// Push far past the retention bound so seq 1 is compacted away.
	for i := 0; i < 3*changeLogCap; i++ {
		r.Put(fmt.Sprintf("k%d", i%10), "v")
	}
	_, _, ok, err := r.ChangesSince(1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ChangesSince(1) reported coverage after compaction")
	}
	// A recent mark must still be covered.
	seq, _ := r.PutSeq("fresh", "x")
	r.Put("fresh", "y")
	changes, _, ok, err := r.ChangesSince(seq)
	if err != nil || !ok || len(changes) != 1 || changes[0].Value != "y" {
		t.Fatalf("recent gap: changes=%v ok=%v err=%v", changes, ok, err)
	}
}

func TestChangeLogCoversBatchAndStaysConsecutive(t *testing.T) {
	s := NewSpace()
	r := s.Join("job")
	defer r.Leave()
	r.Put("seed", "0")
	r.PutBatch([]KV{{"a", "1"}, {"b", "2"}, {"c", "3"}})
	changes, seq, ok, err := r.ChangesSince(1)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(changes) != 3 || seq != 4 {
		t.Fatalf("changes=%v seq=%d", changes, seq)
	}
	for i, c := range changes {
		if c.Seq != uint64(i+2) {
			t.Fatalf("non-consecutive seq at %d: %+v", i, changes)
		}
	}
}

func TestChangeLogBounded(t *testing.T) {
	s := NewSpace()
	r := s.Join("job")
	defer r.Leave()
	for i := 0; i < 10*changeLogCap; i++ {
		r.Put("k", "v")
	}
	c, err := r.live()
	if err != nil {
		t.Fatal(err)
	}
	c.sh.mu.RLock()
	n := len(c.log)
	c.sh.mu.RUnlock()
	if n > 2*changeLogCap {
		t.Fatalf("log grew to %d entries, cap is %d", n, 2*changeLogCap)
	}
	if n < changeLogCap {
		t.Fatalf("log retained only %d entries, want >= %d", n, changeLogCap)
	}
}
