package attr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPutThenTryGet(t *testing.T) {
	s := NewSpace()
	r := s.Join("job1")
	defer r.Leave()
	if err := r.Put("pid", "1234"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := r.TryGet("pid")
	if err != nil || v != "1234" {
		t.Fatalf("TryGet = %q, %v", v, err)
	}
}

func TestTryGetAbsent(t *testing.T) {
	s := NewSpace()
	r := s.Join("job1")
	defer r.Leave()
	if _, err := r.TryGet("nothing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestGetBlocksUntilPut(t *testing.T) {
	s := NewSpace()
	rm := s.Join("job1")
	rt := s.Join("job1")
	defer rm.Leave()
	defer rt.Leave()

	got := make(chan string)
	go func() {
		v, err := rt.Get(context.Background(), "pid")
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		got <- v
	}()

	select {
	case v := <-got:
		t.Fatalf("Get returned %q before Put", v)
	case <-time.After(20 * time.Millisecond):
	}
	if err := rm.Put("pid", "42"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	select {
	case v := <-got:
		if v != "42" {
			t.Errorf("Get = %q, want 42", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Get did not unblock after Put")
	}
}

func TestGetReturnsImmediatelyWhenPresent(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	r.Put("a", "v")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	v, err := r.Get(ctx, "a")
	if err != nil || v != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestGetCancellation(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := r.Get(ctx, "never")
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Get did not return after cancel")
	}
}

func TestGetCancelRemovesWaiter(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		r.Get(ctx, "x")
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	<-done
	// After cancellation the waiter list must be empty; a Put must not
	// try to deliver to the dead waiter (it would be harmless — buffered —
	// but the map should be cleaned).
	sh := s.shardFor("c")
	sh.mu.Lock()
	c := sh.contexts["c"]
	n := len(c.waiters["x"])
	sh.mu.Unlock()
	if n != 0 {
		t.Errorf("waiter list has %d entries after cancel, want 0", n)
	}
	if err := r.Put("x", "late"); err != nil {
		t.Fatalf("Put after cancelled Get: %v", err)
	}
}

func TestMultipleWaitersAllWake(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	const n = 16
	var wg sync.WaitGroup
	results := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := r.Get(context.Background(), "shared")
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			results <- v
		}()
	}
	time.Sleep(10 * time.Millisecond)
	r.Put("shared", "val")
	wg.Wait()
	close(results)
	count := 0
	for v := range results {
		if v != "val" {
			t.Errorf("waiter got %q", v)
		}
		count++
	}
	if count != n {
		t.Errorf("%d waiters woke, want %d", count, n)
	}
}

func TestOverwriteValue(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	r.Put("k", "v1")
	r.Put("k", "v2")
	v, _ := r.TryGet("k")
	if v != "v2" {
		t.Errorf("value = %q, want v2", v)
	}
}

func TestDelete(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	r.Put("k", "v")
	if err := r.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := r.TryGet("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("after Delete, err = %v, want ErrNotFound", err)
	}
	// Deleting an absent attribute is a no-op.
	if err := r.Delete("k"); err != nil {
		t.Errorf("Delete absent: %v", err)
	}
}

func TestContextIsolation(t *testing.T) {
	s := NewSpace()
	a := s.Join("jobA")
	b := s.Join("jobB")
	defer a.Leave()
	defer b.Leave()
	a.Put("pid", "1")
	if _, err := b.TryGet("pid"); !errors.Is(err, ErrNotFound) {
		t.Errorf("context B sees context A's attribute: err = %v", err)
	}
}

func TestRefcountDestroysContext(t *testing.T) {
	s := NewSpace()
	a := s.Join("job")
	b := s.Join("job")
	a.Put("k", "v")
	if got := s.Refs("job"); got != 2 {
		t.Fatalf("Refs = %d, want 2", got)
	}
	a.Leave()
	if got := s.Refs("job"); got != 1 {
		t.Fatalf("after one Leave, Refs = %d, want 1", got)
	}
	// Attribute survives while one participant remains.
	if v, err := b.TryGet("k"); err != nil || v != "v" {
		t.Fatalf("attribute lost while context alive: %q, %v", v, err)
	}
	b.Leave()
	if got := s.Refs("job"); got != 0 {
		t.Fatalf("after last Leave, Refs = %d, want 0", got)
	}
	// Rejoin gets a fresh, empty context.
	c := s.Join("job")
	defer c.Leave()
	if _, err := c.TryGet("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("rejoined context retained old attribute")
	}
}

func TestOpsAfterLeaveFail(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	r.Leave()
	if err := r.Put("k", "v"); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Leave: %v", err)
	}
	if _, err := r.TryGet("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("TryGet after Leave: %v", err)
	}
	if _, err := r.Get(context.Background(), "k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Leave: %v", err)
	}
	if err := r.Delete("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after Leave: %v", err)
	}
	if _, err := r.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Errorf("Snapshot after Leave: %v", err)
	}
	if err := r.Leave(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Leave: %v", err)
	}
	if r.Context() != "" {
		t.Errorf("Context after Leave = %q", r.Context())
	}
}

func TestSnapshotAndLen(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	r.Put("a", "1")
	r.Put("b", "2")
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if len(snap) != 2 || snap["a"] != "1" || snap["b"] != "2" {
		t.Errorf("Snapshot = %v", snap)
	}
	// Mutating the snapshot must not affect the space.
	snap["a"] = "hacked"
	if v, _ := r.TryGet("a"); v != "1" {
		t.Error("Snapshot aliases internal state")
	}
	if n, _ := r.Len(); n != 2 {
		t.Errorf("Len = %d, want 2", n)
	}
}

func TestSubscribeReceivesUpdates(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	sub, err := r.Subscribe(8)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	r.Put("a", "1")
	r.Put("a", "2")
	r.Delete("a")

	want := []Update{
		{Context: "c", Attr: "a", Value: "1", Op: OpPut, Seq: 1},
		{Context: "c", Attr: "a", Value: "2", Op: OpPut, Seq: 2},
		{Context: "c", Attr: "a", Value: "2", Op: OpDelete, Seq: 3},
	}
	for i, w := range want {
		select {
		case u := <-sub.Updates():
			if u != w {
				t.Errorf("update %d = %+v, want %+v", i, u, w)
			}
		case <-time.After(time.Second):
			t.Fatalf("update %d never arrived", i)
		}
	}
}

func TestSubscribeDestroyNotification(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	sub, _ := r.Subscribe(4)
	r.Leave() // last participant: context destroyed
	select {
	case u, ok := <-sub.Updates():
		if !ok {
			t.Fatal("channel closed before OpDestroy delivered")
		}
		if u.Op != OpDestroy {
			t.Errorf("Op = %v, want OpDestroy", u.Op)
		}
	case <-time.After(time.Second):
		t.Fatal("no destroy notification")
	}
	// Channel must then be closed.
	select {
	case _, ok := <-sub.Updates():
		if ok {
			t.Error("unexpected extra update")
		}
	case <-time.After(time.Second):
		t.Fatal("channel not closed after destroy")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	sub, _ := r.Subscribe(1)
	r.Unsubscribe(sub)
	// Channel closed; a Put must not panic or block.
	r.Put("a", "1")
	if _, ok := <-sub.Updates(); ok {
		t.Error("received update after Unsubscribe")
	}
}

func TestSubscriberSequenceMonotonic(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	sub, _ := r.Subscribe(128)
	const n = 100
	for i := 0; i < n; i++ {
		r.Put(fmt.Sprintf("k%d", i), "v")
	}
	var last uint64
	for i := 0; i < n; i++ {
		u := <-sub.Updates()
		if u.Seq <= last {
			t.Fatalf("sequence not monotonic: %d after %d", u.Seq, last)
		}
		last = u.Seq
	}
}

func TestConcurrentPutGetRace(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	defer r.Leave()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Put(fmt.Sprintf("k%d", g), fmt.Sprintf("%d", i))
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.TryGet(fmt.Sprintf("k%d", g))
			}
		}(g)
	}
	wg.Wait()
}

func TestContextsListing(t *testing.T) {
	s := NewSpace()
	a := s.Join("zeta")
	b := s.Join("alpha")
	defer a.Leave()
	defer b.Leave()
	got := s.Contexts()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("Contexts = %v, want [alpha zeta]", got)
	}
}

// Property: for any sequence of puts, the final TryGet of each key
// equals the last value put for that key.
func TestQuickLastWriteWins(t *testing.T) {
	f := func(ops []struct{ K, V string }) bool {
		s := NewSpace()
		r := s.Join("q")
		defer r.Leave()
		want := make(map[string]string)
		for _, op := range ops {
			if err := r.Put(op.K, op.V); err != nil {
				return false
			}
			want[op.K] = op.V
		}
		snap, err := r.Snapshot()
		if err != nil || len(snap) != len(want) {
			return false
		}
		for k, v := range want {
			if snap[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: join/leave pairs in any interleaving always end with the
// context destroyed and a fresh context on rejoin.
func TestQuickRefcountBalance(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%16) + 1
		s := NewSpace()
		refs := make([]*Ref, count)
		for i := range refs {
			refs[i] = s.Join("ctx")
		}
		if s.Refs("ctx") != count {
			return false
		}
		for _, r := range refs {
			if err := r.Leave(); err != nil {
				return false
			}
		}
		return s.Refs("ctx") == 0 && len(s.Contexts()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSubscribeAfterLeaveFails(t *testing.T) {
	s := NewSpace()
	r := s.Join("c")
	r.Leave()
	if _, err := r.Subscribe(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after Leave: %v", err)
	}
}

func TestOpString(t *testing.T) {
	if OpPut.String() != "put" || OpDelete.String() != "delete" || OpDestroy.String() != "destroy" {
		t.Error("Op.String mnemonics wrong")
	}
	if Op(99).String() != "op(99)" {
		t.Errorf("unknown op = %q", Op(99).String())
	}
}
