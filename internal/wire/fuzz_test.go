package wire

import (
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

// FuzzDecode is the native fuzz target wired into the CI smoke run
// (`make fuzz`): Decode must never panic, and anything it accepts must
// round-trip stably through Encode, AppendEncode (the unsorted
// hot-path encoder), and DecodeInto (the reusing decoder).
func FuzzDecode(f *testing.F) {
	f.Add([]byte(""))
	f.Add(NewMessage("PUT").Set("attr", "pid").Set("value", "1234").Encode())
	f.Add(NewMessage("STATS").SetTrace("aaaabbbbccccdddd", "0123456789abcdef").Encode())
	f.Add([]byte("3:PUT2;4:attr3:pid"))
	// Hot-path seeds: batched puts, hot-path encoder output, hostile counts.
	f.Add(NewMessage("MPUT").SetInt("n", 2).
		Set("k0", "pid").Set("v0", "1234").
		Set("k1", "executable_name").Set("v1", "science").Encode())
	f.Add(NewMessage("MPUT").SetInt("n", -3).Set("k0", "a").Encode())
	f.Add(NewMessage("EVENT").Set("attr", "a").Set("op", "put").Set("seq", "7").AppendEncode(nil))
	f.Add([]byte("3:PUT999999999;4:attr3:pid")) // count far past payload
	f.Add([]byte("3:PUT0;"))
	// Transport v2 seeds: mux-framed messages, window updates, delta
	// snapshots, and chunked snapshot parts.
	f.Add(NewMessage("EVENT").Set("attr", "a").Set(FieldStream, "1").Encode())
	f.Add(NewMessage("OK").Set(FieldWindow, "1:32,2:7").Encode())
	f.Add(NewMessage(VerbWinUpdate).Set(FieldWindow, "2:64").Encode())
	f.Add(NewMessage(VerbWinUpdate).Set(FieldWindow, ":::,0:-1,99999999999:1").Encode())
	f.Add(NewMessage("SNAPD").Set("context", "g").SetInt("since", 41).Encode())
	f.Add(NewMessage("DELTA").SetInt("n", 2).SetInt("seq", 44).
		Set("k0", "pid").Set("v0", "1").Set("s0", "43").
		Set("k1", "dead").Set("o1", "d").Set("s1", "44").Encode())
	f.Add(NewMessage("SNAPV").SetInt("part", 3).SetInt("more", 1).
		Set(FieldStream, "2").Set("k0", "a").Set("v0", "b").Set("s0", "9").Encode())
	f.Add(NewMessage("HELLO").Set("context", "g").Set("caps", "mux,snapd,chunk,ping").Encode())
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Decode(payload)
		if err != nil {
			return
		}
		again, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("accepted payload does not re-decode: %v", err)
		}
		if again.Verb != m.Verb || !reflect.DeepEqual(again.Fields, m.Fields) {
			t.Fatalf("unstable round trip: %v vs %v", m, again)
		}
		// The hot-path pair must agree with the deterministic pair.
		reused := new(Message)
		if err := DecodeInto(reused, m.AppendEncode(nil)); err != nil {
			t.Fatalf("AppendEncode output does not DecodeInto: %v", err)
		}
		if reused.Verb != m.Verb || !reflect.DeepEqual(reused.Fields, m.Fields) {
			t.Fatalf("hot-path round trip disagrees: %v vs %v", m, reused)
		}
		if m.EncodedSize() != len(m.Encode()) {
			t.Fatalf("EncodedSize %d != len(Encode) %d", m.EncodedSize(), len(m.Encode()))
		}
	})
}

// TestDecodeNeverPanics feeds arbitrary bytes to the decoder: it must
// return a message or an error, never panic — the server's first line
// of defense against corrupt or hostile peers.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(payload []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Decode(payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeOfMutatedEncodings flips bytes in valid encodings; the
// decoder must never panic and never mis-accept trailing garbage as
// extra fields.
func TestDecodeOfMutatedEncodings(t *testing.T) {
	base := NewMessage("PUT").Set("attr", "pid").Set("value", "1234").Encode()
	for i := 0; i < len(base); i++ {
		for _, b := range []byte{0x00, 0xFF, ':', ';', '9'} {
			mutated := append([]byte(nil), base...)
			mutated[i] = b
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on mutation at %d -> %q: %v", i, b, r)
					}
				}()
				if m, err := Decode(mutated); err == nil {
					// Accepted mutations must still be self-consistent:
					// re-encoding and re-decoding agrees.
					again, err2 := Decode(m.Encode())
					if err2 != nil || again.Verb != m.Verb {
						t.Fatalf("accepted mutation at %d is not stable", i)
					}
				}
			}()
		}
	}
}

// TestEncodeDecodeIdentityQuick is the round-trip property over fully
// random field maps, including empty and binary-ish strings.
func TestEncodeDecodeIdentityQuick(t *testing.T) {
	f := func(verb string, fields map[string]string) bool {
		m := &Message{Verb: verb, Fields: fields}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		if got.Verb != verb {
			return false
		}
		if len(got.Fields) != len(fields) {
			return false
		}
		for k, v := range fields {
			if got.Fields[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// FuzzMux feeds arbitrary _stream / _win header values through Accept
// in both flow-control granularities. Invariants: never panic, a WINUP
// is always transport-only, invalid stream IDs (0, non-numeric, past
// maxStreamID) are never accounted, and no grant — however hostile —
// pushes a send window past its initial size.
func FuzzMux(f *testing.F) {
	seeds := []struct {
		stream, win string
	}{
		{"1", "1:1"},
		{"2", "2:64"},
		{"0", "0:5"}, // WINUP-style grant for stream 0: ignored
		{"99999999999", ":::,0:-1,99999999999:1"}, // overflow stream, garbage grants
		{"-3", "2:-7"},        // negative values everywhere
		{"2", "2:1073741825"}, // grant past maxByteGrant
		{"65537", "65537:1"},  // just past maxStreamID
		{"", "1:1,2:2,3:3"},   // grants with no stream
		{"3", ""},
	}
	for _, s := range seeds {
		f.Add(s.stream, s.win, true)
		f.Add(s.stream, s.win, false)
	}
	f.Fuzz(func(t *testing.T, stream, win string, byteMode bool) {
		ca, cb := net.Pipe()
		defer ca.Close()
		defer cb.Close()
		// Drain the peer side so a threshold-triggered WINUP cannot
		// block Accept on the synchronous pipe.
		go func() {
			buf := make([]byte, 4096)
			for {
				if _, err := cb.Read(buf); err != nil {
					return
				}
			}
		}()
		x := NewMux(NewConn(ca), MuxConfig{ByteWindow: byteMode})

		// A pure window update must always be transport-only.
		wm := NewMessage(VerbWinUpdate)
		if win != "" {
			wm.Set(FieldWindow, win)
		}
		if sid, handled := x.Accept(wm); !handled || sid != 0 {
			t.Fatalf("WINUP: handled=%v sid=%d", handled, sid)
		}

		// A data message with arbitrary mux fields.
		dm := NewMessage("EVENT").Set("attr", "a")
		if stream != "" {
			dm.Set(FieldStream, stream)
		}
		if win != "" {
			dm.Set(FieldWindow, win)
		}
		sid, handled := x.Accept(dm)
		if handled {
			t.Fatal("data message reported as transport-only")
		}
		if _, ok := dm.Fields[FieldStream]; ok {
			t.Fatal("_stream survived Accept")
		}
		if _, ok := dm.Fields[FieldWindow]; ok {
			t.Fatal("_win survived Accept")
		}
		if sid > maxStreamID {
			t.Fatalf("Accept returned out-of-range stream %d", sid)
		}

		x.mu.Lock()
		defer x.mu.Unlock()
		for s, v := range x.send {
			if s == 0 || s > maxStreamID {
				t.Fatalf("send window accounted for invalid stream %d", s)
			}
			if w := x.winFor(s); v > w {
				t.Fatalf("send[%d] = %d exceeds initial window %d", s, v, w)
			}
		}
		for s := range x.pending {
			if s == 0 || s > maxStreamID {
				t.Fatalf("receive accounting for invalid stream %d", s)
			}
		}
	})
}
