package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"tdp/internal/telemetry"
)

func TestMessageRoundTrip(t *testing.T) {
	cases := []*Message{
		NewMessage("PING"),
		NewMessage("PUT").Set("attr", "pid").Set("value", "1234"),
		NewMessage("GET").Set("attr", ""),
		NewMessage("X").Set("", "empty key allowed"),
		NewMessage("ARGS").Set("args", "-p1500 -P2000"),
		NewMessage("BIN").Set("blob", "a\x00b:c;d\nnewline"),
		NewMessage("UTF").Set("dæmon", "tøøl"),
	}
	for _, m := range cases {
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("Decode(%v): %v", m, err)
		}
		if got.Verb != m.Verb || !reflect.DeepEqual(got.Fields, m.Fields) {
			t.Errorf("round trip mismatch: sent %v got %v", m, got)
		}
	}
}

func TestMessageRoundTripQuick(t *testing.T) {
	f := func(verb string, keys, vals []string) bool {
		m := NewMessage(verb)
		for i, k := range keys {
			v := ""
			if i < len(vals) {
				v = vals[i]
			}
			m.Set(k, v)
		}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		return got.Verb == m.Verb && reflect.DeepEqual(got.Fields, m.Fields)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte(""),
		[]byte("xyz"),
		[]byte("4:PING"),           // missing count
		[]byte("4:PING2;"),         // count 2 with no fields
		[]byte("-1:X0;"),           // negative length
		[]byte("4:PINGnope;"),      // non-numeric count
		[]byte("4:PING0;trailing"), // trailing bytes
		[]byte("99:short0;"),       // length past end
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", c)
		}
	}
}

func TestDecodeErrorsWrapMalformed(t *testing.T) {
	_, err := Decode([]byte("4:PING0;junk"))
	if !errors.Is(err, ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestMessageAccessors(t *testing.T) {
	m := NewMessage("V").Set("a", "1").SetInt("n", 42)
	if m.Get("a") != "1" {
		t.Errorf("Get(a) = %q", m.Get("a"))
	}
	if m.Get("missing") != "" {
		t.Errorf("Get(missing) = %q", m.Get("missing"))
	}
	if v, ok := m.Lookup("n"); !ok || v != "42" {
		t.Errorf("Lookup(n) = %q, %v", v, ok)
	}
	if _, ok := m.Lookup("nope"); ok {
		t.Error("Lookup(nope) reported present")
	}
	if m.Int("n", -1) != 42 {
		t.Errorf("Int(n) = %d", m.Int("n", -1))
	}
	if m.Int("a", -1) != 1 {
		t.Errorf("Int(a) = %d", m.Int("a", -1))
	}
	if m.Int("missing", 7) != 7 {
		t.Errorf("Int(missing) default = %d", m.Int("missing", 7))
	}
	m2 := &Message{Verb: "W"} // nil Fields
	m2.Set("k", "v")
	if m2.Get("k") != "v" {
		t.Error("Set on nil Fields map failed")
	}
}

func TestMessageString(t *testing.T) {
	m := NewMessage("PUT").Set("b", "2").Set("a", "1")
	s := m.String()
	if !strings.HasPrefix(s, "PUT ") {
		t.Errorf("String() = %q, want PUT prefix", s)
	}
	// Keys must be sorted for deterministic logs.
	if strings.Index(s, `a="1"`) > strings.Index(s, `b="2"`) {
		t.Errorf("String() keys not sorted: %q", s)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	m := NewMessage("PUT").Set("z", "1").Set("a", "2").Set("m", "3")
	first := m.Encode()
	for i := 0; i < 10; i++ {
		if !bytes.Equal(first, m.Encode()) {
			t.Fatal("Encode is not deterministic")
		}
	}
}

func TestConnSendRecvPipe(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a), NewConn(b)

	go func() {
		ca.Send(NewMessage("HELLO").Set("who", "lass"))
	}()
	got, err := cb.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Verb != "HELLO" || got.Get("who") != "lass" {
		t.Errorf("got %v", got)
	}
}

func TestConnManyMessagesInOrder(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a), NewConn(b)
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			ca.Send(NewMessage("SEQ").SetInt("i", i))
		}
	}()
	for i := 0; i < n; i++ {
		m, err := cb.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if m.Int("i", -1) != i {
			t.Fatalf("message %d arrived out of order: %v", i, m)
		}
	}
}

func TestConnConcurrentSenders(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a), NewConn(b)
	const senders, per = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ca.Send(NewMessage("M").SetInt("s", s).SetInt("i", i)); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(s)
	}
	seen := make(map[int]int)
	for i := 0; i < senders*per; i++ {
		m, err := cb.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		seen[m.Int("s", -1)]++
	}
	wg.Wait()
	for s := 0; s < senders; s++ {
		if seen[s] != per {
			t.Errorf("sender %d delivered %d messages, want %d", s, seen[s], per)
		}
	}
}

func TestConnRecvEOF(t *testing.T) {
	a, b := net.Pipe()
	cb := NewConn(b)
	a.Close()
	if _, err := cb.Recv(); err == nil {
		t.Error("Recv on closed pipe succeeded")
	}
	b.Close()
}

func TestConnRejectsOversizeHeader(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		// A header announcing more than MaxFrameSize.
		a.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	}()
	if _, err := NewConn(b).Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestConnSendRejectsOversizeMessage(t *testing.T) {
	var sink bytes.Buffer
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{&sink, &sink})
	huge := NewMessage("HUGE").Set("v", strings.Repeat("x", MaxFrameSize))
	if err := c.Send(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestConnCloseClosesUnderlying(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := NewConn(a)
	if c.Underlying() != a {
		t.Error("Underlying did not return the wrapped stream")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("write after Close succeeded")
	}
}

func TestConnCloseNonCloser(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{&buf, &buf})
	if err := c.Close(); err != nil {
		t.Errorf("Close on non-closer: %v", err)
	}
}

func TestReservedFieldForwardCompat(t *testing.T) {
	// A newer peer may stamp reserved "_"-prefixed fields this version
	// has never heard of. Decode must accept them, carry them through
	// re-encoding untouched, and named-field access must be unaffected
	// — an older daemon keeps working against a newer client.
	m := NewMessage("PUT").
		Set("attr", "pid").Set("value", "1234").
		Set("_tid", "aaaabbbbccccdddd").
		Set("_sid", "0123456789abcdef").
		Set("_future_ext", "opaque\x00blob") // unknown reserved field
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatalf("Decode with reserved fields: %v", err)
	}
	if got.Get("attr") != "pid" || got.Get("value") != "1234" {
		t.Errorf("named fields disturbed by reserved keys: %v", got)
	}
	if got.Get("_future_ext") != "opaque\x00blob" {
		t.Error("unknown reserved field not carried through")
	}
	if !reflect.DeepEqual(got.Fields, m.Fields) {
		t.Errorf("round trip mismatch: %v vs %v", got.Fields, m.Fields)
	}
	if !IsReserved("_future_ext") || IsReserved("attr") {
		t.Error("IsReserved misclassifies")
	}
}

func TestSetTraceAndTrace(t *testing.T) {
	m := NewMessage("PUT").SetTrace("tid1", "sid1")
	tid, sid := m.Trace()
	if tid != "tid1" || sid != "sid1" {
		t.Errorf("Trace() = %q, %q", tid, sid)
	}
	// Empty IDs stamp nothing: untraced messages carry no extra bytes.
	clean := NewMessage("PUT").SetTrace("", "")
	if len(clean.Fields) != 0 {
		t.Errorf("empty SetTrace added fields: %v", clean.Fields)
	}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	tid, sid = got.Trace()
	if tid != "tid1" || sid != "sid1" {
		t.Errorf("trace fields lost on the wire: %q, %q", tid, sid)
	}
}

func TestConnInstrumentCountsBytes(t *testing.T) {
	reg := telemetry.NewRegistry()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	cc, sc := NewConn(client), NewConn(server)
	cc.InstrumentRegistry(reg)

	msg := NewMessage("PUT").Set("attr", "pid").Set("value", "1")
	done := make(chan *Message, 1)
	go func() {
		m, _ := sc.Recv()
		done <- m
	}()
	if err := cc.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got := <-done; got == nil || got.Verb != "PUT" {
		t.Fatalf("Recv = %v", got)
	}
	wantBytes := int64(len(msg.Encode()) + 4)
	if got := reg.Counter("wire.tx.bytes").Value(); got != wantBytes {
		t.Errorf("tx.bytes = %d, want %d", got, wantBytes)
	}
	if got := reg.Counter("wire.tx.msgs").Value(); got != 1 {
		t.Errorf("tx.msgs = %d, want 1", got)
	}

	// And the receive side, instrumented separately.
	sc.InstrumentRegistry(reg)
	go func() {
		m, _ := sc.Recv()
		done <- m
	}()
	if err := cc.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	<-done
	if got := reg.Counter("wire.rx.bytes").Value(); got != wantBytes {
		t.Errorf("rx.bytes = %d, want %d", got, wantBytes)
	}
	if got := reg.Counter("wire.rx.msgs").Value(); got != 1 {
		t.Errorf("rx.msgs = %d, want 1", got)
	}
}
