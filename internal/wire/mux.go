package wire

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tdp/internal/telemetry"
)

// This file implements transport v2's stream multiplexing and flow
// control — an HTTP/2-lite layered over the existing framing rather
// than a new binary format. A message's stream rides in the reserved
// "_stream" field (absent = stream 0) and credit grants piggyback in
// "_win", so a v1 peer that never negotiated the extension either
// never sees the fields (senders only stamp them after capability
// negotiation) or carries them through untouched per the reserved-key
// contract.
//
// Flow control is credit-based and counted in messages, not bytes:
// each non-zero stream starts with the same fixed number of send
// credits on both sides, a send consumes one, and the receiver grants
// credits back as it consumes messages. Message counting keeps the two
// ends' accounting trivially symmetric (no drift from encoding
// differences), and bulk frames are bounded — large snapshot replays
// are chunked (see attrspace) — so a message-credit window still
// bounds the bytes a stream can have in flight.
//
// Stream 0 is the control stream: request/reply traffic is
// self-limiting (one reply per request) and exempt from flow control,
// so the RPC hot path pays nothing beyond an empty-grant check.

// Well-known stream IDs. The assignment is a protocol convention, not
// a negotiation: both ends of a capability-negotiated connection use
// the same IDs for the same traffic classes.
const (
	// StreamControl is the unflow-controlled request/reply stream.
	StreamControl uint32 = 0
	// StreamEvents carries server→client event fan-out (EVENT).
	StreamEvents uint32 = 1
	// StreamBulk carries snapshot replay chunks (SNAPV/DELTA).
	StreamBulk uint32 = 2
	// StreamSamples carries telemetry uplinks (SAMPLE/TSAMPLE).
	StreamSamples uint32 = 3
)

// DefaultCredits is the initial per-stream send window, in messages.
// It is a protocol constant: both ends of a negotiated connection
// assume it, so changing it is a capability change.
const DefaultCredits = 64

// maxStreamID bounds accepted stream IDs so a hostile peer cannot
// grow the per-stream accounting maps without bound.
const maxStreamID = 1 << 16

// VerbWinUpdate is the explicit window-update verb, sent when a
// receiver has accumulated grants and has no outgoing message to
// piggyback them on.
const VerbWinUpdate = "WINUP"

// ErrMuxClosed is returned by SendOn after Fail.
var ErrMuxClosed = errors.New("wire: mux closed")

// MuxConfig parameterizes a Mux.
type MuxConfig struct {
	// Credits is the initial per-stream send window in messages;
	// 0 means DefaultCredits. Both ends must agree (tests only).
	Credits int
	// Registry receives the wire.mux.* metrics; nil records nothing.
	Registry *telemetry.Registry
}

// Mux layers stream multiplexing with per-stream credit windows over a
// Conn. One Mux serves both directions of one connection: SendOn
// stamps outgoing messages and blocks when the stream's window is
// exhausted; Accept (called by the owner's read loop for every
// incoming message) applies the peer's credit grants, accounts
// received stream messages, and returns credits to the peer — eagerly
// piggybacked on outgoing sends, or as an explicit WINUP once half a
// window has accumulated.
type Mux struct {
	c       *Conn
	credits int // initial window per stream
	thresh  int // pending grants that force an explicit WINUP

	mu      sync.Mutex
	cond    *sync.Cond
	send    map[uint32]int // remaining send credits per stream
	pending map[uint32]int // received-but-ungranted messages per stream
	npend   int            // sum of pending
	err     error

	cStalls  *telemetry.Counter   // sends that had to wait for window
	cWinups  *telemetry.Counter   // explicit WINUP frames sent
	cPiggy   *telemetry.Counter   // grant batches piggybacked on sends
	hWait    *telemetry.Histogram // window-wait latency
	gStreams *telemetry.Gauge     // distinct send streams opened
}

// NewMux returns a Mux over c. The caller keeps using c's Recv
// directly; every received message must be passed through Accept.
func NewMux(c *Conn, cfg MuxConfig) *Mux {
	credits := cfg.Credits
	if credits <= 0 {
		credits = DefaultCredits
	}
	x := &Mux{
		c:       c,
		credits: credits,
		thresh:  (credits + 1) / 2,
		send:    make(map[uint32]int),
		pending: make(map[uint32]int),
	}
	x.cond = sync.NewCond(&x.mu)
	if reg := cfg.Registry; reg != nil {
		x.cStalls = reg.Counter("wire.mux.stalls")
		x.cWinups = reg.Counter("wire.mux.winups")
		x.cPiggy = reg.Counter("wire.mux.piggybacks")
		x.hWait = reg.Histogram("wire.mux.windowwait", nil)
		x.gStreams = reg.Gauge("wire.mux.streams")
	}
	return x
}

// SendOn transmits m on the given stream, blocking while the stream's
// send window is exhausted (stream 0 never blocks). Any accumulated
// receive-side grants piggyback on the message. Concurrent SendOn
// calls on different streams are independent: one stalled stream never
// blocks another.
func (x *Mux) SendOn(stream uint32, m *Message) error {
	if stream != StreamControl {
		if !x.tryAcquire(stream) {
			// About to block: push out any frames an enclosing Cork is
			// holding — their receipt is what funds the grants we wait
			// for, so leaving them buffered would deadlock the stream.
			x.c.Flush()
			if err := x.acquire(stream); err != nil {
				return err
			}
		}
		m.Set(FieldStream, strconv.FormatUint(uint64(stream), 10))
	}
	x.attachGrants(m)
	if err := x.c.Send(m); err != nil {
		x.Fail(err)
		return err
	}
	return nil
}

// tryAcquire consumes one send credit on stream without blocking; it
// reports false when the window is dry (or the mux already failed —
// acquire surfaces the error).
func (x *Mux) tryAcquire(stream uint32) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.err != nil {
		return false
	}
	cr, ok := x.send[stream]
	if !ok {
		cr = x.credits
		x.send[stream] = cr
		if x.gStreams != nil {
			x.gStreams.Set(int64(len(x.send)))
		}
	}
	if cr <= 0 {
		return false
	}
	x.send[stream]--
	return true
}

// acquire consumes one send credit on stream, waiting for the peer's
// grants when the window is dry.
func (x *Mux) acquire(stream uint32) error {
	x.mu.Lock()
	cr, ok := x.send[stream]
	if !ok {
		cr = x.credits
		x.send[stream] = cr
		if x.gStreams != nil {
			x.gStreams.Set(int64(len(x.send)))
		}
	}
	if cr <= 0 && x.err == nil {
		if x.cStalls != nil {
			x.cStalls.Inc()
		}
		start := time.Now()
		for x.send[stream] <= 0 && x.err == nil {
			x.cond.Wait()
		}
		if x.hWait != nil {
			x.hWait.Since(start)
		}
	}
	if x.err != nil {
		err := x.err
		x.mu.Unlock()
		return err
	}
	x.send[stream]--
	x.mu.Unlock()
	return nil
}

// Accept processes one incoming message: it applies any piggybacked
// credit grants to the local send windows, strips the mux fields, and
// accounts the message against its stream's receive window (granting
// credits back to the peer once enough accumulate). It returns the
// stream the message rode and whether the message was pure transport
// (a WINUP) that the caller must not dispatch.
func (x *Mux) Accept(m *Message) (stream uint32, handled bool) {
	if w, ok := m.Fields[FieldWindow]; ok {
		delete(m.Fields, FieldWindow)
		x.applyGrants(w)
	}
	if m.Verb == VerbWinUpdate {
		return 0, true
	}
	s, ok := m.Fields[FieldStream]
	if !ok {
		return 0, false
	}
	delete(m.Fields, FieldStream)
	sid64, err := strconv.ParseUint(s, 10, 32)
	if err != nil || sid64 == 0 || sid64 > maxStreamID {
		return 0, false
	}
	sid := uint32(sid64)
	x.mu.Lock()
	x.pending[sid]++
	x.npend++
	flush := x.pending[sid] >= x.thresh
	var grants string
	if flush {
		grants = x.grantsLocked()
	}
	x.mu.Unlock()
	if flush && grants != "" {
		if x.cWinups != nil {
			x.cWinups.Inc()
		}
		// Best effort: a write error here surfaces through the owner's
		// read/send paths; the explicit update itself carries no data.
		if err := x.c.Send(NewMessage(VerbWinUpdate).Set(FieldWindow, grants)); err != nil {
			x.Fail(err)
		}
	}
	return sid, false
}

// attachGrants piggybacks pending receive-side grants onto m.
func (x *Mux) attachGrants(m *Message) {
	x.mu.Lock()
	if x.npend == 0 {
		x.mu.Unlock()
		return
	}
	grants := x.grantsLocked()
	x.mu.Unlock()
	if grants != "" {
		m.Set(FieldWindow, grants)
		if x.cPiggy != nil {
			x.cPiggy.Inc()
		}
	}
}

// grantsLocked encodes and clears the pending grants ("sid:n,…").
// Callers hold mu.
func (x *Mux) grantsLocked() string {
	if x.npend == 0 {
		return ""
	}
	ids := make([]uint32, 0, len(x.pending))
	for sid, n := range x.pending {
		if n > 0 {
			ids = append(ids, sid)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for i, sid := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(sid), 10))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(x.pending[sid]))
	}
	clear(x.pending)
	x.npend = 0
	return b.String()
}

// applyGrants credits the local send windows from an encoded grant
// list; malformed entries are ignored (a broken peer cannot wedge us,
// only starve itself).
func (x *Mux) applyGrants(grants string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	woke := false
	for grants != "" {
		var pair string
		if i := strings.IndexByte(grants, ','); i >= 0 {
			pair, grants = grants[:i], grants[i+1:]
		} else {
			pair, grants = grants, ""
		}
		i := strings.IndexByte(pair, ':')
		if i < 0 {
			continue
		}
		sid64, err := strconv.ParseUint(pair[:i], 10, 32)
		if err != nil || sid64 == 0 || sid64 > maxStreamID {
			continue
		}
		n, err := strconv.Atoi(pair[i+1:])
		if err != nil || n <= 0 || n > maxStreamID {
			continue
		}
		sid := uint32(sid64)
		if _, ok := x.send[sid]; !ok {
			x.send[sid] = x.credits
			if x.gStreams != nil {
				x.gStreams.Set(int64(len(x.send)))
			}
		}
		x.send[sid] += n
		// Cap at the initial window: grants can never exceed what we
		// consumed, so exceeding it means a confused peer.
		if x.send[sid] > x.credits {
			x.send[sid] = x.credits
		}
		woke = true
	}
	if woke {
		x.cond.Broadcast()
	}
}

// Fail marks the mux dead and wakes every sender blocked on a window;
// they return err. Idempotent; the first error wins.
func (x *Mux) Fail(err error) {
	if err == nil {
		err = ErrMuxClosed
	}
	x.mu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.mu.Unlock()
	x.cond.Broadcast()
}

// ---------------------------------------------------------------------------
// Capability negotiation helpers.
//
// Transport v2 is negotiated on the application handshake (HELLO for
// the attribute space, REGISTER for the tool protocol): the initiator
// lists the capabilities it speaks in a "caps" field, the responder
// answers with the intersection of that list and its own, and both
// sides enable exactly the granted set. A v1 peer ignores the unknown
// field and grants nothing — transparent fallback, the MPUT pattern.

// Capability names.
const (
	// CapMux: stream IDs + credit-window flow control on this conn.
	CapMux = "mux"
	// CapSnapd: the SNAPD delta-snapshot verb.
	CapSnapd = "snapd"
	// CapChunk: large snapshot replies arrive as part/more chunks.
	CapChunk = "chunk"
	// CapPing: wire-level PING/PONG liveness probes.
	CapPing = "ping"
	// CapCtxOp: the C* context-explicit verbs (CPUT, CGET, ...), which
	// carry the target context per message instead of binding the whole
	// connection to one context at HELLO. This is what lets a shard
	// router keep one pooled connection per CASS shard and route any
	// context's operations over it.
	CapCtxOp = "ctxop"
	// CapTBatch: the TBATCH verb — a whole mrnet drain cycle's SAMPLE
	// and TSAMPLE updates packed into one frame on a node→node uplink.
	CapTBatch = "tbatch"
)

// ParseCaps splits a comma-separated capability list into a set.
func ParseCaps(s string) map[string]bool {
	out := make(map[string]bool)
	for s != "" {
		var c string
		if i := strings.IndexByte(s, ','); i >= 0 {
			c, s = s[:i], s[i+1:]
		} else {
			c, s = s, ""
		}
		if c != "" {
			out[c] = true
		}
	}
	return out
}

// IntersectCaps returns the comma-separated subset of supported that
// the peer offered, preserving supported's order (deterministic
// replies).
func IntersectCaps(offered string, supported []string) string {
	if offered == "" || len(supported) == 0 {
		return ""
	}
	set := ParseCaps(offered)
	var b strings.Builder
	for _, c := range supported {
		if !set[c] {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c)
	}
	return b.String()
}
