package wire

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tdp/internal/telemetry"
)

// This file implements transport v2's stream multiplexing and flow
// control — an HTTP/2-lite layered over the existing framing rather
// than a new binary format. A message's stream rides in the reserved
// "_stream" field (absent = stream 0) and credit grants piggyback in
// "_win", so a v1 peer that never negotiated the extension either
// never sees the fields (senders only stamp them after capability
// negotiation) or carries them through untouched per the reserved-key
// contract.
//
// Flow control is credit-based and comes in two granularities. The v2
// baseline counts messages: each non-zero stream starts with the same
// fixed number of send credits on both sides, a send consumes one, and
// the receiver grants credits back as it consumes messages. Message
// counting keeps the two ends' accounting trivially symmetric (no
// drift from encoding differences), and bulk frames are bounded —
// large snapshot replays are chunked (see attrspace) — so a
// message-credit window still bounds the bytes a stream can have in
// flight, loosely.
//
// Transport v3 (negotiated via CapByteWin) counts bytes instead: a
// send consumes the message's EncodedSize, grants carry bytes, and
// each stream's initial window is sized for its traffic class — bulk
// and samples get room for throughput, events stay small so a
// fan-out burst cannot buffer far ahead of a slow consumer. Byte
// accounting stays symmetric because both ends measure the same
// payload with the same EncodedSize: the sender costs the message
// before stamping _stream/_win, the receiver after stripping them.
// One message always moves even when it alone exceeds the whole
// window — the sender waits for the window to be positive, then
// deducts the full cost and lets the window go negative — so an
// oversized frame degrades to stop-and-wait rather than deadlocking.
//
// Stream 0 is the control stream: request/reply traffic is
// self-limiting (one reply per request) and exempt from flow control,
// so the RPC hot path pays nothing beyond an empty-grant check.

// Well-known stream IDs. The assignment is a protocol convention, not
// a negotiation: both ends of a capability-negotiated connection use
// the same IDs for the same traffic classes.
const (
	// StreamControl is the unflow-controlled request/reply stream.
	StreamControl uint32 = 0
	// StreamEvents carries server→client event fan-out (EVENT).
	StreamEvents uint32 = 1
	// StreamBulk carries snapshot replay chunks (SNAPV/DELTA).
	StreamBulk uint32 = 2
	// StreamSamples carries telemetry uplinks (SAMPLE/TSAMPLE).
	StreamSamples uint32 = 3
)

// DefaultCredits is the initial per-stream send window, in messages.
// It is a protocol constant: both ends of a negotiated connection
// assume it, so changing it is a capability change.
const DefaultCredits = 64

// Per-stream initial windows for byte-granular flow control
// (CapByteWin). Like DefaultCredits these are protocol constants both
// ends assume. Bulk is sized to keep a chunked snapshot replay
// streaming (one SnapChunkEntries part in flight plus headroom),
// samples sized for sustained telemetry fan-in, and events kept small
// on purpose: event latency is the point of that stream, so a slow
// subscriber should exert back-pressure after a few dozen KiB, not
// after megabytes.
const (
	ByteWindowEvents  = 32 << 10
	ByteWindowBulk    = 256 << 10
	ByteWindowSamples = 128 << 10
	ByteWindowDefault = 64 << 10
)

// byteWindowFor maps a stream to its initial byte window.
func byteWindowFor(stream uint32) int {
	switch stream {
	case StreamEvents:
		return ByteWindowEvents
	case StreamBulk:
		return ByteWindowBulk
	case StreamSamples:
		return ByteWindowSamples
	default:
		return ByteWindowDefault
	}
}

// maxStreamID bounds accepted stream IDs so a hostile peer cannot
// grow the per-stream accounting maps without bound.
const maxStreamID = 1 << 16

// maxByteGrant bounds a single grant value in byte mode; anything
// larger than 1 GiB is a corrupt or hostile peer (windows are capped
// at their initial size anyway — this just rejects absurd parses
// before they touch the accounting).
const maxByteGrant = 1 << 30

// VerbWinUpdate is the explicit window-update verb, sent when a
// receiver has accumulated grants and has no outgoing message to
// piggyback them on.
const VerbWinUpdate = "WINUP"

// ErrMuxClosed is returned by SendOn after Fail.
var ErrMuxClosed = errors.New("wire: mux closed")

// MuxConfig parameterizes a Mux.
type MuxConfig struct {
	// Credits is the initial per-stream send window in messages;
	// 0 means DefaultCredits. In byte mode a non-zero Credits instead
	// overrides every stream's byte window. Both ends must agree
	// (tests only).
	Credits int
	// ByteWindow selects byte-granular flow control (CapByteWin):
	// windows and grants count payload bytes rather than messages.
	// Both ends must agree — it is set from the negotiated capability.
	ByteWindow bool
	// Registry receives the wire.mux.* metrics; nil records nothing.
	Registry *telemetry.Registry
}

// Mux layers stream multiplexing with per-stream credit windows over a
// Conn. One Mux serves both directions of one connection: SendOn
// stamps outgoing messages and blocks when the stream's window is
// exhausted; Accept (called by the owner's read loop for every
// incoming message) applies the peer's credit grants, accounts
// received stream messages, and returns credits to the peer — eagerly
// piggybacked on outgoing sends, or as an explicit WINUP once half a
// window has accumulated.
type Mux struct {
	c       *Conn
	credits int  // initial window per stream (messages, or byte override)
	bytes   bool // byte-granular windows (CapByteWin)

	mu      sync.Mutex
	cond    *sync.Cond
	send    map[uint32]int // remaining send window per stream
	pending map[uint32]int // received-but-ungranted units per stream
	npend   int            // sum of pending
	err     error

	cStalls  *telemetry.Counter   // sends that had to wait for window
	cWinups  *telemetry.Counter   // explicit WINUP frames sent
	cPiggy   *telemetry.Counter   // grant batches piggybacked on sends
	hWait    *telemetry.Histogram // window-wait latency
	gStreams *telemetry.Gauge     // distinct send streams opened
}

// NewMux returns a Mux over c. The caller keeps using c's Recv
// directly; every received message must be passed through Accept.
func NewMux(c *Conn, cfg MuxConfig) *Mux {
	credits := cfg.Credits
	if credits <= 0 {
		credits = DefaultCredits
	}
	if cfg.ByteWindow {
		// In byte mode the per-stream windows come from byteWindowFor;
		// cfg.Credits (when set) overrides them uniformly for tests.
		credits = cfg.Credits
	}
	x := &Mux{
		c:       c,
		credits: credits,
		bytes:   cfg.ByteWindow,
		send:    make(map[uint32]int),
		pending: make(map[uint32]int),
	}
	x.cond = sync.NewCond(&x.mu)
	if reg := cfg.Registry; reg != nil {
		x.cStalls = reg.Counter("wire.mux.stalls")
		x.cWinups = reg.Counter("wire.mux.winups")
		x.cPiggy = reg.Counter("wire.mux.piggybacks")
		x.hWait = reg.Histogram("wire.mux.windowwait", nil)
		x.gStreams = reg.Gauge("wire.mux.streams")
	}
	return x
}

// SendOn transmits m on the given stream, blocking while the stream's
// send window is exhausted (stream 0 never blocks). Any accumulated
// receive-side grants piggyback on the message. Concurrent SendOn
// calls on different streams are independent: one stalled stream never
// blocks another.
func (x *Mux) SendOn(stream uint32, m *Message) error {
	if stream != StreamControl {
		// Cost the message BEFORE stamping the mux fields; the receiver
		// costs it after stripping them, so both ends account the same
		// bytes (Encode is field-order independent).
		cost := 1
		if x.bytes {
			cost = m.EncodedSize()
		}
		if !x.tryAcquire(stream, cost) {
			// About to block: push out any frames an enclosing Cork is
			// holding — their receipt is what funds the grants we wait
			// for, so leaving them buffered would deadlock the stream.
			x.c.Flush()
			if err := x.acquire(stream, cost); err != nil {
				return err
			}
		}
		m.Set(FieldStream, strconv.FormatUint(uint64(stream), 10))
	}
	x.attachGrants(m)
	if err := x.c.Send(m); err != nil {
		x.Fail(err)
		return err
	}
	return nil
}

// winFor returns a stream's initial send window: messages in v2 mode,
// bytes (per traffic class, unless overridden) in byte mode.
func (x *Mux) winFor(stream uint32) int {
	if !x.bytes {
		return x.credits
	}
	if x.credits > 0 {
		return x.credits
	}
	return byteWindowFor(stream)
}

// initLocked lazily initializes a stream's send window. Callers hold mu.
func (x *Mux) initLocked(stream uint32) int {
	cr, ok := x.send[stream]
	if !ok {
		cr = x.winFor(stream)
		x.send[stream] = cr
		if x.gStreams != nil {
			x.gStreams.Set(int64(len(x.send)))
		}
	}
	return cr
}

// tryAcquire deducts cost from stream's send window without blocking;
// it reports false when the window is dry (or the mux already failed —
// acquire surfaces the error). The window only gates entry (it must be
// positive); the full cost is deducted even when it exceeds the
// remaining window, so an oversized message degrades to stop-and-wait
// instead of deadlocking.
func (x *Mux) tryAcquire(stream uint32, cost int) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.err != nil {
		return false
	}
	if x.initLocked(stream) <= 0 {
		return false
	}
	x.send[stream] -= cost
	return true
}

// acquire deducts cost from stream's send window, waiting for the
// peer's grants while the window is non-positive.
func (x *Mux) acquire(stream uint32, cost int) error {
	x.mu.Lock()
	cr := x.initLocked(stream)
	if cr <= 0 && x.err == nil {
		if x.cStalls != nil {
			x.cStalls.Inc()
		}
		start := time.Now()
		for x.send[stream] <= 0 && x.err == nil {
			x.cond.Wait()
		}
		if x.hWait != nil {
			x.hWait.Since(start)
		}
	}
	if x.err != nil {
		err := x.err
		x.mu.Unlock()
		return err
	}
	x.send[stream] -= cost
	x.mu.Unlock()
	return nil
}

// Accept processes one incoming message: it applies any piggybacked
// credit grants to the local send windows, strips the mux fields, and
// accounts the message against its stream's receive window (granting
// credits back to the peer once enough accumulate). It returns the
// stream the message rode and whether the message was pure transport
// (a WINUP) that the caller must not dispatch.
func (x *Mux) Accept(m *Message) (stream uint32, handled bool) {
	if w, ok := m.Fields[FieldWindow]; ok {
		delete(m.Fields, FieldWindow)
		x.applyGrants(w)
	}
	if m.Verb == VerbWinUpdate {
		return 0, true
	}
	s, ok := m.Fields[FieldStream]
	if !ok {
		return 0, false
	}
	delete(m.Fields, FieldStream)
	sid64, err := strconv.ParseUint(s, 10, 32)
	if err != nil || sid64 == 0 || sid64 > maxStreamID {
		return 0, false
	}
	sid := uint32(sid64)
	// Cost AFTER stripping _stream/_win — the mirror of SendOn costing
	// before stamping them, so both ends deduct identical amounts.
	cost := 1
	if x.bytes {
		cost = m.EncodedSize()
	}
	x.mu.Lock()
	x.pending[sid] += cost
	x.npend += cost
	// Grant back once half the stream's window has accumulated: often
	// enough that the sender rarely stalls, rarely enough that grant
	// traffic stays negligible.
	flush := x.pending[sid] >= (x.winFor(sid)+1)/2
	var grants string
	if flush {
		grants = x.grantsLocked()
	}
	x.mu.Unlock()
	if flush && grants != "" {
		if x.cWinups != nil {
			x.cWinups.Inc()
		}
		// Best effort: a write error here surfaces through the owner's
		// read/send paths; the explicit update itself carries no data.
		if err := x.c.Send(NewMessage(VerbWinUpdate).Set(FieldWindow, grants)); err != nil {
			x.Fail(err)
		}
	}
	return sid, false
}

// attachGrants piggybacks pending receive-side grants onto m.
func (x *Mux) attachGrants(m *Message) {
	x.mu.Lock()
	if x.npend == 0 {
		x.mu.Unlock()
		return
	}
	grants := x.grantsLocked()
	x.mu.Unlock()
	if grants != "" {
		m.Set(FieldWindow, grants)
		if x.cPiggy != nil {
			x.cPiggy.Inc()
		}
	}
}

// grantsLocked encodes and clears the pending grants ("sid:n,…").
// Callers hold mu.
func (x *Mux) grantsLocked() string {
	if x.npend == 0 {
		return ""
	}
	ids := make([]uint32, 0, len(x.pending))
	for sid, n := range x.pending {
		if n > 0 {
			ids = append(ids, sid)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for i, sid := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(sid), 10))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(x.pending[sid]))
	}
	clear(x.pending)
	x.npend = 0
	return b.String()
}

// applyGrants credits the local send windows from an encoded grant
// list; malformed entries are ignored (a broken peer cannot wedge us,
// only starve itself).
func (x *Mux) applyGrants(grants string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	woke := false
	for grants != "" {
		var pair string
		if i := strings.IndexByte(grants, ','); i >= 0 {
			pair, grants = grants[:i], grants[i+1:]
		} else {
			pair, grants = grants, ""
		}
		i := strings.IndexByte(pair, ':')
		if i < 0 {
			continue
		}
		sid64, err := strconv.ParseUint(pair[:i], 10, 32)
		if err != nil || sid64 == 0 || sid64 > maxStreamID {
			continue
		}
		maxGrant := maxStreamID
		if x.bytes {
			maxGrant = maxByteGrant
		}
		n, err := strconv.Atoi(pair[i+1:])
		if err != nil || n <= 0 || n > maxGrant {
			continue
		}
		sid := uint32(sid64)
		x.initLocked(sid)
		x.send[sid] += n
		// Cap at the initial window: grants can never exceed what we
		// consumed, so exceeding it means a confused peer.
		if w := x.winFor(sid); x.send[sid] > w {
			x.send[sid] = w
		}
		woke = true
	}
	if woke {
		x.cond.Broadcast()
	}
}

// Fail marks the mux dead and wakes every sender blocked on a window;
// they return err. Idempotent; the first error wins.
func (x *Mux) Fail(err error) {
	if err == nil {
		err = ErrMuxClosed
	}
	x.mu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.mu.Unlock()
	x.cond.Broadcast()
}

// ---------------------------------------------------------------------------
// Capability negotiation helpers.
//
// Transport v2 is negotiated on the application handshake (HELLO for
// the attribute space, REGISTER for the tool protocol): the initiator
// lists the capabilities it speaks in a "caps" field, the responder
// answers with the intersection of that list and its own, and both
// sides enable exactly the granted set. A v1 peer ignores the unknown
// field and grants nothing — transparent fallback, the MPUT pattern.

// Capability names.
const (
	// CapMux: stream IDs + credit-window flow control on this conn.
	CapMux = "mux"
	// CapSnapd: the SNAPD delta-snapshot verb.
	CapSnapd = "snapd"
	// CapChunk: large snapshot replies arrive as part/more chunks.
	CapChunk = "chunk"
	// CapPing: wire-level PING/PONG liveness probes.
	CapPing = "ping"
	// CapCtxOp: the C* context-explicit verbs (CPUT, CGET, ...), which
	// carry the target context per message instead of binding the whole
	// connection to one context at HELLO. This is what lets a shard
	// router keep one pooled connection per CASS shard and route any
	// context's operations over it.
	CapCtxOp = "ctxop"
	// CapTBatch: the TBATCH verb — a whole mrnet drain cycle's SAMPLE
	// and TSAMPLE updates packed into one frame on a node→node uplink.
	CapTBatch = "tbatch"
	// CapByteWin: byte-granular credit windows — _win entries carry
	// bytes and per-stream windows come from the ByteWindow* constants.
	// Without it a mux-capable peer stays on message counting (v2).
	CapByteWin = "bytewin"
	// CapShm: the shared-memory ring transport for same-host
	// connections. Granted only when the server can see the client is
	// local (unix socket); the framed protocol bootstraps over the
	// socket and then both byte streams cut over to the mmap ring,
	// with the socket retained as doorbell and liveness signal.
	CapShm = "shm"
)

// ParseCaps splits a comma-separated capability list into a set.
func ParseCaps(s string) map[string]bool {
	out := make(map[string]bool)
	for s != "" {
		var c string
		if i := strings.IndexByte(s, ','); i >= 0 {
			c, s = s[:i], s[i+1:]
		} else {
			c, s = s, ""
		}
		if c != "" {
			out[c] = true
		}
	}
	return out
}

// IntersectCaps returns the comma-separated subset of supported that
// the peer offered, preserving supported's order (deterministic
// replies).
func IntersectCaps(offered string, supported []string) string {
	if offered == "" || len(supported) == 0 {
		return ""
	}
	set := ParseCaps(offered)
	var b strings.Builder
	for _, c := range supported {
		if !set[c] {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c)
	}
	return b.String()
}
