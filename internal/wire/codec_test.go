package wire

import (
	"bytes"
	"net"
	"reflect"
	"testing"

	"tdp/internal/telemetry"
)

// countingWriter records every Write call for syscall-count assertions.
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func (w *countingWriter) Read(p []byte) (int, error) { return w.buf.Read(p) }

func TestAppendEncodeMatchesEncode(t *testing.T) {
	cases := []*Message{
		NewMessage("PING"),
		NewMessage("PUT").Set("attr", "pid").Set("value", "1234"),
		NewMessage("MPUT").SetInt("n", 2).Set("k0", "a").Set("v0", "1").Set("k1", "b").Set("v1", "2"),
		NewMessage("BIN").Set("blob", "a\x00b:c;d\nnewline"),
	}
	for _, m := range cases {
		// AppendEncode is order-free, so compare decoded forms, not bytes.
		got, err := Decode(m.AppendEncode(nil))
		if err != nil {
			t.Fatalf("Decode(AppendEncode(%v)): %v", m, err)
		}
		if got.Verb != m.Verb || !reflect.DeepEqual(got.Fields, m.Fields) {
			t.Errorf("AppendEncode round trip mismatch: %v vs %v", m, got)
		}
		if want, have := m.EncodedSize(), len(m.AppendEncode(nil)); want != have {
			t.Errorf("EncodedSize = %d, AppendEncode produced %d bytes", want, have)
		}
		if want, have := m.EncodedSize(), len(m.Encode()); want != have {
			t.Errorf("EncodedSize = %d, Encode produced %d bytes", want, have)
		}
	}
}

func TestAppendEncodeAppends(t *testing.T) {
	prefix := []byte("HDR!")
	out := NewMessage("PING").AppendEncode(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("AppendEncode did not preserve the prefix: %q", out)
	}
	if _, err := Decode(out[len(prefix):]); err != nil {
		t.Fatalf("appended payload does not decode: %v", err)
	}
}

func TestDecodeIntoReusesMessage(t *testing.T) {
	m := new(Message)
	first := NewMessage("PUT").Set("attr", "pid").Set("value", "1").Set("stale", "yes")
	if err := DecodeInto(m, first.Encode()); err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	second := NewMessage("GET").Set("attr", "status")
	if err := DecodeInto(m, second.Encode()); err != nil {
		t.Fatalf("DecodeInto reuse: %v", err)
	}
	if m.Verb != "GET" || !reflect.DeepEqual(m.Fields, second.Fields) {
		t.Errorf("reused message holds stale state: %v", m)
	}
	if _, ok := m.Fields["stale"]; ok {
		t.Error("field from previous decode survived reuse")
	}
}

func TestDecodeIntoDoesNotAliasPayload(t *testing.T) {
	payload := NewMessage("PUT").Set("attr", "pid").Set("value", "1234").Encode()
	m := new(Message)
	if err := DecodeInto(m, payload); err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	for i := range payload {
		payload[i] = 'X' // caller reuses the buffer
	}
	if m.Get("attr") != "pid" || m.Get("value") != "1234" {
		t.Errorf("decoded message aliased the payload buffer: %v", m)
	}
}

func TestDecodeInternsProtocolVocabulary(t *testing.T) {
	payload := NewMessage("PUT").Set("attr", "pid").Set("value", "1234").Encode()
	m, err := Decode(payload)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if m.Verb != "PUT" {
		t.Fatalf("verb = %q", m.Verb)
	}
	// Interned strings are the canonical instances from the table.
	if got := interned["PUT"]; got != m.Verb {
		t.Errorf("verb not interned")
	}
}

func TestDecodeHostileFieldCount(t *testing.T) {
	// A count far beyond the actual payload must fail cheaply, not
	// allocate a giant map first.
	payload := []byte("3:PUT999999999;4:attr3:pid")
	if _, err := Decode(payload); err == nil {
		t.Fatal("hostile field count accepted")
	}
}

func TestSendSingleWrite(t *testing.T) {
	w := &countingWriter{}
	c := NewConn(w)
	if err := c.Send(NewMessage("PUT").Set("attr", "pid").Set("value", "1")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if w.writes != 1 {
		t.Errorf("Send used %d Writes, want 1 (header+payload must leave together)", w.writes)
	}
	m, err := NewConn(w).Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.Verb != "PUT" || m.Get("attr") != "pid" {
		t.Errorf("frame corrupted by single-write path: %v", m)
	}
}

func TestCorkBatchesIntoOneWrite(t *testing.T) {
	w := &countingWriter{}
	c := NewConn(w)
	c.Cork()
	const n = 5
	for i := 0; i < n; i++ {
		if err := c.Send(NewMessage("EVENT").SetInt("seq", i)); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if w.writes != 0 {
		t.Fatalf("corked Send wrote %d times, want 0", w.writes)
	}
	if err := c.Uncork(); err != nil {
		t.Fatalf("Uncork: %v", err)
	}
	if w.writes != 1 {
		t.Errorf("Uncork used %d Writes, want 1", w.writes)
	}
	r := NewConn(w)
	for i := 0; i < n; i++ {
		m, err := r.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if m.Int("seq", -1) != i {
			t.Errorf("message %d out of order: %v", i, m)
		}
	}
}

func TestCorkNests(t *testing.T) {
	w := &countingWriter{}
	c := NewConn(w)
	c.Cork()
	c.Cork()
	c.Send(NewMessage("A"))
	if err := c.Uncork(); err != nil {
		t.Fatalf("inner Uncork: %v", err)
	}
	if w.writes != 0 {
		t.Fatal("inner Uncork flushed before the outer section ended")
	}
	c.Send(NewMessage("B"))
	if err := c.Uncork(); err != nil {
		t.Fatalf("outer Uncork: %v", err)
	}
	if w.writes != 1 {
		t.Errorf("outer Uncork used %d Writes, want 1", w.writes)
	}
	if err := c.Uncork(); err != nil {
		t.Errorf("surplus Uncork errored: %v", err)
	}
}

func TestRecvIntoReusesAcrossFrames(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a), NewConn(b)
	go func() {
		ca.Send(NewMessage("PUT").Set("attr", "pid").Set("value", "1").Set("extra", "x"))
		ca.Send(NewMessage("GET").Set("attr", "status"))
	}()
	m := new(Message)
	if err := cb.RecvInto(m); err != nil {
		t.Fatalf("RecvInto 1: %v", err)
	}
	if m.Verb != "PUT" || m.Get("extra") != "x" {
		t.Fatalf("first frame wrong: %v", m)
	}
	if err := cb.RecvInto(m); err != nil {
		t.Fatalf("RecvInto 2: %v", err)
	}
	if m.Verb != "GET" || m.Get("attr") != "status" {
		t.Errorf("second frame wrong: %v", m)
	}
	if _, ok := m.Lookup("extra"); ok {
		t.Error("stale field survived RecvInto reuse")
	}
}

func TestSendCorkedMetricsCountOnFlush(t *testing.T) {
	// Corked frames count bytes/messages when they actually hit the
	// wire, so a connection that dies mid-cork never overreports.
	w := &countingWriter{}
	c := NewConn(w)
	reg := telemetry.NewRegistry()
	c.InstrumentRegistry(reg)
	c.Cork()
	c.Send(NewMessage("A"))
	c.Send(NewMessage("B"))
	if got := reg.Counter("wire.tx.msgs").Value(); got != 0 {
		t.Fatalf("tx.msgs = %d before flush, want 0", got)
	}
	if err := c.Uncork(); err != nil {
		t.Fatalf("Uncork: %v", err)
	}
	if got := reg.Counter("wire.tx.msgs").Value(); got != 2 {
		t.Errorf("tx.msgs = %d after flush, want 2", got)
	}
	if got := reg.Counter("wire.tx.bytes").Value(); got != int64(w.buf.Len()) {
		t.Errorf("tx.bytes = %d, want %d", got, w.buf.Len())
	}
}
