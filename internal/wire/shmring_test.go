//go:build linux || darwin

package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// shmPair maps one segment from both ends — exactly what a real
// connection does: the server creates the file, the client opens it —
// and wires the two endpoints' doorbells together with an in-memory
// pipe standing in for the unix socket.
func shmPair(t *testing.T, ringSize int) (server, client *ShmEndpoint) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ring.shm")
	seg, err := CreateShmSegment(path, ringSize)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := OpenShmSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(path) // the mappings alone keep the pages alive
	ss, cs := net.Pipe()
	server = seg.Endpoint(true, ss)
	client = peer.Endpoint(false, cs)
	server.Activate()
	client.Activate()
	t.Cleanup(func() { server.Close(); client.Close() })
	return server, client
}

func TestShmSegmentValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateShmSegment(filepath.Join(dir, "odd.shm"), 5000); !errors.Is(err, ErrShmBadSegment) {
		t.Fatalf("non-power-of-two size: err = %v, want ErrShmBadSegment", err)
	}
	if _, err := OpenShmSegment(filepath.Join(dir, "absent.shm")); err == nil {
		t.Fatal("opening a missing segment succeeded")
	}
	// Too small to hold even the header and minimum rings.
	runt := filepath.Join(dir, "runt.shm")
	if err := os.WriteFile(runt, make([]byte, 128), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShmSegment(runt); !errors.Is(err, ErrShmBadSegment) {
		t.Fatalf("runt file: err = %v, want ErrShmBadSegment", err)
	}
	// Right size, wrong magic (an all-zero file of plausible length).
	blank := filepath.Join(dir, "blank.shm")
	if err := os.WriteFile(blank, make([]byte, shmHdrSize+2*4096), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShmSegment(blank); !errors.Is(err, ErrShmBadSegment) {
		t.Fatalf("bad magic: err = %v, want ErrShmBadSegment", err)
	}
	// A valid create/open round trip reports the stamped ring size.
	good := filepath.Join(dir, "good.shm")
	seg, err := CreateShmSegment(good, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if seg.RingSize() != 8192 {
		t.Fatalf("creator RingSize = %d, want 8192", seg.RingSize())
	}
	peer, err := OpenShmSegment(good)
	if err != nil {
		t.Fatal(err)
	}
	if peer.RingSize() != 8192 {
		t.Fatalf("opener RingSize = %d, want 8192", peer.RingSize())
	}
	if _, err := CreateShmSegment(good, 8192); err == nil {
		t.Fatal("creating over an existing file succeeded")
	}
}

// TestShmRingByteStream pushes far more data than the ring holds in
// both directions at once, with pseudorandom write sizes, and verifies
// the streams arrive byte-exact — wraparound, partial writes, and the
// park/wake paths all get exercised on a 4 KiB ring.
func TestShmRingByteStream(t *testing.T) {
	server, client := shmPair(t, 4096)
	const total = 1 << 20

	stream := func(src *rand.Rand, w io.Writer, errs chan<- error) {
		sent := 0
		for sent < total {
			n := 1 + src.Intn(10000)
			if n > total-sent {
				n = total - sent
			}
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(sent + i)
			}
			if _, err := w.Write(buf); err != nil {
				errs <- err
				return
			}
			sent += n
		}
		errs <- nil
	}
	drain := func(r io.Reader, errs chan<- error) {
		got := make([]byte, 0, total)
		buf := make([]byte, 8192)
		for len(got) < total {
			n, err := r.Read(buf)
			if err != nil {
				errs <- err
				return
			}
			got = append(got, buf[:n]...)
		}
		for i, b := range got {
			if b != byte(i) {
				errs <- errors.New("byte stream corrupted")
				return
			}
		}
		errs <- nil
	}

	errs := make(chan error, 4)
	go stream(rand.New(rand.NewSource(1)), client, errs)
	go stream(rand.New(rand.NewSource(2)), server, errs)
	go drain(server, errs)
	go drain(client, errs)
	for i := 0; i < 4; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("ring transfer did not finish")
		}
	}
}

// TestShmRingFramedMessages runs the real framing over the ring,
// including a message several times larger than the ring itself (it
// must stream through in pieces).
func TestShmRingFramedMessages(t *testing.T) {
	server, client := shmPair(t, 4096)
	sc, cc := NewConn(server), NewConn(client)

	big := strings.Repeat("v", 3*4096)
	done := make(chan error, 1)
	go func() {
		if err := cc.Send(NewMessage("PUT").Set("attr", "a").Set("val", "1")); err != nil {
			done <- err
			return
		}
		done <- cc.Send(NewMessage("SNAPV").Set("blob", big))
	}()
	m, err := sc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Verb != "PUT" || m.Get("attr") != "a" {
		t.Fatalf("first frame = %v", m)
	}
	m, err = sc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Verb != "SNAPV" || m.Get("blob") != big {
		t.Fatal("oversized frame did not survive the ring")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// And the reverse direction still works.
	go sc.Send(NewMessage("OK"))
	if m, err = cc.Recv(); err != nil || m.Verb != "OK" {
		t.Fatalf("reverse frame: %v, %v", m, err)
	}
}

// TestShmRingParkAndWake forces the reader all the way into the parked
// state (no data for much longer than the spin budget) and verifies a
// late write still wakes it via the doorbell.
func TestShmRingParkAndWake(t *testing.T) {
	server, client := shmPair(t, 4096)
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, err := server.Read(buf)
		if err != nil {
			t.Error(err)
			got <- nil
			return
		}
		got <- buf[:n]
	}()
	time.Sleep(100 * time.Millisecond) // reader is parked by now
	if _, err := client.Write([]byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		if !bytes.Equal(b, []byte("wake")) {
			t.Fatalf("read %q, want %q", b, "wake")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked reader never woke")
	}
}

// TestShmRingDrainsBeforeDeath: data already in the ring must be
// readable after the peer closes — a dæmon's final replies survive its
// exit — and only then does the transport error surface.
func TestShmRingDrainsBeforeDeath(t *testing.T) {
	server, client := shmPair(t, 4096)
	if _, err := client.Write([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	buf := make([]byte, 32)
	n, err := server.Read(buf)
	if err != nil {
		t.Fatalf("read after peer close: %v (data must drain first)", err)
	}
	if string(buf[:n]) != "last words" {
		t.Fatalf("drained %q", buf[:n])
	}
	if _, err := server.Read(buf); err == nil {
		t.Fatal("no error after ring drained and peer dead")
	}
	// A writer against a dead transport fails too (possibly after the
	// doorbell reader notices; give it the full park path).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := server.Write([]byte("x")); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write against dead transport kept succeeding")
		}
	}
}

// BenchmarkShmRingThroughput measures raw ring bandwidth for the
// EXPERIMENTS E22 curve: one producer streaming fixed-size chunks to
// one consumer through the default-size ring. Untracked (not part of
// the bench gate) — the tracked same-host numbers live in attrspace's
// BenchmarkSameHostPut.
func BenchmarkShmRingThroughput(b *testing.B) {
	for _, chunk := range []int{64, 512, 4096, 32768} {
		b.Run(byteSizeName(chunk), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "ring.shm")
			seg, err := CreateShmSegment(path, 0)
			if err != nil {
				b.Fatal(err)
			}
			peer, err := OpenShmSegment(path)
			if err != nil {
				b.Fatal(err)
			}
			os.Remove(path)
			ss, cs := net.Pipe()
			server := seg.Endpoint(true, ss)
			client := peer.Endpoint(false, cs)
			server.Activate()
			client.Activate()
			defer server.Close()
			defer client.Close()

			done := make(chan struct{})
			go func() {
				defer close(done)
				buf := make([]byte, 64<<10)
				total := b.N * chunk
				got := 0
				for got < total {
					n, err := server.Read(buf)
					if err != nil {
						return
					}
					got += n
				}
			}()
			buf := make([]byte, chunk)
			b.SetBytes(int64(chunk))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Write(buf); err != nil {
					b.Fatal(err)
				}
			}
			<-done
		})
	}
}

func byteSizeName(n int) string {
	if n >= 1<<10 && n%(1<<10) == 0 {
		return strconv.Itoa(n>>10) + "KiB"
	}
	return strconv.Itoa(n) + "B"
}
