//go:build linux || darwin

// Transport v3's same-host fast path: a pair of single-producer /
// single-consumer byte rings in a shared mmap'd file, one ring per
// direction, carrying the exact same 4-byte-framed payloads the socket
// carries — AppendEncode and DecodeInto never know the difference.
// The existing connection's socket is kept as the bootstrap and
// doorbell channel: the segment path travels in the HELLO reply, the
// SHMRDY exchange serializes the cutover, and afterwards the socket
// carries only single-byte wakeups (and, crucially, liveness — a dead
// peer's socket closing is what unblocks parked ring waiters, which is
// also where netsim/chaos interpose delay and kill).
//
// Ring discipline: free-running uint64 head/tail cursors masked by a
// power-of-two size, each cursor (and each park flag) alone on its own
// cache line so the producer and consumer never false-share. The
// producer copies in, then publishes tail; the consumer copies out,
// then publishes head. Go's sync/atomic operations are sequentially
// consistent, which the park/recheck handshake below relies on
// (store-flag-then-load-cursor on one side, store-cursor-then-load-flag
// on the other — the Dekker pattern).
//
// Wakeups are spin-then-park: a side finding no progress spins a few
// dozen scheduler yields (covering the common case where the peer is
// actively running, so the idle cost of the parked state is zero),
// then sets its park flag in the shared header, rechecks, and sleeps
// on the doorbell. The peer, after publishing a cursor, rings the
// doorbell — one byte on the socket — only when it observes the
// opposite park flag, so a busy ring never touches the kernel at all.
package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// DefaultShmRingSize is the per-direction ring capacity. 256 KiB holds
// a full chunked snapshot part with room to spare while keeping a
// segment (header + two rings) at ~513 KiB of shared address space
// per connection.
const DefaultShmRingSize = 256 << 10

// shmMagic identifies a TDP transport-v3 segment ("TDPSHM3\n").
const shmMagic = 0x54445053484d330a

// Header layout. Every mutable field sits alone on a 64-byte cache
// line; the two directions' control blocks are far apart as well.
const (
	shmHdrSize = 1024

	shmOffMagic = 0 // uint64 magic
	shmOffSize  = 8 // uint64 per-direction ring size

	shmOffA = 128 // control block, ring A (client → server)
	shmOffB = 512 // control block, ring B (server → client)

	// Offsets within a control block.
	ctlTail  = 0   // uint64, producer cursor (free-running)
	ctlHead  = 64  // uint64, consumer cursor (free-running)
	ctlRPark = 128 // uint32, consumer parked on the doorbell
	ctlWPark = 192 // uint32, producer parked on the doorbell
)

// shmSpinBudget is how long a side yields the scheduler before parking
// on the doorbell. The budget is time-based rather than a fixed yield
// count so an actively ping-ponging pair — request out, reply back a
// few microseconds later — stays entirely in user space: the reader is
// still spinning when the reply lands, no park flag is ever set, and
// the producer never writes a doorbell byte. Gosched (not a busy
// pause) keeps the spin harmless on a single-CPU box: each iteration
// is a chance for the peer goroutine to run. Past the budget the side
// parks and costs nothing until the doorbell rings.
const shmSpinBudget = 100 * time.Microsecond

// ErrShmBadSegment reports a segment file that is not a valid TDP
// transport-v3 segment (wrong magic, impossible size, truncated).
var ErrShmBadSegment = errors.New("wire: bad shm segment")

// ShmSupported reports whether this build can serve the shm transport.
func ShmSupported() bool { return true }

// ShmSegment is one mapped transport-v3 segment: the shared header and
// the two directional rings. Both endpoints of a connection hold their
// own mapping of the same file. The mapping is released by the
// garbage collector (a finalizer) rather than an explicit unmap, so a
// late reader can never fault on memory a concurrent close pulled out
// from under it.
type ShmSegment struct {
	mem  []byte
	size int // per-direction ring capacity, power of two
}

// CreateShmSegment creates the segment file at path (which must not
// exist), sizes it for two rings of ringSize bytes (0 means
// DefaultShmRingSize; must be a power of two), maps it, and stamps the
// header. The creator — the server — unlinks the file once the peer
// has mapped it, so a crashed pair leaks at most one temp file.
func CreateShmSegment(path string, ringSize int) (*ShmSegment, error) {
	if ringSize == 0 {
		ringSize = DefaultShmRingSize
	}
	if ringSize < 4096 || ringSize&(ringSize-1) != 0 {
		return nil, fmt.Errorf("%w: ring size %d not a power of two >= 4096", ErrShmBadSegment, ringSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	total := shmHdrSize + 2*ringSize
	if err := f.Truncate(int64(total)); err != nil {
		os.Remove(path)
		return nil, err
	}
	seg, err := mapSegment(f, total)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	seg.size = ringSize
	seg.u64(shmOffSize).Store(uint64(ringSize))
	seg.u64(shmOffMagic).Store(shmMagic) // magic last: stamped means complete
	return seg, nil
}

// OpenShmSegment maps an existing segment file created by the peer and
// validates its header. The file descriptor is not retained — the
// mapping alone keeps the pages alive, so the creator may unlink the
// path immediately after this returns.
func OpenShmSegment(path string) (*ShmSegment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	total := int(st.Size())
	if total < shmHdrSize+2*4096 {
		return nil, fmt.Errorf("%w: %d bytes", ErrShmBadSegment, total)
	}
	seg, err := mapSegment(f, total)
	if err != nil {
		return nil, err
	}
	if seg.u64(shmOffMagic).Load() != shmMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrShmBadSegment)
	}
	size := int(seg.u64(shmOffSize).Load())
	if size < 4096 || size&(size-1) != 0 || shmHdrSize+2*size != total {
		return nil, fmt.Errorf("%w: ring size %d vs file size %d", ErrShmBadSegment, size, total)
	}
	seg.size = size
	return seg, nil
}

func mapSegment(f *os.File, total int) (*ShmSegment, error) {
	mem, err := syscall.Mmap(int(f.Fd()), 0, total,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("wire: mmap shm segment: %w", err)
	}
	seg := &ShmSegment{mem: mem}
	runtime.SetFinalizer(seg, func(s *ShmSegment) { syscall.Munmap(s.mem) })
	return seg, nil
}

// RingSize returns the per-direction ring capacity in bytes.
func (s *ShmSegment) RingSize() int { return s.size }

// u64 returns the atomic cell at a header offset. The mapping is page
// aligned and every offset is a multiple of 8, so alignment holds.
func (s *ShmSegment) u64(off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&s.mem[off]))
}

func (s *ShmSegment) u32(off int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&s.mem[off]))
}

// ringHalf is one direction of the segment as seen by one endpoint.
type ringHalf struct {
	tail  *atomic.Uint64 // producer cursor
	head  *atomic.Uint64 // consumer cursor
	rpark *atomic.Uint32 // consumer parked
	wpark *atomic.Uint32 // producer parked
	data  []byte
	mask  uint64
}

func (s *ShmSegment) half(ctl, dataOff int) ringHalf {
	return ringHalf{
		tail:  s.u64(ctl + ctlTail),
		head:  s.u64(ctl + ctlHead),
		rpark: s.u32(ctl + ctlRPark),
		wpark: s.u32(ctl + ctlWPark),
		data:  s.mem[dataOff : dataOff+s.size],
		mask:  uint64(s.size - 1),
	}
}

// Endpoint returns this side's view of the segment: an io.ReadWriter
// carrying the framed byte stream over the rings, with sock as the
// doorbell and liveness channel. The server consumes ring A and
// produces ring B; the client the reverse. Call Activate once the
// socket's read side carries no further framed bytes (the SHMRDY
// cutover point) — before that, writes and wakeup sends already work,
// but doorbell receipt does not.
func (s *ShmSegment) Endpoint(server bool, sock net.Conn) *ShmEndpoint {
	a := s.half(shmOffA, shmHdrSize)
	b := s.half(shmOffB, shmHdrSize+s.size)
	e := &ShmEndpoint{seg: s, bell: newDoorbell(sock)}
	if server {
		e.rd, e.wr = a, b
	} else {
		e.rd, e.wr = b, a
	}
	return e
}

// ShmEndpoint is one end of an activated ring pair. Read and Write
// carry the same framed stream the socket carried; wire.Conn swaps
// onto it without its bufio/mux identity changing. Single reader and
// single writer (which Conn's rmu/wmu already guarantee).
type ShmEndpoint struct {
	seg  *ShmSegment
	bell *doorbell
	rd   ringHalf // ring this side consumes
	wr   ringHalf // ring this side produces
}

// Activate starts the doorbell reader on the socket. From here on the
// socket's read side belongs to the ring transport.
func (e *ShmEndpoint) Activate() { e.bell.start() }

// Close fails the doorbell (waking any parked side) and closes the
// socket, which fails the peer the same way. The mapping itself is
// reclaimed by GC once the last reference drops.
func (e *ShmEndpoint) Close() error {
	e.bell.fail(io.ErrClosedPipe)
	return e.bell.sock.Close()
}

// Read copies available ring bytes into p, blocking (spin, then park
// on the doorbell) while the ring is empty. Data already in the ring
// is always drained before a transport error is surfaced, so a peer's
// final replies survive its exit.
func (e *ShmEndpoint) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	r := &e.rd
	size := uint64(len(r.data))
	var spinStart time.Time
	for {
		head := r.head.Load()
		avail := r.tail.Load() - head
		if avail > 0 {
			n := uint64(len(p))
			if n > avail {
				n = avail
			}
			off := head & r.mask
			c := size - off
			if c > n {
				c = n
			}
			copy(p[:c], r.data[off:off+c])
			copy(p[c:n], r.data[:n-c])
			r.head.Store(head + n)
			if r.wpark.Load() != 0 {
				e.bell.ring()
			}
			return int(n), nil
		}
		if err := e.bell.deadErr(); err != nil {
			return 0, err
		}
		if spinStart.IsZero() {
			spinStart = time.Now()
		}
		if time.Since(spinStart) < shmSpinBudget {
			runtime.Gosched()
			continue
		}
		gen := e.bell.generation()
		r.rpark.Store(1)
		if r.tail.Load() != r.head.Load() {
			// Data slipped in between the empty check and the park: the
			// producer may have missed the flag, so do not sleep.
			r.rpark.Store(0)
			spinStart = time.Time{}
			continue
		}
		e.bell.wait(gen)
		r.rpark.Store(0)
		spinStart = time.Time{}
	}
}

// Write copies all of p into the ring, blocking (spin, then park) while
// the ring is full. Frames larger than the ring stream through in
// pieces as the consumer frees space.
func (e *ShmEndpoint) Write(p []byte) (int, error) {
	r := &e.wr
	size := uint64(len(r.data))
	total := len(p)
	var spinStart time.Time
	for len(p) > 0 {
		if err := e.bell.deadErr(); err != nil {
			return total - len(p), err
		}
		tail := r.tail.Load()
		free := size - (tail - r.head.Load())
		if free > 0 {
			n := uint64(len(p))
			if n > free {
				n = free
			}
			off := tail & r.mask
			c := size - off
			if c > n {
				c = n
			}
			copy(r.data[off:off+c], p[:c])
			copy(r.data[:n-c], p[c:n])
			r.tail.Store(tail + n)
			if r.rpark.Load() != 0 {
				e.bell.ring()
			}
			p = p[n:]
			spinStart = time.Time{}
			continue
		}
		if spinStart.IsZero() {
			spinStart = time.Now()
		}
		if time.Since(spinStart) < shmSpinBudget {
			runtime.Gosched()
			continue
		}
		gen := e.bell.generation()
		r.wpark.Store(1)
		if size-(r.tail.Load()-r.head.Load()) > 0 {
			r.wpark.Store(0)
			spinStart = time.Time{}
			continue
		}
		e.bell.wait(gen)
		r.wpark.Store(0)
		spinStart = time.Time{}
	}
	return total, nil
}

// doorbell is the socket-backed wakeup channel shared by both rings of
// one endpoint. A wakeup is one byte; the receiver does not care which
// ring it is for — waiters recheck their own cursors. The reader
// goroutine also turns socket death into ring death: transport v3 has
// no liveness of its own beyond the socket that bootstrapped it.
type doorbell struct {
	sock net.Conn

	mu   sync.Mutex
	cond *sync.Cond
	gen  uint64
	err  error
}

func newDoorbell(sock net.Conn) *doorbell {
	d := &doorbell{sock: sock}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// start launches the reader that drains wakeup bytes and detects peer
// death. Must run only once the framed protocol has left the socket.
func (d *doorbell) start() {
	go func() {
		var buf [64]byte
		for {
			_, err := d.sock.Read(buf[:])
			d.mu.Lock()
			d.gen++
			if err != nil && d.err == nil {
				d.err = err
			}
			dead := d.err != nil
			d.mu.Unlock()
			d.cond.Broadcast()
			if dead {
				return
			}
		}
	}()
}

// ring wakes the peer: one byte on the socket. A failed write means
// the transport is dying; the parked peer learns through its own
// doorbell reader, so the error needs no handling here.
func (d *doorbell) ring() {
	var one [1]byte
	d.sock.Write(one[:])
}

func (d *doorbell) generation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen
}

// wait sleeps until the generation moves past gen or the bell dies.
func (d *doorbell) wait(gen uint64) {
	d.mu.Lock()
	for d.gen == gen && d.err == nil {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

func (d *doorbell) deadErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// fail kills the bell (and so the endpoint) with err.
func (d *doorbell) fail(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
	d.cond.Broadcast()
}
