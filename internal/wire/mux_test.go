package wire

import (
	"net"
	"sync"
	"testing"
	"time"

	"tdp/internal/telemetry"
)

// muxPair returns two muxed connections over an in-memory pipe, plus a
// cleanup closing both ends.
func muxPair(t *testing.T, credits int) (a, b *Conn, am, bm *Mux) {
	t.Helper()
	ca, cb := net.Pipe()
	t.Cleanup(func() { ca.Close(); cb.Close() })
	a, b = NewConn(ca), NewConn(cb)
	am = NewMux(a, MuxConfig{Credits: credits})
	bm = NewMux(b, MuxConfig{Credits: credits})
	return a, b, am, bm
}

func TestMuxStampsAndStripsStream(t *testing.T) {
	_, b, am, bm := muxPair(t, 4)
	go func() {
		if err := am.SendOn(StreamEvents, NewMessage("EVENT").Set("attr", "a")); err != nil {
			t.Error(err)
		}
	}()
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	sid, handled := bm.Accept(m)
	if handled {
		t.Fatal("data message reported as transport-only")
	}
	if sid != StreamEvents {
		t.Fatalf("stream = %d, want %d", sid, StreamEvents)
	}
	if _, ok := m.Fields[FieldStream]; ok {
		t.Fatal("_stream not stripped by Accept")
	}
}

func TestMuxControlStreamNotStamped(t *testing.T) {
	_, b, am, _ := muxPair(t, 4)
	go am.SendOn(StreamControl, NewMessage("PUT").Set("attr", "a"))
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Fields[FieldStream]; ok {
		t.Fatal("control-stream message carries _stream")
	}
}

// pump drains x's conn in a goroutine, passing every message through
// Accept — the read-loop role the mux owner plays in production. It
// stops when the conn errors (the t.Cleanup pipe close).
func pump(x *Mux) {
	go func() {
		for {
			m, err := x.c.Recv()
			if err != nil {
				x.Fail(err)
				return
			}
			x.Accept(m)
		}
	}()
}

// TestMuxWindowBlocksAndWinupUnblocks pushes several windows' worth of
// messages through one stream: the sender can only finish if the
// receiver's WINUP grants flow back and reopen the window.
func TestMuxWindowBlocksAndWinupUnblocks(t *testing.T) {
	const credits = 4
	const total = 3*credits + 1
	_, b, am, bm := muxPair(t, credits)
	pump(am) // applies the WINUPs bm sends back

	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if err := am.SendOn(StreamBulk, NewMessage("SNAPV").SetInt("part", i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	got := 0
	for got < total {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, handled := bm.Accept(m); handled {
			continue
		}
		got++
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sender never finished despite grants")
	}
}

// TestMuxIndependentStreams verifies a stalled stream does not block
// another stream on the same conn — the head-of-line property the mux
// exists for.
func TestMuxIndependentStreams(t *testing.T) {
	const credits = 2
	_, b, am, _ := muxPair(t, credits)

	// Exhaust StreamBulk's window.
	for i := 0; i < credits; i++ {
		done := make(chan error, 1)
		go func() { done <- am.SendOn(StreamBulk, NewMessage("SNAPV")) }()
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// A further bulk send blocks…
	blocked := make(chan struct{})
	go func() {
		am.SendOn(StreamBulk, NewMessage("SNAPV"))
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("send past window did not block")
	case <-time.After(20 * time.Millisecond):
	}
	// …but an events-stream send goes straight through.
	evDone := make(chan error, 1)
	go func() { evDone <- am.SendOn(StreamEvents, NewMessage("EVENT")) }()
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-evDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("independent stream blocked behind stalled one")
	}
	am.Fail(nil) // release the blocked sender
	<-blocked
}

func TestMuxFailWakesBlockedSenders(t *testing.T) {
	_, b, am, _ := muxPair(t, 1)
	done := make(chan error, 1)
	go func() { done <- am.SendOn(StreamEvents, NewMessage("EVENT")) }()
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	go func() { errs <- am.SendOn(StreamEvents, NewMessage("EVENT")) }()
	time.Sleep(10 * time.Millisecond)
	am.Fail(ErrMuxClosed)
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("blocked send returned nil after Fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fail did not wake blocked sender")
	}
	<-done
}

func TestMuxPiggybackGrants(t *testing.T) {
	_, b, am, bm := muxPair(t, 8)
	// a → b: one events message; b accounts it.
	go am.SendOn(StreamEvents, NewMessage("EVENT"))
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	bm.Accept(m)
	// b → a on control: the pending grant must piggyback.
	go bm.SendOn(StreamControl, NewMessage("OK"))
	reply, err := am.c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Get(FieldWindow) == "" {
		t.Fatal("no piggybacked _win grant on control reply")
	}
	am.Accept(reply)
	if _, ok := reply.Fields[FieldWindow]; ok {
		t.Fatal("_win not stripped by Accept")
	}
}

func TestMuxTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	ca, cb := net.Pipe()
	t.Cleanup(func() { ca.Close(); cb.Close() })
	a, b := NewConn(ca), NewConn(cb)
	am := NewMux(a, MuxConfig{Credits: 1, Registry: reg})
	bm := NewMux(b, MuxConfig{Credits: 1})

	pump(am) // applies the WINUP bm sends back

	go func() {
		am.SendOn(StreamEvents, NewMessage("EVENT"))
		am.SendOn(StreamEvents, NewMessage("EVENT")) // must stall
	}()
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	// Hold the grant back until the second send has provably stalled, so
	// the stall counter increments deterministically.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("wire.mux.stalls").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wire.mux.stalls never incremented")
		}
		time.Sleep(time.Millisecond)
	}
	bm.Accept(m) // grants credit back via WINUP (threshold = 1)
	m, err = b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	bm.Accept(m)
	if reg.Gauge("wire.mux.streams").Value() == 0 {
		t.Fatal("wire.mux.streams gauge not set")
	}
}

func TestParseAndIntersectCaps(t *testing.T) {
	caps := ParseCaps("mux,snapd,,chunk")
	for _, want := range []string{"mux", "snapd", "chunk"} {
		if !caps[want] {
			t.Fatalf("ParseCaps missing %q", want)
		}
	}
	if len(caps) != 3 {
		t.Fatalf("ParseCaps len = %d, want 3", len(caps))
	}
	got := IntersectCaps("snapd,mux,future", []string{CapMux, CapSnapd, CapChunk, CapPing})
	if got != "mux,snapd" {
		t.Fatalf("IntersectCaps = %q, want %q", got, "mux,snapd")
	}
	if IntersectCaps("", []string{CapMux}) != "" {
		t.Fatal("empty offer must grant nothing")
	}
}

// TestCorkUncorkConcurrentSendRace hammers one Conn with concurrent
// Sends, nested Cork/Uncork sections, and mux sends, then verifies
// every frame decodes cleanly and nothing was torn. Run under -race
// this is the regression test for the wmu/cork accounting.
func TestCorkUncorkConcurrentSendRace(t *testing.T) {
	ca, cb := net.Pipe()
	t.Cleanup(func() { ca.Close(); cb.Close() })
	conn := NewConn(ca)
	mux := NewMux(conn, MuxConfig{Credits: 1 << 14}) // effectively unbounded
	peer := NewConn(cb)

	const (
		senders = 8
		perSend = 50
	)
	want := senders * perSend

	recvDone := make(chan int, 1)
	go func() {
		n := 0
		m := new(Message)
		for n < want {
			if err := peer.RecvInto(m); err != nil {
				recvDone <- n
				return
			}
			if m.Verb != "PUT" && m.Verb != "EVENT" {
				t.Errorf("unexpected verb %q", m.Verb)
			}
			n++
		}
		recvDone <- n
	}()

	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSend; i++ {
				switch (g + i) % 4 {
				case 0: // plain send
					conn.Send(NewMessage("PUT").SetInt("n", i))
				case 1: // corked burst
					conn.Cork()
					conn.Send(NewMessage("PUT").SetInt("n", i))
					conn.Uncork()
				case 2: // nested cork
					conn.Cork()
					conn.Cork()
					conn.Send(NewMessage("PUT").SetInt("n", i))
					conn.Uncork()
					conn.Uncork()
				case 3: // muxed send inside a cork section
					conn.Cork()
					mux.SendOn(StreamEvents, NewMessage("EVENT").SetInt("n", i))
					conn.Uncork()
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case n := <-recvDone:
		if n != want {
			t.Fatalf("received %d frames, want %d", n, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("receiver did not finish")
	}
}

// byteMuxPair is muxPair for byte-granular (transport v3) windows;
// override sets a uniform byte window, 0 keeps the per-stream defaults.
func byteMuxPair(t *testing.T, override int) (a, b *Conn, am, bm *Mux) {
	t.Helper()
	ca, cb := net.Pipe()
	t.Cleanup(func() { ca.Close(); cb.Close() })
	a, b = NewConn(ca), NewConn(cb)
	am = NewMux(a, MuxConfig{ByteWindow: true, Credits: override})
	bm = NewMux(b, MuxConfig{ByteWindow: true, Credits: override})
	return a, b, am, bm
}

func TestMuxByteWindowDefaults(t *testing.T) {
	ca, cb := net.Pipe()
	t.Cleanup(func() { ca.Close(); cb.Close() })
	x := NewMux(NewConn(ca), MuxConfig{ByteWindow: true})
	for _, tc := range []struct {
		stream uint32
		want   int
	}{
		{StreamEvents, ByteWindowEvents},
		{StreamBulk, ByteWindowBulk},
		{StreamSamples, ByteWindowSamples},
		{7, ByteWindowDefault},
	} {
		if got := x.winFor(tc.stream); got != tc.want {
			t.Errorf("winFor(%d) = %d, want %d", tc.stream, got, tc.want)
		}
	}
	// Message mode keeps the credit count for every stream.
	y := NewMux(NewConn(cb), MuxConfig{})
	if got := y.winFor(StreamBulk); got != DefaultCredits {
		t.Errorf("message-mode winFor = %d, want %d", got, DefaultCredits)
	}
}

// TestMuxByteWindowBlocksAndRefills is the byte-mode mirror of the
// window/WINUP test: the total payload pushed through the stream is
// many times the byte window, so the sender only finishes if the
// receiver's byte grants flow back.
func TestMuxByteWindowBlocksAndRefills(t *testing.T) {
	const window = 256
	const total = 40 // ~40 messages of ~45 encoded bytes through a 256-byte window
	_, b, am, bm := byteMuxPair(t, window)
	pump(am)

	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if err := am.SendOn(StreamBulk, NewMessage("SNAPV").Set("blob", "0123456789abcdef").SetInt("part", i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	got := 0
	for got < total {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, handled := bm.Accept(m); handled {
			continue
		}
		got++
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sender never finished despite byte grants")
	}
}

// TestMuxByteWindowOversizedMessage: a message costing more than the
// whole window must still move (stop-and-wait), not deadlock — the
// window goes negative and the receiver's grant restores it.
func TestMuxByteWindowOversizedMessage(t *testing.T) {
	const window = 64
	_, b, am, bm := byteMuxPair(t, window)
	pump(am)

	big := NewMessage("SNAPV").Set("blob", "this payload alone encodes far larger than the whole sixty-four byte window")
	if big.EncodedSize() <= window {
		t.Fatalf("test message EncodedSize %d not oversized", big.EncodedSize())
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 5; i++ {
			m := NewMessage("SNAPV").Set("blob", "this payload alone encodes far larger than the whole sixty-four byte window")
			if err := am.SendOn(StreamBulk, m); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	got := 0
	for got < 5 {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, handled := bm.Accept(m); handled {
			continue
		}
		got++
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oversized messages deadlocked")
	}
}

// TestMuxByteGrantCappedAtWindow: a hostile or confused peer granting
// more than was ever consumed must not inflate the send window past its
// initial size.
func TestMuxByteGrantCappedAtWindow(t *testing.T) {
	ca, cb := net.Pipe()
	t.Cleanup(func() { ca.Close(); cb.Close() })
	x := NewMux(NewConn(ca), MuxConfig{ByteWindow: true})
	go func() { // drain any WINUP the accept side emits
		buf := make([]byte, 4096)
		for {
			if _, err := cb.Read(buf); err != nil {
				return
			}
		}
	}()
	x.applyGrants("2:999999999")
	x.mu.Lock()
	got := x.send[StreamBulk]
	x.mu.Unlock()
	if got != ByteWindowBulk {
		t.Fatalf("send window after absurd grant = %d, want cap %d", got, ByteWindowBulk)
	}
	// Over maxByteGrant is rejected before it touches the accounting:
	// the stream's window entry is never even created.
	x.applyGrants("3:1073741825")
	x.mu.Lock()
	_, touched := x.send[StreamSamples]
	x.mu.Unlock()
	if touched {
		t.Fatal("out-of-range grant touched the stream's window accounting")
	}
}

// TestMuxBlockedSendRacesFailOnClose: a SendOn parked on a dry window
// while the connection dies must return the mux error, not hang. The
// owner read loop (pump) turns the conn error into Fail, exactly as in
// production.
func TestMuxBlockedSendRacesFailOnClose(t *testing.T) {
	ca, cb := net.Pipe()
	t.Cleanup(func() { ca.Close(); cb.Close() })
	a, b := NewConn(ca), NewConn(cb)
	am := NewMux(a, MuxConfig{Credits: 1})
	pump(am)

	// Drain the window.
	go am.SendOn(StreamBulk, NewMessage("SNAPV"))
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	// Park a second send on the dry window…
	errs := make(chan error, 1)
	go func() { errs <- am.SendOn(StreamBulk, NewMessage("SNAPV")) }()
	time.Sleep(20 * time.Millisecond)
	// …then kill the connection out from under it.
	cb.Close()
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("blocked SendOn returned nil after conn death")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked SendOn hung across conn death")
	}
}

// TestMuxCorkedBatchExceedsWindow: a corked batch larger than the send
// window must not deadlock — SendOn flushes the cork before parking, so
// the receiver can fund the grants the tail of the batch waits for.
func TestMuxCorkedBatchExceedsWindow(t *testing.T) {
	const credits = 4
	const total = 3 * credits
	a, b, am, bm := muxPair(t, credits)
	pump(am)

	done := make(chan error, 1)
	go func() {
		a.Cork()
		defer a.Uncork()
		for i := 0; i < total; i++ {
			if err := am.SendOn(StreamBulk, NewMessage("SNAPV").SetInt("part", i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	got := 0
	for got < total {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, handled := bm.Accept(m); handled {
			continue
		}
		got++
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("corked batch past the window deadlocked")
	}
}
