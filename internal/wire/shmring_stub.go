//go:build !(linux || darwin)

package wire

import (
	"errors"
	"net"
)

// Stub for platforms without the mmap-backed ring: the shm capability
// is simply never offered or granted (ShmSupported gates both ends),
// so these entry points are unreachable in practice and exist only to
// keep the package compiling everywhere.

var errShmUnsupported = errors.New("wire: shm transport not supported on this platform")

// ErrShmBadSegment mirrors the real implementation's sentinel.
var ErrShmBadSegment = errors.New("wire: bad shm segment")

// DefaultShmRingSize mirrors the real implementation's constant.
const DefaultShmRingSize = 256 << 10

// ShmSupported reports whether this build can serve the shm transport.
func ShmSupported() bool { return false }

// ShmSegment is unavailable on this platform.
type ShmSegment struct{}

// CreateShmSegment always fails on this platform.
func CreateShmSegment(path string, ringSize int) (*ShmSegment, error) {
	return nil, errShmUnsupported
}

// OpenShmSegment always fails on this platform.
func OpenShmSegment(path string) (*ShmSegment, error) {
	return nil, errShmUnsupported
}

// RingSize returns 0 on this platform.
func (s *ShmSegment) RingSize() int { return 0 }

// Endpoint is unreachable on this platform (no segment can exist).
func (s *ShmSegment) Endpoint(server bool, sock net.Conn) *ShmEndpoint { return nil }

// ShmEndpoint is unavailable on this platform.
type ShmEndpoint struct{}

// Activate is a no-op on this platform.
func (e *ShmEndpoint) Activate() {}

// Close is a no-op on this platform.
func (e *ShmEndpoint) Close() error { return nil }

func (e *ShmEndpoint) Read(p []byte) (int, error)  { return 0, errShmUnsupported }
func (e *ShmEndpoint) Write(p []byte) (int, error) { return 0, errShmUnsupported }
