// Package wire implements the message framing and encoding shared by
// every daemon protocol in the TDP reproduction: the attribute space
// protocol (LASS/CASS), the Condor daemon protocols, the Paradyn
// front-end protocol, and the proxy control channel.
//
// A message on the wire is a 4-byte big-endian length followed by that
// many payload bytes. The payload is a Message encoded as a compact
// textual record: the verb, then a sequence of key/value fields, each
// length-prefixed so values may contain any byte sequence. The format
// is deliberately simple (the paper constrains attribute values to
// strings) and has no external dependencies.
//
// The codec is allocation-conscious: AppendEncode appends into a
// caller-supplied buffer in map order (no sort), DecodeInto reuses a
// Message and interns the protocol's fixed key/verb vocabulary, and
// Conn keeps per-connection scratch buffers so a steady-state
// Send/Recv cycle allocates only the decoded value strings. Encode
// remains deterministic (sorted keys) for tests and logs.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"tdp/internal/telemetry"
)

// MaxFrameSize bounds a single frame. Attribute values are small
// configuration strings in TDP; 16 MiB is far beyond any legitimate
// message and protects servers from hostile or corrupt peers.
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned when an incoming frame header announces
// a payload larger than MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// ErrMalformed is returned when a payload cannot be decoded as a Message.
var ErrMalformed = errors.New("wire: malformed message")

// Reserved field names. Keys beginning with "_" are reserved for the
// protocol layer: current peers use the two below for cross-daemon
// span tracing, and decoders MUST carry unknown "_"-prefixed keys
// through untouched (they are a newer peer's protocol extensions, not
// application data). Verb handlers read named fields only, so unknown
// reserved keys are safely ignored end to end; IsReserved lets
// generic code (snapshot dumps, attribute iteration) skip them.
const (
	// FieldTraceID carries the telemetry trace ID across daemons.
	FieldTraceID = "_tid"
	// FieldSpanID carries the sender's span ID (the receiver's parent).
	FieldSpanID = "_sid"
	// FieldStream carries the mux stream ID a message rides (see Mux);
	// absent means stream 0, the uncontrolled control stream.
	FieldStream = "_stream"
	// FieldWindow piggybacks flow-control credit grants ("sid:credits"
	// pairs, comma separated) on any outgoing message.
	FieldWindow = "_win"
)

// IsReserved reports whether a field key belongs to the protocol
// layer rather than the application.
func IsReserved(key string) bool { return strings.HasPrefix(key, "_") }

// interned holds the protocol's fixed vocabulary of verbs and field
// keys. Decoders look incoming byte slices up here before converting,
// so the hot path allocates no strings for the keys and verbs that
// make up almost every message. The map is built once at init and
// read-only afterwards, hence safe for concurrent use. Lookups with a
// []byte key (`interned[string(b)]`) do not allocate.
var interned = map[string]string{}

func init() {
	words := []string{
		// Attribute space verbs (requests and replies).
		"HELLO", "PUT", "MPUT", "GET", "TRYGET", "DELETE", "SNAP", "SUB",
		"STATS", "EXIT", "OK", "VALUE", "NOTFOUND", "SNAPV", "STATSV",
		"ERROR", "EVENT", "CLOSE",
		// Global-forwarding verbs (LASS → CASS relay).
		"GPUT", "GMPUT", "GGET", "GTRYGET", "GDEL", "GSNAP",
		"GSNAPM", "GCTXS",
		// Context-explicit verbs (shard router → CASS shard, CapCtxOp):
		// the pooled per-shard connection names the target context in a
		// ctx field on every request instead of joining one at HELLO.
		"CPUT", "CMPUT", "CGET", "CDEL", "CSNAP", "CCTXS",
		// Batched uplink flush (mrnet node→node, CapTBatch).
		"TBATCH",
		// Tool-stream verbs (paradyn front-end protocol, mrnet
		// reduction network, proxy handshake) — the monitoring fan-in
		// hot path, where a pool of daemons emits a message per metric
		// per sample interval.
		"REGISTER", "SAMPLE", "TSAMPLE", "DONE", "RUN",
		"CONNECT", "REFUSED",
		// Transport v2 verbs: delta snapshots, flow-control window
		// updates, and wire-level liveness probes.
		"SNAPD", "DELTA", "WINUP", "PING", "PONG",
		// Transport v3: the client's shared-memory cutover request.
		"SHMRDY",
		// Common field keys.
		"id", "attr", "value", "context", "error", "daemon", "json",
		"n", "seq", "op", "who", "lost", "seqs", "reason", "conn",
		"fn", "calls", "time_us", "status", "host", "executable",
		"pid", "rank", "kind", "name", "scope", "target", "resume",
		"caps", "since", "part", "more", "total",
		"ctx", "wait", "shard", "smv", "shmfile",
		FieldTraceID, FieldSpanID, FieldStream, FieldWindow,
	}
	// Batched put / snapshot field keys k0..k31, v0..v31 (plus the
	// per-entry seq keys s0..s31 of a versioned snapshot and the o0..o31
	// op markers of a delta); larger batches fall back to ordinary
	// string conversion.
	for i := 0; i < 32; i++ {
		words = append(words, "k"+strconv.Itoa(i), "v"+strconv.Itoa(i),
			"s"+strconv.Itoa(i), "o"+strconv.Itoa(i))
	}
	for _, w := range words {
		interned[w] = w
	}
}

// intern returns the canonical string for s when it is in the
// protocol's fixed vocabulary. Callers pass views of an already-copied
// payload, so the miss path allocates nothing either — interning here
// is purely canonicalization (verb dispatch compares pointers first).
func intern(s string) string {
	if c, ok := interned[s]; ok {
		return c
	}
	return s
}

// Message is a verb plus a set of string key/value fields. It is the
// unit of exchange on every control connection.
type Message struct {
	Verb   string
	Fields map[string]string
}

// NewMessage returns a Message with the given verb and an empty field set.
func NewMessage(verb string) *Message {
	return &Message{Verb: verb, Fields: make(map[string]string)}
}

// Set stores a field and returns the message for chaining.
func (m *Message) Set(key, value string) *Message {
	if m.Fields == nil {
		m.Fields = make(map[string]string)
	}
	m.Fields[key] = value
	return m
}

// SetInt stores an integer field.
func (m *Message) SetInt(key string, value int) *Message {
	return m.Set(key, strconv.Itoa(value))
}

// Get returns the value for key, or "" when absent.
func (m *Message) Get(key string) string {
	return m.Fields[key]
}

// Lookup returns the value for key and whether it was present.
func (m *Message) Lookup(key string) (string, bool) {
	v, ok := m.Fields[key]
	return v, ok
}

// SetTrace stamps the reserved span-tracing fields on the message.
// Empty IDs clear nothing and stamp nothing, so untraced paths add no
// bytes to the wire.
func (m *Message) SetTrace(traceID, spanID string) *Message {
	if traceID != "" {
		m.Set(FieldTraceID, traceID)
	}
	if spanID != "" {
		m.Set(FieldSpanID, spanID)
	}
	return m
}

// Trace returns the reserved span-tracing fields ("" when untraced).
func (m *Message) Trace() (traceID, spanID string) {
	return m.Fields[FieldTraceID], m.Fields[FieldSpanID]
}

// Int returns the integer value of a field, or the provided default
// when the field is absent or unparseable.
func (m *Message) Int(key string, def int) int {
	v, ok := m.Fields[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// String renders the message for logs and error text. The buffer is
// presized from the actual key/value lengths and values are quoted in
// place with AppendQuote, so rendering a message with long values is
// one allocation-and-copy pass instead of a per-field Quote allocation
// feeding an undersized builder that regrows (and re-copies) as each
// chunk lands.
func (m *Message) String() string {
	keys := sortedFieldKeys(m.Fields)
	size := len(m.Verb)
	for _, k := range keys {
		// ' ' + key + '=' + '"' + value + '"'; escapes may add more,
		// but that growth is amortized against an almost-right base.
		size += len(k) + len(m.Fields[k]) + 4
	}
	buf := make([]byte, 0, size)
	buf = append(buf, m.Verb...)
	for _, k := range keys {
		buf = append(buf, ' ')
		buf = append(buf, k...)
		buf = append(buf, '=')
		buf = strconv.AppendQuote(buf, m.Fields[k])
	}
	return string(buf)
}

// EncodedSize returns the exact number of payload bytes Encode and
// AppendEncode produce for m.
func (m *Message) EncodedSize() int {
	n := varStrSize(len(m.Verb)) + decimalDigits(len(m.Fields)) + 1
	for k, v := range m.Fields {
		n += varStrSize(len(k)) + varStrSize(len(v))
	}
	return n
}

// Encode serializes the message payload (without the frame header).
//
// Layout: varstr(verb) varint(nfields) { varstr(key) varstr(value) }*
// where varstr is a decimal length, ':', then the bytes.
//
// Encode emits fields in sorted key order — the deterministic mode
// tests and golden files rely on. The transmit hot path (Conn.Send)
// uses AppendEncode instead, which skips the sort: receivers are
// order-insensitive, so field order is not part of the protocol.
func (m *Message) Encode() []byte {
	buf := make([]byte, 0, m.EncodedSize())
	buf = appendVarStr(buf, m.Verb)
	buf = strconv.AppendInt(buf, int64(len(m.Fields)), 10)
	buf = append(buf, ';')
	for _, k := range sortedFieldKeys(m.Fields) {
		buf = appendVarStr(buf, k)
		buf = appendVarStr(buf, m.Fields[k])
	}
	return buf
}

// AppendEncode appends the encoded payload to buf and returns the
// extended slice. Fields are emitted in map order — no per-message
// key sort and no allocation beyond (amortized) buffer growth, which
// a caller reusing buf across messages pays only once. Use Encode
// when deterministic bytes matter.
func (m *Message) AppendEncode(buf []byte) []byte {
	buf = appendVarStr(buf, m.Verb)
	buf = strconv.AppendInt(buf, int64(len(m.Fields)), 10)
	buf = append(buf, ';')
	for k, v := range m.Fields {
		buf = appendVarStr(buf, k)
		buf = appendVarStr(buf, v)
	}
	return buf
}

// sortedFieldKeys returns the field keys in sorted order. Small key
// sets (every protocol message; snapshots excepted) sort by insertion
// into a stack-backed array, avoiding the sort.Strings allocation.
func sortedFieldKeys(fields map[string]string) []string {
	n := len(fields)
	var arr [16]string
	keys := arr[:0]
	if n > len(arr) {
		keys = make([]string, 0, n)
	}
	for k := range fields {
		keys = append(keys, k)
	}
	if n > 32 {
		sort.Strings(keys)
		return keys
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Decode parses a payload produced by Encode or AppendEncode.
func Decode(payload []byte) (*Message, error) {
	m := new(Message)
	if err := DecodeInto(m, payload); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses a payload into m, reusing m's field map when
// present (it is cleared first). Decoded messages share no memory with
// payload, so callers may reuse the payload buffer immediately: the
// payload is copied into a single string up front and every decoded
// verb, key, and value is a zero-copy view of that one copy — a
// message with f fields costs one allocation, not f+1. (The flip side:
// retaining any one field value keeps the whole message's bytes alive,
// which for kilobyte-scale protocol messages is the right trade.)
// On error m's contents are unspecified.
func DecodeInto(m *Message, payload []byte) error {
	s := string(payload)
	verb, rest, err := readVarStr(s)
	if err != nil {
		return err
	}
	n, rest, err := readCount(rest)
	if err != nil {
		return err
	}
	m.Verb = intern(verb)
	// Cap the map size hint by what the remaining bytes could possibly
	// hold (a field is at least 4 bytes: "0:0:"), so a hostile count
	// cannot force a huge allocation before parsing fails.
	hint := n
	if max := len(rest) / 4; hint > max {
		hint = max
	}
	if m.Fields == nil {
		m.Fields = make(map[string]string, hint)
	} else {
		clear(m.Fields)
	}
	for i := 0; i < n; i++ {
		var k, v string
		k, rest, err = readVarStr(rest)
		if err != nil {
			return err
		}
		v, rest, err = readVarStr(rest)
		if err != nil {
			return err
		}
		m.Fields[k] = v
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(rest))
	}
	return nil
}

func appendVarStr(buf []byte, s string) []byte {
	buf = strconv.AppendInt(buf, int64(len(s)), 10)
	buf = append(buf, ':')
	return append(buf, s...)
}

// varStrSize is the encoded size of a string of length l.
func varStrSize(l int) int { return decimalDigits(l) + 1 + l }

// decimalDigits is the width of n (>= 0) in base 10.
func decimalDigits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}

// parseLen parses a non-negative decimal length from b. It accepts
// only plain digit runs (no sign, no spaces) of at most 9 digits —
// anything longer necessarily exceeds MaxFrameSize.
func parseLen(b string) (int, bool) {
	if len(b) == 0 || len(b) > 9 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func readCount(b string) (int, string, error) {
	i := 0
	for i < len(b) && b[i] != ';' {
		i++
	}
	if i == len(b) {
		return 0, "", fmt.Errorf("%w: missing field count", ErrMalformed)
	}
	n, ok := parseLen(b[:i])
	if !ok {
		return 0, "", fmt.Errorf("%w: bad field count", ErrMalformed)
	}
	return n, b[i+1:], nil
}

// readVarStr slices one length-prefixed string out of b. The returned
// string shares b's backing — for DecodeInto that is the message's own
// payload copy, so retaining it is safe.
func readVarStr(b string) (string, string, error) {
	i := 0
	for i < len(b) && b[i] != ':' {
		i++
	}
	if i == len(b) {
		return "", "", fmt.Errorf("%w: missing length separator", ErrMalformed)
	}
	n, ok := parseLen(b[:i])
	if !ok {
		return "", "", fmt.Errorf("%w: bad length", ErrMalformed)
	}
	rest := b[i+1:]
	if len(rest) < n {
		return "", "", fmt.Errorf("%w: short string", ErrMalformed)
	}
	return rest[:n], rest[n:], nil
}

// scratchKeepCap bounds how much scratch buffer a connection keeps
// between messages; a single oversized message (a big SNAPV, say) must
// not pin its buffer for the connection's lifetime.
const scratchKeepCap = 64 << 10

// Conn wraps an io.ReadWriter with framed Message I/O. Reads and
// writes are independently serialized, so one goroutine may read while
// another writes, and multiple goroutines may send concurrently.
type Conn struct {
	rmu  sync.Mutex
	rbuf []byte // payload scratch, guarded by rmu
	br   *bufio.Reader
	w    io.Writer
	rw   io.ReadWriter

	wmu     sync.Mutex
	wbuf    []byte // frame scratch / cork accumulator, guarded by wmu
	corked  int    // Cork depth, guarded by wmu
	pending int    // messages accumulated while corked, guarded by wmu

	// Optional telemetry, installed by Instrument. Held behind an
	// atomic pointer — NOT the r/w mutexes — because a reader
	// goroutine may sit blocked inside Recv (holding rmu) for the
	// connection's whole life, and Instrument must not wait for it.
	metrics atomic.Pointer[connCounters]
}

// connCounters bundles a connection's installed counters; any may be
// nil.
type connCounters struct {
	txBytes, rxBytes *telemetry.Counter
	txMsgs, rxMsgs   *telemetry.Counter
}

// NewConn returns a framed connection over rw.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{br: bufio.NewReader(rw), w: rw, rw: rw}
}

// Instrument installs byte and message counters (any may be nil) that
// the connection bumps on every framed send and receive. Byte counts
// include the 4-byte frame headers — they are what crossed the wire.
// The counters typically come from the owning daemon's
// telemetry.Registry; installation is safe at any time, including
// while another goroutine is blocked in Recv.
func (c *Conn) Instrument(txBytes, rxBytes, txMsgs, rxMsgs *telemetry.Counter) {
	c.metrics.Store(&connCounters{
		txBytes: txBytes, rxBytes: rxBytes, txMsgs: txMsgs, rxMsgs: rxMsgs,
	})
}

// InstrumentRegistry installs the standard wire counters
// ("wire.tx.bytes", "wire.rx.bytes", "wire.tx.msgs", "wire.rx.msgs")
// from reg. Several connections may share one registry; the counters
// then aggregate across them.
func (c *Conn) InstrumentRegistry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.Instrument(
		reg.Counter("wire.tx.bytes"), reg.Counter("wire.rx.bytes"),
		reg.Counter("wire.tx.msgs"), reg.Counter("wire.rx.msgs"),
	)
}

// Underlying returns the wrapped stream (e.g. to close it).
func (c *Conn) Underlying() io.ReadWriter { return c.rw }

// Detach returns a reader that first drains any bytes this framed
// connection has already buffered and then continues from the
// underlying stream. Use it when switching a connection from framed
// messages to a raw byte stream (e.g. after a proxy handshake).
func (c *Conn) Detach() io.Reader { return c.br }

// SwapRead replaces the connection's read side with r. It is the
// receive half of a transport cutover (the shm upgrade): the Conn —
// and any Mux layered on it — keeps its identity while the bytes start
// arriving from somewhere else. The caller must guarantee that no
// framed bytes remain on (or will ever again arrive from) the old
// stream, and must not call this while another goroutine is blocked in
// Recv — in practice the owner's read loop performs the swap between
// two of its own Recv calls, which satisfies both.
func (c *Conn) SwapRead(r io.Reader) {
	c.rmu.Lock()
	c.br = bufio.NewReader(r)
	c.rmu.Unlock()
}

// SwapWrite replaces the connection's write side with w, the transmit
// half of a transport cutover. Safe at any time with respect to
// concurrent Sends (the write mutex orders the swap against them); the
// caller's protocol must guarantee the peer is ready to read from the
// new stream before anything is sent on it.
func (c *Conn) SwapWrite(w io.Writer) {
	c.wmu.Lock()
	c.w = w
	c.wmu.Unlock()
}

// Send frames and writes one message. Header and payload go out in a
// single Write on the underlying stream (one syscall, and on TCP one
// packet for small messages), encoded into a per-connection scratch
// buffer so a steady-state Send allocates nothing.
func (c *Conn) Send(m *Message) error {
	size := m.EncodedSize()
	if size > MaxFrameSize {
		return ErrFrameTooLarge
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(size))
	c.wbuf = append(c.wbuf, hdr[:]...)
	c.wbuf = m.AppendEncode(c.wbuf)
	c.pending++
	if c.corked > 0 {
		return nil
	}
	return c.flushLocked()
}

// Flush writes out any frames buffered by an enclosing Cork without
// changing the cork depth. Every buffered frame is complete, so an
// early flush is always safe; it only forfeits some batching. A
// flow-controlled sender (Mux.SendOn) flushes before blocking on a
// window so the frames whose receipt will fund the awaited grants
// actually reach the peer.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.flushLocked()
}

// Cork suspends transmission: subsequent Sends accumulate frames in
// the connection's write buffer instead of writing them out. Each
// Cork must be balanced by Uncork, which flushes the accumulated
// frames in a single Write. Use it for reply bursts (event pushes,
// pipelined acknowledgements) to pay one syscall for the burst.
// Cork/Uncork pairs nest.
func (c *Conn) Cork() {
	c.wmu.Lock()
	c.corked++
	c.wmu.Unlock()
}

// Uncork ends a Cork section, writing every frame accumulated since
// the matching Cork (plus any sent under outer Cork levels) in one
// Write once the outermost section ends.
func (c *Conn) Uncork() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.corked == 0 {
		return nil
	}
	c.corked--
	if c.corked > 0 {
		return nil
	}
	return c.flushLocked()
}

// flushLocked writes the accumulated frames and resets the scratch
// buffer. Callers hold wmu.
func (c *Conn) flushLocked() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	n := len(c.wbuf)
	msgs := c.pending
	_, err := c.w.Write(c.wbuf)
	if cap(c.wbuf) > scratchKeepCap {
		c.wbuf = nil
	} else {
		c.wbuf = c.wbuf[:0]
	}
	c.pending = 0
	if err != nil {
		return err
	}
	if m := c.metrics.Load(); m != nil {
		if m.txBytes != nil {
			m.txBytes.Add(int64(n))
		}
		if m.txMsgs != nil {
			m.txMsgs.Add(int64(msgs))
		}
	}
	return nil
}

// Recv reads and decodes one message, blocking until a full frame
// arrives or the stream errors.
func (c *Conn) Recv() (*Message, error) {
	m := new(Message)
	if err := c.RecvInto(m); err != nil {
		return nil, err
	}
	return m, nil
}

// RecvInto reads one message into m, reusing m's field map and the
// connection's internal payload buffer. It is the receive half of the
// zero-allocation hot path: a caller that owns its Message (a server
// request loop dispatching synchronously) avoids the per-message
// Message and map allocations of Recv. The decoded message shares no
// memory with the connection's buffers.
func (c *Conn) RecvInto(m *Message) error {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	if cap(c.rbuf) < n {
		c.rbuf = make([]byte, n)
	}
	payload := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return err
	}
	if cm := c.metrics.Load(); cm != nil {
		if cm.rxBytes != nil {
			cm.rxBytes.Add(int64(len(hdr)) + int64(n))
		}
		if cm.rxMsgs != nil {
			cm.rxMsgs.Inc()
		}
	}
	err := DecodeInto(m, payload)
	if cap(c.rbuf) > scratchKeepCap {
		c.rbuf = nil
	}
	return err
}

// Close closes the underlying stream when it is an io.Closer.
func (c *Conn) Close() error {
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
