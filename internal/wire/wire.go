// Package wire implements the message framing and encoding shared by
// every daemon protocol in the TDP reproduction: the attribute space
// protocol (LASS/CASS), the Condor daemon protocols, the Paradyn
// front-end protocol, and the proxy control channel.
//
// A message on the wire is a 4-byte big-endian length followed by that
// many payload bytes. The payload is a Message encoded as a compact
// textual record: the verb, then a sequence of key/value fields, each
// length-prefixed so values may contain any byte sequence. The format
// is deliberately simple (the paper constrains attribute values to
// strings) and has no external dependencies.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"tdp/internal/telemetry"
)

// MaxFrameSize bounds a single frame. Attribute values are small
// configuration strings in TDP; 16 MiB is far beyond any legitimate
// message and protects servers from hostile or corrupt peers.
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned when an incoming frame header announces
// a payload larger than MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// ErrMalformed is returned when a payload cannot be decoded as a Message.
var ErrMalformed = errors.New("wire: malformed message")

// Reserved field names. Keys beginning with "_" are reserved for the
// protocol layer: current peers use the two below for cross-daemon
// span tracing, and decoders MUST carry unknown "_"-prefixed keys
// through untouched (they are a newer peer's protocol extensions, not
// application data). Verb handlers read named fields only, so unknown
// reserved keys are safely ignored end to end; IsReserved lets
// generic code (snapshot dumps, attribute iteration) skip them.
const (
	// FieldTraceID carries the telemetry trace ID across daemons.
	FieldTraceID = "_tid"
	// FieldSpanID carries the sender's span ID (the receiver's parent).
	FieldSpanID = "_sid"
)

// IsReserved reports whether a field key belongs to the protocol
// layer rather than the application.
func IsReserved(key string) bool { return strings.HasPrefix(key, "_") }

// Message is a verb plus a set of string key/value fields. It is the
// unit of exchange on every control connection.
type Message struct {
	Verb   string
	Fields map[string]string
}

// NewMessage returns a Message with the given verb and an empty field set.
func NewMessage(verb string) *Message {
	return &Message{Verb: verb, Fields: make(map[string]string)}
}

// Set stores a field and returns the message for chaining.
func (m *Message) Set(key, value string) *Message {
	if m.Fields == nil {
		m.Fields = make(map[string]string)
	}
	m.Fields[key] = value
	return m
}

// SetInt stores an integer field.
func (m *Message) SetInt(key string, value int) *Message {
	return m.Set(key, strconv.Itoa(value))
}

// Get returns the value for key, or "" when absent.
func (m *Message) Get(key string) string {
	return m.Fields[key]
}

// Lookup returns the value for key and whether it was present.
func (m *Message) Lookup(key string) (string, bool) {
	v, ok := m.Fields[key]
	return v, ok
}

// SetTrace stamps the reserved span-tracing fields on the message.
// Empty IDs clear nothing and stamp nothing, so untraced paths add no
// bytes to the wire.
func (m *Message) SetTrace(traceID, spanID string) *Message {
	if traceID != "" {
		m.Set(FieldTraceID, traceID)
	}
	if spanID != "" {
		m.Set(FieldSpanID, spanID)
	}
	return m
}

// Trace returns the reserved span-tracing fields ("" when untraced).
func (m *Message) Trace() (traceID, spanID string) {
	return m.Fields[FieldTraceID], m.Fields[FieldSpanID]
}

// Int returns the integer value of a field, or the provided default
// when the field is absent or unparseable.
func (m *Message) Int(key string, def int) int {
	v, ok := m.Fields[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// String renders the message for logs and error text.
func (m *Message) String() string {
	keys := make([]string, 0, len(m.Fields))
	for k := range m.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := m.Verb
	for _, k := range keys {
		s += fmt.Sprintf(" %s=%q", k, m.Fields[k])
	}
	return s
}

// Encode serializes the message payload (without the frame header).
//
// Layout: varstr(verb) varint(nfields) { varstr(key) varstr(value) }*
// where varstr is a decimal length, ':', then the bytes.
func (m *Message) Encode() []byte {
	var buf []byte
	buf = appendVarStr(buf, m.Verb)
	buf = strconv.AppendInt(buf, int64(len(m.Fields)), 10)
	buf = append(buf, ';')
	keys := make([]string, 0, len(m.Fields))
	for k := range m.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic encoding simplifies testing
	for _, k := range keys {
		buf = appendVarStr(buf, k)
		buf = appendVarStr(buf, m.Fields[k])
	}
	return buf
}

// Decode parses a payload produced by Encode.
func Decode(payload []byte) (*Message, error) {
	verb, rest, err := readVarStr(payload)
	if err != nil {
		return nil, err
	}
	n, rest, err := readCount(rest)
	if err != nil {
		return nil, err
	}
	msg := &Message{Verb: verb, Fields: make(map[string]string, n)}
	for i := 0; i < n; i++ {
		var k, v string
		k, rest, err = readVarStr(rest)
		if err != nil {
			return nil, err
		}
		v, rest, err = readVarStr(rest)
		if err != nil {
			return nil, err
		}
		msg.Fields[k] = v
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(rest))
	}
	return msg, nil
}

func appendVarStr(buf []byte, s string) []byte {
	buf = strconv.AppendInt(buf, int64(len(s)), 10)
	buf = append(buf, ':')
	return append(buf, s...)
}

func readCount(b []byte) (int, []byte, error) {
	i := 0
	for i < len(b) && b[i] != ';' {
		i++
	}
	if i == len(b) {
		return 0, nil, fmt.Errorf("%w: missing field count", ErrMalformed)
	}
	n, err := strconv.Atoi(string(b[:i]))
	if err != nil || n < 0 {
		return 0, nil, fmt.Errorf("%w: bad field count", ErrMalformed)
	}
	return n, b[i+1:], nil
}

func readVarStr(b []byte) (string, []byte, error) {
	i := 0
	for i < len(b) && b[i] != ':' {
		i++
	}
	if i == len(b) {
		return "", nil, fmt.Errorf("%w: missing length separator", ErrMalformed)
	}
	n, err := strconv.Atoi(string(b[:i]))
	if err != nil || n < 0 {
		return "", nil, fmt.Errorf("%w: bad length", ErrMalformed)
	}
	rest := b[i+1:]
	if len(rest) < n {
		return "", nil, fmt.Errorf("%w: short string", ErrMalformed)
	}
	return string(rest[:n]), rest[n:], nil
}

// Conn wraps an io.ReadWriter with framed Message I/O. Reads and
// writes are independently serialized, so one goroutine may read while
// another writes, and multiple goroutines may send concurrently.
type Conn struct {
	rmu sync.Mutex
	wmu sync.Mutex
	br  *bufio.Reader
	w   io.Writer
	rw  io.ReadWriter

	// Optional telemetry, installed by Instrument. Held behind an
	// atomic pointer — NOT the r/w mutexes — because a reader
	// goroutine may sit blocked inside Recv (holding rmu) for the
	// connection's whole life, and Instrument must not wait for it.
	metrics atomic.Pointer[connCounters]
}

// connCounters bundles a connection's installed counters; any may be
// nil.
type connCounters struct {
	txBytes, rxBytes *telemetry.Counter
	txMsgs, rxMsgs   *telemetry.Counter
}

// NewConn returns a framed connection over rw.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{br: bufio.NewReader(rw), w: rw, rw: rw}
}

// Instrument installs byte and message counters (any may be nil) that
// the connection bumps on every framed send and receive. Byte counts
// include the 4-byte frame headers — they are what crossed the wire.
// The counters typically come from the owning daemon's
// telemetry.Registry; installation is safe at any time, including
// while another goroutine is blocked in Recv.
func (c *Conn) Instrument(txBytes, rxBytes, txMsgs, rxMsgs *telemetry.Counter) {
	c.metrics.Store(&connCounters{
		txBytes: txBytes, rxBytes: rxBytes, txMsgs: txMsgs, rxMsgs: rxMsgs,
	})
}

// InstrumentRegistry installs the standard wire counters
// ("wire.tx.bytes", "wire.rx.bytes", "wire.tx.msgs", "wire.rx.msgs")
// from reg. Several connections may share one registry; the counters
// then aggregate across them.
func (c *Conn) InstrumentRegistry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.Instrument(
		reg.Counter("wire.tx.bytes"), reg.Counter("wire.rx.bytes"),
		reg.Counter("wire.tx.msgs"), reg.Counter("wire.rx.msgs"),
	)
}

// Underlying returns the wrapped stream (e.g. to close it).
func (c *Conn) Underlying() io.ReadWriter { return c.rw }

// Detach returns a reader that first drains any bytes this framed
// connection has already buffered and then continues from the
// underlying stream. Use it when switching a connection from framed
// messages to a raw byte stream (e.g. after a proxy handshake).
func (c *Conn) Detach() io.Reader { return c.br }

// Send frames and writes one message.
func (c *Conn) Send(m *Message) error {
	payload := m.Encode()
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	if m := c.metrics.Load(); m != nil {
		if m.txBytes != nil {
			m.txBytes.Add(int64(len(hdr) + len(payload)))
		}
		if m.txMsgs != nil {
			m.txMsgs.Inc()
		}
	}
	return nil
}

// Recv reads and decodes one message, blocking until a full frame
// arrives or the stream errors.
func (c *Conn) Recv() (*Message, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, err
	}
	if m := c.metrics.Load(); m != nil {
		if m.rxBytes != nil {
			m.rxBytes.Add(int64(len(hdr)) + int64(n))
		}
		if m.rxMsgs != nil {
			m.rxMsgs.Inc()
		}
	}
	return Decode(payload)
}

// Close closes the underlying stream when it is an io.Closer.
func (c *Conn) Close() error {
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
