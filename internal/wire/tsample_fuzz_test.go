package wire

import (
	"reflect"
	"testing"
)

// FuzzTSample hammers the telemetry-sample codec from the field side:
// build a TSAMPLE message out of arbitrary kind/name/value/json
// fields, and require that ParseTSample never panics and that any
// sample it accepts round-trips stably through Message() — the
// property the reduction tree relies on when it re-encodes merged
// streams at every level.
func FuzzTSample(f *testing.F) {
	f.Add("counter", "attr.puts", "42", "")
	f.Add("gauge", "pool.size", "-1", "")
	f.Add("gaugemax", "mrnet.tree.depth", "3", "")
	f.Add("hist", "attr.put.lat", "", `{"count":2,"sum":10,"buckets":[1,1]}`)
	f.Add("hist", "x", "", `{`)
	f.Add("counter", "", "1", "")
	f.Add("counter", "n", "not-a-number", "")
	f.Add("bogus", "n", "1", "")
	f.Add("counter", "n", "9223372036854775807", "")
	f.Add("counter", "n", "-9223372036854775809", "")
	f.Fuzz(func(t *testing.T, kind, name, value, hist string) {
		m := NewMessage("TSAMPLE").Set("kind", kind).Set("name", name)
		if value != "" {
			m.Set("value", value)
		}
		if hist != "" {
			m.Set("json", hist)
		}
		ts, err := ParseTSample(m)
		if err != nil {
			return
		}
		if ts.Name == "" {
			t.Fatalf("ParseTSample accepted a nameless sample: %+v", ts)
		}
		switch ts.Kind {
		case KindCounter, KindGauge, KindGaugeMax, KindHist:
		default:
			t.Fatalf("ParseTSample accepted unknown kind %q", ts.Kind)
		}
		// Accepted samples must survive re-encode + re-parse: that is
		// what every interior tree node does to merged streams.
		m2, err := ts.Message()
		if err != nil {
			t.Fatalf("accepted sample does not re-encode: %v", err)
		}
		again, err := ParseTSample(m2)
		if err != nil {
			t.Fatalf("re-encoded sample does not re-parse: %v", err)
		}
		if !reflect.DeepEqual(again, ts) {
			t.Fatalf("unstable round trip:\n  first  %+v\n  second %+v", ts, again)
		}
	})
}
