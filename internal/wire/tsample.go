package wire

import (
	"encoding/json"
	"fmt"
	"strconv"

	"tdp/internal/telemetry"
)

// This file defines the TSAMPLE message: one telemetry-metric update
// on a monitoring stream. Daemons publish their (daemon-local)
// registry as TSAMPLE streams toward the tool front-end; mrnet
// reduction nodes apply a per-kind aggregation filter in the tree —
// counters sum, gauges take last or max, histograms merge — so the
// front-end's socket loop sees one message per stream per flush
// instead of one per daemon. The codec lives in package wire (not
// mrnet) because both ends of the paradyn protocol speak it and
// paradyn cannot import mrnet without a cycle.
//
// Shape on the wire:
//
//	TSAMPLE kind=counter|gauge|gaugemax|hist name=<metric>
//	        value=<int64>            (counter/gauge/gaugemax)
//	        json=<HistogramSnapshot> (hist)
//
// Values are cumulative latest-value semantics, like SAMPLE: a
// publisher re-sends the current value, never a delta, so repeated or
// replayed samples cannot double-count and a reconnect resynchronizes
// by re-publishing everything.

// Telemetry stream kinds: the aggregation filter a reduction node
// applies across children for this stream.
const (
	KindCounter  = "counter"  // sum of children's latest values
	KindGauge    = "gauge"    // most recently updated child's value
	KindGaugeMax = "gaugemax" // maximum across children's latest values
	KindHist     = "hist"     // bucket-wise histogram merge
)

// TelemetrySample is the decoded form of one TSAMPLE message.
type TelemetrySample struct {
	Kind  string
	Name  string
	Value int64                       // counter/gauge/gaugemax kinds
	Hist  telemetry.HistogramSnapshot // hist kind
}

// Message encodes the sample as a TSAMPLE wire message.
func (ts TelemetrySample) Message() (*Message, error) {
	m := NewMessage("TSAMPLE").Set("kind", ts.Kind).Set("name", ts.Name)
	if ts.Kind == KindHist {
		data, err := json.Marshal(ts.Hist)
		if err != nil {
			return nil, fmt.Errorf("wire: encode tsample %q: %w", ts.Name, err)
		}
		m.Set("json", string(data))
		return m, nil
	}
	m.Set("value", strconv.FormatInt(ts.Value, 10))
	return m, nil
}

// ParseTSample decodes a TSAMPLE message.
func ParseTSample(m *Message) (TelemetrySample, error) {
	ts := TelemetrySample{Kind: m.Get("kind"), Name: m.Get("name")}
	if ts.Name == "" {
		return ts, fmt.Errorf("wire: tsample without name")
	}
	switch ts.Kind {
	case KindCounter, KindGauge, KindGaugeMax:
		v, err := strconv.ParseInt(m.Get("value"), 10, 64)
		if err != nil {
			return ts, fmt.Errorf("wire: tsample %q: bad value %q", ts.Name, m.Get("value"))
		}
		ts.Value = v
	case KindHist:
		if err := json.Unmarshal([]byte(m.Get("json")), &ts.Hist); err != nil {
			return ts, fmt.Errorf("wire: tsample %q: bad histogram: %w", ts.Name, err)
		}
	default:
		return ts, fmt.Errorf("wire: tsample %q: unknown kind %q", ts.Name, ts.Kind)
	}
	return ts, nil
}

// AppendSnapshotSamples converts a registry snapshot (typically a
// SnapshotDiff since the last publication) into TSAMPLE samples,
// appended to dst. Counters become counter streams, gauges gaugemax
// streams (the pool rollup keeps the high-water mark), histograms
// hist streams. This is the publisher half every daemon shares;
// reduction nodes and the front-end hold the consumer half.
func AppendSnapshotSamples(dst []TelemetrySample, snap telemetry.Snapshot) []TelemetrySample {
	for name, v := range snap.Counters {
		dst = append(dst, TelemetrySample{Kind: KindCounter, Name: name, Value: v})
	}
	for name, v := range snap.Gauges {
		dst = append(dst, TelemetrySample{Kind: KindGaugeMax, Name: name, Value: v})
	}
	for name, h := range snap.Histograms {
		dst = append(dst, TelemetrySample{Kind: KindHist, Name: name, Hist: h})
	}
	return dst
}
