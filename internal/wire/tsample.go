package wire

import (
	"encoding/json"
	"fmt"
	"strconv"

	"tdp/internal/telemetry"
)

// This file defines the TSAMPLE message: one telemetry-metric update
// on a monitoring stream. Daemons publish their (daemon-local)
// registry as TSAMPLE streams toward the tool front-end; mrnet
// reduction nodes apply a per-kind aggregation filter in the tree —
// counters sum, gauges take last or max, histograms merge — so the
// front-end's socket loop sees one message per stream per flush
// instead of one per daemon. The codec lives in package wire (not
// mrnet) because both ends of the paradyn protocol speak it and
// paradyn cannot import mrnet without a cycle.
//
// Shape on the wire:
//
//	TSAMPLE kind=counter|gauge|gaugemax|hist name=<metric>
//	        value=<int64>            (counter/gauge/gaugemax)
//	        json=<HistogramSnapshot> (hist)
//
// Values are cumulative latest-value semantics, like SAMPLE: a
// publisher re-sends the current value, never a delta, so repeated or
// replayed samples cannot double-count and a reconnect resynchronizes
// by re-publishing everything.

// Telemetry stream kinds: the aggregation filter a reduction node
// applies across children for this stream.
const (
	KindCounter  = "counter"  // sum of children's latest values
	KindGauge    = "gauge"    // most recently updated child's value
	KindGaugeMax = "gaugemax" // maximum across children's latest values
	KindHist     = "hist"     // bucket-wise histogram merge
)

// TelemetrySample is the decoded form of one TSAMPLE message.
type TelemetrySample struct {
	Kind  string
	Name  string
	Value int64                       // counter/gauge/gaugemax kinds
	Hist  telemetry.HistogramSnapshot // hist kind
}

// Message encodes the sample as a TSAMPLE wire message.
func (ts TelemetrySample) Message() (*Message, error) {
	m := NewMessage("TSAMPLE").Set("kind", ts.Kind).Set("name", ts.Name)
	if ts.Kind == KindHist {
		data, err := json.Marshal(ts.Hist)
		if err != nil {
			return nil, fmt.Errorf("wire: encode tsample %q: %w", ts.Name, err)
		}
		m.Set("json", string(data))
		return m, nil
	}
	m.Set("value", strconv.FormatInt(ts.Value, 10))
	return m, nil
}

// ParseTSample decodes a TSAMPLE message.
func ParseTSample(m *Message) (TelemetrySample, error) {
	ts := TelemetrySample{Kind: m.Get("kind"), Name: m.Get("name")}
	if ts.Name == "" {
		return ts, fmt.Errorf("wire: tsample without name")
	}
	switch ts.Kind {
	case KindCounter, KindGauge, KindGaugeMax:
		v, err := strconv.ParseInt(m.Get("value"), 10, 64)
		if err != nil {
			return ts, fmt.Errorf("wire: tsample %q: bad value %q", ts.Name, m.Get("value"))
		}
		ts.Value = v
	case KindHist:
		if err := json.Unmarshal([]byte(m.Get("json")), &ts.Hist); err != nil {
			return ts, fmt.Errorf("wire: tsample %q: bad histogram: %w", ts.Name, err)
		}
	default:
		return ts, fmt.Errorf("wire: tsample %q: unknown kind %q", ts.Name, ts.Kind)
	}
	return ts, nil
}

// BatchProfileSample is one profile-function entry (the SAMPLE verb's
// payload) inside a TBATCH frame.
type BatchProfileSample struct {
	Fn     string
	Calls  int64
	TimeUS int64
}

// EncodeTBatch packs one uplink drain cycle — every dirty profile
// function plus every dirty telemetry stream — into a single TBATCH
// frame (the CapTBatch capability). Without it a reduction node sends
// one frame per dirty stream per cycle, and with self-published
// registry diffs keeping several streams perpetually dirty that means
// ~6 small frames per child per millisecond at the tree's upper
// levels; batching collapses the cycle to one frame and one syscall.
//
// Layout: n=<count>, then per item i an o<i> kind code ("f" profile,
// "c" counter, "g" gauge, "m" gaugemax, "h" hist), k<i> the fn/metric
// name, v<i> the calls/value (hist: the HistogramSnapshot JSON), and
// for profile items s<i> the cumulative time_us. The o/k/v/s keys are
// interned vocabulary up to index 31, so the common small cycle costs
// one byte per key on the wire.
func EncodeTBatch(profs []BatchProfileSample, tels []TelemetrySample) (*Message, error) {
	m := NewMessage("TBATCH").SetInt("n", len(profs)+len(tels))
	i := 0
	for _, p := range profs {
		idx := strconv.Itoa(i)
		m.Set("o"+idx, "f")
		m.Set("k"+idx, p.Fn)
		m.Set("v"+idx, strconv.FormatInt(p.Calls, 10))
		m.Set("s"+idx, strconv.FormatInt(p.TimeUS, 10))
		i++
	}
	for _, ts := range tels {
		idx := strconv.Itoa(i)
		switch ts.Kind {
		case KindCounter:
			m.Set("o"+idx, "c")
		case KindGauge:
			m.Set("o"+idx, "g")
		case KindGaugeMax:
			m.Set("o"+idx, "m")
		case KindHist:
			m.Set("o"+idx, "h")
		default:
			return nil, fmt.Errorf("wire: tbatch: unknown kind %q", ts.Kind)
		}
		m.Set("k"+idx, ts.Name)
		if ts.Kind == KindHist {
			data, err := json.Marshal(ts.Hist)
			if err != nil {
				return nil, fmt.Errorf("wire: tbatch %q: %w", ts.Name, err)
			}
			m.Set("v"+idx, string(data))
		} else {
			m.Set("v"+idx, strconv.FormatInt(ts.Value, 10))
		}
		i++
	}
	return m, nil
}

// ParseTBatch decodes a TBATCH frame back into its profile and
// telemetry samples.
func ParseTBatch(m *Message) ([]BatchProfileSample, []TelemetrySample, error) {
	n, err := strconv.Atoi(m.Get("n"))
	if err != nil || n < 0 || n > len(m.Fields) {
		return nil, nil, fmt.Errorf("wire: tbatch: bad n %q", m.Get("n"))
	}
	var profs []BatchProfileSample
	var tels []TelemetrySample
	for i := 0; i < n; i++ {
		idx := strconv.Itoa(i)
		name := m.Get("k" + idx)
		switch code := m.Get("o" + idx); code {
		case "f":
			calls, _ := strconv.ParseInt(m.Get("v"+idx), 10, 64)
			us, _ := strconv.ParseInt(m.Get("s"+idx), 10, 64)
			profs = append(profs, BatchProfileSample{Fn: name, Calls: calls, TimeUS: us})
		case "c", "g", "m":
			v, perr := strconv.ParseInt(m.Get("v"+idx), 10, 64)
			if perr != nil {
				return nil, nil, fmt.Errorf("wire: tbatch %q: bad value %q", name, m.Get("v"+idx))
			}
			kind := KindCounter
			if code == "g" {
				kind = KindGauge
			} else if code == "m" {
				kind = KindGaugeMax
			}
			tels = append(tels, TelemetrySample{Kind: kind, Name: name, Value: v})
		case "h":
			ts := TelemetrySample{Kind: KindHist, Name: name}
			if jerr := json.Unmarshal([]byte(m.Get("v"+idx)), &ts.Hist); jerr != nil {
				return nil, nil, fmt.Errorf("wire: tbatch %q: bad histogram: %w", name, jerr)
			}
			tels = append(tels, ts)
		default:
			return nil, nil, fmt.Errorf("wire: tbatch item %d: unknown code %q", i, code)
		}
	}
	return profs, tels, nil
}

// AppendSnapshotSamples converts a registry snapshot (typically a
// SnapshotDiff since the last publication) into TSAMPLE samples,
// appended to dst. Counters become counter streams, gauges gaugemax
// streams (the pool rollup keeps the high-water mark), histograms
// hist streams. This is the publisher half every daemon shares;
// reduction nodes and the front-end hold the consumer half.
func AppendSnapshotSamples(dst []TelemetrySample, snap telemetry.Snapshot) []TelemetrySample {
	for name, v := range snap.Counters {
		dst = append(dst, TelemetrySample{Kind: KindCounter, Name: name, Value: v})
	}
	for name, v := range snap.Gauges {
		dst = append(dst, TelemetrySample{Kind: KindGaugeMax, Name: name, Value: v})
	}
	for name, h := range snap.Histograms {
		dst = append(dst, TelemetrySample{Kind: KindHist, Name: name, Hist: h})
	}
	return dst
}
