package wire

import (
	"testing"

	"tdp/internal/telemetry"
)

func TestTSampleRoundTrip(t *testing.T) {
	for _, ts := range []TelemetrySample{
		{Kind: KindCounter, Name: "ops", Value: 42},
		{Kind: KindGauge, Name: "depth", Value: -3},
		{Kind: KindGaugeMax, Name: "high", Value: 99},
	} {
		m, err := ts.Message()
		if err != nil {
			t.Fatalf("%s: %v", ts.Name, err)
		}
		if m.Verb != "TSAMPLE" {
			t.Fatalf("verb = %q", m.Verb)
		}
		got, err := ParseTSample(m)
		if err != nil {
			t.Fatalf("%s: parse: %v", ts.Name, err)
		}
		if got.Kind != ts.Kind || got.Name != ts.Name || got.Value != ts.Value {
			t.Errorf("round trip = %+v, want %+v", got, ts)
		}
	}
}

func TestTSampleHistRoundTrip(t *testing.T) {
	h := telemetry.NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	ts := TelemetrySample{Kind: KindHist, Name: "lat", Hist: h.Snapshot()}
	m, err := ts.Message()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseTSample(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hist.Count != 2 || got.Hist.Counts[0] != 1 || got.Hist.Counts[1] != 1 {
		t.Errorf("hist = %+v", got.Hist)
	}
	if !telemetry.EqualBounds(got.Hist.Bounds, h.Bounds()) {
		t.Errorf("bounds = %v", got.Hist.Bounds)
	}
}

func TestTSampleParseErrors(t *testing.T) {
	cases := []*Message{
		NewMessage("TSAMPLE").Set("kind", KindCounter),                                 // no name
		NewMessage("TSAMPLE").Set("kind", KindCounter).Set("name", "x"),                // no value
		NewMessage("TSAMPLE").Set("kind", "bogus").Set("name", "x").Set("value", "1"),  // bad kind
		NewMessage("TSAMPLE").Set("kind", KindHist).Set("name", "x").Set("json", "{]"), // bad json
	}
	for i, m := range cases {
		if _, err := ParseTSample(m); err == nil {
			t.Errorf("case %d: no error for %s", i, m)
		}
	}
}

func TestAppendSnapshotSamples(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("ops").Add(7)
	r.Gauge("depth").Set(3)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	out := AppendSnapshotSamples(nil, r.Snapshot())
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
	kinds := map[string]string{}
	for _, ts := range out {
		kinds[ts.Name] = ts.Kind
		if ts.Name == "ops" && ts.Value != 7 {
			t.Errorf("ops value = %d", ts.Value)
		}
	}
	if kinds["ops"] != KindCounter || kinds["depth"] != KindGaugeMax || kinds["lat"] != KindHist {
		t.Errorf("kinds = %v", kinds)
	}
}
