package classad

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokInt
	tokReal
	tokString
	tokIdent // identifiers, including TRUE/FALSE/UNDEFINED/ERROR keywords
	tokOp    // operators and punctuation
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes a ClassAd expression.
type lexer struct {
	src string
	pos int
}

// operators, longest first so multi-char ops win.
var operators = []string{
	"&&", "||", "==", "!=", "<=", ">=", "=?=", "=!=",
	"<", ">", "+", "-", "*", "/", "%", "!", "(", ")", ",", ".",
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	// String literal.
	if c == '"' {
		var sb strings.Builder
		l.pos++
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					sb.WriteByte(l.src[l.pos])
				}
				l.pos++
				continue
			}
			if ch == '"' {
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{}, fmt.Errorf("classad: unterminated string at %d", start)
	}

	// Number.
	if isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])) {
		isReal := false
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			if l.src[l.pos] == '.' {
				if isReal {
					break // second dot ends the number
				}
				// Distinguish "1.5" from "my.attr" handled elsewhere;
				// a dot directly after digits starts a fraction only
				// when followed by a digit.
				if l.pos+1 >= len(l.src) || !isDigit(l.src[l.pos+1]) {
					break
				}
				isReal = true
			}
			l.pos++
		}
		// Exponent.
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			save := l.pos
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				isReal = true
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			} else {
				l.pos = save
			}
		}
		kind := tokInt
		if isReal {
			kind = tokReal
		}
		return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil
	}

	// Identifier.
	if isIdentStart(c) {
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	}

	// Operator.
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.pos += len(op)
			return token{kind: tokOp, text: op, pos: start}, nil
		}
	}
	return token{}, fmt.Errorf("classad: unexpected character %q at %d", c, l.pos)
}

func isSpace(c byte) bool      { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool      { return '0' <= c && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
