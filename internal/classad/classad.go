package classad

import (
	"fmt"
	"sort"
	"strings"
)

// Ad is a ClassAd: an ordered set of attribute = expression bindings.
// Attribute names are case-insensitive, per ClassAd convention.
type Ad struct {
	attrs map[string]Expr // lower-cased name -> expression
	names map[string]string
}

// NewAd returns an empty ad.
func NewAd() *Ad {
	return &Ad{attrs: make(map[string]Expr), names: make(map[string]string)}
}

// Set binds an attribute to a parsed expression.
func (a *Ad) Set(name string, e Expr) {
	key := strings.ToLower(name)
	a.attrs[key] = e
	a.names[key] = name
}

// SetExpr parses src and binds it to name.
func (a *Ad) SetExpr(name, src string) error {
	e, err := Parse(src)
	if err != nil {
		return fmt.Errorf("classad: attribute %s: %w", name, err)
	}
	a.Set(name, e)
	return nil
}

// SetString binds a string literal.
func (a *Ad) SetString(name, s string) { a.Set(name, &litExpr{v: Str(s)}) }

// SetInt binds an integer literal.
func (a *Ad) SetInt(name string, i int64) { a.Set(name, &litExpr{v: Int(i)}) }

// SetBool binds a boolean literal.
func (a *Ad) SetBool(name string, b bool) { a.Set(name, &litExpr{v: Bool(b)}) }

// expr returns the raw expression bound to name.
func (a *Ad) expr(name string) (Expr, bool) {
	e, ok := a.attrs[strings.ToLower(name)]
	return e, ok
}

// Has reports whether the attribute is bound.
func (a *Ad) Has(name string) bool {
	_, ok := a.attrs[strings.ToLower(name)]
	return ok
}

// Names returns the bound attribute names (original case), sorted.
func (a *Ad) Names() []string {
	out := make([]string, 0, len(a.names))
	for _, n := range a.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Eval evaluates the named attribute with this ad as MY and target
// (which may be nil) as TARGET. Missing attributes are Undefined.
func (a *Ad) Eval(name string, target *Ad) Value {
	e, ok := a.expr(name)
	if !ok {
		return Undefined
	}
	return e.Eval(&Env{My: a, Target: target})
}

// EvalString returns the attribute as a string value, or "" when it is
// not a string.
func (a *Ad) EvalString(name string, target *Ad) string {
	v := a.Eval(name, target)
	if v.Kind == KindString {
		return v.S
	}
	return ""
}

// EvalInt returns the attribute as an int64 with a default.
func (a *Ad) EvalInt(name string, target *Ad, def int64) int64 {
	v := a.Eval(name, target)
	switch v.Kind {
	case KindInt:
		return v.I
	case KindReal:
		return int64(v.R)
	default:
		return def
	}
}

// EvalBool returns the attribute as a bool; undefined/error/non-bool
// yield false.
func (a *Ad) EvalBool(name string, target *Ad) bool {
	return a.Eval(name, target).IsTrue()
}

// String renders the ad as "[ a = expr; b = expr; ]", sorted by name.
func (a *Ad) String() string {
	names := a.Names()
	parts := make([]string, len(names))
	for i, n := range names {
		e, _ := a.expr(n)
		parts[i] = fmt.Sprintf("%s = %s", n, e.String())
	}
	return "[ " + strings.Join(parts, "; ") + " ]"
}

// Clone returns a shallow copy (expressions are immutable).
func (a *Ad) Clone() *Ad {
	out := NewAd()
	for k, e := range a.attrs {
		out.attrs[k] = e
		out.names[k] = a.names[k]
	}
	return out
}

// Matches reports whether both ads' Requirements evaluate to true
// against each other — Condor's symmetric matchmaking test. An ad
// without a Requirements attribute imposes no constraint.
func Matches(a, b *Ad) bool {
	return halfMatch(a, b) && halfMatch(b, a)
}

func halfMatch(my, target *Ad) bool {
	e, ok := my.expr("requirements")
	if !ok {
		return true
	}
	return e.Eval(&Env{My: my, Target: target}).IsTrue()
}

// Rank evaluates my's Rank expression against target, yielding 0.0
// when absent or non-numeric. Higher is better.
func Rank(my, target *Ad) float64 {
	e, ok := my.expr("rank")
	if !ok {
		return 0
	}
	v := e.Eval(&Env{My: my, Target: target})
	n, numOK := v.Number()
	if !numOK {
		return 0
	}
	return n
}

// MatchBest returns the index of the best-ranked ad in offers that
// mutually matches request (request's Rank breaks ties by order), or
// -1 when none match. This is the matchmaker's core decision.
func MatchBest(request *Ad, offers []*Ad) int {
	best := -1
	bestRank := 0.0
	for i, offer := range offers {
		if offer == nil || !Matches(request, offer) {
			continue
		}
		r := Rank(request, offer)
		if best == -1 || r > bestRank {
			best, bestRank = i, r
		}
	}
	return best
}
