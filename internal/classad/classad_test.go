package classad

import (
	"testing"
	"testing/quick"
)

func evalSrc(t *testing.T, src string, env *Env) Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e.Eval(env)
}

func TestLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"+7", Int(7)},
		{"3.5", Real(3.5)},
		{"1e3", Real(1000)},
		{"2.5e-1", Real(0.25)},
		{`"hello"`, Str("hello")},
		{`"a\"b\n"`, Str("a\"b\n")},
		{"TRUE", True},
		{"false", False},
		{"UNDEFINED", Undefined},
		{"ERROR", ErrorVal},
	}
	for _, c := range cases {
		if got := evalSrc(t, c.src, nil); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"1 + 2 * 3", Int(7)},
		{"(1 + 2) * 3", Int(9)},
		{"10 / 4", Int(2)},
		{"10 % 3", Int(1)},
		{"10.0 / 4", Real(2.5)},
		{"1 + 2.5", Real(3.5)},
		{"2 * 3 - 4 / 2", Int(4)},
		{"1 / 0", ErrorVal},
		{"1 % 0", ErrorVal},
		{"1.5 % 2", ErrorVal},
		{`"foo" + "bar"`, Str("foobar")},
		{`"foo" * 2`, ErrorVal},
		{"-(3 + 4)", Int(-7)},
		{"-2.5", Real(-2.5)},
	}
	for _, c := range cases {
		if got := evalSrc(t, c.src, nil); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestComparison(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"1 < 2", True},
		{"2 <= 2", True},
		{"3 > 4", False},
		{"3 >= 3", True},
		{"1 == 1.0", True},
		{"1 != 2", True},
		{`"Linux" == "LINUX"`, True}, // case-insensitive ==
		{`"abc" < "ABD"`, True},      // case-insensitive ordering
		{`"a" < 1`, ErrorVal},
		{"TRUE == TRUE", True},
		{"TRUE == FALSE", False},
		{`1 == "1"`, False},
	}
	for _, c := range cases {
		if got := evalSrc(t, c.src, nil); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBooleanNonStrict(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"TRUE && TRUE", True},
		{"TRUE && FALSE", False},
		{"FALSE && UNDEFINED", False}, // short-circuit
		{"UNDEFINED && FALSE", False}, // non-strict
		{"UNDEFINED && TRUE", Undefined},
		{"TRUE || UNDEFINED", True},
		{"UNDEFINED || TRUE", True},
		{"UNDEFINED || FALSE", Undefined},
		{"FALSE || FALSE", False},
		{"!TRUE", False},
		{"!UNDEFINED", Undefined},
		{"!1", ErrorVal},
	}
	for _, c := range cases {
		if got := evalSrc(t, c.src, nil); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestUndefinedPropagation(t *testing.T) {
	cases := []string{"Missing + 1", "Missing == 1", "Missing < 1", "-Missing"}
	my := NewAd()
	for _, src := range cases {
		if got := evalSrc(t, src, &Env{My: my}); got != Undefined {
			t.Errorf("%q = %v, want UNDEFINED", src, got)
		}
	}
}

func TestIsIdenticalOperators(t *testing.T) {
	my := NewAd()
	cases := []struct {
		src  string
		want Value
	}{
		{"Missing =?= UNDEFINED", True},
		{"Missing =!= UNDEFINED", False},
		{"1 =?= 1", True},
		{"1 =?= 1.0", True},
		{`"a" =?= "A"`, False}, // identity is case-sensitive
		{"1 =?= UNDEFINED", False},
	}
	for _, c := range cases {
		if got := evalSrc(t, c.src, &Env{My: my}); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"isUndefined(Missing)", True},
		{"isUndefined(1)", False},
		{"isError(1/0)", True},
		{`strcat("a", "b", 3)`, Str("ab3")},
		{"floor(2.7)", Int(2)},
		{"floor(-2.1)", Int(-3)},
		{"floor(5)", Int(5)},
		{"min(3, 1, 2)", Int(1)},
		{"max(3, 1, 2.5)", Real(3)},
		{"min()", ErrorVal},
	}
	my := NewAd()
	for _, c := range cases {
		if got := evalSrc(t, c.src, &Env{My: my}); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", `"unterminated`, "nosuchfn(1)", "1 2", "my.", "&& 1", "@",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestAttributeReferences(t *testing.T) {
	machine := NewAd()
	machine.SetInt("Memory", 128)
	machine.SetString("Arch", "INTEL")
	machine.SetString("OpSys", "LINUX")

	job := NewAd()
	job.SetInt("ImageSize", 64)
	if err := job.SetExpr("Requirements", `Arch == "INTEL" && OpSys == "LINUX" && Memory >= ImageSize`); err != nil {
		t.Fatalf("SetExpr: %v", err)
	}
	// Unscoped Arch/OpSys/Memory resolve through the target; ImageSize
	// resolves locally.
	if got := job.Eval("Requirements", machine); got != True {
		t.Errorf("Requirements = %v, want TRUE", got)
	}
	// Explicit scopes.
	job2 := NewAd()
	job2.SetInt("Memory", 1)
	job2.SetExpr("Requirements", "TARGET.Memory > MY.Memory")
	if got := job2.Eval("Requirements", machine); got != True {
		t.Errorf("scoped Requirements = %v", got)
	}
}

func TestChainedAttributeEvaluation(t *testing.T) {
	ad := NewAd()
	ad.SetInt("Base", 10)
	ad.SetExpr("Derived", "Base * 2")
	ad.SetExpr("Doubly", "Derived + 1")
	if got := ad.Eval("Doubly", nil); got != Int(21) {
		t.Errorf("Doubly = %v", got)
	}
}

func TestSelfReferenceTerminates(t *testing.T) {
	ad := NewAd()
	ad.SetExpr("Loop", "Loop + 1")
	if got := ad.Eval("Loop", nil); got != ErrorVal {
		t.Errorf("self-referential attr = %v, want ERROR", got)
	}
}

func TestMatches(t *testing.T) {
	machine := NewAd()
	machine.SetInt("Memory", 128)
	machine.SetString("Arch", "INTEL")
	machine.SetString("OpSys", "LINUX")
	machine.SetExpr("Requirements", "TARGET.ImageSize <= MY.Memory")

	job := NewAd()
	job.SetInt("ImageSize", 64)
	job.SetExpr("Requirements", `Arch == "INTEL" && OpSys == "LINUX"`)

	if !Matches(job, machine) {
		t.Error("compatible job/machine did not match")
	}

	bigJob := NewAd()
	bigJob.SetInt("ImageSize", 256)
	bigJob.SetExpr("Requirements", `Arch == "INTEL"`)
	if Matches(bigJob, machine) {
		t.Error("oversized job matched (machine requirements ignored)")
	}

	wrongArch := NewAd()
	wrongArch.SetInt("ImageSize", 1)
	wrongArch.SetExpr("Requirements", `Arch == "SPARC"`)
	if Matches(wrongArch, machine) {
		t.Error("wrong-arch job matched")
	}

	// Absent Requirements imposes no constraint.
	freeJob := NewAd()
	freeJob.SetInt("ImageSize", 1)
	if !Matches(freeJob, machine) {
		t.Error("unconstrained job did not match")
	}
}

func TestMatchUndefinedRequirementIsNoMatch(t *testing.T) {
	machine := NewAd() // no Memory attribute
	job := NewAd()
	job.SetExpr("Requirements", "Memory >= 64")
	if Matches(job, machine) {
		t.Error("undefined requirement treated as match")
	}
}

func TestRankAndMatchBest(t *testing.T) {
	job := NewAd()
	job.SetExpr("Requirements", "Memory >= 32")
	job.SetExpr("Rank", "Memory")

	mk := func(mem int64) *Ad {
		m := NewAd()
		m.SetInt("Memory", mem)
		return m
	}
	offers := []*Ad{mk(16), mk(64), mk(256), mk(128), nil}
	best := MatchBest(job, offers)
	if best != 2 {
		t.Errorf("MatchBest = %d, want 2 (Memory=256)", best)
	}
	if r := Rank(job, offers[2]); r != 256 {
		t.Errorf("Rank = %v", r)
	}
	if r := Rank(NewAd(), offers[2]); r != 0 {
		t.Errorf("absent Rank = %v", r)
	}
	noFit := NewAd()
	noFit.SetExpr("Requirements", "Memory >= 1024")
	if got := MatchBest(noFit, offers); got != -1 {
		t.Errorf("MatchBest with no fit = %d", got)
	}
}

func TestAdAccessors(t *testing.T) {
	ad := NewAd()
	ad.SetString("Name", "node1")
	ad.SetInt("Cpus", 4)
	ad.SetBool("HasTDP", true)
	if !ad.Has("name") || !ad.Has("NAME") {
		t.Error("Has is case-sensitive")
	}
	if ad.Has("ghost") {
		t.Error("Has(ghost)")
	}
	if got := ad.EvalString("Name", nil); got != "node1" {
		t.Errorf("EvalString = %q", got)
	}
	if got := ad.EvalInt("Cpus", nil, -1); got != 4 {
		t.Errorf("EvalInt = %d", got)
	}
	if got := ad.EvalInt("ghost", nil, -1); got != -1 {
		t.Errorf("EvalInt default = %d", got)
	}
	if !ad.EvalBool("HasTDP", nil) || ad.EvalBool("ghost", nil) {
		t.Error("EvalBool wrong")
	}
	names := ad.Names()
	if len(names) != 3 || names[0] != "Cpus" {
		t.Errorf("Names = %v", names)
	}
}

func TestAdCloneIndependent(t *testing.T) {
	a := NewAd()
	a.SetInt("X", 1)
	b := a.Clone()
	b.SetInt("X", 2)
	if a.EvalInt("X", nil, 0) != 1 || b.EvalInt("X", nil, 0) != 2 {
		t.Error("Clone aliases source")
	}
}

func TestAdString(t *testing.T) {
	ad := NewAd()
	ad.SetInt("B", 2)
	ad.SetString("A", "x")
	got := ad.String()
	want := `[ A = "x"; B = 2 ]`
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// Rendering an expression and reparsing must preserve its value.
	srcs := []string{
		"1 + 2 * 3",
		`Arch == "INTEL" && Memory >= 64`,
		"!(A || B) && C < 2.5",
		`strcat("a", "b")`,
		"TARGET.Memory > MY.Memory",
		"Missing =?= UNDEFINED",
	}
	my := NewAd()
	my.SetInt("Memory", 32)
	tgt := NewAd()
	tgt.SetInt("Memory", 64)
	tgt.SetString("Arch", "INTEL")
	env := &Env{My: my, Target: tgt}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", src, e1.String(), err)
		}
		if v1, v2 := e1.Eval(env), e2.Eval(env); v1 != v2 {
			t.Errorf("%q: %v != reparsed %v", src, v1, v2)
		}
	}
}

func TestQuickIntArithmeticMatchesGo(t *testing.T) {
	f := func(a, b int16) bool {
		ad := NewAd()
		ad.SetInt("A", int64(a))
		ad.SetInt("B", int64(b))
		e := MustParse("A + B * 2 - (A - B)")
		want := int64(a) + int64(b)*2 - (int64(a) - int64(b))
		return e.Eval(&Env{My: ad}) == Int(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickComparisonTotality(t *testing.T) {
	// For any two ints, exactly one of <, ==, > holds.
	f := func(a, b int32) bool {
		ad := NewAd()
		ad.SetInt("A", int64(a))
		ad.SetInt("B", int64(b))
		env := &Env{My: ad}
		lt := MustParse("A < B").Eval(env).IsTrue()
		eq := MustParse("A == B").Eval(env).IsTrue()
		gt := MustParse("A > B").Eval(env).IsTrue()
		count := 0
		for _, x := range []bool{lt, eq, gt} {
			if x {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValueStringsAndKind(t *testing.T) {
	if Int(5).String() != "5" || Real(2.5).String() != "2.5" ||
		Str("x").String() != `"x"` || True.String() != "TRUE" ||
		False.String() != "FALSE" || Undefined.String() != "UNDEFINED" ||
		ErrorVal.String() != "ERROR" {
		t.Error("Value.String wrong")
	}
	if KindInt.String() != "integer" || KindString.String() != "string" ||
		Kind(99).String() != "kind(99)" {
		t.Error("Kind.String wrong")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("1 +")
}
