// Package classad implements a miniature ClassAd language — the
// classified-advertisement mechanism Condor uses to describe jobs and
// machines and to match them (paper §4.1: "the matchmaking algorithm
// is responsible for locating compatible resource requests with
// offers").
//
// A ClassAd is a set of attribute = expression bindings. Expressions
// support integer, real, string and boolean literals, attribute
// references (including MY.attr and TARGET.attr scopes), arithmetic,
// comparison and boolean operators with C-like precedence, and a few
// builtin functions. Evaluation is three-valued: references to missing
// attributes yield Undefined, which propagates like ClassAd semantics
// require (strict for arithmetic/comparison, non-strict for && and ||).
//
// Two ads match when each one's Requirements expression evaluates to
// true with MY bound to itself and TARGET bound to the other. Rank
// orders the compatible offers.
package classad

import (
	"fmt"
	"strconv"
)

// Kind enumerates runtime value types.
type Kind int

const (
	// KindUndefined is the ClassAd undefined value (missing attribute).
	KindUndefined Kind = iota
	// KindError is the ClassAd error value (type mismatch, div by zero).
	KindError
	// KindBool is a boolean.
	KindBool
	// KindInt is a 64-bit integer.
	KindInt
	// KindReal is a float64.
	KindReal
	// KindString is a string.
	KindString
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindUndefined:
		return "undefined"
	case KindError:
		return "error"
	case KindBool:
		return "boolean"
	case KindInt:
		return "integer"
	case KindReal:
		return "real"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a ClassAd runtime value.
type Value struct {
	Kind Kind
	B    bool
	I    int64
	R    float64
	S    string
}

// Convenience constructors.
var (
	// Undefined is the undefined value.
	Undefined = Value{Kind: KindUndefined}
	// ErrorVal is the error value.
	ErrorVal = Value{Kind: KindError}
	// True and False are the boolean constants.
	True  = Value{Kind: KindBool, B: true}
	False = Value{Kind: KindBool, B: false}
)

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Real returns a real value.
func Real(r float64) Value { return Value{Kind: KindReal, R: r} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return True
	}
	return False
}

// IsTrue reports whether the value is boolean true.
func (v Value) IsTrue() bool { return v.Kind == KindBool && v.B }

// Number returns the value as float64 and whether it is numeric.
func (v Value) Number() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindReal:
		return v.R, true
	default:
		return 0, false
	}
}

// String renders the value in ClassAd syntax.
func (v Value) String() string {
	switch v.Kind {
	case KindUndefined:
		return "UNDEFINED"
	case KindError:
		return "ERROR"
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindReal:
		return strconv.FormatFloat(v.R, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	default:
		return "ERROR"
	}
}

// Equal compares two values for the == operator: numerics compare
// numerically across int/real; strings compare case-insensitively
// (ClassAd convention); booleans directly. Mismatched types yield
// false (the caller handles undefined/error propagation).
func Equal(a, b Value) bool {
	if an, ok := a.Number(); ok {
		if bn, ok2 := b.Number(); ok2 {
			return an == bn
		}
		return false
	}
	switch {
	case a.Kind == KindString && b.Kind == KindString:
		return foldEqual(a.S, b.S)
	case a.Kind == KindBool && b.Kind == KindBool:
		return a.B == b.B
	default:
		return false
	}
}

func foldEqual(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
