package classad

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed ClassAd expression.
type Expr interface {
	// Eval computes the expression's value in an environment.
	Eval(env *Env) Value
	// String renders the expression in parseable form.
	String() string
}

// Parse compiles a ClassAd expression.
func Parse(src string) (Expr, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("classad: trailing input at %s", p.cur)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for static expressions.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	lex *lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

// binding powers for binary operators (Pratt parsing).
var binPower = map[string]int{
	"||": 10,
	"&&": 20,
	"==": 30, "!=": 30, "=?=": 30, "=!=": 30,
	"<": 40, "<=": 40, ">": 40, ">=": 40,
	"+": 50, "-": 50,
	"*": 60, "/": 60, "%": 60,
}

func (p *parser) parseExpr(minPower int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokOp {
		power, ok := binPower[p.cur.text]
		if !ok || power < minPower {
			break
		}
		op := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseExpr(power + 1) // left-associative
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, lhs: left, rhs: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur.kind == tokOp {
		switch p.cur.text {
		case "!":
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &unaryExpr{op: "!", operand: e}, nil
		case "-":
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &unaryExpr{op: "-", operand: e}, nil
		case "+":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return p.parseUnary()
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.cur.kind {
	case tokInt:
		n, err := strconv.ParseInt(p.cur.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: bad integer %q", p.cur.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &litExpr{v: Int(n)}, nil
	case tokReal:
		r, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: bad real %q", p.cur.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &litExpr{v: Real(r)}, nil
	case tokString:
		v := Str(p.cur.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &litExpr{v: v}, nil
	case tokIdent:
		name := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch strings.ToUpper(name) {
		case "TRUE":
			return &litExpr{v: True}, nil
		case "FALSE":
			return &litExpr{v: False}, nil
		case "UNDEFINED":
			return &litExpr{v: Undefined}, nil
		case "ERROR":
			return &litExpr{v: ErrorVal}, nil
		}
		// Scoped reference: MY.attr / TARGET.attr / other.attr.
		if p.cur.kind == tokOp && p.cur.text == "." {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.cur.kind != tokIdent {
				return nil, fmt.Errorf("classad: expected attribute after %q., got %s", name, p.cur)
			}
			attrName := p.cur.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &refExpr{scope: name, name: attrName}, nil
		}
		// Function call.
		if p.cur.kind == tokOp && p.cur.text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			var args []Expr
			if !(p.cur.kind == tokOp && p.cur.text == ")") {
				for {
					arg, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, arg)
					if p.cur.kind == tokOp && p.cur.text == "," {
						if err := p.advance(); err != nil {
							return nil, err
						}
						continue
					}
					break
				}
			}
			if !(p.cur.kind == tokOp && p.cur.text == ")") {
				return nil, fmt.Errorf("classad: expected ) in call to %s, got %s", name, p.cur)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			fn := strings.ToLower(name)
			if _, ok := builtins[fn]; !ok {
				return nil, fmt.Errorf("classad: unknown function %q", name)
			}
			return &callExpr{fn: fn, args: args}, nil
		}
		return &refExpr{name: name}, nil
	case tokOp:
		if p.cur.text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if !(p.cur.kind == tokOp && p.cur.text == ")") {
				return nil, fmt.Errorf("classad: expected ), got %s", p.cur)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("classad: unexpected token %s", p.cur)
}
