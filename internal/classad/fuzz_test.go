package classad

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: arbitrary input must yield an expression or an
// error, never a panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEvalNeverPanics: any parseable expression must evaluate (to a
// value, possibly ERROR/UNDEFINED) against arbitrary ads.
func TestEvalNeverPanics(t *testing.T) {
	srcs := []string{
		"A + B", "A && B || !C", "A == TARGET.A", "MY.X < TARGET.Y",
		"strcat(A, B)", "min(A, B, C)", "A / B", "A % B",
		"A =?= UNDEFINED", "-A * (B + C)", "isError(A / B)",
	}
	f := func(a, b int32, s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		my := NewAd()
		my.SetInt("A", int64(a))
		my.SetString("B", s)
		tgt := NewAd()
		tgt.SetInt("A", int64(b))
		tgt.SetInt("Y", int64(b))
		env := &Env{My: my, Target: tgt}
		for _, src := range srcs {
			MustParse(src).Eval(env)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMatchesSymmetryOfEmptyAds: ads without Requirements always
// mutually match, in either order.
func TestMatchesSymmetryOfEmptyAds(t *testing.T) {
	f := func(n int16) bool {
		a := NewAd()
		a.SetInt("X", int64(n))
		b := NewAd()
		return Matches(a, b) && Matches(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// FuzzParse is the native fuzz target wired into the CI smoke run
// (`make fuzz`): Parse must never panic, and any expression it accepts
// must evaluate (possibly to ERROR/UNDEFINED) without panicking.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"A + B", "A && B || !C", "A == TARGET.A", "MY.X < TARGET.Y",
		"strcat(A, \"s\")", "min(A, B, C)", "A =?= UNDEFINED",
		"(1 + 2) * 3 % 4", "\"str\" == \"str\"", "isError(A / 0)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := Parse(src)
		if err != nil {
			return
		}
		my := NewAd()
		my.SetInt("A", 7)
		my.SetString("B", "x")
		tgt := NewAd()
		tgt.SetInt("A", 9)
		tgt.SetInt("Y", 3)
		expr.Eval(&Env{My: my, Target: tgt})
	})
}
