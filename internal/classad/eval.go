package classad

import (
	"fmt"
	"strings"
)

// Env is the evaluation environment: the ad owning the expression (My)
// and, during matchmaking, the candidate ad (Target). Either may be nil.
type Env struct {
	My     *Ad
	Target *Ad
	depth  int // recursion guard for self-referential ads
}

const maxEvalDepth = 64

// litExpr is a literal value.
type litExpr struct{ v Value }

func (e *litExpr) Eval(*Env) Value { return e.v }
func (e *litExpr) String() string  { return e.v.String() }

// refExpr is an attribute reference, optionally scoped.
type refExpr struct {
	scope string // "", "MY", "TARGET" (case-insensitive)
	name  string
}

func (e *refExpr) Eval(env *Env) Value {
	if env == nil {
		return Undefined
	}
	if env.depth >= maxEvalDepth {
		return ErrorVal
	}
	lookup := func(ad *Ad, flip bool) Value {
		if ad == nil {
			return Undefined
		}
		sub, ok := ad.expr(e.name)
		if !ok {
			return Undefined
		}
		inner := &Env{My: ad, Target: env.Target, depth: env.depth + 1}
		if flip {
			// Evaluating inside the target: its MY is itself, and its
			// TARGET is our MY (the symmetric matchmaking view).
			inner.My, inner.Target = ad, env.My
		}
		return sub.Eval(inner)
	}
	switch strings.ToUpper(e.scope) {
	case "MY", "":
		if v := lookup(env.My, false); v.Kind != KindUndefined || e.scope != "" {
			return v
		}
		// Unscoped references fall through to the target when absent
		// locally — the ClassAd convention that makes expressions like
		// "Memory >= 64" work in a job ad that means the machine's Memory.
		return lookup(env.Target, true)
	case "TARGET", "OTHER":
		return lookup(env.Target, true)
	default:
		return Undefined
	}
}

func (e *refExpr) String() string {
	if e.scope != "" {
		return e.scope + "." + e.name
	}
	return e.name
}

// unaryExpr is !x or -x.
type unaryExpr struct {
	op      string
	operand Expr
}

func (e *unaryExpr) Eval(env *Env) Value {
	v := e.operand.Eval(env)
	switch v.Kind {
	case KindUndefined, KindError:
		return v
	}
	switch e.op {
	case "!":
		if v.Kind == KindBool {
			return Bool(!v.B)
		}
		return ErrorVal
	case "-":
		switch v.Kind {
		case KindInt:
			return Int(-v.I)
		case KindReal:
			return Real(-v.R)
		}
		return ErrorVal
	}
	return ErrorVal
}

func (e *unaryExpr) String() string { return e.op + e.operand.String() }

// binaryExpr is a binary operator application.
type binaryExpr struct {
	op       string
	lhs, rhs Expr
}

func (e *binaryExpr) Eval(env *Env) Value {
	// Non-strict boolean operators (ClassAd truth tables).
	switch e.op {
	case "&&":
		l := e.lhs.Eval(env)
		if l.Kind == KindBool && !l.B {
			return False
		}
		r := e.rhs.Eval(env)
		if r.Kind == KindBool && !r.B {
			return False
		}
		if l.IsTrue() && r.IsTrue() {
			return True
		}
		if l.Kind == KindError || r.Kind == KindError {
			return ErrorVal
		}
		return Undefined
	case "||":
		l := e.lhs.Eval(env)
		if l.IsTrue() {
			return True
		}
		r := e.rhs.Eval(env)
		if r.IsTrue() {
			return True
		}
		if l.Kind == KindBool && r.Kind == KindBool {
			return False
		}
		if l.Kind == KindError || r.Kind == KindError {
			return ErrorVal
		}
		return Undefined
	case "=?=": // is-identical-to: never undefined
		l, r := e.lhs.Eval(env), e.rhs.Eval(env)
		return Bool(identical(l, r))
	case "=!=":
		l, r := e.lhs.Eval(env), e.rhs.Eval(env)
		return Bool(!identical(l, r))
	}

	// Strict operators: undefined/error propagate.
	l := e.lhs.Eval(env)
	if l.Kind == KindUndefined || l.Kind == KindError {
		return l
	}
	r := e.rhs.Eval(env)
	if r.Kind == KindUndefined || r.Kind == KindError {
		return r
	}
	switch e.op {
	case "==":
		return Bool(Equal(l, r))
	case "!=":
		return Bool(!Equal(l, r))
	case "<", "<=", ">", ">=":
		return compare(e.op, l, r)
	case "+", "-", "*", "/", "%":
		return arith(e.op, l, r)
	}
	return ErrorVal
}

func (e *binaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.lhs.String(), e.op, e.rhs.String())
}

func identical(a, b Value) bool {
	if a.Kind != b.Kind {
		// int/real cross-compare numerically for =?= only when both numeric
		an, aok := a.Number()
		bn, bok := b.Number()
		return aok && bok && an == bn
	}
	switch a.Kind {
	case KindUndefined, KindError:
		return true
	case KindBool:
		return a.B == b.B
	case KindInt:
		return a.I == b.I
	case KindReal:
		return a.R == b.R
	case KindString:
		return a.S == b.S // case-sensitive for identity
	}
	return false
}

func compare(op string, l, r Value) Value {
	if l.Kind == KindString && r.Kind == KindString {
		a, b := strings.ToLower(l.S), strings.ToLower(r.S)
		switch op {
		case "<":
			return Bool(a < b)
		case "<=":
			return Bool(a <= b)
		case ">":
			return Bool(a > b)
		case ">=":
			return Bool(a >= b)
		}
	}
	ln, lok := l.Number()
	rn, rok := r.Number()
	if !lok || !rok {
		return ErrorVal
	}
	switch op {
	case "<":
		return Bool(ln < rn)
	case "<=":
		return Bool(ln <= rn)
	case ">":
		return Bool(ln > rn)
	case ">=":
		return Bool(ln >= rn)
	}
	return ErrorVal
}

func arith(op string, l, r Value) Value {
	// String concatenation with +.
	if op == "+" && l.Kind == KindString && r.Kind == KindString {
		return Str(l.S + r.S)
	}
	// Integer arithmetic when both are ints.
	if l.Kind == KindInt && r.Kind == KindInt {
		switch op {
		case "+":
			return Int(l.I + r.I)
		case "-":
			return Int(l.I - r.I)
		case "*":
			return Int(l.I * r.I)
		case "/":
			if r.I == 0 {
				return ErrorVal
			}
			return Int(l.I / r.I)
		case "%":
			if r.I == 0 {
				return ErrorVal
			}
			return Int(l.I % r.I)
		}
	}
	ln, lok := l.Number()
	rn, rok := r.Number()
	if !lok || !rok {
		return ErrorVal
	}
	switch op {
	case "+":
		return Real(ln + rn)
	case "-":
		return Real(ln - rn)
	case "*":
		return Real(ln * rn)
	case "/":
		if rn == 0 {
			return ErrorVal
		}
		return Real(ln / rn)
	case "%":
		return ErrorVal // modulo is integer-only
	}
	return ErrorVal
}

// callExpr is a builtin function call.
type callExpr struct {
	fn   string
	args []Expr
}

func (e *callExpr) Eval(env *Env) Value {
	f := builtins[e.fn]
	if f == nil {
		return ErrorVal
	}
	vals := make([]Value, len(e.args))
	for i, a := range e.args {
		vals[i] = a.Eval(env)
	}
	return f(vals)
}

func (e *callExpr) String() string {
	parts := make([]string, len(e.args))
	for i, a := range e.args {
		parts[i] = a.String()
	}
	return e.fn + "(" + strings.Join(parts, ", ") + ")"
}

// builtins are the supported ClassAd functions.
var builtins = map[string]func([]Value) Value{
	"isundefined": func(v []Value) Value {
		if len(v) != 1 {
			return ErrorVal
		}
		return Bool(v[0].Kind == KindUndefined)
	},
	"iserror": func(v []Value) Value {
		if len(v) != 1 {
			return ErrorVal
		}
		return Bool(v[0].Kind == KindError)
	},
	"strcat": func(v []Value) Value {
		var sb strings.Builder
		for _, x := range v {
			if x.Kind == KindUndefined || x.Kind == KindError {
				return x
			}
			if x.Kind == KindString {
				sb.WriteString(x.S)
			} else {
				sb.WriteString(x.String())
			}
		}
		return Str(sb.String())
	},
	"floor": func(v []Value) Value {
		if len(v) != 1 {
			return ErrorVal
		}
		n, ok := v[0].Number()
		if !ok {
			return ErrorVal
		}
		i := int64(n)
		if float64(i) > n {
			i--
		}
		return Int(i)
	},
	"min": func(v []Value) Value { return minmax(v, true) },
	"max": func(v []Value) Value { return minmax(v, false) },
}

func minmax(v []Value, min bool) Value {
	if len(v) == 0 {
		return ErrorVal
	}
	best, ok := v[0].Number()
	if !ok {
		return v[0]
	}
	allInt := v[0].Kind == KindInt
	for _, x := range v[1:] {
		n, ok := x.Number()
		if !ok {
			return x
		}
		if x.Kind != KindInt {
			allInt = false
		}
		if (min && n < best) || (!min && n > best) {
			best = n
		}
	}
	if allInt {
		return Int(int64(best))
	}
	return Real(best)
}
