// Package interop runs the m × n interoperability matrix that
// quantifies the paper's central claim (§1): without TDP, m tools on n
// resource managers require m × n porting efforts; with TDP, each side
// is ported once (m + n) and every pairing works. This package pairs
// the three resource managers (the Condor miniature, the fork RM, the
// PBS-like queue RM) with the three run-time tools (paradynd, the
// event tracer, the breakpoint debugger) — nine combinations driven
// through identical, unmodified TDP code paths.
package interop

import (
	"fmt"
	"strings"
	"time"

	"tdp/internal/condor"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/rmkit"
	"tdp/internal/toolapi"
	"tdp/internal/tools"
)

// Result is the outcome of one RM × tool pairing.
type Result struct {
	RM     string
	Tool   string
	OK     bool
	Detail string // tool-produced evidence (first marker line)
	Err    error
}

// String renders one matrix cell.
func (r Result) String() string {
	mark := "PASS"
	if !r.OK {
		mark = "FAIL"
	}
	s := fmt.Sprintf("%-8s × %-9s %s", r.RM, r.Tool, mark)
	if r.Err != nil {
		s += " (" + r.Err.Error() + ")"
	}
	return s
}

// toolCase describes one tool column of the matrix.
type toolCase struct {
	name    string
	factory toolapi.Factory
	args    []string
	// marker must appear in the tool's output for the pairing to pass.
	marker string
}

// RMNames lists the matrix rows.
func RMNames() []string { return []string{"condor", "fork", "queue"} }

// ToolNames lists the matrix columns.
func ToolNames() []string { return []string{"paradynd", "tracer", "debugger"} }

func toolCases() []toolCase {
	return []toolCase{
		{name: "paradynd", factory: paradyn.Tool(), args: []string{"-zunix", "-l3", "-a%pid"}, marker: "FUNCTION"},
		{name: "tracer", factory: tools.Tracer(), args: nil, marker: "TRACE-END exit(0)"},
		{name: "debugger", factory: tools.Debugger(), args: []string{"-bwork", "-n2"}, marker: "DEBUG-END breakpoint=work"},
	}
}

// matrixApp is the application every pairing runs: a phased program
// with a "work" function (the debugger's breakpoint target).
func matrixApp() (procsim.Program, []string) {
	phases := []procsim.PhaseSpec{{Name: "work", Units: 3}, {Name: "idle", Units: 1}}
	return procsim.NewPhasedProgram(6, phases), procsim.PhasedSymbols(phases)
}

// RunMatrix executes all RM × tool pairings and returns one Result per
// cell, condor rows first.
func RunMatrix() []Result {
	var out []Result
	for _, tc := range toolCases() {
		out = append(out, runCondor(tc))
	}
	for _, tc := range toolCases() {
		out = append(out, runFork(tc))
	}
	for _, tc := range toolCases() {
		out = append(out, runQueue(tc))
	}
	return out
}

func check(rm string, tc toolCase, toolOut string, exit procsim.ExitStatus, err error) Result {
	r := Result{RM: rm, Tool: tc.name}
	if err != nil {
		r.Err = err
		return r
	}
	if exit.Code != 0 || exit.Signaled() {
		r.Err = fmt.Errorf("application exited %s", exit)
		return r
	}
	if !strings.Contains(toolOut, tc.marker) {
		r.Err = fmt.Errorf("tool output missing marker %q", tc.marker)
		return r
	}
	for _, line := range strings.Split(toolOut, "\n") {
		if strings.Contains(line, tc.marker) {
			r.Detail = strings.TrimSpace(line)
			break
		}
	}
	r.OK = true
	return r
}

func runCondor(tc toolCase) Result {
	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 5 * time.Second, JobTimeout: 60 * time.Second})
	defer pool.Close()
	if _, err := pool.AddMachine(condor.MachineConfig{Name: "m1", Arch: "INTEL", OpSys: "LINUX", Memory: 128}); err != nil {
		return Result{RM: "condor", Tool: tc.name, Err: err}
	}
	pool.Registry().RegisterProgram("app", func(args []string) (procsim.Program, []string) {
		return matrixApp()
	})
	pool.Registry().RegisterTool(tc.name, tc.factory)
	submit := fmt.Sprintf(`executable = app
+SuspendJobAtExec = True
+ToolDaemonCmd = "%s"
+ToolDaemonArgs = "%s"
+ToolDaemonOutput = "tool.out"
queue
`, tc.name, strings.Join(tc.args, " "))
	jobs, err := pool.Submit(submit)
	if err != nil {
		return Result{RM: "condor", Tool: tc.name, Err: err}
	}
	exit, err := jobs[0].WaitExit(60 * time.Second)
	return check("condor", tc, jobs[0].ToolOutput(), exit, err)
}

func runFork(tc toolCase) Result {
	rm, err := rmkit.NewForkRM(nil)
	if err != nil {
		return Result{RM: "fork", Tool: tc.name, Err: err}
	}
	defer rm.Close()
	prog, syms := matrixApp()
	var toolOut strings.Builder
	exit, err := rm.Run(rmkit.JobSpec{
		Name: "app", Program: prog, Symbols: syms,
		Tool: tc.factory, ToolArgs: tc.args, ToolOut: &toolOut,
		Timeout: 60 * time.Second,
	})
	return check("fork", tc, toolOut.String(), exit, err)
}

func runQueue(tc toolCase) Result {
	rm, err := rmkit.NewQueueRM(1, nil)
	if err != nil {
		return Result{RM: "queue", Tool: tc.name, Err: err}
	}
	defer rm.Close()
	prog, syms := matrixApp()
	var toolOut strings.Builder
	qj, err := rm.Enqueue(rmkit.JobSpec{
		Name: "app", Program: prog, Symbols: syms,
		Tool: tc.factory, ToolArgs: tc.args, ToolOut: &toolOut,
		Timeout: 60 * time.Second,
	})
	if err != nil {
		return Result{RM: "queue", Tool: tc.name, Err: err}
	}
	exit, err := qj.Wait(60 * time.Second)
	return check("queue", tc, toolOut.String(), exit, err)
}

// FormatMatrix renders results as the m × n grid.
func FormatMatrix(results []Result) string {
	cell := make(map[string]Result)
	for _, r := range results {
		cell[r.RM+"/"+r.Tool] = r
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s", "RM\\Tool")
	for _, t := range ToolNames() {
		fmt.Fprintf(&sb, " %-10s", t)
	}
	sb.WriteByte('\n')
	for _, rm := range RMNames() {
		fmt.Fprintf(&sb, "%-10s", rm)
		for _, t := range ToolNames() {
			r, ok := cell[rm+"/"+t]
			mark := "-"
			if ok {
				if r.OK {
					mark = "PASS"
				} else {
					mark = "FAIL"
				}
			}
			fmt.Fprintf(&sb, " %-10s", mark)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
