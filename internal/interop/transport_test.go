package interop

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"tdp/internal/attr"
	"tdp/internal/attrspace"
	"tdp/internal/wire"
)

// TestTransportV2ClientAgainstV1Server is the transport-interop
// acceptance run: a current (v2) client stack — caps offer, mux,
// delta resync, chunked snapshots, heartbeats — driven against a
// server that grants none of it, exactly like a daemon fleet upgraded
// before its attribute servers. Every operation must transparently
// fall back to the v1 protocol, including a full reconnect + resync
// cycle through a Session.
func TestTransportV2ClientAgainstV1Server(t *testing.T) {
	space := attr.NewSpace()
	keep := space.Join("mix")
	defer keep.Leave()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	v1 := attrspace.NewServerWithSpace(space)
	v1.SetCaps() // pre-v2 behavior: no caps granted, SNAPD/PING unknown
	go v1.Serve(l)

	// Plain client: the full v1 surface, plus graceful rejection of the
	// v2-only verbs.
	c, err := attrspace.Dial(nil, addr, "mix")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for _, cap := range []string{wire.CapMux, wire.CapSnapd, wire.CapChunk, wire.CapPing} {
		if c.HasCap(cap) {
			t.Errorf("v1 server granted %s", cap)
		}
	}
	for i := 0; i < 600; i++ { // above the chunking threshold, served inline
		if err := c.Put(fmt.Sprintf("a%03d", i), "v"); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	snap, _, err := c.SnapshotSeq(context.Background())
	if err != nil || len(snap) != 600 {
		t.Fatalf("SnapshotSeq = %d entries, %v; want 600", len(snap), err)
	}
	if _, _, _, err := c.SnapshotDelta(context.Background(), 1); err == nil {
		t.Fatal("SnapshotDelta succeeded against a v1 server")
	}
	c.Close()

	// Session: subscribe, lose the server, reconnect, and resync — the
	// delta path must quietly fall back to the full snapshot diff.
	s := attrspace.NewSession(attrspace.SessionConfig{
		Addr: addr, Context: "mix", Seed: 1,
		Heartbeat:   50 * time.Millisecond, // inert without the ping cap
		ConnectWait: 10 * time.Second,
	})
	defer s.Close()
	if err := s.Subscribe(); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	if err := s.PutCtx(ctx, "live", "1"); err != nil {
		t.Fatalf("Put: %v", err)
	}

	v1.Close()
	// A write the session misses while disconnected; only the resync
	// can deliver it.
	if _, err := keep.PutSeq("missed", "yes"); err != nil {
		t.Fatalf("PutSeq: %v", err)
	}
	var l2 net.Listener
	for i := 0; i < 200; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	v2 := attrspace.NewServerWithSpace(space)
	v2.SetCaps()
	go v2.Serve(l2)
	defer v2.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := s.TryGetCtx(ctx, "missed")
		if err == nil && v == "yes" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never recovered against the v1 server: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, resyncs := s.Stats(); resyncs < 1 {
		t.Errorf("resyncs = %d, want >= 1 (full-snapshot fallback)", resyncs)
	}
	if s.GaveUp() {
		t.Fatal("session gave up")
	}
}
