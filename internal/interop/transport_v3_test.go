package interop

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"tdp/internal/attr"
	"tdp/internal/attrspace"
	"tdp/internal/wire"
)

// TestTransportV3FallbackMatrix drives one current client stack against
// servers frozen at each transport generation, over the transports
// where each pairing can occur in a real pool. Every cell must settle
// on exactly the capability set both ends support and then serve the
// same operations:
//
//	v3 server, unix dial  → shm ring + byte windows
//	v3 server, tcp dial   → byte windows, no shm (client never offers it off-host)
//	v2 server, unix dial  → mux/snapd/chunk/ping, message windows, no shm
//	v1 server, unix dial  → bare v1 framing
func TestTransportV3FallbackMatrix(t *testing.T) {
	v2caps := []string{wire.CapMux, wire.CapSnapd, wire.CapChunk, wire.CapPing, wire.CapCtxOp}
	cases := []struct {
		name     string
		caps     []string // nil = server default (v3)
		tcp      bool
		wantShm  bool
		wantByte bool
		wantMux  bool
	}{
		{name: "v3-unix", caps: nil, wantShm: wire.ShmSupported(), wantByte: true, wantMux: true},
		{name: "v3-tcp", caps: nil, tcp: true, wantByte: true, wantMux: true},
		{name: "v2-unix", caps: v2caps, wantMux: true},
		{name: "v1-unix", caps: []string{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := attrspace.NewServer()
			if tc.caps != nil {
				srv.SetCaps(tc.caps...)
			}
			var addr string
			var err error
			if tc.tcp {
				addr, err = srv.ListenAndServe("127.0.0.1:0")
			} else {
				path := filepath.Join(t.TempDir(), "lass.sock")
				addr, err = srv.ListenAndServe("unix:" + path)
			}
			if err != nil {
				t.Fatalf("serve: %v", err)
			}
			defer srv.Close()
			dial := attrspace.DialFunc(nil)
			if tc.tcp {
				dial = attrspace.TCPDial
			}
			c, err := attrspace.Dial(dial, addr, "matrix")
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer c.Close()
			if got := c.ShmActive(); got != tc.wantShm {
				t.Errorf("ShmActive = %v, want %v", got, tc.wantShm)
			}
			if got := c.HasCap(wire.CapByteWin); got != tc.wantByte {
				t.Errorf("HasCap(bytewin) = %v, want %v", got, tc.wantByte)
			}
			if got := c.HasCap(wire.CapMux); got != tc.wantMux {
				t.Errorf("HasCap(mux) = %v, want %v", got, tc.wantMux)
			}
			// The same operation script must work in every cell,
			// whatever transport it landed on.
			for i := 0; i < 50; i++ {
				if err := c.Put(fmt.Sprintf("a%03d", i), "v"); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
			if v, err := c.TryGet("a007"); err != nil || v != "v" {
				t.Fatalf("TryGet = %q, %v", v, err)
			}
			snap, _, err := c.SnapshotSeq(context.Background())
			if err != nil || len(snap) != 50 {
				t.Fatalf("SnapshotSeq = %d entries, %v; want 50", len(snap), err)
			}
			if tc.wantMux {
				// Every mux-era server here also grants ping.
				if err := c.Ping(context.Background()); err != nil {
					t.Fatalf("Ping: %v", err)
				}
			}
		})
	}
}

// recListener tees the client→server byte stream of every accepted
// connection into a buffer, so a test can assert what a client
// actually put on the wire.
type recListener struct {
	net.Listener
	mu   sync.Mutex
	bufs []*bytes.Buffer
}

func (rl *recListener) Accept() (net.Conn, error) {
	c, err := rl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	buf := new(bytes.Buffer)
	rl.mu.Lock()
	rl.bufs = append(rl.bufs, buf)
	rl.mu.Unlock()
	return &recConn{Conn: c, rl: rl, buf: buf}, nil
}

func (rl *recListener) snapshot(i int) []byte {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if i >= len(rl.bufs) {
		return nil
	}
	return append([]byte(nil), rl.bufs[i].Bytes()...)
}

type recConn struct {
	net.Conn
	rl  *recListener
	buf *bytes.Buffer
}

func (rc *recConn) Read(p []byte) (int, error) {
	n, err := rc.Conn.Read(p)
	if n > 0 {
		rc.rl.mu.Lock()
		rc.buf.Write(p[:n])
		rc.rl.mu.Unlock()
	}
	return n, err
}

// splitFrames cuts a recorded byte stream into framed payloads.
func splitFrames(t *testing.T, data []byte) [][]byte {
	t.Helper()
	var frames [][]byte
	for len(data) > 0 {
		if len(data) < 4 {
			t.Fatalf("trailing %d bytes are not a frame header", len(data))
		}
		n := int(binary.BigEndian.Uint32(data[:4]))
		if len(data) < 4+n {
			t.Fatalf("truncated frame: header says %d, have %d", n, len(data)-4)
		}
		frames = append(frames, data[4:4+n])
		data = data[4+n:]
	}
	return frames
}

// TestTransportV3ClientBytesMatchV2 is the wire-identity half of the
// fallback matrix: a shm-capable client talking to a server that
// grants nothing must emit, after the HELLO, exactly the message
// stream a client with no shm eligibility emits — the v3 machinery may
// not leak a single byte (no SHMRDY, no doorbell traffic, no extra
// fields) when the capability is not granted. The HELLO itself may
// differ only in the shm token of the caps offer. Frames are compared
// decoded because field order within a frame is map-iteration order;
// splitFrames still proves the raw streams are pure length-prefixed
// framing with nothing between the frames.
func TestTransportV3ClientBytesMatchV2(t *testing.T) {
	space := attr.NewSpace()
	keep := space.Join("mix")
	defer keep.Leave()

	// Same v1 server behavior behind both listeners; shared space so
	// both clients see identical reply contents (and so send identical
	// follow-ups).
	run := func(network, laddr string) []byte {
		l, err := net.Listen(network, laddr)
		if err != nil {
			t.Fatalf("listen %s: %v", network, err)
		}
		rl := &recListener{Listener: l}
		srv := attrspace.NewServerWithSpace(space)
		srv.SetCaps()
		go srv.Serve(rl)
		defer srv.Close()

		addr := l.Addr().String()
		dial := attrspace.DialFunc(attrspace.TCPDial)
		if network == "unix" {
			addr = "unix:" + laddr
			dial = nil
		}
		c, err := attrspace.Dial(dial, addr, "mix")
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		if c.ShmActive() {
			t.Fatal("shm active against a v1 server")
		}
		for i := 0; i < 5; i++ {
			if err := c.Put(fmt.Sprintf("k%d", i), "v"); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if _, err := c.TryGet("k3"); err != nil {
			t.Fatalf("TryGet: %v", err)
		}
		c.Close()

		// The EXIT is written asynchronously to Close returning; wait
		// for the recorded stream to end with it.
		deadline := time.Now().Add(5 * time.Second)
		for {
			data := rl.snapshot(0)
			frames := splitFrames(t, data)
			if n := len(frames); n > 0 {
				if m, err := wire.Decode(frames[n-1]); err == nil && m.Verb == "EXIT" {
					return data
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("EXIT never recorded (%d bytes)", len(data))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	unixStream := run("unix", filepath.Join(t.TempDir(), "v1.sock"))
	tcpStream := run("tcp", "127.0.0.1:0")

	uf := splitFrames(t, unixStream)
	tf := splitFrames(t, tcpStream)
	if len(uf) != len(tf) {
		t.Fatalf("frame counts differ: unix %d, tcp %d", len(uf), len(tf))
	}
	// HELLO: identical apart from the shm token in the caps offer (and
	// only when this build can offer it at all).
	uh, err := wire.Decode(uf[0])
	if err != nil {
		t.Fatalf("decode unix HELLO: %v", err)
	}
	th, err := wire.Decode(tf[0])
	if err != nil {
		t.Fatalf("decode tcp HELLO: %v", err)
	}
	ucaps, tcaps := uh.Get("caps"), th.Get("caps")
	wantU := tcaps
	if wire.ShmSupported() {
		wantU = tcaps + "," + wire.CapShm
	}
	if ucaps != wantU {
		t.Errorf("unix caps offer = %q, want %q", ucaps, wantU)
	}
	uh.Set("caps", "x")
	th.Set("caps", "x")
	if uh.Verb != th.Verb || !reflect.DeepEqual(uh.Fields, th.Fields) {
		t.Errorf("HELLOs differ beyond caps: unix %v, tcp %v", uh.Fields, th.Fields)
	}
	// Everything after the HELLO: the same messages in the same order.
	for i := 1; i < len(uf); i++ {
		um, err := wire.Decode(uf[i])
		if err != nil {
			t.Fatalf("decode unix frame %d: %v", i, err)
		}
		tm, err := wire.Decode(tf[i])
		if err != nil {
			t.Fatalf("decode tcp frame %d: %v", i, err)
		}
		if um.Verb == "SHMRDY" || tm.Verb == "SHMRDY" {
			t.Fatalf("frame %d: SHMRDY leaked onto a no-shm connection", i)
		}
		if um.Verb != tm.Verb || !reflect.DeepEqual(um.Fields, tm.Fields) {
			t.Errorf("frame %d differs:\n  unix: %s %v\n  tcp:  %s %v",
				i, um.Verb, um.Fields, tm.Verb, tm.Fields)
		}
	}
}
