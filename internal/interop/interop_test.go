package interop

import (
	"strings"
	"testing"
)

// TestInteropMatrix is the paper's m + n demonstration (experiment E9
// in DESIGN.md): every resource manager runs every tool through
// unmodified TDP code. All nine pairings must pass.
func TestInteropMatrix(t *testing.T) {
	results := RunMatrix()
	if len(results) != len(RMNames())*len(ToolNames()) {
		t.Fatalf("results = %d cells, want %d", len(results), len(RMNames())*len(ToolNames()))
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("pairing failed: %s", r)
		}
	}
	grid := FormatMatrix(results)
	t.Logf("\n%s", grid)
	if strings.Count(grid, "PASS") != 9 {
		t.Errorf("grid does not show 9 passes:\n%s", grid)
	}
}

func TestResultString(t *testing.T) {
	r := Result{RM: "fork", Tool: "tracer", OK: true}
	if !strings.Contains(r.String(), "PASS") {
		t.Errorf("String = %q", r.String())
	}
	r = Result{RM: "fork", Tool: "tracer", Err: errFake}
	if !strings.Contains(r.String(), "FAIL") || !strings.Contains(r.String(), "boom") {
		t.Errorf("String = %q", r.String())
	}
}

var errFake = errFakeType{}

type errFakeType struct{}

func (errFakeType) Error() string { return "boom" }
