package interop

import (
	"context"
	"fmt"
	"testing"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/wire"
)

// TestMixedVersionShardPool drives the v2 LASS router against a pool
// whose members disagree about the protocol era: shard 0 is a current,
// shard-aware daemon (enforces its hash range, speaks the pooled C*
// verbs), while shard 1 is a legacy single-shard CASS — no ctxop cap,
// no shard enforcement — exactly the state of a fleet mid-upgrade.
// Every global operation, including the scatter-gather ones, must work
// across both; the router must take the pooled path to the modern
// shard and fall back to per-context connections for the legacy one.
func TestMixedVersionShardPool(t *testing.T) {
	// Shard 0: modern, enforcing its slice of the hash ring.
	modern := attrspace.NewServer()
	if err := modern.SetShard(0, 2); err != nil {
		t.Fatalf("SetShard: %v", err)
	}
	modernAddr, err := modern.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("modern ListenAndServe: %v", err)
	}
	defer modern.Close()

	// Shard 1: a legacy daemon. It predates both the C* verbs and
	// shard enforcement, so strip CapCtxOp and skip SetShard — it will
	// happily host any context it is handed, like a pre-partitioning
	// CASS would.
	legacy := attrspace.NewServer()
	var legacyCaps []string
	for _, cap := range legacy.Caps() {
		if cap != wire.CapCtxOp {
			legacyCaps = append(legacyCaps, cap)
		}
	}
	legacy.SetCaps(legacyCaps...)
	legacyAddr, err := legacy.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("legacy ListenAndServe: %v", err)
	}
	defer legacy.Close()

	lass := attrspace.NewServer()
	lass.EnableGlobalCache(modernAddr+","+legacyAddr, attrspace.CacheConfig{
		SweepInterval:  50 * time.Millisecond,
		ShardHeartbeat: 50 * time.Millisecond,
	})
	lassAddr, err := lass.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("lass ListenAndServe: %v", err)
	}
	defer lass.Close()

	// One context per shard, found by the same hash the router uses.
	ctxs := make([]string, 2)
	for i := 0; ctxs[0] == "" || ctxs[1] == ""; i++ {
		name := fmt.Sprintf("pool-%d", i)
		if idx := attrspace.ShardIndex(name, 2); ctxs[idx] == "" {
			ctxs[idx] = name
		}
	}
	bg := context.Background()

	// Single-context ops on both eras, routed through the one LASS.
	for i, name := range ctxs {
		c, err := attrspace.Dial(nil, lassAddr, name)
		if err != nil {
			t.Fatalf("Dial(%q): %v", name, err)
		}
		defer c.Close()
		if err := c.PutGlobal(bg, "era", fmt.Sprintf("shard%d", i)); err != nil {
			t.Fatalf("PutGlobal(%q): %v", name, err)
		}
		if v, err := c.TryGetGlobal(bg, "era"); err != nil || v != fmt.Sprintf("shard%d", i) {
			t.Fatalf("TryGetGlobal(%q) = %q, %v", name, v, err)
		}
	}

	// The values must have landed on the owning daemons, legacy
	// included — visible to a direct client of each.
	for i, addr := range []string{modernAddr, legacyAddr} {
		direct, err := attrspace.Dial(nil, addr, ctxs[i])
		if err != nil {
			t.Fatalf("direct Dial shard %d: %v", i, err)
		}
		if v, err := direct.TryGet("era"); err != nil || v != fmt.Sprintf("shard%d", i) {
			t.Fatalf("shard %d missing its value: %q, %v", i, v, err)
		}
		direct.Close()
	}

	// Scatter-gather spans the eras: one GSNAPM and one GCTXS must
	// merge the modern shard's pooled reply with the legacy shard's
	// fallback reply.
	c, err := attrspace.Dial(nil, lassAddr, ctxs[0])
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	snaps, err := c.SnapshotGlobalMany(bg, ctxs)
	if err != nil {
		t.Fatalf("SnapshotGlobalMany: %v", err)
	}
	for i, name := range ctxs {
		if snaps[name]["era"] != fmt.Sprintf("shard%d", i) {
			t.Errorf("GSNAPM[%q] = %v, want era=shard%d", name, snaps[name], i)
		}
	}
	names, err := c.GlobalContexts(bg)
	if err != nil {
		t.Fatalf("GlobalContexts: %v", err)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, name := range ctxs {
		if !seen[name] {
			t.Errorf("GlobalContexts missing %q (got %v)", name, names)
		}
	}

	// The router must have exercised both paths: pooled C* verbs to
	// the modern shard, per-context fallback to the legacy one.
	reg := lass.Telemetry().Snapshot()
	if reg.Counters["attrspace.router.pooled"] == 0 {
		t.Errorf("no pooled ops recorded — modern shard not using C* verbs")
	}
	if reg.Counters["attrspace.router.fallback"] == 0 {
		t.Errorf("no fallback ops recorded — legacy shard not exercised")
	}
}
