package attrspace

import (
	"context"
	"errors"
	"sync"
	"time"

	"tdp/internal/attr"
	"tdp/internal/telemetry"
)

// GlobalCache is the LASS side of the G* global-forwarding verbs: a
// read-through, subscription-invalidated cache of CASS attributes.
//
// The paper's LASS/CASS split (§3.2) puts one attribute space server
// on every execution host and one next to the tool front-end; a
// global tdp_get therefore pays a front-end round trip on every call.
// The cache exploits the split for locality instead: the first global
// get for a context opens one upstream connection from the LASS to the
// CASS, joins the context, and subscribes to its events. From then on
//
//   - reads hit the local entry map when it holds the attribute
//     (live or deleted) and otherwise fill it from one upstream round
//     trip, versioned by the CASS-assigned per-context seq;
//   - upstream EVENTs update or tombstone entries (compare-by-seq, so
//     a late fill can never overwrite a newer event and a late event
//     never regresses a newer fill);
//   - writes (GPUT/GMPUT/GDEL) go through to the CASS and apply to the
//     cache with the acked seq before the client sees OK, giving
//     read-your-writes to every client of the same LASS;
//   - an EVENT carrying lost=<d> (the server's fan-out ring dropped
//     updates for us) flushes the context's entries — the cache never
//     trusts a picture with a gap;
//   - an upstream OpDestroy or connection failure tears the context's
//     cache down entirely; the next global op re-dials.
//
// Entries per context are bounded (MaxEntries); beyond the bound an
// arbitrary entry is evicted, which only costs a future miss. A
// background sweep drops cache contexts whose local context has no
// participants left, so the cache's upstream reference does not pin a
// CASS context forever after everyone exited.
type GlobalCache struct {
	srv       *Server // telemetry + local space (idle sweep)
	shards    *ShardMap
	dial      DialFunc
	max       int
	batch     int
	heartbeat time.Duration

	mu     sync.Mutex
	ctxs   map[string]*cacheCtx
	closed bool
	stop   chan struct{}

	conns []*shardConn // one per shard, index-aligned with shards
}

// CacheConfig tunes EnableGlobalCache.
type CacheConfig struct {
	// Dial opens upstream connections to the CASS; nil means TCPDial.
	Dial DialFunc
	// MaxEntries bounds cached entries per context; 0 means 4096.
	MaxEntries int
	// SweepInterval is how often idle contexts (no local participants)
	// are dropped; 0 means 5s, negative disables the sweep.
	SweepInterval time.Duration
	// ShardBatch bounds how many pooled operations one per-shard drain
	// cycle corks into a single write; 0 means 64. See router.go.
	ShardBatch int
	// ShardHeartbeat is the per-shard health session's ping interval;
	// 0 means 1s, negative disables heartbeats (liveness then rests on
	// transport read errors alone).
	ShardHeartbeat time.Duration
}

// EnableGlobalCache turns this server into a caching LASS: the G*
// verbs forward to the CASS(es) at cassAddr — a single endpoint or a
// comma-separated shard list ("host1:7170,host2:7170") — through a
// GlobalCache. Call once, before serving traffic; the cache closes
// with the server. With more than one shard, `STATS scope=tree` on
// this server additionally folds in each live shard's snapshot.
func (s *Server) EnableGlobalCache(cassAddr string, cfg CacheConfig) *GlobalCache {
	if cfg.Dial == nil {
		cfg.Dial = TCPDial
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	if cfg.ShardBatch <= 0 {
		cfg.ShardBatch = defaultShardBatch
	}
	switch {
	case cfg.ShardHeartbeat == 0:
		cfg.ShardHeartbeat = time.Second
	case cfg.ShardHeartbeat < 0:
		cfg.ShardHeartbeat = 0
	}
	sweep := cfg.SweepInterval
	if sweep == 0 {
		sweep = 5 * time.Second
	}
	gc := &GlobalCache{
		srv:       s,
		shards:    ParseShardAddrs(cassAddr),
		dial:      cfg.Dial,
		max:       cfg.MaxEntries,
		batch:     cfg.ShardBatch,
		heartbeat: cfg.ShardHeartbeat,
		ctxs:      make(map[string]*cacheCtx),
		stop:      make(chan struct{}),
	}
	gc.conns = make([]*shardConn, gc.shards.Len())
	for i := range gc.conns {
		gc.conns[i] = gc.newShardConn(i)
	}
	if sweep > 0 {
		go gc.sweeper(sweep)
	}
	go gc.healthLoop()
	if gc.shards.Len() > 1 {
		// Sharded pool: fold the shards' telemetry into this server's
		// tree-scope STATS, preserving any callback already installed
		// (e.g. an mrnet rollup).
		prev := s.statsKids.Load()
		s.SetStatsChildren(func() []telemetry.Snapshot {
			kids := gc.ShardStats()
			if prev != nil {
				kids = append(kids, (*prev)()...)
			}
			return kids
		})
	}
	s.gcache.Store(gc)
	return gc
}

// ShardMap returns the shard assignment this cache routes by.
func (gc *GlobalCache) ShardMap() *ShardMap { return gc.shards }

// shard returns the shardConn owning the named context.
func (gc *GlobalCache) shard(contextName string) *shardConn {
	return gc.conns[gc.shards.ShardFor(contextName)]
}

// shardAt returns shard i's connection state.
func (gc *GlobalCache) shardAt(i int) *shardConn { return gc.conns[i] }

func (gc *GlobalCache) isClosed() bool {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.closed
}

// healthLoop refreshes the per-shard up gauges so tdptop tracks shard
// state even while the router is idle.
func (gc *GlobalCache) healthLoop() {
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-gc.stop:
			return
		case <-t.C:
		}
		for _, sh := range gc.conns {
			sh.healthTick()
		}
	}
}

// GlobalCacheEnabled reports whether this server forwards G* verbs.
func (s *Server) GlobalCacheEnabled() bool { return s.gcache.Load() != nil }

// centry is one cached attribute: its value and CASS seq, or a
// tombstone (dead) recording a deletion. Tombstones matter: they stop
// an in-flight fill that read the attribute just before its deletion
// from resurrecting it.
type centry struct {
	value string
	seq   uint64
	dead  bool
}

// cacheCtx is the cache for one context: one upstream connection,
// subscribed, plus the entry map.
type cacheCtx struct {
	gc    *GlobalCache
	name  string
	ready chan struct{} // closed when up/initErr are settled
	up    *Client
	initE error

	mu      sync.RWMutex
	gone    bool
	entries map[string]centry
}

// Close tears down every cached context and upstream connection.
func (gc *GlobalCache) Close() {
	gc.mu.Lock()
	if gc.closed {
		gc.mu.Unlock()
		return
	}
	gc.closed = true
	ctxs := gc.ctxs
	gc.ctxs = make(map[string]*cacheCtx)
	gc.mu.Unlock()
	close(gc.stop)
	for _, cc := range ctxs {
		cc.teardown()
	}
	for _, sh := range gc.conns {
		sh.close()
	}
}

// sweeper periodically drops cache contexts with no local
// participants, releasing the cache's CASS reference so the upstream
// context can be destroyed once its real participants exit.
func (gc *GlobalCache) sweeper(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-gc.stop:
			return
		case <-t.C:
		}
		gc.mu.Lock()
		var idle []*cacheCtx
		for name, cc := range gc.ctxs {
			if gc.srv.space.Refs(name) == 0 {
				idle = append(idle, cc)
			}
		}
		gc.mu.Unlock()
		for _, cc := range idle {
			cc.teardown()
		}
	}
}

// errCacheClosed reports an operation on a closed cache.
var errCacheClosed = errors.New("attrspace: global cache closed")

// ctx returns the (ready) cache context for name, creating it — dial,
// HELLO, subscribe — on first use. Creation happens outside the cache
// lock so a slow CASS dial for one context never stalls global ops in
// others; concurrent first users share one creation via the ready
// channel.
func (gc *GlobalCache) ctx(ctx context.Context, name string) (*cacheCtx, error) {
	for {
		gc.mu.Lock()
		if gc.closed {
			gc.mu.Unlock()
			return nil, errCacheClosed
		}
		cc := gc.ctxs[name]
		if cc == nil {
			cc = &cacheCtx{
				gc:      gc,
				name:    name,
				ready:   make(chan struct{}),
				entries: make(map[string]centry),
			}
			gc.ctxs[name] = cc
			gc.mu.Unlock()
			cc.init()
			if cc.initE != nil {
				gc.drop(cc)
				return nil, cc.initE
			}
			return cc, nil
		}
		gc.mu.Unlock()
		select {
		case <-cc.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if cc.initE != nil {
			// Creation failed in another goroutine; it already removed
			// the entry — retry with a fresh one.
			gc.drop(cc)
			continue
		}
		cc.mu.RLock()
		gone := cc.gone
		cc.mu.RUnlock()
		if gone {
			gc.drop(cc)
			continue
		}
		return cc, nil
	}
}

// drop removes cc from the context map if it is still the registered
// entry for its name.
func (gc *GlobalCache) drop(cc *cacheCtx) {
	gc.mu.Lock()
	if gc.ctxs[cc.name] == cc {
		delete(gc.ctxs, cc.name)
	}
	gc.mu.Unlock()
}

// init dials the CASS, joins the context, and subscribes — in that
// order, which is what makes the cache coherent: every fill is
// requested after the subscription is live on the CASS, so any write
// newer than what a fill observed must produce an event we will see.
func (cc *cacheCtx) init() {
	defer close(cc.ready)
	sh := cc.gc.shard(cc.name)
	if sh.down() {
		// The owning shard's health session says it is unreachable:
		// fail fast instead of burning a dial timeout. Other shards'
		// contexts are unaffected — this is the degraded mode.
		cc.initE = sh.downErr()
		return
	}
	up, err := Dial(cc.gc.dial, sh.addr, cc.name)
	if err != nil {
		cc.initE = err
		return
	}
	up.SetEventHandler(cc.onEvent)
	up.OnClose(func(error) { go cc.teardown() })
	if err := up.Subscribe(); err != nil {
		up.Close()
		cc.initE = err
		return
	}
	cc.up = up
}

// teardown flushes the context and closes its upstream connection.
func (cc *cacheCtx) teardown() {
	cc.gc.drop(cc)
	cc.mu.Lock()
	if cc.gone {
		cc.mu.Unlock()
		return
	}
	cc.gone = true
	n := len(cc.entries)
	cc.entries = make(map[string]centry)
	cc.mu.Unlock()
	if n > 0 {
		cc.gc.srv.tel.Load().cacheFlush.Inc()
	}
	if cc.up != nil {
		cc.up.Close()
	}
}

// onEvent applies one upstream event. It runs synchronously on the
// upstream client's read loop (SetEventHandler), so events apply in
// CASS order and none can be dropped client-side; server-side drops
// surface as ev.Lost and flush the whole context.
func (cc *cacheCtx) onEvent(ev Event) {
	tel := cc.gc.srv.tel.Load()
	if ev.Lost > 0 || ev.Op == "resync" {
		// Server-side ring drops and a session's reconnect gap marker
		// mean the same thing here: events were (or may have been)
		// missed, so the mirror can no longer be trusted. Flush; the
		// session's snapshot replay (put/delete events tagged Resync)
		// and demand fills then warm it back up with authoritative
		// seqs through the switch below.
		cc.mu.Lock()
		if !cc.gone {
			cc.entries = make(map[string]centry)
		}
		cc.mu.Unlock()
		tel.cacheFlush.Inc()
	}
	switch ev.Op {
	case "put":
		cc.store(ev.Attr, ev.Value, ev.Seq, false)
	case "delete":
		cc.store(ev.Attr, "", ev.Seq, true)
		tel.cacheInval.Inc()
	case "destroy":
		// Run off the read loop: teardown closes the upstream client,
		// which waits for this very read loop to finish.
		go cc.teardown()
	}
}

// store installs value@seq (or a tombstone) unless a newer entry is
// already present. Both fills and events funnel through here, so the
// freshest write wins regardless of arrival order.
func (cc *cacheCtx) store(attribute, value string, seq uint64, dead bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.gone {
		return
	}
	if e, ok := cc.entries[attribute]; ok && e.seq >= seq {
		return
	} else if !ok && len(cc.entries) >= cc.gc.max {
		for k := range cc.entries { // evict an arbitrary entry
			delete(cc.entries, k)
			break
		}
	}
	cc.entries[attribute] = centry{value: value, seq: seq, dead: dead}
}

// lookup probes the cache: (value, seq, true, dead) on a hit.
func (cc *cacheCtx) lookup(attribute string) (string, uint64, bool, bool) {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	e, ok := cc.entries[attribute]
	if !ok || cc.gone {
		return "", 0, false, false
	}
	return e.value, e.seq, true, e.dead
}

// Put writes through to the CASS, then installs the acked value in the
// cache before returning, so a subsequent read through this LASS sees
// it (read-your-writes).
func (gc *GlobalCache) Put(ctx context.Context, contextName, attribute, value string) (uint64, error) {
	cc, err := gc.ctx(ctx, contextName)
	if err != nil {
		return 0, err
	}
	sh := gc.shard(contextName)
	seq, err := sh.put(ctx, contextName, attribute, value)
	if errors.Is(err, errNoCtxOp) {
		sh.cFallback.Inc()
		seq, err = cc.up.PutV(ctx, attribute, value)
	}
	if err != nil {
		return 0, err
	}
	cc.store(attribute, value, seq, false)
	return seq, nil
}

// PutBatch writes a batch through to the CASS (one MPUT) and installs
// every pair: the engine assigns the batch consecutive seqs ending at
// the acked one.
func (gc *GlobalCache) PutBatch(ctx context.Context, contextName string, pairs []attr.KV) (uint64, error) {
	cc, err := gc.ctx(ctx, contextName)
	if err != nil {
		return 0, err
	}
	sh := gc.shard(contextName)
	last, err := sh.putBatch(ctx, contextName, pairs)
	if errors.Is(err, errNoCtxOp) {
		sh.cFallback.Inc()
		last, err = cc.up.PutBatchV(ctx, pairs)
	}
	if err != nil {
		return 0, err
	}
	if last > 0 {
		first := last - uint64(len(pairs)) + 1
		for i, p := range pairs {
			cc.store(p.Key, p.Value, first+uint64(i), false)
		}
	}
	return last, nil
}

// TryGet answers from the cache when possible; on a miss it fills from
// one upstream round trip. A cached tombstone answers ErrNotFound
// locally — that is a hit: the deletion is known, not guessed.
func (gc *GlobalCache) TryGet(ctx context.Context, contextName, attribute string) (string, uint64, error) {
	cc, err := gc.ctx(ctx, contextName)
	if err != nil {
		return "", 0, err
	}
	tel := gc.srv.tel.Load()
	if v, seq, ok, dead := cc.lookup(attribute); ok {
		tel.cacheHits.Inc()
		if dead {
			return "", 0, attr.ErrNotFound
		}
		return v, seq, nil
	}
	tel.cacheMiss.Inc()
	sh := gc.shard(contextName)
	v, seq, err := sh.tryGet(ctx, contextName, attribute)
	if errors.Is(err, errNoCtxOp) {
		sh.cFallback.Inc()
		v, seq, err = cc.up.TryGetV(ctx, attribute)
	}
	if err != nil {
		return "", 0, err
	}
	cc.store(attribute, v, seq, false)
	tel.cacheFills.Inc()
	return v, seq, nil
}

// Get blocks until the attribute exists globally. A live cache entry
// answers immediately; otherwise (miss or tombstone) the blocking GET
// is forwarded to the CASS and the result fills the cache. The wait
// always rides the per-context connection, never the pooled shard
// path: a drain cycle must not stall behind an op that may block
// forever.
func (gc *GlobalCache) Get(ctx context.Context, contextName, attribute string) (string, uint64, error) {
	cc, err := gc.ctx(ctx, contextName)
	if err != nil {
		return "", 0, err
	}
	tel := gc.srv.tel.Load()
	if v, seq, ok, dead := cc.lookup(attribute); ok && !dead {
		tel.cacheHits.Inc()
		return v, seq, nil
	}
	tel.cacheMiss.Inc()
	v, seq, err := cc.up.GetV(ctx, attribute)
	if err != nil {
		return "", 0, err
	}
	cc.store(attribute, v, seq, false)
	tel.cacheFills.Inc()
	return v, seq, nil
}

// Delete writes the deletion through to the CASS and tombstones the
// local entry with the acked seq.
func (gc *GlobalCache) Delete(ctx context.Context, contextName, attribute string) (uint64, error) {
	cc, err := gc.ctx(ctx, contextName)
	if err != nil {
		return 0, err
	}
	sh := gc.shard(contextName)
	seq, err := sh.delete(ctx, contextName, attribute)
	if errors.Is(err, errNoCtxOp) {
		sh.cFallback.Inc()
		seq, err = cc.up.DeleteV(ctx, attribute)
	}
	if err != nil {
		return 0, err
	}
	if seq > 0 {
		cc.store(attribute, "", seq, true)
	}
	return seq, nil
}

// Snapshot always asks the CASS: a snapshot must be complete, and the
// cache only ever holds the attributes someone read or that events
// touched.
func (gc *GlobalCache) Snapshot(ctx context.Context, contextName string) (map[string]string, error) {
	cc, err := gc.ctx(ctx, contextName)
	if err != nil {
		return nil, err
	}
	return cc.up.Snapshot()
}

// Contexts reports the names of currently cached contexts (tests).
func (gc *GlobalCache) Contexts() []string {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	names := make([]string, 0, len(gc.ctxs))
	for n := range gc.ctxs {
		names = append(names, n)
	}
	return names
}
