package attrspace

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"tdp/internal/netsim"
	"tdp/internal/wire"
)

// startServer runs a server on loopback TCP and returns it with its address.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer()
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func dialT(t *testing.T, addr, ctx string) *Client {
	t.Helper()
	c, err := Dial(nil, addr, ctx)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "job1")
	if err := c.Put("pid", "1234"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := c.TryGet("pid")
	if err != nil || v != "1234" {
		t.Fatalf("TryGet = %q, %v", v, err)
	}
}

func TestBlockingGetAcrossClients(t *testing.T) {
	// The paper's canonical flow: paradynd blocks on "pid" until the
	// starter puts it (§4.3 step 3).
	_, addr := startServer(t)
	starter := dialT(t, addr, "job1")
	paradynd := dialT(t, addr, "job1")

	got := make(chan string, 1)
	go func() {
		v, err := paradynd.Get(context.Background(), "pid")
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("Get returned %q before Put", v)
	case <-time.After(20 * time.Millisecond):
	}
	if err := starter.Put("pid", "4711"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	select {
	case v := <-got:
		if v != "4711" {
			t.Errorf("Get = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking Get never completed")
	}
}

func TestTryGetNotFound(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "j")
	if _, err := c.TryGet("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestDeleteAndSnapshot(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "j")
	c.Put("a", "1")
	c.Put("b", "2")
	c.Put("args", "-p1500 -P2000")
	if err := c.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	want := map[string]string{"b": "2", "args": "-p1500 -P2000"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %v", snap)
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snap[%q] = %q, want %q", k, snap[k], v)
		}
	}
}

func TestGetCancellation(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "j")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Get(ctx, "never-put")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	// The connection must still be usable afterwards.
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("Put after cancelled Get: %v", err)
	}
}

func TestContextIsolationBetweenJobs(t *testing.T) {
	_, addr := startServer(t)
	a := dialT(t, addr, "jobA")
	b := dialT(t, addr, "jobB")
	a.Put("pid", "1")
	if _, err := b.TryGet("pid"); !errors.Is(err, ErrNotFound) {
		t.Errorf("context leak: err = %v", err)
	}
}

func TestContextRefcountAcrossConnections(t *testing.T) {
	srv, addr := startServer(t)
	a := dialT(t, addr, "job")
	b := dialT(t, addr, "job")
	a.Put("k", "v")
	if n := srv.Space().Refs("job"); n != 2 {
		t.Fatalf("Refs = %d, want 2", n)
	}
	a.Close()
	waitFor(t, func() bool { return srv.Space().Refs("job") == 1 })
	if v, err := b.TryGet("k"); err != nil || v != "v" {
		t.Fatalf("attribute lost while a participant remains: %q %v", v, err)
	}
	b.Close()
	waitFor(t, func() bool { return srv.Space().Refs("job") == 0 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestAsyncGetAndPut(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "j")
	// Issue two async gets before the values exist — the §3.3 pattern.
	pidCh, err := c.GetAsync("pid")
	if err != nil {
		t.Fatalf("GetAsync: %v", err)
	}
	exeCh, err := c.GetAsync("executable_name")
	if err != nil {
		t.Fatalf("GetAsync: %v", err)
	}
	ackCh, err := c.PutAsync("pid", "99")
	if err != nil {
		t.Fatalf("PutAsync: %v", err)
	}
	if r := <-ackCh; r.Err != nil {
		t.Fatalf("async put ack: %v", r.Err)
	}
	c.Put("executable_name", "foo")

	r := <-pidCh
	if r.Err != nil || r.Value != "99" {
		t.Errorf("async pid = %+v", r)
	}
	r = <-exeCh
	if r.Err != nil || r.Value != "foo" {
		t.Errorf("async exe = %+v", r)
	}
}

func TestManyOutstandingGetsOneConnection(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "j")
	const n = 32
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		ch, err := c.GetAsync(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatalf("GetAsync %d: %v", i, err)
		}
		chans[i] = ch
	}
	// Satisfy them in reverse order to prove independence.
	for i := n - 1; i >= 0; i-- {
		if err := c.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil || r.Value != fmt.Sprintf("v%d", i) {
				t.Errorf("get %d = %+v", i, r)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("get %d never completed", i)
		}
	}
}

func TestSubscribeEvents(t *testing.T) {
	_, addr := startServer(t)
	sub := dialT(t, addr, "j")
	pub := dialT(t, addr, "j")
	if err := sub.Subscribe(); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	pub.Put("status", "running")
	pub.Put("status", "stopped")
	pub.Delete("status")

	wantOps := []string{"put", "put", "delete"}
	for i, op := range wantOps {
		select {
		case ev := <-sub.Events():
			if ev.Op != op || ev.Attr != "status" {
				t.Errorf("event %d = %+v, want op %s", i, ev, op)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("event %d never arrived", i)
		}
	}
}

func TestClientCloseUnblocksPendingGet(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "j")
	errc := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), "never")
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("pending Get returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending Get never unblocked after Close")
	}
	if err := c.Put("k", "v"); err == nil {
		t.Error("Put after Close succeeded")
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	srv, addr := startServer(t)
	c := dialT(t, addr, "j")
	errc := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), "never")
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("Get survived server shutdown")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get never unblocked after server Close")
	}
}

func TestServerStats(t *testing.T) {
	srv, addr := startServer(t)
	c := dialT(t, addr, "j")
	c.Put("a", "1")
	c.TryGet("a")
	c.Delete("a")
	ch, _ := c.GetAsync("b")
	c.Put("b", "2")
	<-ch
	puts, gets, tryGets, deletes := srv.Stats()
	if puts != 2 || gets != 1 || tryGets != 1 || deletes != 1 {
		t.Errorf("stats = %d %d %d %d", puts, gets, tryGets, deletes)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial(nil, "127.0.0.1:1", "ctx"); err == nil {
		t.Error("Dial to dead port succeeded")
	}
}

func TestOverSimulatedNetwork(t *testing.T) {
	// A LASS on a private execution host, reached over netsim conns —
	// the deployment shape of Figure 2.
	nw := netsim.New()
	node := nw.AddHost("node1")
	fe := nw.AddHost("frontend")

	srv := NewServer()
	l, err := node.Listen(4510)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(l)
	defer srv.Close()

	dial := func(addr string) (net.Conn, error) { return fe.Dial(addr) }
	c, err := Dial(dial, "node1:4510", "job")
	if err != nil {
		t.Fatalf("Dial over simnet: %v", err)
	}
	defer c.Close()
	if err := c.Put("pid", "5"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := c.TryGet("pid")
	if err != nil || v != "5" {
		t.Fatalf("TryGet = %q, %v", v, err)
	}
}

func TestLASSIsolationBetweenHosts(t *testing.T) {
	// Figure 2 invariant: a process can access its local LASS (and the
	// CASS) but not the LASS of another node. Two servers, two spaces.
	_, addr1 := startServer(t)
	_, addr2 := startServer(t)
	c1 := dialT(t, addr1, "job")
	c2 := dialT(t, addr2, "job")
	c1.Put("pid", "1")
	if _, err := c2.TryGet("pid"); !errors.Is(err, ErrNotFound) {
		t.Errorf("attribute crossed LASS boundary: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, addr := startServer(t)
	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(nil, addr, "shared")
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				key := fmt.Sprintf("c%d-k%d", i, j)
				if err := c.Put(key, "v"); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := c.TryGet(key); err != nil {
					t.Errorf("TryGet: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	puts, _, _, _ := srv.Stats()
	if puts != clients*20 {
		t.Errorf("puts = %d, want %d", puts, clients*20)
	}
}

func TestHelloTwiceRejected(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "j")
	reply, err := c.call(context.Background(), "HELLO", wire.NewMessage("HELLO").Set("context", "other"))
	if err != nil {
		t.Fatalf("second HELLO transport error: %v", err)
	}
	if reply.Verb != "ERROR" {
		t.Errorf("second HELLO verb = %s, want ERROR", reply.Verb)
	}
}

func TestUnknownVerbRejected(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "j")
	reply, err := c.call(context.Background(), "BOGUS", wire.NewMessage("BOGUS"))
	if err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if reply.Verb != "ERROR" {
		t.Errorf("verb = %s, want ERROR", reply.Verb)
	}
}
