package attrspace

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"
)

// soakDuration is 30s by default, overridable with TDP_SOAK (e.g.
// TDP_SOAK=5s for a quick run, TDP_SOAK=10m for a long burn-in).
func soakDuration(t *testing.T) time.Duration {
	t.Helper()
	if v := os.Getenv("TDP_SOAK"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad TDP_SOAK %q: %v", v, err)
		}
		return d
	}
	return 30 * time.Second
}

// TestSoakSessionSurvivesRestarts drives a live Session through a
// sustained loop of daemon restarts — alternating crashes and graceful
// drains of an in-process attribute server — while a writer keeps
// putting and a subscribed watcher mirrors. The sessions must never
// give up, retries must stay bounded (no retry storms), and the final
// state must be exactly what the writer last wrote, with the watcher
// resynced to match.
func TestSoakSessionSurvivesRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: skipped with -short")
	}
	dur := soakDuration(t)
	r := newRestartable(t)
	keep := r.space.Join("soak")
	defer keep.Leave()

	cfg := SessionConfig{
		Addr:        r.addr,
		Context:     "soak",
		Backoff:     Backoff{Initial: 5 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: 0.5},
		MaxAttempts: -1,
		ConnectWait: 10 * time.Second,
		Seed:        chaosSeed(t),
	}
	writer := NewSession(cfg)
	defer writer.Close()
	m := newMirror()
	watcher := NewSession(cfg)
	defer watcher.Close()
	watcher.SetEventHandler(m.handle)
	if err := watcher.Subscribe(); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	deadline := time.Now().Add(dur)
	nextRestart := time.Now().Add(400 * time.Millisecond)
	restarts, writes := 0, 0
	var lastVal string
	for time.Now().Before(deadline) {
		writes++
		lastVal = fmt.Sprintf("w%d", writes)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := writer.PutCtx(ctx, "heartbeat", lastVal)
		cancel()
		if err != nil {
			t.Fatalf("PutCtx (write %d, after %d restarts): %v", writes, restarts, err)
		}
		if time.Now().After(nextRestart) {
			if restarts%2 == 0 {
				r.kill() // crash
			} else {
				r.drain(100 * time.Millisecond) // graceful GOAWAY
			}
			time.Sleep(10 * time.Millisecond)
			r.restart()
			restarts++
			nextRestart = time.Now().Add(400 * time.Millisecond)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if restarts < 3 {
		t.Fatalf("only %d restarts in %v; soak did not exercise recovery", restarts, dur)
	}
	if writer.GaveUp() || watcher.GaveUp() {
		t.Fatalf("a session gave up (writer %v, watcher %v)", writer.GaveUp(), watcher.GaveUp())
	}

	// Bounded retries: each restart should cost a handful of retried
	// ops per session, not a storm. The generous constant still fails
	// hard on quadratic/unbounded retry behavior.
	wrec, wret, _ := writer.Stats()
	if wrec < int64(restarts) {
		t.Errorf("writer reconnects = %d, want >= %d (one per restart)", wrec, restarts)
	}
	if max := int64(restarts*16 + 32); wret > max {
		t.Errorf("writer retries = %d after %d restarts, want <= %d (retry storm?)", wret, restarts, max)
	}

	// Eventual resync: the watcher converges to the authoritative
	// final value.
	convergeBy := time.Now().Add(10 * time.Second)
	for {
		got, resyncs, violations := m.snapshot()
		if got["heartbeat"] == lastVal && resyncs > 0 {
			if len(violations) > 0 {
				t.Fatalf("per-attr seq went backward %d times: %v", len(violations), violations)
			}
			break
		}
		if time.Now().After(convergeBy) {
			t.Fatalf("watcher never converged: heartbeat=%q want %q (resyncs=%d)", got["heartbeat"], lastVal, resyncs)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The server's own state agrees with the last write.
	if v, _, err := keep.TryGetSeq("heartbeat"); err != nil || v != lastVal {
		t.Errorf("authoritative heartbeat = %q, %v; want %q", v, err, lastVal)
	}
}
