package attrspace

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdp/internal/attr"
)

// blackholeConn simulates a half-dead transport: once cut, writes
// pretend to succeed but go nowhere, so the peer never answers and no
// read error ever surfaces. Only an application-level heartbeat can
// notice this failure mode.
type blackholeConn struct {
	net.Conn
	dead atomic.Bool
}

func (b *blackholeConn) Write(p []byte) (int, error) {
	if b.dead.Load() {
		return len(p), nil
	}
	return b.Conn.Write(p)
}

// TestSessionHeartbeatDetectsHalfDeadConn cuts a session's transport
// without producing any error: absent a heartbeat the session would
// hang on the dead connection forever; with one, the missed PONG
// retires the generation and the next operation rides a fresh
// connection.
func TestSessionHeartbeatDetectsHalfDeadConn(t *testing.T) {
	_, addr := startServer(t)
	var mu sync.Mutex
	var conns []*blackholeConn
	dial := func(a string) (net.Conn, error) {
		c, err := net.Dial("tcp", a)
		if err != nil {
			return nil, err
		}
		bc := &blackholeConn{Conn: c}
		mu.Lock()
		conns = append(conns, bc)
		mu.Unlock()
		return bc, nil
	}
	s := NewSession(SessionConfig{
		Dial: dial, Addr: addr, Context: "job1",
		Heartbeat: 25 * time.Millisecond, Seed: 1,
	})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	if err := s.PutCtx(ctx, "k", "1"); err != nil {
		t.Fatalf("Put: %v", err)
	}

	mu.Lock()
	conns[0].dead.Store(true)
	mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if reconnects, _, _ := s.Stats(); reconnects >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never detected the half-dead connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.PutCtx(ctx, "k", "2"); err != nil {
		t.Fatalf("Put after heartbeat reconnect: %v", err)
	}
	if v, err := s.TryGetCtx(ctx, "k"); err != nil || v != "2" {
		t.Fatalf("TryGet = %q, %v", v, err)
	}
}

// TestChaosLargeResyncHeartbeat is satellite coverage for the
// snapshot-starvation fix: a context big enough that its resync replay
// spans many chunks, a session heartbeating aggressively, and repeated
// crash restarts. The replay must never read as a dead transport (the
// session may not give up), and the watcher must converge on the
// authoritative state with per-attribute seq order intact.
func TestChaosLargeResyncHeartbeat(t *testing.T) {
	seed := chaosSeed(t)
	r := newRestartable(t)
	keep := r.space.Join("big")
	defer keep.Leave()

	// A snapshot around 20 chunks with values bulky enough that the
	// replay is real work.
	val := strings.Repeat("v", 256)
	var pairs []attr.KV
	for i := 0; i < SnapChunkEntries*20; i++ {
		pairs = append(pairs, attr.KV{Key: fmt.Sprintf("big%05d", i), Value: val})
	}
	if err := keep.PutBatch(pairs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}

	m := newMirror()
	s := NewSession(SessionConfig{
		Addr: r.addr, Context: "big",
		Heartbeat: 25 * time.Millisecond, Seed: seed,
		MaxAttempts: -1, ConnectWait: 10 * time.Second,
	})
	defer s.Close()
	s.SetEventHandler(m.handle)
	if err := s.Subscribe(); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	cancel()

	const restarts = 3
	for i := 0; i < restarts; i++ {
		r.kill()
		// Mutate while the watcher is away so every resync has a gap to
		// close on top of the bulk replay.
		if _, err := keep.PutSeq(fmt.Sprintf("gap%d", i), "x"); err != nil {
			t.Fatalf("PutSeq: %v", err)
		}
		if _, err := keep.DeleteSeq(fmt.Sprintf("big%05d", i)); err != nil {
			t.Fatalf("DeleteSeq: %v", err)
		}
		r.restart()
		// Wait until this round's marker attribute lands in the mirror:
		// the resync (bulk replay + gap) completed under the heartbeat.
		deadline := time.Now().Add(15 * time.Second)
		for {
			vals, _, _ := m.snapshot()
			if _, ok := vals[fmt.Sprintf("gap%d", i)]; ok {
				break
			}
			if s.GaveUp() {
				t.Fatal("session gave up during a large resync")
			}
			if time.Now().After(deadline) {
				t.Fatalf("restart %d: resync never delivered the gap marker", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	want, err := keep.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		vals, resyncs, violations := m.snapshot()
		if len(violations) != 0 {
			t.Fatalf("seq violations: %v", violations)
		}
		if sameMap(vals, want) {
			if resyncs < restarts {
				t.Errorf("resyncs = %d, want >= %d", resyncs, restarts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirror never converged: mirror=%d attrs, server=%d", len(vals), len(want))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.GaveUp() {
		t.Fatal("session gave up")
	}
}
