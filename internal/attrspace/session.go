package attrspace

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// API is the attribute-space surface the tdp layer programs against:
// everything Handle (attrops.go, async.go, monitor.go) calls on its
// LASS/CASS connection. Both the raw *Client and the reconnecting
// *Session satisfy it, which is how Config.Resilient swaps one for the
// other without the upper layers noticing.
type API interface {
	Close() error
	Delete(attribute string) error
	Events() <-chan Event
	Get(ctx context.Context, attribute string) (string, error)
	GetAsync(attribute string) (<-chan Result, error)
	GetGlobal(ctx context.Context, attribute string) (string, error)
	PutAsync(attribute, value string) (<-chan Result, error)
	PutBatch(pairs []KV) error
	PutBatchCtx(ctx context.Context, pairs []KV) error
	PutBatchGlobal(ctx context.Context, pairs []KV) error
	PutCtx(ctx context.Context, attribute, value string) error
	PutGlobal(ctx context.Context, attribute, value string) error
	SetTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer)
	Snapshot() (map[string]string, error)
	Subscribe() error
	TryGet(attribute string) (string, error)
	TryGetGlobal(ctx context.Context, attribute string) (string, error)
}

var (
	_ API = (*Client)(nil)
	_ API = (*Session)(nil)
)

// ErrSessionClosed is returned for operations on a Session after Close.
var ErrSessionClosed = errors.New("attrspace: session closed")

// ErrSessionGaveUp reports that the reconnect loop exhausted its attempt
// budget; the session is terminal and every subsequent operation fails
// with this error.
var ErrSessionGaveUp = errors.New("attrspace: session gave up reconnecting")

// Backoff is the reconnect schedule: delays start at Initial, multiply
// by Factor up to Max, and each is randomized by ±Jitter/2 of itself so
// a fleet of daemons reconnecting after a server restart does not
// stampede in lockstep.
type Backoff struct {
	Initial time.Duration
	Max     time.Duration
	Factor  float64
	Jitter  float64 // fraction of the delay randomized, 0..1
}

// DefaultBackoff is the schedule used when SessionConfig.Backoff is
// zero, after applying the TDP_RETRY_INITIAL / TDP_RETRY_MAX duration
// env knobs (the deployment-level override an operator reaches for
// without rebuilding the tool).
func DefaultBackoff() Backoff {
	b := Backoff{Initial: 50 * time.Millisecond, Max: 2 * time.Second, Factor: 2.0, Jitter: 0.5}
	if v := os.Getenv("TDP_RETRY_INITIAL"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			b.Initial = d
		}
	}
	if v := os.Getenv("TDP_RETRY_MAX"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			b.Max = d
		}
	}
	if b.Max < b.Initial {
		b.Max = b.Initial
	}
	return b
}

// DefaultMaxAttempts is the consecutive-failure budget of one outage
// when SessionConfig.MaxAttempts is zero and TDP_RETRY_ATTEMPTS unset.
const DefaultMaxAttempts = 8

// SessionConfig configures a reconnecting Session.
type SessionConfig struct {
	Dial    DialFunc // nil = TCPDial
	Addr    string
	Context string

	// Backoff is the reconnect schedule; zero value = DefaultBackoff().
	Backoff Backoff
	// MaxAttempts bounds consecutive failed connect attempts in one
	// outage before the session turns terminal (ErrSessionGaveUp).
	// 0 = DefaultMaxAttempts (or TDP_RETRY_ATTEMPTS), negative = retry
	// forever. The counter resets on every successful connect.
	MaxAttempts int
	// ConnectWait bounds how long one operation waits for a live
	// connection before failing with ErrConnLost. 0 = 15s, negative =
	// wait as long as the caller's context allows.
	ConnectWait time.Duration
	// DialTimeout bounds each individual dial + HELLO round trip.
	// 0 = 3s.
	DialTimeout time.Duration
	// Heartbeat, when > 0, pings the server at this interval on every
	// live connection and declares the connection lost when a ping gets
	// no reply within one interval — catching half-dead transports that
	// never produce a read error. Silently inactive against servers
	// that did not grant the ping capability. 0 = disabled.
	Heartbeat time.Duration
	// Seed seeds the jitter RNG so tests are deterministic; 0 seeds
	// from the clock.
	Seed int64

	Registry *telemetry.Registry // session.* counters; nil = private registry
	Tracer   *telemetry.Tracer   // per-op spans, passed through to each Client
	Logger   *telemetry.Logger   // reconnect diagnostics; nil discards
}

// seqMark is the session's memory of one attribute: the newest write
// seq it has delivered and whether that write was a delete. It is what
// lets a post-reconnect snapshot diff tell "missed update" from
// "already seen" and "missed delete" from "never existed".
type seqMark struct {
	seq  uint64
	dead bool
}

// Session is a self-healing connection to a LASS or CASS: a Client
// that, when the transport dies, reconnects with jittered exponential
// backoff, re-issues HELLO, replays its subscription, resynchronizes
// its event stream from a versioned snapshot, and retries the
// interrupted operation under the caller's deadline. Idempotent reads
// retry blindly; mutations whose ack was lost are seq-guarded — the
// session probes the attribute on the new connection and only re-sends
// when the probe shows its write is not (or no longer) there, so a
// retried put can never clobber a newer value with a stale one.
//
// Consumers of Events() additionally see Event{Resync: true} markers:
// a bare Op "resync" event first (the gap announcement), then
// synthetic put/delete events replaying what the snapshot diff proved
// was missed. Per-attribute event order stays monotonic in seq across
// any number of reconnects.
type Session struct {
	cfg         SessionConfig
	maxAttempts int

	mu     sync.Mutex
	cur    *Client       // nil while disconnected
	gen    uint64        // bumped on every successful install
	ready  chan struct{} // closed while cur != nil; replaced on loss
	err    error         // terminal error; nil while alive
	subbed bool
	rng    *rand.Rand

	done     chan struct{} // closed exactly once on terminal failure/Close
	doneOnce sync.Once

	// emitMu serializes everything that delivers events downstream —
	// live pushes, resync replays, channel close — so consumers observe
	// one totally-ordered stream and per-attr seq checks are atomic
	// with delivery.
	emitMu   sync.Mutex
	seqs     map[string]seqMark
	ctxSeq   uint64 // newest context seq delivered to consumers
	events   chan Event
	evClosed bool
	handler  func(Event)

	// maxSeq is the newest context seq this session has observed from
	// any ack, reply, or event: the baseline for seq-guarded retries.
	maxSeq atomic.Uint64

	everConnected bool

	cReconnects *telemetry.Counter
	cRetries    *telemetry.Counter
	cGaveUp     *telemetry.Counter
	cResyncs    *telemetry.Counter
}

// NewSession starts a session toward addr/context. It returns
// immediately: the first connection is established by the background
// reconnect loop, and operations issued before it lands simply wait
// (bounded by ConnectWait / their context). Use WaitReady to block
// until the session is live — tdp.Init does, so a missing daemon still
// surfaces as a prompt error when the caller wants one.
func NewSession(cfg SessionConfig) *Session {
	if cfg.Backoff == (Backoff{}) {
		cfg.Backoff = DefaultBackoff()
	}
	if cfg.Backoff.Factor < 1 {
		cfg.Backoff.Factor = 2.0
	}
	if cfg.Backoff.Max < cfg.Backoff.Initial {
		cfg.Backoff.Max = cfg.Backoff.Initial
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
		if v := os.Getenv("TDP_RETRY_ATTEMPTS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n != 0 {
				cfg.MaxAttempts = n
			}
		}
	}
	if cfg.ConnectWait == 0 {
		cfg.ConnectWait = 15 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &Session{
		cfg:         cfg,
		maxAttempts: cfg.MaxAttempts,
		ready:       make(chan struct{}),
		done:        make(chan struct{}),
		seqs:        make(map[string]seqMark),
		events:      make(chan Event, 256),
		rng:         rand.New(rand.NewSource(seed)),
	}
	s.bindCounters(cfg.Registry)
	go s.connectLoop()
	return s
}

func (s *Session) bindCounters(reg *telemetry.Registry) {
	s.cReconnects = reg.Counter("session.reconnects")
	s.cRetries = reg.Counter("session.retries")
	s.cGaveUp = reg.Counter("session.gaveup")
	s.cResyncs = reg.Counter("session.resyncs")
}

func (s *Session) log() *telemetry.Logger { return s.cfg.Logger }

// Stats reports the session's lifetime resilience counters:
// reconnects (successful re-establishments after the first connect),
// retries (operations re-issued after a transport failure), and
// resyncs (snapshot-diff replays after a reconnect).
func (s *Session) Stats() (reconnects, retries, resyncs int64) {
	return s.cReconnects.Value(), s.cRetries.Value(), s.cResyncs.Value()
}

// GaveUp reports whether the reconnect loop exhausted its budget and
// turned the session terminal.
func (s *Session) GaveUp() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return errors.Is(s.err, ErrSessionGaveUp)
}

// Up reports whether the session currently holds a live connection.
// False means disconnected: either still dialing the first connection
// or inside a reconnect outage. The shard router uses this as its
// liveness signal.
func (s *Session) Up() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur != nil && s.err == nil
}

// HasConnected reports whether the session has ever held a live
// connection. Up()==false before the first connect means "not yet",
// after it means "lost" — callers that fail fast on outages (the shard
// router) use the distinction to stay permissive during startup.
func (s *Session) HasConnected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.everConnected
}

// WaitReady blocks until the session has a live connection, the
// session turns terminal, or ctx expires.
func (s *Session) WaitReady(ctx context.Context) error {
	for {
		s.mu.Lock()
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return err
		}
		if s.cur != nil {
			s.mu.Unlock()
			return nil
		}
		ready := s.ready
		s.mu.Unlock()
		select {
		case <-ready:
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// jitterDelay randomizes one backoff delay by ±Jitter/2.
func (s *Session) jitterDelay(d time.Duration) time.Duration {
	j := s.cfg.Backoff.Jitter
	if j <= 0 {
		return d
	}
	s.mu.Lock()
	f := s.rng.Float64()
	s.mu.Unlock()
	out := time.Duration(float64(d) * (1 + j*(f-0.5)))
	if out <= 0 {
		out = d
	}
	return out
}

// connectLoop is the single-flight reconnect driver: exactly one runs
// per outage (spawned by NewSession and by lost()), and it exits as
// soon as a connection is installed, the session closes, or the
// attempt budget runs dry.
func (s *Session) connectLoop() {
	delay := s.cfg.Backoff.Initial
	var lastErr error
	for attempt := 1; ; attempt++ {
		s.mu.Lock()
		dead := s.err != nil
		s.mu.Unlock()
		if dead {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DialTimeout)
		c, err := DialCtx(ctx, s.cfg.Dial, s.cfg.Addr, s.cfg.Context)
		cancel()
		if err == nil {
			if s.install(c) {
				return
			}
			// install failed: session closed underneath us, or the
			// subscription replay died — either way count the attempt.
			err = lastErr
			if err == nil {
				err = ErrConnLost
			}
		}
		lastErr = err
		s.log().Debugf("attrspace: session connect %s attempt %d failed: %v", s.cfg.Addr, attempt, err)
		if s.maxAttempts > 0 && attempt >= s.maxAttempts {
			s.cGaveUp.Inc()
			s.log().Errorf("attrspace: session %s gave up after %d attempts: %v", s.cfg.Addr, attempt, err)
			s.fail(fmt.Errorf("%w (%d attempts, last error: %v)", ErrSessionGaveUp, attempt, err))
			return
		}
		t := time.NewTimer(s.jitterDelay(delay))
		select {
		case <-t.C:
		case <-s.done:
			t.Stop()
			return
		}
		delay = time.Duration(float64(delay) * s.cfg.Backoff.Factor)
		if delay > s.cfg.Backoff.Max {
			delay = s.cfg.Backoff.Max
		}
	}
}

// install publishes a freshly-dialed client as the current connection:
// bump the generation, replay the subscription if one is active, wire
// the loss trigger, then resynchronize the event stream. Returns false
// when the client could not be installed (session closed, or the
// subscription replay failed) — the connect loop counts that as a
// failed attempt.
func (s *Session) install(c *Client) bool {
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		c.Close()
		return false
	}
	s.gen++
	gen := s.gen
	subbed := s.subbed
	reconnect := s.everConnected
	s.mu.Unlock()

	// The epoch baseline must predate the new subscription: once SUB is
	// live, fresh events advance ctxSeq past whatever snapshot resync
	// will fetch, and comparing against the moving value would misread
	// that race as a context restart.
	s.emitMu.Lock()
	preSeq := s.ctxSeq
	s.emitMu.Unlock()
	var gate *evGate
	if subbed {
		// Handler before SUB: no pushed event can slip past delivery.
		// The gate holds live events back until the resync below has
		// re-established the seq epoch (see evGate).
		gate = &evGate{s: s}
		c.SetEventHandler(gate.handle)
		if err := c.Subscribe(); err != nil {
			c.Close()
			return false
		}
	}
	if s.cfg.Registry != nil || s.cfg.Tracer != nil {
		c.SetTelemetry(s.cfg.Registry, s.cfg.Tracer)
	}

	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		c.Close()
		return false
	}
	s.cur = c
	s.everConnected = true
	close(s.ready)
	s.mu.Unlock()

	if reconnect {
		s.cReconnects.Inc()
		s.log().Infof("attrspace: session reconnected to %s (gen %d)", s.cfg.Addr, gen)
	}
	// The loss trigger arms after publication: if the client is already
	// dead, OnClose fires immediately and tears this generation down.
	c.OnClose(func(error) { s.lost(gen, c) })
	// The heartbeat starts before the resync on purpose: pings running
	// concurrently with a large snapshot replay are exactly the traffic
	// the server's chunked replies exist to keep answering.
	if s.cfg.Heartbeat > 0 {
		go s.heartbeatLoop(gen, c)
	}
	if subbed {
		// SUB is live on the new connection; diff a versioned snapshot
		// against what consumers have already seen and replay the gap,
		// then release the live events the gate held back across the
		// fetch. Released even when the resync itself failed: in the
		// common same-epoch case the held events are fine as-is, and in
		// the epoch-restart case the failed client re-enters the
		// reconnect loop and the next install resyncs again.
		s.resync(c, preSeq)
		gate.release()
	}
	return true
}

// lost retires generation gen: the first caller (the client's OnClose
// hook, or an operation that saw a retryable error) clears the current
// client and spawns the next connect loop; later callers for the same
// generation are no-ops.
func (s *Session) lost(gen uint64, c *Client) {
	s.mu.Lock()
	if s.err != nil || s.gen != gen || s.cur != c {
		s.mu.Unlock()
		return
	}
	s.cur = nil
	s.ready = make(chan struct{})
	s.mu.Unlock()
	c.Close()
	s.log().Debugf("attrspace: session lost connection to %s (gen %d)", s.cfg.Addr, gen)
	go s.connectLoop()
}

// fail turns the session terminal exactly once.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	c := s.cur
	s.cur = nil
	s.mu.Unlock()
	if c != nil {
		c.Close()
	}
	s.doneOnce.Do(func() { close(s.done) })
	s.emitMu.Lock()
	if !s.evClosed {
		s.evClosed = true
		close(s.events)
	}
	s.emitMu.Unlock()
}

// Close tears the session down. Idempotent.
func (s *Session) Close() error {
	s.fail(ErrSessionClosed)
	return nil
}

// client returns the current connection, waiting through an outage if
// necessary. The wait is bounded by ctx and by ConnectWait, whichever
// ends first.
func (s *Session) client(ctx context.Context) (*Client, uint64, error) {
	var bound <-chan time.Time
	if s.cfg.ConnectWait > 0 {
		t := time.NewTimer(s.cfg.ConnectWait)
		defer t.Stop()
		bound = t.C
	}
	for {
		s.mu.Lock()
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return nil, 0, err
		}
		if s.cur != nil {
			c, gen := s.cur, s.gen
			s.mu.Unlock()
			return c, gen, nil
		}
		ready := s.ready
		s.mu.Unlock()
		select {
		case <-ready:
		case <-s.done:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-bound:
			return nil, 0, fmt.Errorf("%w: no connection to %s after %v", ErrConnLost, s.cfg.Addr, s.cfg.ConnectWait)
		}
	}
}

// noteSeq folds a context seq observed from an ack or reply into the
// retry baseline.
func (s *Session) noteSeq(seq uint64) {
	for {
		cur := s.maxSeq.Load()
		if seq <= cur || s.maxSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Event stream: live delivery, loss, and resync.

// evGate holds one connection's live events back until the
// post-reconnect resync has re-established the seq epoch. Between SUB
// going live and the resync snapshot being applied, deliver would judge
// incoming events against the *previous* connection's per-attribute seq
// marks. Usually that is exactly right — such events are replays or
// fresh writes with higher seqs — but when the context was destroyed
// and recreated while the session was away, the new epoch's seqs
// restart from 1: every live event compares stale against the old
// marks, and the resync snapshot (fetched at a moment that predates
// them) cannot replay them either, so real writes would be dropped for
// good. Holding delivery until resync has run lets applyFullResync
// detect the epoch restart (ctxSeq < preSeq) and reset the marks first;
// the held events then replay against the correct epoch. The buffer is
// bounded in practice by the resync RPC duration (cfg.DialTimeout).
type evGate struct {
	s    *Session
	mu   sync.Mutex
	open bool
	pend []Event
}

func (g *evGate) handle(ev Event) {
	g.mu.Lock()
	if !g.open {
		g.pend = append(g.pend, ev)
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	g.s.deliver(ev)
}

// release flushes the held events in arrival order and switches the
// gate to pass-through. The mutex is held across the flush so an event
// arriving concurrently cannot overtake the backlog.
func (g *evGate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.open = true
	for _, ev := range g.pend {
		g.s.deliver(ev)
	}
	g.pend = nil
}

// deliver forwards one server-pushed event downstream, holding the
// per-attribute monotonic-seq invariant across reconnects: an event
// whose seq is not newer than what consumers have already seen for
// that attribute is dropped (it is a replay straddling a reconnect).
func (s *Session) deliver(ev Event) {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if ev.Op == "destroy" {
		// The context itself is gone: every per-attr mark is from a
		// seq epoch that no longer exists.
		s.seqs = make(map[string]seqMark)
		s.ctxSeq = 0
		s.forwardLocked(ev)
		return
	}
	if ev.Seq != 0 {
		if mark, ok := s.seqs[ev.Attr]; ok && ev.Seq <= mark.seq {
			return
		}
		s.seqs[ev.Attr] = seqMark{seq: ev.Seq, dead: ev.Op == "delete"}
		if ev.Seq > s.ctxSeq {
			s.ctxSeq = ev.Seq
		}
		s.noteSeq(ev.Seq)
	}
	s.forwardLocked(ev)
}

// forwardLocked hands an event to the consumer; emitMu held. A handler
// sees every event synchronously; the channel drops oldest under a
// lagging consumer, exactly like Client.Events.
func (s *Session) forwardLocked(ev Event) {
	if s.evClosed {
		return
	}
	if s.handler != nil {
		s.handler(ev)
		return
	}
	select {
	case s.events <- ev:
	default:
		select {
		case <-s.events:
		default:
		}
		select {
		case s.events <- ev:
		default:
		}
	}
}

// resync closes the event gap a reconnect opened: fetch a versioned
// snapshot, announce the gap with a bare Resync marker, then replay the
// diff — puts for attributes whose snapshot seq is newer than what
// consumers saw, deletes for attributes consumers believe live that the
// snapshot no longer holds. Stale snapshot entries (an event from the
// new subscription already delivered something newer) are skipped, so
// the per-attr seq order never goes backward.
//
// preSeq is the newest context seq delivered before this reconnect: a
// snapshot whose context seq is below it means the context was
// destroyed and recreated while we were away (seqs restarted), so the
// old epoch's marks are meaningless — consumers get a synthetic
// destroy, then the snapshot replayed as the new truth.
func (s *Session) resync(c *Client, preSeq uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DialTimeout)
	defer cancel()
	if preSeq > 0 {
		ops, full, ctxSeq, err := c.SnapshotDelta(ctx, preSeq)
		switch {
		case err == nil && full != nil:
			// The server's change log was compacted past our gap and it
			// shipped the whole context instead.
			s.applyFullResync(full, ctxSeq, preSeq)
			return
		case err == nil && ctxSeq >= preSeq:
			s.applyDelta(ops, ctxSeq)
			return
		case err == nil:
			// ctxSeq < preSeq: the context was destroyed and recreated
			// while we were away. The delta is from the wrong seq epoch;
			// only a full snapshot can establish the new one.
		case errors.Is(err, errSNAPDUnsupported):
			// Pre-v2 server: fall through to the full snapshot path.
		default:
			// A transport error here fails the client, which re-triggers
			// the reconnect loop — the next install resyncs again.
			s.log().Debugf("attrspace: session delta resync failed: %v", err)
			return
		}
	}
	snap, ctxSeq, err := c.SnapshotSeq(ctx)
	if err != nil {
		s.log().Debugf("attrspace: session resync snapshot failed: %v", err)
		return
	}
	s.applyFullResync(snap, ctxSeq, preSeq)
}

// applyDelta replays a server-shipped mutation log covering the
// reconnect gap: traffic proportional to what was missed, not to the
// context size. Deletes arrive explicitly, so no presence diff against
// consumer state is needed.
func (s *Session) applyDelta(ops []DeltaOp, ctxSeq uint64) {
	s.cResyncs.Inc()
	s.noteSeq(ctxSeq)
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	s.forwardLocked(Event{Op: "resync", Seq: ctxSeq, Resync: true})
	for _, op := range ops {
		if mark, ok := s.seqs[op.Attr]; ok && op.Seq <= mark.seq {
			continue // the new subscription already delivered this (or newer)
		}
		s.seqs[op.Attr] = seqMark{seq: op.Seq, dead: op.Delete}
		evOp := "put"
		if op.Delete {
			evOp = "delete"
		}
		s.forwardLocked(Event{Attr: op.Attr, Value: op.Value, Op: evOp, Seq: op.Seq, Resync: true})
	}
	if ctxSeq > s.ctxSeq {
		s.ctxSeq = ctxSeq
	}
}

// applyFullResync diffs a complete versioned snapshot against what
// consumers have seen and replays the difference (see resync).
func (s *Session) applyFullResync(snap map[string]Versioned, ctxSeq, preSeq uint64) {
	s.cResyncs.Inc()
	s.noteSeq(ctxSeq)
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	// Gap announcement first: consumers holding derived state (caches,
	// monitors) learn events may have been missed before the replay.
	s.forwardLocked(Event{Op: "resync", Seq: ctxSeq, Resync: true})
	if ctxSeq < preSeq {
		// New seq epoch: drop every mark and tell consumers the old
		// context is gone before replaying the new one.
		s.seqs = make(map[string]seqMark)
		s.ctxSeq = 0
		s.forwardLocked(Event{Op: "destroy", Resync: true})
	}
	for k, v := range snap {
		if mark, ok := s.seqs[k]; ok && v.Seq <= mark.seq {
			continue // consumers already saw this write (or newer)
		}
		s.seqs[k] = seqMark{seq: v.Seq}
		s.forwardLocked(Event{Attr: k, Value: v.Value, Op: "put", Seq: v.Seq, Resync: true})
	}
	for k, mark := range s.seqs {
		if mark.dead {
			continue
		}
		if _, ok := snap[k]; ok {
			continue
		}
		// Consumers think k is live; the snapshot says it is gone — the
		// delete happened in the gap. Version the synthetic delete with
		// the context seq so a later live put supersedes it.
		s.seqs[k] = seqMark{seq: ctxSeq, dead: true}
		s.forwardLocked(Event{Attr: k, Op: "delete", Seq: ctxSeq, Resync: true})
	}
	if ctxSeq > s.ctxSeq {
		s.ctxSeq = ctxSeq
	}
}

// heartbeatLoop probes one connection generation with periodic PINGs,
// retiring it through the normal loss path when a probe times out. It
// runs alongside everything else the connection does — including a
// chunked snapshot replay, which is why large resyncs no longer read
// as dead transports.
func (s *Session) heartbeatLoop(gen uint64, c *Client) {
	if !c.HasCap(wire.CapPing) {
		return
	}
	t := time.NewTicker(s.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-s.done:
			return
		}
		s.mu.Lock()
		live := s.err == nil && s.gen == gen && s.cur == c
		s.mu.Unlock()
		if !live {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Heartbeat)
		err := c.Ping(ctx)
		cancel()
		if err != nil {
			s.log().Debugf("attrspace: session heartbeat to %s failed (gen %d): %v", s.cfg.Addr, gen, err)
			s.lost(gen, c)
			return
		}
	}
}

// Events returns the session's event channel. Unlike Client.Events it
// survives reconnects; it closes only when the session turns terminal.
func (s *Session) Events() <-chan Event { return s.events }

// SetEventHandler installs a synchronous per-event callback replacing
// the Events channel, with the same contract as Client.SetEventHandler
// — plus delivery of the session's synthetic Resync events. The
// handler must not call back into this session's blocking operations.
func (s *Session) SetEventHandler(fn func(Event)) {
	s.emitMu.Lock()
	s.handler = fn
	s.emitMu.Unlock()
}

// Subscribe starts event push and keeps it running: the subscription
// is replayed automatically on every reconnect, with a resync filling
// whatever the outage dropped.
func (s *Session) Subscribe() error {
	s.mu.Lock()
	if s.subbed {
		s.mu.Unlock()
		return nil
	}
	s.subbed = true
	s.mu.Unlock()
	return s.retry(context.Background(), func(c *Client) error {
		c.SetEventHandler(func(ev Event) { s.deliver(ev) })
		return c.Subscribe()
	})
}

// ---------------------------------------------------------------------------
// Retry plumbing.

// retry runs op against the current connection, re-issuing it after
// transport failures until it settles, the caller's ctx expires, or the
// session turns terminal. Only for idempotent operations — mutations go
// through the seq-guarded paths below.
func (s *Session) retry(ctx context.Context, op func(*Client) error) error {
	for {
		c, gen, err := s.client(ctx)
		if err != nil {
			return err
		}
		err = op(c)
		if err == nil || !IsRetryable(err) {
			return err
		}
		s.cRetries.Inc()
		s.lost(gen, c)
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
}

// retryVal is retry for operations returning a value.
func retryVal[T any](s *Session, ctx context.Context, op func(*Client) (T, error)) (T, error) {
	var out T
	err := s.retry(ctx, func(c *Client) error {
		var e error
		out, e = op(c)
		return e
	})
	return out, err
}

// putOutcome is what a post-failure probe concluded about an
// interrupted mutation.
type putOutcome int

const (
	outcomeResend     putOutcome = iota // no evidence the write landed: re-send
	outcomeLanded                       // the write is present: done
	outcomeSuperseded                   // a newer write exists: re-sending would clobber it
)

// probePut decides an interrupted put's fate by reading the attribute
// on the (new) connection and comparing seqs against base — the newest
// context seq the session had observed before issuing the put:
//
//	value == ours                → landed (re-sending is at worst a no-op)
//	absent                       → not landed (or landed and deleted —
//	                               single-writer attributes make this
//	                               the put that simply never arrived)
//	value != ours, seq <= base   → the pre-put value: not landed
//	value != ours, seq >  base   → someone wrote after us; treat our
//	                               put as superseded rather than
//	                               re-sending a stale value over it
func (s *Session) probePut(ctx context.Context, c *Client, attribute, value string, base uint64) (putOutcome, error) {
	v, seq, err := c.TryGetV(ctx, attribute)
	if errors.Is(err, ErrNotFound) {
		return outcomeResend, nil
	}
	if err != nil {
		return outcomeResend, err
	}
	s.noteSeq(seq)
	if v == value {
		return outcomeLanded, nil
	}
	if seq > base {
		return outcomeSuperseded, nil
	}
	return outcomeResend, nil
}

// putGuarded is the seq-guarded retry loop shared by every
// ack-carrying mutation: issue the op; when the transport dies with
// the ack in flight (fate unknown), probe before re-sending so a
// retried write never overwrites a newer one with a stale value.
func (s *Session) putGuarded(ctx context.Context, issue func(*Client) (uint64, error),
	probe func(context.Context, *Client, uint64) (putOutcome, error)) error {
	base := s.maxSeq.Load()
	for {
		c, gen, err := s.client(ctx)
		if err != nil {
			return err
		}
		seq, err := issue(c)
		if err == nil {
			s.noteSeq(seq)
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
		s.cRetries.Inc()
		s.lost(gen, c)
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		// Fate unknown: probe on a fresh connection before re-sending.
		outcome, err := retryVal(s, ctx, func(c *Client) (putOutcome, error) {
			return probe(ctx, c, base)
		})
		if err != nil {
			return err
		}
		if outcome != outcomeResend {
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// The API surface.

// Put stores attribute = value, surviving transport failures.
func (s *Session) Put(attribute, value string) error {
	return s.PutCtx(context.Background(), attribute, value)
}

// PutCtx is Put under a caller deadline. An ack lost to a connection
// failure is resolved by probing the attribute on the next connection
// (see probePut); the retried put never clobbers a newer value.
func (s *Session) PutCtx(ctx context.Context, attribute, value string) error {
	return s.putGuarded(ctx,
		func(c *Client) (uint64, error) { return c.PutV(ctx, attribute, value) },
		func(ctx context.Context, c *Client, base uint64) (putOutcome, error) {
			return s.probePut(ctx, c, attribute, value, base)
		})
}

// PutBatch stores every pair in order, surviving transport failures.
func (s *Session) PutBatch(pairs []KV) error {
	return s.PutBatchCtx(context.Background(), pairs)
}

// PutBatchCtx is PutBatch under a caller deadline. A batch whose ack
// was lost is probed through its final pair — the batch applies in
// order, so the last pair present with a post-base seq means the whole
// batch landed.
func (s *Session) PutBatchCtx(ctx context.Context, pairs []KV) error {
	if len(pairs) == 0 {
		return nil
	}
	last := pairs[len(pairs)-1]
	return s.putGuarded(ctx,
		func(c *Client) (uint64, error) { return c.PutBatchV(ctx, pairs) },
		func(ctx context.Context, c *Client, base uint64) (putOutcome, error) {
			return s.probePut(ctx, c, last.Key, last.Value, base)
		})
}

// Delete removes an attribute, surviving transport failures.
func (s *Session) Delete(attribute string) error {
	return s.DeleteCtx(context.Background(), attribute)
}

// DeleteCtx is Delete under a caller deadline. A delete whose ack was
// lost re-sends only while the attribute still holds a value from
// before the call (seq <= base): absence means it landed, and a newer
// value means re-deleting would destroy a write that superseded us.
func (s *Session) DeleteCtx(ctx context.Context, attribute string) error {
	return s.putGuarded(ctx,
		func(c *Client) (uint64, error) { return c.DeleteV(ctx, attribute) },
		func(ctx context.Context, c *Client, base uint64) (putOutcome, error) {
			_, seq, err := c.TryGetV(ctx, attribute)
			if errors.Is(err, ErrNotFound) {
				return outcomeLanded, nil
			}
			if err != nil {
				return outcomeResend, err
			}
			s.noteSeq(seq)
			if seq > base {
				return outcomeSuperseded, nil
			}
			return outcomeResend, nil
		})
}

// Get blocks until the attribute exists, retrying across reconnects;
// cancel via ctx.
func (s *Session) Get(ctx context.Context, attribute string) (string, error) {
	return retryVal(s, ctx, func(c *Client) (string, error) {
		v, seq, err := c.GetV(ctx, attribute)
		if err == nil {
			s.noteSeq(seq)
		}
		return v, err
	})
}

// TryGet returns the current value without blocking, retrying across
// reconnects; ErrNotFound when absent.
func (s *Session) TryGet(attribute string) (string, error) {
	return s.TryGetCtx(context.Background(), attribute)
}

// TryGetCtx is TryGet under a caller deadline.
func (s *Session) TryGetCtx(ctx context.Context, attribute string) (string, error) {
	return retryVal(s, ctx, func(c *Client) (string, error) {
		v, seq, err := c.TryGetV(ctx, attribute)
		if err == nil {
			s.noteSeq(seq)
		}
		return v, err
	})
}

// GetAsync issues a blocking GET whose result is delivered on the
// returned channel, retried across reconnects like Get.
func (s *Session) GetAsync(attribute string) (<-chan Result, error) {
	out := make(chan Result, 1)
	go func() {
		v, err := s.Get(context.Background(), attribute)
		out <- Result{Attr: attribute, Value: v, Err: err}
	}()
	return out, nil
}

// PutAsync issues a put whose acknowledgement is delivered on the
// returned channel, with the same seq-guarded retry as PutCtx.
func (s *Session) PutAsync(attribute, value string) (<-chan Result, error) {
	out := make(chan Result, 1)
	go func() {
		err := s.PutCtx(context.Background(), attribute, value)
		out <- Result{Attr: attribute, Value: value, Err: err}
	}()
	return out, nil
}

// Snapshot dumps the context, retrying across reconnects.
func (s *Session) Snapshot() (map[string]string, error) {
	return retryVal(s, context.Background(), func(c *Client) (map[string]string, error) {
		return c.Snapshot()
	})
}

// SnapshotSeq dumps the context with per-attribute write seqs,
// retrying across reconnects.
func (s *Session) SnapshotSeq(ctx context.Context) (map[string]Versioned, uint64, error) {
	type versioned struct {
		snap map[string]Versioned
		seq  uint64
	}
	out, err := retryVal(s, ctx, func(c *Client) (versioned, error) {
		snap, seq, err := c.SnapshotSeq(ctx)
		return versioned{snap, seq}, err
	})
	return out.snap, out.seq, err
}

// PutGlobal stores a global (CASS) attribute through this LASS,
// surviving transport failures; a lost ack is resolved by re-reading
// the global value (the G* protocol carries no seqs, so the guard is
// by value: present-and-equal means landed).
func (s *Session) PutGlobal(ctx context.Context, attribute, value string) error {
	return s.putGuarded(ctx,
		func(c *Client) (uint64, error) { return 0, c.PutGlobal(ctx, attribute, value) },
		func(ctx context.Context, c *Client, _ uint64) (putOutcome, error) {
			v, err := c.TryGetGlobal(ctx, attribute)
			if errors.Is(err, ErrNotFound) {
				return outcomeResend, nil
			}
			if err != nil {
				return outcomeResend, err
			}
			if v == value {
				return outcomeLanded, nil
			}
			return outcomeResend, nil
		})
}

// PutBatchGlobal stores a batch of global attributes, surviving
// transport failures (probed through the final pair, like
// PutBatchCtx).
func (s *Session) PutBatchGlobal(ctx context.Context, pairs []KV) error {
	if len(pairs) == 0 {
		return nil
	}
	last := pairs[len(pairs)-1]
	return s.putGuarded(ctx,
		func(c *Client) (uint64, error) { return 0, c.PutBatchGlobal(ctx, pairs) },
		func(ctx context.Context, c *Client, _ uint64) (putOutcome, error) {
			v, err := c.TryGetGlobal(ctx, last.Key)
			if errors.Is(err, ErrNotFound) {
				return outcomeResend, nil
			}
			if err != nil {
				return outcomeResend, err
			}
			if v == last.Value {
				return outcomeLanded, nil
			}
			return outcomeResend, nil
		})
}

// GetGlobal blocks until the global attribute exists, retrying across
// reconnects.
func (s *Session) GetGlobal(ctx context.Context, attribute string) (string, error) {
	return retryVal(s, ctx, func(c *Client) (string, error) {
		return c.GetGlobal(ctx, attribute)
	})
}

// TryGetGlobal returns the global attribute's value without blocking,
// retrying across reconnects.
func (s *Session) TryGetGlobal(ctx context.Context, attribute string) (string, error) {
	return retryVal(s, ctx, func(c *Client) (string, error) {
		return c.TryGetGlobal(ctx, attribute)
	})
}

// SnapshotGlobalMany snapshots several global contexts in one GSNAPM
// scatter-gather, retrying across reconnects (reads are idempotent).
func (s *Session) SnapshotGlobalMany(ctx context.Context, contexts []string) (map[string]map[string]string, error) {
	return retryVal(s, ctx, func(c *Client) (map[string]map[string]string, error) {
		return c.SnapshotGlobalMany(ctx, contexts)
	})
}

// GlobalContexts lists the context names alive across the global
// space, retrying across reconnects.
func (s *Session) GlobalContexts(ctx context.Context) ([]string, error) {
	return retryVal(s, ctx, func(c *Client) ([]string, error) {
		return c.GlobalContexts(ctx)
	})
}

// SetTelemetry installs the registry the session's resilience counters
// (session.reconnects / retries / gaveup / resyncs) count into, and
// the registry + tracer handed to every underlying client connection.
func (s *Session) SetTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	s.mu.Lock()
	if reg != nil {
		s.cfg.Registry = reg
	}
	if tracer != nil {
		s.cfg.Tracer = tracer
	}
	reg, tracer = s.cfg.Registry, s.cfg.Tracer
	c := s.cur
	s.mu.Unlock()
	if reg != nil {
		s.bindCounters(reg)
	}
	if c != nil {
		c.SetTelemetry(reg, tracer)
	}
}
