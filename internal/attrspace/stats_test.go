package attrspace

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"tdp/internal/proxy"
	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// TestStatsRoundTrip exercises the STATS verb over a real TCP
// connection: after a handful of operations the snapshot must show
// non-zero per-verb counters, populated latency histograms, and the
// wire byte counters.
func TestStatsRoundTrip(t *testing.T) {
	srv, addr := startServer(t)
	srv.SetTelemetry(nil, telemetry.NewTracer("lass-under-test"))
	c := dialT(t, addr, "job")

	if err := c.Put("pid", "1234"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := c.TryGet("pid"); err != nil {
		t.Fatalf("TryGet: %v", err)
	}
	if _, err := c.Get(context.Background(), "pid"); err != nil {
		t.Fatalf("Get: %v", err)
	}

	daemon, snap, err := c.ServerStats(context.Background())
	if err != nil {
		t.Fatalf("ServerStats: %v", err)
	}
	if daemon != "lass-under-test" {
		t.Errorf("daemon = %q", daemon)
	}
	for _, counter := range []string{
		"attrspace.ops.hello", "attrspace.ops.put",
		"attrspace.ops.tryget", "attrspace.ops.get",
		"wire.rx.bytes", "wire.tx.bytes",
	} {
		if snap.Counters[counter] == 0 {
			t.Errorf("counter %s = 0, want non-zero (snapshot %v)", counter, snap.Counters)
		}
	}
	h, ok := snap.Histograms["attrspace.latency.put"]
	if !ok || h.Count == 0 {
		t.Fatalf("put latency histogram empty: %+v", snap.Histograms)
	}
	if q := h.Quantile(0.99); q <= 0 {
		t.Errorf("p99 put latency = %g, want > 0", q)
	}

	// STATS itself counts: a second call sees the first.
	_, snap2, err := c.ServerStats(context.Background())
	if err != nil {
		t.Fatalf("second ServerStats: %v", err)
	}
	if snap2.Counters["attrspace.ops.stats"] < 1 {
		t.Errorf("ops.stats = %d, want >= 1", snap2.Counters["attrspace.ops.stats"])
	}
}

// TestStatsScopeTree: with SetStatsChildren installed, STATS
// scope=tree merges child snapshots into the daemon's own — counters
// sum, gauges max, histograms merge — while plain STATS stays local.
func TestStatsScopeTree(t *testing.T) {
	srv, addr := startServer(t)
	srv.SetTelemetry(nil, telemetry.NewTracer("cass-root"))

	childHist := telemetry.NewHistogram([]float64{1, 10})
	childHist.Observe(5)
	srv.SetStatsChildren(func() []telemetry.Snapshot {
		return []telemetry.Snapshot{
			{
				Counters: map[string]int64{"paradyn.samples.sent": 40},
				Gauges:   map[string]int64{"mrnet.stream.depth": 3},
			},
			{
				Counters:   map[string]int64{"paradyn.samples.sent": 2},
				Gauges:     map[string]int64{"mrnet.stream.depth": 7},
				Histograms: map[string]telemetry.HistogramSnapshot{"lat": childHist.Snapshot()},
			},
		}
	})

	c := dialT(t, addr, "job")
	if err := c.Put("pid", "1"); err != nil {
		t.Fatalf("Put: %v", err)
	}

	daemon, tree, err := c.ServerStatsScope(context.Background(), "tree")
	if err != nil {
		t.Fatalf("ServerStatsScope: %v", err)
	}
	if daemon != "cass-root" {
		t.Errorf("daemon = %q", daemon)
	}
	if got := tree.Counters["paradyn.samples.sent"]; got != 42 {
		t.Errorf("tree counter = %d, want 42 (children summed)", got)
	}
	if got := tree.Gauges["mrnet.stream.depth"]; got != 7 {
		t.Errorf("tree gauge = %d, want 7 (max across children)", got)
	}
	if h := tree.Histograms["lat"]; h.Count != 1 {
		t.Errorf("tree hist = %+v, want the child's observation", h)
	}
	// The daemon's own registry is in there too.
	if tree.Counters["attrspace.ops.put"] == 0 {
		t.Error("tree snapshot lost the daemon's own counters")
	}

	// Plain STATS is unaffected by the installed children.
	_, own, err := c.ServerStats(context.Background())
	if err != nil {
		t.Fatalf("ServerStats: %v", err)
	}
	if _, ok := own.Counters["paradyn.samples.sent"]; ok {
		t.Error("plain STATS merged children")
	}

	// Uninstall: scope=tree degrades to the local snapshot.
	srv.SetStatsChildren(nil)
	_, local, err := c.ServerStatsScope(context.Background(), "tree")
	if err != nil {
		t.Fatalf("ServerStatsScope after uninstall: %v", err)
	}
	if _, ok := local.Counters["paradyn.samples.sent"]; ok {
		t.Error("uninstalled children still merged")
	}
}

// TestStatsNeedsNoHello: a monitoring client may probe a server
// without joining any context (and without bumping refcounts).
func TestStatsNeedsNoHello(t *testing.T) {
	srv, addr := startServer(t)
	_ = srv
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	c := &Client{
		wc:      wire.NewConn(raw),
		raw:     raw,
		pending: make(map[string]chan *wire.Message),
		events:  make(chan Event, 4),
	}
	go c.readLoop()
	defer c.Close()
	if _, _, err := c.ServerStats(context.Background()); err != nil {
		t.Fatalf("STATS without HELLO: %v", err)
	}
}

// TestTracePropagationTwoHop reproduces the acceptance scenario: a
// front-end issues one traced operation that touches the CASS
// directly and the LASS through the RM's CONNECT proxy. Both daemons
// must log spans under the same trace ID — the proxy forwards the
// reserved _tid/_sid fields untouched because it splices bytes.
func TestTracePropagationTwoHop(t *testing.T) {
	// CASS beside the front-end.
	cass, cassAddr := startServer(t)
	cass.SetTelemetry(nil, telemetry.NewTracer("cassd"))
	// LASS on the "execution host".
	lass, lassAddr := startServer(t)
	lass.SetTelemetry(nil, telemetry.NewTracer("lassd"))

	// The RM's dynamic CONNECT proxy in front of the LASS.
	px := proxy.NewServer(func(addr string) (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, nil)
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	go px.Serve(pl)
	defer px.Close()
	proxyAddr := pl.Addr().String()

	// Front-end clients: direct to the CASS, proxied to the LASS.
	feTracer := telemetry.NewTracer("frontend")
	cassClient := dialT(t, cassAddr, "job")
	cassClient.SetTelemetry(telemetry.NewRegistry(), feTracer)
	lassClient, err := Dial(func(string) (net.Conn, error) {
		return proxy.DialVia(func(a string) (net.Conn, error) { return net.Dial("tcp", a) }, proxyAddr, lassAddr)
	}, lassAddr, "job")
	if err != nil {
		t.Fatalf("Dial via proxy: %v", err)
	}
	defer lassClient.Close()
	lassClient.SetTelemetry(telemetry.NewRegistry(), feTracer)

	// One logical front-end operation spanning both daemons.
	op := feTracer.StartSpan("frontend.put")
	ctx := telemetry.NewContext(context.Background(), op)
	if err := cassClient.PutCtx(ctx, "frontend_addr", "1.2.3.4:2090"); err != nil {
		t.Fatalf("Put to CASS: %v", err)
	}
	if err := lassClient.PutCtx(ctx, "pid", "77"); err != nil {
		t.Fatalf("Put to LASS via proxy: %v", err)
	}
	op.End()
	tid := op.TraceID()

	cassSpans := cass.Tracer().SpansForTrace(tid)
	lassSpans := lass.Tracer().SpansForTrace(tid)
	if len(cassSpans) != 1 || len(lassSpans) != 1 {
		t.Fatalf("spans for trace %s: cass=%d lass=%d, want 1 each\ncass log: %v\nlass log: %v",
			tid, len(cassSpans), len(lassSpans), cass.Tracer().Spans(), lass.Tracer().Spans())
	}
	if cassSpans[0].Actor != "cassd" || lassSpans[0].Actor != "lassd" {
		t.Errorf("actors = %q, %q", cassSpans[0].Actor, lassSpans[0].Actor)
	}
	if !strings.HasPrefix(cassSpans[0].Name, "attrspace.put") || lassSpans[0].Fields["attr"] != "pid" {
		t.Errorf("span details wrong: %+v / %+v", cassSpans[0], lassSpans[0])
	}
	// The server spans' parents are the per-call client spans, which
	// share the front-end root as their ancestor via the trace ID; the
	// front-end span log holds root + the two client call spans.
	if got := len(feTracer.SpansForTrace(tid)); got != 3 {
		t.Errorf("front-end spans = %d, want 3 (root + 2 client calls)", got)
	}
	for _, rec := range []telemetry.SpanRecord{cassSpans[0], lassSpans[0]} {
		if rec.ParentID == "" {
			t.Errorf("server span has no parent: %+v", rec)
		}
	}
}

// TestUntracedRequestsRecordNoSpans: without _tid on the wire the
// server span log stays empty — tracing is strictly opt-in per
// operation.
func TestUntracedRequestsRecordNoSpans(t *testing.T) {
	srv, addr := startServer(t)
	c := dialT(t, addr, "job")
	if err := c.Put("a", "1"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if n := srv.Tracer().Len(); n != 0 {
		t.Errorf("span log has %d spans, want 0: %v", n, srv.Tracer().Spans())
	}
}

// TestMonitorPublisher: the server self-publishes registry metrics as
// tdp.monitor.* attributes so tools can observe it with a plain Get.
func TestMonitorPublisher(t *testing.T) {
	srv, addr := startServer(t)
	c := dialT(t, addr, "job")
	if err := c.Put("pid", "9"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	stop := srv.StartMonitorPublisher("job", "lass", 10*time.Millisecond)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	v, err := c.Get(ctx, telemetry.MonitorPrefix+"lass.attrspace.ops.put")
	if err != nil {
		t.Fatalf("Get monitor attribute: %v", err)
	}
	if v == "0" || v == "" {
		t.Errorf("published put counter = %q, want non-zero", v)
	}
	// Histogram quantiles publish too.
	if _, err := c.Get(ctx, telemetry.MonitorPrefix+"lass.attrspace.latency.put.p99"); err != nil {
		t.Fatalf("Get monitor p99: %v", err)
	}
}
