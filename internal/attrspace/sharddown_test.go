package attrspace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestShardDownTypedUnderScatterGather pins the degraded-mode error
// contract across the full LASS hop under concurrency: with one CASS
// shard dead, every failure a client sees for that shard's key range —
// routed single-key ops and strict scatter-gather alike — must stay
// errors.Is(ErrShardDown) even though the error crosses the wire as
// ERROR text and is reconstructed client-side, while survivor ranges
// and best-effort listings keep working with no failures at all.
func TestShardDownTypedUnderScatterGather(t *testing.T) {
	const n = 3
	const victim = 1
	shards := make([]*Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		shards[i], addrs[i] = startServer(t)
		if err := shards[i].SetShard(i, n); err != nil {
			t.Fatalf("SetShard: %v", err)
		}
	}
	lass := NewServer()
	lass.EnableGlobalCache(addrs[0]+","+addrs[1]+","+addrs[2], CacheConfig{
		SweepInterval:  50 * time.Millisecond,
		ShardHeartbeat: 50 * time.Millisecond,
	})
	lassAddr, err := lass.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(lass.Close)

	ctxs := shardedContexts(t, n)
	survivors := make([]string, 0, n-1)
	for i, name := range ctxs {
		if i != victim {
			survivors = append(survivors, name)
		}
	}

	// One client per shard context; seed every range while healthy.
	clients := make([]*Client, n)
	for i := range clients {
		c, err := Dial(nil, lassAddr, ctxs[i])
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
		opCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		err = c.PutGlobal(opCtx, "seed", ctxs[i])
		cancel()
		if err != nil {
			t.Fatalf("seed shard %d: %v", i, err)
		}
	}

	shards[victim].Close()
	// Wait until the health sweep marks the victim down — from here on
	// its range must fail fast and typed, never hang.
	deadline := time.Now().Add(10 * time.Second)
	for {
		opCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := clients[victim].PutGlobal(opCtx, "probe", "x")
		cancel()
		if errors.Is(err, ErrShardDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never reported ErrShardDown; last err: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	const workers, rounds = 4, 25
	var (
		mu         sync.Mutex
		victimDown int // victim-range failures, all typed
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(w, i int) {
				defer wg.Done()
				c := clients[i]
				for round := 0; round < rounds; round++ {
					opCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
					err := c.PutGlobal(opCtx, fmt.Sprintf("k%d", w), fmt.Sprintf("v%d", round))
					cancel()
					if i == victim {
						if err == nil {
							fail("worker %d: write to dead shard %d succeeded", w, victim)
						} else if !errors.Is(err, ErrShardDown) {
							fail("worker %d: victim-range error lost its type: %v", w, err)
						} else {
							mu.Lock()
							victimDown++
							mu.Unlock()
						}
					} else if err != nil {
						fail("worker %d: survivor shard %d failed: %v", w, i, err)
					}

					opCtx, cancel = context.WithTimeout(context.Background(), 3*time.Second)
					// Strict scatter-gather spanning the dead shard: must
					// fail, and the failure must stay typed end to end.
					if _, err := c.SnapshotGlobalMany(opCtx, ctxs); err == nil {
						fail("worker %d: SnapshotGlobalMany spanning dead shard succeeded", w)
					} else if !errors.Is(err, ErrShardDown) {
						fail("worker %d: scatter-gather error lost its type: %v", w, err)
					}
					// Survivor-only scatter-gather: degraded, not dead.
					snaps, err := c.SnapshotGlobalMany(opCtx, survivors)
					if err != nil {
						fail("worker %d: survivor scatter-gather failed: %v", w, err)
					} else {
						for _, name := range survivors {
							if snaps[name]["seed"] != name {
								fail("worker %d: survivor %s snapshot lost seed: %v", w, name, snaps[name])
							}
						}
					}
					// Best-effort listing must keep answering.
					if _, err := c.GlobalContexts(opCtx); err != nil {
						fail("worker %d: GlobalContexts during degraded mode: %v", w, err)
					}
					cancel()
				}
			}(w, i)
		}
	}
	wg.Wait()
	if want := workers * rounds; victimDown != want {
		t.Errorf("victim-range typed failures = %d, want %d", victimDown, want)
	}
}
