package attrspace

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tdp/internal/attr"
	"tdp/internal/netsim"
	"tdp/internal/wire"
)

// chaosSeed returns the fault-injection seed: fixed by default so runs
// are reproducible, overridable with TDP_CHAOS_SEED (the make chaos
// target pins it explicitly).
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("TDP_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad TDP_CHAOS_SEED %q: %v", v, err)
		}
		return n
	}
	return 1
}

// restartable is an attribute server that can be killed and rebound on
// the same TCP address with its attribute space (and therefore context
// seqs) intact — the shape of a daemon crash + supervisor restart.
type restartable struct {
	t     *testing.T
	space *attr.Space
	addr  string

	mu  sync.Mutex
	srv *Server
}

func newRestartable(t *testing.T) *restartable {
	t.Helper()
	r := &restartable{t: t, space: attr.NewSpace()}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	r.addr = l.Addr().String()
	r.srv = NewServerWithSpace(r.space)
	go r.srv.Serve(l)
	t.Cleanup(func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.srv.Close()
	})
	return r
}

// kill closes the server abruptly (crash).
func (r *restartable) kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.srv.Close()
}

// drain shuts the server down gracefully (CLOSE + in-flight replies).
func (r *restartable) drain(timeout time.Duration) {
	r.mu.Lock()
	srv := r.srv
	r.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	srv.Shutdown(ctx)
}

// restart rebinds a fresh server on the same address and space.
func (r *restartable) restart() {
	r.mu.Lock()
	defer r.mu.Unlock()
	var l net.Listener
	var err error
	for i := 0; i < 200; i++ {
		l, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		r.t.Fatalf("rebind %s: %v", r.addr, err)
	}
	r.srv = NewServerWithSpace(r.space)
	go r.srv.Serve(l)
}

// mirror consumes a subscribed session's event stream and maintains
// the consumer-side picture, recording any violation of the
// per-attribute monotonic-seq guarantee.
type mirror struct {
	mu         sync.Mutex
	vals       map[string]string
	seqs       map[string]uint64
	resyncs    int
	violations []string
	journal    []string // every event, in arrival order — dumped on failure
}

func newMirror() *mirror {
	return &mirror{vals: make(map[string]string), seqs: make(map[string]uint64)}
}

// mirrorJournalCap bounds the event journal: long soaks stream far
// more events than a failure dump needs, so only the recent tail is
// kept.
const mirrorJournalCap = 4096

func (m *mirror) handle(ev Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.journal) >= mirrorJournalCap {
		m.journal = append(m.journal[:0], m.journal[mirrorJournalCap/2:]...)
	}
	m.journal = append(m.journal,
		fmt.Sprintf("op=%s attr=%s val=%q seq=%d resync=%v lost=%d", ev.Op, ev.Attr, ev.Value, ev.Seq, ev.Resync, ev.Lost))
	if ev.Op == "resync" {
		m.resyncs++
		return
	}
	if ev.Op == "destroy" {
		m.vals = make(map[string]string)
		m.seqs = make(map[string]uint64)
		return
	}
	if ev.Seq != 0 {
		// The guarantee is non-decreasing: a resync replay may repeat
		// the newest seq it already delivered live, but never go back.
		if last, ok := m.seqs[ev.Attr]; ok && ev.Seq < last {
			m.violations = append(m.violations,
				fmt.Sprintf("%s: seq %d after %d (op %s resync=%v)", ev.Attr, ev.Seq, last, ev.Op, ev.Resync))
		}
		m.seqs[ev.Attr] = ev.Seq
	}
	switch ev.Op {
	case "put":
		m.vals[ev.Attr] = ev.Value
	case "delete":
		delete(m.vals, ev.Attr)
	}
}

func (m *mirror) snapshot() (map[string]string, int, []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]string, len(m.vals))
	for k, v := range m.vals {
		out[k] = v
	}
	viol := append([]string(nil), m.violations...)
	return out, m.resyncs, viol
}

// events returns the full arrival-order journal, for failure dumps.
func (m *mirror) events() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.journal...)
}

func sameMap(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestChaosSessionConvergence is the acceptance-criteria run: a writer
// and a subscribed watcher, both on reconnecting Sessions dialing
// through the seeded fault injector, survive mid-frame cuts, a
// partition, a crash restart, and a graceful drain restart (≥ 4
// injected failures). At the end the watcher's mirror must equal the
// server's authoritative state (no lost deletes), every delete the
// writer issued must have stuck (zero lost destroys), and the watcher
// must never have observed a per-attribute seq go backward.
func TestChaosSessionConvergence(t *testing.T) {
	seed := chaosSeed(t)
	r := newRestartable(t)
	// Pin the context open independently of client churn so its seq
	// counter survives every disconnect.
	keep := r.space.Join("chaos")
	defer keep.Leave()

	chaos := netsim.NewChaos(netsim.ChaosConfig{
		Seed:          seed,
		CutAfterBytes: 6 * 1024,
		LatencyEvery:  13,
		Latency:       time.Millisecond,
	})
	cfg := SessionConfig{
		Dial:        chaos.Dial(TCPDial),
		Addr:        r.addr,
		Context:     "chaos",
		Backoff:     Backoff{Initial: 5 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0.5},
		MaxAttempts: -1, // partitions outlast any finite budget; never give up
		ConnectWait: 5 * time.Second,
		Seed:        seed,
	}
	writer := NewSession(cfg)
	defer writer.Close()
	watcher := NewSession(cfg)
	defer watcher.Close()

	m := newMirror()
	watcher.SetEventHandler(m.handle)
	if err := watcher.Subscribe(); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	rng := rand.New(rand.NewSource(seed))
	expected := make(map[string]string)
	opCtx := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(context.Background(), 5*time.Second)
	}
	put := func(a, v string) {
		ctx, cancel := opCtx()
		defer cancel()
		if err := writer.PutCtx(ctx, a, v); err != nil {
			t.Fatalf("PutCtx(%s): %v", a, err)
		}
		expected[a] = v
	}
	del := func(a string) {
		ctx, cancel := opCtx()
		defer cancel()
		if err := writer.DeleteCtx(ctx, a); err != nil {
			t.Fatalf("DeleteCtx(%s): %v", a, err)
		}
		delete(expected, a)
	}

	const rounds = 48
	kills := 0
	for round := 0; round < rounds; round++ {
		a := fmt.Sprintf("a%d", rng.Intn(8))
		put(a, fmt.Sprintf("v%d.%d", round, rng.Intn(1000)))
		if rng.Intn(5) == 0 {
			victim := fmt.Sprintf("a%d", rng.Intn(8))
			del(victim)
		}
		// Injected failures at fixed rounds: the acceptance bar is
		// surviving at least 3 kills/partitions in one run.
		switch round {
		case 10:
			chaos.CutAll() // kill every live connection mid-stream
			kills++
		case 20:
			chaos.Partition()
			time.Sleep(60 * time.Millisecond)
			chaos.Heal()
			kills++
		case 30:
			r.kill() // daemon crash + supervisor restart
			time.Sleep(20 * time.Millisecond)
			r.restart()
			kills++
		case 40:
			r.drain(200 * time.Millisecond) // graceful GOAWAY restart
			r.restart()
			kills++
		}
	}
	if kills < 3 {
		t.Fatalf("only %d failures injected; acceptance requires >= 3", kills)
	}

	// The byte-budget cutter must actually have torn frames.
	if st := chaos.Stats(); st.Cuts < 3 {
		t.Errorf("chaos cuts = %d, want >= 3 (stats %+v)", st.Cuts, st)
	}

	// Authoritative state: what the server's space really holds.
	auth, _, err := keep.SnapshotSeq()
	if err != nil {
		t.Fatalf("authoritative snapshot: %v", err)
	}
	authVals := make(map[string]string, len(auth))
	for k, v := range auth {
		authVals[k] = v.Value
	}
	if !sameMap(authVals, expected) {
		t.Fatalf("server state diverged from writer intent:\n server: %v\n expected: %v", authVals, expected)
	}
	// No lost destroys: every deleted attribute must be gone.
	for k := range authVals {
		if _, want := expected[k]; !want {
			t.Errorf("deleted attribute %q still present on server", k)
		}
	}

	// The watcher must converge to the authoritative state once its
	// session resyncs.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _, _ := m.snapshot()
		if sameMap(got, authVals) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirror never converged:\n mirror: %v\n server: %v", got, authVals)
		}
		time.Sleep(20 * time.Millisecond)
	}
	_, resyncs, violations := m.snapshot()
	if len(violations) > 0 {
		t.Fatalf("per-attr seq went backward %d times: %v", len(violations), violations)
	}
	if resyncs == 0 {
		t.Errorf("watcher saw no resync markers despite %d injected failures", kills)
	}
	if writer.GaveUp() || watcher.GaveUp() {
		t.Fatalf("a session gave up (writer %v, watcher %v)", writer.GaveUp(), watcher.GaveUp())
	}
	reconnects, retries, _ := writer.Stats()
	if reconnects == 0 && retries == 0 {
		t.Errorf("writer session reports no reconnects and no retries — faults not exercised?")
	}
}

// TestChaosMidFrameCut pins the injector's defining behavior: the
// write that exhausts the byte budget emits a strict prefix and kills
// the transport, which a raw Client reports as a retryable ErrConnLost
// — never a silent success or a garbled server error.
func TestChaosMidFrameCut(t *testing.T) {
	_, addr := startServer(t)
	chaos := netsim.NewChaos(netsim.ChaosConfig{Seed: chaosSeed(t), CutAfterBytes: 200})
	c, err := Dial(chaos.Dial(TCPDial), addr, "cut")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	var lastErr error
	for i := 0; i < 1000; i++ {
		lastErr = c.Put("k"+strconv.Itoa(i), "some value long enough to burn budget quickly")
		if lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("no failure after 1000 puts through a 200-byte budget")
	}
	if !IsRetryable(lastErr) {
		t.Fatalf("cut surfaced as non-retryable error: %v", lastErr)
	}
	if st := chaos.Stats(); st.Cuts == 0 {
		t.Errorf("stats show no cut: %+v", st)
	}
}

// TestChaosRefuseListener covers the refuse-then-accept daemon: the
// first dials are reset before HELLO completes, and a Session's
// backoff rides through until the listener settles.
func TestChaosRefuseListener(t *testing.T) {
	srv := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(netsim.RefuseListener(l, 3))
	t.Cleanup(srv.Close)

	s := NewSession(SessionConfig{
		Addr:        l.Addr().String(),
		Context:     "refuse",
		Backoff:     Backoff{Initial: 5 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2, Jitter: 0.5},
		MaxAttempts: 20,
		ConnectWait: 5 * time.Second,
		DialTimeout: 250 * time.Millisecond,
		Seed:        chaosSeed(t),
	})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.PutCtx(ctx, "k", "v"); err != nil {
		t.Fatalf("PutCtx through refusing listener: %v", err)
	}
	if v, err := s.TryGet("k"); err != nil || v != "v" {
		t.Fatalf("TryGet = %q, %v", v, err)
	}
}

// TestChaosPartitionGivesUp verifies the bounded-attempts path: a
// partition that outlives MaxAttempts turns the session terminal with
// ErrSessionGaveUp, counted in session.gaveup.
func TestChaosPartitionGivesUp(t *testing.T) {
	_, addr := startServer(t)
	chaos := netsim.NewChaos(netsim.ChaosConfig{Seed: chaosSeed(t)})
	s := NewSession(SessionConfig{
		Dial:        chaos.Dial(TCPDial),
		Addr:        addr,
		Context:     "part",
		Backoff:     Backoff{Initial: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2, Jitter: 0},
		MaxAttempts: 4,
		ConnectWait: 200 * time.Millisecond,
		Seed:        chaosSeed(t),
	})
	defer s.Close()
	if err := s.Put("k", "v"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	chaos.Partition() // cuts the live conn and refuses every redial
	deadline := time.Now().Add(5 * time.Second)
	for !s.GaveUp() {
		if time.Now().After(deadline) {
			t.Fatal("session never gave up under a permanent partition")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Put("k2", "v2"); !errors.Is(err, ErrSessionGaveUp) {
		t.Fatalf("post-give-up Put error = %v, want ErrSessionGaveUp", err)
	}
}

// TestChaosShardKill kills one CASS shard of a routed pool under
// continuous load. The contract being checked is partitioned
// degradation: ops routed to the surviving shards keep succeeding
// throughout, while ops in the dead shard's hash range surface as
// prompt errors (ErrShardDown once the health session notices) — never
// as hangs.
func TestChaosShardKill(t *testing.T) {
	const n = 3
	const victim = 1
	shards := make([]*Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		shards[i], addrs[i] = startServer(t)
		if err := shards[i].SetShard(i, n); err != nil {
			t.Fatalf("SetShard: %v", err)
		}
	}
	lass := NewServer()
	lass.EnableGlobalCache(addrs[0]+","+addrs[1]+","+addrs[2], CacheConfig{
		SweepInterval:  50 * time.Millisecond,
		ShardHeartbeat: 50 * time.Millisecond,
	})
	lassAddr, err := lass.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(lass.Close)

	ctxs := shardedContexts(t, n)
	type shardScore struct {
		mu        sync.Mutex
		ok        int
		fails     int
		downErrs  int
		postKill  int // successes after the kill
		slowestMs int64
	}
	scores := make([]*shardScore, n)
	for i := range scores {
		scores[i] = &shardScore{}
	}

	stop := make(chan struct{})
	killed := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(nil, lassAddr, ctxs[i])
			if err != nil {
				t.Errorf("dial worker %d: %v", i, err)
				return
			}
			defer c.Close()
			sc := scores[i]
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				opCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				start := time.Now()
				err := c.PutGlobal(opCtx, "k", fmt.Sprintf("v%d", round))
				if err == nil {
					_, err = c.TryGetGlobal(opCtx, "k")
				}
				cancel()
				ms := time.Since(start).Milliseconds()
				var wasKilled bool
				select {
				case <-killed:
					wasKilled = true
				default:
				}
				sc.mu.Lock()
				if ms > sc.slowestMs {
					sc.slowestMs = ms
				}
				if err == nil {
					sc.ok++
					if wasKilled {
						sc.postKill++
					}
				} else {
					sc.fails++
					if errors.Is(err, ErrShardDown) {
						sc.downErrs++
					}
				}
				sc.mu.Unlock()
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}

	time.Sleep(300 * time.Millisecond)
	shards[victim].Close()
	close(killed)
	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()

	for i, sc := range scores {
		sc.mu.Lock()
		t.Logf("shard %d: ok=%d fails=%d downErrs=%d postKill=%d slowest=%dms",
			i, sc.ok, sc.fails, sc.downErrs, sc.postKill, sc.slowestMs)
		if sc.slowestMs > 3500 {
			t.Errorf("shard %d: an op took %dms — degraded mode must not hang", i, sc.slowestMs)
		}
		if i == victim {
			if sc.downErrs == 0 {
				t.Errorf("victim shard: no ErrShardDown surfaced after the kill")
			}
		} else {
			if sc.fails != 0 {
				t.Errorf("surviving shard %d: %d ops failed — one shard's death leaked", i, sc.fails)
			}
			if sc.postKill == 0 {
				t.Errorf("surviving shard %d: no successes after the kill", i)
			}
		}
		sc.mu.Unlock()
	}
}

// TestChaosShmRingKill covers fault injection on the transport-v3
// ring. The injector interposes on the doorbell socket — the only
// kernel object a cut-over connection still owns — so killing or
// delaying that socket is exactly how chaos reaches a ring: CutAll
// closes it, the doorbell reader dies, and every parked ring waiter
// wakes with the transport error. A reconnecting Session must ride
// through a mid-stream ring kill, re-upgrade to shm on the fresh
// connection, resync its mirror, and keep heartbeating — all over
// shared memory.
func TestChaosShmRingKill(t *testing.T) {
	if !wire.ShmSupported() {
		t.Skip("no shm transport on this platform")
	}
	seed := chaosSeed(t)
	sim := netsim.New()
	sim.EnableSameHost(true)
	node := sim.AddHost("node")
	l, err := node.Listen(0)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer()
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	addr := l.Addr().String()

	chaos := netsim.NewChaos(netsim.ChaosConfig{
		Seed:         seed,
		LatencyEvery: 3, // delay doorbell rings too, not just handshake frames
		Latency:      time.Millisecond,
	})
	dial := chaos.Dial(node.Dial)

	// A raw client first: the cutover must engage through both the
	// chaos wrapper and the simulated conn (SameHost promotion).
	c, err := Dial(dial, addr, "chaos-shm")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if !c.ShmActive() {
		t.Fatal("shm did not engage through chaos over the simulated network")
	}
	if err := c.Put("pre", "1"); err != nil {
		t.Fatalf("Put over ring: %v", err)
	}
	chaos.CutAll() // ring kill: doorbell socket closed under the transport
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Put("post-kill", "x"); err != nil {
			if !IsRetryable(err) {
				t.Fatalf("ring kill surfaced a non-retryable error: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("puts kept succeeding after the ring was killed")
		}
	}
	c.Close()

	// Now a Session: heartbeats, reconnect, and resync all over rings.
	// The session phase gets its own context, pinned open server-side:
	// CutAll severs BOTH sessions' connections at once, and without the
	// pin the context's refcount hits zero, tdp_exit semantics destroy
	// it, and a put acked over a draining ring legitimately evaporates
	// with the old seq epoch — the mirror could then never converge on
	// a state the server no longer holds.
	keep := srv.Space().Join("chaos-shm-sess")
	defer keep.Leave()
	cfg := SessionConfig{
		Dial:        dial,
		Addr:        addr,
		Context:     "chaos-shm-sess",
		Backoff:     Backoff{Initial: 5 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0.5},
		MaxAttempts: -1,
		ConnectWait: 5 * time.Second,
		Seed:        seed,
		Heartbeat:   20 * time.Millisecond,
	}
	writer := NewSession(cfg)
	defer writer.Close()
	watcher := NewSession(cfg)
	defer watcher.Close()
	m := newMirror()
	watcher.SetEventHandler(m.handle)
	if err := watcher.Subscribe(); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	expected := make(map[string]string)
	putS := func(a, v string) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := writer.PutCtx(ctx, a, v); err != nil {
			t.Fatalf("PutCtx(%s): %v", a, err)
		}
		expected[a] = v
	}
	for i := 0; i < 10; i++ {
		putS(fmt.Sprintf("a%d", i), "before")
	}
	// Both sessions' live connections must be rings.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	wc, _, err := writer.client(ctx)
	cancel()
	if err != nil {
		t.Fatalf("writer client: %v", err)
	}
	if !wc.ShmActive() {
		t.Fatal("writer session not on the ring")
	}
	chaos.CutAll() // kill every ring mid-session
	for i := 0; i < 10; i++ {
		putS(fmt.Sprintf("a%d", i), "after")
	}
	// The reconnected transport is a fresh ring, not a socket fallback.
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	wc2, _, err := writer.client(ctx)
	cancel()
	if err != nil {
		t.Fatalf("writer client after kill: %v", err)
	}
	if !wc2.ShmActive() {
		t.Fatal("session reconnect did not re-upgrade to shm")
	}
	// Watcher converges on the post-kill state via resync over its ring.
	convergeBy := time.Now().Add(10 * time.Second)
	for {
		got, _, _ := m.snapshot()
		if sameMap(got, expected) {
			break
		}
		if time.Now().After(convergeBy) {
			got, _, _ := m.snapshot()
			t.Fatalf("mirror never converged over rings:\n mirror: %v\n expected: %v\n journal:\n  %s",
				got, expected, strings.Join(m.events(), "\n  "))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if reconnects, _, _ := writer.Stats(); reconnects == 0 {
		t.Error("writer session reports no reconnects after a ring kill")
	}
}
