package attrspace

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"tdp/internal/attr"
)

// startCachingLASS runs a CASS and a LASS whose G* verbs forward to it
// through the global cache, and returns both servers plus addresses.
func startCachingLASS(t *testing.T) (cass, lass *Server, cassAddr, lassAddr string) {
	t.Helper()
	cass, cassAddr = startServer(t)
	lass = NewServer()
	lass.EnableGlobalCache(cassAddr, CacheConfig{SweepInterval: 50 * time.Millisecond})
	lassAddr, err := lass.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(lass.Close)
	return cass, lass, cassAddr, lassAddr
}

func TestGlobalForwardingBasics(t *testing.T) {
	_, _, cassAddr, lassAddr := startCachingLASS(t)
	c := dialT(t, lassAddr, "job1")
	ctx := context.Background()

	// Absent globally.
	if _, err := c.TryGetGlobal(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("TryGetGlobal(ghost) = %v, want ErrNotFound", err)
	}
	// Put through the LASS, read back through the LASS.
	if err := c.PutGlobal(ctx, "license", "granted"); err != nil {
		t.Fatalf("PutGlobal: %v", err)
	}
	if v, err := c.TryGetGlobal(ctx, "license"); err != nil || v != "granted" {
		t.Fatalf("TryGetGlobal = %q, %v", v, err)
	}
	// The value must actually be on the CASS, visible to a direct client.
	direct := dialT(t, cassAddr, "job1")
	if v, err := direct.TryGet("license"); err != nil || v != "granted" {
		t.Fatalf("direct CASS TryGet = %q, %v", v, err)
	}
	// Delete through the LASS; both views agree.
	if err := c.DeleteGlobal(ctx, "license"); err != nil {
		t.Fatalf("DeleteGlobal: %v", err)
	}
	if _, err := c.TryGetGlobal(ctx, "license"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after DeleteGlobal: %v, want ErrNotFound", err)
	}
	if _, err := direct.TryGet("license"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("direct after DeleteGlobal: %v, want ErrNotFound", err)
	}
}

// TestCacheReadYourWrites is the headline coherence guarantee: after a
// global put is acked through a LASS, a read through the same LASS can
// never return the old value — the write-through applies the CASS seq
// to the cache before the OK leaves.
func TestCacheReadYourWrites(t *testing.T) {
	_, _, _, lassAddr := startCachingLASS(t)
	c := dialT(t, lassAddr, "job1")
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		want := fmt.Sprintf("v%d", i)
		if err := c.PutGlobal(ctx, "counter", want); err != nil {
			t.Fatalf("PutGlobal %d: %v", i, err)
		}
		got, err := c.TryGetGlobal(ctx, "counter")
		if err != nil {
			t.Fatalf("TryGetGlobal %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("stale read after acked put: got %q, want %q", got, want)
		}
	}
}

// TestCacheInvalidationFromDirectWrite checks the subscription path: a
// put straight to the CASS (not through the LASS) must reach the
// LASS's cache via its subscription — eventually consistent, and the
// observed values must never go backwards.
func TestCacheInvalidationFromDirectWrite(t *testing.T) {
	_, _, cassAddr, lassAddr := startCachingLASS(t)
	c := dialT(t, lassAddr, "job1")
	direct := dialT(t, cassAddr, "job1")
	ctx := context.Background()

	if err := direct.Put("phase", "1"); err != nil {
		t.Fatal(err)
	}
	// Prime the cache (fill).
	if v, err := c.TryGetGlobal(ctx, "phase"); err != nil || v != "1" {
		t.Fatalf("prime: %q, %v", v, err)
	}
	// Write behind the cache's back; the invalidation must land.
	if err := direct.Put("phase", "2"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	last := "1"
	for {
		v, err := c.TryGetGlobal(ctx, "phase")
		if err != nil {
			t.Fatalf("TryGetGlobal: %v", err)
		}
		if v < last { // "1"/"2" compare lexically here
			t.Fatalf("cache went backwards: %q after %q", v, last)
		}
		last = v
		if v == "2" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cache never observed direct write; still %q", v)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheInvalidationDelete: a direct CASS delete must eventually
// turn cached reads into NOTFOUND.
func TestCacheInvalidationDelete(t *testing.T) {
	_, _, cassAddr, lassAddr := startCachingLASS(t)
	c := dialT(t, lassAddr, "job1")
	direct := dialT(t, cassAddr, "job1")
	ctx := context.Background()

	if err := c.PutGlobal(ctx, "tmp", "x"); err != nil {
		t.Fatal(err)
	}
	if v, err := c.TryGetGlobal(ctx, "tmp"); err != nil || v != "x" {
		t.Fatalf("prime: %q, %v", v, err)
	}
	if err := direct.Delete("tmp"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.TryGetGlobal(ctx, "tmp")
		if errors.Is(err, ErrNotFound) {
			return
		}
		if err != nil {
			t.Fatalf("TryGetGlobal: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("cache never observed direct delete")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheBlockingGlobalGet: a GGET for an attribute nobody has put
// yet must block and wake when the put arrives at the CASS.
func TestCacheBlockingGlobalGet(t *testing.T) {
	_, _, cassAddr, lassAddr := startCachingLASS(t)
	c := dialT(t, lassAddr, "job1")
	direct := dialT(t, cassAddr, "job1")

	got := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		v, err := c.GetGlobal(context.Background(), "pid")
		if err != nil {
			errc <- err
			return
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("GetGlobal returned %q before put", v)
	case err := <-errc:
		t.Fatalf("GetGlobal failed early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := direct.Put("pid", "777"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "777" {
			t.Fatalf("GetGlobal = %q, want 777", v)
		}
	case err := <-errc:
		t.Fatalf("GetGlobal: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("GetGlobal never woke")
	}
	// And now it is cached: served without an upstream round trip.
	if v, err := c.TryGetGlobal(context.Background(), "pid"); err != nil || v != "777" {
		t.Fatalf("cached read = %q, %v", v, err)
	}
}

func TestCacheBatchAndSnapshot(t *testing.T) {
	_, _, cassAddr, lassAddr := startCachingLASS(t)
	c := dialT(t, lassAddr, "job1")
	ctx := context.Background()

	pairs := []KV{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}, {Key: "c", Value: "3"}}
	if err := c.PutBatchGlobal(ctx, pairs); err != nil {
		t.Fatalf("PutBatchGlobal: %v", err)
	}
	// All three readable through the cache and present upstream.
	for _, p := range pairs {
		if v, err := c.TryGetGlobal(ctx, p.Key); err != nil || v != p.Value {
			t.Fatalf("TryGetGlobal(%s) = %q, %v", p.Key, v, err)
		}
	}
	direct := dialT(t, cassAddr, "job1")
	snap, err := direct.Snapshot()
	if err != nil || len(snap) != 3 {
		t.Fatalf("direct snapshot = %v, %v", snap, err)
	}
	// Global snapshot through the LASS agrees.
	gsnap, err := c.SnapshotGlobal(ctx)
	if err != nil {
		t.Fatalf("SnapshotGlobal: %v", err)
	}
	if len(gsnap) != 3 || gsnap["a"] != "1" || gsnap["b"] != "2" || gsnap["c"] != "3" {
		t.Fatalf("SnapshotGlobal = %v", gsnap)
	}
}

// TestCacheHitAvoidsUpstream verifies the point of the cache: repeated
// global reads do not touch the CASS. Counted via the CASS's op
// telemetry.
func TestCacheHitAvoidsUpstream(t *testing.T) {
	cass, _, _, lassAddr := startCachingLASS(t)
	c := dialT(t, lassAddr, "job1")
	ctx := context.Background()

	if err := c.PutGlobal(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	before := cass.Telemetry().Counter("attrspace.ops.tryget").Value() +
		cass.Telemetry().Counter("attrspace.ops.get").Value()
	for i := 0; i < 100; i++ {
		if v, err := c.TryGetGlobal(ctx, "k"); err != nil || v != "v" {
			t.Fatalf("TryGetGlobal = %q, %v", v, err)
		}
		if v, err := c.GetGlobal(ctx, "k"); err != nil || v != "v" {
			t.Fatalf("GetGlobal = %q, %v", v, err)
		}
	}
	after := cass.Telemetry().Counter("attrspace.ops.tryget").Value() +
		cass.Telemetry().Counter("attrspace.ops.get").Value()
	if after != before {
		t.Fatalf("cached reads hit the CASS: %d upstream gets", after-before)
	}
}

// TestCacheSweepReleasesUpstream: once every local participant leaves
// the context, the sweep drops the cache context, releasing the
// cache's CASS reference so the context can actually be destroyed.
func TestCacheSweepReleasesUpstream(t *testing.T) {
	cass, lass, _, lassAddr := startCachingLASS(t)
	c := dialT(t, lassAddr, "sweepme")
	if err := c.PutGlobal(context.Background(), "k", "v"); err != nil {
		t.Fatal(err)
	}
	if cass.Space().Refs("sweepme") == 0 {
		t.Fatal("cache should hold an upstream reference while in use")
	}
	c.Close() // last local participant leaves
	deadline := time.Now().Add(5 * time.Second)
	for cass.Space().Refs("sweepme") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never released the upstream context reference")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = lass
}

// TestGlobalWithoutCache: G* verbs against a plain server (no upstream)
// answer with an error the client maps to ErrNoGlobal.
func TestGlobalWithoutCache(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "job1")
	if err := c.PutGlobal(context.Background(), "a", "b"); !errors.Is(err, ErrNoGlobal) {
		t.Fatalf("PutGlobal on plain server = %v, want ErrNoGlobal", err)
	}
	if _, err := c.TryGetGlobal(context.Background(), "a"); !errors.Is(err, ErrNoGlobal) {
		t.Fatalf("TryGetGlobal on plain server = %v, want ErrNoGlobal", err)
	}
}

// TestSeqCarriedOnReplies: the versioning fields the cache depends on.
func TestSeqCarriedOnReplies(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "job1")
	ctx := context.Background()
	s1, err := c.PutV(ctx, "a", "1")
	if err != nil || s1 != 1 {
		t.Fatalf("PutV = %d, %v", s1, err)
	}
	s2, err := c.PutBatchV(ctx, []KV{{Key: "b", Value: "2"}, {Key: "c", Value: "3"}})
	if err != nil || s2 != 3 {
		t.Fatalf("PutBatchV = %d, %v", s2, err)
	}
	v, seq, err := c.TryGetV(ctx, "b")
	if err != nil || v != "2" || seq != 2 {
		t.Fatalf("TryGetV = %q, %d, %v", v, seq, err)
	}
	v, seq, err = c.GetV(ctx, "c")
	if err != nil || v != "3" || seq != 3 {
		t.Fatalf("GetV = %q, %d, %v", v, seq, err)
	}
	ds, err := c.DeleteV(ctx, "a")
	if err != nil || ds != 4 {
		t.Fatalf("DeleteV = %d, %v", ds, err)
	}
	if ds, err = c.DeleteV(ctx, "a"); err != nil || ds != 0 {
		t.Fatalf("DeleteV absent = %d, %v", ds, err)
	}
}

// TestEventHandlerSeesEverything: with a synchronous handler installed,
// no event is dropped client-side even under a burst far larger than
// any buffer.
func TestEventHandlerSeesEverything(t *testing.T) {
	srv, addr := startServer(t)
	srv.SetEventBuffer(8) // small ring: force server-side coalescing instead
	pub := dialT(t, addr, "job1")
	subc := dialT(t, addr, "job1")

	seen := make(chan Event, 4096)
	subc.SetEventHandler(func(ev Event) { seen <- ev })
	if err := subc.Subscribe(); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := pub.Put("hot", fmt.Sprintf("%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// The handler must observe the final value; lost deltas (if the
	// tiny ring dropped distinct attrs — here it's one attr, so
	// coalescing applies) are carried on events.
	deadline := time.After(5 * time.Second)
	var last Event
	for last.Value != fmt.Sprintf("%d", n-1) {
		select {
		case ev := <-seen:
			if ev.Attr == "hot" {
				if ev.Seq <= last.Seq {
					t.Fatalf("event seq regressed: %d after %d", ev.Seq, last.Seq)
				}
				last = ev
			}
		case <-deadline:
			t.Fatalf("final value never seen; last %+v", last)
		}
	}
}

// TestDestroyTearsDownCacheCtx: destroying the context upstream (all
// participants leave) must tear down the cache context so a later use
// re-dials instead of serving stale entries.
func TestDestroyTearsDownCacheCtx(t *testing.T) {
	_, lass, cassAddr, lassAddr := startCachingLASS(t)
	c := dialT(t, lassAddr, "job1")
	ctx := context.Background()

	if err := c.PutGlobal(ctx, "k", "v1"); err != nil {
		t.Fatal(err)
	}
	// Destroy upstream: the cache's own ref is the only one; closing a
	// direct participant after joining+leaving triggers destroy only
	// when refs hit 0, so simulate by forcing the sweep: close the
	// local client so the sweeper drops the cache ref and the CASS
	// context dies.
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		gc := lass.gcache.Load()
		if len(gc.Contexts()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cache context never torn down after local participants left")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Recreate upstream with a different value; a fresh LASS client
	// must see the new value, not a stale cached one.
	direct := dialT(t, cassAddr, "job1")
	if err := direct.Put("k", "v2"); err != nil {
		t.Fatal(err)
	}
	c2 := dialT(t, lassAddr, "job1")
	if v, err := c2.TryGetGlobal(ctx, "k"); err != nil || v != "v2" {
		t.Fatalf("after re-create, TryGetGlobal = %q, %v (stale cache?)", v, err)
	}
	_ = attr.ErrNotFound
}
