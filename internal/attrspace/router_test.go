package attrspace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// startShardedPool runs n CASS shards (each enforcing its slice of the
// hash space via SetShard) and one routing LASS in front of them, and
// returns the pool. Heartbeats run fast so down-detection tests do not
// crawl.
func startShardedPool(t *testing.T, n int) (lass *Server, shards []*Server, shardAddrs []string, lassAddr string) {
	t.Helper()
	shards = make([]*Server, n)
	shardAddrs = make([]string, n)
	for i := 0; i < n; i++ {
		shards[i], shardAddrs[i] = startServer(t)
		if err := shards[i].SetShard(i, n); err != nil {
			t.Fatalf("SetShard(%d, %d): %v", i, n, err)
		}
	}
	lass = NewServer()
	lass.EnableGlobalCache(strings.Join(shardAddrs, ","), CacheConfig{
		SweepInterval:  50 * time.Millisecond,
		ShardHeartbeat: 50 * time.Millisecond,
	})
	var err error
	lassAddr, err = lass.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(lass.Close)
	return lass, shards, shardAddrs, lassAddr
}

// shardedContexts returns one context name owned by each of the n
// shards, derived (not hardcoded) so the test cannot rot if the hash
// changes.
func shardedContexts(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, n)
	found := 0
	for i := 0; found < n && i < 10000; i++ {
		name := fmt.Sprintf("job-%d", i)
		if idx := ShardIndex(name, n); out[idx] == "" {
			out[idx] = name
			found++
		}
	}
	if found != n {
		t.Fatalf("could not find a context per shard")
	}
	return out
}

func TestShardMapBasics(t *testing.T) {
	m := ParseShardAddrs("a:1, b:2 ,c:3")
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if got := m.Addr(1); got != "b:2" {
		t.Fatalf("Addr(1) = %q (whitespace not trimmed?)", got)
	}
	// Routing is deterministic and in range.
	for _, name := range []string{"", "job-1", "job-2", "a-very-long-context-name"} {
		i := m.ShardFor(name)
		if i < 0 || i >= 3 {
			t.Fatalf("ShardFor(%q) = %d, out of range", name, i)
		}
		if j := m.ShardFor(name); j != i {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", name, i, j)
		}
		if m.AddrFor(name) != m.Addr(i) {
			t.Fatalf("AddrFor(%q) disagrees with ShardFor", name)
		}
	}
	// A single-shard map sends everything to shard 0.
	one := NewShardMap("solo:1")
	if one.ShardFor("anything") != 0 {
		t.Fatal("single-shard map must route everything to shard 0")
	}
	// Versioning carries through.
	if v := NewShardMapVersion(7, "a", "b").Version(); v != 7 {
		t.Fatalf("Version = %d, want 7", v)
	}
}

func TestParseShardSpec(t *testing.T) {
	if i, n, err := ParseShardSpec("2/4"); err != nil || i != 2 || n != 4 {
		t.Fatalf("ParseShardSpec(2/4) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "3", "4/4", "-1/4", "a/b", "1/0"} {
		if _, _, err := ParseShardSpec(bad); err == nil {
			t.Errorf("ParseShardSpec(%q) accepted", bad)
		}
	}
}

// TestShardedPutGet is the tentpole's basic correctness: globals
// written through the routing LASS land on the context's owning shard
// — and only there — and read back correctly through the router.
func TestShardedPutGet(t *testing.T) {
	const n = 3
	_, _, shardAddrs, lassAddr := startShardedPool(t, n)
	ctxs := shardedContexts(t, n)
	bg := context.Background()

	for i, name := range ctxs {
		c := dialT(t, lassAddr, name)
		if err := c.PutGlobal(bg, "owner", fmt.Sprintf("shard%d", i)); err != nil {
			t.Fatalf("PutGlobal via router (ctx %q): %v", name, err)
		}
		if v, err := c.TryGetGlobal(bg, "owner"); err != nil || v != fmt.Sprintf("shard%d", i) {
			t.Fatalf("TryGetGlobal read-back = %q, %v", v, err)
		}
		// The value must live on the owning shard, visible to a direct
		// client of that shard.
		direct := dialT(t, shardAddrs[i], name)
		if v, err := direct.TryGet("owner"); err != nil || v != fmt.Sprintf("shard%d", i) {
			t.Fatalf("owning shard %d missing value: %q, %v", i, v, err)
		}
	}
}

// TestWrongShardRefused: a shard must refuse to host a context that
// hashes elsewhere — the enforcement that stops a misconfigured client
// from silently splitting one context across two daemons.
func TestWrongShardRefused(t *testing.T) {
	const n = 3
	_, _, shardAddrs, _ := startShardedPool(t, n)
	ctxs := shardedContexts(t, n)
	// Dial shard 0 with the context owned by shard 1.
	_, err := Dial(nil, shardAddrs[0], ctxs[1])
	if err == nil || !strings.Contains(err.Error(), "wrong shard") {
		t.Fatalf("HELLO for foreign context = %v, want wrong-shard refusal", err)
	}
	// Infrastructure contexts are exempt: they exist on every shard.
	c, err := Dial(nil, shardAddrs[0], InfraContextPrefix+"monitor")
	if err != nil {
		t.Fatalf("infra context refused: %v", err)
	}
	c.Close()
}

// TestShardedDeleteAndBatch covers the remaining single-context pooled
// verbs: GMPUT batches and GDEL deletes route like puts.
func TestShardedDeleteAndBatch(t *testing.T) {
	const n = 2
	_, _, _, lassAddr := startShardedPool(t, n)
	ctxs := shardedContexts(t, n)
	bg := context.Background()
	for _, name := range ctxs {
		c := dialT(t, lassAddr, name)
		if err := c.PutBatchGlobal(bg, []KV{
			{Key: "a", Value: "1"}, {Key: "b", Value: "2"}, {Key: "c", Value: "3"},
		}); err != nil {
			t.Fatalf("PutBatchGlobal(%q): %v", name, err)
		}
		if v, err := c.TryGetGlobal(bg, "b"); err != nil || v != "2" {
			t.Fatalf("TryGetGlobal(b) = %q, %v", v, err)
		}
		if err := c.DeleteGlobal(bg, "b"); err != nil {
			t.Fatalf("DeleteGlobal: %v", err)
		}
		if _, err := c.TryGetGlobal(bg, "b"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("after DeleteGlobal: %v, want ErrNotFound", err)
		}
		if snap, err := c.SnapshotGlobal(bg); err != nil || len(snap) != 2 {
			t.Fatalf("SnapshotGlobal = %v, %v, want 2 entries", snap, err)
		}
	}
}

// TestSnapshotManyScatterGather: one GSNAPM through the LASS returns
// contexts living on different shards in a single reply.
func TestSnapshotManyScatterGather(t *testing.T) {
	const n = 4
	_, _, _, lassAddr := startShardedPool(t, n)
	ctxs := shardedContexts(t, n)
	bg := context.Background()
	for i, name := range ctxs {
		c := dialT(t, lassAddr, name)
		if err := c.PutGlobal(bg, "pid", fmt.Sprintf("%d", 100+i)); err != nil {
			t.Fatalf("PutGlobal(%q): %v", name, err)
		}
	}
	c := dialT(t, lassAddr, ctxs[0])
	snaps, err := c.SnapshotGlobalMany(bg, ctxs)
	if err != nil {
		t.Fatalf("SnapshotGlobalMany: %v", err)
	}
	if len(snaps) != n {
		t.Fatalf("SnapshotGlobalMany returned %d contexts, want %d", len(snaps), n)
	}
	for i, name := range ctxs {
		if got := snaps[name]["pid"]; got != fmt.Sprintf("%d", 100+i) {
			t.Errorf("snaps[%q][pid] = %q, want %d", name, got, 100+i)
		}
	}
}

// TestGlobalContextsUnion: the context listing is the deduplicated
// union across every shard.
func TestGlobalContextsUnion(t *testing.T) {
	const n = 3
	_, _, _, lassAddr := startShardedPool(t, n)
	ctxs := shardedContexts(t, n)
	bg := context.Background()
	for _, name := range ctxs {
		c := dialT(t, lassAddr, name)
		if err := c.PutGlobal(bg, "alive", "1"); err != nil {
			t.Fatalf("PutGlobal(%q): %v", name, err)
		}
	}
	c := dialT(t, lassAddr, ctxs[0])
	names, err := c.GlobalContexts(bg)
	if err != nil {
		t.Fatalf("GlobalContexts: %v", err)
	}
	have := make(map[string]bool, len(names))
	for _, name := range names {
		have[name] = true
	}
	for _, want := range ctxs {
		if !have[want] {
			t.Errorf("GlobalContexts missing %q (got %v)", want, names)
		}
	}
}

// TestLegacyShardFallback is the mixed-version pool: one shard that
// never granted CapCtxOp. The router latches legacy mode for it and
// its contexts' ops ride the per-context connections — same results,
// recorded on the fallback counter.
func TestLegacyShardFallback(t *testing.T) {
	const n = 2
	shards := make([]*Server, n)
	shardAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		shards[i], shardAddrs[i] = startServer(t)
		// No SetShard: a legacy daemon enforces nothing, and granting
		// shard 1 the old capability set (sans ctxop) makes it a v1 CASS
		// as far as the router can tell.
	}
	var legacyCaps []string
	for _, cap := range shards[1].Caps() {
		if cap != "ctxop" {
			legacyCaps = append(legacyCaps, cap)
		}
	}
	shards[1].SetCaps(legacyCaps...)

	lass := NewServer()
	lass.EnableGlobalCache(strings.Join(shardAddrs, ","), CacheConfig{
		SweepInterval: 50 * time.Millisecond,
	})
	lassAddr, err := lass.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(lass.Close)

	ctxs := shardedContexts(t, n)
	bg := context.Background()
	for _, name := range ctxs {
		c := dialT(t, lassAddr, name)
		if err := c.PutGlobal(bg, "k", "v"); err != nil {
			t.Fatalf("PutGlobal(%q): %v", name, err)
		}
		if v, err := c.TryGetGlobal(bg, "k"); err != nil || v != "v" {
			t.Fatalf("TryGetGlobal(%q) = %q, %v", name, v, err)
		}
	}
	// Scatter-gather still covers the legacy shard (via its fallback).
	c := dialT(t, lassAddr, ctxs[0])
	snaps, err := c.SnapshotGlobalMany(bg, ctxs)
	if err != nil {
		t.Fatalf("SnapshotGlobalMany over mixed pool: %v", err)
	}
	if len(snaps) != n {
		t.Fatalf("SnapshotGlobalMany = %d contexts, want %d", len(snaps), n)
	}
	reg := lass.Telemetry()
	if reg.Counter("attrspace.router.fallback").Value() == 0 {
		t.Error("legacy shard served ops but attrspace.router.fallback never counted")
	}
	if reg.Counter("attrspace.router.pooled").Value() == 0 {
		t.Error("v2 shard present but attrspace.router.pooled never counted")
	}
}

// TestShardDownFailsFast: killing one shard degrades only its hash
// range. Its contexts fail quickly with ErrShardDown (no hanging on
// dial timeouts); the surviving shard keeps serving.
func TestShardDownFailsFast(t *testing.T) {
	const n = 2
	lass, shards, _, lassAddr := startShardedPool(t, n)
	ctxs := shardedContexts(t, n)
	bg := context.Background()

	// Prime both shards so the health sessions have connected.
	clients := make([]*Client, n)
	for i, name := range ctxs {
		clients[i] = dialT(t, lassAddr, name)
		if err := clients[i].PutGlobal(bg, "k", "v"); err != nil {
			t.Fatalf("PutGlobal(%q): %v", name, err)
		}
	}

	shards[0].Close()
	// Wait for the health session (50ms heartbeat) to notice.
	deadline := time.Now().Add(5 * time.Second)
	for {
		gc := lass.gcache.Load()
		if gc.shardAt(0).down() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard 0 never marked down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Dead shard's range: fast ErrShardDown.
	start := time.Now()
	ctx, cancel := context.WithTimeout(bg, 3*time.Second)
	defer cancel()
	_, err := clients[0].TryGetGlobal(ctx, "k")
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("op on dead shard = %v, want ErrShardDown", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("dead-shard op took %v, want fast failure", d)
	}

	// Surviving shard's range: unaffected.
	if err := clients[1].PutGlobal(bg, "still", "alive"); err != nil {
		t.Fatalf("surviving shard put: %v", err)
	}
	if v, err := clients[1].TryGetGlobal(bg, "still"); err != nil || v != "alive" {
		t.Fatalf("surviving shard get = %q, %v", v, err)
	}

	// Per-shard telemetry reflects the split. The up gauges refresh on
	// the cache's 500ms health tick, so poll briefly.
	reg := lass.Telemetry()
	if reg.Counter("attrspace.router.shard.0.errors").Value() == 0 {
		t.Error("dead shard's error counter never moved")
	}
	gaugeDeadline := time.Now().Add(3 * time.Second)
	for reg.Gauge("attrspace.router.shard.1.up").Value() != 1 {
		if time.Now().After(gaugeDeadline) {
			t.Error("surviving shard's up gauge never reached 1")
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestShardedStatsChildren: with a sharded pool, `STATS scope=tree` on
// the LASS folds in each live shard's registry snapshot.
func TestShardedStatsChildren(t *testing.T) {
	const n = 2
	_, _, _, lassAddr := startShardedPool(t, n)
	ctxs := shardedContexts(t, n)
	bg := context.Background()
	for _, name := range ctxs {
		c := dialT(t, lassAddr, name)
		if err := c.PutGlobal(bg, "k", "v"); err != nil {
			t.Fatalf("PutGlobal(%q): %v", name, err)
		}
	}
	c := dialT(t, lassAddr, ctxs[0])
	_, snap, err := c.ServerStatsScope(bg, "tree")
	if err != nil {
		t.Fatalf("ServerStatsScope(tree): %v", err)
	}
	// The CPUT ops above executed on the shards, not on the LASS: they
	// can only appear in the rollup through the shard children.
	_, own, err := c.ServerStats(bg)
	if err != nil {
		t.Fatalf("ServerStats: %v", err)
	}
	if own.Counters["attrspace.ops.cput"] != 0 {
		t.Fatalf("LASS itself counted CPUT ops: %d", own.Counters["attrspace.ops.cput"])
	}
	if snap.Counters["attrspace.ops.cput"] == 0 {
		t.Errorf("tree rollup has no attrspace.ops.cput — shard snapshots not folded in (rollup: %v)", snap.Counters)
	}
}
