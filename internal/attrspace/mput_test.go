package attrspace

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"tdp/internal/wire"
)

// TestMPUTRoundTrip exercises the batched put end to end over a real
// TCP LASS: one PutBatch, every value visible, a single mput op
// counted, and subscribers see one event per pair in order.
func TestMPUTRoundTrip(t *testing.T) {
	srv, addr := startServer(t)
	c := dialT(t, addr, "job")
	watcher := dialT(t, addr, "job")
	if err := watcher.Subscribe(); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	pairs := []KV{
		{Key: "pid", Value: "1234"},
		{Key: "executable_name", Value: "science"},
		{Key: "args", Value: "-p1500 -P2000"},
		{Key: "frontend_addr", Value: "1.2.3.4:2090"},
	}
	if err := c.PutBatch(pairs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	for _, p := range pairs {
		v, err := c.TryGet(p.Key)
		if err != nil || v != p.Value {
			t.Errorf("TryGet(%s) = %q, %v; want %q", p.Key, v, err, p.Value)
		}
	}
	reg := srv.Telemetry()
	if got := reg.Counter("attrspace.ops.mput").Value(); got != 1 {
		t.Errorf("ops.mput = %d, want 1", got)
	}
	if got := reg.Counter("attrspace.ops.put").Value(); got != 0 {
		t.Errorf("ops.put = %d, want 0 (batch must not decompose server-side)", got)
	}
	// Subscribers observe the batch as ordered individual events.
	deadline := time.After(5 * time.Second)
	for i, p := range pairs {
		select {
		case ev := <-watcher.Events():
			if ev.Attr != p.Key || ev.Value != p.Value || ev.Op != "put" {
				t.Errorf("event %d = %+v, want put %s=%s", i, ev, p.Key, p.Value)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for event %d", i)
		}
	}
}

// TestMPUTWakesBlockedGets: a blocked Get on any attribute of the
// batch completes when the batch lands.
func TestMPUTWakesBlockedGets(t *testing.T) {
	_, addr := startServer(t)
	producer := dialT(t, addr, "job")
	consumer := dialT(t, addr, "job")

	got := make(chan string, 1)
	go func() {
		v, err := consumer.Get(context.Background(), "b")
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		got <- v
	}()
	time.Sleep(20 * time.Millisecond) // let the Get block server-side
	if err := producer.PutBatch([]KV{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}, {Key: "c", Value: "3"}}); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	select {
	case v := <-got:
		if v != "2" {
			t.Errorf("blocked Get woke with %q, want \"2\"", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Get never woke after MPUT")
	}
}

// rawCaller drives the wire protocol directly, bypassing the client,
// to probe the server with malformed frames.
type rawCaller struct {
	t  *testing.T
	wc *wire.Conn
	id int
}

func newRawCaller(t *testing.T, addr string) *rawCaller {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { raw.Close() })
	return &rawCaller{t: t, wc: wire.NewConn(raw)}
}

func (r *rawCaller) call(m *wire.Message) *wire.Message {
	r.t.Helper()
	r.id++
	m.SetInt("id", r.id)
	if err := r.wc.Send(m); err != nil {
		r.t.Fatalf("send %v: %v", m, err)
	}
	reply, err := r.wc.Recv()
	if err != nil {
		r.t.Fatalf("recv after %v: %v", m, err)
	}
	return reply
}

// TestMPUTMalformed: bad counts and missing kN/vN fields must produce
// an ERROR reply, store nothing, and leave the connection usable.
func TestMPUTMalformed(t *testing.T) {
	_, addr := startServer(t)
	rc := newRawCaller(t, addr)
	if got := rc.call(wire.NewMessage("HELLO").Set("context", "job")); got.Verb != "OK" {
		t.Fatalf("HELLO: %v", got)
	}

	cases := []*wire.Message{
		wire.NewMessage("MPUT"),                     // no n at all
		wire.NewMessage("MPUT").Set("n", "-1"),      // negative n
		wire.NewMessage("MPUT").Set("n", "zzz"),     // non-numeric n
		wire.NewMessage("MPUT").Set("n", "9999999"), // n beyond fields present
		wire.NewMessage("MPUT").SetInt("n", 2).
			Set("k0", "a").Set("v0", "1"), // k1/v1 missing
		wire.NewMessage("MPUT").SetInt("n", 1).
			Set("k0", "a"), // v0 missing
	}
	for i, m := range cases {
		if got := rc.call(m); got.Verb != "ERROR" {
			t.Errorf("case %d: reply %v, want ERROR", i, got)
		}
	}
	// Nothing was stored, and the session still works.
	if got := rc.call(wire.NewMessage("TRYGET").Set("attr", "a")); got.Verb != "NOTFOUND" {
		t.Errorf("attribute leaked from malformed MPUT: %v", got)
	}
	if got := rc.call(wire.NewMessage("PUT").Set("attr", "x").Set("value", "1")); got.Verb != "OK" {
		t.Errorf("connection unusable after malformed MPUTs: %v", got)
	}
}

// legacyServer speaks the pre-MPUT protocol: HELLO/PUT/SUB only, and
// answers anything else — MPUT included — with the unknown-verb ERROR
// an old daemon would produce. subFails makes the first SUB attempts
// fail, to exercise the client's Subscribe retry path.
func legacyServer(t *testing.T, subFailures int) (addr string, putCount *int32) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	var puts int32
	var mu sync.Mutex
	remaining := subFailures
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				wc := wire.NewConn(conn)
				for {
					m, err := wc.Recv()
					if err != nil {
						return
					}
					switch m.Verb {
					case "HELLO":
						wc.Send(wire.NewMessage("OK").Set("id", m.Get("id")))
					case "PUT":
						mu.Lock()
						puts++
						mu.Unlock()
						wc.Send(wire.NewMessage("OK").Set("id", m.Get("id")))
					case "SUB":
						mu.Lock()
						fail := remaining > 0
						if fail {
							remaining--
						}
						mu.Unlock()
						if fail {
							wc.Send(wire.NewMessage("ERROR").Set("id", m.Get("id")).Set("error", "transient failure"))
						} else {
							wc.Send(wire.NewMessage("OK").Set("id", m.Get("id")))
						}
					case "EXIT":
						return
					default:
						wc.Send(wire.NewMessage("ERROR").Set("id", m.Get("id")).
							Set("error", fmt.Sprintf("unknown verb %q", m.Verb)))
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String(), &puts
}

// TestMPUTFallbackToOldServer: against a server that predates MPUT the
// client's PutBatch degrades to individual PUTs, succeeds, and latches
// so later batches skip the doomed MPUT attempt.
func TestMPUTFallbackToOldServer(t *testing.T) {
	addr, puts := legacyServer(t, 0)
	c, err := Dial(nil, addr, "job")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	pairs := []KV{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}, {Key: "c", Value: "3"}}
	if err := c.PutBatch(pairs); err != nil {
		t.Fatalf("PutBatch against old server: %v", err)
	}
	if got := *puts; got != 3 {
		t.Errorf("old server saw %d PUTs, want 3", got)
	}
	if !c.noMPUT.Load() {
		t.Error("client did not latch MPUT unsupported")
	}
	// Second batch goes straight to PUTs, no MPUT retry.
	if err := c.PutBatch(pairs[:2]); err != nil {
		t.Fatalf("second PutBatch: %v", err)
	}
	if got := *puts; got != 5 {
		t.Errorf("old server saw %d PUTs after second batch, want 5", got)
	}
}

// TestPutAsyncCoalescesAgainstOldServer: the async flush path also
// falls back and completes every put individually.
func TestPutAsyncFallbackToOldServer(t *testing.T) {
	addr, puts := legacyServer(t, 0)
	c, err := Dial(nil, addr, "job")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	const n = 20
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		ch, err := c.PutAsync(fmt.Sprintf("k%d", i), "v")
		if err != nil {
			t.Fatalf("PutAsync: %v", err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Errorf("put %d failed: %v", i, r.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("put %d never completed", i)
		}
	}
	if got := *puts; got != n {
		t.Errorf("old server saw %d PUTs, want %d", got, n)
	}
}

// TestSubscribeRetriesAfterFailure: a failed SUB must not latch the
// client as subscribed (the bug fixed alongside MPUT) — a retry goes
// back to the wire and can succeed.
func TestSubscribeRetriesAfterFailure(t *testing.T) {
	addr, _ := legacyServer(t, 1)
	c, err := Dial(nil, addr, "job")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Subscribe(); err == nil {
		t.Fatal("first Subscribe unexpectedly succeeded")
	}
	if err := c.Subscribe(); err != nil {
		t.Fatalf("Subscribe retry after failure: %v", err)
	}
}

// TestPutAsyncCoalesces: with many puts in flight on one connection,
// the client batches the backlog into MPUTs — the server must see far
// fewer round trips than puts while every value still lands.
func TestPutAsyncCoalesces(t *testing.T) {
	srv, addr := startServer(t)
	c := dialT(t, addr, "job")
	const n = 200
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		ch, err := c.PutAsync(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		if err != nil {
			t.Fatalf("PutAsync: %v", err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Errorf("put %d failed: %v", i, r.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("put %d never completed", i)
		}
	}
	for i := 0; i < n; i++ {
		v, err := c.TryGet(fmt.Sprintf("k%d", i))
		if err != nil || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("TryGet(k%d) = %q, %v", i, v, err)
		}
	}
	reg := srv.Telemetry()
	rounds := reg.Counter("attrspace.ops.put").Value() + reg.Counter("attrspace.ops.mput").Value()
	if rounds >= n {
		t.Errorf("server handled %d put round trips for %d puts — no coalescing happened", rounds, n)
	}
	t.Logf("%d async puts coalesced into %d server round trips", n, rounds)
}

// TestConcurrentGetCancellationVsPut races blocking GETs, their
// cancellations, and the PUTs that complete them, across several
// goroutines on several connections — the -race regression test for
// the waiter bookkeeping in attr.Space and the server's GET fast path.
func TestConcurrentGetCancellationVsPut(t *testing.T) {
	_, addr := startServer(t)
	producer := dialT(t, addr, "job")
	const workers = 8
	const rounds = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dialT(t, addr, "job")
			for i := 0; i < rounds; i++ {
				attr := fmt.Sprintf("w%d-r%d", w, i)
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan struct{})
				go func() {
					defer close(done)
					// The Get may win (value) or lose (cancellation);
					// both are valid — only races and hangs are bugs.
					c.Get(ctx, attr)
				}()
				if i%2 == 0 {
					producer.Put(attr, "v")
				}
				cancel()
				select {
				case <-done:
				case <-time.After(10 * time.Second):
					t.Errorf("worker %d round %d: Get hung after cancel", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestGetFastPathNoGoroutine: a GET for a present attribute answers
// inline. Indirect check: a storm of present-GETs completes with the
// correct values (the fast path) while a GET for an absent attribute
// still blocks (the slow path).
func TestGetFastPathStillBlocksWhenAbsent(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "job")
	if err := c.Put("present", "yes"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for i := 0; i < 100; i++ {
		v, err := c.Get(context.Background(), "present")
		if err != nil || v != "yes" {
			t.Fatalf("fast-path Get = %q, %v", v, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.Get(ctx, "absent"); err == nil {
		t.Fatal("Get for absent attribute returned without a Put")
	}
}
