package attrspace

import (
	"strings"
	"testing"
)

// FuzzParseShardSpec hammers the cassd -shard flag parser ("i/n"):
// it must never panic, and anything it accepts must be a well-formed
// 0-based shard coordinate.
func FuzzParseShardSpec(f *testing.F) {
	f.Add("0/1")
	f.Add("2/3")
	f.Add("3/3")
	f.Add("-1/4")
	f.Add("1/0")
	f.Add("/")
	f.Add("1/2/3")
	f.Add("0x1/2")
	f.Add("9999999999999999999/9999999999999999999")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		index, total, err := ParseShardSpec(spec)
		if err != nil {
			return
		}
		if total < 1 || index < 0 || index >= total {
			t.Fatalf("ParseShardSpec(%q) accepted out-of-range coordinate %d/%d", spec, index, total)
		}
		// An accepted spec must route: every context lands on [0, total).
		if idx := ShardIndex("job-0", total); idx < 0 || idx >= total {
			t.Fatalf("ShardIndex with total=%d returned %d", total, idx)
		}
	})
}

// FuzzParseShardAddrs hammers the lassd -cass flag parser (comma
// list): never panic, the resulting map's length must equal the count
// of non-empty trimmed segments, and every retained address must be
// trimmed and non-empty.
func FuzzParseShardAddrs(f *testing.F) {
	f.Add("127.0.0.1:7001")
	f.Add("a:1,b:2,c:3")
	f.Add(" a:1 , b:2 ")
	f.Add(",,,")
	f.Add("")
	f.Add("a:1,,b:2")
	f.Add("\t\n,x")
	f.Fuzz(func(t *testing.T, spec string) {
		m := ParseShardAddrs(spec)
		want := 0
		for _, p := range strings.Split(spec, ",") {
			if strings.TrimSpace(p) != "" {
				want++
			}
		}
		if m.Len() != want {
			t.Fatalf("ParseShardAddrs(%q).Len() = %d, want %d", spec, m.Len(), want)
		}
		for i, a := range m.Addrs() {
			if a == "" || a != strings.TrimSpace(a) {
				t.Fatalf("ParseShardAddrs(%q) addr %d = %q: untrimmed or empty", spec, i, a)
			}
		}
		if m.Len() > 0 {
			// Routing over an accepted map never escapes its range.
			if idx := m.ShardFor("job-42"); idx < 0 || idx >= m.Len() {
				t.Fatalf("ShardFor out of range: %d of %d", idx, m.Len())
			}
		}
	})
}
