package attrspace

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
)

// This file holds the same-host fast path: LASS/CASS daemons listen on
// a unix-domain socket beside their TCP port (ListenUnixBeside), and
// AutoDial transparently prefers that socket when the endpoint is
// local. The dominant TDP hop — AP or paradynd talking to the LASS on
// the same execution host — then skips the TCP stack entirely while
// remote clients keep using TCP, with no configuration on either side.
// On top of the socket, transport v3 (wire.CapShm) negotiates a
// shared-memory ring pair per connection: the segment file lives
// beside the sockets in the temp directory, travels in the HELLO
// reply, and is unlinked as soon as both ends have mapped it.

// SocketPathFor derives the conventional unix socket path paired with
// a TCP listen address: tdp-attr-<port>.sock in the system temp
// directory. Server and clients derive the same path independently, so
// no discovery round is needed. Returns "" when the address has no
// usable port.
func SocketPathFor(tcpAddr string) string {
	_, port, err := net.SplitHostPort(tcpAddr)
	if err != nil || port == "" || port == "0" {
		return ""
	}
	return filepath.Join(os.TempDir(), "tdp-attr-"+port+".sock")
}

// shmSegSeq makes segment paths unique within one server process.
var shmSegSeq atomic.Uint64

// shmSegmentPath returns a fresh path for a transport-v3 segment file,
// beside the unix sockets in the system temp directory (the
// SocketPathFor convention). Uniqueness needs only pid + sequence: the
// file exists just for the window between HELLO and the client mapping
// it, after which the server unlinks it and the mappings alone keep
// the pages alive.
func shmSegmentPath() string {
	return filepath.Join(os.TempDir(),
		fmt.Sprintf("tdp-shm-%d-%d.seg", os.Getpid(), shmSegSeq.Add(1)))
}

// sameHostConn reports whether conn provably joins two endpoints on
// the same machine: a unix-domain socket, or a connection that itself
// vouches through a SameHost method (netsim's conns when same-host
// modelling is enabled). Only such connections are eligible for the
// shared-memory transport — the segment file is reachable by both
// ends exactly when this holds.
func sameHostConn(conn net.Conn) bool {
	if addr := conn.RemoteAddr(); addr != nil && addr.Network() == "unix" {
		return true
	}
	if sh, ok := conn.(interface{ SameHost() bool }); ok {
		return sh.SameHost()
	}
	return false
}

// isLoopbackHost reports whether a dial-address host names this
// machine. Only loopback forms qualify — a resolvable remote hostname
// must never be mistaken for local, or the dialer would connect to an
// unrelated local daemon that happens to share the port.
func isLoopbackHost(host string) bool {
	if host == "" || host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// AutoDial is the default DialFunc: "unix:/path" dials that socket
// directly; a loopback TCP address first tries the conventional
// same-host socket (SocketPathFor) and falls back to TCP when no local
// daemon is listening there — including when a stale socket file from
// a crashed daemon still sits at the path (connection refused), in
// which case the dead file is also removed so later dials skip
// straight to TCP. Non-loopback addresses always use TCP.
func AutoDial(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Dial("unix", path)
	}
	if host, _, err := net.SplitHostPort(addr); err == nil && isLoopbackHost(host) {
		if path := SocketPathFor(addr); path != "" {
			conn, err := net.Dial("unix", path)
			if err == nil {
				return conn, nil
			}
			if errors.Is(err, syscall.ECONNREFUSED) {
				// The file exists but nothing accepts on it: a leftover
				// from a crashed daemon. Clear it; best effort — failure
				// just means the next dial probes it again.
				os.Remove(path)
			}
		}
	}
	return net.Dial("tcp", addr)
}
