package attrspace

import (
	"net"
	"os"
	"path/filepath"
	"strings"
)

// This file holds the same-host fast path: LASS/CASS daemons listen on
// a unix-domain socket beside their TCP port (ListenUnixBeside), and
// AutoDial transparently prefers that socket when the endpoint is
// local. The dominant TDP hop — AP or paradynd talking to the LASS on
// the same execution host — then skips the TCP stack entirely while
// remote clients keep using TCP, with no configuration on either side.

// SocketPathFor derives the conventional unix socket path paired with
// a TCP listen address: tdp-attr-<port>.sock in the system temp
// directory. Server and clients derive the same path independently, so
// no discovery round is needed. Returns "" when the address has no
// usable port.
func SocketPathFor(tcpAddr string) string {
	_, port, err := net.SplitHostPort(tcpAddr)
	if err != nil || port == "" || port == "0" {
		return ""
	}
	return filepath.Join(os.TempDir(), "tdp-attr-"+port+".sock")
}

// isLoopbackHost reports whether a dial-address host names this
// machine. Only loopback forms qualify — a resolvable remote hostname
// must never be mistaken for local, or the dialer would connect to an
// unrelated local daemon that happens to share the port.
func isLoopbackHost(host string) bool {
	if host == "" || host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// AutoDial is the default DialFunc: "unix:/path" dials that socket
// directly; a loopback TCP address first tries the conventional
// same-host socket (SocketPathFor) and falls back to TCP when no local
// daemon is listening there. Non-loopback addresses always use TCP.
func AutoDial(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Dial("unix", path)
	}
	if host, _, err := net.SplitHostPort(addr); err == nil && isLoopbackHost(host) {
		if path := SocketPathFor(addr); path != "" {
			if conn, err := net.Dial("unix", path); err == nil {
				return conn, nil
			}
		}
	}
	return net.Dial("tcp", addr)
}
