package attrspace

import (
	"fmt"
	"strconv"
	"strings"
)

// This file defines the ShardMap: the contract that lets the global
// attribute space span several CASS daemons. A context lives entirely
// on one shard, chosen by hashing the context name, so every
// single-context operation (GPUT/GGET/GDEL/GMPUT and the per-context
// GSNAP) routes to exactly one daemon while multi-context operations
// (context listing, mixed-context snapshots, STATS rollups)
// scatter-gather across all of them.
//
// Both sides hold the same map: a LASS router (see router.go) routes
// by it, and a cassd started with -shard i/n enforces it — a context
// that hashes elsewhere is refused at HELLO, so a misconfigured client
// cannot silently split one context's attributes across two daemons.
//
// The map is versioned. Routing decisions and enforcement are always
// made against one immutable *ShardMap value, and the version is the
// hook a future resharding protocol needs: a coordinator publishes map
// v+1, daemons accept ops tagged with either version while contexts
// migrate, then retire v. Nothing in this PR moves data between
// shards; the version exists so that change can be additive.

// InfraContextPrefix marks infrastructure contexts (router health
// probes, monitor self-publication) that are exempt from shard
// ownership: they may exist on every shard, because every shard needs
// them locally. User contexts never start with "tdp.".
const InfraContextPrefix = "tdp."

// ShardMap is an immutable, versioned assignment of context names to
// shard endpoints. Len()==1 degenerates to the classic single-CASS
// deployment, which keeps every existing call site working unchanged.
type ShardMap struct {
	version uint64
	addrs   []string
}

// NewShardMap builds a map over the given shard endpoints (version 1).
// Order matters: the hash indexes into the slice, so every holder of
// the map must list the shards identically.
func NewShardMap(addrs ...string) *ShardMap {
	return NewShardMapVersion(1, addrs...)
}

// NewShardMapVersion builds a map with an explicit version, for a
// coordinator handing out successive generations during a reshard.
func NewShardMapVersion(version uint64, addrs ...string) *ShardMap {
	cp := make([]string, len(addrs))
	for i, a := range addrs {
		cp[i] = strings.TrimSpace(a)
	}
	return &ShardMap{version: version, addrs: cp}
}

// ParseShardAddrs splits a comma-separated endpoint list — the lassd
// -cass flag syntax — into a ShardMap.
func ParseShardAddrs(spec string) *ShardMap {
	parts := strings.Split(spec, ",")
	addrs := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			addrs = append(addrs, p)
		}
	}
	return NewShardMap(addrs...)
}

// Version returns the map's generation.
func (m *ShardMap) Version() uint64 { return m.version }

// Len returns the shard count.
func (m *ShardMap) Len() int { return len(m.addrs) }

// Addrs returns a copy of the shard endpoints, in shard order.
func (m *ShardMap) Addrs() []string { return append([]string(nil), m.addrs...) }

// Addr returns shard i's endpoint.
func (m *ShardMap) Addr(i int) string { return m.addrs[i] }

// ShardFor returns the shard index owning the named context.
func (m *ShardMap) ShardFor(contextName string) int {
	return ShardIndex(contextName, len(m.addrs))
}

// AddrFor returns the endpoint of the shard owning the named context.
func (m *ShardMap) AddrFor(contextName string) string {
	return m.addrs[m.ShardFor(contextName)]
}

// ShardIndex hashes a context name onto [0, n). FNV-1a: fast, stable
// across processes and architectures (no seed, no word-size
// dependence) — the property a map shared by clients and daemons
// needs. Exposed so cassd's enforcement and the router agree by
// construction.
func ShardIndex(contextName string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(contextName); i++ {
		h ^= uint64(contextName[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// ParseShardSpec parses the cassd -shard flag syntax "i/n" (shard i of
// n, 0-based) into its parts.
func ParseShardSpec(spec string) (index, total int, err error) {
	i := strings.IndexByte(spec, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("shard spec %q: want i/n", spec)
	}
	index, err = strconv.Atoi(spec[:i])
	if err != nil {
		return 0, 0, fmt.Errorf("shard spec %q: bad index: %v", spec, err)
	}
	total, err = strconv.Atoi(spec[i+1:])
	if err != nil {
		return 0, 0, fmt.Errorf("shard spec %q: bad total: %v", spec, err)
	}
	if total < 1 || index < 0 || index >= total {
		return 0, 0, fmt.Errorf("shard spec %q: index out of range", spec)
	}
	return index, total, nil
}
