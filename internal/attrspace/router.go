package attrspace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// This file is the LASS-side shard router: the piece that turns the
// GlobalCache from a relay onto one CASS into a relay onto a ShardMap
// of them. It owns one shardConn per shard, each holding
//
//   - a health Session ("tdp.router" context) whose reconnect loop and
//     heartbeats track shard liveness, so a dead shard fails its ops
//     fast (ErrShardDown) instead of hanging every caller on dial
//     timeouts — and so one shard's death degrades only its hash range
//     while the others keep serving;
//   - a pooled, muxed data connection speaking the context-explicit C*
//     verbs (CapCtxOp): any context's ops ride this one connection,
//     named per message by a ctx field. Ops destined for the same
//     shard coalesce into Cork-batched drain cycles — one corked write
//     and one bounded in-flight window per shard — which both
//     amortizes the per-frame cost and bounds how many operations can
//     be in limbo when a shard dies mid-batch.
//
// A shard that never granted CapCtxOp (a legacy, pre-shard CASS — the
// mixed-version pool case) or that answers a C* verb with an
// unknown-verb error latches legacy mode: its single-context ops fall
// back to the per-context upstream connections the cache has always
// held, so a v2 router in front of a v1 CASS behaves exactly like the
// old GlobalCache. Multi-context scatter-gather (SnapshotMany,
// Contexts listing, per-shard STATS) fans out concurrently across
// shardConns and merges.

// ErrShardDown reports an operation routed to a shard whose health
// session is currently disconnected: the op fails fast rather than
// queueing behind a dial that cannot succeed. Ops on other shards are
// unaffected — this error is the degraded mode, not an outage of the
// global space.
var ErrShardDown = errors.New("attrspace: shard down")

// errNoCtxOp marks a shard that does not speak the C* verbs; callers
// fall back to the per-context connection path.
var errNoCtxOp = errors.New("attrspace: shard does not speak ctxop")

// defaultShardBatch bounds the operations one drain cycle corks into a
// single write when CacheConfig.ShardBatch is zero. The bound is the
// router's flow control: at most this many ops are in flight per shard
// (so a shard crash strands a bounded set), and no single shard's burst
// can monopolize the sender.
const defaultShardBatch = 64

// routerContext is the infrastructure context each shard health
// session joins. It carries no data; its HELLO/heartbeat traffic is
// the liveness probe. The InfraContextPrefix exempts it from shard
// ownership enforcement, since it must exist on every shard.
const routerContext = InfraContextPrefix + "router"

// shardOp is one queued operation awaiting a drain cycle.
type shardOp struct {
	m    *wire.Message
	done chan shardReply
}

// shardReply carries an op's outcome: the raw reply plus the client it
// arrived on (chunked replies need its reassembly buffer).
type shardReply struct {
	reply *wire.Message
	pool  *Client
	err   error
}

// shardConn is the router's state for one shard.
type shardConn struct {
	gc   *GlobalCache
	idx  int
	addr string
	sess *Session // health: reconnect + heartbeat; nil in tests only

	mu       sync.Mutex
	pool     *Client // pooled C* connection; nil until first use or after loss
	legacy   bool    // shard spoke v1: no CapCtxOp (or unknown-verb latched)
	queue    []*shardOp
	draining bool

	gUp       *telemetry.Gauge
	gErrors   *telemetry.Counter
	gInflight *telemetry.Gauge
	cPooled   *telemetry.Counter
	cFallback *telemetry.Counter
}

func (gc *GlobalCache) newShardConn(idx int) *shardConn {
	reg := gc.srv.tel.Load().reg
	prefix := "attrspace.router.shard." + strconv.Itoa(idx) + "."
	sh := &shardConn{
		gc:        gc,
		idx:       idx,
		addr:      gc.shards.Addr(idx),
		gUp:       reg.Gauge(prefix + "up"),
		gErrors:   reg.Counter(prefix + "errors"),
		gInflight: reg.Gauge(prefix + "inflight"),
		cPooled:   reg.Counter("attrspace.router.pooled"),
		cFallback: reg.Counter("attrspace.router.fallback"),
	}
	sh.sess = NewSession(SessionConfig{
		Dial:        gc.dial,
		Addr:        sh.addr,
		Context:     routerContext,
		MaxAttempts: -1, // a shard outage outlasts any finite budget
		Heartbeat:   gc.heartbeat,
		ConnectWait: 5 * time.Second,
		Registry:    reg,
		Logger:      gc.srv.log(),
	})
	return sh
}

// down reports whether the shard should fail fast: its health session
// has connected before and is currently not connected. Before the
// first connect the router gives the shard the benefit of the doubt
// (ops attempt their own dial), so startup ordering — LASS before
// CASS — keeps working.
func (sh *shardConn) down() bool {
	return sh.sess != nil && sh.sess.HasConnected() && !sh.sess.Up()
}

// downErr wraps ErrShardDown with this shard's identity and counts the
// failed op; every fail-fast site returns through here.
func (sh *shardConn) downErr() error {
	sh.gErrors.Inc()
	return fmt.Errorf("%w: shard %d (%s)", ErrShardDown, sh.idx, sh.addr)
}

func (sh *shardConn) close() {
	sh.mu.Lock()
	pool := sh.pool
	sh.pool = nil
	queue := sh.queue
	sh.queue = nil
	sh.mu.Unlock()
	for _, op := range queue {
		op.done <- shardReply{err: ErrClientClosed}
	}
	if pool != nil {
		pool.Close()
	}
	if sh.sess != nil {
		sh.sess.Close()
	}
	sh.gUp.Set(0)
}

// healthTick refreshes the shard's up gauge; called from the cache's
// background loop so tdptop sees state changes even on an idle router.
func (sh *shardConn) healthTick() {
	up := int64(0)
	if sh.sess != nil && sh.sess.Up() {
		up = 1
	}
	sh.gUp.Set(up)
}

// pooledOK reports whether the pooled C* path should be attempted.
func (sh *shardConn) pooledOK() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return !sh.legacy
}

// dialPool opens (or returns) the pooled data connection. The
// connection joins the router context — the C* ops it will carry name
// their real target per message — and offers CapCtxOp on top of the
// standard client capability set.
func (sh *shardConn) dialPool(ctx context.Context) (*Client, error) {
	sh.mu.Lock()
	if pool := sh.pool; pool != nil {
		sh.mu.Unlock()
		return pool, nil
	}
	legacy := sh.legacy
	sh.mu.Unlock()
	if legacy {
		return nil, errNoCtxOp
	}
	pool, err := dialWithCaps(ctx, sh.gc.dial, sh.addr, routerContext,
		append(append([]string(nil), clientCaps...), wire.CapCtxOp))
	if err != nil {
		sh.gErrors.Inc()
		return nil, err
	}
	if !pool.HasCap(wire.CapCtxOp) {
		// A live server that does not speak the C* verbs: a legacy
		// single-shard CASS. Latch fallback mode; the per-context
		// connections carry its traffic from here on.
		pool.Close()
		sh.mu.Lock()
		sh.legacy = true
		sh.mu.Unlock()
		return nil, errNoCtxOp
	}
	pool.OnClose(func(error) {
		sh.mu.Lock()
		if sh.pool == pool {
			sh.pool = nil
		}
		sh.mu.Unlock()
	})
	sh.mu.Lock()
	sh.pool = pool
	sh.mu.Unlock()
	return pool, nil
}

// do queues one C* request for the next drain cycle and waits for its
// reply. Fails fast when the shard is down or legacy.
func (sh *shardConn) do(ctx context.Context, m *wire.Message) (*wire.Message, *Client, error) {
	if sh.down() {
		return nil, nil, sh.downErr()
	}
	if !sh.pooledOK() {
		return nil, nil, errNoCtxOp
	}
	op := &shardOp{m: m, done: make(chan shardReply, 1)}
	sh.mu.Lock()
	if sh.gc.isClosed() {
		sh.mu.Unlock()
		return nil, nil, errCacheClosed
	}
	sh.queue = append(sh.queue, op)
	kick := !sh.draining
	if kick {
		sh.draining = true
	}
	sh.mu.Unlock()
	if kick {
		go sh.drain(ctx)
	}
	select {
	case r := <-op.done:
		if r.err != nil {
			if !errors.Is(r.err, errNoCtxOp) {
				sh.gErrors.Inc()
			}
			return nil, nil, r.err
		}
		return r.reply, r.pool, nil
	case <-ctx.Done():
		// The drain loop still completes the op (done is buffered);
		// this caller just stops waiting.
		return nil, nil, ctx.Err()
	}
}

// drain is the per-shard group-commit loop: while ops are queued, take
// up to shardDrainBatch of them, send them upstream in one corked
// write, then wait for all their replies before starting the next
// cycle. One cycle in flight per shard — a bounded window that
// back-pressures producers, keeps any one shard from monopolizing the
// router, and caps the ops in limbo when the shard dies mid-cycle.
// Independent shards' cycles overlap, which is where the aggregate
// throughput beyond one daemon comes from.
func (sh *shardConn) drain(ctx context.Context) {
	for {
		sh.mu.Lock()
		if len(sh.queue) == 0 {
			sh.draining = false
			sh.mu.Unlock()
			return
		}
		n := len(sh.queue)
		if n > sh.gc.batch {
			n = sh.gc.batch
		}
		batch := sh.queue[:n:n]
		sh.queue = append([]*shardOp(nil), sh.queue[n:]...)
		sh.mu.Unlock()

		pool, err := sh.dialPool(ctx)
		if err != nil {
			for _, op := range batch {
				op.done <- shardReply{err: err}
			}
			continue
		}
		type sent struct {
			op *shardOp
			ch chan *wire.Message
		}
		sends := make([]sent, 0, len(batch))
		pool.wc.Cork()
		for _, op := range batch {
			ch, _, err := pool.send(op.m)
			if err != nil {
				op.done <- shardReply{err: err}
				continue
			}
			sends = append(sends, sent{op: op, ch: ch})
		}
		pool.wc.Uncork()
		sh.gInflight.Set(int64(len(sends)))
		for _, s := range sends {
			// Always answered: a real reply, or the synthetic conn-error
			// reply fail() injects when the transport dies.
			s.op.done <- shardReply{reply: <-s.ch, pool: pool}
		}
		sh.gInflight.Set(0)
		sh.cPooled.Add(int64(len(sends)))
	}
}

// ctxVerb builds a C* request naming its target context.
func ctxVerb(verb, contextName string) *wire.Message {
	return wire.NewMessage(verb).Set("ctx", contextName)
}

// checkCtxOpReply maps a C* reply to an error, latching legacy mode on
// unknown-verb (a server that granted nothing would already have been
// latched at dial; this is belt and braces against odd middleboxes).
func (sh *shardConn) checkCtxOpReply(reply *wire.Message) error {
	err := replyErr(reply)
	if err != nil && isUnknownVerb(err) {
		sh.mu.Lock()
		sh.legacy = true
		sh.mu.Unlock()
		return errNoCtxOp
	}
	return err
}

func isUnknownVerb(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown verb")
}

// --- single-context pooled operations -------------------------------

func (sh *shardConn) put(ctx context.Context, contextName, attribute, value string) (uint64, error) {
	reply, _, err := sh.do(ctx, ctxVerb("CPUT", contextName).Set("attr", attribute).Set("value", value))
	if err != nil {
		return 0, err
	}
	if err := sh.checkCtxOpReply(reply); err != nil {
		return 0, err
	}
	return strconv.ParseUint(reply.Get("seq"), 10, 64)
}

func (sh *shardConn) putBatch(ctx context.Context, contextName string, pairs []KV) (uint64, error) {
	m := ctxVerb("CMPUT", contextName).SetInt("n", len(pairs))
	for i, p := range pairs {
		idx := strconv.Itoa(i)
		m.Set("k"+idx, p.Key)
		m.Set("v"+idx, p.Value)
	}
	reply, _, err := sh.do(ctx, m)
	if err != nil {
		return 0, err
	}
	if err := sh.checkCtxOpReply(reply); err != nil {
		return 0, err
	}
	return strconv.ParseUint(reply.Get("seq"), 10, 64)
}

func (sh *shardConn) tryGet(ctx context.Context, contextName, attribute string) (string, uint64, error) {
	reply, _, err := sh.do(ctx, ctxVerb("CGET", contextName).Set("attr", attribute))
	if err != nil {
		return "", 0, err
	}
	if reply.Verb == "NOTFOUND" {
		return "", 0, ErrNotFound
	}
	if err := sh.checkCtxOpReply(reply); err != nil {
		return "", 0, err
	}
	seq, _ := strconv.ParseUint(reply.Get("seq"), 10, 64)
	return reply.Get("value"), seq, nil
}

func (sh *shardConn) delete(ctx context.Context, contextName, attribute string) (uint64, error) {
	reply, _, err := sh.do(ctx, ctxVerb("CDEL", contextName).Set("attr", attribute))
	if err != nil {
		return 0, err
	}
	if err := sh.checkCtxOpReply(reply); err != nil {
		return 0, err
	}
	return strconv.ParseUint(reply.Get("seq"), 10, 64)
}

func (sh *shardConn) snapshot(ctx context.Context, contextName string) (map[string]string, error) {
	reply, pool, err := sh.do(ctx, ctxVerb("CSNAP", contextName))
	if err != nil {
		return nil, err
	}
	if err := sh.checkCtxOpReply(reply); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, part := range append(pool.takeChunks(reply.Get("id")), reply) {
		n, _ := strconv.Atoi(part.Get("n"))
		for i := 0; i < n; i++ {
			idx := strconv.Itoa(i)
			out[part.Get("k"+idx)] = part.Get("v" + idx)
		}
	}
	return out, nil
}

func (sh *shardConn) contexts(ctx context.Context) ([]string, error) {
	reply, _, err := sh.do(ctx, wire.NewMessage("CCTXS"))
	if err != nil {
		return nil, err
	}
	if err := sh.checkCtxOpReply(reply); err != nil {
		return nil, err
	}
	n, _ := strconv.Atoi(reply.Get("n"))
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, reply.Get("k"+strconv.Itoa(i)))
	}
	return names, nil
}

// --- scatter-gather -------------------------------------------------

// SnapshotMany snapshots several contexts in one scatter-gather: the
// names group by owning shard, each shard's snapshots coalesce into
// Cork-batched drain cycles on its pooled connection, and the shards
// run concurrently. The result maps context name → snapshot for every
// context that answered; err is the first failure (down shard, legacy
// shard error) with the successes still returned — a degraded pool
// yields a partial, labeled picture rather than nothing.
func (gc *GlobalCache) SnapshotMany(ctx context.Context, names []string) (map[string]map[string]string, error) {
	type result struct {
		name string
		snap map[string]string
		err  error
	}
	results := make(chan result, len(names))
	for _, name := range names {
		go func(name string) {
			sh := gc.shard(name)
			snap, err := sh.snapshot(ctx, name)
			if errors.Is(err, errNoCtxOp) {
				// Legacy shard: one per-context connection does the job.
				snap, err = gc.Snapshot(ctx, name)
			}
			results <- result{name: name, snap: snap, err: err}
		}(name)
	}
	out := make(map[string]map[string]string, len(names))
	var firstErr error
	for range names {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("context %q: %w", r.name, r.err)
			}
			continue
		}
		out[r.name] = r.snap
	}
	return out, firstErr
}

// GlobalContexts lists the context names alive across every shard
// (deduplicated, unsorted). Shards that are down or legacy are skipped
// — the listing is best-effort by design, like the paper's monitoring
// verbs — with err reporting the first skip cause when any shard could
// not answer.
func (gc *GlobalCache) GlobalContexts(ctx context.Context) ([]string, error) {
	n := gc.shards.Len()
	type result struct {
		names []string
		err   error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int, sh *shardConn) {
			names, err := sh.contexts(ctx)
			if errors.Is(err, errNoCtxOp) {
				// A legacy shard cannot enumerate its contexts — the
				// v1 protocol has no listing verb. But the router has
				// forwarded every one of that shard's contexts itself,
				// so its per-context connection cache is an authoritative
				// local substitute for everything this LASS touched.
				sh.cFallback.Inc()
				names, err = gc.localContextsFor(i), nil
			}
			results <- result{names: names, err: err}
		}(i, gc.shardAt(i))
	}
	seen := make(map[string]struct{})
	var out []string
	var firstErr error
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		for _, name := range r.names {
			if _, dup := seen[name]; !dup {
				seen[name] = struct{}{}
				out = append(out, name)
			}
		}
	}
	return out, firstErr
}

// localContextsFor lists the cached per-context connections whose
// context hashes to shard i — the router's own record of what it has
// forwarded to a shard that cannot answer CCTXS itself.
func (gc *GlobalCache) localContextsFor(i int) []string {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	var out []string
	for name := range gc.ctxs {
		if gc.shards.ShardFor(name) == i {
			out = append(out, name)
		}
	}
	return out
}

// ShardStats fetches each live shard's telemetry snapshot
// concurrently — the scatter half of `STATS scope=tree` on a sharded
// LASS. Down or unreachable shards contribute nothing; the rollup is
// the surviving pool's picture.
func (gc *GlobalCache) ShardStats() []telemetry.Snapshot {
	n := gc.shards.Len()
	results := make(chan *telemetry.Snapshot, n)
	for i := 0; i < n; i++ {
		go func(sh *shardConn) {
			if sh.down() {
				results <- nil
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			pool, err := sh.dialPool(ctx)
			if err != nil {
				results <- nil
				return
			}
			_, snap, err := pool.ServerStats(ctx)
			if err != nil {
				results <- nil
				return
			}
			results <- &snap
		}(gc.shardAt(i))
	}
	var out []telemetry.Snapshot
	for i := 0; i < n; i++ {
		if s := <-results; s != nil {
			out = append(out, *s)
		}
	}
	return out
}

// encodeSnapshotMany renders a SnapshotMany result as the GSNAPM reply
// payload: one k/v pair per context, the value a JSON object of the
// context's attributes.
func encodeSnapshotMany(id string, snaps map[string]map[string]string) (*wire.Message, error) {
	reply := wire.NewMessage("SNAPV").Set("id", id).SetInt("n", len(snaps))
	i := 0
	for name, snap := range snaps {
		data, err := json.Marshal(snap)
		if err != nil {
			return nil, err
		}
		idx := strconv.Itoa(i)
		reply.Set("k"+idx, name)
		reply.Set("v"+idx, string(data))
		i++
	}
	return reply, nil
}
