package attrspace

import (
	"net"
	"testing"
	"time"

	"tdp/internal/wire"
)

// rawConn opens a raw framed connection to the server, bypassing the
// Client, for protocol-level adversarial tests.
func rawConn(t *testing.T, addr string) *wire.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { raw.Close() })
	return wire.NewConn(raw)
}

func TestProtocolOpBeforeHello(t *testing.T) {
	_, addr := startServer(t)
	wc := rawConn(t, addr)
	for _, verb := range []string{"PUT", "GET", "TRYGET", "DELETE", "SNAP", "SUB"} {
		if err := wc.Send(wire.NewMessage(verb).Set("id", "1").Set("attr", "a").Set("value", "v")); err != nil {
			t.Fatalf("send %s: %v", verb, err)
		}
		reply, err := wc.Recv()
		if err != nil {
			t.Fatalf("recv after %s: %v", verb, err)
		}
		if reply.Verb != "ERROR" || reply.Get("error") != "HELLO required" {
			t.Errorf("%s before HELLO: reply %v", verb, reply)
		}
	}
}

func TestProtocolSurvivesGarbageThenDisconnect(t *testing.T) {
	// A client that sends a valid frame with an unknown verb, then
	// slams the connection, must not disturb other sessions.
	srv, addr := startServer(t)
	good := dialT(t, addr, "ctx")
	good.Put("k", "v")

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	wc := wire.NewConn(raw)
	wc.Send(wire.NewMessage("HELLO").Set("context", "junk"))
	wc.Recv()
	wc.Send(wire.NewMessage("WAT").Set("id", "9"))
	if reply, err := wc.Recv(); err != nil || reply.Verb != "ERROR" {
		t.Fatalf("unknown verb reply: %v %v", reply, err)
	}
	raw.Close()

	// The junk context's refcount drains.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Space().Refs("junk") != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Space().Refs("junk") != 0 {
		t.Error("abandoned connection leaked a context reference")
	}
	// The good session is unaffected.
	if v, err := good.TryGet("k"); err != nil || v != "v" {
		t.Errorf("good session disturbed: %q %v", v, err)
	}
}

func TestProtocolMalformedFrameDisconnectsOnlyThatClient(t *testing.T) {
	_, addr := startServer(t)
	good := dialT(t, addr, "ctx")

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// Valid length header, garbage payload.
	raw.Write([]byte{0, 0, 0, 3, 'z', 'z', 'z'})
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		// Some servers might reply; ours just drops the connection.
		t.Log("server replied to malformed frame (acceptable)")
	}
	raw.Close()

	if err := good.Put("still", "alive"); err != nil {
		t.Errorf("healthy client affected by another's malformed frame: %v", err)
	}
}

func TestProtocolDoubleSubscribeRejected(t *testing.T) {
	_, addr := startServer(t)
	wc := rawConn(t, addr)
	wc.Send(wire.NewMessage("HELLO").Set("context", "c").Set("id", "0"))
	wc.Recv()
	wc.Send(wire.NewMessage("SUB").Set("id", "1"))
	if reply, _ := wc.Recv(); reply.Verb != "OK" {
		t.Fatalf("first SUB: %v", reply)
	}
	wc.Send(wire.NewMessage("SUB").Set("id", "2"))
	if reply, _ := wc.Recv(); reply.Verb != "ERROR" {
		t.Errorf("second SUB: %v", reply)
	}
}

func TestProtocolInterleavedGetsShareConnection(t *testing.T) {
	// Raw check of the id-multiplexing that backs tdp_async_get: two
	// GETs outstanding, answered out of order, replies carry the right
	// ids.
	_, addr := startServer(t)
	producer := dialT(t, addr, "c")
	wc := rawConn(t, addr)
	wc.Send(wire.NewMessage("HELLO").Set("context", "c").Set("id", "0"))
	wc.Recv()
	wc.Send(wire.NewMessage("GET").Set("id", "g1").Set("attr", "first"))
	wc.Send(wire.NewMessage("GET").Set("id", "g2").Set("attr", "second"))

	producer.Put("second", "2") // satisfy the later request first
	reply, err := wc.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if reply.Get("id") != "g2" || reply.Get("value") != "2" {
		t.Errorf("first reply = %v, want g2", reply)
	}
	producer.Put("first", "1")
	reply, err = wc.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if reply.Get("id") != "g1" || reply.Get("value") != "1" {
		t.Errorf("second reply = %v, want g1", reply)
	}
}
