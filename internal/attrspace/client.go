package attrspace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tdp/internal/attr"
	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// ErrNotFound mirrors attr.ErrNotFound on the client side.
var ErrNotFound = attr.ErrNotFound

// ErrClientClosed is returned for operations on a closed client.
var ErrClientClosed = errors.New("attrspace: client closed")

// ErrConnLost reports an operation cut short by a transport failure:
// the connection died between the request and its reply (or while
// sending it). Unlike a server ERROR, the operation's fate is unknown
// — it may or may not have been applied — which is exactly the case a
// Session's seq-guarded retry exists for.
var ErrConnLost = errors.New("attrspace: connection lost")

// ErrServerDraining reports that the server announced a graceful
// shutdown (the CLOSE verb): in-flight replies were still delivered,
// but no new operations are accepted on this connection. A Session
// treats it like a connection loss and reconnects after backoff.
var ErrServerDraining = errors.New("attrspace: server draining")

// DialFunc opens a stream to an attribute space server. Real TCP uses
// net.Dial("tcp", addr); the simulated network uses (*netsim.Host).Dial.
type DialFunc func(addr string) (net.Conn, error)

// TCPDial is the plain TCP DialFunc. The default when none is supplied
// is AutoDial, which prefers the same-host unix socket for loopback
// endpoints; pass TCPDial explicitly to force TCP.
func TCPDial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// clientCaps are the transport capabilities this client offers in
// HELLO; the server grants the intersection with its own. CapShm is
// offered separately, only when the dialed connection is provably
// same-host (see dialWithCaps).
var clientCaps = []string{wire.CapMux, wire.CapSnapd, wire.CapChunk, wire.CapPing, wire.CapByteWin}

// Event is a pushed attribute change received after Subscribe.
type Event struct {
	Attr  string
	Value string
	Op    string // "put", "delete", or "destroy"
	Seq   uint64
	// Lost is the number of updates the server's fan-out ring dropped
	// for this subscriber since the previous event (0 almost always).
	// A consumer mirroring the space — the LASS global cache — must
	// treat any nonzero Lost as a gap and resynchronize.
	Lost uint64
	// Resync marks an event synthesized by a Session after a reconnect
	// rather than pushed live by the server: either the bare gap marker
	// (Op "resync", no Attr) emitted first, or a snapshot-diff replay
	// ("put"/"delete") bringing the consumer's mirror back in step.
	// Consumers holding derived state (the LASS global cache, monitors)
	// must treat the marker as "events may have been missed here".
	Resync bool
}

// KV is one attribute/value pair in a batched put; re-exported from
// the attr engine so wire-level and in-process batches share a type.
type KV = attr.KV

// Client is a connection to a LASS or CASS, joined to one context.
// It is safe for concurrent use; any number of blocking Gets may be
// outstanding simultaneously.
type Client struct {
	wc  *wire.Conn
	raw net.Conn

	mu       sync.Mutex
	nextID   uint64
	pending  map[string]chan *wire.Message
	closed   bool
	draining bool // server sent CLOSE; no new sends, replies still land
	err      error

	events  chan Event
	handler func(Event) // when set, replaces the events channel
	onClose func(error)
	subbed  bool

	// Transport v2 state, fixed once HELLO's OK lands: the granted
	// capability set, the stream mux (nil on a v1 connection), and the
	// reassembly buffer for chunked bulk replies, keyed by request id.
	caps   map[string]bool
	mux    *wire.Mux
	chunks map[string][]*wire.Message

	// Transport v3 cutover state. shmSwapID names the in-flight SHMRDY
	// request: when its reply arrives, the read loop activates the ring
	// endpoint and swaps the conn's read side onto it BEFORE delivering
	// the reply — the very next frame already arrives over shared
	// memory. Registered under mu by the same send that registers the
	// pending-reply slot, so the reply can never race the registration.
	shmSwapID string
	shmSwapEP *wire.ShmEndpoint
	shmActive bool

	// Async-put coalescing state: queued puts accumulate in putq while
	// a flush is in flight and leave as one MPUT. noMPUT flips on when
	// the server answers MPUT with an unknown-verb error (an older
	// peer); from then on batches fall back to pipelined PUTs. noSNAPD
	// is the same latch for the delta-snapshot verb — belt and braces
	// on top of capability negotiation.
	putq     []pendingPut
	flushing bool
	noMPUT   atomic.Bool
	noSNAPD  atomic.Bool

	// Optional telemetry, installed by SetTelemetry. reg counts
	// per-verb ops and latencies under "client.*"; tracer starts a
	// root span per operation when the caller supplied none.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
}

// Dial connects to the server at addr using dial and joins the named
// context. Every Dial must be balanced by Close, which performs the
// tdp_exit half of the context's reference counting.
func Dial(dial DialFunc, addr, contextName string) (*Client, error) {
	return DialCtx(context.Background(), dial, addr, contextName)
}

// DialCtx is Dial bounded by a context: a deadline or cancellation
// covers the HELLO round trip, so a server that accepts connections
// but never replies (hung, not dead) cannot wedge the caller. The
// fault supervisor's service pings and the Session reconnect loop
// depend on this bound.
func DialCtx(ctx context.Context, dial DialFunc, addr, contextName string) (*Client, error) {
	return dialWithCaps(ctx, dial, addr, contextName, clientCaps)
}

// dialWithCaps is DialCtx with an explicit capability offer. The shard
// router uses it to offer CapCtxOp on its pooled connections without
// changing what ordinary clients advertise.
func dialWithCaps(ctx context.Context, dial DialFunc, addr, contextName string, caps []string) (*Client, error) {
	if dial == nil {
		dial = AutoDial
	}
	raw, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("attrspace: dial %s: %w", addr, err)
	}
	// The shm transport is only meaningful (and only safe — both ends
	// must reach the same segment file) across a provably same-host
	// connection, so the capability is offered per connection rather
	// than unconditionally.
	if wire.ShmSupported() && sameHostConn(raw) {
		caps = append(append([]string(nil), caps...), wire.CapShm)
	}
	c := &Client{
		wc:      wire.NewConn(raw),
		raw:     raw,
		pending: make(map[string]chan *wire.Message),
		chunks:  make(map[string][]*wire.Message),
		events:  make(chan Event, 64),
	}
	go c.readLoop()
	if ctx.Done() != nil {
		// Watchdog: a cancelled handshake closes the transport, which
		// fails the read loop and errors the pending HELLO promptly.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				raw.Close()
			case <-stop:
			}
		}()
	}
	hello := wire.NewMessage("HELLO").Set("context", contextName).
		Set("caps", strings.Join(caps, ","))
	reply, err := c.call(ctx, "HELLO", hello)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("attrspace: hello: %w", err)
	}
	if reply.Verb != "OK" {
		c.Close()
		return nil, fmt.Errorf("attrspace: hello rejected: %s", reply.Get("error"))
	}
	// A v1 server ignored the caps field and granted nothing; a v2
	// server replies with the intersection. Either way both ends now
	// agree, and the mux engages only when both speak it.
	if granted := reply.Get("caps"); granted != "" {
		set := wire.ParseCaps(granted)
		c.mu.Lock()
		c.caps = set
		if set[wire.CapMux] {
			c.mux = wire.NewMux(c.wc, wire.MuxConfig{Registry: c.reg, ByteWindow: set[wire.CapByteWin]})
		}
		c.mu.Unlock()
		if set[wire.CapShm] {
			// Best effort: a failed cutover leaves the connection on the
			// socket exactly as a v2 peer — the server cleans the segment
			// file at connection teardown.
			c.upgradeShm(reply.Get("shmfile"))
		}
	}
	return c, nil
}

// upgradeShm performs the client half of the transport-v3 cutover: map
// the segment the server created, announce readiness with SHMRDY (the
// last framed bytes this client ever writes to the socket), and swap
// the conn's write side onto the ring once the server's OK lands. The
// read-side swap happens inside the read loop (see readLoop), which is
// the only place that knows no framed socket byte follows the OK.
// Failing anywhere before SHMRDY just leaves the connection on the
// socket; the server only cuts over when SHMRDY arrives.
func (c *Client) upgradeShm(path string) {
	if path == "" {
		return
	}
	seg, err := wire.OpenShmSegment(path)
	if err != nil {
		return
	}
	ep := seg.Endpoint(false, c.raw)
	ch, _, err := c.sendHook(wire.NewMessage("SHMRDY"), func(id string) {
		c.shmSwapID, c.shmSwapEP = id, ep
	})
	if err != nil {
		return
	}
	// Safe to block: dialWithCaps still owns the client — no Session
	// heartbeats, subscriptions, or user requests exist yet, so nothing
	// else can write to the socket behind SHMRDY, and the only traffic
	// the read loop can see before this reply is the reply itself (a
	// conn failure delivers a synthetic ERROR here instead).
	reply := <-ch
	if reply.Verb != "OK" {
		c.mu.Lock()
		c.shmSwapID, c.shmSwapEP = "", nil
		c.mu.Unlock()
		return
	}
	// The read loop has already activated the doorbell and swapped the
	// read side (before delivering the OK). Swapping the write side
	// completes the cutover; the request that follows is the first
	// frame through the ring.
	c.wc.SwapWrite(ep)
	c.mu.Lock()
	c.shmActive = true
	c.mu.Unlock()
}

// ShmActive reports whether this connection completed the transport-v3
// cutover and is carrying its frames over the shared-memory ring.
func (c *Client) ShmActive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shmActive
}

// muxer returns the connection's stream mux, nil on a v1 connection.
func (c *Client) muxer() *wire.Mux {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mux
}

// HasCap reports whether the server granted the named transport-v2
// capability (wire.CapMux etc.) during the HELLO handshake.
func (c *Client) HasCap(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.caps[name]
}

func (c *Client) readLoop() {
	for {
		m, err := c.wc.Recv()
		if err != nil {
			// A transport error after a CLOSE announcement is the
			// drain completing, not an unexpected loss: report it as
			// such so retrying callers classify it correctly.
			c.mu.Lock()
			draining := c.draining
			c.mu.Unlock()
			if draining {
				err = ErrServerDraining
			}
			c.fail(err)
			return
		}
		if x := c.muxer(); x != nil {
			if _, handled := x.Accept(m); handled {
				continue // pure transport (WINUP), nothing to dispatch
			}
		}
		if m.Verb == "EVENT" {
			seq, _ := strconv.ParseUint(m.Get("seq"), 10, 64)
			lost, _ := strconv.ParseUint(m.Get("lost"), 10, 64)
			ev := Event{Attr: m.Get("attr"), Value: m.Get("value"), Op: m.Get("op"), Seq: seq, Lost: lost}
			c.mu.Lock()
			handler := c.handler
			c.mu.Unlock()
			if handler != nil {
				// Synchronous delivery: the handler observes every event
				// in server order with no client-side drops. It must not
				// block on this client's own operations.
				handler(ev)
				continue
			}
			select {
			case c.events <- ev:
			default:
				// The event buffer is full; drop-oldest keeps the
				// connection from deadlocking against a slow consumer.
				select {
				case <-c.events:
				default:
				}
				select {
				case c.events <- ev:
				default:
				}
			}
			continue
		}
		if m.Verb == "CLOSE" {
			// GOAWAY-style drain announcement: the server finishes the
			// replies already in flight, then closes. Stop issuing new
			// requests now; fail once the last pending reply lands (or
			// immediately when nothing is outstanding).
			c.mu.Lock()
			c.draining = true
			idle := len(c.pending) == 0
			c.mu.Unlock()
			if idle {
				c.fail(ErrServerDraining)
				return
			}
			continue
		}
		id := m.Get("id")
		if m.Get("more") == "1" {
			// Interior chunk of a multi-part bulk reply (CapChunk):
			// buffer it against the request id; the final part (no
			// `more`) is delivered through the pending channel as usual
			// and the call site collects the buffered parts. Chunks for
			// an abandoned request are dropped, not accumulated.
			c.mu.Lock()
			if _, live := c.pending[id]; live {
				c.chunks[id] = append(c.chunks[id], m)
			}
			c.mu.Unlock()
			continue
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		if ch == nil {
			delete(c.chunks, id)
		}
		var swapEP *wire.ShmEndpoint
		if id != "" && id == c.shmSwapID && m.Verb == "OK" {
			swapEP, c.shmSwapID, c.shmSwapEP = c.shmSwapEP, "", nil
		}
		drained := c.draining && len(c.pending) == 0
		c.mu.Unlock()
		if swapEP != nil {
			// Transport-v3 cutover: this OK answers our SHMRDY and is the
			// last framed byte the socket will ever carry — the server
			// swapped its write side right after sending it. Hand the
			// socket to the doorbell and read everything further from the
			// ring, before the waiter sees the reply (so its first request
			// cannot outrun the swap).
			swapEP.Activate()
			c.wc.SwapRead(swapEP)
		}
		if ch != nil {
			ch <- m
		}
		if drained {
			c.fail(ErrServerDraining)
			return
		}
	}
}

// takeChunks removes and returns the buffered interior parts of a
// chunked reply; call with the final part's request id in hand.
func (c *Client) takeChunks(id string) []*wire.Message {
	c.mu.Lock()
	parts := c.chunks[id]
	delete(c.chunks, id)
	c.mu.Unlock()
	return parts
}

// fail moves the client to its terminal state exactly once: every
// pending reply slot receives a synthetic connection-error reply (the
// "conn" tag distinguishes it from a real server ERROR, so callers see
// ErrConnLost rather than a server fault), the event channel closes,
// and the OnClose hook fires. It is called from the read loop on any
// transport error, from send on a write error (a partial write corrupts
// framing — the connection is unusable), and from Close.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	pending := c.pending
	c.pending = make(map[string]chan *wire.Message)
	c.chunks = make(map[string][]*wire.Message)
	mux := c.mux
	onClose := c.onClose
	c.mu.Unlock()
	if mux != nil {
		mux.Fail(err)
	}
	for id, ch := range pending {
		ch <- wire.NewMessage("ERROR").Set("id", id).Set("error", err.Error()).Set("conn", "1")
	}
	close(c.events)
	c.raw.Close()
	if onClose != nil {
		onClose(err)
	}
}

// SetEventHandler installs a function invoked synchronously from the
// read loop for every pushed EVENT, replacing delivery on the Events
// channel. Unlike the channel (which drops oldest when the consumer
// lags), a handler observes every event the server sent, in order —
// the property a coherent mirror needs. Install it before Subscribe;
// the handler must not call back into this client's blocking
// operations (it runs on the loop that would receive their replies).
func (c *Client) SetEventHandler(fn func(Event)) {
	c.mu.Lock()
	c.handler = fn
	c.mu.Unlock()
}

// OnClose installs a hook invoked once when the client fails or is
// closed, with the terminal error. Used by the LASS global cache to
// tear down a cache context whose upstream died, and by Session to
// trigger reconnection. Installing the hook on an already-failed
// client invokes it immediately (on the calling goroutine) — without
// this, a client that dies between Dial and OnClose would never signal
// anyone.
func (c *Client) OnClose(fn func(error)) {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if fn != nil {
			fn(err)
		}
		return
	}
	c.onClose = fn
	c.mu.Unlock()
}

// SetTelemetry installs a metrics registry (per-verb op counters and
// latency histograms under "client.*", plus the shared wire byte
// counters) and a tracer. With a tracer set, every operation without a
// caller-supplied span becomes its own root trace; either way the
// trace/span IDs ride the request as the reserved _tid/_sid fields so
// the server logs its span under the same trace. Either argument may
// be nil. Call before issuing operations.
func (c *Client) SetTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	c.mu.Lock()
	c.reg = reg
	c.tracer = tracer
	c.mu.Unlock()
	if reg != nil {
		c.wc.InstrumentRegistry(reg)
	}
}

// instrument opens the client-side observation of one operation: it
// bumps the verb counter, starts (or continues) a span, stamps the
// trace fields onto m, and returns a func to call when the reply is
// in. Returns a no-op when no telemetry is configured and no span is
// in ctx.
func (c *Client) instrument(ctx context.Context, verb string, m *wire.Message) func() {
	c.mu.Lock()
	reg, tracer := c.reg, c.tracer
	c.mu.Unlock()

	var span *telemetry.Span
	if parent := telemetry.FromContext(ctx); parent != nil {
		span = parent.StartChild("client." + strings.ToLower(verb))
	} else if tracer != nil {
		span = tracer.StartSpan("client." + strings.ToLower(verb))
	}
	if span != nil {
		if a := m.Get("attr"); a != "" {
			span.Set("attr", a)
		}
		m.SetTrace(span.TraceID(), span.SpanID())
	}

	var lat *telemetry.Histogram
	if reg != nil {
		v := strings.ToLower(verb)
		reg.Counter("client.ops." + v).Inc()
		lat = reg.Histogram("client.latency."+v, nil)
	}
	start := time.Now()
	return func() {
		if lat != nil {
			lat.Since(start)
		}
		span.End()
	}
}

// call sends a request and waits for its tagged reply.
func (c *Client) call(ctx context.Context, verb string, m *wire.Message) (*wire.Message, error) {
	done := c.instrument(ctx, verb, m)
	defer done()
	ch, id, err := c.send(m)
	if err != nil {
		return nil, err
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		delete(c.chunks, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// send registers a pending reply slot and transmits the request. A
// write error is terminal for the whole connection, not just this
// request: the frame may have left partially, so the stream's framing
// can no longer be trusted, and a connection whose write half is dead
// while its read half blocks would otherwise strand every other
// pending reply forever. fail drains them all exactly once.
func (c *Client) send(m *wire.Message) (chan *wire.Message, string, error) {
	return c.sendHook(m, nil)
}

// sendHook is send with an optional hook invoked under mu right after
// the pending-reply slot is registered — atomically with it, from the
// read loop's point of view. The transport-v3 cutover uses it to
// register the SHMRDY swap state: registering after send returned
// would let the reply arrive first and the read-side swap never
// happen.
func (c *Client) sendHook(m *wire.Message, hook func(id string)) (chan *wire.Message, string, error) {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, "", err
	}
	if c.draining {
		c.mu.Unlock()
		return nil, "", ErrServerDraining
	}
	c.nextID++
	id := strconv.FormatUint(c.nextID, 10)
	ch := make(chan *wire.Message, 1)
	c.pending[id] = ch
	if hook != nil {
		hook(id)
	}
	x := c.mux
	c.mu.Unlock()
	m.Set("id", id)
	// Requests ride the control stream (never window-limited); routing
	// them through the mux lets accumulated receive-side credit grants
	// piggyback instead of costing explicit WINUP frames.
	var err error
	if x != nil {
		err = x.SendOn(wire.StreamControl, m)
	} else {
		err = c.wc.Send(m)
	}
	if err != nil {
		c.fail(err)
		return nil, "", fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return ch, id, nil
}

func replyErr(reply *wire.Message) error {
	if reply.Verb == "ERROR" {
		text := reply.Get("error")
		if text == attr.ErrNotFound.Error() {
			return ErrNotFound
		}
		if reply.Get("conn") == "1" {
			// Synthetic reply injected by fail(): the transport died with
			// the request in flight — retryable, unlike a server ERROR.
			if text == ErrServerDraining.Error() {
				return ErrServerDraining
			}
			return fmt.Errorf("%w: %s", ErrConnLost, text)
		}
		return errors.New("attrspace: server: " + text)
	}
	return nil
}

// IsRetryable reports whether err is a transport-level failure a
// reconnecting caller may safely retry after re-establishing the
// connection: the connection was lost, the client object is closed
// (superseded by a newer one), or the server announced a drain. Server
// application errors (including ErrNotFound) are not retryable — the
// server saw the request and answered it.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrConnLost) ||
		errors.Is(err, ErrClientClosed) ||
		errors.Is(err, ErrServerDraining)
}

// Put stores attribute = value and waits for the acknowledgement,
// matching the paper's blocking tdp_put.
func (c *Client) Put(attribute, value string) error {
	return c.PutCtx(context.Background(), attribute, value)
}

// PutCtx is Put with a context; a span carried by ctx (see
// telemetry.NewContext) propagates to the server as _tid/_sid.
func (c *Client) PutCtx(ctx context.Context, attribute, value string) error {
	reply, err := c.call(ctx, "PUT", wire.NewMessage("PUT").Set("attr", attribute).Set("value", value))
	if err != nil {
		return err
	}
	return replyErr(reply)
}

// Get blocks until the attribute exists and returns its value (the
// paper's blocking tdp_get). Cancel via ctx.
func (c *Client) Get(ctx context.Context, attribute string) (string, error) {
	reply, err := c.call(ctx, "GET", wire.NewMessage("GET").Set("attr", attribute))
	if err != nil {
		return "", err
	}
	if err := replyErr(reply); err != nil {
		return "", err
	}
	return reply.Get("value"), nil
}

// GetAsync issues a blocking GET whose reply is delivered on the
// returned channel: the transport half of tdp_async_get. The tdp
// package layers callback queueing and ServiceEvents on top.
func (c *Client) GetAsync(attribute string) (<-chan Result, error) {
	m := wire.NewMessage("GET").Set("attr", attribute)
	done := c.instrument(context.Background(), "GET", m)
	ch, _, err := c.send(m)
	if err != nil {
		done()
		return nil, err
	}
	out := make(chan Result, 1)
	go func() {
		reply := <-ch
		done()
		if err := replyErr(reply); err != nil {
			out <- Result{Attr: attribute, Err: err}
			return
		}
		out <- Result{Attr: attribute, Value: reply.Get("value")}
	}()
	return out, nil
}

// pendingPut is one queued asynchronous put awaiting a flush.
type pendingPut struct {
	attr, value string
	out         chan Result
}

// PutAsync issues a PUT whose acknowledgement is delivered on the
// returned channel: the transport half of tdp_async_put.
//
// Puts issued while a previous flush is still on the wire coalesce:
// the whole backlog leaves as a single MPUT when the in-flight round
// trip completes, so a producer pipelining N puts pays ~2 round trips
// instead of N. Each put still completes individually on its own
// channel. Failures (including a closed client) are delivered through
// the channel rather than returned here.
func (c *Client) PutAsync(attribute, value string) (<-chan Result, error) {
	out := make(chan Result, 1)
	c.mu.Lock()
	c.putq = append(c.putq, pendingPut{attr: attribute, value: value, out: out})
	if !c.flushing {
		c.flushing = true
		go c.flushPuts()
	}
	c.mu.Unlock()
	return out, nil
}

// flushPuts drains the async-put queue, one batch per loop: whatever
// accumulated during the previous round trip goes out together.
func (c *Client) flushPuts() {
	for {
		c.mu.Lock()
		batch := c.putq
		c.putq = nil
		if len(batch) == 0 {
			c.flushing = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		c.sendPutBatch(batch)
	}
}

// sendPutBatch transmits a batch of queued puts. A single put (or a
// server without MPUT) uses ordinary pipelined PUTs; otherwise the
// batch is one MPUT round trip. Every pending channel receives its
// completion.
func (c *Client) sendPutBatch(batch []pendingPut) {
	if len(batch) > 1 && !c.noMPUT.Load() {
		pairs := make([]KV, len(batch))
		for i, p := range batch {
			pairs[i] = KV{Key: p.attr, Value: p.value}
		}
		err := c.mput(context.Background(), pairs)
		if !errors.Is(err, errMPUTUnsupported) {
			for _, p := range batch {
				p.out <- Result{Attr: p.attr, Value: p.value, Err: err}
			}
			return
		}
		// Old server: fall through to individual pipelined PUTs.
	}
	type inflight struct {
		p    pendingPut
		ch   chan *wire.Message
		done func()
	}
	sent := make([]inflight, 0, len(batch))
	for _, p := range batch {
		m := wire.NewMessage("PUT").Set("attr", p.attr).Set("value", p.value)
		done := c.instrument(context.Background(), "PUT", m)
		ch, _, err := c.send(m)
		if err != nil {
			done()
			p.out <- Result{Attr: p.attr, Value: p.value, Err: err}
			continue
		}
		sent = append(sent, inflight{p: p, ch: ch, done: done})
	}
	for _, f := range sent {
		reply := <-f.ch
		f.done()
		f.p.out <- Result{Attr: f.p.attr, Value: f.p.value, Err: replyErr(reply)}
	}
}

// errMPUTUnsupported marks an MPUT rejected by a pre-MPUT server.
var errMPUTUnsupported = errors.New("attrspace: server does not support MPUT")

// mput performs one MPUT round trip for pairs. It returns
// errMPUTUnsupported (and latches noMPUT) when the server rejects the
// verb, so callers can fall back to individual PUTs.
func (c *Client) mput(ctx context.Context, pairs []KV) error {
	_, err := c.mputV(ctx, pairs)
	return err
}

// mputV is mput returning the seq acked for the batch's last pair
// (0 against a server that predates seq-carrying acks).
func (c *Client) mputV(ctx context.Context, pairs []KV) (uint64, error) {
	m := wire.NewMessage("MPUT").SetInt("n", len(pairs))
	for i, p := range pairs {
		idx := strconv.Itoa(i)
		m.Set("k"+idx, p.Key).Set("v"+idx, p.Value)
	}
	reply, err := c.call(ctx, "MPUT", m)
	if err != nil {
		return 0, err
	}
	if reply.Verb == "ERROR" && strings.Contains(reply.Get("error"), "unknown verb") {
		c.noMPUT.Store(true)
		return 0, errMPUTUnsupported
	}
	if err := replyErr(reply); err != nil {
		return 0, err
	}
	return replySeq(reply), nil
}

// PutBatch stores every pair in order and waits for the single
// acknowledgement — one round trip for the whole batch (the Parador
// startup pattern: a daemon publishing pid, executable, args and
// friends together). Against a server that predates MPUT it degrades
// to pipelined individual PUTs and reports the first error.
func (c *Client) PutBatch(pairs []KV) error {
	return c.PutBatchCtx(context.Background(), pairs)
}

// PutBatchCtx is PutBatch with a context for cancellation and span
// propagation.
func (c *Client) PutBatchCtx(ctx context.Context, pairs []KV) error {
	switch len(pairs) {
	case 0:
		return nil
	case 1:
		return c.PutCtx(ctx, pairs[0].Key, pairs[0].Value)
	}
	if !c.noMPUT.Load() {
		err := c.mput(ctx, pairs)
		if !errors.Is(err, errMPUTUnsupported) {
			return err
		}
	}
	// Fallback: pipeline individual PUTs, then collect every ack.
	type inflight struct {
		ch   chan *wire.Message
		done func()
	}
	sent := make([]inflight, 0, len(pairs))
	var firstErr error
	for _, p := range pairs {
		m := wire.NewMessage("PUT").Set("attr", p.Key).Set("value", p.Value)
		done := c.instrument(ctx, "PUT", m)
		ch, _, err := c.send(m)
		if err != nil {
			done()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent = append(sent, inflight{ch: ch, done: done})
	}
	for _, f := range sent {
		reply := <-f.ch
		f.done()
		if err := replyErr(reply); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Result is the completion of an asynchronous get or put.
type Result struct {
	Attr  string
	Value string
	Err   error
}

// TryGet returns the current value without blocking; ErrNotFound when
// the attribute is absent.
func (c *Client) TryGet(attribute string) (string, error) {
	return c.TryGetCtx(context.Background(), attribute)
}

// TryGetCtx is TryGet with a context for cancellation and span
// propagation.
func (c *Client) TryGetCtx(ctx context.Context, attribute string) (string, error) {
	reply, err := c.call(ctx, "TRYGET", wire.NewMessage("TRYGET").Set("attr", attribute))
	if err != nil {
		return "", err
	}
	if reply.Verb == "NOTFOUND" {
		return "", ErrNotFound
	}
	if err := replyErr(reply); err != nil {
		return "", err
	}
	return reply.Get("value"), nil
}

// Delete removes an attribute.
func (c *Client) Delete(attribute string) error {
	return c.DeleteCtx(context.Background(), attribute)
}

// DeleteCtx is Delete with a context for cancellation and span
// propagation.
func (c *Client) DeleteCtx(ctx context.Context, attribute string) error {
	reply, err := c.call(ctx, "DELETE", wire.NewMessage("DELETE").Set("attr", attribute))
	if err != nil {
		return err
	}
	return replyErr(reply)
}

// ServerStats asks the server to dump its telemetry registry (the
// STATS verb) and returns the decoded snapshot plus the daemon name
// the server reports itself as. STATS needs no joined context, and
// any client — tdpattr included — may issue it.
func (c *Client) ServerStats(ctx context.Context) (daemon string, snap telemetry.Snapshot, err error) {
	return c.ServerStatsScope(ctx, "")
}

// ServerStatsScope is ServerStats with an explicit scope. Scope
// "tree" asks the daemon to merge its children's snapshots (see
// Server.SetStatsChildren) into the reply — one request for a whole
// subtree's telemetry. An empty scope behaves like ServerStats.
func (c *Client) ServerStatsScope(ctx context.Context, scope string) (daemon string, snap telemetry.Snapshot, err error) {
	req := wire.NewMessage("STATS")
	if scope != "" {
		req.Set("scope", scope)
	}
	reply, err := c.call(ctx, "STATS", req)
	if err != nil {
		return "", telemetry.Snapshot{}, err
	}
	if err := replyErr(reply); err != nil {
		return "", telemetry.Snapshot{}, err
	}
	snap, err = telemetry.ParseSnapshot([]byte(reply.Get("json")))
	if err != nil {
		return "", telemetry.Snapshot{}, err
	}
	return reply.Get("daemon"), snap, nil
}

// Snapshot returns a copy of all attributes in the context.
func (c *Client) Snapshot() (map[string]string, error) {
	reply, err := c.call(context.Background(), "SNAP", wire.NewMessage("SNAP"))
	if err != nil {
		return nil, err
	}
	return parseSnap(reply)
}

// Versioned is a value paired with the seq of the write that produced
// it; re-exported from the attr engine so wire-level and in-process
// versioned snapshots share a type.
type Versioned = attr.Versioned

// SnapshotSeq returns every attribute with the seq of the write that
// produced it, plus the context's current sequence number (0 against a
// server that predates versioned snapshots). It is the resync primitive:
// a Session diffs the result against its last-known seqs after a
// reconnect, so stale values never overwrite newer ones.
func (c *Client) SnapshotSeq(ctx context.Context) (map[string]Versioned, uint64, error) {
	reply, err := c.call(ctx, "SNAP", wire.NewMessage("SNAP").Set("seqs", "1"))
	if err != nil {
		return nil, 0, err
	}
	if err := replyErr(reply); err != nil {
		return nil, 0, err
	}
	out := make(map[string]Versioned, reply.Int("total", reply.Int("n", 0)))
	for _, part := range append(c.takeChunks(reply.Get("id")), reply) {
		if err := parseVersionedInto(out, part); err != nil {
			return nil, 0, err
		}
	}
	ctxSeq, _ := strconv.ParseUint(reply.Get("seq"), 10, 64)
	return out, ctxSeq, nil
}

// parseVersionedInto decodes one SNAPV part's k<i>/v<i>/s<i> entries.
func parseVersionedInto(out map[string]Versioned, part *wire.Message) error {
	n := part.Int("n", 0)
	for i := 0; i < n; i++ {
		idx := strconv.Itoa(i)
		k, ok := part.Lookup("k" + idx)
		if !ok {
			return fmt.Errorf("attrspace: malformed snapshot reply")
		}
		seq, _ := strconv.ParseUint(part.Get("s"+idx), 10, 64)
		out[k] = Versioned{Value: part.Get("v" + idx), Seq: seq}
	}
	return nil
}

// DeltaOp is one replayed mutation from a delta resync (SNAPD).
type DeltaOp struct {
	Attr   string
	Value  string // value written; "" for a delete
	Seq    uint64
	Delete bool
}

// errSNAPDUnsupported marks a SNAPD rejected by a pre-v2 server.
var errSNAPDUnsupported = errors.New("attrspace: server does not support SNAPD")

// SnapshotDelta asks the server for just the mutations after `since`
// (the SNAPD delta-resync verb), so reconnect traffic is proportional
// to the gap, not the context size. Exactly one of ops/full is
// non-nil: ops carries the replayable delta in seq order; full is the
// complete versioned snapshot the server fell back to because its
// change log no longer covers the gap. Both come with the context's
// current seq. Against a server without the verb it returns
// errSNAPDUnsupported (latched, like MPUT) and the caller falls back
// to SnapshotSeq.
func (c *Client) SnapshotDelta(ctx context.Context, since uint64) (ops []DeltaOp, full map[string]Versioned, ctxSeq uint64, err error) {
	if c.noSNAPD.Load() || !c.HasCap(wire.CapSnapd) {
		return nil, nil, 0, errSNAPDUnsupported
	}
	reply, err := c.call(ctx, "SNAPD",
		wire.NewMessage("SNAPD").Set("since", strconv.FormatUint(since, 10)))
	if err != nil {
		return nil, nil, 0, err
	}
	if reply.Verb == "ERROR" && strings.Contains(reply.Get("error"), "unknown verb") {
		c.noSNAPD.Store(true)
		return nil, nil, 0, errSNAPDUnsupported
	}
	if err := replyErr(reply); err != nil {
		return nil, nil, 0, err
	}
	parts := append(c.takeChunks(reply.Get("id")), reply)
	ctxSeq, _ = strconv.ParseUint(reply.Get("seq"), 10, 64)
	if reply.Verb != "DELTA" {
		// Change log compacted past `since`: the server shipped a full
		// versioned snapshot instead.
		full = make(map[string]Versioned, reply.Int("total", reply.Int("n", 0)))
		for _, part := range parts {
			if err := parseVersionedInto(full, part); err != nil {
				return nil, nil, 0, err
			}
		}
		return nil, full, ctxSeq, nil
	}
	// Parts were sent, buffered, and appended in order, and entries
	// within a part are in order, so ops come out seq-ascending.
	ops = make([]DeltaOp, 0, reply.Int("total", reply.Int("n", 0)))
	for _, part := range parts {
		n := part.Int("n", 0)
		for i := 0; i < n; i++ {
			idx := strconv.Itoa(i)
			k, ok := part.Lookup("k" + idx)
			if !ok {
				return nil, nil, 0, fmt.Errorf("attrspace: malformed delta reply")
			}
			seq, _ := strconv.ParseUint(part.Get("s"+idx), 10, 64)
			ops = append(ops, DeltaOp{
				Attr: k, Value: part.Get("v" + idx), Seq: seq,
				Delete: part.Get("o"+idx) == "d",
			})
		}
	}
	return ops, nil, ctxSeq, nil
}

// Ping performs a wire-level liveness round trip (CapPing). The server
// answers inline on its read loop, so a timely PONG proves the
// connection and the peer's dispatch are alive even while bulk replies
// stream on other goroutines.
func (c *Client) Ping(ctx context.Context) error {
	reply, err := c.call(ctx, "PING", wire.NewMessage("PING"))
	if err != nil {
		return err
	}
	return replyErr(reply)
}

// parseSnap decodes a SNAPV reply's k0/v0.. pairs.
func parseSnap(reply *wire.Message) (map[string]string, error) {
	if err := replyErr(reply); err != nil {
		return nil, err
	}
	n := reply.Int("n", 0)
	out := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k, ok := reply.Lookup("k" + strconv.Itoa(i))
		if !ok {
			return nil, fmt.Errorf("attrspace: malformed snapshot reply")
		}
		out[k] = reply.Get("v" + strconv.Itoa(i))
	}
	return out, nil
}

// replySeq extracts the per-context sequence number a mutating ack or
// VALUE reply carries; 0 against a pre-seq server.
func replySeq(reply *wire.Message) uint64 {
	seq, _ := strconv.ParseUint(reply.Get("seq"), 10, 64)
	return seq
}

// PutV is Put returning the per-context seq the server assigned the
// write (0 against a pre-seq server).
func (c *Client) PutV(ctx context.Context, attribute, value string) (uint64, error) {
	reply, err := c.call(ctx, "PUT", wire.NewMessage("PUT").Set("attr", attribute).Set("value", value))
	if err != nil {
		return 0, err
	}
	if err := replyErr(reply); err != nil {
		return 0, err
	}
	return replySeq(reply), nil
}

// GetV is Get additionally returning the seq of the write that
// produced the value.
func (c *Client) GetV(ctx context.Context, attribute string) (string, uint64, error) {
	reply, err := c.call(ctx, "GET", wire.NewMessage("GET").Set("attr", attribute))
	if err != nil {
		return "", 0, err
	}
	if err := replyErr(reply); err != nil {
		return "", 0, err
	}
	return reply.Get("value"), replySeq(reply), nil
}

// TryGetV is TryGet additionally returning the seq of the write that
// produced the value.
func (c *Client) TryGetV(ctx context.Context, attribute string) (string, uint64, error) {
	reply, err := c.call(ctx, "TRYGET", wire.NewMessage("TRYGET").Set("attr", attribute))
	if err != nil {
		return "", 0, err
	}
	if reply.Verb == "NOTFOUND" {
		return "", 0, ErrNotFound
	}
	if err := replyErr(reply); err != nil {
		return "", 0, err
	}
	return reply.Get("value"), replySeq(reply), nil
}

// DeleteV is Delete returning the seq assigned to the deletion (0 when
// the attribute was already absent).
func (c *Client) DeleteV(ctx context.Context, attribute string) (uint64, error) {
	reply, err := c.call(ctx, "DELETE", wire.NewMessage("DELETE").Set("attr", attribute))
	if err != nil {
		return 0, err
	}
	if err := replyErr(reply); err != nil {
		return 0, err
	}
	return replySeq(reply), nil
}

// PutBatchV is PutBatch returning the seq acked for the last pair.
// Against a server without MPUT it falls back to sequential PutVs so
// the returned seq is still the last write's.
func (c *Client) PutBatchV(ctx context.Context, pairs []KV) (uint64, error) {
	switch len(pairs) {
	case 0:
		return 0, nil
	case 1:
		return c.PutV(ctx, pairs[0].Key, pairs[0].Value)
	}
	if !c.noMPUT.Load() {
		seq, err := c.mputV(ctx, pairs)
		if !errors.Is(err, errMPUTUnsupported) {
			return seq, err
		}
	}
	var last uint64
	for _, p := range pairs {
		seq, err := c.PutV(ctx, p.Key, p.Value)
		if err != nil {
			return 0, err
		}
		last = seq
	}
	return last, nil
}

// Subscribe starts event push from the server. Events arrive on the
// Events channel; the channel closes when the client does. A failed
// SUB leaves the client unsubscribed, so the caller may retry;
// concurrent Subscribes collapse to one wire request.
func (c *Client) Subscribe() error {
	c.mu.Lock()
	if c.subbed {
		c.mu.Unlock()
		return nil
	}
	c.subbed = true
	c.mu.Unlock()
	unsub := func() {
		c.mu.Lock()
		c.subbed = false
		c.mu.Unlock()
	}
	reply, err := c.call(context.Background(), "SUB", wire.NewMessage("SUB"))
	if err != nil {
		unsub()
		return err
	}
	if err := replyErr(reply); err != nil {
		unsub()
		return err
	}
	return nil
}

// Events returns the subscription event channel. It never yields
// events before Subscribe succeeds.
func (c *Client) Events() <-chan Event { return c.events }

// ErrNoGlobal reports a G* verb sent to a server without an upstream
// CASS (global forwarding not enabled, or an older server).
var ErrNoGlobal = errors.New("attrspace: server has no global forwarding")

// globalErr maps a G* ERROR reply onto client-side sentinels.
func globalErr(reply *wire.Message) error {
	if reply.Verb == "ERROR" {
		text := reply.Get("error")
		if strings.Contains(text, "unknown verb") || strings.Contains(text, "global forwarding not enabled") {
			return ErrNoGlobal
		}
		if strings.Contains(text, ErrShardDown.Error()) {
			// A routing LASS reporting one dead shard: surface the typed
			// degraded-mode error so callers can distinguish "this key
			// range is briefly down" from a hard failure.
			return fmt.Errorf("%w: %s", ErrShardDown, text)
		}
	}
	return replyErr(reply)
}

// PutGlobal stores a global (CASS) attribute through this LASS: the
// LASS writes through to its CASS and caches the acked value, so a
// subsequent GetGlobal via the same LASS sees this write without an
// upstream round trip.
func (c *Client) PutGlobal(ctx context.Context, attribute, value string) error {
	reply, err := c.call(ctx, "GPUT", wire.NewMessage("GPUT").Set("attr", attribute).Set("value", value))
	if err != nil {
		return err
	}
	return globalErr(reply)
}

// PutBatchGlobal stores a batch of global attributes in one GMPUT.
func (c *Client) PutBatchGlobal(ctx context.Context, pairs []KV) error {
	if len(pairs) == 0 {
		return nil
	}
	m := wire.NewMessage("GMPUT").SetInt("n", len(pairs))
	for i, p := range pairs {
		idx := strconv.Itoa(i)
		m.Set("k"+idx, p.Key).Set("v"+idx, p.Value)
	}
	reply, err := c.call(ctx, "GMPUT", m)
	if err != nil {
		return err
	}
	return globalErr(reply)
}

// GetGlobal blocks until the global attribute exists; steady-state
// reads are answered from the LASS cache in one local hop.
func (c *Client) GetGlobal(ctx context.Context, attribute string) (string, error) {
	reply, err := c.call(ctx, "GGET", wire.NewMessage("GGET").Set("attr", attribute))
	if err != nil {
		return "", err
	}
	if err := globalErr(reply); err != nil {
		return "", err
	}
	return reply.Get("value"), nil
}

// TryGetGlobal returns the global attribute's value without blocking;
// ErrNotFound when absent.
func (c *Client) TryGetGlobal(ctx context.Context, attribute string) (string, error) {
	reply, err := c.call(ctx, "GTRYGET", wire.NewMessage("GTRYGET").Set("attr", attribute))
	if err != nil {
		return "", err
	}
	if reply.Verb == "NOTFOUND" {
		return "", ErrNotFound
	}
	if err := globalErr(reply); err != nil {
		return "", err
	}
	return reply.Get("value"), nil
}

// DeleteGlobal removes a global attribute through this LASS.
func (c *Client) DeleteGlobal(ctx context.Context, attribute string) error {
	reply, err := c.call(ctx, "GDEL", wire.NewMessage("GDEL").Set("attr", attribute))
	if err != nil {
		return err
	}
	return globalErr(reply)
}

// SnapshotGlobal dumps the context's global attributes (always one
// upstream round trip; snapshots are never served from the cache).
func (c *Client) SnapshotGlobal(ctx context.Context) (map[string]string, error) {
	reply, err := c.call(ctx, "GSNAP", wire.NewMessage("GSNAP"))
	if err != nil {
		return nil, err
	}
	if err := globalErr(reply); err != nil {
		return nil, err
	}
	return parseSnap(reply)
}

// SnapshotGlobalMany snapshots several global contexts in one GSNAPM
// round trip. On a sharded LASS the contexts are fetched from their
// owning CASS shards concurrently (scatter-gather); the result maps
// context name → attribute snapshot. ErrNoGlobal against servers
// without forwarding or too old to know the verb.
func (c *Client) SnapshotGlobalMany(ctx context.Context, contexts []string) (map[string]map[string]string, error) {
	m := wire.NewMessage("GSNAPM").SetInt("n", len(contexts))
	for i, name := range contexts {
		m.Set("k"+strconv.Itoa(i), name)
	}
	reply, err := c.call(ctx, "GSNAPM", m)
	if err != nil {
		return nil, err
	}
	if err := globalErr(reply); err != nil {
		return nil, err
	}
	out := make(map[string]map[string]string)
	n, _ := strconv.Atoi(reply.Get("n"))
	for i := 0; i < n; i++ {
		idx := strconv.Itoa(i)
		var snap map[string]string
		if err := json.Unmarshal([]byte(reply.Get("v"+idx)), &snap); err != nil {
			return nil, fmt.Errorf("attrspace: gsnapm decode %q: %w", reply.Get("k"+idx), err)
		}
		out[reply.Get("k"+idx)] = snap
	}
	return out, nil
}

// GlobalContexts lists the context names alive across the global
// space — on a sharded LASS, the deduplicated union over every
// reachable shard. ErrNoGlobal against servers without forwarding.
func (c *Client) GlobalContexts(ctx context.Context) ([]string, error) {
	reply, err := c.call(ctx, "GCTXS", wire.NewMessage("GCTXS"))
	if err != nil {
		return nil, err
	}
	if err := globalErr(reply); err != nil {
		return nil, err
	}
	n, _ := strconv.Atoi(reply.Get("n"))
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, reply.Get("k"+strconv.Itoa(i)))
	}
	return names, nil
}

// Close leaves the context (the tdp_exit half of the refcount) and
// tears down the connection. Close is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	// Best-effort polite exit; the server also leaves on disconnect.
	c.wc.Send(wire.NewMessage("EXIT"))
	c.fail(ErrClientClosed)
	return nil
}
