package attrspace

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdp/internal/attr"
	"tdp/internal/wire"
)

// ---------------------------------------------------------------------------
// Capability negotiation.

func TestCapsNegotiated(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "job1")
	for _, cap := range []string{wire.CapMux, wire.CapSnapd, wire.CapChunk, wire.CapPing} {
		if !c.HasCap(cap) {
			t.Errorf("HasCap(%s) = false against a v2 server", cap)
		}
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Errorf("Ping: %v", err)
	}
}

func TestCapsAgainstV1Server(t *testing.T) {
	srv, addr := startServer(t)
	srv.SetCaps() // simulate a pre-v2 server: grant nothing
	c := dialT(t, addr, "job1")
	for _, cap := range []string{wire.CapMux, wire.CapSnapd, wire.CapChunk, wire.CapPing} {
		if c.HasCap(cap) {
			t.Errorf("HasCap(%s) = true against a v1 server", cap)
		}
	}
	// The v1 surface still works end to end.
	if err := c.Put("pid", "42"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, err := c.TryGet("pid"); err != nil || v != "42" {
		t.Fatalf("TryGet = %q, %v", v, err)
	}
	if err := c.Ping(context.Background()); err == nil {
		t.Error("Ping against a v1 server succeeded; want unknown-verb error")
	}
}

// TestV1ClientAgainstV2Server drives the server with a raw pre-v2
// client: HELLO without a caps offer must yield an OK without caps, and
// a large SNAP must come back as one inline SNAPV (no chunk framing the
// old client would not understand).
func TestV1ClientAgainstV2Server(t *testing.T) {
	_, addr := startServer(t)
	seed := dialT(t, addr, "job1")
	var pairs []KV
	for i := 0; i < SnapChunkEntries*2; i++ {
		pairs = append(pairs, KV{Key: fmt.Sprintf("a%04d", i), Value: "v"})
	}
	if err := seed.PutBatch(pairs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	if err := wc.Send(wire.NewMessage("HELLO").Set("context", "job1").Set("id", "1")); err != nil {
		t.Fatalf("HELLO: %v", err)
	}
	ok, err := wc.Recv()
	if err != nil || ok.Verb != "OK" {
		t.Fatalf("HELLO reply = %v, %v", ok, err)
	}
	if got := ok.Get("caps"); got != "" {
		t.Fatalf("server granted caps %q to a client that offered none", got)
	}
	if err := wc.Send(wire.NewMessage("SNAP").Set("id", "2").Set("seqs", "1")); err != nil {
		t.Fatalf("SNAP: %v", err)
	}
	snap, err := wc.Recv()
	if err != nil || snap.Verb != "SNAPV" {
		t.Fatalf("SNAP reply = %v, %v", snap, err)
	}
	if snap.Get("more") != "" || snap.Get("part") != "" {
		t.Errorf("v1 client got a chunked snapshot part: more=%q part=%q", snap.Get("more"), snap.Get("part"))
	}
	if n := snap.Int("n", -1); n != len(pairs) {
		t.Errorf("inline snapshot n = %d, want %d", n, len(pairs))
	}
}

// ---------------------------------------------------------------------------
// Delta resync (SNAPD).

func TestSnapshotDeltaReplaysOnlyTheGap(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "job1")
	for i := 0; i < 50; i++ {
		if err := c.Put(fmt.Sprintf("base%02d", i), "v"); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	_, since, err := c.SnapshotSeq(context.Background())
	if err != nil {
		t.Fatalf("SnapshotSeq: %v", err)
	}
	// The gap: two puts and a delete.
	if err := c.Put("new1", "x"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := c.Put("new2", "y"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := c.Delete("base00"); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	ops, full, ctxSeq, err := c.SnapshotDelta(context.Background(), since)
	if err != nil {
		t.Fatalf("SnapshotDelta: %v", err)
	}
	if full != nil {
		t.Fatalf("SnapshotDelta fell back to a full snapshot for a covered gap")
	}
	if len(ops) != 3 {
		t.Fatalf("delta = %d ops, want 3: %+v", len(ops), ops)
	}
	if ops[0].Attr != "new1" || ops[0].Value != "x" || ops[0].Delete {
		t.Errorf("ops[0] = %+v", ops[0])
	}
	if ops[2].Attr != "base00" || !ops[2].Delete {
		t.Errorf("ops[2] = %+v, want delete of base00", ops[2])
	}
	for i := 1; i < len(ops); i++ {
		if ops[i].Seq <= ops[i-1].Seq {
			t.Errorf("delta out of seq order: %+v", ops)
		}
	}
	if ctxSeq != ops[2].Seq {
		t.Errorf("ctxSeq = %d, want %d", ctxSeq, ops[2].Seq)
	}
}

func TestSnapshotDeltaCompactedFallsBackToFull(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "job1")
	if err := c.Put("early", "1"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_, since, err := c.SnapshotSeq(context.Background())
	if err != nil {
		t.Fatalf("SnapshotSeq: %v", err)
	}
	// Push the change log far past its compaction bound so `since` falls
	// off the retained tail.
	var pairs []KV
	for i := 0; i < 2100; i++ {
		pairs = append(pairs, KV{Key: fmt.Sprintf("k%04d", i%40), Value: fmt.Sprintf("v%d", i)})
	}
	if err := c.PutBatch(pairs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}

	ops, full, ctxSeq, err := c.SnapshotDelta(context.Background(), since)
	if err != nil {
		t.Fatalf("SnapshotDelta: %v", err)
	}
	if ops != nil || full == nil {
		t.Fatalf("want full-snapshot fallback for a compacted gap, got %d ops, full=%v", len(ops), full != nil)
	}
	if len(full) != 41 { // "early" + 40 k-slots
		t.Errorf("full snapshot = %d entries, want 41", len(full))
	}
	if ctxSeq == 0 {
		t.Error("fallback snapshot carried no context seq")
	}
}

func TestSnapshotDeltaAgainstV1Server(t *testing.T) {
	srv, addr := startServer(t)
	srv.SetCaps()
	c := dialT(t, addr, "job1")
	if _, _, _, err := c.SnapshotDelta(context.Background(), 0); err == nil {
		t.Fatal("SnapshotDelta against a v1 server succeeded; want unsupported error")
	}
}

// ---------------------------------------------------------------------------
// Chunked snapshot replies.

func TestChunkedSnapshotReassembly(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "job1")
	n := SnapChunkEntries*2 + 37 // forces 3 parts
	var pairs []KV
	for i := 0; i < n; i++ {
		pairs = append(pairs, KV{Key: fmt.Sprintf("attr%04d", i), Value: fmt.Sprintf("val%d", i)})
	}
	if err := c.PutBatch(pairs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	snap, ctxSeq, err := c.SnapshotSeq(context.Background())
	if err != nil {
		t.Fatalf("SnapshotSeq: %v", err)
	}
	if len(snap) != n {
		t.Fatalf("reassembled snapshot = %d entries, want %d", len(snap), n)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("attr%04d", i)
		v, ok := snap[k]
		if !ok || v.Value != fmt.Sprintf("val%d", i) {
			t.Fatalf("snap[%s] = %+v, %v", k, v, ok)
		}
	}
	if ctxSeq == 0 {
		t.Error("chunked snapshot carried no context seq")
	}
	// A delta over a wide gap chunks too; it must reassemble in order.
	ops, full, _, err := c.SnapshotDelta(context.Background(), 0)
	if err != nil || full != nil {
		t.Fatalf("SnapshotDelta(0) = full=%v, %v", full != nil, err)
	}
	if len(ops) != n {
		t.Fatalf("chunked delta = %d ops, want %d", len(ops), n)
	}
	for i := 1; i < len(ops); i++ {
		if ops[i].Seq <= ops[i-1].Seq {
			t.Fatalf("chunked delta out of order at %d: %d after %d", i, ops[i].Seq, ops[i-1].Seq)
		}
	}
}

// TestSnapshotInterleavesWithPing is the heartbeat-starvation check at
// the protocol level: while a multi-part snapshot streams on the bulk
// stream, a PING issued mid-replay must come back without waiting for
// the replay to finish.
func TestSnapshotInterleavesWithPing(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr, "job1")
	var pairs []KV
	for i := 0; i < SnapChunkEntries*8; i++ {
		pairs = append(pairs, KV{Key: fmt.Sprintf("attr%05d", i), Value: "x"})
	}
	if err := c.PutBatch(pairs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		snap, _, err := c.SnapshotSeq(context.Background())
		if err == nil && len(snap) != len(pairs) {
			err = fmt.Errorf("snapshot = %d entries, want %d", len(snap), len(pairs))
		}
		done <- err
	}()
	// Pings racing the replay: each must complete promptly.
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := c.Ping(ctx)
		cancel()
		if err != nil {
			t.Fatalf("Ping during snapshot replay: %v", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("snapshot: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Same-host fast path.

func TestUnixSocketRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdp.sock")
	srv := NewServer()
	bound, err := srv.ListenAndServe("unix:" + path)
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(srv.Close)
	if bound != "unix:"+path {
		t.Fatalf("bound = %q", bound)
	}
	c := dialT(t, bound, "job1")
	if err := c.Put("pid", "7"); err != nil {
		t.Fatalf("Put over unix socket: %v", err)
	}
	if v, err := c.TryGet("pid"); err != nil || v != "7" {
		t.Fatalf("TryGet = %q, %v", v, err)
	}
	if !c.HasCap(wire.CapMux) {
		t.Error("caps not negotiated over the unix transport")
	}
}

func TestAutoDialPrefersUnixBeside(t *testing.T) {
	srv, addr := startServer(t)
	side, err := srv.ListenUnixBeside(addr)
	if err != nil {
		t.Fatalf("ListenUnixBeside: %v", err)
	}
	if side == "" {
		t.Fatal("ListenUnixBeside derived no socket for a bound TCP address")
	}
	conn, err := AutoDial(addr)
	if err != nil {
		t.Fatalf("AutoDial: %v", err)
	}
	defer conn.Close()
	if got := conn.RemoteAddr().Network(); got != "unix" {
		t.Fatalf("AutoDial used %s for a loopback address with a live side socket", got)
	}
	// And the full protocol stack rides it.
	c := dialT(t, addr, "job1")
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("Put: %v", err)
	}
}

func TestAutoDialFallsBackToTCP(t *testing.T) {
	_, addr := startServer(t) // no unix side socket
	conn, err := AutoDial(addr)
	if err != nil {
		t.Fatalf("AutoDial: %v", err)
	}
	defer conn.Close()
	if got := conn.RemoteAddr().Network(); got != "tcp" {
		t.Fatalf("AutoDial network = %s, want tcp fallback", got)
	}
}

func TestSocketPathFor(t *testing.T) {
	if p := SocketPathFor("127.0.0.1:4510"); p == "" {
		t.Error("no path for a normal host:port")
	}
	for _, bad := range []string{"", "nohost", "127.0.0.1:0", "host:"} {
		if p := SocketPathFor(bad); p != "" {
			t.Errorf("SocketPathFor(%q) = %q, want empty", bad, p)
		}
	}
}

// ---------------------------------------------------------------------------
// Mux fan-out: a blocked GET must not stall event delivery.

func TestEventsFlowWhileGetBlocks(t *testing.T) {
	_, addr := startServer(t)
	watcher := dialT(t, addr, "job1")
	writer := dialT(t, addr, "job1")
	if err := watcher.Subscribe(); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	var events atomic.Int64
	watcher.SetEventHandler(func(Event) { events.Add(1) })

	// A GET for an attribute nobody ever writes parks server-side.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		watcher.Get(ctx, "never-written")
	}()

	for i := 0; i < 100; i++ {
		if err := writer.Put(fmt.Sprintf("e%02d", i), "v"); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for events.Load() < 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := events.Load(); got < 100 {
		t.Fatalf("watcher saw %d events while a GET was parked, want 100", got)
	}
	cancel()
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Change-log plumbing end to end: mutations through the server land in
// the per-context log that SNAPD serves from.

func TestServerMutationsFeedChangeLog(t *testing.T) {
	space := attr.NewSpace()
	srv := NewServerWithSpace(space)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	c := dialT(t, l.Addr().String(), "job1")
	if err := c.Put("a", "1"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := c.PutBatch([]KV{{Key: "b", Value: "2"}, {Key: "c", Value: "3"}}); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	ref := space.Join("job1")
	defer ref.Leave()
	changes, _, ok, err := ref.ChangesSince(0)
	if err != nil || !ok {
		t.Fatalf("ChangesSince = ok=%v, %v", ok, err)
	}
	if len(changes) != 4 {
		t.Fatalf("change log = %d entries, want 4: %+v", len(changes), changes)
	}
	last := changes[len(changes)-1]
	if last.Attr != "a" || !last.Delete {
		t.Errorf("last change = %+v, want delete of a", last)
	}
}

// ---------------------------------------------------------------------------
// Transport v3: the shared-memory ring cutover.

// TestShmCutoverOverUnixSocket is the happy path: a client dialing the
// unix socket negotiates shm, completes the cutover, and every kind of
// traffic — purs, batches, chunked snapshots, events, pings — rides
// the ring.
func TestShmCutoverOverUnixSocket(t *testing.T) {
	if !wire.ShmSupported() {
		t.Skip("no shm transport on this platform")
	}
	path := filepath.Join(t.TempDir(), "tdp.sock")
	srv := NewServer()
	bound, err := srv.ListenAndServe("unix:" + path)
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(srv.Close)
	c := dialT(t, bound, "job1")
	if !c.HasCap(wire.CapShm) {
		t.Fatal("CapShm not granted over a unix socket")
	}
	if !c.HasCap(wire.CapByteWin) {
		t.Fatal("CapByteWin not granted")
	}
	if !c.ShmActive() {
		t.Fatal("shm cutover did not complete")
	}

	if err := c.Put("pid", "42"); err != nil {
		t.Fatalf("Put over ring: %v", err)
	}
	if v, err := c.TryGet("pid"); err != nil || v != "42" {
		t.Fatalf("TryGet over ring = %q, %v", v, err)
	}
	// A chunked snapshot (multi-part bulk reply) across the ring.
	var pairs []KV
	for i := 0; i < SnapChunkEntries+17; i++ {
		pairs = append(pairs, KV{Key: fmt.Sprintf("attr%04d", i), Value: "v"})
	}
	if err := c.PutBatch(pairs); err != nil {
		t.Fatalf("PutBatch over ring: %v", err)
	}
	snap, _, err := c.SnapshotSeq(context.Background())
	if err != nil {
		t.Fatalf("SnapshotSeq over ring: %v", err)
	}
	if len(snap) != len(pairs)+1 { // + pid
		t.Fatalf("snapshot = %d entries, want %d", len(snap), len(pairs)+1)
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping over ring: %v", err)
	}

	// Event fan-out: a second ring connection watches the first's puts.
	watcher := dialT(t, bound, "job1")
	if !watcher.ShmActive() {
		t.Fatal("second connection did not cut over")
	}
	var events atomic.Int64
	watcher.SetEventHandler(func(Event) { events.Add(1) })
	if err := watcher.Subscribe(); err != nil {
		t.Fatalf("Subscribe over ring: %v", err)
	}
	for i := 0; i < 50; i++ {
		if err := c.Put(fmt.Sprintf("ev%02d", i), "x"); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for events.Load() < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := events.Load(); got < 50 {
		t.Fatalf("watcher saw %d ring events, want 50", got)
	}
	// The segment file must be gone: unlinked right after the cutover.
	segs, _ := filepath.Glob(filepath.Join(t.TempDir(), "tdp-shm-*"))
	if len(segs) != 0 {
		t.Errorf("segment files leaked in test dir: %v", segs)
	}
}

// TestShmWithdrawnByServer: a server configured without CapShm leaves
// a shm-offering client on the plain v2 socket path.
func TestShmWithdrawnByServer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdp.sock")
	srv := NewServer()
	srv.SetCaps(wire.CapMux, wire.CapSnapd, wire.CapChunk, wire.CapPing, wire.CapCtxOp, wire.CapByteWin)
	bound, err := srv.ListenAndServe("unix:" + path)
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(srv.Close)
	c := dialT(t, bound, "job1")
	if c.HasCap(wire.CapShm) || c.ShmActive() {
		t.Fatal("shm engaged against a server that does not speak it")
	}
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("Put on the v2 fallback: %v", err)
	}
}

// TestShmNotOfferedOverTCP: a TCP connection — even to localhost — is
// not provably same-host at the transport level, so the capability is
// never offered and never granted.
func TestShmNotOfferedOverTCP(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(TCPDial, addr, "job1")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if c.HasCap(wire.CapShm) || c.ShmActive() {
		t.Fatal("shm engaged over TCP")
	}
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("Put: %v", err)
	}
}

// TestShmFallbackWhenSegmentUnmappable: a server that grants shm but
// hands out a segment path the client cannot map (gone, truncated,
// wrong fs) must quietly end up on the plain socket path — the client
// simply never sends SHMRDY. Driven with a scripted server so the
// failure can be injected.
func TestShmFallbackWhenSegmentUnmappable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fake.sock")
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	srvErr := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer conn.Close()
		wc := wire.NewConn(conn)
		m, err := wc.Recv()
		if err != nil || m.Verb != "HELLO" {
			srvErr <- fmt.Errorf("first frame = %v, %v", m, err)
			return
		}
		// Grant shm with a segment path that does not exist.
		if err := wc.Send(wire.NewMessage("OK").Set("id", m.Get("id")).
			Set("caps", "mux,snapd,chunk,ping,bytewin,shm").
			Set("shmfile", filepath.Join(t.TempDir(), "no-such-segment"))); err != nil {
			srvErr <- err
			return
		}
		// The client must carry on over the socket: the next frame is a
		// regular request, not SHMRDY.
		m, err = wc.Recv()
		if err != nil {
			srvErr <- err
			return
		}
		if m.Verb == "SHMRDY" {
			srvErr <- fmt.Errorf("client sent SHMRDY for an unmappable segment")
			return
		}
		if m.Verb != "PING" {
			srvErr <- fmt.Errorf("unexpected frame %v", m)
			return
		}
		srvErr <- wc.Send(wire.NewMessage("PONG").Set("id", m.Get("id")))
	}()

	c, err := Dial(nil, "unix:"+path, "job1")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if c.ShmActive() {
		t.Fatal("ShmActive over an unmappable segment")
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping on the socket fallback: %v", err)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("scripted server: %v", err)
	}
}

// TestAutoDialRemovesStaleSocket is the satellite regression test: a
// leftover socket file from a crashed daemon (exists, but connection
// refused) must not wedge AutoDial — it falls through to TCP and
// clears the dead file so later dials go straight there.
func TestAutoDialRemovesStaleSocket(t *testing.T) {
	srv, addr := startServer(t) // TCP only
	_ = srv
	path := SocketPathFor(addr)
	if path == "" {
		t.Fatal("no conventional socket path for test address")
	}
	ul, err := net.Listen("unix", path)
	if err != nil {
		t.Fatalf("staging stale socket: %v", err)
	}
	// Close WITHOUT unlinking: exactly the state a crashed daemon
	// leaves behind.
	ul.(*net.UnixListener).SetUnlinkOnClose(false)
	ul.Close()
	t.Cleanup(func() { os.Remove(path) })

	conn, err := AutoDial(addr)
	if err != nil {
		t.Fatalf("AutoDial with stale socket present: %v", err)
	}
	defer conn.Close()
	if got := conn.RemoteAddr().Network(); got != "tcp" {
		t.Fatalf("AutoDial network = %s, want tcp fallthrough", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("stale socket file not removed (stat err = %v)", err)
	}
	// And the whole client stack works through the fallback.
	c := dialT(t, addr, "job1")
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("Put after stale-socket fallback: %v", err)
	}
}
