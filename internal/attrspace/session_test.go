package attrspace

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"tdp/internal/wire"
)

// ---------------------------------------------------------------------------
// Scripted server: each accepted connection is handled by the next
// hand-written script in order, pinning down the exact wire exchanges
// a Session performs during guarded retries (probe-before-resend).

type script func(sc *scriptConn)

type scriptConn struct {
	t   *testing.T
	wc  *wire.Conn
	raw net.Conn
}

// expect receives the next frame and requires its verb; returns nil
// (after failing the test) on a mismatch or transport error.
func (sc *scriptConn) expect(verb string) *wire.Message {
	m, err := sc.wc.Recv()
	if err != nil {
		sc.t.Errorf("script: waiting for %s, connection error: %v", verb, err)
		return nil
	}
	if m.Verb != verb {
		sc.t.Errorf("script: got %s, want %s (%v)", m.Verb, verb, m)
		return nil
	}
	return m
}

// reply answers req with verb and the given key/value pairs, echoing
// the request id so the client's reply matching works.
func (sc *scriptConn) reply(req *wire.Message, verb string, kv ...string) {
	if req == nil {
		return
	}
	m := wire.NewMessage(verb).Set("id", req.Get("id"))
	for i := 0; i+1 < len(kv); i += 2 {
		m.Set(kv[i], kv[i+1])
	}
	if err := sc.wc.Send(m); err != nil {
		sc.t.Errorf("script: send %s: %v", verb, err)
	}
}

// hello serves the handshake.
func (sc *scriptConn) hello() {
	sc.reply(sc.expect("HELLO"), "OK")
}

// drainForbidding reads frames until the peer disconnects, failing the
// test if any of the listed verbs arrives; everything else (e.g. the
// polite EXIT on Close) is acknowledged blandly.
func (sc *scriptConn) drainForbidding(verbs ...string) {
	for {
		m, err := sc.wc.Recv()
		if err != nil {
			return
		}
		for _, v := range verbs {
			if m.Verb == v {
				sc.t.Errorf("script: forbidden %s re-sent: %v", v, m)
			}
		}
		if m.Verb == "EXIT" {
			return
		}
		sc.reply(m, "OK")
	}
}

type scripted struct {
	t    *testing.T
	addr string
	wg   sync.WaitGroup
}

func newScripted(t *testing.T, scripts ...script) *scripted {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	s := &scripted{t: t, addr: l.Addr().String()}
	s.wg.Add(len(scripts))
	go func() {
		for i := 0; i < len(scripts); i++ {
			conn, err := l.Accept()
			if err != nil {
				for ; i < len(scripts); i++ {
					s.wg.Done()
				}
				return
			}
			run := scripts[i]
			go func(c net.Conn) {
				defer s.wg.Done()
				defer c.Close()
				run(&scriptConn{t: s.t, wc: wire.NewConn(c), raw: c})
			}(conn)
		}
	}()
	return s
}

// wait blocks until every script has run to completion, so forbidden-
// verb checks have definitely been applied before assertions.
func (s *scripted) wait() {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		s.t.Fatal("scripted server: scripts did not complete")
	}
}

func scriptSession(t *testing.T, addr string) *Session {
	t.Helper()
	s := NewSession(SessionConfig{
		Addr:        addr,
		Context:     "script",
		Backoff:     Backoff{Initial: 2 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0},
		MaxAttempts: 50,
		ConnectWait: 5 * time.Second,
		Seed:        1,
	})
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSessionPutProbeLanded: the connection dies with a PUT ack in
// flight, but the write actually landed. The session must discover
// that via the probe on the next connection and NOT re-send the PUT.
func TestSessionPutProbeLanded(t *testing.T) {
	srv := newScripted(t,
		func(sc *scriptConn) { // conn 0: take the PUT, die before acking
			sc.hello()
			if sc.expect("PUT") != nil {
				sc.raw.Close()
			}
		},
		func(sc *scriptConn) { // conn 1: probe sees our value → landed
			sc.hello()
			m := sc.expect("TRYGET")
			if m != nil && m.Get("attr") != "k" {
				sc.t.Errorf("probe for %q, want k", m.Get("attr"))
			}
			sc.reply(m, "VALUE", "attr", "k", "value", "hello", "seq", "4")
			sc.drainForbidding("PUT")
		},
	)
	s := scriptSession(t, srv.addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.PutCtx(ctx, "k", "hello"); err != nil {
		t.Fatalf("PutCtx: %v", err)
	}
	s.Close()
	srv.wait()
	if _, retries, _ := s.Stats(); retries == 0 {
		t.Error("no retry recorded despite the injected cut")
	}
}

// TestSessionPutProbeSuperseded: while our ack was lost, another
// writer advanced the attribute. Re-sending would clobber the newer
// value with a stale one; the session must treat the put as
// superseded and return success without re-sending.
func TestSessionPutProbeSuperseded(t *testing.T) {
	srv := newScripted(t,
		func(sc *scriptConn) {
			sc.hello()
			if sc.expect("PUT") != nil {
				sc.raw.Close()
			}
		},
		func(sc *scriptConn) { // probe: newer value, newer seq → superseded
			sc.hello()
			m := sc.expect("TRYGET")
			sc.reply(m, "VALUE", "attr", "k", "value", "newer", "seq", "9")
			sc.drainForbidding("PUT")
		},
	)
	s := scriptSession(t, srv.addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.PutCtx(ctx, "k", "stale"); err != nil {
		t.Fatalf("PutCtx: %v", err)
	}
	s.Close()
	srv.wait()
}

// TestSessionPutProbeResend: the probe finds no trace of the write
// (NOTFOUND), so the session re-sends it on the new connection.
func TestSessionPutProbeResend(t *testing.T) {
	srv := newScripted(t,
		func(sc *scriptConn) {
			sc.hello()
			if sc.expect("PUT") != nil {
				sc.raw.Close()
			}
		},
		func(sc *scriptConn) {
			sc.hello()
			sc.reply(sc.expect("TRYGET"), "NOTFOUND")
			m := sc.expect("PUT")
			if m != nil && (m.Get("attr") != "k" || m.Get("value") != "v") {
				sc.t.Errorf("re-sent PUT %v, want k=v", m)
			}
			sc.reply(m, "OK", "seq", "2")
			sc.drainForbidding()
		},
	)
	s := scriptSession(t, srv.addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.PutCtx(ctx, "k", "v"); err != nil {
		t.Fatalf("PutCtx: %v", err)
	}
	s.Close()
	srv.wait()
}

// TestSessionDeleteProbeLanded: a delete whose ack was lost but which
// landed (probe says NOTFOUND) must not be re-sent.
func TestSessionDeleteProbeLanded(t *testing.T) {
	srv := newScripted(t,
		func(sc *scriptConn) {
			sc.hello()
			if sc.expect("DELETE") != nil {
				sc.raw.Close()
			}
		},
		func(sc *scriptConn) {
			sc.hello()
			sc.reply(sc.expect("TRYGET"), "NOTFOUND")
			sc.drainForbidding("DELETE")
		},
	)
	s := scriptSession(t, srv.addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.DeleteCtx(ctx, "k"); err != nil {
		t.Fatalf("DeleteCtx: %v", err)
	}
	s.Close()
	srv.wait()
}

// ---------------------------------------------------------------------------
// Pending-reply hygiene.

// TestClientFailDrainsPendings is the regression test for the async
// pending-reply leak: replies outstanding when the connection dies
// (here a GetAsync and a blocking Put, both in flight) must each
// receive a prompt retryable error, and the pending map must end
// empty — no stranded channel entries.
func TestClientFailDrainsPendings(t *testing.T) {
	srv := newScripted(t, func(sc *scriptConn) {
		sc.hello()
		sc.expect("GET") // swallow; never reply
		sc.expect("PUT") // both now in flight; kill the transport
		sc.raw.Close()
	})
	c, err := Dial(nil, srv.addr, "leak")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	res, err := c.GetAsync("never-set")
	if err != nil {
		t.Fatalf("GetAsync: %v", err)
	}
	putErr := make(chan error, 1)
	go func() { putErr <- c.Put("k", "v") }()

	select {
	case r := <-res:
		if r.Err == nil || !IsRetryable(r.Err) {
			t.Errorf("GetAsync result error = %v, want retryable", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GetAsync reply channel never delivered after connection loss (leaked pending)")
	}
	select {
	case err := <-putErr:
		if err == nil || !IsRetryable(err) {
			t.Errorf("Put error = %v, want retryable", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Put never returned after connection loss (leaked pending)")
	}
	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Errorf("pending map holds %d entries after fail, want 0", n)
	}
	srv.wait()
}

// ---------------------------------------------------------------------------
// Graceful drain.

// TestServerShutdownDrain: Shutdown announces CLOSE, after which the
// client refuses new requests with ErrServerDraining; a blocked GET
// outstanding across the drain resolves with a retryable error rather
// than hanging; Shutdown itself completes within its context.
func TestServerShutdownDrain(t *testing.T) {
	srv, addr := startServer(t)
	c := dialT(t, addr, "drain")
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	blocked, err := c.GetAsync("never-put")
	if err != nil {
		t.Fatalf("GetAsync: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// Wait for the CLOSE frame to be processed (racing writes against
	// it would see the connection torn down before the announcement),
	// then require that new sends are turned away as draining — a
	// retryable classification a Session rides through.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		draining := c.draining
		c.mu.Unlock()
		if draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never observed the drain announcement")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Put("k2", "v2"); !errors.Is(err, ErrServerDraining) {
		t.Fatalf("post-CLOSE Put error = %v, want ErrServerDraining", err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned")
	}
	select {
	case r := <-blocked:
		if r.Err == nil || !IsRetryable(r.Err) {
			t.Errorf("blocked GET across drain: error = %v, want retryable", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked GET never resolved across the drain")
	}
}

// TestSessionRidesThroughDrain: a Session connected to a server that
// drains and is replaced reconnects and keeps serving without caller-
// visible failures.
func TestSessionRidesThroughDrain(t *testing.T) {
	r := newRestartable(t)
	keep := r.space.Join("drainride")
	defer keep.Leave()

	s := NewSession(SessionConfig{
		Addr:        r.addr,
		Context:     "drainride",
		Backoff:     Backoff{Initial: 2 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.5},
		MaxAttempts: -1,
		ConnectWait: 5 * time.Second,
		Seed:        1,
	})
	defer s.Close()
	if err := s.Put("before", "1"); err != nil {
		t.Fatalf("Put before drain: %v", err)
	}
	r.drain(time.Second)
	r.restart()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.PutCtx(ctx, "after", "2"); err != nil {
		t.Fatalf("Put after drain+restart: %v", err)
	}
	for _, k := range []string{"before", "after"} {
		if _, err := s.TryGet(k); err != nil {
			t.Errorf("TryGet(%s) after drain: %v", k, err)
		}
	}
}

// TestSessionGateEpochRestart pins down why install() gates event
// delivery until the resync has run. A context destroyed and recreated
// while the session was away restarts its seqs from 1; a live event
// from the new epoch that lands between SUB and the resync snapshot
// would be judged against the previous epoch's per-attribute marks and
// silently dropped — and since the snapshot was fetched before that
// write, nothing ever replays it. The gate holds such events until
// applyFullResync has detected the epoch restart and reset the marks.
func TestSessionGateEpochRestart(t *testing.T) {
	s := NewSession(SessionConfig{
		Dial: func(addr string) (net.Conn, error) {
			return nil, errors.New("no server in this test")
		},
		Addr:        "nowhere",
		Context:     "gate",
		Backoff:     Backoff{Initial: time.Hour, Max: time.Hour, Factor: 1},
		MaxAttempts: -1,
	})
	defer s.Close()
	m := newMirror()
	s.SetEventHandler(m.handle)

	// Epoch A, delivered live on the first connection.
	for i, a := range []string{"x", "y", "z"} {
		s.deliver(Event{Attr: a, Value: "old", Op: "put", Seq: uint64(i + 1)})
	}

	// Reconnect: install() captures the epoch baseline, subscribes on
	// the new connection, and gates its handler.
	s.emitMu.Lock()
	preSeq := s.ctxSeq
	s.emitMu.Unlock()
	gate := &evGate{s: s}

	// The recreated context restarted seqs: a live event for y (seq 2
	// in the new epoch, stale against epoch A's mark y=2) arrives while
	// the resync RPC is still in flight.
	gate.handle(Event{Attr: "y", Value: "new", Op: "put", Seq: 2})

	// The resync snapshot predates y's write: only x, at ctxSeq 1 <
	// preSeq — an epoch restart. applyFullResync resets the marks.
	s.applyFullResync(map[string]Versioned{"x": {Value: "new", Seq: 1}}, 1, preSeq)
	gate.release()

	got, _, _ := m.snapshot()
	want := map[string]string{"x": "new", "y": "new"}
	if !sameMap(got, want) {
		t.Fatalf("mirror after epoch restart = %v, want %v", got, want)
	}
}
