// Package attrspace implements the TDP attribute space servers and
// their client. A LASS (Local Attribute Space Server) runs on every
// execution host; the CASS (Central Attribute Space Server) runs on
// the host with the tool front-end (paper §2.1, Figure 2). Both are
// the same server — the distinction is purely where they run and who
// connects — so one implementation serves both roles.
//
// The protocol is framed wire.Messages:
//
//	client → server:
//	  HELLO   context=<name>                 join a context
//	  PUT     id=<n> attr=<a> value=<v>      store, ack with OK
//	  GET     id=<n> attr=<a>                blocking get, reply VALUE
//	  TRYGET  id=<n> attr=<a>                non-blocking, VALUE or NOTFOUND
//	  DELETE  id=<n> attr=<a>                remove, ack with OK
//	  SNAP    id=<n>                         dump all attributes
//	  SUB     id=<n>                         start event push, ack with OK
//	  EXIT                                   leave context and disconnect
//
//	server → client:
//	  OK      id=<n>
//	  VALUE   id=<n> attr=<a> value=<v>
//	  NOTFOUND id=<n> attr=<a>
//	  SNAPV   id=<n> n=<count> k0=.. v0=.. k1=..
//	  ERROR   id=<n> error=<text>
//	  EVENT   attr=<a> value=<v> op=<put|delete|destroy> seq=<n>
//
// Every reply carries the request id, so a client may keep many
// blocking GETs outstanding on one connection — this is what makes the
// paper's tdp_async_get natural to implement.
package attrspace

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"strconv"
	"sync"

	"tdp/internal/attr"
	"tdp/internal/wire"
)

// Server is one attribute space server instance (a LASS or the CASS).
type Server struct {
	space *attr.Space

	mu       sync.Mutex
	listener net.Listener
	conns    map[*serverConn]struct{}
	closed   bool
	logf     func(format string, args ...any)

	// statistics for the characterization benchmarks
	puts, gets, tryGets, deletes, snaps int64
}

// NewServer returns a server around a fresh attribute space.
func NewServer() *Server {
	return NewServerWithSpace(attr.NewSpace())
}

// NewServerWithSpace returns a server around an existing space, which
// lets tests and the in-process fast path share state with the server.
func NewServerWithSpace(space *attr.Space) *Server {
	return &Server{
		space: space,
		conns: make(map[*serverConn]struct{}),
		logf:  func(string, ...any) {},
	}
}

// SetLogf installs a logging function (e.g. log.Printf) for connection
// level diagnostics. The default discards.
func (s *Server) SetLogf(f func(format string, args ...any)) {
	if f == nil {
		f = func(string, ...any) {}
	}
	s.logf = f
}

// Space returns the underlying attribute space.
func (s *Server) Space() *attr.Space { return s.space }

// Stats returns operation counters since start.
func (s *Server) Stats() (puts, gets, tryGets, deletes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts, s.gets, s.tryGets, s.deletes
}

// Serve accepts connections on l until Close is called or the listener
// fails. It blocks; run it in a goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listener = l
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sc := &serverConn{srv: s, wc: wire.NewConn(c), raw: c}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		go sc.run()
	}
}

// Close stops the listener and disconnects every client.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	l := s.listener
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.raw.Close()
	}
}

func (s *Server) dropConn(c *serverConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// serverConn is one client session.
type serverConn struct {
	srv *Server
	wc  *wire.Conn
	raw net.Conn

	mu  sync.Mutex
	ref *attr.Ref // joined context, nil until HELLO
	sub *attr.Subscription
}

func (c *serverConn) run() {
	srv := c.srv
	defer srv.dropConn(c)
	// Per-connection context cancels blocked GETs when the peer goes away.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer func() {
		c.mu.Lock()
		ref, sub := c.ref, c.sub
		c.ref, c.sub = nil, nil
		c.mu.Unlock()
		if sub != nil && ref != nil {
			ref.Unsubscribe(sub)
		}
		if ref != nil {
			ref.Leave()
		}
		c.raw.Close()
	}()

	for {
		m, err := c.wc.Recv()
		if err != nil {
			return // disconnect
		}
		switch m.Verb {
		case "HELLO":
			name := m.Get("context")
			c.mu.Lock()
			already := c.ref != nil
			if !already {
				c.ref = srv.space.Join(name)
			}
			c.mu.Unlock()
			if already {
				c.reply(wire.NewMessage("ERROR").Set("id", m.Get("id")).Set("error", "already joined"))
				continue
			}
			c.reply(wire.NewMessage("OK").Set("id", m.Get("id")))
		case "EXIT":
			return
		case "PUT", "GET", "TRYGET", "DELETE", "SNAP", "SUB":
			c.handleOp(ctx, m)
		default:
			c.reply(wire.NewMessage("ERROR").Set("id", m.Get("id")).
				Set("error", fmt.Sprintf("unknown verb %q", m.Verb)))
		}
	}
}

func (c *serverConn) handleOp(ctx context.Context, m *wire.Message) {
	c.mu.Lock()
	ref := c.ref
	c.mu.Unlock()
	id := m.Get("id")
	if ref == nil {
		c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", "HELLO required"))
		return
	}
	srv := c.srv
	switch m.Verb {
	case "PUT":
		if err := ref.Put(m.Get("attr"), m.Get("value")); err != nil {
			c.replyErr(id, err)
			return
		}
		srv.mu.Lock()
		srv.puts++
		srv.mu.Unlock()
		c.reply(wire.NewMessage("OK").Set("id", id))
	case "TRYGET":
		v, err := ref.TryGet(m.Get("attr"))
		srv.mu.Lock()
		srv.tryGets++
		srv.mu.Unlock()
		switch {
		case errors.Is(err, attr.ErrNotFound):
			c.reply(wire.NewMessage("NOTFOUND").Set("id", id).Set("attr", m.Get("attr")))
		case err != nil:
			c.replyErr(id, err)
		default:
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", m.Get("attr")).Set("value", v))
		}
	case "GET":
		// Blocking get: serve it on its own goroutine so this session
		// keeps processing other requests (the multiplexing that makes
		// async gets possible on a single connection).
		attribute := m.Get("attr")
		srv.mu.Lock()
		srv.gets++
		srv.mu.Unlock()
		go func() {
			v, err := ref.Get(ctx, attribute)
			if err != nil {
				c.replyErr(id, err)
				return
			}
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", attribute).Set("value", v))
		}()
	case "DELETE":
		if err := ref.Delete(m.Get("attr")); err != nil {
			c.replyErr(id, err)
			return
		}
		srv.mu.Lock()
		srv.deletes++
		srv.mu.Unlock()
		c.reply(wire.NewMessage("OK").Set("id", id))
	case "SNAP":
		snap, err := ref.Snapshot()
		if err != nil {
			c.replyErr(id, err)
			return
		}
		srv.mu.Lock()
		srv.snaps++
		srv.mu.Unlock()
		reply := wire.NewMessage("SNAPV").Set("id", id).SetInt("n", len(snap))
		i := 0
		for k, v := range snap {
			reply.Set("k"+strconv.Itoa(i), k)
			reply.Set("v"+strconv.Itoa(i), v)
			i++
		}
		c.reply(reply)
	case "SUB":
		c.mu.Lock()
		already := c.sub != nil
		var err error
		if !already {
			c.sub, err = ref.Subscribe(64)
		}
		sub := c.sub
		c.mu.Unlock()
		if already {
			c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", "already subscribed"))
			return
		}
		if err != nil {
			c.replyErr(id, err)
			return
		}
		go func() {
			for u := range sub.Updates() {
				ev := wire.NewMessage("EVENT").
					Set("attr", u.Attr).
					Set("value", u.Value).
					Set("op", u.Op.String()).
					Set("seq", strconv.FormatUint(u.Seq, 10))
				if err := c.wc.Send(ev); err != nil {
					return
				}
			}
		}()
		c.reply(wire.NewMessage("OK").Set("id", id))
	}
}

func (c *serverConn) reply(m *wire.Message) {
	if err := c.wc.Send(m); err != nil {
		c.srv.logf("attrspace: send to %v failed: %v", c.raw.RemoteAddr(), err)
	}
}

func (c *serverConn) replyErr(id string, err error) {
	c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", err.Error()))
}

// ListenAndServe starts the server on a real TCP address and returns
// the bound address. Used by cmd/lassd and cmd/cassd.
func (s *Server) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(l); err != nil {
			log.Printf("attrspace: serve: %v", err)
		}
	}()
	return l.Addr().String(), nil
}
