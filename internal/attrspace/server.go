// Package attrspace implements the TDP attribute space servers and
// their client. A LASS (Local Attribute Space Server) runs on every
// execution host; the CASS (Central Attribute Space Server) runs on
// the host with the tool front-end (paper §2.1, Figure 2). Both are
// the same server — the distinction is purely where they run and who
// connects — so one implementation serves both roles.
//
// The protocol is framed wire.Messages:
//
//	client → server:
//	  HELLO   context=<name>                 join a context
//	  PUT     id=<n> attr=<a> value=<v>      store, ack with OK
//	  GET     id=<n> attr=<a>                blocking get, reply VALUE
//	  TRYGET  id=<n> attr=<a>                non-blocking, VALUE or NOTFOUND
//	  DELETE  id=<n> attr=<a>                remove, ack with OK
//	  SNAP    id=<n>                         dump all attributes
//	  SUB     id=<n>                         start event push, ack with OK
//	  STATS   id=<n>                         dump daemon telemetry (no HELLO needed)
//	  EXIT                                   leave context and disconnect
//
//	server → client:
//	  OK      id=<n>
//	  VALUE   id=<n> attr=<a> value=<v>
//	  NOTFOUND id=<n> attr=<a>
//	  SNAPV   id=<n> n=<count> k0=.. v0=.. k1=..
//	  STATSV  id=<n> daemon=<name> json=<telemetry snapshot>
//	  ERROR   id=<n> error=<text>
//	  EVENT   attr=<a> value=<v> op=<put|delete|destroy> seq=<n>
//
// Every reply carries the request id, so a client may keep many
// blocking GETs outstanding on one connection — this is what makes the
// paper's tdp_async_get natural to implement.
//
// Requests may additionally carry the reserved _tid/_sid span-tracing
// fields (wire.FieldTraceID); the server then records its share of the
// operation in its span log under the caller's trace ID, which is how
// one Put can be followed front-end → CASS → proxy → LASS.
package attrspace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"tdp/internal/attr"
	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// serverVerbs are the request verbs the server counts and times; one
// counter "attrspace.ops.<verb>" and one latency histogram
// "attrspace.latency.<verb>" exist per verb.
var serverVerbs = []string{"hello", "put", "get", "tryget", "delete", "snap", "sub", "stats"}

// verbMetrics caches one verb's hot-path metric handles.
type verbMetrics struct {
	ops *telemetry.Counter
	lat *telemetry.Histogram
}

// Server is one attribute space server instance (a LASS or the CASS).
type Server struct {
	space *attr.Space

	mu       sync.Mutex
	listener net.Listener
	conns    map[*serverConn]struct{}
	closed   bool

	// Telemetry. reg/tracer/logger are replaceable before Serve via
	// SetTelemetry/SetLogger; verbs caches per-verb handles.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	logger *telemetry.Logger
	verbs  map[string]verbMetrics
	gConns *telemetry.Gauge
}

// NewServer returns a server around a fresh attribute space.
func NewServer() *Server {
	return NewServerWithSpace(attr.NewSpace())
}

// NewServerWithSpace returns a server around an existing space, which
// lets tests and the in-process fast path share state with the server.
func NewServerWithSpace(space *attr.Space) *Server {
	s := &Server{
		space: space,
		conns: make(map[*serverConn]struct{}),
	}
	s.SetTelemetry(telemetry.NewRegistry(), telemetry.NewTracer("attrspace"))
	return s
}

// SetTelemetry installs the registry this server counts into and the
// tracer holding its span log. Either may be nil to keep the current
// one. The tracer's actor name is what distinguishes a CASS from a
// LASS in cross-daemon traces; cmd/cassd passes NewTracer("cassd").
// Call before Serve.
func (s *Server) SetTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg != nil {
		s.reg = reg
		s.verbs = make(map[string]verbMetrics, len(serverVerbs))
		for _, v := range serverVerbs {
			s.verbs[v] = verbMetrics{
				ops: reg.Counter("attrspace.ops." + v),
				lat: reg.Histogram("attrspace.latency."+v, nil),
			}
		}
		s.gConns = reg.Gauge("attrspace.conns")
	}
	if tracer != nil {
		s.tracer = tracer
	}
}

// Telemetry returns the server's metrics registry.
func (s *Server) Telemetry() *telemetry.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg
}

// Tracer returns the server's span log.
func (s *Server) Tracer() *telemetry.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tracer
}

// SetLogger installs the leveled logger used for connection-level
// diagnostics and serve errors. The default (nil) discards, which is
// what tests want.
func (s *Server) SetLogger(l *telemetry.Logger) {
	s.mu.Lock()
	s.logger = l
	s.mu.Unlock()
}

// SetLogf installs a printf-style logging function (e.g. log.Printf).
// It is the legacy form of SetLogger; both paths now feed the same
// leveled logger.
func (s *Server) SetLogf(f func(format string, args ...any)) {
	s.SetLogger(telemetry.FuncLogger(f))
}

func (s *Server) log() *telemetry.Logger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logger
}

// Space returns the underlying attribute space.
func (s *Server) Space() *attr.Space { return s.space }

// Stats returns operation counters since start. It reads the same
// registry the STATS verb exposes; the method survives as a
// convenience for the characterization benchmarks.
func (s *Server) Stats() (puts, gets, tryGets, deletes int64) {
	s.mu.Lock()
	reg := s.reg
	s.mu.Unlock()
	return reg.Counter("attrspace.ops.put").Value(),
		reg.Counter("attrspace.ops.get").Value(),
		reg.Counter("attrspace.ops.tryget").Value(),
		reg.Counter("attrspace.ops.delete").Value()
}

// observe bumps a verb's counter; the returned func records its
// latency when the reply goes out.
func (s *Server) observe(verb string) func() {
	s.mu.Lock()
	vm, ok := s.verbs[verb]
	s.mu.Unlock()
	if !ok {
		return func() {}
	}
	vm.ops.Inc()
	start := time.Now()
	return func() { vm.lat.Since(start) }
}

// Serve accepts connections on l until Close is called or the listener
// fails. It blocks; run it in a goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listener = l
	reg := s.reg
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sc := &serverConn{srv: s, wc: wire.NewConn(c), raw: c}
		sc.wc.InstrumentRegistry(reg)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[sc] = struct{}{}
		s.gConns.Set(int64(len(s.conns)))
		s.mu.Unlock()
		s.log().Debugf("attrspace: accepted %v", c.RemoteAddr())
		go sc.run()
	}
}

// Close stops the listener and disconnects every client.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	l := s.listener
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.raw.Close()
	}
}

func (s *Server) dropConn(c *serverConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.gConns.Set(int64(len(s.conns)))
	s.mu.Unlock()
}

// StartMonitorPublisher periodically self-publishes this server's
// registry metrics as attributes named
// "tdp.monitor.<daemon>.<metric>" into contextName, so tools observe
// the daemon with the same Get/Snapshot they use for everything else
// (the paper's own mechanism, turned on the daemons). Histograms
// publish their count and p50/p99 estimates. The publisher holds a
// context reference until stop is called, so the published attributes
// outlive transient clients.
func (s *Server) StartMonitorPublisher(contextName, daemon string, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	ref := s.space.Join(contextName)
	done := make(chan struct{})
	var once sync.Once
	publish := func() {
		s.mu.Lock()
		reg := s.reg
		s.mu.Unlock()
		snap := reg.Snapshot()
		prefix := telemetry.MonitorPrefix + daemon + "."
		for name, v := range snap.Counters {
			ref.Put(prefix+name, strconv.FormatInt(v, 10))
		}
		for name, v := range snap.Gauges {
			ref.Put(prefix+name, strconv.FormatInt(v, 10))
		}
		for name, h := range snap.Histograms {
			ref.Put(prefix+name+".count", strconv.FormatInt(h.Count, 10))
			ref.Put(prefix+name+".p50", strconv.FormatFloat(h.Quantile(0.5), 'g', 6, 64))
			ref.Put(prefix+name+".p99", strconv.FormatFloat(h.Quantile(0.99), 'g', 6, 64))
		}
	}
	publish()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				publish()
			case <-done:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			ref.Leave()
		})
	}
}

// serverConn is one client session.
type serverConn struct {
	srv *Server
	wc  *wire.Conn
	raw net.Conn

	mu  sync.Mutex
	ref *attr.Ref // joined context, nil until HELLO
	sub *attr.Subscription
}

func (c *serverConn) run() {
	srv := c.srv
	defer srv.dropConn(c)
	// Per-connection context cancels blocked GETs when the peer goes away.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer func() {
		c.mu.Lock()
		ref, sub := c.ref, c.sub
		c.ref, c.sub = nil, nil
		c.mu.Unlock()
		if sub != nil && ref != nil {
			ref.Unsubscribe(sub)
		}
		if ref != nil {
			ref.Leave()
		}
		c.raw.Close()
	}()

	for {
		m, err := c.wc.Recv()
		if err != nil {
			return // disconnect
		}
		switch m.Verb {
		case "HELLO":
			done := srv.observe("hello")
			name := m.Get("context")
			c.mu.Lock()
			already := c.ref != nil
			if !already {
				c.ref = srv.space.Join(name)
			}
			c.mu.Unlock()
			if already {
				c.reply(wire.NewMessage("ERROR").Set("id", m.Get("id")).Set("error", "already joined"))
				done()
				continue
			}
			c.reply(wire.NewMessage("OK").Set("id", m.Get("id")))
			done()
		case "EXIT":
			return
		case "STATS":
			// STATS needs no context: it reports on the daemon, not on
			// any attribute space, so monitoring tools can probe a
			// server without joining (and without bumping refcounts).
			c.handleStats(m)
		case "PUT", "GET", "TRYGET", "DELETE", "SNAP", "SUB":
			c.handleOp(ctx, m)
		default:
			c.reply(wire.NewMessage("ERROR").Set("id", m.Get("id")).
				Set("error", fmt.Sprintf("unknown verb %q", m.Verb)))
		}
	}
}

// startSpan opens this daemon's span for a request when the caller
// sent trace IDs; untraced requests record nothing.
func (c *serverConn) startSpan(m *wire.Message) *telemetry.Span {
	tid, sid := m.Trace()
	if tid == "" {
		return nil
	}
	srv := c.srv
	srv.mu.Lock()
	tracer := srv.tracer
	srv.mu.Unlock()
	return tracer.StartChild("attrspace."+strings.ToLower(m.Verb), tid, sid)
}

func (c *serverConn) handleStats(m *wire.Message) {
	srv := c.srv
	done := srv.observe("stats")
	sp := c.startSpan(m)
	srv.mu.Lock()
	reg, tracer := srv.reg, srv.tracer
	srv.mu.Unlock()
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		c.replyErr(m.Get("id"), err)
	} else {
		c.reply(wire.NewMessage("STATSV").
			Set("id", m.Get("id")).
			Set("daemon", tracer.Actor()).
			Set("json", string(data)))
	}
	done()
	sp.End()
}

func (c *serverConn) handleOp(ctx context.Context, m *wire.Message) {
	c.mu.Lock()
	ref := c.ref
	c.mu.Unlock()
	id := m.Get("id")
	if ref == nil {
		c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", "HELLO required"))
		return
	}
	srv := c.srv
	done := srv.observe(strings.ToLower(m.Verb))
	sp := c.startSpan(m)
	if sp != nil && m.Get("attr") != "" {
		sp.Set("attr", m.Get("attr"))
	}
	finish := func() {
		done()
		sp.End()
	}
	switch m.Verb {
	case "PUT":
		if err := ref.Put(m.Get("attr"), m.Get("value")); err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id))
		finish()
	case "TRYGET":
		v, err := ref.TryGet(m.Get("attr"))
		switch {
		case errors.Is(err, attr.ErrNotFound):
			c.reply(wire.NewMessage("NOTFOUND").Set("id", id).Set("attr", m.Get("attr")))
		case err != nil:
			c.replyErr(id, err)
		default:
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", m.Get("attr")).Set("value", v))
		}
		finish()
	case "GET":
		// Blocking get: serve it on its own goroutine so this session
		// keeps processing other requests (the multiplexing that makes
		// async gets possible on a single connection). The latency
		// histogram therefore includes the time spent blocked — the
		// number a tool writer actually experiences.
		attribute := m.Get("attr")
		go func() {
			v, err := ref.Get(ctx, attribute)
			if err != nil {
				c.replyErr(id, err)
				finish()
				return
			}
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", attribute).Set("value", v))
			finish()
		}()
	case "DELETE":
		if err := ref.Delete(m.Get("attr")); err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id))
		finish()
	case "SNAP":
		snap, err := ref.Snapshot()
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		reply := wire.NewMessage("SNAPV").Set("id", id).SetInt("n", len(snap))
		i := 0
		for k, v := range snap {
			reply.Set("k"+strconv.Itoa(i), k)
			reply.Set("v"+strconv.Itoa(i), v)
			i++
		}
		c.reply(reply)
		finish()
	case "SUB":
		c.mu.Lock()
		already := c.sub != nil
		var err error
		if !already {
			c.sub, err = ref.Subscribe(64)
		}
		sub := c.sub
		c.mu.Unlock()
		if already {
			c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", "already subscribed"))
			finish()
			return
		}
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		go func() {
			for u := range sub.Updates() {
				ev := wire.NewMessage("EVENT").
					Set("attr", u.Attr).
					Set("value", u.Value).
					Set("op", u.Op.String()).
					Set("seq", strconv.FormatUint(u.Seq, 10))
				if err := c.wc.Send(ev); err != nil {
					return
				}
			}
		}()
		c.reply(wire.NewMessage("OK").Set("id", id))
		finish()
	}
}

func (c *serverConn) reply(m *wire.Message) {
	if err := c.wc.Send(m); err != nil {
		c.srv.log().Debugf("attrspace: send to %v failed: %v", c.raw.RemoteAddr(), err)
	}
}

func (c *serverConn) replyErr(id string, err error) {
	c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", err.Error()))
}

// ListenAndServe starts the server on a real TCP address and returns
// the bound address. Used by cmd/lassd and cmd/cassd.
func (s *Server) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(l); err != nil {
			s.log().Errorf("attrspace: serve: %v", err)
		}
	}()
	return l.Addr().String(), nil
}
